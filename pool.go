package rips

import "rips/internal/par"

// Pool is a set of resident worker goroutines that successive
// Parallel-backend runs multiplex onto via Config.Pool — the serving
// configuration, where one machine's cores are shared by many
// submissions instead of each run spawning its own workers. A Pool
// executes one run at a time; concurrent runs serialize in submission
// order, and a queued run's context is still honored the moment it
// starts.
//
// The Simulate backend ignores Config.Pool: simulated nodes are
// goroutines of the virtual-time engine, not pool workers.
type Pool struct {
	p *par.Pool
}

// NewPool starts a pool of the given size. Every Parallel run on the
// pool must fit it: Config.Validate rejects machines larger than the
// pool.
func NewPool(workers int) (*Pool, error) {
	p, err := par.NewPool(workers)
	if err != nil {
		return nil, err
	}
	return &Pool{p: p}, nil
}

// Workers returns the pool's resident worker count.
func (p *Pool) Workers() int { return p.p.Workers() }

// Close shuts the resident workers down, blocking until any run in
// flight completes. Runs submitted after Close fail.
func (p *Pool) Close() { p.p.Close() }
