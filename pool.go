package rips

import (
	"fmt"

	"rips/internal/par"
)

// Pool is a set of resident worker goroutines that successive
// Parallel-backend runs multiplex onto via Config.Pool — the serving
// configuration, where one machine's cores are shared by many
// submissions instead of each run spawning its own workers.
//
// A root pool (from NewPool) executes one run at a time; concurrent
// runs serialize in submission order, and a queued run's context is
// still honored the moment it starts. Split leases disjoint subsets of
// the root's workers out as sub-pools; runs on distinct sub-pools
// execute concurrently, which is how the multi-tenant ripsd frontend
// (internal/serve + internal/tenant) runs several small jobs on one
// machine at once. Resize grows or shrinks a lease, Release returns
// it.
//
// The Simulate backend ignores Config.Pool: simulated nodes are
// goroutines of the virtual-time engine, not pool workers.
type Pool struct {
	p *par.Pool
}

// Typed pool errors, matchable with errors.Is. They let an admission
// layer (or a test) branch on why a lease was refused without parsing
// message text: capacity refusals queue or preempt, lifecycle refusals
// fail the request.
var (
	// ErrPoolClosed reports an operation on a root pool after Close.
	ErrPoolClosed = par.ErrPoolClosed
	// ErrLeaseReleased reports an operation on a sub-pool after Release.
	ErrLeaseReleased = par.ErrLeaseReleased
	// ErrInsufficientWorkers reports a Split or Resize asking for more
	// workers than the root pool's free set holds; the lease is
	// unchanged and nothing blocks.
	ErrInsufficientWorkers = par.ErrInsufficientWorkers
	// ErrBadLeaseSize reports a Split or Resize asking for fewer than
	// one worker.
	ErrBadLeaseSize = par.ErrBadLeaseSize
)

// NewPool starts a pool of the given size. Every Parallel run on the
// pool must fit it: Config.Validate rejects machines larger than the
// pool. The pool is a single affinity domain; see NewPoolDomains.
func NewPool(workers int) (*Pool, error) {
	p, err := par.NewPool(workers)
	if err != nil {
		return nil, err
	}
	return &Pool{p: p}, nil
}

// NewPoolDomains starts a pool whose workers are partitioned into the
// given number of contiguous affinity domains (zero auto-detects the
// machine's, any count is clamped into [1, workers]) and whose leases
// respect the partition: Split places each lease inside the fewest
// domains the free set allows, preferring the tightest single domain
// that fits. Jobs small enough for one domain then share that domain's
// cache hierarchy — the serving-side counterpart of the Hybrid
// backend's intra-domain stealing.
func NewPoolDomains(workers, domains int) (*Pool, error) {
	if domains < 0 {
		return nil, fmt.Errorf("rips: NewPoolDomains(%d, %d): domain count must be non-negative", workers, domains)
	}
	p, err := par.NewPoolDomains(workers, domains)
	if err != nil {
		return nil, err
	}
	return &Pool{p: p}, nil
}

// Domains returns the pool's affinity-domain count (1 unless built
// with NewPoolDomains). A sub-pool reports its root's partition.
func (p *Pool) Domains() int { return p.p.Domains() }

// Workers returns the pool's worker count: the resident total on a
// root pool, the current lease size on a sub-pool.
func (p *Pool) Workers() int { return p.p.Workers() }

// Free returns how many of a root pool's workers are currently
// leasable — neither leased to a sub-pool nor occupied by a run. A
// sub-pool cannot lease and always reports 0.
func (p *Pool) Free() int { return p.p.Free() }

// Split leases n workers out of the root pool's free set as a
// sub-pool usable anywhere a *Pool is (Config.Pool, WithPool). It
// never blocks: if fewer than n workers are free the lease is refused,
// so an admission scheduler can decide to queue or preempt instead of
// deadlocking on capacity.
func (p *Pool) Split(n int) (*Pool, error) {
	sub, err := p.p.Split(n)
	if err != nil {
		return nil, err
	}
	return &Pool{p: sub}, nil
}

// Resize grows or shrinks a sub-pool's lease to n workers against the
// root's free set, waiting for any run in flight on the lease first.
// Growing beyond the free set is an error and leaves the lease
// unchanged.
func (p *Pool) Resize(n int) error { return p.p.Resize(n) }

// Release returns a sub-pool's workers to the root's free set and
// marks the lease unusable, waiting for any run in flight on it.
// Idempotent; on a root pool Release is Close.
func (p *Pool) Release() { p.p.Release() }

// Close shuts the resident workers down, blocking until every lease is
// released and any run in flight completes. Runs submitted after Close
// fail.
func (p *Pool) Close() { p.p.Close() }
