package rips

import (
	"fmt"
	"strings"
)

// normalizeEnum canonicalizes user-supplied enum spellings before the
// Parse* lookups: surrounding whitespace is trimmed and letters are
// lowered, so "RIPS", " steal\n" and "High" all parse. Every parser in
// this file normalizes through here exactly once — the three enums
// share one lenience policy instead of each rejecting mixed case or
// stray whitespace in its own way. The canonical String() renderings
// are already lower-case and trimmed, so normalization never changes
// the parse(String(x)) == x round-trip.
func normalizeEnum(s string) string {
	return strings.ToLower(strings.TrimSpace(s))
}

// Algorithms returns every defined Algorithm constant, in order. The
// list backs ParseAlgorithm and the round-trip property tests.
func Algorithms() []Algorithm {
	return []Algorithm{RIPS, Random, Gradient, RID, Static, Steal}
}

// Backends returns every defined Backend constant, in order.
func Backends() []Backend {
	return []Backend{Simulate, Parallel, Hybrid, Cluster}
}

func (a Algorithm) String() string {
	switch a {
	case RIPS:
		return "rips"
	case Random:
		return "random"
	case Gradient:
		return "gradient"
	case RID:
		return "rid"
	case Static:
		return "static"
	case Steal:
		return "steal"
	}
	return fmt.Sprintf("algorithm(%d)", int(a))
}

func (b Backend) String() string {
	switch b {
	case Simulate:
		return "simulate"
	case Parallel:
		return "parallel"
	case Hybrid:
		return "hybrid"
	case Cluster:
		return "cluster"
	}
	return fmt.Sprintf("backend(%d)", int(b))
}

// ParseAlgorithm is the inverse of Algorithm.String: it maps "rips",
// "random", "gradient", "rid", "static" or "steal" back to the
// constant, so ParseAlgorithm(a.String()) == a for every defined a.
// Input is case-insensitive and surrounding whitespace is ignored.
// Anything else — including the String() rendering of an out-of-range
// value — is an error.
func ParseAlgorithm(s string) (Algorithm, error) {
	s = normalizeEnum(s)
	for _, a := range Algorithms() {
		if s == a.String() {
			return a, nil
		}
	}
	return 0, fmt.Errorf("rips: unknown algorithm %q", s)
}

// ParseBackend is the inverse of Backend.String: "simulate",
// "parallel", "hybrid" or "cluster", case-insensitively with
// surrounding whitespace ignored. Anything else is an error.
func ParseBackend(s string) (Backend, error) {
	s = normalizeEnum(s)
	for _, b := range Backends() {
		if s == b.String() {
			return b, nil
		}
	}
	return 0, fmt.Errorf("rips: unknown backend %q", s)
}

// Priority is a submission's serving lane in the multi-tenant ripsd
// frontend: jobs in a higher lane are placed first, and may preempt
// running lower-lane jobs when the pool is full (the preempted job is
// requeued and re-run; its answer is unaffected). Priorities order
// numerically: PriorityLow < PriorityNormal < PriorityHigh.
//
// A Priority never changes what a run computes — it is admission
// vocabulary shared by internal/serve, internal/tenant, ripsd and
// ripsbench, not a scheduling knob of the RIPS algorithm itself.
type Priority int

const (
	// PriorityLow yields to both other lanes and is the first preempted.
	PriorityLow Priority = iota
	// PriorityNormal is the default lane for submissions that name none.
	PriorityNormal
	// PriorityHigh is placed first and may preempt lower lanes.
	PriorityHigh
)

// Priorities returns every defined Priority constant, in ascending
// lane order. The list backs ParsePriority and the round-trip property
// tests.
func Priorities() []Priority {
	return []Priority{PriorityLow, PriorityNormal, PriorityHigh}
}

func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityNormal:
		return "normal"
	case PriorityHigh:
		return "high"
	}
	return fmt.Sprintf("priority(%d)", int(p))
}

// ParsePriority is the inverse of Priority.String: "low", "normal" or
// "high", case-insensitively with surrounding whitespace ignored. The
// empty string (including all-whitespace input) parses to
// PriorityNormal — the default lane for submissions that name none —
// and anything else is an error.
func ParsePriority(s string) (Priority, error) {
	s = normalizeEnum(s)
	if s == "" {
		return PriorityNormal, nil
	}
	for _, p := range Priorities() {
		if s == p.String() {
			return p, nil
		}
	}
	return 0, fmt.Errorf("rips: unknown priority %q", s)
}
