package rips

import "fmt"

// Algorithms returns every defined Algorithm constant, in order. The
// list backs ParseAlgorithm and the round-trip property tests.
func Algorithms() []Algorithm {
	return []Algorithm{RIPS, Random, Gradient, RID, Static, Steal}
}

// Backends returns every defined Backend constant, in order.
func Backends() []Backend {
	return []Backend{Simulate, Parallel}
}

func (a Algorithm) String() string {
	switch a {
	case RIPS:
		return "rips"
	case Random:
		return "random"
	case Gradient:
		return "gradient"
	case RID:
		return "rid"
	case Static:
		return "static"
	case Steal:
		return "steal"
	}
	return fmt.Sprintf("algorithm(%d)", int(a))
}

func (b Backend) String() string {
	switch b {
	case Simulate:
		return "simulate"
	case Parallel:
		return "parallel"
	}
	return fmt.Sprintf("backend(%d)", int(b))
}

// ParseAlgorithm is the inverse of Algorithm.String: it maps "rips",
// "random", "gradient", "rid", "static" or "steal" back to the
// constant, so ParseAlgorithm(a.String()) == a for every defined a.
// Anything else — including the String() rendering of an out-of-range
// value — is an error.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if s == a.String() {
			return a, nil
		}
	}
	return 0, fmt.Errorf("rips: unknown algorithm %q", s)
}

// ParseBackend is the inverse of Backend.String: "simulate" or
// "parallel". Anything else is an error.
func ParseBackend(s string) (Backend, error) {
	for _, b := range Backends() {
		if s == b.String() {
			return b, nil
		}
	}
	return 0, fmt.Errorf("rips: unknown backend %q", s)
}

// Priority is a submission's serving lane in the multi-tenant ripsd
// frontend: jobs in a higher lane are placed first, and may preempt
// running lower-lane jobs when the pool is full (the preempted job is
// requeued and re-run; its answer is unaffected). Priorities order
// numerically: PriorityLow < PriorityNormal < PriorityHigh.
//
// A Priority never changes what a run computes — it is admission
// vocabulary shared by internal/serve, internal/tenant, ripsd and
// ripsbench, not a scheduling knob of the RIPS algorithm itself.
type Priority int

const (
	// PriorityLow yields to both other lanes and is the first preempted.
	PriorityLow Priority = iota
	// PriorityNormal is the default lane for submissions that name none.
	PriorityNormal
	// PriorityHigh is placed first and may preempt lower lanes.
	PriorityHigh
)

// Priorities returns every defined Priority constant, in ascending
// lane order. The list backs ParsePriority and the round-trip property
// tests.
func Priorities() []Priority {
	return []Priority{PriorityLow, PriorityNormal, PriorityHigh}
}

func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityNormal:
		return "normal"
	case PriorityHigh:
		return "high"
	}
	return fmt.Sprintf("priority(%d)", int(p))
}

// ParsePriority is the inverse of Priority.String: "low", "normal" or
// "high". The empty string parses to PriorityNormal — the default lane
// for submissions that name none — and anything else is an error.
func ParsePriority(s string) (Priority, error) {
	if s == "" {
		return PriorityNormal, nil
	}
	for _, p := range Priorities() {
		if s == p.String() {
			return p, nil
		}
	}
	return 0, fmt.Errorf("rips: unknown priority %q", s)
}
