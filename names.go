package rips

import "fmt"

// Algorithms returns every defined Algorithm constant, in order. The
// list backs ParseAlgorithm and the round-trip property tests.
func Algorithms() []Algorithm {
	return []Algorithm{RIPS, Random, Gradient, RID, Static, Steal}
}

// Backends returns every defined Backend constant, in order.
func Backends() []Backend {
	return []Backend{Simulate, Parallel}
}

func (a Algorithm) String() string {
	switch a {
	case RIPS:
		return "rips"
	case Random:
		return "random"
	case Gradient:
		return "gradient"
	case RID:
		return "rid"
	case Static:
		return "static"
	case Steal:
		return "steal"
	}
	return fmt.Sprintf("algorithm(%d)", int(a))
}

func (b Backend) String() string {
	switch b {
	case Simulate:
		return "simulate"
	case Parallel:
		return "parallel"
	}
	return fmt.Sprintf("backend(%d)", int(b))
}

// ParseAlgorithm is the inverse of Algorithm.String: it maps "rips",
// "random", "gradient", "rid", "static" or "steal" back to the
// constant, so ParseAlgorithm(a.String()) == a for every defined a.
// Anything else — including the String() rendering of an out-of-range
// value — is an error.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if s == a.String() {
			return a, nil
		}
	}
	return 0, fmt.Errorf("rips: unknown algorithm %q", s)
}

// ParseBackend is the inverse of Backend.String: "simulate" or
// "parallel". Anything else is an error.
func ParseBackend(s string) (Backend, error) {
	for _, b := range Backends() {
		if s == b.String() {
			return b, nil
		}
	}
	return 0, fmt.Errorf("rips: unknown backend %q", s)
}
