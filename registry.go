package rips

import (
	"fmt"
	"sort"
	"sync"

	"rips/internal/apps/gromos"
	"rips/internal/apps/nqueens"
	"rips/internal/apps/puzzle"
)

// AppBuilder constructs a registered workload family's App at a size.
// The size knob's meaning is the family's own (board size, paper
// configuration, cutoff radius); builders must treat 0 as the family's
// documented default and reject unusable sizes with a descriptive
// error.
type AppBuilder func(size int) (App, error)

// appRegistry is the process-wide family-name → builder table behind
// RegisterApp/LookupApp/Apps. Every surface that resolves a workload
// by name — ripsd submissions, cluster peers re-resolving a forwarded
// job, ripsbench and the difftest harness — goes through this one
// table, so a name means the same workload everywhere.
var appRegistry = struct {
	sync.RWMutex
	m map[string]AppBuilder
}{m: map[string]AppBuilder{}}

// RegisterApp registers a workload family under a name, making it
// resolvable by LookupApp (and thereby submittable to ripsd and
// runnable on cluster peers, which re-resolve forwarded jobs by name —
// a family must be registered identically in every process of a
// cluster). Registration is typically done from an init function; the
// name must be non-empty and not yet taken, and the builder non-nil —
// violations panic, like duplicate http.Handle patterns, because they
// are programmer errors no caller can meaningfully handle.
func RegisterApp(name string, build AppBuilder) {
	if name == "" || build == nil {
		panic("rips: RegisterApp with an empty name or nil builder")
	}
	appRegistry.Lock()
	defer appRegistry.Unlock()
	if _, dup := appRegistry.m[name]; dup {
		panic(fmt.Sprintf("rips: RegisterApp(%q): family already registered", name))
	}
	appRegistry.m[name] = build
}

// LookupApp resolves a registered workload family at a size (0 means
// the family's default). Unknown names are errors listing the known
// families, so a mistyped submission tells the client what exists.
func LookupApp(name string, size int) (App, error) {
	appRegistry.RLock()
	build, ok := appRegistry.m[name]
	appRegistry.RUnlock()
	if !ok {
		known := Apps()
		return nil, fmt.Errorf("rips: unknown app family %q (registered: %v)", name, known)
	}
	return build(size)
}

// Apps returns the registered family names, sorted — the stable
// vocabulary a server can advertise.
func Apps() []string {
	appRegistry.RLock()
	defer appRegistry.RUnlock()
	names := make([]string, 0, len(appRegistry.m))
	for name := range appRegistry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// The built-in families: the paper's three applications, under the
// names the parscale experiment introduced. Their size semantics are
// part of the serving API surface (see JobSpec).
func init() {
	RegisterApp("nq", func(size int) (App, error) {
		if size == 0 {
			size = 13
		}
		if size < 4 {
			return nil, fmt.Errorf("rips: nq size %d (want a board of at least 4)", size)
		}
		return nqueens.New(size, 4), nil
	})
	RegisterApp("ida", func(size int) (App, error) {
		if size == 0 {
			size = 1
		}
		if size < 1 || size > 3 {
			return nil, fmt.Errorf("rips: ida size %d (want a paper configuration 1..3)", size)
		}
		return puzzle.Config(size), nil
	})
	RegisterApp("gromos", func(size int) (App, error) {
		if size == 0 {
			size = 8
		}
		if size < 1 {
			return nil, fmt.Errorf("rips: gromos size %d (want a positive cutoff in angstroms)", size)
		}
		return gromos.New(float64(size)), nil
	})
}
