package rips

import (
	"encoding/json"
	"fmt"
	"time"
)

// ResultJSONSchema identifies the versioned wire encoding of run
// results. Everything that serializes a Result — the ripsd server's
// job API, ripsbench run -json, committed BENCH artifacts — shares
// this one schema, so a stored artifact and a streamed job result are
// the same document.
const ResultJSONSchema = "rips-result/v1"

// ConfigJSON is the wire form of Config: enums as their canonical
// strings (ParseAlgorithm/ParseBackend round-trip them), durations as
// integer nanoseconds with _ns suffixes. Hooks and pools do not
// serialize — they are process-local wiring, set by the receiving side.
type ConfigJSON struct {
	Procs            int     `json:"procs,omitempty"`
	Rows             int     `json:"rows,omitempty"`
	Cols             int     `json:"cols,omitempty"`
	Topology         string  `json:"topology,omitempty"`
	Algorithm        string  `json:"algorithm,omitempty"`
	Backend          string  `json:"backend,omitempty"`
	Domains          int     `json:"domains,omitempty"`
	Eager            bool    `json:"eager,omitempty"`
	All              bool    `json:"all,omitempty"`
	PeriodicNS       int64   `json:"periodic_ns,omitempty"`
	ExactHypercube   bool    `json:"exact_hypercube,omitempty"`
	RIDUpdateFactor  float64 `json:"rid_update_factor,omitempty"`
	InitBackoffNS    int64   `json:"init_backoff_ns,omitempty"`
	DetectIntervalNS int64   `json:"detect_interval_ns,omitempty"`
	TimeoutNS        int64   `json:"timeout_ns,omitempty"`
	Seed             int64   `json:"seed,omitempty"`
}

// EncodeConfig renders a Config into its wire form.
func EncodeConfig(cfg Config) ConfigJSON {
	return ConfigJSON{
		Procs:            cfg.Procs,
		Rows:             cfg.Rows,
		Cols:             cfg.Cols,
		Topology:         cfg.Topology,
		Algorithm:        cfg.Algorithm.String(),
		Backend:          cfg.Backend.String(),
		Domains:          cfg.Domains,
		Eager:            cfg.Eager,
		All:              cfg.All,
		PeriodicNS:       int64(cfg.Periodic),
		ExactHypercube:   cfg.ExactHypercube,
		RIDUpdateFactor:  cfg.RIDUpdateFactor,
		InitBackoffNS:    int64(cfg.InitBackoff),
		DetectIntervalNS: int64(cfg.DetectInterval),
		TimeoutNS:        int64(cfg.Timeout),
		Seed:             cfg.Seed,
	}
}

// Decode converts the wire form back into a Config. Empty enum
// strings decode to the zero values (RIPS, Simulate), so a sparse
// submission like {"procs": 4} is a complete default configuration;
// unknown enum strings are errors. The result is not validated as a
// whole — callers run Config.Validate (or NewConfig) next.
func (j ConfigJSON) Decode() (Config, error) {
	cfg := Config{
		Procs:           j.Procs,
		Rows:            j.Rows,
		Cols:            j.Cols,
		Topology:        j.Topology,
		Domains:         j.Domains,
		Eager:           j.Eager,
		All:             j.All,
		Periodic:        Time(j.PeriodicNS),
		ExactHypercube:  j.ExactHypercube,
		RIDUpdateFactor: j.RIDUpdateFactor,
		InitBackoff:     Time(j.InitBackoffNS),
		DetectInterval:  time.Duration(j.DetectIntervalNS),
		Timeout:         time.Duration(j.TimeoutNS),
		Seed:            j.Seed,
	}
	if j.Algorithm != "" {
		a, err := ParseAlgorithm(j.Algorithm)
		if err != nil {
			return Config{}, err
		}
		cfg.Algorithm = a
	}
	if j.Backend != "" {
		b, err := ParseBackend(j.Backend)
		if err != nil {
			return Config{}, err
		}
		cfg.Backend = b
	}
	return cfg, nil
}

// ResultJSON is the rips-result/v1 document: one run's outcome plus
// the configuration that produced it. Virtual times and durations are
// integer nanoseconds.
type ResultJSON struct {
	Schema     string     `json:"schema"`
	Config     ConfigJSON `json:"config"`
	TimeNS     int64      `json:"time_ns,omitempty"`
	OverheadNS int64      `json:"overhead_ns,omitempty"`
	IdleNS     int64      `json:"idle_ns,omitempty"`
	Tasks      int64      `json:"tasks"`
	Nonlocal   int64      `json:"nonlocal"`
	Phases     int64      `json:"phases"`
	SeqTimeNS  int64      `json:"seq_time_ns,omitempty"`
	Efficiency float64    `json:"efficiency,omitempty"`
	Speedup    float64    `json:"speedup,omitempty"`
	WallNS     int64      `json:"wall_ns,omitempty"`
	Steals     int64      `json:"steals,omitempty"`
	Domains    int        `json:"domains,omitempty"`
	AppResult  int64      `json:"app_result"`
	Canceled   bool       `json:"canceled,omitempty"`
}

// EncodeResult renders a run's outcome (and the Config that produced
// it) as a rips-result/v1 document.
func EncodeResult(cfg Config, res Result) ResultJSON {
	return ResultJSON{
		Schema:     ResultJSONSchema,
		Config:     EncodeConfig(cfg),
		TimeNS:     int64(res.Time),
		OverheadNS: int64(res.Overhead),
		IdleNS:     int64(res.Idle),
		Tasks:      res.Tasks,
		Nonlocal:   res.Nonlocal,
		Phases:     res.Phases,
		SeqTimeNS:  int64(res.SeqTime),
		Efficiency: res.Efficiency,
		Speedup:    res.Speedup,
		WallNS:     int64(res.Wall),
		Steals:     res.Steals,
		Domains:    res.Domains,
		AppResult:  res.AppResult,
		Canceled:   res.Canceled,
	}
}

// Decode converts a rips-result/v1 document back into (Config,
// Result), rejecting unknown schemas so readers fail loudly on a
// future v2 rather than silently misreading fields.
func (j ResultJSON) Decode() (Config, Result, error) {
	if j.Schema != ResultJSONSchema {
		return Config{}, Result{}, fmt.Errorf("rips: result schema %q, want %q", j.Schema, ResultJSONSchema)
	}
	cfg, err := j.Config.Decode()
	if err != nil {
		return Config{}, Result{}, err
	}
	res := Result{
		Time:       Time(j.TimeNS),
		Overhead:   Time(j.OverheadNS),
		Idle:       Time(j.IdleNS),
		Tasks:      j.Tasks,
		Nonlocal:   j.Nonlocal,
		Phases:     j.Phases,
		SeqTime:    Time(j.SeqTimeNS),
		Efficiency: j.Efficiency,
		Speedup:    j.Speedup,
		Wall:       time.Duration(j.WallNS),
		Steals:     j.Steals,
		Domains:    j.Domains,
		AppResult:  j.AppResult,
		Canceled:   j.Canceled,
	}
	return cfg, res, nil
}

// Canonical renders the wire config as the canonical cache-key string
// of the rips-result/v1 encoding: the JSON object with fields in
// struct order and zero-valued fields omitted (the encoding's
// omitempty convention), so two submissions that resolve to the same
// effective configuration — regardless of which defaults each spelled
// out — produce byte-identical keys. Callers must canonicalize the
// semantic defaults first (resolve "" enums, fill in defaulted machine
// sizes) the way the serving frontend's admission path does; Canonical
// then makes the textual encoding unambiguous. The result cache behind
// ripsd keys on this string.
func (j ConfigJSON) Canonical() string {
	// Marshal of a struct with string/number/bool fields cannot fail.
	b, err := json.Marshal(j)
	if err != nil {
		return fmt.Sprintf("unencodable:%v", err)
	}
	return string(b)
}
