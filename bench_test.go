// Benchmarks: one per paper table/figure (each benchmark iteration
// regenerates that experiment at reduced scale — run cmd/ripsbench for
// the full paper-scale output), plus micro-benchmarks of the core
// algorithms and the simulator substrate.
package rips_test

import (
	"math/rand"
	"sync"
	"testing"

	"rips"
	"rips/internal/app"
	"rips/internal/apps/kernels"
	"rips/internal/apps/nqueens"
	"rips/internal/exp"
	"rips/internal/sched/dem"
	"rips/internal/sched/flow"
	"rips/internal/sched/mwa"
	"rips/internal/sim"
	"rips/internal/topo"
)

// benchWorkloads caches the profiled quick workload set across
// benchmarks (profiling re-executes the applications sequentially).
var (
	benchOnce sync.Once
	benchWs   []exp.Workload
)

func quickWorkloads(b *testing.B) []exp.Workload {
	b.Helper()
	benchOnce.Do(func() { benchWs = exp.QuickWorkloads() })
	return benchWs
}

// BenchmarkFig4 regenerates Figure 4's MWA-vs-optimal normalized
// communication cost at one representative point per scale group.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := exp.Fig4([]int{8, 64}, []int{2, 20}, 10, 1)
		for _, p := range pts {
			if p.Normalized < 0 {
				b.Fatal("MWA beat the optimum")
			}
		}
	}
}

// BenchmarkTable1 regenerates a Table I block: one irregular workload
// under all four schedulers on a 16-processor mesh.
func BenchmarkTable1(b *testing.B) {
	ws := quickWorkloads(b)[:1]
	mesh := topo.NewMesh(4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table1(ws, mesh, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates Table II: sequential profiling and
// optimal-efficiency computation for the workload set.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := exp.NewWorkload(nqueens.New(11, 3), 0.4)
		if e := w.Profile.OptimalEfficiency(32); e <= 0 || e > 1 {
			b.Fatal("bad optimal efficiency")
		}
	}
}

// BenchmarkFig5 regenerates Figure 5: Table I rows plus Table II
// optima combined into normalized quality factors.
func BenchmarkFig5(b *testing.B) {
	ws := quickWorkloads(b)[:1]
	mesh := topo.NewMesh(4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table1(ws, mesh, 1, nil)
		if err != nil {
			b.Fatal(err)
		}
		pts := exp.Fig5(rows, exp.Table2(ws, mesh.Size()))
		if len(pts) != len(rows) {
			b.Fatal("missing quality factors")
		}
	}
}

// BenchmarkTable3 regenerates Table III: speedups across two machine
// sizes for one workload under all schedulers.
func BenchmarkTable3(b *testing.B) {
	ws := quickWorkloads(b)[:1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table3(ws, []int{8, 16}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicyAblation sweeps the four transfer policies plus the
// periodic detector (the design choices behind ANY-Lazy).
func BenchmarkPolicyAblation(b *testing.B) {
	w := exp.NewWorkload(nqueens.New(10, 3), 0.4)
	mesh := topo.NewMesh(4, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Ablation(w, mesh, 2*sim.Millisecond, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// ----------------------------------------------------- micro benches

// BenchmarkMWAPlan measures the pure Mesh Walking Algorithm on a
// 256-node mesh (the paper's largest Figure 4 machine).
func BenchmarkMWAPlan(b *testing.B) {
	mesh := topo.SquarishMesh(256)
	rng := rand.New(rand.NewSource(2))
	load := make([]int, 256)
	for i := range load {
		load[i] = rng.Intn(41)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mwa.Plan(mesh, load); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimalFlow measures the min-cost max-flow reference on the
// same instance — the complexity gap that motivates MWA.
func BenchmarkOptimalFlow(b *testing.B) {
	mesh := topo.SquarishMesh(256)
	rng := rand.New(rand.NewSource(2))
	load := make([]int, 256)
	for i := range load {
		load[i] = rng.Intn(41)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flow.Cost(mesh, load); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimPingPong measures the simulator's event throughput: one
// iteration is a 1000-message ping-pong between two nodes.
func BenchmarkSimPingPong(b *testing.B) {
	cfg := sim.Config{Topo: topo.NewRing(2), Latency: sim.DefaultLatency(), Seed: 1}
	for i := 0; i < b.N; i++ {
		_, err := sim.Run(cfg, func(n *sim.Node) {
			const rounds = 500
			if n.ID() == 0 {
				for r := 0; r < rounds; r++ {
					n.SendTag(1, 1, nil, 8)
					n.RecvTag(2)
				}
			} else {
				for r := 0; r < rounds; r++ {
					n.RecvTag(1)
					n.SendTag(0, 2, nil, 8)
				}
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRIPSQueens measures a whole RIPS run end to end (the
// library's primary code path).
func BenchmarkRIPSQueens(b *testing.B) {
	a := rips.NQueens(10)
	p := rips.Measure(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rips.RunProfiled(a, p, rips.Config{Procs: 16, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSequentialProfile measures app.Measure itself on the
// 12-queens search (real computation, no simulation).
func BenchmarkSequentialProfile(b *testing.B) {
	a := nqueens.New(12, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := app.Measure(a)
		if p.Tasks == 0 {
			b.Fatal("empty profile")
		}
	}
}

// BenchmarkTopologies runs the mesh/tree/hypercube RIPS comparison
// (the Section 5 generality claim).
func BenchmarkTopologies(b *testing.B) {
	w := exp.NewWorkload(nqueens.New(10, 3), 0.4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Topologies(w, 16, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDEMvsMWAOnMesh quantifies Section 5's critique of running
// the Dimension Exchange Method on a mesh: one iteration balances the
// same concentrated load with both schedulers.
func BenchmarkDEMvsMWAOnMesh(b *testing.B) {
	mesh := topo.NewMesh(8, 4)
	rng := rand.New(rand.NewSource(3))
	load := make([]int, 32)
	for i := range load {
		load[i] = rng.Intn(30)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dr, err := dem.MeshPlan(mesh, load, 200)
		if err != nil {
			b.Fatal(err)
		}
		opt, err := flow.Cost(mesh, load)
		if err != nil {
			b.Fatal(err)
		}
		if dr.Plan.Cost() <= opt {
			b.Fatal("DEM unexpectedly at/below the optimal transfer count")
		}
	}
}

// BenchmarkTaxonomy measures the Section 1 problem-taxonomy experiment
// at reduced scale.
func BenchmarkTaxonomy(b *testing.B) {
	gauss := kernels.NewGauss(256, 16)
	queens := nqueens.New(10, 3)
	ws := []exp.TaxonomyWorkload{
		{App: gauss, Profile: app.Measure(gauss), Class: "static"},
		{App: queens, Profile: app.Measure(queens), Class: "dynamic"},
	}
	mesh := topo.NewMesh(4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Taxonomy(ws, mesh, 1); err != nil {
			b.Fatal(err)
		}
	}
}
