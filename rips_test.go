package rips_test

import (
	"math/rand"
	"testing"

	"rips"
)

func TestRunNQueensAllAlgorithms(t *testing.T) {
	a := rips.NQueens(10)
	p := rips.Measure(a)
	for _, alg := range []rips.Algorithm{rips.RIPS, rips.Random, rips.Gradient, rips.RID} {
		res, err := rips.RunProfiled(a, p, rips.Config{Procs: 16, Algorithm: alg, Seed: 2})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Tasks != int64(p.Tasks) {
			t.Errorf("%v: tasks %d, want %d", alg, res.Tasks, p.Tasks)
		}
		if res.Efficiency <= 0 || res.Efficiency > 1 {
			t.Errorf("%v: efficiency %v", alg, res.Efficiency)
		}
		if res.Speedup <= 1 {
			t.Errorf("%v: speedup %v", alg, res.Speedup)
		}
		if res.SeqTime != p.Work {
			t.Errorf("%v: SeqTime %v, want %v", alg, res.SeqTime, p.Work)
		}
	}
}

func TestRIPSPolicyKnobs(t *testing.T) {
	a := rips.NQueens(9)
	for _, cfg := range []rips.Config{
		{Procs: 8},
		{Procs: 8, Eager: true},
		{Procs: 8, All: true},
		{Procs: 8, Eager: true, All: true},
		{Procs: 8, Periodic: 2 * rips.Millisecond},
	} {
		res, err := rips.Run(a, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if res.Phases < 1 {
			t.Errorf("%+v: phases %d", cfg, res.Phases)
		}
	}
}

func TestExplicitMeshShape(t *testing.T) {
	a := rips.NQueens(8)
	if _, err := rips.Run(a, rips.Config{Rows: 2, Cols: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := rips.Run(a, rips.Config{Rows: 2}); err == nil {
		t.Error("half-specified shape accepted")
	}
	if _, err := rips.Run(a, rips.Config{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := rips.Run(a, rips.Config{Procs: 16, Algorithm: rips.Algorithm(99)}); err == nil {
		t.Error("bad algorithm accepted")
	}
}

func TestBalanceMesh(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		load := make([]int, 32)
		for i := range load {
			load[i] = rng.Intn(20)
		}
		r, err := rips.BalanceMesh(8, 4, load)
		if err != nil {
			t.Fatal(err)
		}
		// Apply moves and verify the quota is reached.
		cur := append([]int(nil), load...)
		for _, m := range r.Moves {
			cur[m.From] -= m.Count
			cur[m.To] += m.Count
			if cur[m.From] < 0 {
				t.Fatalf("move drives node %d negative", m.From)
			}
		}
		for i := range cur {
			if cur[i] != r.Quota[i] {
				t.Fatalf("node %d: %d != quota %d", i, cur[i], r.Quota[i])
			}
		}
		opt, err := rips.OptimalCost(8, 4, load)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cost < opt {
			t.Fatalf("MWA cost %d below optimal %d", r.Cost, opt)
		}
		if r.Steps != 3*(8+4) {
			t.Fatalf("Steps = %d", r.Steps)
		}
	}
}

func TestBalanceMeshErrors(t *testing.T) {
	if _, err := rips.BalanceMesh(2, 2, []int{1}); err == nil {
		t.Error("bad length accepted")
	}
	if _, err := rips.OptimalCost(2, 2, []int{1, -1, 0, 0}); err == nil {
		t.Error("negative load accepted")
	}
}

func TestRIPSBeatsRandomOnLocality(t *testing.T) {
	a := rips.NQueens(11)
	p := rips.Measure(a)
	rr, err := rips.RunProfiled(a, p, rips.Config{Procs: 16, Algorithm: rips.RIPS})
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := rips.RunProfiled(a, p, rips.Config{Procs: 16, Algorithm: rips.Random})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Nonlocal >= rnd.Nonlocal {
		t.Errorf("RIPS nonlocal %d >= random %d", rr.Nonlocal, rnd.Nonlocal)
	}
}

func TestBuiltinWorkloadConstructors(t *testing.T) {
	if got := rips.NQueens(12).Name(); got != "12-queens" {
		t.Errorf("NQueens name = %q", got)
	}
	if got := rips.MolecularDynamics(12).Name(); got != "gromos 12A" {
		t.Errorf("MolecularDynamics name = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Puzzle15(0) did not panic")
		}
	}()
	rips.Puzzle15(0)
}

func TestAlgorithmStrings(t *testing.T) {
	names := map[rips.Algorithm]string{
		rips.RIPS: "rips", rips.Random: "random",
		rips.Gradient: "gradient", rips.RID: "rid",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q", int(a), a.String())
		}
	}
}

func TestTopologies(t *testing.T) {
	a := rips.NQueens(9)
	for _, topoName := range []string{"mesh", "tree", "hypercube"} {
		res, err := rips.Run(a, rips.Config{Procs: 16, Topology: topoName, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", topoName, err)
		}
		if res.Tasks == 0 || res.Efficiency <= 0 {
			t.Errorf("%s: %+v", topoName, res)
		}
	}
	if _, err := rips.Run(a, rips.Config{Procs: 12, Topology: "hypercube"}); err == nil {
		t.Error("non-power-of-two hypercube accepted")
	}
	if _, err := rips.Run(a, rips.Config{Procs: 16, Topology: "torus"}); err == nil {
		t.Error("unknown topology accepted")
	}
	// Baselines also run on the alternative machines.
	if _, err := rips.Run(a, rips.Config{Procs: 15, Topology: "tree", Algorithm: rips.RID}); err != nil {
		t.Errorf("RID on tree: %v", err)
	}
}
