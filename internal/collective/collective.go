// Package collective implements the cooperative communication
// operations the RIPS system phase is built from: barrier, broadcast,
// reduce, all-reduce and prefix scan over the simulated machine.
//
// All operations are synchronous SPMD calls — every node must invoke
// the same operation with the same root and tag — and are implemented
// on binomial trees over node ranks, giving the O(log N) step counts
// the paper's "fast global operations" assume. Link costs still follow
// the machine topology through the simulator's latency model.
package collective

import (
	"rips/internal/invariant"
	"rips/internal/sim"
)

// Comm scopes collective traffic to a tag range so that concurrent
// application traffic (task migration, load updates) cannot be confused
// with protocol traffic. Operations use tags TagBase..TagBase+2.
type Comm struct {
	Node    *sim.Node
	TagBase int
}

// Tags used relative to TagBase.
const (
	tagUp   = iota // reduction / barrier arrivals
	tagDown        // broadcast / barrier release
	tagScan        // prefix-scan traffic
	numTags        // reserved width of a Comm's tag space
)

// TagSpan is the number of consecutive tags a Comm consumes; callers
// carving up a tag space should leave this much room.
const TagSpan = numTags

// Op combines two reduction operands.
type Op func(a, b int64) int64

// Standard reduction operators.
func Sum(a, b int64) int64 { return a + b }
func Max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
func Min(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
func Or(a, b int64) int64 { return a | b }

// rel translates a node id to its rank relative to root, so any node
// can be the root of the binomial tree.
func rel(id, root, n int) int { return (id - root + n) % n }

// abs translates a relative rank back to a node id.
func abs(rank, root, n int) int { return (rank + root) % n }

// parentChildren returns the binomial-tree parent (or -1 for the root)
// and children of this node for the given root.
func (c *Comm) parentChildren(root int) (parent int, children []int) {
	n := c.Node.N()
	r := rel(c.Node.ID(), root, n)
	if r == 0 {
		parent = -1
	} else {
		// Clear the lowest set bit to find the parent rank.
		parent = abs(r&(r-1), root, n)
	}
	// Children are r + 2^k for 2^k > lowest set bit of r (or all powers
	// of two for the root), while still < n.
	low := r & (-r)
	if r == 0 {
		low = 0
	}
	for bit := 1; r+bit < n; bit <<= 1 {
		if low != 0 && bit >= low {
			break
		}
		children = append(children, abs(r+bit, root, n))
	}
	return parent, children
}

// Bcast distributes data of the given size from root to all nodes and
// returns the received value (root returns its own argument).
func (c *Comm) Bcast(root int, data any, size int) any {
	parent, children := c.parentChildren(root)
	if parent >= 0 {
		m := c.Node.RecvFrom(parent, c.TagBase+tagDown)
		data = m.Data
		size = m.Size
	}
	for _, ch := range children {
		c.Node.SendTag(ch, c.TagBase+tagDown, data, size)
	}
	return data
}

// Reduce combines every node's value with op; the result is defined
// only at root (other nodes receive their partial combination).
func (c *Comm) Reduce(root int, value int64, op Op) int64 {
	parent, children := c.parentChildren(root)
	// Receive children in reverse order: the largest subtree (latest
	// child rank) is the deepest and arrives last.
	for i := len(children) - 1; i >= 0; i-- {
		m := c.Node.RecvFrom(children[i], c.TagBase+tagUp)
		value = op(value, m.Data.(int64))
	}
	if parent >= 0 {
		c.Node.SendTag(parent, c.TagBase+tagUp, value, 8)
	}
	return value
}

// AllReduce combines every node's value with op and distributes the
// result to all nodes.
func (c *Comm) AllReduce(value int64, op Op) int64 {
	v := c.Reduce(0, value, op)
	r := c.Bcast(0, v, 8)
	return r.(int64)
}

// ReduceVec element-wise reduces equal-length vectors to root. The
// slice passed in is not modified; the root's return value holds the
// combination. Panics if lengths differ across nodes (a protocol bug).
func (c *Comm) ReduceVec(root int, value []int64, op Op) []int64 {
	acc := make([]int64, len(value))
	copy(acc, value)
	parent, children := c.parentChildren(root)
	for i := len(children) - 1; i >= 0; i-- {
		m := c.Node.RecvFrom(children[i], c.TagBase+tagUp)
		v := m.Data.([]int64)
		if len(v) != len(acc) {
			invariant.Violated("collective: ReduceVec length mismatch %d vs %d", len(v), len(acc))
		}
		for j := range acc {
			acc[j] = op(acc[j], v[j])
		}
	}
	if parent >= 0 {
		c.Node.SendTag(parent, c.TagBase+tagUp, acc, 8*len(acc))
	}
	return acc
}

// AllReduceVec element-wise reduces and redistributes a vector.
func (c *Comm) AllReduceVec(value []int64, op Op) []int64 {
	v := c.ReduceVec(0, value, op)
	r := c.Bcast(0, v, 8*len(v))
	return r.([]int64)
}

// Barrier blocks until every node has entered it.
func (c *Comm) Barrier() {
	c.AllReduce(0, Sum)
}

// Scan computes the inclusive prefix combination of value over node
// ids: node i returns op(v_0, ..., v_i). It runs the classic
// Hillis-Steele doubling scheme in ceil(log2 N) rounds.
func (c *Comm) Scan(value int64, op Op) int64 {
	n := c.Node.N()
	id := c.Node.ID()
	incl := value // inclusive prefix so far
	for d := 1; d < n; d <<= 1 {
		if id+d < n {
			c.Node.SendTag(id+d, c.TagBase+tagScan, incl, 8)
		}
		if id-d >= 0 {
			m := c.Node.RecvFrom(id-d, c.TagBase+tagScan)
			incl = op(m.Data.(int64), incl)
		}
	}
	return incl
}

// Gather collects every node's value at root, indexed by node id; only
// the root's return value is meaningful (others return nil).
func (c *Comm) Gather(root int, value int64) []int64 {
	n := c.Node.N()
	parent, children := c.parentChildren(root)
	// Each subtree sends a map of id->value up the tree; sizes are
	// small (N <= a few hundred in our experiments).
	acc := map[int]int64{c.Node.ID(): value}
	for i := len(children) - 1; i >= 0; i-- {
		m := c.Node.RecvFrom(children[i], c.TagBase+tagUp)
		for k, v := range m.Data.(map[int]int64) {
			acc[k] = v
		}
	}
	if parent >= 0 {
		c.Node.SendTag(parent, c.TagBase+tagUp, acc, 12*len(acc))
		return nil
	}
	out := make([]int64, n)
	for k, v := range acc {
		out[k] = v
	}
	return out
}
