package collective

import (
	"testing"

	"rips/internal/sim"
	"rips/internal/topo"
)

// runOn executes body on every node of an n-node ring with free
// communication and returns the aggregate result.
func runOn(t *testing.T, tp topo.Topology, body func(c *Comm)) sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Config{Topo: tp, Latency: sim.DefaultLatency(), Seed: 5}, func(n *sim.Node) {
		body(&Comm{Node: n, TagBase: 100})
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sizes() []int { return []int{1, 2, 3, 4, 7, 8, 16, 25, 32} }

func TestAllReduceSum(t *testing.T) {
	for _, n := range sizes() {
		want := int64(n * (n - 1) / 2)
		runOn(t, topo.NewRing(n), func(c *Comm) {
			if got := c.AllReduce(int64(c.Node.ID()), Sum); got != want {
				t.Errorf("n=%d node %d: AllReduce = %d, want %d", n, c.Node.ID(), got, want)
			}
		})
	}
}

func TestAllReduceMaxMinOr(t *testing.T) {
	runOn(t, topo.NewMesh(4, 4), func(c *Comm) {
		id := int64(c.Node.ID())
		if got := c.AllReduce(id, Max); got != 15 {
			t.Errorf("Max = %d", got)
		}
		if got := c.AllReduce(id, Min); got != 0 {
			t.Errorf("Min = %d", got)
		}
		var bit int64
		if c.Node.ID() == 7 {
			bit = 4
		}
		if got := c.AllReduce(bit, Or); got != 4 {
			t.Errorf("Or = %d", got)
		}
	})
}

func TestReduceAtNonzeroRoot(t *testing.T) {
	for _, root := range []int{0, 3, 7} {
		runOn(t, topo.NewRing(8), func(c *Comm) {
			got := c.Reduce(root, 1, Sum)
			if c.Node.ID() == root && got != 8 {
				t.Errorf("root %d: Reduce = %d, want 8", root, got)
			}
		})
	}
}

func TestBcast(t *testing.T) {
	for _, root := range []int{0, 5} {
		runOn(t, topo.NewMesh(8, 4), func(c *Comm) {
			var data any
			if c.Node.ID() == root {
				data = "payload"
			}
			got := c.Bcast(root, data, 16)
			if got.(string) != "payload" {
				t.Errorf("node %d got %v", c.Node.ID(), got)
			}
		})
	}
}

func TestScanInclusivePrefix(t *testing.T) {
	for _, n := range sizes() {
		runOn(t, topo.NewRing(n), func(c *Comm) {
			id := int64(c.Node.ID())
			got := c.Scan(id+1, Sum) // values 1..n
			want := (id + 1) * (id + 2) / 2
			if got != want {
				t.Errorf("n=%d node %d: Scan = %d, want %d", n, id, got, want)
			}
		})
	}
}

func TestScanMax(t *testing.T) {
	vals := []int64{5, 1, 9, 2, 8, 3, 7, 0}
	runOn(t, topo.NewRing(8), func(c *Comm) {
		id := c.Node.ID()
		want := vals[0]
		for _, v := range vals[1 : id+1] {
			if v > want {
				want = v
			}
		}
		if got := c.Scan(vals[id], Max); got != want {
			t.Errorf("node %d: Scan(Max) = %d, want %d", id, got, want)
		}
	})
}

func TestReduceVecAndAllReduceVec(t *testing.T) {
	runOn(t, topo.NewMesh(4, 4), func(c *Comm) {
		v := []int64{int64(c.Node.ID()), 1, -int64(c.Node.ID())}
		got := c.AllReduceVec(v, Sum)
		if got[0] != 120 || got[1] != 16 || got[2] != -120 {
			t.Errorf("AllReduceVec = %v", got)
		}
		// input must be unmodified
		if v[1] != 1 {
			t.Errorf("input vector mutated: %v", v)
		}
	})
}

func TestGather(t *testing.T) {
	runOn(t, topo.NewRing(9), func(c *Comm) {
		got := c.Gather(4, int64(c.Node.ID()*10))
		if c.Node.ID() == 4 {
			if len(got) != 9 {
				t.Fatalf("Gather len = %d", len(got))
			}
			for i, v := range got {
				if v != int64(i*10) {
					t.Errorf("Gather[%d] = %d", i, v)
				}
			}
		} else if got != nil {
			t.Errorf("non-root node %d got %v", c.Node.ID(), got)
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	var after []sim.Time
	res, err := sim.Run(sim.Config{Topo: topo.NewRing(8), Latency: sim.ZeroLatency(), Seed: 1}, func(n *sim.Node) {
		c := &Comm{Node: n, TagBase: 0}
		n.Compute(sim.Time(n.ID()) * sim.Millisecond)
		c.Barrier()
		after = append(after, n.Now())
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	for _, tm := range after {
		if tm < 7*sim.Millisecond {
			t.Errorf("node left barrier at %v, before slowest node arrived", tm)
		}
	}
}

func TestConsecutiveCollectivesDoNotCrosstalk(t *testing.T) {
	runOn(t, topo.NewRing(16), func(c *Comm) {
		for round := int64(0); round < 5; round++ {
			if got := c.AllReduce(round, Max); got != round {
				t.Errorf("round %d: AllReduce = %d", round, got)
			}
			if got := c.Scan(1, Sum); got != int64(c.Node.ID()+1) {
				t.Errorf("round %d: Scan = %d", round, got)
			}
		}
	})
}

func TestLogarithmicDepth(t *testing.T) {
	// On a 64-node machine with uniform latency, an AllReduce should
	// finish in O(log N) message latencies, not O(N).
	lat := sim.LatencyModel{Base: sim.Millisecond}
	res, err := sim.Run(sim.Config{Topo: topo.NewRing(64), Latency: lat, Seed: 1}, func(n *sim.Node) {
		c := &Comm{Node: n, TagBase: 0}
		c.AllReduce(1, Sum)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Depth is ~log2(64)=6 up plus 6 down; allow slack for tree shape.
	if res.End > 14*sim.Millisecond {
		t.Errorf("AllReduce on 64 nodes took %v, want O(log N) ~ <= 14ms", res.End)
	}
}
