package task

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQueueFIFO(t *testing.T) {
	var q Queue
	for i := uint64(0); i < 10; i++ {
		q.PushBack(Task{ID: i})
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := uint64(0); i < 10; i++ {
		got, ok := q.PopFront()
		if !ok || got.ID != i {
			t.Fatalf("PopFront #%d = %+v, %v", i, got, ok)
		}
	}
	if _, ok := q.PopFront(); ok {
		t.Fatal("PopFront on empty queue succeeded")
	}
	if !q.Empty() {
		t.Fatal("queue not empty")
	}
}

func TestQueuePushFront(t *testing.T) {
	var q Queue
	q.PushBack(Task{ID: 2})
	q.PushFront(Task{ID: 1})
	// Exercise the head>0 fast path: pop then push front again.
	got, _ := q.PopFront()
	if got.ID != 1 {
		t.Fatalf("front = %d", got.ID)
	}
	q.PushFront(Task{ID: 0})
	got, _ = q.PopFront()
	if got.ID != 0 {
		t.Fatalf("front = %d", got.ID)
	}
	got, _ = q.PopFront()
	if got.ID != 2 {
		t.Fatalf("front = %d", got.ID)
	}
}

func TestQueuePopBack(t *testing.T) {
	var q Queue
	for i := uint64(0); i < 3; i++ {
		q.PushBack(Task{ID: i})
	}
	got, ok := q.PopBack()
	if !ok || got.ID != 2 {
		t.Fatalf("PopBack = %+v", got)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	var e Queue
	if _, ok := e.PopBack(); ok {
		t.Fatal("PopBack on empty queue succeeded")
	}
}

func TestTakeBack(t *testing.T) {
	var q Queue
	for i := uint64(0); i < 5; i++ {
		q.PushBack(Task{ID: i})
	}
	got := q.TakeBack(2)
	if len(got) != 2 || got[0].ID != 3 || got[1].ID != 4 {
		t.Fatalf("TakeBack(2) = %v", got)
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d", q.Len())
	}
	if got := q.TakeBack(99); len(got) != 3 {
		t.Fatalf("TakeBack(99) = %d tasks", len(got))
	}
	if got := q.TakeBack(1); got != nil {
		t.Fatalf("TakeBack on empty = %v", got)
	}
	if got := q.TakeBack(0); got != nil {
		t.Fatalf("TakeBack(0) = %v", got)
	}
	if got := q.TakeBack(-1); got != nil {
		t.Fatalf("TakeBack(-1) = %v", got)
	}
}

func TestTakeBackInto(t *testing.T) {
	var q Queue
	for i := uint64(0); i < 5; i++ {
		q.PushBack(Task{ID: i})
	}
	buf := make([]Task, 2)
	if got := q.TakeBackInto(buf); got != 2 || buf[0].ID != 3 || buf[1].ID != 4 {
		t.Fatalf("TakeBackInto([2]) = %d, buf %v", got, buf)
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d", q.Len())
	}
	// Oversized destination takes what is there and no more.
	big := make([]Task, 99)
	if got := q.TakeBackInto(big); got != 3 || big[0].ID != 0 || big[2].ID != 2 {
		t.Fatalf("TakeBackInto([99]) = %d, front %v", got, big[:3])
	}
	if got := q.TakeBackInto(buf); got != 0 {
		t.Fatalf("TakeBackInto on empty = %d", got)
	}
	if got := q.TakeBackInto(nil); got != 0 {
		t.Fatalf("TakeBackInto(nil) = %d", got)
	}
}

func TestClear(t *testing.T) {
	var q Queue
	for i := uint64(0); i < 100; i++ {
		q.PushBack(Task{ID: i, Data: &i})
	}
	q.PopFront() // move head so Clear must reset it too
	before := cap(q.items)
	q.Clear()
	if !q.Empty() || q.head != 0 {
		t.Fatalf("after Clear: Len=%d head=%d", q.Len(), q.head)
	}
	if cap(q.items) != before {
		t.Fatalf("Clear dropped capacity: %d -> %d", before, cap(q.items))
	}
	for i := range q.items[:cap(q.items)] {
		if q.items[:cap(q.items)][i].Data != nil {
			t.Fatalf("Clear retained payload reference at slot %d", i)
		}
	}
	q.PushBack(Task{ID: 7})
	if got, _ := q.PopFront(); got.ID != 7 {
		t.Fatalf("reuse after Clear popped %d", got.ID)
	}
}

func TestDrainAndPushAll(t *testing.T) {
	var q Queue
	q.PushAll([]Task{{ID: 1}, {ID: 2}, {ID: 3}})
	q.PopFront()
	all := q.Drain()
	if len(all) != 2 || all[0].ID != 2 || all[1].ID != 3 {
		t.Fatalf("Drain = %v", all)
	}
	if !q.Empty() {
		t.Fatal("queue not empty after Drain")
	}
	q.PushBack(Task{ID: 9})
	if q.Len() != 1 {
		t.Fatalf("Len after reuse = %d", q.Len())
	}
}

func TestCompaction(t *testing.T) {
	var q Queue
	// Interleave pushes and pops to force head growth and compaction.
	for i := uint64(0); i < 1000; i++ {
		q.PushBack(Task{ID: i})
		if i%2 == 1 {
			q.PopFront()
		}
	}
	if q.Len() != 500 {
		t.Fatalf("Len = %d", q.Len())
	}
	want := uint64(999) // the back element
	got, _ := q.PopBack()
	if got.ID != want {
		t.Fatalf("PopBack = %d, want %d", got.ID, want)
	}
	if q.head >= len(q.items) && q.Len() > 0 {
		t.Fatal("internal invariant violated after compaction")
	}
}

// TestQueueModel drives the queue with random operations against a
// plain-slice model, via testing/quick.
func TestQueueModel(t *testing.T) {
	f := func(ops []uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		var model []Task
		next := uint64(0)
		for _, op := range ops {
			switch op % 6 {
			case 0: // PushBack
				tk := Task{ID: next}
				next++
				q.PushBack(tk)
				model = append(model, tk)
			case 1: // PushFront
				tk := Task{ID: next}
				next++
				q.PushFront(tk)
				model = append([]Task{tk}, model...)
			case 2: // PopFront
				got, ok := q.PopFront()
				if len(model) == 0 {
					if ok {
						return false
					}
				} else {
					if !ok || got.ID != model[0].ID {
						return false
					}
					model = model[1:]
				}
			case 3: // PopBack
				got, ok := q.PopBack()
				if len(model) == 0 {
					if ok {
						return false
					}
				} else {
					if !ok || got.ID != model[len(model)-1].ID {
						return false
					}
					model = model[:len(model)-1]
				}
			case 4: // TakeBack(k)
				k := rng.Intn(4)
				got := q.TakeBack(k)
				if k > len(model) {
					k = len(model)
				}
				if len(got) != k {
					return false
				}
				for i := 0; i < k; i++ {
					if got[i].ID != model[len(model)-k+i].ID {
						return false
					}
				}
				model = model[:len(model)-k]
			case 5: // TakeBackInto(k)
				k := rng.Intn(4)
				buf := make([]Task, k)
				got := q.TakeBackInto(buf)
				if k > len(model) {
					k = len(model)
				}
				if got != k {
					return false
				}
				for i := 0; i < k; i++ {
					if buf[i].ID != model[len(model)-k+i].ID {
						return false
					}
				}
				model = model[:len(model)-k]
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
