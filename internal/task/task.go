// Package task defines the unit of schedulable work and the queues the
// paper's runtime keeps on every processor: the ready-to-execute (RTE)
// queue and, under eager scheduling, the ready-to-schedule (RTS) queue.
package task

// Task is one schedulable unit. The scheduler treats all tasks as
// equal-sized (the paper's simplifying assumption — grain-size error is
// corrected by the next system phase); the application supplies the
// payload and the actual work is discovered on execution.
type Task struct {
	// ID is unique within a run (assigned by the generating node from
	// a node-partitioned sequence).
	ID uint64
	// Origin is the node that generated the task. A task executed on a
	// node other than Origin is "nonlocal" — the paper's locality
	// metric (Table I column 2).
	Origin int
	// Size is the serialized payload size in bytes, used to price
	// migration messages.
	Size int
	// Data is the application payload; the scheduler never inspects it.
	Data any
}

// Queue is a double-ended task queue. The zero value is an empty queue
// ready for use. Execution consumes from the front; migration takes
// from the back, so the tasks a node generated most recently (best
// locality of reference) are the ones exported.
type Queue struct {
	items []Task
	head  int
}

// Len returns the number of queued tasks.
func (q *Queue) Len() int { return len(q.items) - q.head }

// Empty reports whether the queue has no tasks.
func (q *Queue) Empty() bool { return q.Len() == 0 }

// PushBack appends a task at the back.
func (q *Queue) PushBack(t Task) { q.items = append(q.items, t) } //ripslint:allow hotpath the backing array retains its capacity across phases; steady-state growth is zero (TestSteadyStateZeroAlloc pins it)

// PushFront prepends a task at the front.
func (q *Queue) PushFront(t Task) {
	if q.head > 0 {
		q.head--
		q.items[q.head] = t
		return
	}
	q.items = append([]Task{t}, q.items...)
}

// PopFront removes and returns the front task; ok is false when empty.
func (q *Queue) PopFront() (t Task, ok bool) {
	if q.Empty() {
		return Task{}, false
	}
	t = q.items[q.head]
	q.items[q.head] = Task{} // release payload reference
	q.head++
	q.maybeCompact()
	return t, true
}

// PopBack removes and returns the back task; ok is false when empty.
func (q *Queue) PopBack() (t Task, ok bool) {
	if q.Empty() {
		return Task{}, false
	}
	last := len(q.items) - 1
	t = q.items[last]
	q.items[last] = Task{}
	q.items = q.items[:last]
	q.maybeCompact()
	return t, true
}

// TakeBackInto removes up to len(dst) tasks from the back and copies
// them into dst in queue order (dst's last element was the queue's
// back), returning the number taken. It is the allocation-free form of
// TakeBack: the caller owns dst, so a migration buffer can be reused
// across system phases.
func (q *Queue) TakeBackInto(dst []Task) int {
	n := len(dst)
	if n > q.Len() {
		n = q.Len()
	}
	if n == 0 {
		return 0
	}
	cut := len(q.items) - n
	copy(dst, q.items[cut:])
	for i := cut; i < len(q.items); i++ {
		q.items[i] = Task{}
	}
	q.items = q.items[:cut]
	q.maybeCompact()
	return n
}

// Clear empties the queue, releasing every payload reference but
// retaining the backing array so refills after a Clear do not
// reallocate.
func (q *Queue) Clear() {
	for i := q.head; i < len(q.items); i++ {
		q.items[i] = Task{}
	}
	q.items = q.items[:0]
	q.head = 0
}

// TakeBack removes up to n tasks from the back and returns them in
// queue order (the slice's last element was the queue's back).
func (q *Queue) TakeBack(n int) []Task {
	if n <= 0 {
		return nil
	}
	if n > q.Len() {
		n = q.Len()
	}
	if n == 0 {
		return nil
	}
	cut := len(q.items) - n
	out := make([]Task, n)
	copy(out, q.items[cut:])
	for i := cut; i < len(q.items); i++ {
		q.items[i] = Task{}
	}
	q.items = q.items[:cut]
	q.maybeCompact()
	return out
}

// Drain removes and returns all tasks in queue order.
func (q *Queue) Drain() []Task {
	out := make([]Task, q.Len())
	copy(out, q.items[q.head:])
	q.items = q.items[:0]
	q.head = 0
	return out
}

// PushAll appends tasks preserving slice order.
func (q *Queue) PushAll(ts []Task) {
	q.items = append(q.items, ts...) //ripslint:allow hotpath the backing array retains its capacity across phases; steady-state growth is zero (TestSteadyStateZeroAlloc pins it)
}

// maybeCompact reclaims the dead prefix once it dominates the backing
// array, keeping amortized O(1) operations without unbounded growth.
func (q *Queue) maybeCompact() {
	if q.head > 32 && q.head > len(q.items)/2 {
		n := copy(q.items, q.items[q.head:])
		for i := n; i < len(q.items); i++ {
			q.items[i] = Task{}
		}
		q.items = q.items[:n]
		q.head = 0
	}
}
