//go:build linux

package affinity

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"unsafe"
)

// nodeRoot is the sysfs NUMA topology root; a variable so tests can
// point detection at a synthetic tree.
var nodeRoot = "/sys/devices/system/node"

// detect enumerates NUMA nodes from sysfs. Nodes without local CPUs
// (memory-only nodes) are skipped: a scheduling domain with nothing to
// schedule on is useless to the hybrid backend. Any read or parse
// problem degrades to the portable fallback — detection must never
// fail.
func detect() []Domain {
	entries, err := os.ReadDir(nodeRoot)
	if err != nil {
		return fallbackDomains()
	}
	var doms []Domain
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "node") {
			continue
		}
		id, err := strconv.Atoi(name[len("node"):])
		if err != nil {
			continue
		}
		b, err := os.ReadFile(filepath.Join(nodeRoot, name, "cpulist"))
		if err != nil {
			continue
		}
		cpus, err := parseCPUList(string(b))
		if err != nil || len(cpus) == 0 {
			continue
		}
		doms = append(doms, Domain{Node: id, CPUs: cpus})
	}
	if len(doms) == 0 {
		return fallbackDomains()
	}
	return doms
}

// cpuSetWords sizes the affinity mask at 1024 CPUs — the kernel's
// historical CPU_SETSIZE, comfortably above any machine this runs on.
const cpuSetWords = 1024 / 64

type cpuSet [cpuSetWords]uint64

func (s *cpuSet) set(cpu int) bool {
	if cpu < 0 || cpu >= cpuSetWords*64 {
		return false
	}
	s[cpu/64] |= 1 << (uint(cpu) % 64)
	return true
}

// schedAffinity wraps the raw sched_{get,set}affinity syscalls on the
// calling thread (pid 0). The stdlib syscall package exports the
// syscall numbers but not wrappers, so the shim issues them directly —
// no external dependencies.
func schedAffinity(trap uintptr, set *cpuSet) error {
	_, _, errno := syscall.RawSyscall(trap, 0, uintptr(cpuSetWords*8), uintptr(unsafe.Pointer(set)))
	if errno != 0 {
		return errno
	}
	return nil
}

// pin applies the CPU set to the calling thread and returns a restore
// closure reinstating the mask read before the change.
func pin(cpus []int) (func(), error) {
	var prev cpuSet
	if err := schedAffinity(syscall.SYS_SCHED_GETAFFINITY, &prev); err != nil {
		return nil, fmt.Errorf("affinity: reading current mask: %w", err)
	}
	var want cpuSet
	for _, c := range cpus {
		if !want.set(c) {
			return nil, fmt.Errorf("affinity: cpu %d out of mask range", c)
		}
	}
	if err := schedAffinity(syscall.SYS_SCHED_SETAFFINITY, &want); err != nil {
		return nil, fmt.Errorf("affinity: pinning to %v: %w", cpus, err)
	}
	return func() {
		// Restoration is best-effort: the thread is about to be unlocked
		// (or is exiting) either way, and there is nobody to report to.
		_ = schedAffinity(syscall.SYS_SCHED_SETAFFINITY, &prev)
	}, nil
}
