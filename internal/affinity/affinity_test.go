package affinity

import (
	"reflect"
	"testing"
)

func TestDomainsNonEmpty(t *testing.T) {
	doms := Domains()
	if len(doms) == 0 {
		t.Fatal("Domains() returned no domains; the fallback must guarantee at least one")
	}
	for i, d := range doms {
		if i > 0 && doms[i-1].Node >= d.Node {
			t.Errorf("domains out of node order: %v", doms)
		}
		if d.Width() < 1 {
			t.Errorf("domain %d has width %d", d.Node, d.Width())
		}
		for j := 1; j < len(d.CPUs); j++ {
			if d.CPUs[j-1] >= d.CPUs[j] {
				t.Errorf("domain %d CPU set not ascending: %v", d.Node, d.CPUs)
			}
		}
	}
}

func TestParseCPUList(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []int
	}{
		{"0", []int{0}},
		{"0-3", []int{0, 1, 2, 3}},
		{"0-2,5,8-9\n", []int{0, 1, 2, 5, 8, 9}},
		{" 4,2 ", []int{2, 4}},
		{"", nil},
		{"\n", nil},
	} {
		got, err := parseCPUList(tc.in)
		if err != nil {
			t.Errorf("parseCPUList(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseCPUList(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"x", "3-1", "-2", "1-"} {
		if got, err := parseCPUList(bad); err == nil {
			t.Errorf("parseCPUList(%q) = %v, want error", bad, got)
		}
	}
}

func TestPinEmptySetRefused(t *testing.T) {
	if _, err := Pin(nil); err == nil {
		t.Error("Pin(nil) succeeded; an empty set must be refused")
	}
}
