// Package affinity is the small OS shim behind the hierarchical hybrid
// backend (internal/par, Strategy Hybrid): it discovers the machine's
// NUMA domains and pins the calling thread to a domain's CPU set, so
// the hybrid runtime can make the paper's Theorem 2 locality physical —
// tasks stolen within a domain stay inside one cache/memory hierarchy,
// and only the RIPS system phases cross it.
//
// On Linux the domains come from /sys/devices/system/node and pinning
// is sched_setaffinity on the calling thread (raw syscall; no
// dependencies). Everywhere else — and on Linux machines whose sysfs
// is absent or single-node — the package degrades to one domain
// covering every CPU and pinning becomes a no-op refusal the caller
// falls back from. Nothing above this package may fail because
// affinity is unavailable: detection always returns at least one
// domain, and a Pin error must leave the caller running unpinned but
// otherwise unchanged (internal/par tests pin that contract).
package affinity

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Domain is one scheduling domain: a NUMA node and the CPUs local to
// it. CPUs is nil when the platform cannot enumerate them (the
// portable fallback); a nil set cannot be pinned to.
type Domain struct {
	// Node is the OS node index (the N of /sys/devices/system/node/nodeN
	// on Linux; 0 in the fallback).
	Node int
	// CPUs are the logical CPU indices local to the node, ascending.
	CPUs []int
}

var (
	detectOnce sync.Once
	detected   []Domain
)

// Domains returns the machine's NUMA domains, ascending by node index.
// The result always has at least one entry: platforms (or machines)
// without visible NUMA topology report a single domain covering the
// whole machine with a nil CPU set. Detection runs once per process
// and is cached.
func Domains() []Domain {
	detectOnce.Do(func() {
		detected = detect()
		if len(detected) == 0 {
			detected = []Domain{{Node: 0}}
		}
		sort.Slice(detected, func(i, j int) bool { return detected[i].Node < detected[j].Node })
	})
	return detected
}

// Pin restricts the calling thread to the given CPU set and returns a
// restore function that reinstates the previous mask. The caller must
// hold runtime.LockOSThread for the pin to mean anything (goroutines
// migrate otherwise). An empty or unpinnable set is an error and the
// thread is left untouched — callers are expected to fall back to
// running unpinned.
func Pin(cpus []int) (restore func(), err error) {
	if len(cpus) == 0 {
		return nil, fmt.Errorf("affinity: empty CPU set")
	}
	return pin(cpus)
}

// parseCPUList decodes the kernel's cpulist format ("0-3,8,10-11",
// possibly with a trailing newline) into ascending CPU indices. An
// empty list (a memory-only NUMA node) decodes to nil.
func parseCPUList(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var cpus []int
	for _, part := range strings.Split(s, ",") {
		lo, hi, ranged := strings.Cut(part, "-")
		a, err := strconv.Atoi(strings.TrimSpace(lo))
		if err != nil {
			return nil, fmt.Errorf("affinity: cpulist entry %q: %v", part, err)
		}
		b := a
		if ranged {
			if b, err = strconv.Atoi(strings.TrimSpace(hi)); err != nil {
				return nil, fmt.Errorf("affinity: cpulist entry %q: %v", part, err)
			}
		}
		if a < 0 || b < a {
			return nil, fmt.Errorf("affinity: cpulist entry %q: bad range", part)
		}
		for c := a; c <= b; c++ {
			cpus = append(cpus, c)
		}
	}
	sort.Ints(cpus)
	return cpus, nil
}

// fallbackDomains is the portable single-domain machine view: one
// domain, node 0, no enumerable CPU set. runtime.NumCPU is reported
// through Width so callers can size worker partitions.
func fallbackDomains() []Domain {
	return []Domain{{Node: 0}}
}

// Width returns the number of CPUs a domain spans, falling back to the
// whole machine when the platform could not enumerate the set.
func (d Domain) Width() int {
	if len(d.CPUs) > 0 {
		return len(d.CPUs)
	}
	return runtime.NumCPU()
}
