//go:build linux

package affinity

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// TestPinRoundTrip pins the calling thread to CPU 0 (which always
// exists), checks the restore closure reinstates the previous mask
// without error, and checks an unpinnable set fails cleanly — the
// fall-back-to-unpinned contract the hybrid backend relies on.
func TestPinRoundTrip(t *testing.T) {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()

	restore, err := Pin([]int{0})
	if err != nil {
		t.Fatalf("Pin([0]): %v", err)
	}
	restore()

	// A CPU index beyond the mask is rejected before any syscall.
	if _, err := Pin([]int{cpuSetWords * 64}); err == nil {
		t.Error("Pin(out-of-range cpu) succeeded")
	}
	// A mask of CPUs the machine does not have fails in the kernel; the
	// thread must be left runnable (this test keeps executing).
	if _, err := Pin([]int{1022, 1023}); err == nil && runtime.NumCPU() < 1022 {
		t.Error("Pin(nonexistent cpus) succeeded")
	}
}

// TestDetectSyntheticSysfs points detection at a synthetic sysfs tree:
// two CPU-carrying nodes plus a memory-only node (skipped) plus a
// non-node entry (ignored).
func TestDetectSyntheticSysfs(t *testing.T) {
	dir := t.TempDir()
	write := func(node, cpulist string) {
		p := filepath.Join(dir, node)
		if err := os.MkdirAll(p, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(p, "cpulist"), []byte(cpulist), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("node0", "0-3\n")
	write("node1", "4-7\n")
	write("node2", "\n") // memory-only: no local CPUs
	if err := os.MkdirAll(filepath.Join(dir, "possible"), 0o755); err != nil {
		t.Fatal(err)
	}

	old := nodeRoot
	nodeRoot = dir
	defer func() { nodeRoot = old }()

	doms := detect()
	if len(doms) != 2 {
		t.Fatalf("detect() = %v, want 2 CPU-carrying domains", doms)
	}
	if doms[0].Node != 0 || len(doms[0].CPUs) != 4 || doms[1].Node != 1 || doms[1].CPUs[0] != 4 {
		t.Errorf("detect() = %v", doms)
	}

	// A missing tree degrades to the single-domain fallback.
	nodeRoot = filepath.Join(dir, "does-not-exist")
	if doms := detect(); len(doms) != 1 || doms[0].Node != 0 {
		t.Errorf("detect() without sysfs = %v, want single fallback domain", doms)
	}
}
