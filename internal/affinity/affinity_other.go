//go:build !linux

package affinity

import "fmt"

// detect has no portable NUMA enumeration: the machine is one domain.
func detect() []Domain {
	return fallbackDomains()
}

// pin is unavailable off Linux; callers fall back to running unpinned.
func pin(cpus []int) (func(), error) {
	return nil, fmt.Errorf("affinity: thread pinning is not supported on this platform")
}
