package analysis

// DeadWaiver flags every //ripslint:allow[-file] directive that
// suppressed nothing during the run. A waiver is a standing exception
// to a machine-checked property; once the code it excused is fixed or
// deleted, the directive left behind is a hole waiting for a new
// violation to move in silently. Flagging dead directives makes the
// waiver set monotonically honest: it can grow only when a finding
// forces it and must shrink the moment the finding goes away.
//
// "Used" means the directive suppressed at least one finding or (for
// hotpath) pruned at least one call edge from the reachability
// traversal. That bookkeeping is filled in by every other analyzer as
// a side effect of waiver resolution, so DeadWaiver MUST be the last
// module analyzer to run — AllModule guarantees the order.
//
// A deliberately dormant directive (kept for code behind a build tag,
// say) can itself be waived: //ripslint:allow deadwaiver <reason> on
// the same line — though running the lint with the tag enabled
// (-tags) is the better fix.
var DeadWaiver = &ModuleAnalyzer{
	Name: "deadwaiver",
	Doc:  "//ripslint:allow directives that suppress nothing are findings",
	Run: func(mp *ModulePass) {
		report := func(pkg *Package, d *directive) {
			form := "allow"
			if d.fileScope {
				form = "allow-file"
			}
			mp.Reportf(pkg, d.pos, "deadwaiver",
				"//ripslint:%s %s suppresses nothing; delete it", form, d.check)
		}
		// Two sub-passes: reporting a dead directive can mark a
		// deadwaiver-allow on its line used (via waiver resolution), so
		// the deadwaiver-allows themselves are only judged once every
		// other directive has been.
		for _, pkg := range mp.Pkgs {
			for _, d := range pkg.directives {
				if !d.used && d.check != "deadwaiver" {
					report(pkg, d)
				}
			}
		}
		for _, pkg := range mp.Pkgs {
			for _, d := range pkg.directives {
				if !d.used && d.check == "deadwaiver" {
					report(pkg, d)
				}
			}
		}
	},
}
