package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism enforces the reproducibility contract of the simulated
// runtime: a run must be a pure function of its configuration and
// seed, or the paper's Table I/III numbers stop being reproducible.
//
// Checks:
//
//   - wallclock: calls into package time that read the wall clock
//     (time.Now, time.Since, time.Until). The simulator has its own
//     virtual clock (sim.Time); wall-clock reads leak host timing into
//     results. Benchmarks that genuinely measure host time annotate
//     the call with //ripslint:allow wallclock.
//   - sleep: calls into package time that inject host-timed delays or
//     events (time.Sleep, timers, tickers). Injected delays shape the
//     real schedule, which is one step worse than reading the clock,
//     so inside the scheduling core they are never covered by a
//     file-scope waiver: each one justifies itself with a line
//     directive, and schedule-perturbation code lives behind the
//     ripsperturb build tag instead (see internal/par/perturb.go).
//     A call whose duration is computed rather than constant — an
//     adaptive wait like the par backend's EWMA-scaled detector
//     interval — is flagged with its own wording, because a computed
//     delay can feed measured state back into the schedule; the waiver
//     policy is exactly the same (a per-line directive naming the
//     sleep check), the diagnostic just makes the feedback loop
//     something the author visibly signed off on.
//   - rand: package-level math/rand functions, which draw from the
//     process-global, unseeded (Go ≥1.20: randomly seeded) source.
//     Deterministic code must thread a seeded *rand.Rand (rand.New,
//     rand.NewSource are allowed for exactly that purpose; the
//     simulator provides Node.Rand).
//   - maporder: ranging over a map inside the scheduling core
//     (internal/sim, internal/ripsrt, internal/sched/...), where
//     iteration order is deliberately randomized by the runtime and
//     must not influence any scheduling decision. Order-insensitive
//     loops (commutative reductions) annotate with
//     //ripslint:allow maporder.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock reads, global math/rand and map-iteration-order dependence in the simulation core",
	Applies: func(rel string) bool {
		// Examples are pedagogical host programs, outside the contract.
		return !underDir(rel, "examples")
	},
	Run: runDeterminism,
}

// wallClockFuncs are the package time functions that read the host
// clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

// sleepFuncs are the package time functions that inject host-timed
// delays or events into the schedule.
var sleepFuncs = map[string]bool{
	"Sleep": true, "Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// seededRandFuncs are the math/rand package-level functions that build
// explicitly seeded generators rather than touching the global source.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// mapOrderScope lists the module-relative directories where scheduling
// decisions live and map iteration order is therefore load-bearing.
// internal/par is included: its phase protocol runs on real goroutines
// but its scheduling decisions (load snapshots, planning, transfers)
// carry the same determinism contract as the simulator's. File-scope
// maporder waivers are refused here — see Package.suppressed.
var mapOrderScope = []string{"internal/sim", "internal/ripsrt", "internal/sched", "internal/par"}

// inMapOrderScope reports whether the package directory rel is inside
// the scheduling core for maporder purposes.
func inMapOrderScope(rel string) bool {
	for _, d := range mapOrderScope {
		if underDir(rel, d) {
			return true
		}
	}
	return false
}

// computedDuration reports whether the call's first argument is a
// non-constant expression — a duration computed at run time rather
// than spelled in the source.
func computedDuration(p *Pass, call *ast.CallExpr) bool {
	if call == nil || len(call.Args) == 0 {
		return false
	}
	tv, ok := p.Pkg.Info.Types[call.Args[0]]
	return ok && tv.Value == nil
}

func runDeterminism(p *Pass) {
	inMapScope := inMapOrderScope(p.Pkg.Rel)
	for _, f := range p.Pkg.Files {
		// calls maps a call's Fun expression to the call, so the
		// selector cases below can inspect the arguments (Inspect
		// visits the CallExpr before its Fun).
		calls := map[ast.Expr]*ast.CallExpr{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				calls[n.Fun] = n
			case *ast.SelectorExpr:
				pkgPath, ok := importedPackage(p.Pkg.Info, n)
				if !ok {
					return true
				}
				// Only function references matter: type names like
				// rand.Rand or time.Duration carry no global state.
				if _, isFunc := p.Pkg.Info.Uses[n.Sel].(*types.Func); !isFunc {
					return true
				}
				switch {
				case pkgPath == "time" && wallClockFuncs[n.Sel.Name]:
					p.Reportf(n.Pos(), "wallclock",
						"time.%s reads the host clock; simulated code must use the virtual clock (sim.Time)", n.Sel.Name)
				case pkgPath == "time" && sleepFuncs[n.Sel.Name]:
					if computedDuration(p, calls[ast.Expr(n)]) {
						p.Reportf(n.Pos(), "sleep",
							"time.%s with a computed duration injects an adaptive host-timed delay that can feed measured state back into the schedule; the waiver policy is unchanged — justify per line or gate behind a build tag", n.Sel.Name)
						return true
					}
					p.Reportf(n.Pos(), "sleep",
						"time.%s injects host-timed delays into the schedule; justify per line or gate behind a build tag", n.Sel.Name)
				case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !seededRandFuncs[n.Sel.Name]:
					p.Reportf(n.Pos(), "rand",
						"rand.%s draws from the global math/rand source; use a seeded *rand.Rand (e.g. sim.Node.Rand)", n.Sel.Name)
				}
			case *ast.RangeStmt:
				if !inMapScope || n.X == nil {
					return true
				}
				if tv, ok := p.Pkg.Info.Types[n.X]; ok && tv.Type != nil {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						p.Reportf(n.Pos(), "maporder",
							"map iteration order is randomized; scheduling code must not depend on it")
					}
				}
			}
			return true
		})
	}
}

// importedPackage resolves a selector whose X is a package name,
// returning the imported package path.
func importedPackage(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}
