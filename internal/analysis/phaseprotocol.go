package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
)

// PhaseProtocol requires every scheduler implementation package
// (internal/sched/<algo>) to carry a conservation/balance test: a
// *_test.go file referencing the exported balance entry points of
// internal/sched — sched.CheckBalanced (Theorem 1's within-one check)
// or sched.Sum (task conservation). The system-phase protocol rests on
// these properties; an algorithm package without such a test can drift
// silently. Waivable package-wide with //ripslint:allow phasetest.
var PhaseProtocol = &Analyzer{
	Name:    "phaseprotocol",
	Doc:     "require scheduler packages to carry a conservation/balance test",
	Applies: func(rel string) bool { return schedPkgRE.MatchString(rel) },
	Run:     runPhaseProtocol,
}

// schedPkgRE matches direct subpackages of internal/sched — the
// scheduler implementations (the parent package defines the vocabulary
// and carries its own tests).
var schedPkgRE = regexp.MustCompile(`^internal/sched/[^/]+$`)

// balanceEntryPoints are the exported names of internal/sched that a
// conservation/balance test must reference (as sched.<name>).
var balanceEntryPoints = map[string]bool{"CheckBalanced": true, "Sum": true}

func runPhaseProtocol(p *Pass) {
	for _, f := range p.Pkg.TestFiles {
		found := false
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "sched" && balanceEntryPoints[sel.Sel.Name] {
				found = true
				return false
			}
			return true
		})
		if found {
			return
		}
	}
	pos := token.NoPos
	if len(p.Pkg.Files) > 0 {
		pos = p.Pkg.Files[0].Package
	}
	p.Reportf(pos, "phasetest",
		"scheduler package %s has no conservation/balance test referencing sched.CheckBalanced or sched.Sum", p.Pkg.Path)
}
