package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file builds a whole-module call graph from the loader's parsed,
// type-checked packages. It is the substrate of the whole-program
// analyzers (hotpath in particular): nodes are function declarations
// and function literals, edges are call sites resolved through
// go/types. Dynamic calls are resolved by class-hierarchy analysis
// (CHA), deliberately over-approximating:
//
//   - a call through an interface method gets an edge to every module
//     type that implements the interface (soundness over precision —
//     a hot-path proof must cover every possible callee);
//   - a call through a function value gets an edge to every
//     address-taken module function or function literal with an
//     identical signature.
//
// Calls into other modules (the standard library) produce no edges;
// the hotpath analyzer classifies those at the call site instead.

// A CGNode is one function in the module call graph: either a declared
// function/method (Fn set) or a function literal (Lit set).
type CGNode struct {
	// Pkg is the package the function's body lives in.
	Pkg *Package
	// Fn is the declared function or method object; nil for literals.
	Fn *types.Func
	// Lit is the function literal; nil for declared functions.
	Lit *ast.FuncLit
	// Body is the function body (nil for bodyless declarations).
	Body *ast.BlockStmt
	// Name is a stable diagnostic name: "pkg.Func",
	// "pkg.(*Type).Method", or "pkg.Encloser.func@line" for literals.
	Name string
	// AddrTaken reports the function's address escapes somewhere in the
	// module (assigned, passed, stored) — it is a candidate target of
	// dynamic function-value calls.
	AddrTaken bool
	// Calls are the resolved outgoing call edges, in source order.
	Calls []CGEdge
}

// A CGEdge is one resolved call edge.
type CGEdge struct {
	// Site is the call expression in the caller's body.
	Site *ast.CallExpr
	// Callee is the resolved module-internal target.
	Callee *CGNode
	// Dynamic marks edges resolved by CHA (interface dispatch or
	// function-value call) rather than direct reference.
	Dynamic bool
}

// CallGraph is the module-wide call graph.
type CallGraph struct {
	// Nodes lists every function in deterministic (package, position)
	// order.
	Nodes []*CGNode

	byFn  map[*types.Func]*CGNode
	byLit map[*ast.FuncLit]*CGNode
}

// NodeFor returns the graph node of a declared function, or nil.
func (g *CallGraph) NodeFor(fn *types.Func) *CGNode { return g.byFn[fn] }

// NodeForLit returns the graph node of a function literal, or nil.
func (g *CallGraph) NodeForLit(lit *ast.FuncLit) *CGNode { return g.byLit[lit] }

// BuildCallGraph constructs the call graph over the given packages
// (normally every package of the module: CHA is only sound over the
// full set of candidate callees).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	b := &cgBuilder{
		g:          &CallGraph{byFn: map[*types.Func]*CGNode{}, byLit: map[*ast.FuncLit]*CGNode{}},
		modulePkgs: map[*types.Package]bool{},
		ifaceMemo:  map[*types.Func][]*CGNode{},
	}
	for _, p := range pkgs {
		if p.Types != nil {
			b.modulePkgs[p.Types] = true
		}
	}
	for _, p := range pkgs {
		b.collectNodes(p)
	}
	for _, p := range pkgs {
		b.markAddrTaken(p)
	}
	b.indexTypes(pkgs)
	b.indexSignatures()
	for _, n := range b.g.Nodes {
		b.resolveCalls(n)
	}
	return b.g
}

type cgBuilder struct {
	g          *CallGraph
	modulePkgs map[*types.Package]bool

	// concreteTypes are the module's named (non-interface) types and
	// their pointer forms — the CHA candidate set for interface calls.
	concreteTypes []types.Type
	// sigIndex maps a receiver-stripped signature key to the
	// address-taken nodes bearing it — the CHA candidate set for
	// function-value calls.
	sigIndex map[string][]*CGNode
	// ifaceMemo caches interface-method resolutions.
	ifaceMemo map[*types.Func][]*CGNode
}

// collectNodes creates a node per function declaration and per
// function literal in p's non-test files.
func (b *cgBuilder) collectNodes(p *Package) {
	if p.Info == nil {
		return
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := p.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			n := &CGNode{Pkg: p, Fn: obj, Body: fd.Body, Name: funcName(obj)}
			b.g.byFn[obj] = n
			b.g.Nodes = append(b.g.Nodes, n)
			b.collectLits(p, fd.Body, n.Name)
		}
		// Literals in package-level variable initializers.
		for _, d := range f.Decls {
			if gd, ok := d.(*ast.GenDecl); ok {
				b.collectLits(p, gd, p.Types.Name())
			}
		}
	}
}

// collectLits creates nodes for every function literal under root.
func (b *cgBuilder) collectLits(p *Package, root ast.Node, encloser string) {
	if root == nil {
		return
	}
	ast.Inspect(root, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		if _, dup := b.g.byLit[lit]; dup {
			return true
		}
		pos := p.Fset.Position(lit.Pos())
		node := &CGNode{
			Pkg:  p,
			Lit:  lit,
			Body: lit.Body,
			Name: fmt.Sprintf("%s.func@%d", encloser, pos.Line),
		}
		b.g.byLit[lit] = node
		b.g.Nodes = append(b.g.Nodes, node)
		return true
	})
}

// markAddrTaken marks functions whose value escapes: referenced
// anywhere other than as the operand of a direct call.
func (b *cgBuilder) markAddrTaken(p *Package) {
	if p.Info == nil {
		return
	}
	for _, f := range p.Files {
		// First pass: the expressions in direct-call position.
		inCall := map[ast.Expr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				fun := ast.Unparen(call.Fun)
				inCall[fun] = true
				if sel, ok := fun.(*ast.SelectorExpr); ok {
					inCall[sel.Sel] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if inCall[n] {
					return true
				}
				if obj, ok := p.Info.Uses[n].(*types.Func); ok {
					if node := b.g.byFn[obj]; node != nil {
						node.AddrTaken = true
					}
				}
			case *ast.FuncLit:
				if !inCall[n] {
					if node := b.g.byLit[n]; node != nil {
						node.AddrTaken = true
					}
				}
			}
			return true
		})
	}
}

// indexTypes collects the module's named types for interface CHA.
func (b *cgBuilder) indexTypes(pkgs []*Package) {
	for _, p := range pkgs {
		if p.Types == nil {
			continue
		}
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if types.IsInterface(t) {
				continue
			}
			b.concreteTypes = append(b.concreteTypes, t, types.NewPointer(t))
		}
	}
}

// indexSignatures buckets address-taken functions by signature key for
// function-value CHA.
func (b *cgBuilder) indexSignatures() {
	b.sigIndex = map[string][]*CGNode{}
	for _, n := range b.g.Nodes {
		if !n.AddrTaken || n.Body == nil {
			continue
		}
		sig := nodeSignature(n)
		if sig == nil {
			continue
		}
		b.sigIndex[sigKey(sig)] = append(b.sigIndex[sigKey(sig)], n)
	}
}

// nodeSignature returns a node's call signature.
func nodeSignature(n *CGNode) *types.Signature {
	if n.Fn != nil {
		sig, _ := n.Fn.Type().(*types.Signature)
		return sig
	}
	if n.Lit != nil {
		if tv, ok := n.Pkg.Info.Types[n.Lit]; ok {
			sig, _ := tv.Type.(*types.Signature)
			return sig
		}
	}
	return nil
}

// sigKey renders a signature with the receiver stripped, so a method
// value (receiver pre-bound) and a plain function of the same shape
// compare equal.
func sigKey(sig *types.Signature) string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		if sig.Variadic() && i == sig.Params().Len()-1 {
			sb.WriteString("...")
		}
		sb.WriteString(types.TypeString(sig.Params().At(i).Type(), nil))
	}
	sb.WriteString(")(")
	for i := 0; i < sig.Results().Len(); i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(types.TypeString(sig.Results().At(i).Type(), nil))
	}
	sb.WriteByte(')')
	return sb.String()
}

// funcName renders a declared function's diagnostic name.
func funcName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := types.TypeString(sig.Recv().Type(), func(p *types.Package) string { return "" })
		recv = strings.ReplaceAll(recv, ".", "")
		if strings.HasPrefix(recv, "*") {
			return fmt.Sprintf("%s.(*%s).%s", pkg, recv[1:], fn.Name())
		}
		return fmt.Sprintf("%s.%s.%s", pkg, recv, fn.Name())
	}
	if pkg == "" {
		return fn.Name()
	}
	return pkg + "." + fn.Name()
}

// resolveCalls populates a node's outgoing edges.
func (b *cgBuilder) resolveCalls(n *CGNode) {
	if n.Body == nil {
		return
	}
	info := n.Pkg.Info
	walkFuncBody(n.Body, func(node ast.Node) {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return
		}
		// Conversions are not calls.
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return
		}
		fun := ast.Unparen(call.Fun)
		switch fun := fun.(type) {
		case *ast.Ident:
			switch obj := info.Uses[fun].(type) {
			case *types.Builtin:
				return
			case *types.Func:
				b.addStatic(n, call, obj)
				return
			case *types.Var, *types.Nil:
				b.addDynamic(n, call, fun)
				return
			}
		case *ast.SelectorExpr:
			if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
				if sel := info.Selections[fun]; sel != nil && sel.Kind() == types.MethodVal {
					if types.IsInterface(sel.Recv()) {
						b.addInterface(n, call, obj)
						return
					}
				}
				b.addStatic(n, call, obj)
				return
			}
			b.addDynamic(n, call, fun)
			return
		case *ast.FuncLit:
			if callee := b.g.byLit[fun]; callee != nil {
				n.Calls = append(n.Calls, CGEdge{Site: call, Callee: callee})
			}
			return
		}
		b.addDynamic(n, call, fun)
	})
}

// addStatic adds the edge of a direct call when the callee is a module
// function with a body.
func (b *cgBuilder) addStatic(n *CGNode, call *ast.CallExpr, obj *types.Func) {
	if callee := b.g.byFn[obj]; callee != nil {
		n.Calls = append(n.Calls, CGEdge{Site: call, Callee: callee})
	}
}

// addInterface adds CHA edges for a call through an interface method:
// one edge per module type implementing the interface.
func (b *cgBuilder) addInterface(n *CGNode, call *ast.CallExpr, m *types.Func) {
	targets, memoed := b.ifaceMemo[m]
	if !memoed {
		sig, _ := m.Type().(*types.Signature)
		if sig == nil || sig.Recv() == nil {
			b.ifaceMemo[m] = nil
			return
		}
		iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
		if iface == nil {
			b.ifaceMemo[m] = nil
			return
		}
		seen := map[*CGNode]bool{}
		for _, t := range b.concreteTypes {
			if !types.Implements(t, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(t, true, m.Pkg(), m.Name())
			fn, _ := obj.(*types.Func)
			if fn == nil {
				continue
			}
			if callee := b.g.byFn[fn]; callee != nil && !seen[callee] {
				seen[callee] = true
				targets = append(targets, callee)
			}
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i].Name < targets[j].Name })
		b.ifaceMemo[m] = targets
	}
	for _, callee := range targets {
		n.Calls = append(n.Calls, CGEdge{Site: call, Callee: callee, Dynamic: true})
	}
}

// addDynamic adds CHA edges for a call through a function value: one
// edge per address-taken module function with an identical signature.
func (b *cgBuilder) addDynamic(n *CGNode, call *ast.CallExpr, fun ast.Expr) {
	tv, ok := n.Pkg.Info.Types[fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	if sig == nil {
		return
	}
	for _, callee := range b.sigIndex[sigKey(sig)] {
		if callee == n && callee.Lit != nil {
			continue // a literal calling itself through its own value
		}
		n.Calls = append(n.Calls, CGEdge{Site: call, Callee: callee, Dynamic: true})
	}
}

// walkFuncBody visits every node of a function body WITHOUT descending
// into nested function literals — those are separate graph nodes.
func walkFuncBody(body *ast.BlockStmt, visit func(ast.Node)) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
