package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// directive is one parsed //ripslint:allow[-file] comment.
type directive struct {
	file   string
	line   int
	check  string // "wallclock", "rand", "maporder", "errdrop", "panic", "phasetest"
	reason string
	// fileScope marks an allow-file directive, which waives the check
	// for its whole file rather than one line.
	fileScope bool
}

// directivePrefix is the comment marker. The full syntax is
//
//	//ripslint:allow <check> [reason...]
//	//ripslint:allow-file <check> <reason...>
//
// The line form waives findings of that check on its own line and on
// the line directly below (so it can ride at the end of the offending
// line or stand alone above it). The file form waives the check for
// the whole file and REQUIRES a reason — a reasonless allow-file is
// ignored, so broad waivers are always self-documenting. See the
// package comment for which checks may be file-waived where.
const directivePrefix = "ripslint:allow"

// fileScopeSuffix distinguishes the file form. It must be tested
// before the line form: "ripslint:allow-file" has "ripslint:allow" as
// a prefix, and cutting only the short marker would misparse "-file"
// as the check name.
const fileScopeSuffix = "-file"

// scanDirectives extracts every ripslint directive from the files.
func scanDirectives(fset *token.FileSet, files []*ast.File) []directive {
	var out []directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, directivePrefix)
				if !ok {
					continue
				}
				fileScope := false
				if tail, ok := strings.CutPrefix(rest, fileScopeSuffix); ok {
					fileScope = true
					rest = tail
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				reason := strings.Join(fields[1:], " ")
				if fileScope && reason == "" {
					continue // file-scope waivers must carry a reason
				}
				pos := fset.Position(c.Pos())
				out = append(out, directive{
					file:      pos.Filename,
					line:      pos.Line,
					check:     fields[0],
					reason:    reason,
					fileScope: fileScope,
				})
			}
		}
	}
	return out
}

// suppressed reports whether a finding of the given check at pos is
// waived by a directive. Package-scoped checks (phasetest) are waived
// by a directive anywhere in the package; file-scope directives waive
// their whole file — except maporder and sleep inside the scheduling
// core (mapOrderScope): there every order-dependent loop and every
// injected delay must justify itself with a line-scoped waiver, so a
// blanket wallclock waiver (sanctioned for the real-parallel backend's
// elapsed-time measurements) can never smuggle in schedule-shaping
// sleeps — the mistake of copying the perturbation hook out of its
// ripsperturb build tag is caught here.
func (p *Package) suppressed(check string, pos token.Position) bool {
	for _, d := range p.directives {
		if d.check != check {
			continue
		}
		if check == "phasetest" {
			return true
		}
		if d.file != pos.Filename {
			continue
		}
		if d.fileScope {
			if (check == "maporder" || check == "sleep") && inMapOrderScope(p.Rel) {
				continue
			}
			return true
		}
		if d.line == pos.Line || d.line+1 == pos.Line {
			return true
		}
	}
	return false
}
