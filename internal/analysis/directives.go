package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// directive is one parsed //ripslint:allow comment.
type directive struct {
	file   string
	line   int
	check  string // "wallclock", "rand", "maporder", "errdrop", "panic", "phasetest"
	reason string
}

// directivePrefix is the comment marker. The full syntax is
//
//	//ripslint:allow <check> [reason...]
//
// and the directive waives findings of that check on its own line and
// on the line directly below (so it can ride at the end of the
// offending line or stand alone above it).
const directivePrefix = "ripslint:allow"

// scanDirectives extracts every ripslint directive from the files.
func scanDirectives(fset *token.FileSet, files []*ast.File) []directive {
	var out []directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, directivePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				out = append(out, directive{
					file:   pos.Filename,
					line:   pos.Line,
					check:  fields[0],
					reason: strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return out
}

// suppressed reports whether a finding of the given check at pos is
// waived by a directive. Package-scoped checks (phasetest) are waived
// by a directive anywhere in the package.
func (p *Package) suppressed(check string, pos token.Position) bool {
	for _, d := range p.directives {
		if d.check != check {
			continue
		}
		if check == "phasetest" {
			return true
		}
		if d.file == pos.Filename && (d.line == pos.Line || d.line+1 == pos.Line) {
			return true
		}
	}
	return false
}
