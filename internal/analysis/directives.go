package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// directive is one parsed //ripslint:allow[-file] comment.
type directive struct {
	file   string
	line   int
	pos    token.Pos
	check  string // "wallclock", "rand", "maporder", "errdrop", "panic", "phasetest", "hotpath", ...
	reason string
	// fileScope marks an allow-file directive, which waives the check
	// for its whole file rather than one line.
	fileScope bool
	// used records that the directive suppressed at least one finding
	// (or pruned at least one hot-path edge) during this run. The
	// deadwaiver analyzer flags directives that end a run unused, so the
	// waiver set can only shrink.
	used bool
}

// directivePrefix is the comment marker. The full syntax is
//
//	//ripslint:allow <check> [reason...]
//	//ripslint:allow-file <check> <reason...>
//
// The line form waives findings of that check on its own line and on
// the line directly below (so it can ride at the end of the offending
// line or stand alone above it). The file form waives the check for
// the whole file and REQUIRES a reason — a reasonless allow-file is
// ignored, so broad waivers are always self-documenting. See the
// package comment for which checks may be file-waived where.
const directivePrefix = "ripslint:allow"

// fileScopeSuffix distinguishes the file form. It must be tested
// before the line form: "ripslint:allow-file" has "ripslint:allow" as
// a prefix, and cutting only the short marker would misparse "-file"
// as the check name.
const fileScopeSuffix = "-file"

// hotpathPrefix marks a hot-path root annotation:
//
//	//ripslint:hotpath [criteria...]
//
// placed on its own line directly above a function declaration (or
// above the statement whose right-hand side is a function literal).
// The named function roots the whole-program hotpath analysis: every
// function reachable from it through the call graph must satisfy the
// listed criteria — any subset of "alloc", "block" and "map"; naming
// none means all three.
const hotpathPrefix = "ripslint:hotpath"

// hotpathRoot is one parsed //ripslint:hotpath root annotation, not
// yet matched to a function.
type hotpathRoot struct {
	file     string
	line     int
	pos      token.Pos
	criteria []string // subset of hotpathCriteria; empty means all
}

// scanDirectives extracts every ripslint waiver directive from the
// files.
func scanDirectives(fset *token.FileSet, files []*ast.File) []*directive {
	var out []*directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, directivePrefix)
				if !ok {
					continue
				}
				fileScope := false
				if tail, ok := strings.CutPrefix(rest, fileScopeSuffix); ok {
					fileScope = true
					rest = tail
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				reason := strings.Join(fields[1:], " ")
				if fileScope && reason == "" {
					continue // file-scope waivers must carry a reason
				}
				pos := fset.Position(c.Pos())
				out = append(out, &directive{
					file:      pos.Filename,
					line:      pos.Line,
					pos:       c.Pos(),
					check:     fields[0],
					reason:    reason,
					fileScope: fileScope,
				})
			}
		}
	}
	return out
}

// scanHotpathRoots extracts every //ripslint:hotpath root annotation.
// Only non-test files are scanned: the hotpath analyzer never sees
// test bodies, so a root there could not be resolved.
func scanHotpathRoots(fset *token.FileSet, files []*ast.File) []hotpathRoot {
	var out []hotpathRoot
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, hotpathPrefix)
				if !ok || strings.HasPrefix(rest, ":") {
					continue
				}
				pos := fset.Position(c.Pos())
				out = append(out, hotpathRoot{
					file:     pos.Filename,
					line:     pos.Line,
					pos:      c.Pos(),
					criteria: strings.Fields(rest),
				})
			}
		}
	}
	return out
}

// suppressed reports whether a finding of the given check at pos is
// waived by a directive, marking the first matching directive as used.
// Package-scoped checks (phasetest) are waived by a directive anywhere
// in the package; file-scope directives waive their whole file —
// except for the hotpath check, whose file form is refused everywhere
// (a reachability proof waived per file is no proof at all), and
// except maporder and sleep inside the scheduling core (mapOrderScope):
// there every order-dependent loop and every injected delay must
// justify itself with a line-scoped waiver, so a blanket wallclock
// waiver (sanctioned for the real-parallel backend's elapsed-time
// measurements) can never smuggle in schedule-shaping sleeps — the
// mistake of copying the perturbation hook out of its ripsperturb
// build tag is caught here.
func (p *Package) suppressed(check string, pos token.Position) bool {
	for _, d := range p.directives {
		if d.check != check {
			continue
		}
		if check == "phasetest" {
			d.used = true
			return true
		}
		if d.file != pos.Filename {
			continue
		}
		if d.fileScope {
			if check == "hotpath" {
				continue
			}
			if (check == "maporder" || check == "sleep") && inMapOrderScope(p.Rel) {
				continue
			}
			d.used = true
			return true
		}
		if d.line == pos.Line || d.line+1 == pos.Line {
			d.used = true
			return true
		}
	}
	return false
}

// lineWaived reports whether a line-scope directive for check covers
// pos, marking it used. The hotpath analyzer uses it to prune call
// edges: a waived call site both silences findings on its line and
// stops the reachability traversal from entering the callee.
func (p *Package) lineWaived(check string, pos token.Position) bool {
	for _, d := range p.directives {
		if d.check != check || d.fileScope || d.file != pos.Filename {
			continue
		}
		if d.line == pos.Line || d.line+1 == pos.Line {
			d.used = true
			return true
		}
	}
	return false
}
