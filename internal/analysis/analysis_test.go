package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden tests load each testdata package under a synthetic import
// path (to exercise the analyzers' scoping rules) and check the
// findings against // want "substr" comments: every want line must
// produce a finding whose rendered form contains the substring, and
// every finding must be covered by a want.

// sharedLoader is reused across subtests so the source importer
// type-checks each stdlib dependency once.
var sharedLoader *Loader

func TestMain(m *testing.M) {
	root, modPath, err := ModuleInfo(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "analysis_test:", err)
		os.Exit(1)
	}
	sharedLoader = NewLoader(root, modPath)
	os.Exit(m.Run())
}

func TestAnalyzersGolden(t *testing.T) {
	cases := []struct {
		dir       string // under testdata/src
		path      string // synthetic import path
		analyzers []*Analyzer
	}{
		{"determinism_bad", "rips/internal/sim/fake", []*Analyzer{Determinism}},
		{"determinism_examples", "rips/examples/fake", []*Analyzer{Determinism}},
		{"determinism_mapscope", "rips/internal/metricsfake", []*Analyzer{Determinism}},
		{"filescope_waived", "rips/internal/par/fake", []*Analyzer{Determinism}},
		{"filescope_bad", "rips/internal/sim/fake2", []*Analyzer{Determinism}},
		{"perturb_untagged", "rips/internal/par/perturbfake", []*Analyzer{Determinism}},
		{"sleep_adaptive", "rips/internal/par/adaptivefake", []*Analyzer{Determinism}},
		{"errcheck_bad", "rips/internal/errfake", []*Analyzer{Errcheck}},
		{"panicpolicy_bad", "rips/internal/panicfake", []*Analyzer{PanicPolicy}},
		{"phaseproto_ok", "rips/internal/sched/fakealgo", []*Analyzer{PhaseProtocol}},
		{"phaseproto_bad", "rips/internal/sched/badalgo", []*Analyzer{PhaseProtocol}},
		{"phaseproto_waived", "rips/internal/sched/waived", []*Analyzer{PhaseProtocol}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", c.dir)
			pkg, err := sharedLoader.LoadDir(dir, c.path)
			if err != nil {
				t.Fatalf("load %s: %v", dir, err)
			}
			for _, terr := range pkg.TypeErrors {
				t.Errorf("type error in testdata: %v", terr)
			}
			checkGolden(t, dir, Unwaived(Run(pkg, c.analyzers)))
		})
	}
}

// TestModuleAnalyzersGolden is the whole-program counterpart of
// TestAnalyzersGolden: each testdata package is loaded as a one-package
// module and run through RunModule with the analyzer under test.
func TestModuleAnalyzersGolden(t *testing.T) {
	cases := []struct {
		dir       string // under testdata/src
		path      string // synthetic import path
		analyzers []*Analyzer
		module    []*ModuleAnalyzer
	}{
		{"hotpath_bad", "rips/internal/hotfake", nil, []*ModuleAnalyzer{Hotpath}},
		{"hotpath_waived", "rips/internal/hotwaived", nil, []*ModuleAnalyzer{Hotpath}},
		{"hotpath_filescope", "rips/internal/hotfile", nil, []*ModuleAnalyzer{Hotpath}},
		{"atomicmix_bad", "rips/internal/atomfake", nil, []*ModuleAnalyzer{AtomicMix}},
		{"ctxflow_bad", "rips/internal/ctxfake", nil, []*ModuleAnalyzer{CtxFlow}},
		{"deadwaiver_bad", "rips/internal/deadfake", []*Analyzer{Determinism}, []*ModuleAnalyzer{DeadWaiver}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", c.dir)
			pkg, err := sharedLoader.LoadDir(dir, c.path)
			if err != nil {
				t.Fatalf("load %s: %v", dir, err)
			}
			for _, terr := range pkg.TypeErrors {
				t.Errorf("type error in testdata: %v", terr)
			}
			checkGolden(t, dir, Unwaived(RunModule([]*Package{pkg}, c.analyzers, c.module)))
		})
	}
}

// TestHotpathRootEdgeCases checks the diagnostics for malformed root
// annotations: unknown criteria tokens and annotations that precede no
// function.
func TestHotpathRootEdgeCases(t *testing.T) {
	pkg, err := sharedLoader.LoadDir(filepath.Join("testdata", "src", "hotpath_roots"), "rips/internal/hotroots")
	if err != nil {
		t.Fatal(err)
	}
	findings := Unwaived(RunModule([]*Package{pkg}, nil, []*ModuleAnalyzer{Hotpath}))
	var unknown, dangling bool
	for _, f := range findings {
		if strings.Contains(f.Msg, `unknown hotpath criterion "frobnicate"`) {
			unknown = true
		}
		if strings.Contains(f.Msg, "does not precede a function") {
			dangling = true
		}
	}
	if !unknown {
		t.Error("no finding for the unknown criterion token")
	}
	if !dangling {
		t.Error("no finding for the annotation preceding no function")
	}
	if len(findings) != 2 {
		t.Errorf("got %d findings, want exactly 2: %v", len(findings), findings)
	}
}

// TestCallGraphSynthetic pins the call-graph builder's resolution on a
// synthetic package: interface dispatch fans out to every implementing
// module type, method values resolve through the address-taken set,
// and function-variable calls reach their candidates.
func TestCallGraphSynthetic(t *testing.T) {
	pkg, err := sharedLoader.LoadDir(filepath.Join("testdata", "src", "callgraph_synth"), "rips/internal/cgfake")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("type errors: %v", pkg.TypeErrors)
	}
	g := BuildCallGraph([]*Package{pkg})

	byName := map[string]*CGNode{}
	for _, n := range g.Nodes {
		byName[n.Name] = n
	}
	edges := func(caller string) map[string]bool {
		t.Helper()
		n := byName[caller]
		if n == nil {
			t.Fatalf("no node %s (have %v)", caller, nodeNames(g))
		}
		out := map[string]bool{}
		for _, e := range n.Calls {
			out[e.Callee.Name] = e.Dynamic
		}
		return out
	}

	// Interface dispatch: CHA fans out to both implementations.
	speak := edges("cgfake.CallSpeak")
	for _, want := range []string{"cgfake.Dog.Speak", "cgfake.Cat.Speak"} {
		if dyn, ok := speak[want]; !ok || !dyn {
			t.Errorf("CallSpeak -> %s: present=%v dynamic=%v, want a dynamic edge", want, ok, dyn)
		}
	}

	// Method value: f := d.Speak; f() resolves to the address-taken
	// Dog.Speak; Cat.Speak was never referenced and must not appear.
	mv := edges("cgfake.UseMethodValue")
	if dyn, ok := mv["cgfake.Dog.Speak"]; !ok || !dyn {
		t.Errorf("UseMethodValue -> Dog.Speak: present=%v dynamic=%v, want a dynamic edge", ok, dyn)
	}
	if _, ok := mv["cgfake.Cat.Speak"]; ok {
		t.Error("UseMethodValue resolved to Cat.Speak, which was never address-taken")
	}
	if dyn, ok := mv["cgfake.CallSpeak"]; !ok || dyn {
		t.Errorf("UseMethodValue -> CallSpeak: present=%v dynamic=%v, want a static edge", ok, dyn)
	}

	// Function variable: fp = helper; fp() reaches helper.
	if dyn, ok := edges("cgfake.CallFp")["cgfake.helper"]; !ok || !dyn {
		t.Errorf("CallFp -> helper: present=%v dynamic=%v, want a dynamic edge", ok, dyn)
	}

	// Address-taken marking.
	if n := byName["cgfake.Dog.Speak"]; n == nil || !n.AddrTaken {
		t.Error("Dog.Speak should be address-taken (method value)")
	}
	if n := byName["cgfake.helper"]; n == nil || !n.AddrTaken {
		t.Error("helper should be address-taken (package-level initializer)")
	}
	if n := byName["cgfake.CallFp"]; n == nil || n.AddrTaken {
		t.Error("CallFp should not be address-taken")
	}
}

func nodeNames(g *CallGraph) []string {
	var out []string
	for _, n := range g.Nodes {
		out = append(out, n.Name)
	}
	return out
}

// want is one expectation parsed from a // want "substr" comment.
type want struct {
	file string // base name
	line int
	sub  string
	hit  bool
}

var wantRE = regexp.MustCompile(`// want "([^"]+)"`)

// collectWants scans every .go file in dir for want comments.
func collectWants(t *testing.T, dir string) []*want {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*want
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				wants = append(wants, &want{file: e.Name(), line: i + 1, sub: m[1]})
			}
		}
	}
	return wants
}

// checkGolden matches findings against want comments both ways.
func checkGolden(t *testing.T, dir string, findings []Finding) {
	t.Helper()
	wants := collectWants(t, dir)
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if w.file == filepath.Base(f.Pos.Filename) && w.line == f.Pos.Line && strings.Contains(f.String(), w.sub) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.sub)
		}
	}
}

// TestRealPackagesClean runs the full suite over a couple of real,
// dependency-light packages as an integration check: the committed
// tree must be finding-free.
func TestRealPackagesClean(t *testing.T) {
	for _, rel := range []string{"internal/task", "internal/topo", "internal/invariant", "internal/metrics", "internal/par"} {
		pkg, err := sharedLoader.Load(rel)
		if err != nil {
			t.Fatalf("load %s: %v", rel, err)
		}
		if len(pkg.TypeErrors) > 0 {
			t.Fatalf("%s: type errors: %v", rel, pkg.TypeErrors)
		}
		for _, f := range Unwaived(Run(pkg, All())) {
			t.Errorf("%s: unexpected finding: %s", rel, f)
		}
	}
}

// TestDirectiveScan checks the directive parser on the testdata tree:
// the suppressions in determinism_bad must be visible as parsed
// directives with their reasons intact.
func TestDirectiveScan(t *testing.T) {
	pkg, err := sharedLoader.LoadDir(filepath.Join("testdata", "src", "determinism_bad"), "rips/internal/sim/fake")
	if err != nil {
		t.Fatal(err)
	}
	byCheck := map[string]int{}
	for _, d := range pkg.directives {
		byCheck[d.check]++
		if d.reason == "" {
			t.Errorf("directive for %s at line %d has no reason", d.check, d.line)
		}
	}
	if byCheck["maporder"] != 1 || byCheck["wallclock"] != 2 {
		t.Errorf("parsed directives = %v, want 1 maporder and 2 wallclock", byCheck)
	}
}

// TestFileScopeDirectiveScan checks the allow-file parser: the scope
// flag must be set, the check name must not swallow the "-file"
// marker, and a reasonless allow-file must be dropped at scan time.
func TestFileScopeDirectiveScan(t *testing.T) {
	pkg, err := sharedLoader.LoadDir(filepath.Join("testdata", "src", "filescope_bad"), "rips/internal/sim/fake2")
	if err != nil {
		t.Fatal(err)
	}
	var fileScope []*directive
	for _, d := range pkg.directives {
		if d.fileScope {
			fileScope = append(fileScope, d)
		}
	}
	if len(fileScope) != 1 {
		t.Fatalf("parsed %d file-scope directives, want 1 (the reasonless one dropped)", len(fileScope))
	}
	if d := fileScope[0]; d.check != "maporder" || d.reason == "" {
		t.Errorf("file-scope directive = %+v, want check maporder with a reason", d)
	}
}
