package analysis

import (
	"go/ast"
	"go/types"
)

// Errcheck flags statement-level calls in internal packages — and in
// the long-running ripsd daemon, where a silently dropped error can
// hide for the life of the process — whose error result is silently
// dropped. Assigning to _ is an explicit, greppable decision and is
// allowed; a bare call statement hides the drop. The fmt print family
// is excluded: its error returns concern the underlying writer and the
// project only prints to stderr/trace writers where a failed write has
// no recovery. Other intentional drops annotate with
// //ripslint:allow errdrop <reason>.
var Errcheck = &Analyzer{
	Name: "errcheck",
	Doc:  "flag silently dropped error returns in internal packages and ripsd",
	Applies: func(rel string) bool {
		return underDir(rel, "internal") || rel == "cmd/ripsd"
	},
	Run: runErrcheck,
}

// errcheckExcluded lists callee packages whose dropped errors are
// conventionally ignored.
var errcheckExcluded = map[string]map[string]bool{
	"fmt": {
		"Print": true, "Printf": true, "Println": true,
		"Fprint": true, "Fprintf": true, "Fprintln": true,
	},
}

func runErrcheck(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(info, call) || excludedCallee(info, call) {
				return true
			}
			p.Reportf(call.Pos(), "errdrop",
				"call drops its error result; handle it, assign to _, or annotate //ripslint:allow errdrop")
			return true
		})
	}
}

// returnsError reports whether any result of the call has type error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errType)
	}
}

// excludedCallee reports whether the call target is on the
// conventional-drop exclusion list.
func excludedCallee(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgPath, ok := importedPackage(info, sel)
	if !ok {
		return false
	}
	ex, ok := errcheckExcluded[pkgPath]
	return ok && ex[sel.Sel.Name]
}
