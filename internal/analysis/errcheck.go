package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Errcheck flags error returns in internal packages — and in the
// long-running ripsd daemon, where a silently dropped error can hide
// for the life of the process — that are silently dropped. Three
// blind spots are covered:
//
//   - bare call statements whose error result vanishes;
//   - defer and go statements whose deferred/spawned call returns an
//     error nobody can ever see (`defer f.Close()` is the classic:
//     the write-back failure disappears with the frame);
//   - error variables that are assigned and then never read again —
//     a later `x, err = f()` whose err is shadowed-by-habit and falls
//     off the end of the function.
//
// Assigning to _ is an explicit, greppable decision and is allowed; a
// bare call statement hides the drop. The fmt print family is
// excluded: its error returns concern the underlying writer and the
// project only prints to stderr/trace writers where a failed write has
// no recovery. Other intentional drops annotate with
// //ripslint:allow errdrop <reason>.
var Errcheck = &Analyzer{
	Name: "errcheck",
	Doc:  "flag silently dropped error returns in internal packages and ripsd",
	Applies: func(rel string) bool {
		return underDir(rel, "internal") || rel == "cmd/ripsd"
	},
	Run: runErrcheck,
}

// errcheckExcluded lists callee packages whose dropped errors are
// conventionally ignored.
var errcheckExcluded = map[string]map[string]bool{
	"fmt": {
		"Print": true, "Printf": true, "Println": true,
		"Fprint": true, "Fprintf": true, "Fprintln": true,
	},
}

// errcheckExcludedRecv lists receiver types whose methods' error
// returns are interface formality, documented never non-nil:
// strings.Builder and bytes.Buffer grow in memory and panic on
// overflow rather than report it.
var errcheckExcludedRecv = map[string]bool{
	"*strings.Builder": true,
	"*bytes.Buffer":    true,
}

func runErrcheck(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !returnsError(info, call) || excludedCallee(info, call) {
					return true
				}
				p.Reportf(call.Pos(), "errdrop",
					"call drops its error result; handle it, assign to _, or annotate //ripslint:allow errdrop")
			case *ast.DeferStmt:
				if returnsError(info, n.Call) && !excludedCallee(info, n.Call) {
					p.Reportf(n.Call.Pos(), "errdrop",
						"deferred call drops its error result; wrap it in a closure that handles the error, or annotate //ripslint:allow errdrop")
				}
			case *ast.GoStmt:
				if returnsError(info, n.Call) && !excludedCallee(info, n.Call) {
					p.Reportf(n.Call.Pos(), "errdrop",
						"go statement drops the spawned call's error result; wrap it in a closure that handles the error, or annotate //ripslint:allow errdrop")
				}
			case *ast.FuncDecl:
				if n.Body != nil {
					checkDeadErrVars(p, n.Body)
				}
			}
			return true
		})
	}
}

// checkDeadErrVars flags error-typed variables declared in body whose
// final assignment is never read: the error was captured and then fell
// off the end of the function. The analysis is positional (last write
// vs. last read) and bails out conservatively whenever position order
// stops implying execution order:
//
//   - a read or write inside a function literal can run at any time;
//   - a loop can execute a textually earlier read after a later write;
//   - an address-taken variable can be read through the pointer.
//
// The pure never-read case (`x, err := f()` with err unused) is a
// compile error, so what this catches is the reassignment gap the
// compiler is blind to: `=` writes into an already-used error variable
// with no subsequent read.
func checkDeadErrVars(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info
	errType := types.Universe.Lookup("error").Type()

	type varUse struct {
		writes, reads []token.Pos
		skip          bool // address-taken or touched inside a FuncLit
	}
	uses := map[*types.Var]*varUse{}
	local := map[*types.Var]bool{}
	use := func(v *types.Var) *varUse {
		u := uses[v]
		if u == nil {
			u = &varUse{}
			uses[v] = u
		}
		return u
	}
	errVar := func(id *ast.Ident, obj types.Object) (*types.Var, bool) {
		v, ok := obj.(*types.Var)
		if !ok || id.Name == "_" || !types.Identical(v.Type(), errType) {
			return nil, false
		}
		return v, true
	}

	var loops []ast.Node
	writeIdents := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					if v, ok := errVar(id, firstObj(info, id)); ok {
						use(v).skip = true
					}
				}
				return true
			})
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					writeIdents[id] = true
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) > 0 {
				for _, id := range n.Names {
					writeIdents[id] = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if v, ok := errVar(id, firstObj(info, id)); ok {
						use(v).skip = true
					}
				}
			}
		case *ast.Ident:
			if def, ok := info.Defs[n]; ok && def != nil {
				if v, ok := errVar(n, def); ok {
					local[v] = true
					if writeIdents[n] {
						use(v).writes = append(use(v).writes, n.Pos())
					}
				}
				return true
			}
			if v, ok := errVar(n, info.Uses[n]); ok {
				if writeIdents[n] {
					use(v).writes = append(use(v).writes, n.Pos())
				} else {
					use(v).reads = append(use(v).reads, n.Pos())
				}
			}
		}
		return true
	})

	inSameLoop := func(a, b token.Pos) bool {
		for _, l := range loops {
			if l.Pos() <= a && a < l.End() && l.Pos() <= b && b < l.End() {
				return true
			}
		}
		return false
	}
	for v, u := range uses {
		if !local[v] || u.skip || len(u.writes) == 0 {
			continue
		}
		last := u.writes[0]
		for _, w := range u.writes[1:] {
			if w > last {
				last = w
			}
		}
		live := false
		for _, r := range u.reads {
			if r > last || inSameLoop(r, last) {
				live = true
				break
			}
		}
		if !live {
			p.Reportf(last, "errdrop",
				"error assigned to %s here is never read; handle it or assign to _", v.Name())
		}
	}
}

// firstObj returns the object an identifier refers to, defined or
// used.
func firstObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// returnsError reports whether any result of the call has type error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errType)
	}
}

// excludedCallee reports whether the call target is on the
// conventional-drop exclusion lists.
func excludedCallee(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if pkgPath, ok := importedPackage(info, sel); ok {
		ex, ok := errcheckExcluded[pkgPath]
		return ok && ex[sel.Sel.Name]
	}
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return errcheckExcludedRecv[types.TypeString(sig.Recv().Type(), nil)]
		}
	}
	return false
}
