//ripslint:allow-file maporder this blanket waiver is refused inside the scheduling core
//ripslint:allow-file wallclock

// Package simfake is ripslint test data. It is loaded under the
// synthetic import path rips/internal/sim/fake2 — scheduling-core code
// — and pins the two ways a file-scope waiver is rejected: maporder
// blanket waivers are refused inside the core (each loop must justify
// itself on its own line), and a reasonless allow-file is ignored
// outright.
package simfake

import "time"

// Pick keeps firing despite the file-scope maporder directive: inside
// the core only line-scoped waivers count.
func Pick(load map[int]int) int {
	best := -1
	for id := range load { // want "map iteration order"
		if best < 0 || id < best {
			best = id
		}
	}
	return best
}

// Sum is fine with the sanctioned line form.
func Sum(load map[int]int) int {
	total := 0
	for _, v := range load { //ripslint:allow maporder commutative reduction
		total += v
	}
	return total
}

// Stamp keeps firing: the wallclock allow-file above has no reason and
// is therefore ignored.
func Stamp() time.Time {
	return time.Now() // want "wallclock"
}
