// Package metricsfake is ripslint test data. Loaded under the
// synthetic import path rips/internal/metricsfake: inside the module
// (wallclock and rand apply) but outside the scheduling core, so map
// iteration order is not a finding.
package metricsfake

import "math/rand"

// Histogram ranges over a map outside internal/sim, internal/ripsrt
// and internal/sched: allowed without a directive.
func Histogram(buckets map[string]int) int {
	n := 0
	for range buckets {
		n++
	}
	return n
}

func Jitter() int64 {
	return rand.Int63() // want "global math/rand"
}
