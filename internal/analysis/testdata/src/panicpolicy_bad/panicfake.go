// Package panicfake is ripslint test data for the panicpolicy
// analyzer, loaded under the synthetic import path
// rips/internal/panicfake.
package panicfake

func Explode() {
	panic("boom") // want "bare panic"
}

func Unwind() {
	panic("abort") //ripslint:allow panic control-flow: unwinds worker
}

// Shadowed calls a local function named panic, not the builtin; the
// analyzer must resolve the identifier through go/types, not by name.
func Shadowed() {
	panic := func(v interface{}) { _ = v }
	panic("not the builtin")
}
