package badalgo

import "testing"

// A test exists, but it never references sched.CheckBalanced or
// sched.Sum, so the package still violates the phase protocol.
func TestPlanLength(t *testing.T) {
	if len(Plan([]int{1, 2})) != 2 {
		t.Fatal("length changed")
	}
}
