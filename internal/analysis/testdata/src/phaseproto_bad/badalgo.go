// Package badalgo is ripslint test data: a scheduler implementation
// package (synthetic path rips/internal/sched/badalgo) whose test file
// never touches the balance entry points.
package badalgo // want "conservation/balance test"

// Plan is a stand-in scheduler entry point.
func Plan(w []int) []int { return w }
