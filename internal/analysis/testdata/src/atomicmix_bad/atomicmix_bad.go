// Package atomfake is ripslint test data for the atomicmix analyzer.
package atomfake

import "sync/atomic"

type counterState struct {
	// hits is accessed with sync/atomic in bump — every other access
	// must be atomic too.
	hits int64
	// cold is never accessed atomically; plain access is fine.
	cold int64
}

var flag int32

func bump(s *counterState) {
	atomic.AddInt64(&s.hits, 1)         // sanctioned: the atomic access itself
	atomic.StoreInt32(&flag, 1)         // sanctioned
	s.cold++                            // never atomic: fine
	if atomic.LoadInt64(&s.hits) > 10 { // sanctioned
		s.cold = 0
	}
}

func report(s *counterState) int64 {
	total := s.hits // want "races with the atomic ones"
	if flag == 1 {  // want "races with the atomic ones"
		total++
	}
	s.hits = 0 // want "races with the atomic ones"
	return total
}

func okRead(s *counterState) int64 {
	return atomic.LoadInt64(&s.hits) // sanctioned
}

func waived(s *counterState) int64 {
	return s.hits //ripslint:allow atomicmix read-only snapshot taken while the workers are quiesced
}
