// Package cgfake is synthetic test data for the call-graph builder:
// interface dispatch, method values and function values stored in
// package variables.
package cgfake

// Animal is implemented by Dog and Cat; a call through it must fan out
// to both under CHA.
type Animal interface{ Speak() string }

type Dog struct{}

func (Dog) Speak() string { return "woof" }

type Cat struct{}

func (Cat) Speak() string { return "meow" }

// CallSpeak dispatches through the interface.
func CallSpeak(a Animal) string { return a.Speak() }

// UseMethodValue binds a method value and calls it later: the call is
// dynamic and must resolve to the address-taken Dog.Speak.
func UseMethodValue() string {
	d := Dog{}
	f := d.Speak
	return f() + CallSpeak(Cat{})
}

func helper() int { return 1 }

// fp takes helper's address in a package-level initializer.
var fp = helper

// CallFp calls through the package-level function variable.
func CallFp() int { return fp() }

// direct is a plain static call for contrast.
func direct() string { return CallSpeak(Dog{}) }

var _ = direct
