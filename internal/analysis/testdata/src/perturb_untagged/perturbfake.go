//ripslint:allow-file wallclock copied blanket waiver: must not cover the sleeps below
//ripslint:allow-file sleep copied blanket waiver: refused inside the scheduling core

// Package perturbfake is ripslint test data pinning the perturbation
// hook policy. It mirrors internal/par/perturb_enabled.go with the
// `//go:build ripsperturb` line removed — the mistake of promoting the
// schedule-perturbation hook into the default build — and is loaded
// under the synthetic import path rips/internal/par/perturbfake.
// Inside the scheduling core no file-scope waiver covers injected
// delays, not even the blanket directives copied above, so the hook's
// sleep is flagged the moment it escapes its build tag. The rand-based
// variant below pins the same policy for the global math/rand source.
package perturbfake

import (
	"math/rand"
	"runtime"
	"time"
)

// perturb is the hash-jitter hook body. The yield is fine; the sleep
// must carry a line waiver or stay behind the ripsperturb tag.
func perturb(worker int, point int64) {
	x := (uint64(worker) + 1) * 0x9e3779b97f4a7c15
	x ^= uint64(point) * 0xbf58476d1ce4e5b9
	x ^= x >> 31
	switch x & 3 {
	case 0, 1:
		runtime.Gosched()
	case 2:
		time.Sleep(time.Duration(x & 1023)) // want "computed duration"
	}
}

// perturbRand is the tempting-but-wrong variant: jitter drawn from the
// process-global rand source adds cross-worker synchronization and
// non-reproducible schedules; no blanket rand exemption is sanctioned,
// so it fires.
func perturbRand() {
	if rand.Intn(4) == 0 { // want "global math/rand"
		runtime.Gosched()
	}
}

// measure shows what the copied wallclock waiver legitimately covers:
// reading the clock to report elapsed time.
func measure() time.Duration {
	start := time.Now()
	perturb(0, 1)
	return time.Since(start)
}

var _ = measure
