// Package example is ripslint test data. Loaded under the synthetic
// import path rips/examples/fake: examples are pedagogical host
// programs, so the determinism analyzer must not apply at all.
package example

import (
	"math/rand"
	"time"
)

func HostClock() time.Time {
	return time.Now()
}

func HostDice() int {
	return rand.Intn(6)
}
