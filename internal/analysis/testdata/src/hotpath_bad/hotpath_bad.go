// Package hotfake is ripslint test data for the hotpath analyzer,
// loaded under the synthetic import path rips/internal/hotfake.
package hotfake

import (
	"fmt"
	"sync"
	"time"
)

type state struct {
	mu    sync.Mutex
	buf   []int
	table map[string]int
	ch    chan int
}

//ripslint:hotpath
func (s *state) step(x int) {
	s.buf = append(s.buf, x) // want "append may grow"
	p := new(int)            // want "new allocates"
	_ = p
	m := make(map[string]int) // want "make allocates"
	_ = m
	s.mu.Lock()                  // want "blocks the calling goroutine"
	s.mu.Unlock()                // safe: vetted non-blocking
	time.Sleep(time.Millisecond) // want "blocks the calling goroutine"
	fmt.Printf("x=%d\n", x)      // want "formats" // want "boxes"
	<-s.ch                       // want "channel receive can block"
	s.ch <- x                    // want "channel send can block"
	for k := range s.table {     // want "map iteration order is randomized"
		_ = k
	}
	go s.helper(x) // want "go statement spawns a goroutine"
	s.helper(x)    // module call: analyzed via traversal, no finding here
	f := func() {} // want "function literal allocates a closure"
	f()            // want "call through a function value"
}

// helper is reached from step, so its body is checked too; the
// diagnostic names the discovery chain.
func (s *state) helper(x int) {
	s.buf = append(s.buf, x) // want "append may grow" // want "via"
}
