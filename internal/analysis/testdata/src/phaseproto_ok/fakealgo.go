// Package fakealgo is ripslint test data for the phaseprotocol
// analyzer, loaded under the synthetic import path
// rips/internal/sched/fakealgo. Its test file references
// sched.CheckBalanced, satisfying the protocol.
package fakealgo

// Plan is a stand-in scheduler entry point.
func Plan(w []int) []int { return w }
