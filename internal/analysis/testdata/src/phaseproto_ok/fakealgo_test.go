package fakealgo

// Test files are parsed but not type-checked by the loader, so this
// import needs only to be syntactically plausible.

import (
	"testing"

	"rips/internal/sched"
)

func TestPlanBalanced(t *testing.T) {
	w := []int{3, 1, 2}
	if !sched.CheckBalanced(Plan(w), 6) {
		t.Fatal("plan not balanced within one")
	}
}
