//ripslint:allow-file panic stale blanket waiver; nothing here panics // want "suppresses nothing"

// Package deadfake is ripslint test data for the deadwaiver analyzer,
// loaded under a synthetic scheduling-core path so the determinism
// analyzer runs and exercises one waiver for real.
package deadfake

import "time"

// now carries a waiver that suppresses a real wallclock finding: used,
// so deadwaiver stays quiet about it.
func now() time.Time {
	return time.Now() //ripslint:allow wallclock fixture exercises a used waiver
}

func pure(x int) int {
	//ripslint:allow rand nothing random here anymore // want "suppresses nothing"
	return x * 2
}

var _ = now
var _ = pure
