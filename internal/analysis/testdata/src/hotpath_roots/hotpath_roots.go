// Package hotroots is ripslint test data for hotpath root-annotation
// edge cases: unknown criteria and annotations matching no function.
package hotroots

//ripslint:hotpath frobnicate
func Root() {}

//ripslint:hotpath
var notAFunc = 3

var _ = notAFunc
var _ = Root
