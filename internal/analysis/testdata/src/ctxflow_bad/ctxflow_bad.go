// Package ctxfake is ripslint test data for the ctxflow analyzer.
package ctxfake

import "context"

// Run has a context-taking sibling; calling it from a ctx-receiving
// function drops the caller's context.
func Run() error { return nil }

// RunContext is the context-taking variant of Run.
func RunContext(ctx context.Context) error { return ctx.Err() }

// Solo has no context variant: calling it anywhere is fine.
func Solo() {}

func mint() context.Context {
	return context.Background() // want "mints a root context outside package main"
}

func todo() context.Context {
	return context.TODO() // want "mints a root context outside package main"
}

func serve(ctx context.Context) error {
	Solo()
	if err := Run(); err != nil { // want "receives a context but calls Run"
		return err
	}
	return RunContext(ctx) // threading the context: fine
}

// plain receives no context, so calling the context-blind variant is
// its only option — no finding.
func plain() error { return Run() }

func waived(ctx context.Context) error {
	return Run() //ripslint:allow ctxflow the callee is fire-and-forget by contract; cancellation is handled at the phase boundary
}
