// Package hotwaived is ripslint test data for the hotpath analyzer's
// waiver semantics: a line waiver on a call site silences the line AND
// prunes the callee subtree from the traversal, and a root's criteria
// list narrows what is checked.
package hotwaived

type pool struct {
	buf   []int
	table map[int]int
}

//ripslint:hotpath
func (p *pool) run(x int) {
	p.grow(x) //ripslint:allow hotpath the grow path is amortized; capacity is retained across runs
	p.fast(x)
}

// grow is only reached through the waived call site above, so its
// allocation is excused from the proof — no finding in here.
func (p *pool) grow(x int) {
	p.buf = append(p.buf, x)
}

func (p *pool) fast(x int) {
	p.buf[0] = x
}

// mapOnly is checked under the map criterion alone: the allocation is
// fine, the map iteration is not.
//
//ripslint:hotpath map
func (p *pool) mapOnly() {
	p.buf = append(p.buf, 1) // alloc criterion not requested: no finding
	for k := range p.table { // want "map iteration order is randomized"
		_ = k
	}
}
