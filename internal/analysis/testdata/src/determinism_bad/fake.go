// Package fake is ripslint test data. It is loaded under the
// synthetic import path rips/internal/sim/fake so the determinism
// analyzer treats it as scheduling-core code (maporder in scope).
package fake

import (
	"math/rand"
	"time"
)

func Stamp() time.Time {
	return time.Now() // want "wallclock"
}

func Countdown() <-chan time.Time {
	return time.After(time.Second) // want "injects host-timed delays"
}

func Draw() int {
	return rand.Intn(6) // want "global math/rand"
}

// Seeded builds an explicitly seeded generator; rand.New and
// rand.NewSource are the sanctioned constructors.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// Pick makes a scheduling-style decision from map order.
func Pick(load map[int]int) int {
	best := -1
	for id := range load { // want "map iteration order"
		if best < 0 || id < best {
			best = id
		}
	}
	return best
}

// Sum is order-insensitive and carries the waiver directive.
func Sum(load map[int]int) int {
	total := 0
	for _, v := range load { //ripslint:allow maporder commutative reduction
		total += v
	}
	return total
}

// Elapsed only references time.Duration, a type name: no clock read.
func Elapsed(d time.Duration) time.Duration {
	return d
}

// HostStart is waived; this is the directive form riding the line.
func HostStart() time.Time {
	return time.Now() //ripslint:allow wallclock harness timing
}

// HostStop is waived by a directive on the line above.
func HostStop() time.Time {
	//ripslint:allow wallclock harness timing
	return time.Now()
}
