// Package waived is ripslint test data: a scheduler implementation
// package (synthetic path rips/internal/sched/waived) with no balance
// test, waived by the package-scoped phasetest directive below.
package waived

//ripslint:allow phasetest pedagogical stub, no balance contract yet

// Plan is a stand-in scheduler entry point.
func Plan(w []int) []int { return w }
