// Package adaptivefake is ripslint test data for the computed-duration
// sleep diagnostic. It is loaded under the synthetic import path
// rips/internal/par/adaptivefake so the determinism analyzer treats it
// as scheduling-core code, where sleep waivers must be per line.
package adaptivefake

import "time"

// ConstantWait spells its duration in the source: the plain sleep
// wording applies.
func ConstantWait() {
	time.Sleep(100 * time.Microsecond) // want "injects host-timed delays into the schedule"
}

// DerivedConstant folds constants only; it is still a constant
// expression, so the plain wording applies.
func DerivedConstant() {
	time.Sleep(2 * 50 * time.Millisecond) // want "injects host-timed delays into the schedule"
}

// AdaptiveWait computes its duration at run time — the shape of the
// par backend's EWMA-scaled detector interval — and gets the computed
// wording.
func AdaptiveWait(factor float64) {
	time.Sleep(time.Duration(factor * float64(time.Microsecond))) // want "computed duration"
}

// AdaptiveTimer covers the timer constructors: a computed duration
// flows into time.After the same way.
func AdaptiveTimer(d time.Duration) <-chan time.Time {
	return time.After(d) // want "computed duration"
}

// WaivedAdaptive carries the unchanged per-line waiver: the computed
// variant is covered by exactly the same directive as the constant one.
func WaivedAdaptive(d time.Duration) {
	time.Sleep(d) //ripslint:allow sleep adaptive backoff; delays only when phases happen, never what is computed
}
