//ripslint:allow-file wallclock fake parallel backend: measures real elapsed time by design

// Package parfake is ripslint test data. It is loaded under the
// synthetic import path rips/internal/par/fake — the real-parallel
// backend, where a file-scope wallclock waiver is sanctioned policy —
// and shows that the waiver covers every clock read in the file while
// other checks keep firing.
package parfake

import (
	"math/rand"
	"time"
)

// Elapsed reads the clock twice; both reads are covered by the
// allow-file directive at the top.
func Elapsed() time.Duration {
	start := time.Now()
	work()
	return time.Since(start)
}

// Nap is NOT covered: sleeping is the separate sleep check, and its
// file-scope waivers are refused inside the scheduling core — a
// wallclock waiver never smuggles in schedule-shaping delays.
func Nap() {
	time.Sleep(time.Microsecond) // want "injects host-timed delays"
}

// Doze is covered: injected delays may be waived, but only line by
// line, each with its own justification.
func Doze() {
	time.Sleep(time.Microsecond) //ripslint:allow sleep fake backoff justified per line
}

// Draw still fires — the file waiver names wallclock only.
func Draw() int {
	return rand.Intn(6) // want "global math/rand"
}

// Pick still fires: rips/internal/par is inside the maporder scope and
// the check has no file waiver here.
func Pick(load map[int]int) int {
	best := -1
	for id := range load { // want "map iteration order"
		if best < 0 || id < best {
			best = id
		}
	}
	return best
}

func work() {}
