//ripslint:allow-file wallclock fake parallel backend: measures real elapsed time by design

// Package parfake is ripslint test data. It is loaded under the
// synthetic import path rips/internal/par/fake — the real-parallel
// backend, where a file-scope wallclock waiver is sanctioned policy —
// and shows that the waiver covers every clock read in the file while
// other checks keep firing.
package parfake

import (
	"math/rand"
	"time"
)

// Elapsed reads the clock twice; both reads are covered by the
// allow-file directive at the top.
func Elapsed() time.Duration {
	start := time.Now()
	work()
	return time.Since(start)
}

// Nap is also covered: the waiver is per check, not per function.
func Nap() {
	time.Sleep(time.Microsecond)
}

// Draw still fires — the file waiver names wallclock only.
func Draw() int {
	return rand.Intn(6) // want "global math/rand"
}

// Pick still fires: rips/internal/par is inside the maporder scope and
// the check has no file waiver here.
func Pick(load map[int]int) int {
	best := -1
	for id := range load { // want "map iteration order"
		if best < 0 || id < best {
			best = id
		}
	}
	return best
}

func work() {}
