// Package errfake is ripslint test data for the errcheck analyzer,
// loaded under the synthetic import path rips/internal/errfake.
package errfake

import (
	"errors"
	"fmt"
	"strconv"
)

func fail() error { return errors.New("boom") }

func parse(s string) (int, error) { return strconv.Atoi(s) }

func clean() int { return 0 }

func Drop() {
	fail()     // want "drops its error"
	parse("7") // want "drops its error"

	// Explicit discard is a visible, greppable decision: allowed.
	_ = fail()

	// Handling the error: allowed.
	if _, err := parse("7"); err != nil {
		fmt.Println(err)
	}

	// fmt print family is conventionally excluded.
	fmt.Println("ok")

	// No error in the results: nothing to drop.
	clean()

	fail() //ripslint:allow errdrop best-effort cleanup
}
