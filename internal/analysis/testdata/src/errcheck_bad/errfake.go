// Package errfake is ripslint test data for the errcheck analyzer,
// loaded under the synthetic import path rips/internal/errfake.
package errfake

import (
	"errors"
	"fmt"
	"strconv"
)

func fail() error { return errors.New("boom") }

func parse(s string) (int, error) { return strconv.Atoi(s) }

func clean() int { return 0 }

func Drop() {
	fail()     // want "drops its error"
	parse("7") // want "drops its error"

	// Explicit discard is a visible, greppable decision: allowed.
	_ = fail()

	// Handling the error: allowed.
	if _, err := parse("7"); err != nil {
		fmt.Println(err)
	}

	// fmt print family is conventionally excluded.
	fmt.Println("ok")

	// No error in the results: nothing to drop.
	clean()

	fail() //ripslint:allow errdrop best-effort cleanup
}

type closer struct{}

func (closer) Close() error { return nil }

func Deferred() {
	var c closer
	defer c.Close() // want "deferred call drops its error"
	go fail()       // want "go statement drops the spawned call's error"

	// Handling inside a closure is the sanctioned shape: allowed.
	defer func() { _ = c.Close() }()
}

// DeadVar reassigns err without ever reading the second assignment --
// the compiler cannot see it (the variable IS used), errcheck can.
func DeadVar() (int, error) {
	v, err := parse("1")
	if err != nil {
		return 0, err
	}
	v2, err := parse("2") // want "never read"
	return v + v2, nil
}

// LiveLoop writes err late in the loop body and reads it at the top of
// the next iteration: textual order lies about execution order, so the
// loop guard keeps errcheck quiet.
func LiveLoop(tries int) error {
	var err error
	for i := 0; i < tries; i++ {
		if err != nil {
			return err
		}
		_, err = parse("x")
	}
	return nil
}

// LiveClosure hands the error variable to a closure; when it runs is
// unknowable statically, so the variable is exempt.
func LiveClosure() func() error {
	var err error
	_, err = parse("y")
	return func() error { return err }
}
