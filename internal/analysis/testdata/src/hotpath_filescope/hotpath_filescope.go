//ripslint:allow-file hotpath trying to excuse the whole file, which the policy refuses

// Package hotfile is ripslint test data: file-scope hotpath waivers
// are refused everywhere, so the finding below survives the allow-file
// directive at the top of this file.
package hotfile

type buf struct{ items []int }

//ripslint:hotpath
func (b *buf) push(x int) {
	b.items = append(b.items, x) // want "append may grow"
}
