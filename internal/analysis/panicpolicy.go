package analysis

import (
	"go/ast"
	"go/types"
)

// PanicPolicy forbids bare panic(...) in library packages and in the
// ripsd daemon (a panic there takes down every queued job, so bugs
// must surface as typed violations or error responses). A detected
// bug should raise a typed *invariant.Violation via
// invariant.Violated — distinguishable from incidental panics in
// recover handlers and greppable as policy — and an expected runtime
// condition should be a returned error. The internal/invariant package
// itself (which implements the sanctioned panic) is exempt, as are
// control-flow panics explicitly annotated
// //ripslint:allow panic <reason>.
var PanicPolicy = &Analyzer{
	Name: "panicpolicy",
	Doc:  "forbid bare panic(...) in library packages and ripsd; use invariant.Violated or a typed error",
	Applies: func(rel string) bool {
		return (underDir(rel, "internal") || rel == "cmd/ripsd") && rel != "internal/invariant"
	},
	Run: runPanicPolicy,
}

func runPanicPolicy(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			// Confirm it is the builtin, not a shadowing function.
			if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
				return true
			}
			p.Reportf(call.Pos(), "panic",
				"bare panic in library package; call invariant.Violated, return a typed error, or annotate //ripslint:allow panic <reason>")
			return true
		})
	}
}
