package analysis

import (
	"fmt"
	"go/token"
)

// A ModuleAnalyzer checks one whole-program property: it sees every
// loaded package of the module at once, plus the call graph built over
// them. Per-package analyzers (Analyzer) stay the right tool for
// purely local properties; the module layer exists for the properties
// that only hold — or only fail — across package boundaries:
// reachability (hotpath), cross-package field access (atomicmix),
// context threading (ctxflow) and directive liveness (deadwaiver).
type ModuleAnalyzer struct {
	Name string
	Doc  string
	// Run inspects the module and reports findings through the pass.
	Run func(mp *ModulePass)
}

// AllModule returns the whole-program half of the ripslint suite, in
// required order: DeadWaiver MUST run last — it flags directives left
// unused by every other analyzer, so any analyzer running after it
// could mark a directive used too late.
func AllModule() []*ModuleAnalyzer {
	return []*ModuleAnalyzer{Hotpath, AtomicMix, CtxFlow, DeadWaiver}
}

// ModulePass carries the loaded module through one ModuleAnalyzer.
type ModulePass struct {
	// Pkgs are the module's packages in deterministic order.
	Pkgs []*Package
	// Graph is the whole-module call graph.
	Graph *CallGraph

	analyzer *ModuleAnalyzer
	findings *[]Finding
}

// Reportf records a finding for check at pos, resolving waivers
// against the directives of the package owning the position.
func (mp *ModulePass) Reportf(pkg *Package, pos token.Pos, check, format string, args ...any) {
	position := pkg.Fset.Position(pos)
	*mp.findings = append(*mp.findings, Finding{
		Analyzer: mp.analyzer.Name,
		Check:    check,
		Pos:      position,
		Msg:      fmt.Sprintf(format, args...),
		Waived:   pkg.suppressed(check, position),
	})
}

// RunModule runs the full suite over the module: every applicable
// per-package analyzer on every package, then the whole-program
// analyzers over the call graph. Findings (waived ones included) come
// back sorted by position. pkgs should be every package of the module:
// the call graph's CHA resolution and the hotpath proof are only sound
// over the complete candidate set.
func RunModule(pkgs []*Package, analyzers []*Analyzer, moduleAnalyzers []*ModuleAnalyzer) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.Rel) {
				continue
			}
			a.Run(&Pass{Pkg: pkg, analyzer: a, findings: &out})
		}
	}
	if len(moduleAnalyzers) > 0 {
		graph := BuildCallGraph(pkgs)
		for _, ma := range moduleAnalyzers {
			ma.Run(&ModulePass{Pkgs: pkgs, Graph: graph, analyzer: ma, findings: &out})
		}
	}
	sortFindings(out)
	return out
}
