package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Hotpath statically proves the steady-state contract that
// TestSteadyStateZeroAlloc samples dynamically: every function
// reachable from a //ripslint:hotpath root annotation must be free of
//
//   - heap allocation (make, new, append growth, composite literals,
//     closures, interface boxing, string building, fmt, go
//     statements) — criterion "alloc";
//   - blocking operations (channel send/receive/select, mutex and
//     cond waits, sleeps, syscalls and I/O packages) — criterion
//     "block";
//   - map iteration (randomized order; reachability extends the
//     per-package maporder check beyond the scheduling-core
//     directories) — criterion "map".
//
// A root names its criteria (//ripslint:hotpath alloc block map); an
// empty list means all three. Reachability is the module call graph's:
// interface dispatch and function values fan out to every candidate
// (see callgraph.go), so the proof covers every path the runtime could
// take, not just the one a test happened to sample.
//
// Waivers are line-scoped only (allow-file is refused) and carry a
// second meaning on call sites: a waived call is also PRUNED from the
// traversal, excusing the callee subtree from the contract. That is
// how the sanctioned exceptions are expressed at the exact source line
// that introduces them: the epoch barrier's parking spot, the planner
// invocation only unbalanced phases reach, application payload
// execution, the OnPhase hook hand-off. Calls to invariant.Violated
// and builtin panic are pruned intrinsically — they diverge, so their
// argument boxing and fmt formatting are failure-path costs, not
// steady-state costs.
var Hotpath = &ModuleAnalyzer{
	Name: "hotpath",
	Doc:  "prove functions reachable from //ripslint:hotpath roots allocation-free, non-blocking and map-iteration-free",
	Run: func(mp *ModulePass) {
		h := newHotpathState(mp.Graph)
		h.run(mp, mp.Pkgs)
	},
}

// Criteria bits.
const (
	critAlloc uint8 = 1 << iota
	critBlock
	critMap

	critAll = critAlloc | critBlock | critMap
)

// hotpathCriteria maps root-annotation tokens to criteria bits.
var hotpathCriteria = map[string]uint8{"alloc": critAlloc, "block": critBlock, "map": critMap}

// hotpathSafePkgs are external packages whose every function is
// allocation-free and non-blocking.
var hotpathSafePkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

// hotpathSafeFuncs are individually vetted external functions: they
// neither allocate nor park the calling goroutine. Wall-clock policy
// for time.Now/Since is the wallclock check's business, not hotpath's.
var hotpathSafeFuncs = map[string]bool{
	"time.Now":                true,
	"time.Since":              true,
	"time.Until":              true,
	"(time.Time).Sub":         true,
	"(*sync.Mutex).Unlock":    true,
	"(*sync.RWMutex).Unlock":  true,
	"(*sync.RWMutex).RUnlock": true,
	"(*sync.Cond).Broadcast":  true,
	"(*sync.Cond).Signal":     true,
	"runtime.Gosched":         true, // a yield is a scheduling point, not a wait
}

// hotpathBlockFuncs are external functions that park the calling
// goroutine. Methods of I/O packages need no listing here: a method
// object's package is its defining package, so hotpathBlockingPkgs
// already classifies (*os.File).Read and friends.
var hotpathBlockFuncs = map[string]bool{
	"time.Sleep":             true,
	"(*sync.Mutex).Lock":     true,
	"(*sync.RWMutex).Lock":   true,
	"(*sync.RWMutex).RLock":  true,
	"(*sync.Cond).Wait":      true,
	"(*sync.WaitGroup).Wait": true,
	"(*sync.Once).Do":        true,
	"runtime.GC":             true,
}

// hotpathBlockingPkgs are external packages whose calls perform (or
// may perform) I/O or syscalls; any call into them blocks the hot
// path. Covers both package functions and methods (a method's Pkg() is
// its defining package).
var hotpathBlockingPkgs = map[string]bool{
	"os": true, "io": true, "net": true, "net/http": true,
	"bufio": true, "syscall": true, "os/exec": true, "os/signal": true,
	"log": true, "io/fs": true,
}

// hotpathState is one hotpath traversal over the module graph.
type hotpathState struct {
	g *CallGraph
	// visited maps each reached node to the criteria it has been
	// analyzed under.
	visited map[*CGNode]uint8
	// via maps each reached node to its (capped) discovery chain from a
	// root, for diagnostics.
	via map[*CGNode][]string
	// prunes caches per-node pruned call subtrees.
	prunes map[*CGNode]*hotPrune
}

// hotPrune records the pruned call subtrees of one function body.
type hotPrune struct {
	// roots are pruned call expressions (waived or diverging).
	roots map[*ast.CallExpr]bool
	// all additionally contains every call nested inside a pruned
	// subtree; edges whose site is in here are not traversed.
	all map[*ast.CallExpr]bool
}

func newHotpathState(g *CallGraph) *hotpathState {
	return &hotpathState{
		g:       g,
		visited: map[*CGNode]uint8{},
		via:     map[*CGNode][]string{},
		prunes:  map[*CGNode]*hotPrune{},
	}
}

// hotQueued is one BFS work item.
type hotQueued struct {
	node *CGNode
	crit uint8
}

// run resolves the root annotations of pkgs and walks the reachable
// set, analyzing each newly covered (function, criterion) pair. mp may
// be nil (HotFunctions): the traversal then only computes coverage.
func (h *hotpathState) run(mp *ModulePass, pkgs []*Package) {
	queue := h.collectRoots(mp, pkgs)
	for len(queue) > 0 {
		item := queue[0]
		queue = queue[1:]
		fresh := item.crit &^ h.visited[item.node]
		if fresh == 0 {
			continue
		}
		h.visited[item.node] |= item.crit
		if item.node.Body == nil {
			continue
		}
		if mp != nil {
			h.analyze(mp, item.node, fresh)
		}
		pr := h.prune(item.node)
		for _, e := range item.node.Calls {
			if pr.all[e.Site] || e.Callee.Body == nil {
				continue
			}
			if h.visited[e.Callee]&item.crit == item.crit {
				continue
			}
			if _, seen := h.via[e.Callee]; !seen {
				h.via[e.Callee] = extendVia(h.via[item.node], e.Callee.Name)
			}
			queue = append(queue, hotQueued{node: e.Callee, crit: item.crit})
		}
	}
}

// collectRoots resolves every //ripslint:hotpath annotation to a graph
// node, reporting (when mp is non-nil) annotations that match nothing
// or name unknown criteria.
func (h *hotpathState) collectRoots(mp *ModulePass, pkgs []*Package) []hotQueued {
	var queue []hotQueued
	for _, pkg := range pkgs {
		for _, root := range pkg.hotpathRoots {
			crit := uint8(0)
			for _, tok := range root.criteria {
				bit, ok := hotpathCriteria[tok]
				if !ok {
					if mp != nil {
						mp.Reportf(pkg, root.pos, "hotpath",
							"unknown hotpath criterion %q (valid: alloc, block, map)", tok)
					}
					continue
				}
				crit |= bit
			}
			if crit == 0 {
				crit = critAll
			}
			node := h.findRoot(pkg, root)
			if node == nil {
				if mp != nil {
					mp.Reportf(pkg, root.pos, "hotpath",
						"//ripslint:hotpath does not precede a function declaration or function literal")
				}
				continue
			}
			if _, seen := h.via[node]; !seen {
				h.via[node] = []string{node.Name}
			}
			queue = append(queue, hotQueued{node: node, crit: crit})
		}
	}
	return queue
}

// findRoot matches a root annotation to the function declared (or the
// literal appearing) on the annotation's line or the line below it.
func (h *hotpathState) findRoot(pkg *Package, root hotpathRoot) *CGNode {
	onLine := func(pos token.Pos) bool {
		p := pkg.Fset.Position(pos)
		return p.Filename == root.file && (p.Line == root.line || p.Line == root.line+1)
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !onLine(fd.Pos()) {
				continue
			}
			if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				if n := h.g.NodeFor(obj); n != nil {
					return n
				}
			}
		}
	}
	for _, n := range h.g.Nodes {
		if n.Lit != nil && n.Pkg == pkg && onLine(n.Lit.Pos()) {
			return n
		}
	}
	return nil
}

// extendVia appends a step to a discovery chain, compressing the
// middle once it grows past four hops.
func extendVia(parent []string, name string) []string {
	chain := append(append([]string{}, parent...), name)
	if len(chain) > 4 {
		chain = append([]string{chain[0], "…"}, chain[len(chain)-2:]...)
	}
	return chain
}

// viaSuffix renders the diagnostic suffix naming the root (and path)
// that put a function on the hot set.
func (h *hotpathState) viaSuffix(n *CGNode) string {
	chain := h.via[n]
	if len(chain) <= 1 {
		return " on the hot path rooted at " + n.Name
	}
	return " on the hot path from " + chain[0] + " (via " + strings.Join(chain[1:], " → ") + ")"
}

// prune computes (once per node) the pruned call subtrees: calls with
// a hotpath line waiver and calls that diverge (invariant.Violated,
// builtin panic).
func (h *hotpathState) prune(n *CGNode) *hotPrune {
	if pr, ok := h.prunes[n]; ok {
		return pr
	}
	pr := &hotPrune{roots: map[*ast.CallExpr]bool{}, all: map[*ast.CallExpr]bool{}}
	h.prunes[n] = pr
	info := n.Pkg.Info
	walkFuncBody(n.Body, func(node ast.Node) {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return
		}
		if divergingCall(info, call) || n.Pkg.lineWaived("hotpath", n.Pkg.Fset.Position(call.Pos())) {
			pr.roots[call] = true
		}
	})
	for root := range pr.roots {
		ast.Inspect(root, func(node ast.Node) bool {
			if c, ok := node.(*ast.CallExpr); ok {
				pr.all[c] = true
			}
			return true
		})
	}
	return pr
}

// divergingCall reports whether a call never returns: builtin panic or
// invariant.Violated (called qualified or, within its own package,
// bare). Their argument costs are failure-path costs.
func divergingCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Builtin:
			return obj.Name() == "panic"
		case *types.Func:
			return isViolated(obj)
		}
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		return ok && isViolated(fn)
	}
	return false
}

func isViolated(fn *types.Func) bool {
	return fn.Name() == "Violated" && fn.Pkg() != nil &&
		strings.HasSuffix(fn.Pkg().Path(), "internal/invariant")
}

// analyze inspects one hot function's body under the given criteria.
func (h *hotpathState) analyze(mp *ModulePass, n *CGNode, bits uint8) {
	pr := h.prune(n)
	info := n.Pkg.Info
	suffix := h.viaSuffix(n)
	report := func(pos token.Pos, format string, args ...any) {
		mp.Reportf(n.Pkg, pos, "hotpath", format+"%s", append(args, suffix)...)
	}
	// selectComm collects the comm-clause channel operations of select
	// statements, so a select is reported once rather than per clause.
	selectComm := map[ast.Node]bool{}

	ast.Inspect(n.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			if bits&critAlloc != 0 {
				report(node.Pos(), "function literal allocates a closure")
			}
			return false // the literal's body is its own graph node
		case *ast.CallExpr:
			if pr.roots[node] {
				return false // waived or diverging: whole subtree excused
			}
			h.checkCall(report, info, node, bits)
		case *ast.GoStmt:
			if bits&(critAlloc|critBlock) != 0 {
				report(node.Pos(), "go statement spawns a goroutine (allocates, schedules)")
			}
		case *ast.CompositeLit:
			if bits&critAlloc != 0 {
				if tv, ok := info.Types[node]; ok && tv.Type != nil {
					switch tv.Type.Underlying().(type) {
					case *types.Slice:
						report(node.Pos(), "slice literal allocates")
					case *types.Map:
						report(node.Pos(), "map literal allocates")
					}
				}
			}
		case *ast.UnaryExpr:
			switch node.Op {
			case token.AND:
				if _, comp := ast.Unparen(node.X).(*ast.CompositeLit); comp && bits&critAlloc != 0 {
					report(node.Pos(), "address of composite literal escapes to the heap")
				}
			case token.ARROW:
				if bits&critBlock != 0 && !selectComm[node] {
					report(node.Pos(), "channel receive can block")
				}
			}
		case *ast.SendStmt:
			if bits&critBlock != 0 && !selectComm[node] {
				report(node.Pos(), "channel send can block")
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, clause := range node.Body.List {
				cc, ok := clause.(*ast.CommClause)
				if !ok {
					continue
				}
				if cc.Comm == nil {
					hasDefault = true
					continue
				}
				selectComm[cc.Comm] = true
				if as, ok := cc.Comm.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
					selectComm[ast.Unparen(as.Rhs[0])] = true
				}
				if es, ok := cc.Comm.(*ast.ExprStmt); ok {
					selectComm[ast.Unparen(es.X)] = true
				}
			}
			if !hasDefault && bits&critBlock != 0 {
				report(node.Pos(), "select without default can block")
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[node.X]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					// A maporder line waiver carries over: the per-package
					// check and this reachability check assert the same
					// property, and one justified loop needs one waiver.
					if bits&critMap != 0 && !n.Pkg.lineWaived("maporder", n.Pkg.Fset.Position(node.Pos())) {
						report(node.Pos(), "map iteration order is randomized")
					}
				case *types.Chan:
					if bits&critBlock != 0 {
						report(node.Pos(), "ranging over a channel blocks")
					}
				}
			}
		case *ast.BinaryExpr:
			if node.Op == token.ADD && bits&critAlloc != 0 {
				if tv, ok := info.Types[node]; ok && tv.Type != nil && tv.Value == nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(node.Pos(), "string concatenation allocates")
					}
				}
			}
		}
		return true
	})
}

// checkCall classifies one unpruned call site: builtins that allocate,
// allocating conversions, interface boxing of arguments, and calls
// leaving the module.
func (h *hotpathState) checkCall(report func(token.Pos, string, ...any), info *types.Info, call *ast.CallExpr, bits uint8) {
	fun := ast.Unparen(call.Fun)

	// Conversions: string building and interface boxing.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if bits&critAlloc == 0 || len(call.Args) == 0 {
			return
		}
		dst := tv.Type
		src := info.Types[call.Args[0]].Type
		switch {
		case isStringByteConversion(dst, src):
			report(call.Pos(), "conversion between string and byte/rune slice copies and allocates")
		case src != nil && types.IsInterface(dst.Underlying()) && !types.IsInterface(src) && boxes(src):
			report(call.Pos(), "conversion of %s to interface boxes (allocates)", types.TypeString(src, nil))
		}
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if bits&critAlloc != 0 {
				switch b.Name() {
				case "make":
					report(call.Pos(), "make allocates")
				case "new":
					report(call.Pos(), "new allocates")
				case "append":
					report(call.Pos(), "append may grow its backing array (allocates)")
				case "print", "println":
					report(call.Pos(), "builtin %s writes to stderr", b.Name())
				}
			}
			return
		}
	}

	// Boxing of arguments against the callee signature (any call kind).
	if bits&critAlloc != 0 {
		if tv, ok := info.Types[call.Fun]; ok && tv.Type != nil {
			if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
				h.checkBoxing(report, info, call, sig)
			}
		}
	}

	// Resolution: static callees leaving the module are classified;
	// interface dispatch and function values are conservatively
	// reported (module candidates are traversed by the graph, but
	// callees from outside the module cannot be proven).
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			h.classifyStatic(report, call, fn, bits)
			return
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			if sel := info.Selections[fun]; sel != nil && sel.Kind() == types.MethodVal && types.IsInterface(sel.Recv()) {
				if bits&(critAlloc|critBlock) != 0 {
					report(call.Pos(), "interface method call %s dispatches dynamically; module implementations are traversed, but implementations from outside the module cannot be proven allocation- and blocking-free", fn.Name())
				}
				return
			}
			h.classifyStatic(report, call, fn, bits)
			return
		}
	}
	if bits&(critAlloc|critBlock) != 0 {
		report(call.Pos(), "call through a function value: module candidates are traversed, but function values from outside the module cannot be proven allocation- and blocking-free")
	}
}

// classifyStatic classifies a direct call to a named function: module
// functions are handled by graph traversal; external ones come from
// the vetted tables or are conservatively reported.
func (h *hotpathState) classifyStatic(report func(token.Pos, string, ...any), call *ast.CallExpr, fn *types.Func, bits uint8) {
	if h.g.NodeFor(fn) != nil {
		return // module function: the traversal analyzes its body
	}
	full := fn.FullName()
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	switch {
	case hotpathSafeFuncs[full] || hotpathSafePkgs[pkgPath]:
	case hotpathBlockFuncs[full]:
		if bits&critBlock != 0 {
			report(call.Pos(), "%s blocks the calling goroutine", full)
		}
	case pkgPath == "fmt":
		if bits&(critAlloc|critBlock) != 0 {
			report(call.Pos(), "%s formats (allocates) and may write", full)
		}
	case hotpathBlockingPkgs[pkgPath]:
		if bits&(critAlloc|critBlock) != 0 {
			report(call.Pos(), "%s may perform I/O or a syscall", full)
		}
	default:
		if bits&(critAlloc|critBlock) != 0 {
			report(call.Pos(), "%s is not classified as allocation- and blocking-free; vet it or waive this call", full)
		}
	}
}

// checkBoxing flags concrete, non-pointer-shaped arguments passed in
// interface-typed parameter slots: the conversion heap-allocates.
func (h *hotpathState) checkBoxing(report func(token.Pos, string, ...any), info *types.Info, call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if call.Ellipsis.IsValid() {
				continue // a slice passed through, no per-element boxing
			}
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		tv, ok := info.Types[arg]
		if !ok || tv.Type == nil || tv.IsNil() {
			continue
		}
		at := types.Default(tv.Type)
		if types.IsInterface(at) || !boxes(at) {
			continue
		}
		report(arg.Pos(), "passing %s as %s boxes (allocates)",
			types.TypeString(at, nil), types.TypeString(pt, nil))
	}
}

// boxes reports whether converting a value of type t to an interface
// heap-allocates: everything except pointer-shaped values (pointers,
// channels, maps, functions, unsafe pointers) does.
func boxes(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer
	}
	return true
}

// isStringByteConversion reports a conversion between string and
// []byte/[]rune in either direction.
func isStringByteConversion(dst, src types.Type) bool {
	if src == nil {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteSlice := func(t types.Type) bool {
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isByteSlice(src)) || (isByteSlice(dst) && isStr(src))
}

// HotFunctions returns the diagnostic names of every function the
// hotpath analyzer reaches from the root annotations in pkgs, sorted.
// Tests pin the proof's coverage with it: a function exercised by
// TestSteadyStateZeroAlloc but absent here is a hole in the proof.
func HotFunctions(pkgs []*Package, g *CallGraph) []string {
	h := newHotpathState(g)
	h.run(nil, pkgs)
	out := make([]string, 0, len(h.visited))
	for n := range h.visited {
		out = append(out, n.Name)
	}
	sort.Strings(out)
	return out
}
