package analysis

import (
	"strings"
	"testing"
)

// loadModulePkgs loads every package of the module through the shared
// loader, as the ripslint driver does for a ./... invocation.
func loadModulePkgs(t *testing.T) []*Package {
	t.Helper()
	dirs, err := PackageDirs(sharedLoader.ModuleRoot, "")
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, rel := range dirs {
		pkg, err := sharedLoader.Load(rel)
		if err != nil {
			t.Fatalf("load %s: %v", rel, err)
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", rel, terr)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

// TestModuleClean gates the tree on the full suite, whole-program
// analyzers included: `go test ./internal/analysis` fails on any
// unwaived finding anywhere in the module, exactly like the CI
// ripslint step.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; run without -short")
	}
	pkgs := loadModulePkgs(t)
	for _, f := range Unwaived(RunModule(pkgs, All(), AllModule())) {
		t.Errorf("unexpected finding: %s", f)
	}
}

// TestHotpathCoverage pins the hotpath proof's reach: every function
// TestSteadyStateZeroAlloc exercises dynamically must be covered by
// the //ripslint:hotpath roots, so the static proof subsumes the
// sampled one. If a rename or refactor drops one of these off the
// traversal, the proof has a hole and this test names it.
func TestHotpathCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; run without -short")
	}
	pkgs := loadModulePkgs(t)
	hot := HotFunctions(pkgs, BuildCallGraph(pkgs))
	hotSet := map[string]bool{}
	for _, name := range hot {
		hotSet[name] = true
	}
	// The steady-state hot set of the real-parallel backend (see
	// TestSteadyStateZeroAlloc in internal/par): the phase loop, both
	// leader callbacks, the parallel plan application, and the queue
	// operations under them.
	for _, fn := range []string{
		"par.(*ripsRun).workerMain",
		"par.(*ripsRun).phaseStep",
		"par.(*ripsRun).userPhase",
		"par.(*ripsRun).initiate",
		"par.(*ripsRun).detectWait",
		"par.(*ripsRun).execute",
		"par.(*ripsRun).beginPhase",
		"par.(*ripsRun).finishPhase",
		"par.(*ripsRun).updateDetector",
		"par.(*ripsRun).stageMoves",
		"par.(*ripsRun).partitionWaves",
		"par.(*ripsRun).waveRange",
		"par.(*ripsRun).applyTake",
		"par.(*ripsRun).applyPush",
		"par.(*ripsRun).takeMove",
		"par.(*ripsRun).pushMove",
		"par.(*epochBarrier).await",
		"par.(*ripsWorker).newID",
		"task.(*Queue).PushAll",
		"task.(*Queue).PushBack",
		"task.(*Queue).PopFront",
		"task.(*Queue).TakeBackInto",
		"task.(*Queue).Len",
		"task.(*Queue).maybeCompact",
		"invariant.Enabled",
		"invariant.Conserved",
		"invariant.BalancedWithinOne",
		"app.ExecuteCount",
	} {
		if !hotSet[fn] {
			t.Errorf("hotpath proof does not cover %s (exercised by TestSteadyStateZeroAlloc)", fn)
		}
	}
	// The emit closure is rooted separately (dynamic call from the
	// application); it appears as a function literal node.
	foundEmit := false
	for _, name := range hot {
		if strings.HasPrefix(name, "par.newRipsRun.func@") {
			foundEmit = true
		}
	}
	if !foundEmit {
		t.Errorf("hotpath proof does not cover the emit closure (hot set: %d functions)", len(hot))
	}
	// The simulated backend's map-criterion root.
	if !hotSet["ripsrt.nodeMain"] {
		t.Error("hotpath proof does not cover ripsrt.nodeMain")
	}
}
