package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix proves that atomic and plain access to the same memory are
// never mixed: a variable or struct field whose address is passed to a
// sync/atomic function ANYWHERE in the module must be accessed through
// sync/atomic EVERYWHERE. Mixing the two is a data race the race
// detector only catches if a test happens to interleave the accesses —
// and on weakly ordered machines a plain read of an atomically written
// word can observe torn or stale values.
//
// The property is inherently whole-program: the atomic access that
// sanctifies a field may live in a different package from the plain
// read that races with it, so no per-file check can see the conflict.
//
// The typed wrappers (atomic.Int64, atomic.Value, ...) are immune by
// construction and the better fix for any finding; this analyzer only
// polices the legacy address-passing style.
var AtomicMix = &ModuleAnalyzer{
	Name: "atomicmix",
	Doc:  "variables accessed through sync/atomic must never be read or written plainly",
	Run:  runAtomicMix,
}

// atomicUse records where a variable was first used atomically, for
// the diagnostic.
type atomicUse struct {
	pkg *Package
	pos token.Position
}

func runAtomicMix(mp *ModulePass) {
	// Pass 1: collect every variable whose address feeds a sync/atomic
	// call, and the exact identifiers appearing in those sanctioned
	// argument positions.
	atomicVars := map[*types.Var]atomicUse{}
	sanctioned := map[*ast.Ident]bool{}
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok || !isAtomicFuncCall(pkg.Info, call) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					var id *ast.Ident
					switch x := ast.Unparen(un.X).(type) {
					case *ast.Ident:
						id = x
					case *ast.SelectorExpr:
						id = x.Sel
					default:
						continue
					}
					v, ok := pkg.Info.Uses[id].(*types.Var)
					if !ok {
						continue
					}
					sanctioned[id] = true
					if _, seen := atomicVars[v]; !seen {
						atomicVars[v] = atomicUse{pkg: pkg, pos: pkg.Fset.Position(id.Pos())}
					}
				}
				return true
			})
		}
	}
	if len(atomicVars) == 0 {
		return
	}

	// Pass 2: every other use of those variables is a plain access.
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(node ast.Node) bool {
				id, ok := node.(*ast.Ident)
				if !ok || sanctioned[id] {
					return true
				}
				v, ok := pkg.Info.Uses[id].(*types.Var)
				if !ok {
					return true
				}
				use, isAtomic := atomicVars[v]
				if !isAtomic {
					return true
				}
				mp.Reportf(pkg, id.Pos(), "atomicmix",
					"%s is accessed with sync/atomic (e.g. at %s); this plain access races with the atomic ones — use sync/atomic here too, or an atomic.* typed wrapper",
					id.Name, shortPos(use.pos))
				return true
			})
		}
	}
}

// isAtomicFuncCall reports a call to a package-level sync/atomic
// function (LoadInt64, AddUint32, CompareAndSwapPointer, ...). Methods
// of the typed wrappers are not address-passing and never match.
func isAtomicFuncCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// shortPos renders a position compactly for inclusion in a message.
func shortPos(pos token.Position) string {
	return pos.String()
}
