// Package analysis implements ripslint, the project's static-analysis
// suite. The analyzers machine-check properties the Go compiler
// cannot see but RIPS correctness depends on.
//
// Per-package analyzers (one parsed, type-checked package at a time):
//
//   - determinism: the simulation must be a pure function of its seed,
//     so wall-clock reads, global math/rand state and map-iteration
//     order are forbidden where scheduling decisions are made.
//   - errcheck: silently dropped error returns in internal packages —
//     bare call statements, deferred/go calls, and error variables
//     that are assigned but never read.
//   - panicpolicy: library code must not reach for bare panic(...);
//     bugs go through invariant.Violated (typed, greppable, testable)
//     and conditions go through error returns.
//   - phaseprotocol: every scheduler implementation package must carry
//     a conservation/balance test referencing the exported balance
//     entry points of internal/sched.
//
// Whole-program analyzers (the full module at once, on a
// types-resolved call graph — see callgraph.go and module.go):
//
//   - hotpath: every function reachable from a //ripslint:hotpath root
//     annotation must be free of heap allocation, blocking operations
//     and map iteration (criteria selectable per root). This turns the
//     sampled TestSteadyStateZeroAlloc contract into a proof over
//     every path.
//   - atomicmix: a struct field accessed through sync/atomic anywhere
//     in the module must never be read or written plainly.
//   - ctxflow: context.Background()/TODO() are forbidden outside main
//     packages and tests, and a function that receives a Context must
//     call the Context-taking variant of a callee when one exists.
//   - deadwaiver: a //ripslint:allow[-file] directive that suppressed
//     nothing during the run is itself a finding, so the waiver set
//     can only shrink.
//
// Findings can be locally waived with a directive comment:
//
//	//ripslint:allow <check> <reason...>
//
// placed on the offending line or the line directly above it (for the
// package-scoped phasetest check, anywhere in the package). The check
// names are wallclock, sleep, rand, maporder, errdrop, panic,
// phasetest, hotpath, atomicmix, ctxflow and deadwaiver. For hotpath,
// a line waiver on a call site additionally prunes the reachability
// traversal: the callee (and everything below it) is excused from the
// hot-path contract, which is how sanctioned blocking points (the
// epoch barrier) and off-contract callees (application payloads,
// planners) are cut out of the proof — every such cut is visible in
// the source at the exact call site it excuses.
//
// A file whose whole purpose conflicts with a check can waive it once
// at the top instead of on every line:
//
//	//ripslint:allow-file <check> <reason...>
//
// File-scope waivers must state a reason (a reasonless allow-file is
// ignored) and are governed by policy:
//
//   - wallclock: sanctioned for internal/par — the real-parallel
//     backend exists to measure actual elapsed time, so every one of
//     its files that reads the clock carries an allow-file directive
//     explaining that scheduling decisions still depend only on task
//     counts — for benchmark drivers (cmd/ripsbench), for the
//     serving frontend (internal/serve, cmd/ripsd), which timestamps
//     job lifecycles and enforces network deadlines on real time while
//     leaving every in-run scheduling decision to the backends, and
//     for the admission layer (internal/tenant), whose arbiter stamps
//     enqueue times to report queue-wait ages: admission is real-time
//     multiplexing by nature, but which ticket dispatches next is
//     decided purely by the deficit ledger, never by the clock.
//     Simulated code gets no file waivers; an isolated legitimate read
//     uses the line form.
//   - sleep: file-scope waivers are refused inside the scheduling
//     core, even where a wallclock file waiver stands: injected delays
//     shape the real schedule, so each one is justified on its line,
//     and deliberate schedule perturbation lives behind the
//     ripsperturb build tag (internal/par/perturb.go), outside the
//     lint's default file set.
//   - maporder: file-scope waivers are refused inside the scheduling
//     core (internal/sim, internal/ripsrt, internal/sched,
//     internal/par): there every order-insensitive map loop must
//     justify itself individually with a line-scoped directive.
//     Outside the core the check does not fire at all, so the file
//     form is only meaningful — and honored — for code later pulled
//     into scope.
//   - hotpath: file-scope waivers are refused everywhere. The check
//     proves a reachability property; excusing a whole file would cut
//     unbounded, invisible holes in the proof. Use the line form on
//     the exact call site or operation being excused.
//   - rand, errdrop, panic, atomicmix, ctxflow: no blanket exemptions
//     are currently sanctioned; use the line form.
//
// The suite is stdlib-only: go/ast + go/parser + go/types, no external
// dependencies.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// A Finding is one diagnostic produced by an analyzer.
type Finding struct {
	// Analyzer is the emitting analyzer's name.
	Analyzer string
	// Check is the directive-addressable check name (e.g. "wallclock");
	// one analyzer may own several checks.
	Check string
	// Pos locates the offending syntax.
	Pos token.Position
	// Msg describes the problem.
	Msg string
	// Waived marks a finding suppressed by a //ripslint:allow[-file]
	// directive. Waived findings are retained (the -json report shows
	// them and the deadwaiver analyzer depends on the suppression
	// bookkeeping) but must not fail a run; see Unwaived.
	Waived bool
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s/%s] %s", f.Pos, f.Analyzer, f.Check, f.Msg)
}

// Unwaived returns the findings not suppressed by a directive — the
// ones that should gate a build.
func Unwaived(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if !f.Waived {
			out = append(out, f)
		}
	}
	return out
}

// An Analyzer checks one property of a loaded package.
type Analyzer struct {
	Name string
	Doc  string
	// Applies reports whether the analyzer runs on a package, given its
	// directory path relative to the module root ("" for the root
	// package, "internal/sim", "cmd/ripslint", ...).
	Applies func(rel string) bool
	// Run inspects the package and reports findings through the pass.
	Run func(p *Pass)
}

// All returns the per-package half of the ripslint suite. The
// whole-program half is AllModule.
func All() []*Analyzer {
	return []*Analyzer{Determinism, Errcheck, PanicPolicy, PhaseProtocol}
}

// Pass carries one loaded package through one analyzer.
type Pass struct {
	Pkg      *Package
	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding for check at pos. A directive suppressing
// it marks the finding waived rather than dropping it.
func (p *Pass) Reportf(pos token.Pos, check, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer.Name,
		Check:    check,
		Pos:      position,
		Msg:      fmt.Sprintf(format, args...),
		Waived:   p.Pkg.suppressed(check, position),
	})
}

// Run applies every applicable per-package analyzer to pkg and returns
// the findings (waived ones included) sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, a := range analyzers {
		if a.Applies != nil && !a.Applies(pkg.Rel) {
			continue
		}
		a.Run(&Pass{Pkg: pkg, analyzer: a, findings: &out})
	}
	sortFindings(out)
	return out
}

// sortFindings orders findings by file, line, then check name.
func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	})
}

// underDir reports whether rel is the directory dir or below it.
func underDir(rel, dir string) bool {
	return rel == dir || strings.HasPrefix(rel, dir+"/")
}
