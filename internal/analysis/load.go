package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	// Path is the import path; Rel the directory relative to the module
	// root ("" for the root package); Dir the absolute directory.
	Path, Rel, Dir string
	Fset           *token.FileSet
	// Files are the build-selected non-test files, fully type-checked.
	Files []*ast.File
	// TestFiles are the package's *_test.go files (both the package's
	// own and the external _test package), parsed but not type-checked;
	// the phaseprotocol analyzer and directive scanning use them.
	TestFiles []*ast.File
	// Types and Info hold the type-check results for Files.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-check problems; analyzers degrade
	// gracefully but the driver surfaces them.
	TypeErrors []error

	directives   []*directive
	hotpathRoots []hotpathRoot
}

// Loader parses and type-checks packages of one module. It is
// stdlib-only: module-internal imports resolve by path mapping under
// the module root, standard-library imports through go/importer's
// source importer. Loading is memoized; one Loader can serve many
// packages cheaply.
type Loader struct {
	ModuleRoot string
	ModulePath string
	Fset       *token.FileSet
	// BuildTags are extra build constraints for file selection (the
	// driver's -tags flag), so e.g. the ripsperturb perturbation hooks
	// can be linted even though the default file set excludes them.
	// Set before the first Load; loading memoizes per import path.
	BuildTags []string

	std   types.ImporterFrom
	pkgs  map[string]*Package
	stack map[string]bool
}

// NewLoader returns a loader for the module rooted at moduleRoot with
// the given module path.
func NewLoader(moduleRoot, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: moduleRoot,
		ModulePath: modulePath,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:       map[string]*Package{},
		stack:      map[string]bool{},
	}
}

// ModuleInfo reads go.mod starting at dir and walking upward,
// returning the module root directory and module path.
func ModuleInfo(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found")
		}
		dir = parent
	}
}

// Load loads the package in the directory rel (relative to the module
// root), deriving its import path from the module path.
func (l *Loader) Load(rel string) (*Package, error) {
	path := l.ModulePath
	if rel != "" && rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return l.LoadDir(filepath.Join(l.ModuleRoot, rel), path)
}

// LoadDir loads the package in dir under the given import path. Test
// harnesses use it to load testdata trees under synthetic paths that
// exercise the analyzers' scoping rules.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.stack[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.stack[path] = true
	defer delete(l.stack, path)

	bctx := build.Default
	bctx.BuildTags = append(append([]string{}, bctx.BuildTags...), l.BuildTags...)
	bp, err := bctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")

	pkg := &Package{Path: path, Rel: rel, Dir: dir, Fset: l.Fset}
	parse := func(names []string) ([]*ast.File, error) {
		var files []*ast.File
		sort.Strings(names)
		for _, name := range names {
			f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		return files, nil
	}
	if pkg.Files, err = parse(append(append([]string{}, bp.GoFiles...), bp.CgoFiles...)); err != nil {
		return nil, err
	}
	if pkg.TestFiles, err = parse(append(append([]string{}, bp.TestGoFiles...), bp.XTestGoFiles...)); err != nil {
		return nil, err
	}
	pkg.directives = scanDirectives(l.Fset, append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...))
	pkg.hotpathRoots = scanHotpathRoots(l.Fset, pkg.Files)

	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Types, _ = conf.Check(path, l.Fset, pkg.Files, pkg.Info)

	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer for the type-checker: module
// packages load recursively through this loader, everything else is
// standard library served from source.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		p, err := l.LoadDir(filepath.Join(l.ModuleRoot, rel), path)
		if err != nil {
			return nil, err
		}
		if p.Types == nil {
			return nil, fmt.Errorf("analysis: no type information for %s", path)
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// PackageDirs walks the module tree below root and returns the
// directories (relative to the module root) that contain buildable Go
// packages, skipping testdata, vendor, hidden directories and the
// module's own .git.
func PackageDirs(moduleRoot, below string) ([]string, error) {
	var out []string
	start := filepath.Join(moduleRoot, below)
	err := filepath.WalkDir(start, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != start && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				rel, err := filepath.Rel(moduleRoot, p)
				if err != nil {
					return err
				}
				if rel == "." {
					rel = ""
				}
				out = append(out, filepath.ToSlash(rel))
				break
			}
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}
