package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow proves the module's cancellation story has no gaps: once a
// context enters a call chain it must flow through it, and fresh root
// contexts may only be minted at the program's entry points.
//
// Two rules:
//
//  1. context.Background() and context.TODO() are forbidden outside
//     package main. A library function that mints its own root context
//     silently detaches everything below it from the caller's
//     cancellation and deadline — exactly the failure mode the ripsd
//     streaming API exists to avoid. (Tests are exempt: they are
//     entry points of their own.)
//
//  2. A function that receives a context.Context must not call a
//     module function f when a sibling fContext taking a context
//     exists: calling the context-blind variant drops the caller's
//     context on the floor where a threading variant was provided.
var CtxFlow = &ModuleAnalyzer{
	Name: "ctxflow",
	Doc:  "contexts must thread through call chains; no root contexts outside main",
	Run:  runCtxFlow,
}

func runCtxFlow(mp *ModulePass) {
	// contextVariants maps a module function to its context-taking
	// sibling (Foo -> FooContext) when one exists in the same package
	// with a context.Context first parameter.
	contextVariants := map[*types.Func]*types.Func{}
	byPkg := map[*types.Package]map[string]*types.Func{}
	for _, n := range mp.Graph.Nodes {
		if n.Fn == nil || n.Fn.Pkg() == nil {
			continue
		}
		m := byPkg[n.Fn.Pkg()]
		if m == nil {
			m = map[string]*types.Func{}
			byPkg[n.Fn.Pkg()] = m
		}
		m[n.Fn.Name()] = n.Fn
	}
	for _, fns := range byPkg {
		for name, fn := range fns {
			variant, ok := fns[name+"Context"]
			if !ok || !firstParamIsContext(variant) || firstParamIsContext(fn) {
				continue
			}
			contextVariants[fn] = variant
		}
	}

	for _, pkg := range mp.Pkgs {
		isMain := pkg.Types != nil && pkg.Types.Name() == "main"
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				hasCtx := fn != nil && receivesContext(fn)
				walkFuncBody(fd.Body, func(node ast.Node) {
					call, ok := node.(*ast.CallExpr)
					if !ok {
						return
					}
					callee := staticCallee(pkg.Info, call)
					if callee == nil {
						return
					}
					if !isMain && isRootContextFunc(callee) {
						mp.Reportf(pkg, call.Pos(), "ctxflow",
							"context.%s() mints a root context outside package main; accept a context.Context from the caller instead",
							callee.Name())
						return
					}
					if hasCtx {
						if variant, ok := contextVariants[callee]; ok {
							mp.Reportf(pkg, call.Pos(), "ctxflow",
								"%s receives a context but calls %s, dropping it; call %s with the caller's context",
								fn.Name(), callee.Name(), variant.Name())
						}
					}
				})
			}
		}
	}
}

// staticCallee resolves a call to the named function it invokes, or
// nil for builtins, conversions and dynamic calls.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isRootContextFunc matches context.Background and context.TODO.
func isRootContextFunc(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		(fn.Name() == "Background" || fn.Name() == "TODO")
}

// receivesContext reports whether any parameter of fn is a
// context.Context.
func receivesContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// firstParamIsContext reports whether fn's first parameter is a
// context.Context.
func firstParamIsContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type())
}

// isContextType matches the context.Context interface type.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" && obj.Pkg() != nil &&
		(obj.Pkg().Path() == "context" || strings.HasSuffix(obj.Pkg().Path(), "/context"))
}
