// Package difftest is the randomized differential cross-validation
// harness: it draws configurations from the full lattice of
// app × machine topology × RIPS transfer policy × worker count × seed,
// runs each configuration on every backend — the virtual-time
// simulator (ripsrt), the real-parallel RIPS backend and the
// work-stealing comparator (par) — and asserts that the application
// result, the task totals and the summed virtual work are bit-identical
// to the sequential ground truth everywhere.
//
// The paper's correctness claims are scheduling-invariance claims: the
// global phase protocol may place tasks anywhere, so the only
// acceptable observable difference between backends is timing. The
// relaxed-scheduler literature (Alistarh et al.; Gast et al.) shows
// such claims fail precisely under adversarial interleavings and
// latency variation, so the harness is built to be the adversary:
// configurations are sampled across every axis the protocol branches
// on, per-phase invariant checks (conservation, Theorem 1 balance) are
// force-enabled and promoted to hard failures with the offending
// configuration attached, and stress builds add the internal/par
// schedule-perturbation hook (-tags ripsperturb) so the race detector
// explores interleavings a quiet machine never produces.
//
// A failing configuration is shrunk (see Shrink) to a minimal one and
// printed in a form `ripsbench difftest -config "..."` re-runs
// verbatim.
package difftest

import (
	"context"
	"fmt"
	"io"
	"sync"

	"rips"
	"rips/internal/app"
	"rips/internal/apps/gromos"
	"rips/internal/apps/kernels"
	"rips/internal/apps/nqueens"
	"rips/internal/apps/puzzle"
	"rips/internal/cluster"
	"rips/internal/invariant"
	"rips/internal/par"
	"rips/internal/ripsrt"
	"rips/internal/sim"
)

// AppSpec is one entry of the lattice's app axis.
type AppSpec struct {
	// Name is the stable identifier used in Config.App.
	Name string
	// Heavy marks instances excluded from -smoke samples (they run in
	// the nightly full lattice): the larger IDA* configurations and
	// GROMOS cutoffs cost seconds per configuration.
	Heavy bool
	// New constructs the workload. Construction may be expensive
	// (GROMOS builds its molecule, IDA* discovers its bounds); the
	// Harness caches instances, which is safe because every app's
	// Execute treats construction state as immutable.
	New func() app.App
}

// Apps returns the lattice's app axis, cheapest first — the order
// doubles as the shrinker's preference when minimizing a failing
// configuration. The non-Heavy entries are the seven-app smoke set:
// both N-Queens boards, one IDA* configuration, one GROMOS cutoff and
// all three kernels, so every workload family in the paper's taxonomy
// is cross-validated on every CI run.
func Apps() []AppSpec {
	return []AppSpec{
		{Name: "mg", New: func() app.App { return kernels.NewMultigrid(64, 4, 4) }},
		{Name: "fft", New: func() app.App { return kernels.NewFFT(10, 16) }},
		{Name: "nq12", New: func() app.App { return nqueens.New(12, 4) }},
		{Name: "gromos8", New: func() app.App { return gromos.New(8) }},
		{Name: "gauss", New: func() app.App { return kernels.NewGauss(64, 4) }},
		{Name: "nq13", New: func() app.App { return nqueens.New(13, 4) }},
		{Name: "ida1", New: func() app.App { return puzzle.Config(1) }},
		{Name: "ida2", Heavy: true, New: func() app.App { return puzzle.Config(2) }},
		{Name: "gromos12", Heavy: true, New: func() app.App { return gromos.New(12) }},
		{Name: "gromos16", Heavy: true, New: func() app.App { return gromos.New(16) }},
		{Name: "ida3", Heavy: true, New: func() app.App { return puzzle.Config(3) }},
	}
}

// appSpec resolves a name against Apps.
func appSpec(name string) (AppSpec, error) {
	for _, s := range Apps() {
		if s.Name == name {
			return s, nil
		}
	}
	return AppSpec{}, fmt.Errorf("difftest: unknown app %q", name)
}

// Backends of one differential check, in report order.
const (
	BackendSimulate = "simulate"
	BackendParallel = "parallel"
	BackendSteal    = "steal"
	BackendHybrid   = "hybrid"
	BackendCluster  = "cluster"
)

// Failure describes one diverging (or crashing) backend run: which
// configuration, which backend, and a got/want account of the
// divergence. It is an error so harness callers can propagate it.
type Failure struct {
	Config  Config
	Backend string
	Reason  string
}

func (f *Failure) Error() string {
	return fmt.Sprintf("difftest: %s backend diverged on [%s]: %s", f.Backend, f.Config, f.Reason)
}

// truth is the sequential ground truth every backend must reproduce.
type truth struct {
	tasks  int64
	work   sim.Time
	result int64
}

// Harness caches app instances and their sequential profiles across
// configurations — the expensive constructions (GROMOS molecule
// building, IDA* bound discovery, large sequential profiles) are paid
// once per process, not once per lattice point.
type Harness struct {
	mu   sync.Mutex
	apps map[string]*appEntry

	// The cluster leg's 3-process in-memory cluster, started lazily on
	// the first cluster check and shared by every configuration — a
	// cluster is membership state, not per-job state, and reusing it is
	// exactly how a real ripsd fleet runs its jobs. Close releases it.
	clusterOnce sync.Once
	clusterErr  error
	nodes       []*cluster.Node
}

type appEntry struct {
	app   app.App
	truth truth
}

// NewHarness returns an empty harness.
func NewHarness() *Harness {
	return &Harness{apps: map[string]*appEntry{}}
}

// entry returns the cached app instance and ground truth for name,
// constructing and profiling it on first use.
func (h *Harness) entry(name string) (*appEntry, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if e, ok := h.apps[name]; ok {
		return e, nil
	}
	spec, err := appSpec(name)
	if err != nil {
		return nil, err
	}
	a := spec.New()
	p := app.Measure(a)
	e := &appEntry{app: a, truth: truth{tasks: int64(p.Tasks), work: p.Work, result: p.Result}}
	h.apps[name] = e
	return e, nil
}

// Check runs one configuration on every backend and returns the first
// failure, or nil when all backends reproduce the sequential truth.
// Gated invariant checks (phase conservation, Theorem 1 balance) are
// force-enabled for the duration: inside difftest an invariant
// violation is a hard failure carrying the configuration that
// triggered it, never a skipped assertion.
func (h *Harness) Check(cfg Config) *Failure {
	if err := cfg.validate(); err != nil {
		return &Failure{Config: cfg, Backend: "config", Reason: err.Error()}
	}
	e, err := h.entry(cfg.App)
	if err != nil {
		return &Failure{Config: cfg, Backend: "config", Reason: err.Error()}
	}
	restore := invariant.SetEnabled(true)
	defer restore()

	if f := h.checkSimulate(cfg, e); f != nil {
		return f
	}
	if f := h.checkParallel(cfg, e, par.RIPS, BackendParallel); f != nil {
		return f
	}
	if f := h.checkParallel(cfg, e, par.Steal, BackendSteal); f != nil {
		return f
	}
	if f := h.checkParallel(cfg, e, par.Hybrid, BackendHybrid); f != nil {
		return f
	}
	return h.checkCluster(cfg, e)
}

// guard converts an invariant violation escaping a backend run into a
// Failure attached to the offending configuration; unrelated panics
// keep propagating.
func guard(cfg Config, backend string, f func() *Failure) (out *Failure) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		v, ok := r.(*invariant.Violation)
		if !ok {
			panic(r) //ripslint:allow panic re-raising a foreign panic unchanged; only invariant violations are converted to failures
		}
		out = &Failure{Config: cfg, Backend: backend, Reason: v.Error()}
	}()
	return f()
}

func (h *Harness) checkSimulate(cfg Config, e *appEntry) *Failure {
	return guard(cfg, BackendSimulate, func() *Failure {
		rc := ripsrt.Config{
			Topo:   cfg.machine(),
			App:    e.app,
			Local:  cfg.Local,
			Global: cfg.Global,
			Seed:   cfg.Seed,
		}
		res, err := ripsrt.Run(rc)
		if err != nil {
			return &Failure{Config: cfg, Backend: BackendSimulate, Reason: err.Error()}
		}
		return compare(cfg, BackendSimulate, e.truth,
			res.AppResult, res.Generated, res.Executed, res.VirtualWork)
	})
}

func (h *Harness) checkParallel(cfg Config, e *appEntry, strat par.Strategy, backend string) *Failure {
	return guard(cfg, backend, func() *Failure {
		pc := par.Config{
			Topo:     cfg.machine(),
			App:      e.app,
			Strategy: strat,
			Local:    cfg.Local,
			Global:   cfg.Global,
			Seed:     cfg.Seed,
			// Fan every plan out, however small: the two-phase parallel
			// apply (and, via the default DetectInterval, the adaptive
			// detector) is exactly the machinery this harness exists to
			// stress-test against the sequential truth.
			ParallelApplyMin: -1,
		}
		if strat == par.Hybrid {
			pc.Domains = cfg.Domains
		}
		res, err := par.Run(pc)
		if err != nil {
			return &Failure{Config: cfg, Backend: backend, Reason: err.Error()}
		}
		return compare(cfg, backend, e.truth,
			res.AppResult, res.Generated, res.Executed, res.VirtualWork)
	})
}

// clusterWidth is the cluster leg's process count: a coordinator plus
// two distinct members, the smallest ring where the phase protocol's
// routing, batching and counter aggregation are all non-trivial.
const clusterWidth = 3

// clusterNodes lazily starts the harness's shared in-memory cluster:
// clusterWidth nodes on one MemTransport, joined into a ring, with a
// resolver serving the harness's cached app instances. The cluster is
// membership state, not per-job state — every configuration's cluster
// check submits to the same ring, exactly as jobs share a ripsd fleet.
func (h *Harness) clusterNodes() ([]*cluster.Node, error) {
	h.clusterOnce.Do(func() {
		resolver := func(name string, size int) (app.App, error) {
			e, err := h.entry(name)
			if err != nil {
				return nil, err
			}
			return e.app, nil
		}
		tr := cluster.NewMemTransport()
		for i := 0; i < clusterWidth; i++ {
			n, err := cluster.Start(cluster.Options{
				Addr:      fmt.Sprintf("mem://difftest%d", i),
				Transport: tr,
				Resolver:  resolver,
			})
			if err != nil {
				h.clusterErr = fmt.Errorf("difftest: start cluster node %d: %w", i, err)
				return
			}
			h.nodes = append(h.nodes, n)
			if i > 0 {
				if err := n.Join(h.nodes[0].Addr()); err != nil {
					h.clusterErr = fmt.Errorf("difftest: join cluster node %d: %w", i, err)
					return
				}
			}
		}
	})
	if h.clusterErr != nil {
		return nil, h.clusterErr
	}
	return h.nodes, nil
}

// Close releases the harness's cluster nodes. Safe on a harness whose
// cluster leg never ran, and idempotent.
func (h *Harness) Close() {
	h.clusterOnce.Do(func() {}) // bar a post-Close lazy start
	for _, n := range h.nodes {
		_ = n.Close()
	}
	h.nodes = nil
}

// checkCluster runs the configuration across the shared 3-process
// cluster. The cluster mirrors the configured topology family at the
// ring's width, so the machine shape axes (Rows, Cols, Workers) do not
// transfer — which is the point: the answer must not depend on them,
// and this leg holds the distributed protocol to the same sequential
// truth at a machine size the config never mentioned.
func (h *Harness) checkCluster(cfg Config, e *appEntry) *Failure {
	nodes, err := h.clusterNodes()
	if err != nil {
		return &Failure{Config: cfg, Backend: BackendCluster, Reason: err.Error()}
	}
	return guard(cfg, BackendCluster, func() *Failure {
		spec := rips.JobSpec{
			App: cfg.App,
			Config: rips.ConfigJSON{
				Backend:  BackendCluster,
				Topology: cfg.Topology,
				Eager:    cfg.Local == ripsrt.Eager,
				All:      cfg.Global == ripsrt.All,
				Seed:     cfg.Seed,
			},
		}
		// Any node accepts a submission and the ring routes it to the
		// job's coordinator; rotating the entry point by seed exercises
		// local coordination and peer forwarding alike.
		k := int64(len(nodes))
		entry := nodes[(cfg.Seed%k+k)%k]
		res, err := entry.Submit(context.Background(), spec)
		if err != nil {
			return &Failure{Config: cfg, Backend: BackendCluster, Reason: err.Error()}
		}
		return compare(cfg, BackendCluster, e.truth,
			res.AppResult, res.Generated, res.Executed, res.VirtualWork)
	})
}

// compare checks one backend's totals against the sequential truth,
// reporting every diverging quantity as a got/want pair.
func compare(cfg Config, backend string, want truth, result, generated, executed int64, work sim.Time) *Failure {
	var diffs []string
	if result != want.result {
		diffs = append(diffs, fmt.Sprintf("app result %d (want %d)", result, want.result))
	}
	if generated != want.tasks {
		diffs = append(diffs, fmt.Sprintf("generated %d tasks (want %d)", generated, want.tasks))
	}
	if executed != want.tasks {
		diffs = append(diffs, fmt.Sprintf("executed %d tasks (want %d)", executed, want.tasks))
	}
	if work != want.work {
		diffs = append(diffs, fmt.Sprintf("virtual work %v (want %v)", work, want.work))
	}
	if diffs == nil {
		return nil
	}
	return &Failure{Config: cfg, Backend: backend, Reason: joinDiffs(diffs)}
}

func joinDiffs(diffs []string) string {
	out := diffs[0]
	for _, d := range diffs[1:] {
		out += "; " + d
	}
	return out
}

// Report summarizes one lattice run.
type Report struct {
	// Configs is the number of configurations checked.
	Configs int
	// PerApp counts configurations per app name.
	PerApp map[string]int
	// Failures holds every failing configuration in check order (one
	// Failure per configuration: the first diverging backend wins).
	Failures []*Failure
}

// Run checks every configuration in order. When progress is non-nil,
// one line per configuration is streamed to it. Failures do not stop
// the run — the report collects all of them so a systematic breakage
// shows its whole shape, not its first symptom.
func (h *Harness) Run(cfgs []Config, progress io.Writer) *Report {
	rep := &Report{PerApp: map[string]int{}}
	for i, cfg := range cfgs {
		rep.Configs++
		rep.PerApp[cfg.App]++
		f := h.Check(cfg)
		if f != nil {
			rep.Failures = append(rep.Failures, f)
		}
		if progress != nil {
			status := "ok"
			if f != nil {
				status = "FAIL: " + f.Backend + ": " + f.Reason
			}
			fmt.Fprintf(progress, "[%3d/%d] %-60s %s\n", i+1, len(cfgs), cfg.String(), status)
		}
	}
	return rep
}
