package difftest

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"rips/internal/ripsrt"
	"rips/internal/topo"
)

// Config is one point of the differential-testing lattice: a workload,
// a machine, a RIPS transfer policy and a seed. Every backend runs the
// same Config; the backend axis is deliberately NOT part of it —
// difftest's whole point is that the backend must not matter.
type Config struct {
	// App names an AppSpec (see Apps).
	App string
	// Topology is "mesh", "tree" or "hypercube".
	Topology string
	// Rows, Cols give the mesh shape; unused for tree and hypercube.
	Rows, Cols int
	// Workers is the machine size (Rows*Cols for meshes, the node
	// count for trees, a power of two for hypercubes).
	Workers int
	// Local and Global select the RIPS transfer policy.
	Local  ripsrt.LocalPolicy
	Global ripsrt.GlobalPolicy
	// Domains is the hybrid backend's affinity-domain count (zero
	// auto-detects, like par.Config.Domains). It only shapes the hybrid
	// leg's phase-across/steal-within partition; the answer must not
	// depend on it, which is exactly what the lattice asserts.
	Domains int
	// Seed feeds the simulator's node RNGs and the steal backend's
	// victim selection. The answer must not depend on it.
	Seed int64
}

// String renders the config in the canonical k=v form Parse accepts:
//
//	app=nq12 topo=mesh:2x4 policy=any-lazy seed=3
func (c Config) String() string {
	shape := ""
	switch c.Topology {
	case "mesh":
		shape = fmt.Sprintf("%dx%d", c.Rows, c.Cols)
	default:
		shape = strconv.Itoa(c.Workers)
	}
	s := fmt.Sprintf("app=%s topo=%s:%s policy=%s-%s seed=%d",
		c.App, c.Topology, shape, c.Global, c.Local, c.Seed)
	if c.Domains > 0 {
		s += fmt.Sprintf(" domains=%d", c.Domains)
	}
	return s
}

// Parse decodes the String form back into a Config, so a failure
// printed by a test or CI log can be re-run verbatim with
// `ripsbench difftest -config "..."`.
func Parse(s string) (Config, error) {
	var c Config
	for _, field := range strings.Fields(s) {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return c, fmt.Errorf("difftest: field %q is not key=value", field)
		}
		switch k {
		case "app":
			c.App = v
		case "topo":
			kind, shape, ok := strings.Cut(v, ":")
			if !ok {
				return c, fmt.Errorf("difftest: topo %q is not kind:shape", v)
			}
			c.Topology = kind
			if kind == "mesh" {
				r, cl, ok := strings.Cut(shape, "x")
				if !ok {
					return c, fmt.Errorf("difftest: mesh shape %q is not RxC", shape)
				}
				var err error
				if c.Rows, err = strconv.Atoi(r); err != nil {
					return c, fmt.Errorf("difftest: mesh rows %q: %v", r, err)
				}
				if c.Cols, err = strconv.Atoi(cl); err != nil {
					return c, fmt.Errorf("difftest: mesh cols %q: %v", cl, err)
				}
				c.Workers = c.Rows * c.Cols
			} else {
				n, err := strconv.Atoi(shape)
				if err != nil {
					return c, fmt.Errorf("difftest: %s size %q: %v", kind, shape, err)
				}
				c.Workers = n
			}
		case "policy":
			g, l, ok := strings.Cut(v, "-")
			if !ok {
				return c, fmt.Errorf("difftest: policy %q is not global-local", v)
			}
			switch g {
			case "any":
				c.Global = ripsrt.Any
			case "all":
				c.Global = ripsrt.All
			default:
				return c, fmt.Errorf("difftest: unknown global policy %q", g)
			}
			switch l {
			case "lazy":
				c.Local = ripsrt.Lazy
			case "eager":
				c.Local = ripsrt.Eager
			default:
				return c, fmt.Errorf("difftest: unknown local policy %q", l)
			}
		case "domains":
			n, err := strconv.Atoi(v)
			if err != nil {
				return c, fmt.Errorf("difftest: domains %q: %v", v, err)
			}
			c.Domains = n
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return c, fmt.Errorf("difftest: seed %q: %v", v, err)
			}
			c.Seed = n
		default:
			return c, fmt.Errorf("difftest: unknown key %q", k)
		}
	}
	if c.App == "" {
		return c, fmt.Errorf("difftest: config %q names no app", s)
	}
	if c.Topology == "" {
		c.Topology, c.Rows, c.Cols, c.Workers = "mesh", 2, 2, 4
	}
	return c, c.validate()
}

func (c Config) validate() error {
	if _, err := appSpec(c.App); err != nil {
		return err
	}
	switch c.Topology {
	case "mesh":
		if c.Rows < 1 || c.Cols < 1 {
			return fmt.Errorf("difftest: bad mesh shape %dx%d", c.Rows, c.Cols)
		}
	case "tree":
		if c.Workers < 1 {
			return fmt.Errorf("difftest: bad tree size %d", c.Workers)
		}
	case "hypercube":
		if c.Workers < 1 || c.Workers&(c.Workers-1) != 0 {
			return fmt.Errorf("difftest: hypercube size %d is not a power of two", c.Workers)
		}
	default:
		return fmt.Errorf("difftest: unknown topology %q", c.Topology)
	}
	if c.Domains < 0 {
		return fmt.Errorf("difftest: negative domains %d", c.Domains)
	}
	return nil
}

// machine builds the config's topology.
func (c Config) machine() topo.Topology {
	switch c.Topology {
	case "tree":
		return topo.NewTree(c.Workers)
	case "hypercube":
		d := 0
		for 1<<d < c.Workers {
			d++
		}
		return topo.NewHypercube(d)
	default:
		return topo.NewMesh(c.Rows, c.Cols)
	}
}

// The machine axis of the lattice. Sizes stay small (1..9 workers):
// the differential properties are size-independent, small machines
// keep 200-config samples inside a CI budget, and every protocol edge
// case the backends have (single worker, odd meshes, non-full trees,
// power-of-two cubes) is in range.
var (
	meshShapes = [][2]int{{1, 1}, {1, 2}, {2, 2}, {2, 3}, {2, 4}, {3, 3}}
	treeSizes  = []int{2, 3, 5, 7, 8}
	cubeSizes  = []int{2, 4, 8}
	seeds      = []int64{0, 1, 2, 3, 5, 8, 13, 21}
)

// Sample draws n lattice configs. The app axis is stratified — apps
// rotate round-robin so every app appears ⌈n/len(apps)⌉ or ⌊n/len(apps)⌋
// times — and the machine, policy and seed axes are drawn uniformly
// from the given rng, so one (n, seed) pair names a reproducible
// sample. smoke restricts the app pool to the cheap variants (every
// family still covered); the full pool adds the heavy instances
// (IDA* configs 2-3, GROMOS 12 A and 16 A).
func Sample(n int, seed int64, smoke bool) []Config {
	rng := rand.New(rand.NewSource(seed))
	var pool []AppSpec
	for _, s := range Apps() {
		if smoke && s.Heavy {
			continue
		}
		pool = append(pool, s)
	}
	out := make([]Config, 0, n)
	for i := 0; i < n; i++ {
		c := Config{App: pool[i%len(pool)].Name, Seed: seeds[rng.Intn(len(seeds))]}
		switch rng.Intn(3) {
		case 0:
			sh := meshShapes[rng.Intn(len(meshShapes))]
			c.Topology, c.Rows, c.Cols, c.Workers = "mesh", sh[0], sh[1], sh[0]*sh[1]
		case 1:
			c.Topology, c.Workers = "tree", treeSizes[rng.Intn(len(treeSizes))]
		default:
			c.Topology, c.Workers = "hypercube", cubeSizes[rng.Intn(len(cubeSizes))]
		}
		if rng.Intn(2) == 1 {
			c.Local = ripsrt.Eager
		}
		if rng.Intn(2) == 1 {
			c.Global = ripsrt.All
		}
		// The domain axis only shapes the hybrid leg: zero auto-detects,
		// the positive counts cover single-domain degeneration, even and
		// non-divisible partitions (resolution clamps to the workers).
		c.Domains = rng.Intn(4)
		out = append(out, c)
	}
	return out
}
