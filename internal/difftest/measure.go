package difftest

import (
	"fmt"

	"rips/internal/par"
	"rips/internal/ripsrt"
)

// Measurement bundles the raw per-backend results of one lattice
// point, for the perf-regression harness (internal/perfreg). The
// simulator result is a pure function of the configuration — virtual
// time, overhead and the task/migration counters reproduce exactly on
// any machine — while the two par results carry real wall-clock and
// schedule-dependent counters (waves, steals) that vary run to run and
// are therefore only advisory to a committed baseline.
type Measurement struct {
	Config Config
	Sim    ripsrt.Result
	RIPS   par.Result
	Steal  par.Result
	Hybrid par.Result
}

// Measure runs one configuration on the virtual-time simulator and on
// both real-parallel strategies and returns the raw results. Unlike
// Check it uses the production scheduling defaults (no forced parallel
// apply, invariants at their build default) so the numbers describe
// what users run, not the stress configuration — but it still refuses
// to report a measurement whose answers diverge from the sequential
// truth: a performance baseline recorded off a wrong run would gate
// future changes on garbage.
func (h *Harness) Measure(cfg Config) (Measurement, error) {
	if err := cfg.validate(); err != nil {
		return Measurement{}, err
	}
	e, err := h.entry(cfg.App)
	if err != nil {
		return Measurement{}, err
	}
	m := Measurement{Config: cfg}

	m.Sim, err = ripsrt.Run(ripsrt.Config{
		Topo:   cfg.machine(),
		App:    e.app,
		Local:  cfg.Local,
		Global: cfg.Global,
		Seed:   cfg.Seed,
	})
	if err != nil {
		return Measurement{}, fmt.Errorf("difftest: measuring [%s] on %s: %w", cfg, BackendSimulate, err)
	}
	if f := compare(cfg, BackendSimulate, e.truth,
		m.Sim.AppResult, m.Sim.Generated, m.Sim.Executed, m.Sim.VirtualWork); f != nil {
		return Measurement{}, f
	}

	for _, b := range []struct {
		name    string
		strat   par.Strategy
		domains int
		into    *par.Result
	}{
		{BackendParallel, par.RIPS, 0, &m.RIPS},
		{BackendSteal, par.Steal, 0, &m.Steal},
		{BackendHybrid, par.Hybrid, cfg.Domains, &m.Hybrid},
	} {
		res, err := par.Run(par.Config{
			Topo:     cfg.machine(),
			App:      e.app,
			Strategy: b.strat,
			Domains:  b.domains,
			Local:    cfg.Local,
			Global:   cfg.Global,
			Seed:     cfg.Seed,
		})
		if err != nil {
			return Measurement{}, fmt.Errorf("difftest: measuring [%s] on %s: %w", cfg, b.name, err)
		}
		if f := compare(cfg, b.name, e.truth,
			res.AppResult, res.Generated, res.Executed, res.VirtualWork); f != nil {
			return Measurement{}, f
		}
		*b.into = res
	}
	return m, nil
}
