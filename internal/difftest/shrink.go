package difftest

import "rips/internal/ripsrt"

// Shrink greedily minimizes a failing configuration: it walks the
// lattice axes in a fixed order — seed, global policy, local policy,
// topology, machine size, app — and commits every single-axis
// simplification under which fails still returns non-nil. The result
// is 1-minimal per axis (not globally minimal: greedy shrinking never
// backtracks), which in practice pins a protocol bug to the smallest
// machine and cheapest workload that still shows it.
//
// fails must be a pure predicate of the configuration. Check qualifies
// for deterministic divergences; for schedule-dependent failures the
// caller should wrap Check in a retry loop so a flaky repro is not
// shrunk past the point where it stops reproducing.
func Shrink(cfg Config, fails func(Config) bool) Config {
	try := func(cand Config) bool {
		if cand == cfg || cand.validate() != nil || !fails(cand) {
			return false
		}
		cfg = cand
		return true
	}

	// Seed first: a seed-independent repro removes the whole
	// pseudo-random axis from the investigation.
	cand := cfg
	cand.Seed = 0
	try(cand)

	// Policy axes toward the simplest protocol: ANY needs no
	// all-drained consensus, Lazy needs no staging buffer.
	cand = cfg
	cand.Global = ripsrt.Any
	try(cand)
	cand = cfg
	cand.Local = ripsrt.Lazy
	try(cand)

	// Domains toward one: the single-domain hybrid degenerates to pure
	// intra-domain stealing (no cross-domain phases), and pinning the
	// count also removes the machine-dependent auto-detection of zero.
	if cfg.Domains != 1 {
		cand = cfg
		cand.Domains = 1
		try(cand)
	}

	// Topology toward the mesh (the paper's base machine), then the
	// machine toward fewer workers. Candidate shapes are tried
	// smallest-first and the first failing one wins, so the committed
	// machine is the smallest on its axis.
	if cfg.Topology != "mesh" {
		for _, sh := range meshShapes {
			cand = cfg
			cand.Topology, cand.Rows, cand.Cols, cand.Workers = "mesh", sh[0], sh[1], sh[0]*sh[1]
			if try(cand) {
				break
			}
		}
	}
	switch cfg.Topology {
	case "mesh":
		for _, sh := range meshShapes {
			if sh[0]*sh[1] >= cfg.Workers {
				break
			}
			cand = cfg
			cand.Rows, cand.Cols, cand.Workers = sh[0], sh[1], sh[0]*sh[1]
			if try(cand) {
				break
			}
		}
	case "tree":
		for _, n := range treeSizes {
			if n >= cfg.Workers {
				break
			}
			cand = cfg
			cand.Workers = n
			if try(cand) {
				break
			}
		}
	case "hypercube":
		for _, n := range cubeSizes {
			if n >= cfg.Workers {
				break
			}
			cand = cfg
			cand.Workers = n
			if try(cand) {
				break
			}
		}
	}

	// App last, toward the front of Apps() (cheapest first). A bug that
	// reproduces on the multigrid kernel instead of a 13-queens tree
	// turns a minutes-long repro into milliseconds.
	for _, s := range Apps() {
		if s.Name == cfg.App {
			break
		}
		cand = cfg
		cand.App = s.Name
		if try(cand) {
			break
		}
	}

	return cfg
}
