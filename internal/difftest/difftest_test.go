package difftest

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"rips/internal/app"
	"rips/internal/ripsrt"
	"rips/internal/sim"
)

// TestLatticeSmoke is the in-tree slice of the differential lattice:
// a stratified sample over the cheap app pool, every backend per
// configuration. CI's `ripsbench difftest -smoke` run covers the
// 200-config acceptance gate; this test keeps `go test ./...`
// self-contained. On failure it shrinks the first failing
// configuration and prints the verbatim repro command.
func TestLatticeSmoke(t *testing.T) {
	n := 35
	if testing.Short() {
		n = 14
	}
	h := NewHarness()
	defer h.Close()
	rep := h.Run(Sample(n, 1, true), nil)
	if rep.Configs != n {
		t.Fatalf("checked %d configs, want %d", rep.Configs, n)
	}
	if len(rep.Failures) == 0 {
		return
	}
	for _, f := range rep.Failures {
		t.Errorf("%v", f)
	}
	min := Shrink(rep.Failures[0].Config, func(c Config) bool { return h.Check(c) != nil })
	t.Errorf("minimal repro: ripsbench difftest -config %q", min.String())
}

// TestCheckRejectsBadConfig pins that malformed configurations surface
// as config failures, not panics deep in a backend.
func TestCheckRejectsBadConfig(t *testing.T) {
	h := NewHarness()
	defer h.Close()
	for _, cfg := range []Config{
		{App: "nope", Topology: "mesh", Rows: 1, Cols: 1, Workers: 1},
		{App: "mg", Topology: "hypercube", Workers: 3},
		{App: "mg", Topology: "ring", Workers: 4},
	} {
		f := h.Check(cfg)
		if f == nil || f.Backend != "config" {
			t.Errorf("Check(%+v) = %v, want config failure", cfg, f)
		}
	}
}

// TestShrink drives the shrinker with a synthetic predicate and checks
// every axis is minimized: the committed config must keep only what
// the predicate needs and drop every incidental coordinate.
func TestShrink(t *testing.T) {
	start := Config{
		App: "nq13", Topology: "hypercube", Workers: 8,
		Local: ripsrt.Eager, Global: ripsrt.All, Domains: 3, Seed: 21,
	}
	// The "bug" needs the ALL policy and at least 2 workers; nothing
	// else matters.
	fails := func(c Config) bool { return c.Global == ripsrt.All && c.Workers >= 2 }
	if !fails(start) {
		t.Fatal("synthetic predicate rejects the starting config")
	}
	min := Shrink(start, fails)
	if !fails(min) {
		t.Fatalf("Shrink returned a passing config %v", min)
	}
	want := Config{App: "mg", Topology: "mesh", Rows: 1, Cols: 2, Workers: 2, Global: ripsrt.All, Domains: 1}
	if min != want {
		t.Fatalf("Shrink(%v) = %v, want %v", start, min, want)
	}
}

// TestShrinkKeepsFailingStart pins that an unshrinkable failure comes
// back unchanged rather than sliding to a passing config.
func TestShrinkKeepsFailingStart(t *testing.T) {
	start := Config{App: "gauss", Topology: "tree", Workers: 7, Seed: 13}
	fails := func(c Config) bool { return c == start }
	if min := Shrink(start, fails); min != start {
		t.Fatalf("Shrink moved an unshrinkable config: %v -> %v", start, min)
	}
}

// TestConfigStringParseRoundTrip pins that every sampled config prints
// to a string Parse maps back to the identical struct — the property
// the repro workflow (test log -> ripsbench -config) depends on.
func TestConfigStringParseRoundTrip(t *testing.T) {
	for _, smoke := range []bool{true, false} {
		for _, cfg := range Sample(100, 7, smoke) {
			got, err := Parse(cfg.String())
			if err != nil {
				t.Fatalf("Parse(%q): %v", cfg.String(), err)
			}
			if got != cfg {
				t.Fatalf("roundtrip %q: got %+v, want %+v", cfg.String(), got, cfg)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"",
		"topo=mesh:2x2",
		"app=unknown",
		"app=mg topo=mesh:2",
		"app=mg topo=hypercube:3",
		"app=mg policy=sometimes-lazy",
		"app=mg policy=any",
		"app=mg seed=later",
		"app=mg domains=x",
		"app=mg domains=-1",
		"app=mg color=blue",
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

// TestParseDefaults pins the documented default machine.
func TestParseDefaults(t *testing.T) {
	got, err := Parse("app=fft")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{App: "fft", Topology: "mesh", Rows: 2, Cols: 2, Workers: 4}
	if got != want {
		t.Fatalf("Parse defaults = %+v, want %+v", got, want)
	}
}

// TestSampleCoverage pins the stratification contract: a sample of
// n >= pool size covers every app in the pool, smoke samples exclude
// heavy apps, and distinct master seeds draw distinct samples.
func TestSampleCoverage(t *testing.T) {
	heavy := map[string]bool{}
	total := 0
	for _, s := range Apps() {
		heavy[s.Name] = s.Heavy
		total++
	}

	smoke := Sample(40, 3, true)
	seen := map[string]int{}
	topos := map[string]bool{}
	for _, c := range smoke {
		if err := c.validate(); err != nil {
			t.Fatalf("sampled invalid config %+v: %v", c, err)
		}
		if heavy[c.App] {
			t.Fatalf("smoke sample drew heavy app %q", c.App)
		}
		seen[c.App]++
		topos[c.Topology] = true
	}
	for name, isHeavy := range heavy {
		if !isHeavy && seen[name] == 0 {
			t.Errorf("smoke sample of 40 missed app %q", name)
		}
	}
	for _, k := range []string{"mesh", "tree", "hypercube"} {
		if !topos[k] {
			t.Errorf("sample of 40 missed topology %q", k)
		}
	}

	full := Sample(2*total, 3, false)
	seen = map[string]int{}
	for _, c := range full {
		seen[c.App]++
	}
	for name := range heavy {
		if seen[name] != 2 {
			t.Errorf("full sample of %d drew app %q %d times, want 2", 2*total, name, seen[name])
		}
	}

	a, b := Sample(10, 1, true), Sample(10, 2, true)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("samples with different master seeds are identical")
	}
}

// TestConcurrentExecute is the real-execution-safety audit as a test:
// every app in the lattice has its whole task tree executed by
// concurrently racing goroutines sharing one instance, and the summed
// contributions must equal the sequential profile. Run under -race
// this catches any Execute that mutates construction state — the
// property that admits an app into the parallel backends at all.
func TestConcurrentExecute(t *testing.T) {
	for _, spec := range Apps() {
		if spec.Heavy {
			continue
		}
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			a := spec.New()
			p := app.Measure(a)
			tasks, work, result := executeRacing(a, 4)
			if tasks != int64(p.Tasks) || work != p.Work || result != p.Result {
				t.Fatalf("concurrent execution: tasks=%d work=%v result=%d, want %d %v %d",
					tasks, work, result, p.Tasks, p.Work, p.Result)
			}
		})
	}
}

// executeRacing runs a's task tree round by round on nw goroutines
// pulling from one shared stack — maximal contention, no backend
// machinery — and returns the summed totals.
func executeRacing(a app.App, nw int) (tasks int64, work sim.Time, result int64) {
	var (
		mu      sync.Mutex
		queue   []app.Spawn
		pending atomic.Int64
		nTasks  atomic.Int64
		nWork   atomic.Int64
		nResult atomic.Int64
	)
	pop := func() (app.Spawn, bool) {
		mu.Lock()
		defer mu.Unlock()
		if len(queue) == 0 {
			return app.Spawn{}, false
		}
		sp := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		return sp, true
	}
	for round := 0; round < a.Rounds(); round++ {
		roots := a.Roots(round)
		queue = append(queue, roots...)
		pending.Store(int64(len(roots)))
		var wg sync.WaitGroup
		for i := 0; i < nw; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for pending.Load() > 0 {
					sp, ok := pop()
					if !ok {
						runtime.Gosched()
						continue
					}
					var children []app.Spawn
					vw, res := app.ExecuteCount(a, sp.Data, func(c app.Spawn) {
						children = append(children, c)
					})
					nTasks.Add(1)
					nWork.Add(int64(vw))
					nResult.Add(res)
					if len(children) > 0 {
						pending.Add(int64(len(children)))
						mu.Lock()
						queue = append(queue, children...)
						mu.Unlock()
					}
					pending.Add(-1)
				}
			}()
		}
		wg.Wait()
	}
	return nTasks.Load(), sim.Time(nWork.Load()), nResult.Load()
}
