package par

import (
	"runtime"
	"sync"
	"testing"

	"rips/internal/task"
)

// refDeque is the trivially correct model the Chase-Lev deque is
// checked against: a slice with owner operations at the back and
// steals at the front.
type refDeque struct{ ids []uint64 }

func (r *refDeque) push(id uint64) { r.ids = append(r.ids, id) }

func (r *refDeque) pop() (uint64, bool) {
	if len(r.ids) == 0 {
		return 0, false
	}
	id := r.ids[len(r.ids)-1]
	r.ids = r.ids[:len(r.ids)-1]
	return id, true
}

func (r *refDeque) steal() (uint64, bool) {
	if len(r.ids) == 0 {
		return 0, false
	}
	id := r.ids[0]
	r.ids = r.ids[1:]
	return id, true
}

// dequeOps decodes one fuzz input into an operation stream: each byte
// below 170 pushes 1-7 tasks, bytes in [170,213) pop, the rest steal.
// The same stream drives both fuzz phases so every corpus entry
// exercises the sequential model check and the concurrent
// exactly-once check.
const (
	opPopByte   = 170
	opStealByte = 213
)

// FuzzDeque cross-checks the lock-free work-stealing deque against
// the reference model, in two phases per input.
//
// Phase A replays the operation stream sequentially — push and pop as
// the owner, steal as a lone thief — and requires the exact IDs the
// model produces: LIFO at the bottom, FIFO at the top, empty answers
// included.
//
// Phase B replays the same stream with real concurrency: the owner
// runs its push/pop ops on one goroutine while 1-4 thieves (decoded
// from the first byte) steal continuously. Linearizability of the
// top-CAS protocol shows up as two checkable facts: every pushed task
// is claimed by exactly one party (no loss, no duplication — the
// property the steal backend's pending counter relies on), and each
// thief's claimed IDs are strictly increasing (steals drain the top
// monotonically). Run with -race for the memory-order half of the
// argument.
func FuzzDeque(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 1, 2, 200, 250, 5})
	// Push bursts, then a drain race: many steals against pops.
	f.Add([]byte{0, 100, 150, 169, 220, 230, 240, 250, 180, 190, 200, 210})
	// Grow the ring past minDequeCap (each low byte pushes up to 7).
	f.Add([]byte{2, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 255, 255})
	// Alternating push/pop around empty, the pop-vs-steal CAS window.
	f.Add([]byte{1, 7, 170, 170, 7, 213, 213, 7, 170, 213})

	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzDequeSequential(t, data)
		fuzzDequeConcurrent(t, data)
	})
}

func fuzzDequeSequential(t *testing.T, data []byte) {
	d := newDeque()
	ref := &refDeque{}
	var next uint64
	for i, b := range data {
		switch {
		case b < opPopByte:
			for k := byte(0); k <= b%7; k++ {
				next++
				d.push(&task.Task{ID: next})
				ref.push(next)
			}
		case b < opStealByte:
			got := d.pop()
			want, ok := ref.pop()
			if (got != nil) != ok || (got != nil && got.ID != want) {
				t.Fatalf("op %d: pop = %v, model says (%d, %v)", i, got, want, ok)
			}
		default:
			got, retry := d.steal()
			if retry {
				t.Fatalf("op %d: sequential steal asked to retry", i)
			}
			want, ok := ref.steal()
			if (got != nil) != ok || (got != nil && got.ID != want) {
				t.Fatalf("op %d: steal = %v, model says (%d, %v)", i, got, want, ok)
			}
		}
	}
	if n, want := d.size(), int64(len(ref.ids)); n != want {
		t.Fatalf("final size %d, model has %d", n, want)
	}
}

func fuzzDequeConcurrent(t *testing.T, data []byte) {
	thieves := 1
	if len(data) > 0 {
		thieves = int(data[0])%4 + 1
		data = data[1:]
	}
	d := newDeque()
	var (
		pushed  uint64 // total tasks the owner will have pushed
		claimed sync.Map
		done    = make(chan struct{})
	)
	claim := func(t_ *task.Task, by int) bool {
		_, dup := claimed.LoadOrStore(t_.ID, by)
		return !dup
	}

	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var last uint64
			for {
				tk, retry := d.steal()
				if tk != nil {
					if tk.ID <= last {
						t.Errorf("thief %d stole ID %d after %d (top not monotone)", id, tk.ID, last)
						return
					}
					last = tk.ID
					if !claim(tk, id) {
						t.Errorf("thief %d stole ID %d twice", id, tk.ID)
						return
					}
					continue
				}
				if retry {
					continue
				}
				select {
				case <-done:
					// Owner finished; one clean sweep may still find
					// stragglers, then the deque is genuinely empty.
					if tk, _ := d.steal(); tk == nil {
						return
					} else if !claim(tk, id) {
						t.Errorf("thief %d stole ID %d twice", id, tk.ID)
						return
					}
				default:
					runtime.Gosched()
				}
			}
		}(i)
	}

	var next uint64
	for _, b := range data {
		switch {
		case b < opPopByte:
			for k := byte(0); k <= b%7; k++ {
				next++
				d.push(&task.Task{ID: next})
			}
		case b < opStealByte:
			if tk := d.pop(); tk != nil && !claim(tk, -1) {
				t.Errorf("owner popped ID %d already claimed", tk.ID)
			}
		default:
			runtime.Gosched()
		}
	}
	pushed = next
	// Owner drains what the thieves have not taken by the time it
	// finishes — every task must surface exactly once somewhere.
	for {
		tk := d.pop()
		if tk == nil {
			break
		}
		if !claim(tk, -1) {
			t.Errorf("owner drained ID %d already claimed", tk.ID)
		}
	}
	close(done)
	wg.Wait()

	var total uint64
	claimed.Range(func(k, _ any) bool {
		total++
		id := k.(uint64)
		if id < 1 || id > pushed {
			t.Errorf("claimed ID %d was never pushed (pushed 1..%d)", id, pushed)
		}
		return true
	})
	if total != pushed {
		t.Errorf("claimed %d distinct tasks, pushed %d (lost %d)", total, pushed, pushed-total)
	}
}
