package par

import "sync"

// epochBarrier is a reusable phase-indexed barrier for a fixed party
// count. Each await call belongs to one epoch; the last worker to
// arrive becomes that epoch's leader and runs the stop-the-world
// callback while every other worker is parked inside the barrier —
// which is exactly the system-phase window of the paper's protocol.
// The mutex hand-off gives the leader a happens-before edge over every
// worker's pre-barrier writes (their deques are safely readable) and
// publishes the leader's redistribution to every worker on release.
//
// The epoch index doubles as the user-phase index: worker code reads
// it once per await and tags its ANY-policy transfer requests with it,
// mirroring the phase-indexed init broadcasts of the simulator runtime
// (redundant initiators of the same epoch cancel).
type epochBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	epoch   int64
}

func newEpochBarrier(parties int) *epochBarrier {
	b := &epochBarrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all parties have arrived. The last arrival runs
// leader (with the world stopped), then releases the epoch. It returns
// the index of the epoch that was completed.
func (b *epochBarrier) await(leader func()) int64 {
	b.mu.Lock() //ripslint:allow hotpath the epoch barrier IS the sanctioned blocking point of the phase protocol
	e := b.epoch
	b.arrived++
	if b.arrived == b.parties {
		if leader != nil {
			leader() //ripslint:allow hotpath the two leader callbacks (beginPhase, finishPhase) are hot-path roots of their own
		}
		b.arrived = 0
		b.epoch++
		b.cond.Broadcast()
		b.mu.Unlock()
		return e
	}
	for b.epoch == e {
		b.cond.Wait() //ripslint:allow hotpath parking until the epoch completes is the barrier's purpose
	}
	b.mu.Unlock()
	return e
}
