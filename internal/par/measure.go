package par

import (
	"sync"
	"time"

	"rips/internal/task"
	"rips/internal/topo"
)

// MeasureSystemPhase measures the mean stop-the-world cost of one RIPS
// system phase under a controlled, maximally skewed load: even workers
// hold 2*tasksPerWorker synthetic tasks, odd workers none, so every
// phase plans and applies a heavy migration. It drives the real phase
// protocol (epoch barrier, planner, waved or serial apply) for the
// given number of phases and returns the mean phase time plus the
// number of parallel-apply waves fanned out (0 when serial).
//
// This is the measurement behind `ripsbench parscale -json`'s
// system_phase comparison and mirrors BenchmarkSystemPhase: unlike a
// full app run it cannot under-measure on few cores, where a fast
// worker drains a small workload before any unbalanced phase fires.
func MeasureSystemPhase(workers, tasksPerWorker, phases int, serial bool) (time.Duration, int64) {
	cfg := Config{Topo: topo.SquarishMesh(workers), SerialApply: serial}
	if !serial {
		cfg.ParallelApplyMin = -1
	}
	r := newRipsRun(&cfg)
	fill := func() {
		for _, w := range r.workers {
			w.rte.Clear()
			if w.id%2 == 0 {
				for k := 0; k < 2*tasksPerWorker; k++ {
					w.rte.PushBack(task.Task{Origin: w.id})
				}
			}
		}
	}
	if phases < 1 {
		phases = 1
	}
	for p := 0; p < phases; p++ {
		fill()
		var wg sync.WaitGroup
		for _, w := range r.workers {
			wg.Add(1)
			go func(w *ripsWorker) {
				defer wg.Done()
				var point int64
				r.phaseStep(w, &point)
			}(w)
		}
		wg.Wait()
	}
	return r.sysTime / time.Duration(phases), r.waves
}
