package par

import (
	"sync"
	"testing"
)

// TestEpochBarrier drives several workers through many epochs: the
// leader callback must run exactly once per epoch with every worker
// parked, and every worker must observe the same epoch index sequence.
func TestEpochBarrier(t *testing.T) {
	const (
		parties = 5
		epochs  = 200
	)
	b := newEpochBarrier(parties)
	leaderRuns := 0
	shared := 0 // written by the leader only; data race if the world is not stopped
	seen := make([][]int64, parties)

	var wg sync.WaitGroup
	for id := 0; id < parties; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < epochs; i++ {
				e := b.await(func() {
					leaderRuns++
					shared++
				})
				seen[id] = append(seen[id], e)
			}
		}(id)
	}
	wg.Wait()

	if leaderRuns != epochs {
		t.Fatalf("leader ran %d times, want %d", leaderRuns, epochs)
	}
	if shared != epochs {
		t.Fatalf("shared counter = %d, want %d", shared, epochs)
	}
	for id, s := range seen {
		for i, e := range s {
			if e != int64(i) {
				t.Fatalf("worker %d saw epoch %d at position %d", id, e, i)
			}
		}
	}
}
