package par

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestEpochBarrier drives several workers through many epochs: the
// leader callback must run exactly once per epoch with every worker
// parked, and every worker must observe the same epoch index sequence.
func TestEpochBarrier(t *testing.T) {
	const (
		parties = 5
		epochs  = 200
	)
	b := newEpochBarrier(parties)
	leaderRuns := 0
	shared := 0 // written by the leader only; data race if the world is not stopped
	seen := make([][]int64, parties)

	var wg sync.WaitGroup
	for id := 0; id < parties; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < epochs; i++ {
				e := b.await(func() {
					leaderRuns++
					shared++
				})
				seen[id] = append(seen[id], e)
			}
		}(id)
	}
	wg.Wait()

	if leaderRuns != epochs {
		t.Fatalf("leader ran %d times, want %d", leaderRuns, epochs)
	}
	if shared != epochs {
		t.Fatalf("shared counter = %d, want %d", shared, epochs)
	}
	for id, s := range seen {
		for i, e := range s {
			if e != int64(i) {
				t.Fatalf("worker %d saw epoch %d at position %d", id, e, i)
			}
		}
	}
}

// TestEpochBarrierStress is the adversarial version: 1000 epochs with
// every worker sleeping or yielding a random interval before each
// arrival, so arrival orders, leader identity and wakeup orders are
// shuffled on every epoch. Run under -race in CI, it checks the two
// properties the RIPS protocol hangs off the barrier:
//
//   - exactly one leader per epoch, and the leader observes every
//     epoch index exactly once, in order — an epoch index is never
//     reused or skipped (the ANY detector tags requests with it, so a
//     reused index would cancel a live request);
//   - every worker sees the identical index sequence 0..999, i.e. no
//     worker ever laps the barrier or starves.
func TestEpochBarrierStress(t *testing.T) {
	const (
		parties = 8
		epochs  = 1000
	)
	b := newEpochBarrier(parties)
	// ledger[e] counts leader callbacks for epoch index e; the leader
	// callback runs with the world stopped, so plain ints are safe —
	// -race verifies exactly that.
	ledger := make([]int, epochs)
	leaderEpochs := 0

	var wg sync.WaitGroup
	for id := 0; id < parties; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id) * 7919))
			for i := 0; i < epochs; i++ {
				switch rng.Intn(3) {
				case 0:
					time.Sleep(time.Duration(rng.Intn(50)) * time.Microsecond)
				case 1:
					runtime.Gosched()
				}
				e := b.await(func() {
					if leaderEpochs >= epochs {
						t.Errorf("leader ran for a %dth epoch", leaderEpochs+1)
						return
					}
					ledger[leaderEpochs]++
					leaderEpochs++
				})
				if e != int64(i) {
					t.Errorf("worker %d saw epoch %d at position %d (index reuse or skip)", id, e, i)
					return
				}
			}
		}(id)
	}
	wg.Wait()

	if leaderEpochs != epochs {
		t.Fatalf("leader ran %d epochs, want %d", leaderEpochs, epochs)
	}
	for e, n := range ledger {
		if n != 1 {
			t.Fatalf("epoch %d had %d leaders, want exactly 1", e, n)
		}
	}
}
