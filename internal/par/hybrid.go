//ripslint:allow-file wallclock the hybrid backend measures actual elapsed time by design; scheduling decisions depend only on task counts, never on the clock

package par

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"

	"rips/internal/app"
	"rips/internal/invariant"
	"rips/internal/metrics"
	"rips/internal/ripsrt"
	"rips/internal/sched"
	"rips/internal/task"
	"rips/internal/topo"
)

// This file is the Hybrid strategy: the RIPS phase protocol across
// affinity domains, Chase-Lev work stealing within them. Workers are
// partitioned into contiguous domain blocks pinned to the machine's
// NUMA nodes; during user phases an idle worker steals only from its
// domain-mates (cheap, cache-shared traffic), and the global epoch
// barrier stops the world for system phases exactly as under pure
// RIPS — except that the leader snapshots per-DOMAIN load sums, plans
// over a domain-level virtual machine with the unchanged walking
// algorithms, and the plan is applied by the domain leaders moving
// tasks between domains' deques. Intra-domain imbalance needs no
// planning at all: the deques absorb it continuously.

// hybridWorker is one worker's private state under the Hybrid
// strategy: a Chase-Lev deque its domain-mates may steal from, plus
// the Eager staging buffer and reusable spawn scratch of the RIPS side
// of the protocol.
type hybridWorker struct {
	counters
	id      int
	dom     int // index into hybridRun.doms
	d       *deque
	stage   []task.Task // ready to schedule (Eager local policy)
	scratch []task.Task // children of the task in hand, reused per execute
	emit    func(app.Spawn)
	rng     *rand.Rand // victim rotation only; never affects the answer
	steals  int64
}

func (w *hybridWorker) newID() uint64 {
	w.seq++
	return packID(w.id, w.seq)
}

// hybridDomain is one contiguous worker block [lo, hi) acting as a
// single node of the domain-level RIPS protocol. Worker lo is the
// domain leader: it alone executes the domain's take and push halves
// of plan application, on its pinned thread.
type hybridDomain struct {
	id     int
	lo, hi int
	// cpus is the affinity CPU set the domain's workers pin to; empty
	// on machines without a visible multi-node topology, where pinning
	// to the whole machine would be a no-op constraint.
	cpus []int
	// xbuf is the domain's migration exchange buffer: each system phase
	// stages the task pointers this domain exports into disjoint
	// regions of xbuf, reusing the array across phases. On the parallel
	// path it is grown by the domain leader on its pinned thread, so
	// the backing array is first-touched on the domain's own node.
	// xneed is the phase's required length, staged by the global leader
	// with the world stopped.
	xbuf     []*task.Task
	xneed    int
	migrated int64
}

func (d *hybridDomain) size() int { return d.hi - d.lo }

// hybridRun is the shared state of one Hybrid-strategy run. It mirrors
// ripsRun with the per-worker protocol state replaced by per-domain
// state: loads, plans, waves and exchange buffers are all indexed by
// domain, and nd (not n) bounds the planner's problem size.
type hybridRun struct {
	cfg     *Config
	n, nd   int
	workers []*hybridWorker
	doms    []*hybridDomain
	dtopo   topo.Topology // domain-level virtual machine the planner sees
	bar     *epochBarrier

	// req is the ANY detector, identical to ripsRun.req: the highest
	// user-phase index for which a transfer has been requested.
	req atomic.Int64

	beginFn, endFn func()

	cancel atomic.Bool
	start  time.Time
	// pinned counts workers that successfully pinned to their domain's
	// CPUs; the remainder run unpinned by the fallback contract.
	pinned atomic.Int64

	// Phase state below is written only inside barrier callbacks (the
	// world is stopped) or read by workers between barriers; the
	// barrier's mutex hand-off orders every access.
	round      int
	done       bool
	stopped    bool
	err        error
	phases     int64
	migrated   int64
	waves      int64
	sysTime    time.Duration
	phaseStart time.Time
	phaseTotal int
	phaseMoved int

	phaseSum    int64
	phaseMax    int
	phaseTotals []int

	// Reusable domain-granular system-phase buffers (nd entries each).
	loads    []int
	avail    []int
	pend     []int
	moves    []applyMove
	waveEnds []int

	det detector
}

// newHybridRun builds the run state — domain partition, CPU mapping,
// domain-level topology, workers — without starting the workers.
func newHybridRun(cfg *Config) *hybridRun {
	n := cfg.Topo.Size()
	_, hypercube := cfg.Topo.(*topo.Hypercube)
	nd := resolveDomains(cfg.Domains, n, hypercube)
	r := &hybridRun{
		cfg:   cfg,
		n:     n,
		nd:    nd,
		bar:   newEpochBarrier(n),
		dtopo: domainTopology(cfg.Topo, nd),
		loads: make([]int, nd),
		avail: make([]int, nd),
		pend:  make([]int, nd),
		det:   newDetector(cfg),
		start: time.Now(),
	}
	r.req.Store(-1)
	r.beginFn = r.beginPhase
	r.endFn = r.finishPhase
	blocks := domainBlocks(n, nd)
	cpus := domainCPUs(nd)
	for d := 0; d < nd; d++ {
		dom := &hybridDomain{id: d, lo: blocks[d][0], hi: blocks[d][1]}
		if cpus != nil {
			dom.cpus = cpus[d]
		}
		r.doms = append(r.doms, dom)
		for i := dom.lo; i < dom.hi; i++ {
			w := &hybridWorker{
				id:  i,
				dom: d,
				d:   newDeque(),
				rng: rand.New(rand.NewSource(cfg.Seed ^ int64(i)*0x9e3779b9)),
			}
			w.emit = func(sp app.Spawn) {
				w.scratch = append(w.scratch, task.Task{ID: w.newID(), Origin: w.id, Size: sp.Size, Data: sp.Data})
			}
			r.workers = append(r.workers, w)
		}
	}
	return r
}

func runHybrid(cfg *Config, d driver) (Result, error) {
	r := newHybridRun(cfg)
	r.loadRoots(0)
	if cfg.Cancel != nil {
		stop := watchCancel(cfg.Cancel, &r.cancel)
		defer stop()
	}

	start := time.Now()
	r.start = start
	d.dispatch(r.n, r.workerMain)
	wall := time.Since(start)

	res := Result{
		Workers:        r.n,
		Domains:        r.nd,
		Overhead:       r.sysTime,
		Migrated:       r.migrated,
		Phases:         r.phases,
		Waves:          r.waves,
		PhaseSum:       r.phaseSum,
		PhaseMax:       r.phaseMax,
		PhaseTotals:    r.phaseTotals,
		Canceled:       r.stopped,
		DomainSteals:   make([]int64, r.nd),
		DomainMigrated: make([]int64, r.nd),
	}
	for _, w := range r.workers {
		res.Steals += w.steals
		res.DomainSteals[w.dom] += w.steals
	}
	for _, dom := range r.doms {
		res.DomainMigrated[dom.id] = dom.migrated
	}
	assemble(&res, wall, r.workers, func(w *hybridWorker) *counters { return &w.counters })
	return res, r.err
}

// loadRoots stages a round's root tasks, exactly like the RIPS
// strategy: block-distributed apps start with each worker owning its
// slice, all others start on worker 0 and let the first system phase
// spread the work across domains (stealing spreads it within).
func (r *hybridRun) loadRoots(round int) {
	roots := r.cfg.App.Roots(round)
	push := func(w *hybridWorker, sp app.Spawn) {
		w.d.push(&task.Task{ID: w.newID(), Origin: w.id, Size: sp.Size, Data: sp.Data})
		w.generated++
	}
	if app.RootsDistributed(r.cfg.App) {
		for i, w := range r.workers {
			lo, hi := app.RootBlock(len(roots), r.n, i)
			for _, sp := range roots[lo:hi] {
				push(w, sp)
			}
		}
		return
	}
	for _, sp := range roots {
		push(r.workers[0], sp)
	}
}

// workerMain is one worker's phase loop. On machines with several
// affinity domains the worker first locks its OS thread and pins it to
// its domain's CPUs. A pinning failure is deliberately not an error:
// the worker runs unpinned — the protocol is correct either way,
// pinning only improves locality — which is the clean-fallback
// contract the affinity shim documents.
func (r *hybridRun) workerMain(id int) {
	w := r.workers[id]
	if cpus := r.doms[w.dom].cpus; len(cpus) > 0 {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
		if restore, err := affinityPin(cpus); err == nil {
			r.pinned.Add(1)
			defer restore()
		}
	}
	var point int64
	for {
		if !r.phaseStep(w, &point) {
			return
		}
		r.userPhase(w, r.phases-1, &point)
	}
}

// phaseStep runs one complete system phase from w's perspective and
// reports whether the run continues. The structure is ripsRun's: every
// worker collapses its own Eager stage before the world stops, the
// last arrival leads beginPhase, then the staged plan is applied in
// two-phase waves — here by the domain leaders, every other worker
// just crossing the sub-barriers.
func (r *hybridRun) phaseStep(w *hybridWorker, point *int64) bool {
	*point++
	perturb(w.id, *point)
	r.collapseStage(w)
	r.bar.await(r.beginFn)
	if r.done { // leader decision, ordered by the barrier
		return false
	}
	for wv := 0; wv < len(r.waveEnds); wv++ {
		r.applyTake(w, wv)
		*point++
		perturb(w.id, *point)
		r.bar.await(nil) // exchange sub-barrier: all takes land before any push
		r.applyPush(w, wv)
		*point++
		perturb(w.id, *point)
		if wv == len(r.waveEnds)-1 {
			r.bar.await(r.endFn)
		} else {
			r.bar.await(nil) // wave boundary: forwarded tasks are now takeable
		}
	}
	return true
}

// collapseStage releases this worker's Eager-staged children into its
// own deque before the world stops. The staged values are copied into
// a fresh batch first: the deque holds pointers, and the stage array's
// backing storage is reused across phases.
func (r *hybridRun) collapseStage(w *hybridWorker) {
	if len(w.stage) == 0 {
		return
	}
	batch := make([]task.Task, len(w.stage))
	copy(batch, w.stage)
	for i := range batch {
		w.d.push(&batch[i])
	}
	w.stage = w.stage[:0]
}

// userPhase executes tasks until this phase's transfer condition is
// met, with one hybrid twist over ripsRun.userPhase: a worker that
// drains its own deque first tries to steal from its domain-mates, and
// only a drained DOMAIN participates in transfer detection. Under ANY
// the request semantics are unchanged (execute at least one task, then
// honour a published request); under ALL the epoch barrier completes
// exactly when every worker in every domain has drained.
func (r *hybridRun) userPhase(w *hybridWorker, phase int64, point *int64) {
	executed := false
	for {
		if r.cancel.Load() {
			return // abort: head straight for the phase barrier
		}
		if executed && r.cfg.Global == ripsrt.Any && r.req.Load() >= phase {
			return // someone requested the transfer; one task finished since
		}
		t := w.d.pop()
		if t == nil {
			// Perturbation point (no-op unless -tags ripsperturb): jitter
			// the thief between its empty pop and the steal sweep, the
			// window where owner pushes race thieves.
			*point++
			perturb(w.id, *point)
			if t = r.stealLocal(w); t != nil {
				w.steals++
			}
		}
		if t == nil {
			if r.cfg.Global == ripsrt.All || r.cancel.Load() {
				return // drained: the ALL local condition holds
			}
			if t = r.initiate(w, phase); t == nil {
				return
			}
			w.steals++ // work appeared during the detector wait
		}
		r.execute(w, t)
		executed = true
	}
}

// stealLocal sweeps this worker's domain-mates once in random
// rotation, returning the first stolen task. Unlike the pure Steal
// strategy's global sweep, the victim set is the domain block — O(n/D)
// deque probes, all on the domain's own node.
func (r *hybridRun) stealLocal(w *hybridWorker) *task.Task {
	dom := r.doms[w.dom]
	n := dom.size()
	if n < 2 {
		return nil
	}
	off := w.rng.Intn(n)
	for k := 0; k < n; k++ {
		v := dom.lo + (off+k)%n
		if v == w.id {
			continue
		}
		for {
			t, retry := r.workers[v].d.steal()
			if t != nil {
				return t
			}
			if !retry {
				break
			}
		}
	}
	return nil
}

// initiate waits out the detector interval and publishes the ANY
// transfer request for this phase. Unlike ripsRun.initiate, a hybrid
// worker's domain-mates may make new work stealable while it waits, so
// each sleep slice re-polls the domain and a successful steal resumes
// the user phase instead of requesting a transfer the domain does not
// need.
func (r *hybridRun) initiate(w *hybridWorker, phase int64) *task.Task {
	if r.req.Load() >= phase {
		return nil
	}
	if d := r.detectWait(); d > 0 {
		for d > 0 && !r.cancel.Load() {
			if t := r.stealLocal(w); t != nil {
				return t
			}
			s := d
			if s > DefaultDetectInterval {
				s = DefaultDetectInterval
			}
			time.Sleep(s) //ripslint:allow sleep the (possibly adaptive) detector interval delays the ANY request, mirroring the simulator's InitBackoff; it never changes what is computed
			d -= s
			if r.req.Load() >= phase {
				return nil
			}
		}
	}
	if r.cancel.Load() {
		return nil
	}
	// Perturbation point: delay the request CAS so redundant initiators
	// of the same phase really race each other.
	perturb(w.id, phase)
	for {
		cur := r.req.Load()
		if cur >= phase {
			return nil // a concurrent initiator won; redundant init cancelled
		}
		if r.req.CompareAndSwap(cur, phase) {
			return nil
		}
	}
}

// detectWait mirrors ripsRun.detectWait over the shared detector.
func (r *hybridRun) detectWait() time.Duration {
	return r.det.current()
}

// execute runs one task for real and files its children per the local
// policy. Children land in the reusable scratch buffer through the
// bound emit closure; the Lazy path then copies them into a fresh
// batch because the deque keeps pointers into whatever it is handed,
// while scratch is overwritten by the very next execution.
func (r *hybridRun) execute(w *hybridWorker, t *task.Task) {
	if t.Origin != w.id {
		w.nonlocal++
	}
	w.executed++
	w.scratch = w.scratch[:0]
	start := time.Now()
	vw, res := app.ExecuteCount(r.cfg.App, t.Data, w.emit)
	w.busy += time.Since(start)
	w.vwork += vw
	w.appResult += res
	if len(w.scratch) > 0 {
		w.generated += int64(len(w.scratch))
		if r.cfg.Local == ripsrt.Eager {
			w.stage = append(w.stage, w.scratch...)
		} else {
			batch := make([]task.Task, len(w.scratch))
			copy(batch, w.scratch)
			for i := range batch {
				w.d.push(&batch[i])
			}
		}
	}
}

// beginPhase runs with the world stopped: it snapshots the per-domain
// load sums, detects round boundaries (a zero global total — no
// pending counter is needed because quiescence at the barrier makes
// the snapshot exact), runs the pure walking algorithm over the
// domain-level topology and stages the plan. Everything ripsRun's
// beginPhase does per worker happens here per domain.
//
//ripslint:hotpath
func (r *hybridRun) beginPhase() {
	if r.cancel.Load() {
		// Abort, decided by the leader with the world stopped; every
		// worker observes done on release and exits together.
		r.stopped = true
		r.done = true
		return
	}
	r.phaseStart = time.Now()
	r.moves = r.moves[:0]
	r.waveEnds = r.waveEnds[:0]
	r.phaseMoved = 0

	total := 0
	for i := range r.loads {
		r.loads[i] = 0
	}
	for _, w := range r.workers {
		n := int(w.d.size())
		r.loads[w.dom] += n
		total += n
	}
	r.phaseTotal = total
	r.phases++
	r.phaseSum += int64(total)
	if total > r.phaseMax {
		r.phaseMax = total
	}
	if r.cfg.TracePhases {
		r.phaseTotals = append(r.phaseTotals, total) //ripslint:allow hotpath opt-in tracing grows the trace by design; steady-state runs keep TracePhases off
	}

	if total == 0 {
		// Zero global total detects the round boundary, exactly like
		// the simulator runtime.
		r.round++
		//ripslint:allow hotpath round boundary (zero global total): one dispatch per round, outside the steady state
		if r.round >= r.cfg.App.Rounds() {
			r.done = true
			r.finishPhase()
			return
		}
		r.loadRoots(r.round) //ripslint:allow hotpath round boundary restaging allocates once per round, outside the steady state
		r.finishPhase()
		return
	}
	if r.nd == 1 || balancedCanonical(r.loads, total) {
		// A single domain has nothing to balance across (stealing is
		// the whole story), and canonical loads are already at the
		// Theorem 1 fixed point — either way, nothing to plan.
		r.finishPhase()
		return
	}

	//ripslint:allow hotpath the planners build fresh trace vectors by design; balanced steady-state phases never reach them (balancedCanonical short-circuits above)
	plan, planTotal, err := planLoads(r.dtopo, r.loads)
	if err != nil {
		r.err = err
		r.done = true
		return
	}
	if invariant.Enabled() && planTotal != total {
		invariant.Violated("par: hybrid planner saw %d tasks, snapshot had %d", planTotal, total)
	}
	r.phaseMoved = plan.Cost()
	r.migrated += int64(r.phaseMoved)
	r.stageMoves(plan.Moves)

	if r.cfg.SerialApply || r.phaseMoved < r.cfg.parallelApplyMin() {
		// Leader-only apply, move by move in plan order; the leader
		// grows every domain's exchange buffer itself (no first-touch
		// care for plans this small).
		for i := range r.doms {
			r.ensureXbuf(r.doms[i]) //ripslint:allow hotpath exchange buffers grow to the high-water mark once, then are reused every phase
		}
		for i := range r.moves {
			mv := &r.moves[i]
			r.takeMove(mv)
			r.pushMove(mv) //ripslint:allow hotpath deque growth amortizes to the high-water mark; small serial plans rarely grow it
		}
		r.moves = r.moves[:0]
		r.finishPhase()
		return
	}
	r.waveEnds = partitionInWaves(r.moves, r.loads, r.avail, r.pend, r.waveEnds)
	r.waves += int64(len(r.waveEnds))
}

// finishPhase closes the system phase: Theorem 1 now holds at DOMAIN
// granularity — after a planned phase the domain totals sit within one
// task of the domain quota — plus conservation, detector adaptation
// and stop-the-world accounting, mirroring ripsRun.finishPhase.
//
//ripslint:hotpath
func (r *hybridRun) finishPhase() {
	if total := r.phaseTotal; total > 0 {
		av := r.avail // scratch; wave partition and offsets are done with it
		for i := range av {
			av[i] = 0
		}
		for _, w := range r.workers {
			av[w.dom] += int(w.d.size())
		}
		after := 0
		for d, x := range av {
			after += x
			invariant.BalancedWithinOne(x, total, r.nd, d, "par: hybrid system phase")
		}
		invariant.Conserved(total, after, "par: hybrid system phase")
	}
	r.det.update(r.phaseMoved, r.nd)
	r.sysTime += time.Since(r.phaseStart)
	if h := r.cfg.OnPhase; h != nil {
		//ripslint:allow hotpath OnPhase observer contract: the hook runs inside the stopped world and is documented to be allocation-conscious
		h(metrics.PhaseInfo{
			Phase:   r.phases,
			Round:   r.round,
			Tasks:   r.phaseTotal,
			Moved:   r.phaseMoved,
			Elapsed: time.Since(r.start),
		})
	}
}

// stageMoves turns the domain-level plan into applyMoves with disjoint
// exchange regions per source domain, and records the per-domain
// export volume. avail doubles as per-domain offset scratch here; it
// is re-derived before the wave partition and the balance check.
func (r *hybridRun) stageMoves(moves []sched.Move) {
	off := r.avail
	for i := range off {
		off[i] = 0
	}
	for _, m := range moves {
		r.moves = append(r.moves, applyMove{from: m.From, to: m.To, count: m.Count, off: off[m.From]}) //ripslint:allow hotpath r.moves retains its capacity across phases; growth amortizes to zero
		off[m.From] += m.Count
		r.doms[m.From].migrated += int64(m.Count)
	}
	for d, dom := range r.doms {
		dom.xneed = off[d]
	}
}

// ensureXbuf sizes the domain's exchange buffer for the phase. On the
// parallel path it runs on the domain leader's pinned thread, so a
// grown buffer is first-touched on the domain's own node.
func (r *hybridRun) ensureXbuf(dom *hybridDomain) {
	if cap(dom.xbuf) < dom.xneed {
		dom.xbuf = make([]*task.Task, dom.xneed)
	} else {
		dom.xbuf = dom.xbuf[:dom.xneed]
	}
}

// applyTake is the take half of one wave from w's perspective: only
// the domain leader acts, extracting every move its domain sources
// into the domain's exchange buffer. Quiescence at the barrier makes
// the bulk deque takes safe without CAS traffic.
func (r *hybridRun) applyTake(w *hybridWorker, wv int) {
	dom := r.doms[w.dom]
	if w.id != dom.lo {
		return
	}
	r.ensureXbuf(dom)
	lo, hi := waveBounds(r.waveEnds, wv)
	for i := lo; i < hi; i++ {
		if mv := &r.moves[i]; mv.from == dom.id {
			r.takeMove(mv)
		}
	}
}

// applyPush is the push half: the destination domain's leader lands
// every move its domain receives. The exchange sub-barrier ordered all
// takes before any push, so the source regions are stable.
func (r *hybridRun) applyPush(w *hybridWorker, wv int) {
	dom := r.doms[w.dom]
	if w.id != dom.lo {
		return
	}
	lo, hi := waveBounds(r.waveEnds, wv)
	for i := lo; i < hi; i++ {
		if mv := &r.moves[i]; mv.to == dom.id {
			r.pushMove(mv)
		}
	}
}

// takeMove extracts one move's tasks from the source domain's deques
// into its exchange region, sweeping the domain's workers in order and
// taking from the steal end of each deque — the oldest, typically
// largest subtrees, exactly the tasks a thief would have exported.
func (r *hybridRun) takeMove(mv *applyMove) {
	dom := r.doms[mv.from]
	seg := dom.xbuf[mv.off : mv.off+mv.count]
	got := 0
	for i := dom.lo; i < dom.hi && got < mv.count; i++ {
		got += r.workers[i].d.takeTopInto(seg[got:])
	}
	mv.got = got
	if got != mv.count {
		invariant.Violated("par: hybrid domain %d short %d tasks for migration", mv.from, mv.count-got)
	}
}

// pushMove lands one move's tasks across the destination domain's
// deques round-robin and clears the exchange region so task pointers
// are not retained across the next user phase.
func (r *hybridRun) pushMove(mv *applyMove) {
	src := r.doms[mv.from]
	dst := r.doms[mv.to]
	seg := src.xbuf[mv.off : mv.off+mv.got]
	n := dst.size()
	for i, t := range seg {
		r.workers[dst.lo+i%n].d.push(t)
		seg[i] = nil
	}
}
