package par

import (
	"rips/internal/affinity"
	"rips/internal/topo"
)

// Affinity hooks — variables so tests can inject synthetic multi-domain
// machines and pinning failures without a real NUMA topology. Production
// code never reassigns them.
var (
	affinityDomains = affinity.Domains
	affinityPin     = affinity.Pin
)

// resolveDomains turns a configured domain count into the effective
// one. Zero auto-detects the machine's affinity domains; any count is
// clamped into [1, workers]; on hypercube machines it is additionally
// rounded down to a power of two, because the domain-level planner is
// the hypercube walking algorithm. Resolution is total and
// deterministic for a given machine — there is no error case.
func resolveDomains(requested, workers int, hypercube bool) int {
	nd := requested
	if nd <= 0 {
		nd = len(affinityDomains())
	}
	if nd > workers {
		nd = workers
	}
	if nd < 1 {
		nd = 1
	}
	if hypercube {
		p := 1
		for p*2 <= nd {
			p *= 2
		}
		nd = p
	}
	return nd
}

// domainBlocks partitions workers 0..n-1 into nd contiguous near-even
// blocks [lo, hi), the first n mod nd blocks one worker wider. Workers
// of a block are consecutive so a block maps onto consecutive CPUs of
// one affinity domain.
func domainBlocks(workers, nd int) [][2]int {
	blocks := make([][2]int, nd)
	lo := 0
	for d := range blocks {
		size := workers / nd
		if d < workers%nd {
			size++
		}
		blocks[d] = [2]int{lo, lo + size}
		lo += size
	}
	return blocks
}

// workerDomains inverts domainBlocks into a worker → domain index map.
func workerDomains(blocks [][2]int, workers int) []int {
	domOf := make([]int, workers)
	for d, b := range blocks {
		for i := b[0]; i < b[1]; i++ {
			domOf[i] = d
		}
	}
	return domOf
}

// domainTopology mirrors the machine kind at domain granularity, so a
// hybrid run balances across domains with the same walking algorithm
// the pure-RIPS run uses across nodes — and intra-domain edges, which
// hybrid handles by stealing instead, simply do not exist in the
// virtual mesh the planner sees.
func domainTopology(machine topo.Topology, nd int) topo.Topology {
	switch machine.(type) {
	case *topo.Tree:
		return topo.NewTree(nd)
	case *topo.Hypercube:
		dim := 0
		for 1<<(dim+1) <= nd {
			dim++
		}
		return topo.NewHypercube(dim)
	default:
		// A 1 x nd mesh (a chain) is valid for ANY domain count, where
		// the paper's squarish machine shapes are not; the mesh walking
		// algorithm balances a chain with its column phase alone.
		return topo.NewMesh(1, nd)
	}
}

// domainCPUs assigns each of the nd hybrid domains the CPU set of one
// affinity domain, spreading hybrid domains across the machine's nodes
// (several hybrid domains share a node when nd exceeds the node
// count). On machines with a single visible node it returns nil:
// pinning every worker to the whole machine would be a no-op
// constraint, so the workers run unpinned.
func domainCPUs(nd int) [][]int {
	aff := affinityDomains()
	if len(aff) < 2 {
		return nil
	}
	out := make([][]int, nd)
	for d := range out {
		out[d] = aff[d*len(aff)/nd].CPUs
	}
	return out
}
