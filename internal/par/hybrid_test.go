package par

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rips/internal/affinity"
	"rips/internal/ripsrt"
	"rips/internal/task"
	"rips/internal/topo"
)

// withAffinity swaps the package's affinity hooks for the duration of
// the test, simulating a machine with the given domains (and, when pin
// is non-nil, the given pinning behavior) regardless of what the host
// actually looks like.
func withAffinity(t *testing.T, doms []affinity.Domain, pin func([]int) (func(), error)) {
	t.Helper()
	oldDoms, oldPin := affinityDomains, affinityPin
	affinityDomains = func() []affinity.Domain { return doms }
	if pin != nil {
		affinityPin = pin
	}
	t.Cleanup(func() { affinityDomains, affinityPin = oldDoms, oldPin })
}

// twoNodes is a synthetic two-domain machine whose CPU sets both name
// CPU 0, so pinning succeeds on any host.
func twoNodes() []affinity.Domain {
	return []affinity.Domain{{Node: 0, CPUs: []int{0}}, {Node: 1, CPUs: []int{0}}}
}

// TestHybridPolicies runs every Local x Global combination over a real
// mesh split into two domains and checks the answer never depends on
// the policy — the hybrid analogue of TestRIPSPolicies.
func TestHybridPolicies(t *testing.T) {
	for _, local := range []ripsrt.LocalPolicy{ripsrt.Lazy, ripsrt.Eager} {
		for _, global := range []ripsrt.GlobalPolicy{ripsrt.Any, ripsrt.All} {
			res := mustRun(t, Config{
				Topo:        topo.NewMesh(2, 2),
				App:         queens8(),
				Strategy:    Hybrid,
				Domains:     2,
				Local:       local,
				Global:      global,
				TracePhases: true,
			})
			label := "hybrid " + global.String() + "-" + local.String()
			checkQueens8(t, res, label)
			if res.Domains != 2 {
				t.Errorf("%s: Domains = %d, want 2", label, res.Domains)
			}
			if res.Phases == 0 {
				t.Errorf("%s: no system phases ran", label)
			}
			if res.PhaseTotals[len(res.PhaseTotals)-1] != 0 {
				t.Errorf("%s: final phase total %d, want 0 (termination)", label, res.PhaseTotals[len(res.PhaseTotals)-1])
			}
			if res.CrossSteals != 0 {
				t.Errorf("%s: %d cross-domain steals; hybrid stealing must stay in-domain", label, res.CrossSteals)
			}
			var ds, dm int64
			for _, v := range res.DomainSteals {
				ds += v
			}
			for _, v := range res.DomainMigrated {
				dm += v
			}
			if ds != res.Steals || dm != res.Migrated {
				t.Errorf("%s: domain breakdowns sum to %d/%d, totals are %d/%d",
					label, ds, dm, res.Steals, res.Migrated)
			}
		}
	}
}

// TestHybridTopologies checks the domain-level tree and hypercube
// planners drive system phases just like the mesh, across domain
// counts that do and do not divide the worker count.
func TestHybridTopologies(t *testing.T) {
	for _, tp := range []topo.Topology{
		topo.NewMesh(1, 1),
		topo.NewMesh(4, 2),
		topo.NewTree(7),
		topo.NewHypercube(3),
	} {
		for _, domains := range []int{0, 1, 2, 3} {
			res := mustRun(t, Config{Topo: tp, App: queens8(), Strategy: Hybrid, Domains: domains})
			label := fmt.Sprintf("hybrid on %s domains=%d", tp.Name(), domains)
			checkQueens8(t, res, label)
			if res.Domains < 1 || res.Domains > tp.Size() {
				t.Errorf("%s: resolved Domains = %d outside [1, %d]", label, res.Domains, tp.Size())
			}
			if len(res.DomainSteals) != res.Domains || len(res.DomainMigrated) != res.Domains {
				t.Errorf("%s: breakdown lengths %d/%d, want %d",
					label, len(res.DomainSteals), len(res.DomainMigrated), res.Domains)
			}
		}
	}
}

// TestResolveDomains unit-tests domain-count resolution: auto-detect,
// clamping to the worker count, and power-of-two rounding on
// hypercubes. Resolution must be total — every input yields a count in
// [1, workers].
func TestResolveDomains(t *testing.T) {
	withAffinity(t, twoNodes(), nil)
	cases := []struct {
		requested, workers int
		hypercube          bool
		want               int
	}{
		{0, 8, false, 2},   // auto-detect: the synthetic machine has 2 nodes
		{0, 1, false, 1},   // ... clamped to a single worker
		{4, 8, false, 4},   // explicit count
		{8, 3, false, 3},   // more domains than workers: one worker each
		{3, 8, true, 2},    // hypercube rounds down to a power of two
		{5, 16, true, 4},   // ... and 5 -> 4
		{1, 8, true, 1},    // 1 is a power of two
		{6, 4, true, 4},    // clamp then round: 6 -> 4 -> 4
		{7, 100, false, 7}, // plenty of room: unchanged
	}
	for _, c := range cases {
		if got := resolveDomains(c.requested, c.workers, c.hypercube); got != c.want {
			t.Errorf("resolveDomains(%d, %d, %v) = %d, want %d",
				c.requested, c.workers, c.hypercube, got, c.want)
		}
	}
}

// TestDomainBlocks checks the contiguous near-even partition and its
// inversion, including the non-divisible case.
func TestDomainBlocks(t *testing.T) {
	blocks := domainBlocks(7, 3)
	want := [][2]int{{0, 3}, {3, 5}, {5, 7}}
	for d := range blocks {
		if blocks[d] != want[d] {
			t.Fatalf("domainBlocks(7, 3) = %v, want %v", blocks, want)
		}
	}
	domOf := workerDomains(blocks, 7)
	for i, d := range []int{0, 0, 0, 1, 1, 2, 2} {
		if domOf[i] != d {
			t.Errorf("workerDomains[%d] = %d, want %d", i, domOf[i], d)
		}
	}
}

// TestDomainTopologyMirrorsMachine checks the domain-level virtual
// machine keeps the machine's kind, so the same walking algorithm
// plans at both granularities.
func TestDomainTopologyMirrorsMachine(t *testing.T) {
	if _, ok := domainTopology(topo.NewTree(15), 4).(*topo.Tree); !ok {
		t.Error("tree machine did not yield a tree domain topology")
	}
	if hc, ok := domainTopology(topo.NewHypercube(4), 4).(*topo.Hypercube); !ok || hc.Size() != 4 {
		t.Errorf("hypercube machine yielded %T size %d, want 4-node hypercube", hc, hc.Size())
	}
	if _, ok := domainTopology(topo.NewMesh(4, 4), 3).(*topo.Mesh); !ok {
		t.Error("mesh machine did not yield a mesh domain topology")
	}
	if dt := domainTopology(topo.NewHypercube(3), 1); dt.Size() != 1 {
		t.Errorf("single-domain topology has size %d, want 1", dt.Size())
	}
}

// TestHybridSingleDomainDegenerates checks the nd=1 degeneration: the
// whole machine is one stealing pool, so system phases never plan a
// migration — the run is pure stealing punctuated by (cheap) phase
// barriers.
func TestHybridSingleDomainDegenerates(t *testing.T) {
	res := mustRun(t, Config{
		Topo:     topo.NewMesh(2, 2),
		App:      queens8(),
		Strategy: Hybrid,
		Domains:  1,
	})
	checkQueens8(t, res, "hybrid single-domain")
	if res.Domains != 1 {
		t.Fatalf("Domains = %d, want 1", res.Domains)
	}
	if res.Migrated != 0 || res.Waves != 0 {
		t.Errorf("single domain migrated %d tasks in %d waves; nothing should be planned",
			res.Migrated, res.Waves)
	}
	if res.Phases == 0 {
		t.Error("no system phases ran; round detection still needs them")
	}
}

// TestHybridWorkersFewerThanDomains asks for more domains than
// workers: resolution clamps to one worker per domain and the run
// still completes correctly.
func TestHybridWorkersFewerThanDomains(t *testing.T) {
	res := mustRun(t, Config{
		Topo:     topo.NewMesh(2, 1),
		App:      queens8(),
		Strategy: Hybrid,
		Domains:  8,
	})
	checkQueens8(t, res, "hybrid workers<domains")
	if res.Domains != 2 {
		t.Errorf("Domains = %d, want clamp to 2 workers", res.Domains)
	}
	if res.Steals != 0 {
		t.Errorf("%d steals with single-worker domains; there is nobody to steal from", res.Steals)
	}
}

// TestHybridPinFallback injects a synthetic two-node machine whose
// pinning always fails: every worker must fall back to running
// unpinned and the answer must be unaffected. The successful-pinning
// leg then checks pin and restore are actually exercised once per
// worker.
func TestHybridPinFallback(t *testing.T) {
	var pins, restores atomic.Int64
	withAffinity(t, twoNodes(), func(cpus []int) (func(), error) {
		return nil, errors.New("synthetic pin failure")
	})
	res := mustRun(t, Config{Topo: topo.NewMesh(2, 2), App: queens8(), Strategy: Hybrid})
	checkQueens8(t, res, "hybrid with failing pin")
	if res.Domains != 2 {
		t.Errorf("Domains = %d, want the synthetic machine's 2", res.Domains)
	}

	affinityPin = func(cpus []int) (func(), error) {
		if len(cpus) == 0 {
			t.Error("pin called with an empty CPU set")
		}
		pins.Add(1)
		return func() { restores.Add(1) }, nil
	}
	res = mustRun(t, Config{Topo: topo.NewMesh(2, 2), App: queens8(), Strategy: Hybrid})
	checkQueens8(t, res, "hybrid with recording pin")
	if pins.Load() != 4 || restores.Load() != 4 {
		t.Errorf("pin/restore called %d/%d times, want 4/4 (one per worker)",
			pins.Load(), restores.Load())
	}
}

// TestHybridSingleNodeMachineSkipsPinning checks that on a machine
// with one visible affinity domain no worker attempts to pin at all —
// constraining a thread to every CPU is a no-op.
func TestHybridSingleNodeMachineSkipsPinning(t *testing.T) {
	withAffinity(t, []affinity.Domain{{Node: 0, CPUs: []int{0}}}, func(cpus []int) (func(), error) {
		t.Error("pin called on a single-node machine")
		return func() {}, nil
	})
	res := mustRun(t, Config{Topo: topo.NewMesh(2, 2), App: queens8(), Strategy: Hybrid})
	checkQueens8(t, res, "hybrid on single-node machine")
	if res.Domains != 1 {
		t.Errorf("Domains = %d, want auto-detected 1", res.Domains)
	}
}

// TestHybridCancel aborts mid-flight hybrid runs on every policy pair:
// workers must unwind through the epoch barrier promptly, including
// any worker asleep in its detector wait.
func TestHybridCancel(t *testing.T) {
	for _, local := range []ripsrt.LocalPolicy{ripsrt.Lazy, ripsrt.Eager} {
		for _, global := range []ripsrt.GlobalPolicy{ripsrt.Any, ripsrt.All} {
			res := runCanceled(t, Config{
				Topo:     topo.NewMesh(2, 2),
				App:      bigQueens(),
				Strategy: Hybrid,
				Domains:  2,
				Local:    local,
				Global:   global,
			}, 20*time.Millisecond)
			if res.Executed == 0 {
				t.Errorf("hybrid %s-%s: no tasks executed before the cancel landed", global, local)
			}
		}
	}
}

// TestHybridValidate covers the Domains-specific validation paths.
func TestHybridValidate(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{Topo: topo.NewMesh(2, 2), App: queens8(), Strategy: Hybrid, Domains: -1}, "negative Domains"},
		{Config{Topo: topo.NewMesh(2, 2), App: queens8(), Domains: 2}, "not RIPS"},
		{Config{Topo: topo.NewRing(4), App: queens8(), Strategy: Hybrid}, "no system-phase planner"},
	}
	for _, c := range cases {
		_, err := Run(c.cfg)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Run(%+v) error = %v, want substring %q", c.cfg, err, c.want)
		}
	}
	// Steal accepts Domains purely as classification.
	res := mustRun(t, Config{Topo: topo.NewMesh(2, 2), App: queens8(), Strategy: Steal, Domains: 2})
	checkQueens8(t, res, "steal with domains")
	if res.Domains != 2 {
		t.Errorf("steal Domains = %d, want 2", res.Domains)
	}
	var ds int64
	for _, v := range res.DomainSteals {
		ds += v
	}
	if ds != res.Steals {
		t.Errorf("steal domain breakdown sums to %d, total is %d", ds, res.Steals)
	}
	if res.CrossSteals > res.Steals {
		t.Errorf("cross-domain steals %d exceed total steals %d", res.CrossSteals, res.Steals)
	}
}

// TestHybridPoolMatchesRun checks the pool driver runs the hybrid
// protocol identically to fresh goroutines.
func TestHybridPoolMatchesRun(t *testing.T) {
	p, err := NewPool(4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	cfg := Config{Topo: topo.NewMesh(2, 2), App: queens8(), Strategy: Hybrid, Domains: 2}
	direct := mustRun(t, cfg)
	pooled, err := p.Run(cfg)
	if err != nil {
		t.Fatalf("pool Run: %v", err)
	}
	if pooled.AppResult != direct.AppResult || pooled.Generated != direct.Generated {
		t.Errorf("pooled hybrid run diverges: result %d/%d generated %d/%d",
			pooled.AppResult, direct.AppResult, pooled.Generated, direct.Generated)
	}
}

// TestTakeTopInto unit-tests the quiescent bulk take: tasks leave from
// the steal end in FIFO order, the remainder pops LIFO as usual, and
// over-asking takes exactly what is there.
func TestTakeTopInto(t *testing.T) {
	d := newDeque()
	tasks := make([]task.Task, 6)
	for i := range tasks {
		tasks[i] = task.Task{ID: uint64(i)}
		d.push(&tasks[i])
	}
	dst := make([]*task.Task, 4)
	if got := d.takeTopInto(dst); got != 4 {
		t.Fatalf("takeTopInto(4 of 6) = %d", got)
	}
	for i := 0; i < 4; i++ {
		if dst[i].ID != uint64(i) {
			t.Errorf("taken[%d].ID = %d, want %d (FIFO from the steal end)", i, dst[i].ID, i)
		}
	}
	if tk := d.pop(); tk == nil || tk.ID != 5 {
		t.Errorf("pop after bulk take = %v, want ID 5 (LIFO bottom)", tk)
	}
	big := make([]*task.Task, 8)
	if got := d.takeTopInto(big); got != 1 || big[0].ID != 4 {
		t.Errorf("takeTopInto(8 of 1) = %d, big[0]=%v; want 1 task with ID 4", got, big[0])
	}
	if got := d.takeTopInto(big); got != 0 {
		t.Errorf("takeTopInto(empty) = %d, want 0", got)
	}
}

// TestHybridStrategyString pins the new enum rendering.
func TestHybridStrategyString(t *testing.T) {
	if Hybrid.String() != "hybrid" {
		t.Fatalf("Hybrid.String() = %q", Hybrid.String())
	}
}
