package par

import (
	"sync"
	"sync/atomic"
	"testing"

	"rips/internal/task"
)

func TestDequeOwnerLIFO(t *testing.T) {
	d := newDeque()
	if got := d.pop(); got != nil {
		t.Fatalf("pop of empty deque = %v, want nil", got)
	}
	const n = 200 // crosses the initial ring capacity, exercising grow
	for i := uint64(0); i < n; i++ {
		d.push(&task.Task{ID: i})
	}
	if got := d.size(); got != n {
		t.Fatalf("size = %d, want %d", got, n)
	}
	for i := uint64(n); i > 0; i-- {
		got := d.pop()
		if got == nil || got.ID != i-1 {
			t.Fatalf("pop = %v, want ID %d", got, i-1)
		}
	}
	if got := d.pop(); got != nil {
		t.Fatalf("pop after drain = %v, want nil", got)
	}
}

func TestDequeStealFIFO(t *testing.T) {
	d := newDeque()
	if _, retry := d.steal(); retry {
		t.Fatal("steal of empty deque reported retry")
	}
	for i := uint64(0); i < 10; i++ {
		d.push(&task.Task{ID: i})
	}
	for i := uint64(0); i < 10; i++ {
		tk, _ := d.steal()
		if tk == nil || tk.ID != i {
			t.Fatalf("steal = %v, want ID %d", tk, i)
		}
	}
	if tk, retry := d.steal(); tk != nil || retry {
		t.Fatalf("steal after drain = (%v, %v), want (nil, false)", tk, retry)
	}
}

// TestDequeConcurrent has one owner pushing and popping against
// several thieves; every task must be consumed exactly once. Run
// under -race this also proves the memory-ordering discipline.
func TestDequeConcurrent(t *testing.T) {
	const (
		thieves = 4
		total   = 20000
	)
	d := newDeque()
	consumed := make([]atomic.Int32, total)
	record := func(tk *task.Task) {
		if n := consumed[tk.ID].Add(1); n != 1 {
			t.Errorf("task %d consumed %d times", tk.ID, n)
		}
	}
	var left atomic.Int64
	left.Store(total)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // owner: push all, popping every third task along the way
		defer wg.Done()
		for i := uint64(0); i < total; i++ {
			d.push(&task.Task{ID: i})
			if i%3 == 0 {
				if tk := d.pop(); tk != nil {
					record(tk)
					left.Add(-1)
				}
			}
		}
		for {
			tk := d.pop()
			if tk == nil {
				if left.Load() == 0 {
					return
				}
				continue
			}
			record(tk)
			left.Add(-1)
		}
	}()
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for left.Load() > 0 {
				tk, _ := d.steal()
				if tk != nil {
					record(tk)
					left.Add(-1)
				}
			}
		}()
	}
	wg.Wait()

	for i := range consumed {
		if consumed[i].Load() != 1 {
			t.Fatalf("task %d consumed %d times, want exactly once", i, consumed[i].Load())
		}
	}
}
