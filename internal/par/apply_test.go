package par

import (
	"sync"
	"testing"
	"time"

	"rips/internal/sched"
	"rips/internal/task"
	"rips/internal/topo"
)

// TestPartitionWaves drives the wave partition on a hand-built
// forwarding chain: every move sources tasks that the previous move
// has yet to deliver, so each move must land in its own wave.
func TestPartitionWaves(t *testing.T) {
	cfg := Config{Topo: topo.NewMesh(1, 4), App: queens8()}
	r := newRipsRun(&cfg)
	copy(r.loads, []int{8, 0, 0, 0})
	w0 := r.workers[0]
	ids := map[uint64]bool{}
	for i := 0; i < 8; i++ {
		id := w0.newID()
		ids[id] = true
		w0.rte.PushBack(task.Task{ID: id, Origin: 0})
	}

	chain := []sched.Move{{From: 0, To: 1, Count: 6}, {From: 1, To: 2, Count: 4}, {From: 2, To: 3, Count: 2}}
	r.stageMoves(chain)
	r.partitionWaves()
	if len(r.waveEnds) != 3 {
		t.Fatalf("waveEnds = %v, want one wave per forwarding hop (3)", r.waveEnds)
	}
	for wv, end := range r.waveEnds {
		if end != wv+1 {
			t.Errorf("wave %d ends at move %d, want %d", wv, end, wv+1)
		}
	}

	// Replay the waves (single-threaded here; concurrency is covered by
	// TestParallelApplyConcurrent) and check the chain really lands.
	for wv := 0; wv < len(r.waveEnds); wv++ {
		for _, w := range r.workers {
			r.applyTake(w, wv)
		}
		for _, w := range r.workers {
			r.applyPush(w, wv)
		}
	}
	want := []int{2, 2, 2, 2}
	for i, w := range r.workers {
		if w.rte.Len() != want[i] {
			t.Errorf("worker %d holds %d tasks after the chain, want %d", i, w.rte.Len(), want[i])
		}
		for {
			tk, ok := w.rte.PopFront()
			if !ok {
				break
			}
			if !ids[tk.ID] {
				t.Errorf("worker %d holds duplicated or unknown task %d", i, tk.ID)
			}
			delete(ids, tk.ID)
		}
	}
	if len(ids) != 0 {
		t.Errorf("%d tasks lost in the forwarding chain", len(ids))
	}
}

// TestParallelApplyConcurrent runs one full system phase with every
// worker applying its share of the plan concurrently (real goroutines,
// real sub-barriers — under -race and -tags ripsperturb this is the
// adversarial interleaving test for the exchange protocol). The phase
// must land the exact canonical quota on every worker and preserve the
// task multiset.
func TestParallelApplyConcurrent(t *testing.T) {
	for _, tp := range []topo.Topology{
		topo.NewMesh(1, 8), // chain: maximal forwarding depth
		topo.NewMesh(4, 4),
		topo.NewTree(7),
		topo.NewHypercube(3),
	} {
		t.Run(tp.Name(), func(t *testing.T) {
			cfg := Config{Topo: tp, App: queens8(), ParallelApplyMin: -1}
			r := newRipsRun(&cfg)
			n := tp.Size()
			const total = 203 // awkward remainder so quotas differ by one
			ids := map[uint64]bool{}
			w0 := r.workers[0]
			for i := 0; i < total; i++ {
				id := w0.newID()
				ids[id] = true
				w0.rte.PushBack(task.Task{ID: id, Origin: 0})
			}

			var wg sync.WaitGroup
			for _, w := range r.workers {
				wg.Add(1)
				go func(w *ripsWorker) {
					defer wg.Done()
					var point int64
					if !r.phaseStep(w, &point) {
						t.Error("phaseStep reported the run done mid-round")
					}
				}(w)
			}
			wg.Wait()

			if r.waves == 0 {
				t.Error("no waves fanned out despite ParallelApplyMin < 0")
			}
			for i, w := range r.workers {
				quota := total / n
				if i < total%n {
					quota++
				}
				if w.rte.Len() != quota {
					t.Errorf("worker %d holds %d tasks, want canonical quota %d", i, w.rte.Len(), quota)
				}
				for {
					tk, ok := w.rte.PopFront()
					if !ok {
						break
					}
					if !ids[tk.ID] {
						t.Errorf("worker %d holds duplicated or unknown task %d", i, tk.ID)
					}
					delete(ids, tk.ID)
				}
			}
			if len(ids) != 0 {
				t.Errorf("%d tasks lost by the parallel apply", len(ids))
			}
		})
	}
}

// TestApplyModesAgree proves the apply strategy is answer-invisible:
// default thresholding, forced serial, and forced parallel application
// must execute the identical task decomposition.
func TestApplyModesAgree(t *testing.T) {
	base := Config{Topo: topo.NewMesh(2, 2), App: queens8()}
	ref := mustRun(t, base)
	checkQueens8(t, ref, "RIPS default apply")

	serial := base
	serial.SerialApply = true
	sres := mustRun(t, serial)
	if sres.Waves != 0 {
		t.Errorf("SerialApply fanned out %d waves", sres.Waves)
	}

	forced := base
	forced.ParallelApplyMin = -1
	pres := mustRun(t, forced)
	if pres.Migrated > 0 && pres.Waves == 0 {
		t.Errorf("forced parallel apply migrated %d tasks in zero waves", pres.Migrated)
	}

	for label, res := range map[string]Result{"serial": sres, "parallel": pres} {
		if res.AppResult != ref.AppResult || res.Generated != ref.Generated ||
			res.Executed != ref.Executed || res.VirtualWork != ref.VirtualWork {
			t.Errorf("%s apply diverges from default: result %d/%d generated %d/%d work %v/%v",
				label, res.AppResult, ref.AppResult, res.Generated, ref.Generated,
				res.VirtualWork, ref.VirtualWork)
		}
	}
}

// TestAdaptiveDetector unit-tests the EWMA wait: starved phases climb
// to the cap, productive phases fall back to the base, and the
// constant/disabled Config overrides bypass adaptation entirely.
func TestAdaptiveDetector(t *testing.T) {
	cfg := &Config{}
	r := &ripsRun{cfg: cfg, n: 64, det: newDetector(cfg)}
	for i := 0; i < 64; i++ {
		r.phaseMoved = 0
		r.updateDetector()
	}
	if want := adaptMaxFactor * DefaultDetectInterval; r.det.wait != want {
		t.Errorf("starved detector wait = %v, want cap %v", r.det.wait, want)
	}
	for i := 0; i < 64; i++ {
		r.phaseMoved = 8 * r.n
		r.updateDetector()
	}
	if r.det.wait != DefaultDetectInterval {
		t.Errorf("productive detector wait = %v, want base %v", r.det.wait, DefaultDetectInterval)
	}

	ccfg := &Config{DetectInterval: time.Millisecond}
	rc := &ripsRun{cfg: ccfg, n: 64, det: newDetector(ccfg)}
	rc.phaseMoved = 0
	rc.updateDetector()
	if got := rc.detectWait(); got != time.Millisecond {
		t.Errorf("constant override wait = %v, want %v", got, time.Millisecond)
	}
	dcfg := &Config{DetectInterval: -1}
	rd := &ripsRun{cfg: dcfg, n: 64, det: newDetector(dcfg)}
	if got := rd.detectWait(); got != 0 {
		t.Errorf("disabled detector wait = %v, want 0", got)
	}
}

// TestDetectModesAgree cross-validates detector timing against the
// answer: adaptive, constant and disabled waits may only change when
// phases happen, never what is computed.
func TestDetectModesAgree(t *testing.T) {
	var ref Result
	for i, interval := range []time.Duration{0, 50 * time.Microsecond, -1} {
		res := mustRun(t, Config{
			Topo:           topo.NewMesh(2, 2),
			App:            queens8(),
			DetectInterval: interval,
		})
		checkQueens8(t, res, "RIPS detect interval "+interval.String())
		if i == 0 {
			ref = res
			continue
		}
		if res.AppResult != ref.AppResult || res.Generated != ref.Generated ||
			res.VirtualWork != ref.VirtualWork {
			t.Errorf("detect interval %v diverges: result %d/%d generated %d/%d",
				interval, res.AppResult, ref.AppResult, res.Generated, ref.Generated)
		}
	}
}

// TestPhaseSummaryBounded checks the default (no TracePhases) run keeps
// only the bounded summary: no trace, but count/sum/max populated.
func TestPhaseSummaryBounded(t *testing.T) {
	res := mustRun(t, Config{Topo: topo.NewMesh(2, 2), App: queens8()})
	if res.PhaseTotals != nil {
		t.Errorf("PhaseTotals recorded without TracePhases: %d entries", len(res.PhaseTotals))
	}
	if res.Phases == 0 || res.PhaseSum <= 0 || res.PhaseMax <= 0 {
		t.Errorf("phase summary empty: phases=%d sum=%d max=%d", res.Phases, res.PhaseSum, res.PhaseMax)
	}
	if int64(res.PhaseMax) > res.PhaseSum {
		t.Errorf("PhaseMax %d exceeds PhaseSum %d", res.PhaseMax, res.PhaseSum)
	}
}
