package par

import (
	"strings"
	"testing"
	"time"

	"rips/internal/apps/nqueens"
	"rips/internal/ripsrt"
	"rips/internal/topo"
)

// queens8 returns a small real workload: 8-Queens has 92 solutions and
// a few hundred tasks at split depth 3.
func queens8() *nqueens.App { return nqueens.New(8, 3) }

func mustRun(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%s on %s): %v", cfg.Strategy, cfg.Topo.Name(), err)
	}
	return res
}

func checkQueens8(t *testing.T, res Result, label string) {
	t.Helper()
	if res.AppResult != 92 {
		t.Errorf("%s: AppResult = %d, want 92 solutions", label, res.AppResult)
	}
	if res.Executed != res.Generated {
		t.Errorf("%s: executed %d of %d generated", label, res.Executed, res.Generated)
	}
	if res.Wall <= 0 || res.Busy <= 0 {
		t.Errorf("%s: non-positive timings Wall=%v Busy=%v", label, res.Wall, res.Busy)
	}
}

// TestRIPSPolicies runs every Local x Global combination over a real
// mesh and checks the answer never depends on the policy.
func TestRIPSPolicies(t *testing.T) {
	for _, local := range []ripsrt.LocalPolicy{ripsrt.Lazy, ripsrt.Eager} {
		for _, global := range []ripsrt.GlobalPolicy{ripsrt.Any, ripsrt.All} {
			res := mustRun(t, Config{
				Topo:        topo.NewMesh(2, 2),
				App:         queens8(),
				Local:       local,
				Global:      global,
				TracePhases: true,
			})
			label := "RIPS " + global.String() + "-" + local.String()
			checkQueens8(t, res, label)
			if res.Phases == 0 {
				t.Errorf("%s: no system phases ran", label)
			}
			if len(res.PhaseTotals) != int(res.Phases) {
				t.Errorf("%s: %d phase totals for %d phases", label, len(res.PhaseTotals), res.Phases)
			}
			if res.PhaseTotals[len(res.PhaseTotals)-1] != 0 {
				t.Errorf("%s: final phase total %d, want 0 (termination)", label, res.PhaseTotals[len(res.PhaseTotals)-1])
			}
			var sum int64
			max := 0
			for _, v := range res.PhaseTotals {
				sum += int64(v)
				if v > max {
					max = v
				}
			}
			if res.PhaseSum != sum || res.PhaseMax != max {
				t.Errorf("%s: phase summary sum=%d max=%d, trace says sum=%d max=%d",
					label, res.PhaseSum, res.PhaseMax, sum, max)
			}
		}
	}
}

// TestRIPSTopologies checks the tree and hypercube planners drive
// system phases just like the mesh.
func TestRIPSTopologies(t *testing.T) {
	for _, tp := range []topo.Topology{
		topo.NewMesh(1, 1),
		topo.NewMesh(4, 2),
		topo.NewTree(7),
		topo.NewHypercube(3),
	} {
		res := mustRun(t, Config{Topo: tp, App: queens8()})
		checkQueens8(t, res, "RIPS on "+tp.Name())
	}
}

// TestStealWorkers checks the work-stealing strategy across worker
// counts and seeds: steal order may differ, the answer may not.
func TestStealWorkers(t *testing.T) {
	for _, tp := range []topo.Topology{
		topo.NewMesh(1, 1),
		topo.NewMesh(2, 2),
		topo.NewRing(6), // Steal accepts any topology
	} {
		for _, seed := range []int64{1, 42} {
			res := mustRun(t, Config{Topo: tp, App: queens8(), Strategy: Steal, Seed: seed})
			checkQueens8(t, res, "steal on "+tp.Name())
			// Tasks only ever change workers by being stolen, and a
			// stolen task always executes away from its origin — so the
			// two counters must agree exactly, whatever the timing. (On
			// few cores zero steals is legitimate: one worker can drain
			// the whole tree before a thief wakes.)
			if res.Steals != res.Nonlocal {
				t.Errorf("steal on %s: %d steals but %d nonlocal executions", tp.Name(), res.Steals, res.Nonlocal)
			}
		}
	}
}

// TestZeroDetectIntervalTerminates is the regression test for the
// detector-throttle fix: a disabled backoff (negative interval, i.e. a
// zero wait) must still terminate — the phase-indexed request word
// guarantees progress even when every drained worker initiates
// instantly.
func TestZeroDetectIntervalTerminates(t *testing.T) {
	for _, interval := range []time.Duration{-1, time.Microsecond} {
		res := mustRun(t, Config{
			Topo:           topo.NewMesh(2, 2),
			App:            queens8(),
			DetectInterval: interval,
		})
		checkQueens8(t, res, "RIPS with detect interval "+interval.String())
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{App: queens8()}, "Topo is required"},
		{Config{Topo: topo.NewMesh(2, 2)}, "App is nil"},
		{Config{Topo: topo.NewRing(4), App: queens8()}, "no system-phase planner"},
		{Config{Topo: topo.NewMesh(2, 2), App: queens8(), Strategy: Strategy(99)}, "unknown strategy"},
	}
	for _, c := range cases {
		_, err := Run(c.cfg)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Run(%+v) error = %v, want substring %q", c.cfg, err, c.want)
		}
	}
}

func TestStrategyString(t *testing.T) {
	if RIPS.String() != "rips" || Steal.String() != "steal" {
		t.Fatalf("Strategy strings = %q, %q", RIPS.String(), Steal.String())
	}
}
