package par

import "time"

// detector is the adaptive ANY-policy transfer detector shared by the
// RIPS and Hybrid strategies: an EWMA of tasks moved per system phase
// scales the wait a drained worker sits out before publishing the
// transfer request, so near-empty phases back off automatically. The
// leader updates it inside the epoch barrier; workers read the derived
// wait between barriers, ordered by the barrier hand-off. Only the
// timing of phases depends on it — the computed answer never does,
// which difftest cross-validates.
type detector struct {
	cfg  *Config
	ewma float64
	wait time.Duration
}

func newDetector(cfg *Config) detector {
	return detector{cfg: cfg, wait: DefaultDetectInterval}
}

// current is the wait to apply now: the constant Config override when
// set, otherwise the adaptive wait derived from phase yield.
func (d *detector) current() time.Duration {
	if d.cfg.DetectInterval != 0 {
		return d.cfg.detectInterval()
	}
	return d.wait
}

// Adaptive-detector constants: the EWMA keeps adaptEwmaOld of its
// history per phase, and the wait stretches from DefaultDetectInterval
// (phases moving >= one task per party) up to adaptMaxFactor times
// that as the moved-tasks EWMA approaches zero.
const (
	adaptEwmaOld   = 0.75
	adaptMaxFactor = 32
)

// update folds a finished phase's migration volume into the EWMA and
// re-derives the adaptive wait. Phases that move little work are pure
// overhead, so a falling EWMA backs the next request off — which
// removes the one tuning knob the backend had (ROADMAP "Adaptive
// DetectInterval"). parties is the count of balanced entities: workers
// under RIPS, domains under Hybrid.
func (d *detector) update(moved, parties int) {
	d.ewma = adaptEwmaOld*d.ewma + (1-adaptEwmaOld)*float64(moved)
	if d.cfg.DetectInterval != 0 {
		return // constant override or disabled: nothing to adapt
	}
	f := float64(parties) / (d.ewma + 1)
	if f < 1 {
		f = 1
	}
	if f > adaptMaxFactor {
		f = adaptMaxFactor
	}
	d.wait = time.Duration(f * float64(DefaultDetectInterval))
}
