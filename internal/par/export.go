// Exports of the planning primitives the distributed cluster backend
// (internal/cluster) shares with the in-process runtime: a cluster
// coordinator plans phases over a mirror topology of its member
// processes exactly the way the hierarchical hybrid backend plans over
// its affinity domains, so both call through these wrappers into the
// same pure planners.
package par

import (
	"rips/internal/sched"
	"rips/internal/topo"
)

// PlanLoads runs the topology's incremental scheduling planner (MWA on
// meshes, the tree walk on trees, the cube walk on hypercubes) over one
// load vector and returns the move plan and the global total.
func PlanLoads(t topo.Topology, loads []int) (sched.Plan, int, error) {
	return planLoads(t, loads)
}

// MirrorTopology returns the n-node topology of the machine's own
// family that a coordinator plans over when the machine's nodes are
// groups (affinity domains in-process, whole processes in a cluster)
// rather than single workers.
func MirrorTopology(machine topo.Topology, n int) topo.Topology {
	return domainTopology(machine, n)
}

// BalancedCanonical reports whether the load vector already is the
// canonical balanced distribution of the given total — the fixed point
// at which a planner has no moves left to make.
func BalancedCanonical(loads []int, total int) bool {
	return balancedCanonical(loads, total)
}
