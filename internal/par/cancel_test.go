package par

import (
	"errors"
	"testing"
	"time"

	"rips/internal/apps/nqueens"
	"rips/internal/ripsrt"
	"rips/internal/topo"
)

// bigQueens returns a workload long enough that a mid-run cancel is
// guaranteed to land while tasks are still being executed: 13-Queens
// at split depth 4 runs for seconds on a handful of workers.
func bigQueens() *nqueens.App { return nqueens.New(13, 4) }

// runCanceled runs cfg with a cancel fired after delay and checks the
// common abort contract: ErrCanceled, Canceled set, partial progress.
func runCanceled(t *testing.T, cfg Config, delay time.Duration) Result {
	t.Helper()
	cancel := make(chan struct{})
	cfg.Cancel = cancel
	go func() {
		time.Sleep(delay)
		close(cancel)
	}()
	start := time.Now()
	res, err := Run(cfg)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Run(%s) after cancel: err = %v, want ErrCanceled", cfg.Strategy, err)
	}
	if !res.Canceled {
		t.Errorf("%s: Result.Canceled = false on a canceled run", cfg.Strategy)
	}
	if res.Executed > res.Generated {
		t.Errorf("%s: executed %d > generated %d", cfg.Strategy, res.Executed, res.Generated)
	}
	// The abort must not wedge the barrier: the whole run — including
	// the post-cancel phase drain — has to finish promptly. One second
	// is orders of magnitude above one DetectInterval (100µs) yet far
	// below the full workload's runtime on one core.
	if elapsed > delay+time.Second {
		t.Errorf("%s: canceled run took %v after the %v delay", cfg.Strategy, elapsed, delay)
	}
	return res
}

// TestCancelRIPS aborts a mid-flight RIPS run on every policy pair and
// checks the workers unwind through the epoch barrier promptly.
func TestCancelRIPS(t *testing.T) {
	for _, local := range []ripsrt.LocalPolicy{ripsrt.Lazy, ripsrt.Eager} {
		for _, global := range []ripsrt.GlobalPolicy{ripsrt.Any, ripsrt.All} {
			res := runCanceled(t, Config{
				Topo:   topo.NewMesh(2, 2),
				App:    bigQueens(),
				Local:  local,
				Global: global,
			}, 20*time.Millisecond)
			if res.Executed == 0 {
				t.Errorf("RIPS %s-%s: no tasks executed before the cancel landed",
					global, local)
			}
		}
	}
}

// TestCancelSteal aborts a work-stealing run: the deques may hold
// abandoned tasks, and the round barrier must skip its emptiness
// invariant rather than fire it.
func TestCancelSteal(t *testing.T) {
	res := runCanceled(t, Config{
		Topo:     topo.NewMesh(2, 2),
		App:      bigQueens(),
		Strategy: Steal,
	}, 20*time.Millisecond)
	if res.Executed == 0 {
		t.Error("Steal: no tasks executed before the cancel landed")
	}
}

// TestCancelBeforeStart closes the channel before Run: the run must
// stop at its first phase boundary with (almost) nothing executed.
func TestCancelBeforeStart(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	res, err := Run(Config{
		Topo:   topo.NewMesh(2, 2),
		App:    bigQueens(),
		Cancel: cancel,
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !res.Canceled {
		t.Error("Result.Canceled = false")
	}
}

// TestCancelUnusedCompletes checks a run that finishes before anyone
// cancels is entirely unaffected by having a Cancel channel armed.
func TestCancelUnusedCompletes(t *testing.T) {
	cancel := make(chan struct{})
	defer close(cancel)
	res, err := Run(Config{
		Topo:   topo.NewMesh(2, 2),
		App:    nqueens.New(8, 3),
		Cancel: cancel,
	})
	if err != nil {
		t.Fatalf("Run with armed cancel: %v", err)
	}
	if res.Canceled {
		t.Error("Result.Canceled = true on a completed run")
	}
	if res.AppResult != 92 {
		t.Errorf("AppResult = %d, want 92", res.AppResult)
	}
}
