//go:build ripsperturb

package par

import (
	"runtime"
	"time"
)

// This file is the enabled half of the schedule-perturbation hook (see
// perturb.go for the contract). It injects pre-barrier yields and
// short sleeps chosen by a deterministic hash of (worker, point), so:
//
//   - every worker follows a different, reproducible jitter sequence —
//     no shared RNG, no new synchronization that would itself order
//     the schedule (a perturbation hook must not be a happens-before
//     edge between workers);
//   - repeated runs of one binary explore the same nominal sequence
//     but land differently against the OS scheduler, and the race
//     detector gets adversarial arrival orders at the epoch barrier,
//     the ANY-request CAS and the steal loop for free.
//
// The answer must be bit-identical under any interleaving — that is
// exactly what internal/difftest and the crossval tests assert while
// this tag is on (CI runs them with -race -tags ripsperturb).

// perturbEnabled reports at compile time whether the hook is active.
const perturbEnabled = true

// perturbMaxSleep bounds one injected sleep. Long enough to push a
// worker past a whole barrier window on another core, short enough
// that a difftest smoke sample stays in CI budget.
const perturbMaxSleep = 100 * time.Microsecond

// perturb jitters the calling worker: roughly half the points yield
// the processor, a quarter sleep up to perturbMaxSleep, and the rest
// fall straight through. The choice is a pure function of (worker,
// point) — a SplitMix64-style finalizer over the pair — so a failing
// schedule can be replayed by re-running the same configuration.
func perturb(worker int, point int64) {
	x := (uint64(worker) + 1) * 0x9e3779b97f4a7c15
	x ^= uint64(point) * 0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	switch x & 3 {
	case 0, 1:
		runtime.Gosched()
	case 2:
		//ripslint:allow hotpath perturbation builds opt out of the zero-alloc/non-blocking steady-state contract by definition
		time.Sleep(time.Duration(x>>2%uint64(perturbMaxSleep)) + 1) //ripslint:allow sleep the injected jitter is the whole point of the hook; it shifts timing only, never what is computed
	}
}
