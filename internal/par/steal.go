//ripslint:allow-file wallclock the work-stealing comparator measures actual elapsed time by design; stealing order is timing-dependent but the executed task set is not

package par

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"

	"rips/internal/app"
	"rips/internal/invariant"
	"rips/internal/task"
)

// stealWorker is one worker's private state under the Steal strategy.
type stealWorker struct {
	counters
	id     int
	d      *deque
	rng    *rand.Rand // victim selection only; never affects the answer
	steals int64
	// xsteals counts steals whose victim sat in another affinity domain;
	// tracked only when Config.Domains classified the workers (see
	// stealRun.domOf), purely as measurement.
	xsteals int64
}

func (w *stealWorker) newID() uint64 {
	w.seq++
	return packID(w.id, w.seq)
}

// stealRun is the shared state of one work-stealing run.
type stealRun struct {
	cfg     *Config
	n       int
	workers []*stealWorker
	bar     *epochBarrier
	// pending counts tasks generated but not yet executed; it reaches
	// zero exactly when the round's whole task tree has run, which is
	// the strategy's (centralized) termination detector.
	pending atomic.Int64
	// cancel is the abort flag mirrored from Config.Cancel; workers
	// poll it between executions and head for the round barrier.
	cancel atomic.Bool
	// domOf maps worker → affinity domain when Config.Domains is
	// positive, classifying steals as intra- versus cross-domain in the
	// Result. Victim selection is deliberately unchanged — the
	// classification measures exactly the cross-domain traffic the
	// Hybrid strategy eliminates. Nil when Domains is zero.
	domOf []int
	// Leader-only state, ordered by the round barrier.
	round   int
	done    bool
	stopped bool // done because of cancellation, not completion
}

func runSteal(cfg *Config, d driver) (Result, error) {
	r := &stealRun{cfg: cfg, n: cfg.Topo.Size(), bar: newEpochBarrier(cfg.Topo.Size())}
	var nd int
	if cfg.Domains > 0 {
		nd = resolveDomains(cfg.Domains, r.n, false)
		r.domOf = workerDomains(domainBlocks(r.n, nd), r.n)
	}
	for i := 0; i < r.n; i++ {
		r.workers = append(r.workers, &stealWorker{
			id:  i,
			d:   newDeque(),
			rng: rand.New(rand.NewSource(cfg.Seed ^ int64(i)*0x9e3779b9)),
		})
	}

	if cfg.Cancel != nil {
		stop := watchCancel(cfg.Cancel, &r.cancel)
		defer stop()
	}

	start := time.Now()
	d.dispatch(r.n, r.workerMain)
	wall := time.Since(start)

	res := Result{Workers: r.n, Canceled: r.stopped, Domains: nd}
	if r.domOf != nil {
		res.DomainSteals = make([]int64, nd)
	}
	for _, w := range r.workers {
		res.Steals += w.steals
		res.CrossSteals += w.xsteals
		if r.domOf != nil {
			res.DomainSteals[r.domOf[w.id]] += w.steals
		}
	}
	assemble(&res, wall, r.workers, func(w *stealWorker) *counters { return &w.counters })
	return res, nil
}

// loadRoots seeds a round. Like the RIPS strategy, block-distributed
// apps start spread out and everything else starts on worker 0 — here
// it is the thieves, not a system phase, that spread the work.
func (r *stealRun) loadRoots(round int) {
	roots := r.cfg.App.Roots(round)
	r.pending.Store(int64(len(roots)))
	push := func(w *stealWorker, sp app.Spawn) {
		t := &task.Task{ID: w.newID(), Origin: w.id, Size: sp.Size, Data: sp.Data}
		w.d.push(t)
		w.generated++
	}
	if app.RootsDistributed(r.cfg.App) {
		for i, w := range r.workers {
			lo, hi := app.RootBlock(len(roots), r.n, i)
			for _, sp := range roots[lo:hi] {
				push(w, sp)
			}
		}
		return
	}
	for _, sp := range roots {
		push(r.workers[0], sp)
	}
}

// workerMain alternates rounds (separated by the barrier, where the
// leader reseeds the next round) with the steal loop.
func (r *stealRun) workerMain(id int) {
	w := r.workers[id]
	for {
		r.bar.await(r.advanceRound)
		if r.done {
			return
		}
		r.work(w)
	}
}

// advanceRound runs at the round barrier: every deque must be empty
// (pending hit zero), and the next round — if any — is staged.
func (r *stealRun) advanceRound() {
	if r.cancel.Load() {
		// Abort at the round barrier: deques may still hold abandoned
		// tasks, so the emptiness invariant below does not apply.
		r.stopped = true
		r.done = true
		return
	}
	for _, w := range r.workers {
		if n := w.d.size(); n != 0 {
			invariant.Violated("par: steal worker %d holds %d tasks at round barrier", w.id, n)
		}
	}
	if r.round >= r.cfg.App.Rounds() {
		r.done = true
		return
	}
	r.loadRoots(r.round)
	r.round++
}

// work executes and steals until the round's task tree is exhausted.
func (r *stealRun) work(w *stealWorker) {
	idleSweeps := 0
	var point int64
	for {
		if r.cancel.Load() {
			return // abort: head for the round barrier, deque unemptied
		}
		t := w.d.pop()
		if t == nil {
			if r.pending.Load() == 0 {
				return
			}
			// Perturbation point (no-op unless -tags ripsperturb):
			// jitter the thief between its empty pop and the steal
			// sweep, the window where owner pushes race thieves.
			point++
			perturb(w.id, point)
			t = r.stealOne(w)
			if t == nil {
				// Nothing stealable right now: every remaining task is
				// in execution. Yield, then back off to a short sleep so
				// spinning thieves do not starve the workers they will
				// steal from.
				idleSweeps++
				if idleSweeps > 16 {
					time.Sleep(time.Microsecond) //ripslint:allow sleep idle-thief backoff; affects only how soon a steal retries, never which tasks run
				} else {
					runtime.Gosched()
				}
				continue
			}
			w.steals++
		}
		idleSweeps = 0
		r.execute(w, t)
	}
}

// stealOne sweeps the victims once in random rotation, returning the
// first stolen task.
func (r *stealRun) stealOne(w *stealWorker) *task.Task {
	off := w.rng.Intn(r.n)
	for k := 0; k < r.n; k++ {
		v := (off + k) % r.n
		if v == w.id {
			continue
		}
		for {
			t, retry := r.workers[v].d.steal()
			if t != nil {
				if r.domOf != nil && r.domOf[v] != r.domOf[w.id] {
					w.xsteals++
				}
				return t
			}
			if !retry {
				break
			}
		}
	}
	return nil
}

// execute runs one task for real. The pending counter is raised by the
// children before the task's own completion is subtracted, so it can
// only reach zero when the whole tree has executed.
func (r *stealRun) execute(w *stealWorker, t *task.Task) {
	if t.Origin != w.id {
		w.nonlocal++
	}
	w.executed++
	var children []task.Task
	start := time.Now()
	vw, res := app.ExecuteCount(r.cfg.App, t.Data, func(sp app.Spawn) {
		children = append(children, task.Task{ID: w.newID(), Origin: w.id, Size: sp.Size, Data: sp.Data})
	})
	w.busy += time.Since(start)
	w.vwork += vw
	w.appResult += res
	if len(children) > 0 {
		w.generated += int64(len(children))
		r.pending.Add(int64(len(children)))
		for i := range children {
			w.d.push(&children[i])
		}
	}
	r.pending.Add(-1)
}
