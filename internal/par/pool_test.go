package par

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"rips/internal/topo"
)

// TestPoolMatchesRun checks a pool run returns the exact answer and
// task accounting a fresh-goroutine run does, for both strategies and
// for topologies smaller than the pool (surplus workers idle).
func TestPoolMatchesRun(t *testing.T) {
	pool, err := NewPool(8)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"rips-2x2", Config{Topo: topo.NewMesh(2, 2), App: queens8()}},
		{"rips-2x4", Config{Topo: topo.NewMesh(2, 4), App: queens8()}},
		{"steal-2x2", Config{Topo: topo.NewMesh(2, 2), App: queens8(), Strategy: Steal}},
		{"rips-tree", Config{Topo: topo.NewTree(3), App: queens8()}},
	} {
		direct := mustRun(t, tc.cfg)
		pooled, err := pool.Run(tc.cfg)
		if err != nil {
			t.Fatalf("%s: pool.Run: %v", tc.name, err)
		}
		if pooled.AppResult != direct.AppResult {
			t.Errorf("%s: pool AppResult %d, direct %d", tc.name, pooled.AppResult, direct.AppResult)
		}
		if pooled.Generated != direct.Generated || pooled.Executed != direct.Executed {
			t.Errorf("%s: pool generated/executed %d/%d, direct %d/%d",
				tc.name, pooled.Generated, pooled.Executed, direct.Generated, direct.Executed)
		}
		if pooled.VirtualWork != direct.VirtualWork {
			t.Errorf("%s: pool VirtualWork %v, direct %v", tc.name, pooled.VirtualWork, direct.VirtualWork)
		}
		if pooled.Workers != tc.cfg.Topo.Size() {
			t.Errorf("%s: pool result Workers %d, want topology size %d",
				tc.name, pooled.Workers, tc.cfg.Topo.Size())
		}
	}
}

// TestPoolSequentialRuns reuses one pool for many back-to-back runs —
// the serving pattern — and checks every answer.
func TestPoolSequentialRuns(t *testing.T) {
	pool, err := NewPool(4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	for i := 0; i < 5; i++ {
		res, err := pool.Run(Config{Topo: topo.NewMesh(2, 2), App: queens8()})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		checkQueens8(t, res, "pool run")
	}
}

// TestPoolConcurrentCallers fires many goroutines at one pool at once;
// Run serializes them, and every caller still gets the right answer.
func TestPoolConcurrentCallers(t *testing.T) {
	pool, err := NewPool(4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := pool.Run(Config{Topo: topo.NewMesh(2, 2), App: queens8()})
			if err != nil {
				t.Errorf("pool.Run: %v", err)
				return
			}
			if res.AppResult != 92 {
				t.Errorf("AppResult = %d, want 92", res.AppResult)
			}
		}()
	}
	wg.Wait()
}

// TestPoolTooSmall checks the descriptive error when a topology does
// not fit the pool.
func TestPoolTooSmall(t *testing.T) {
	pool, err := NewPool(2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	_, err = pool.Run(Config{Topo: topo.NewMesh(2, 2), App: queens8()})
	if err == nil || !strings.Contains(err.Error(), "needs 4 workers but the pool has 2") {
		t.Fatalf("err = %v, want worker-count mismatch", err)
	}
}

// TestPoolClosed checks Run after Close fails cleanly and double Close
// is a no-op.
func TestPoolClosed(t *testing.T) {
	pool, err := NewPool(2)
	if err != nil {
		t.Fatal(err)
	}
	pool.Close()
	pool.Close()
	_, err = pool.Run(Config{Topo: topo.NewMesh(1, 2), App: queens8()})
	if err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("err = %v, want pool-closed error", err)
	}
}

// TestPoolCancelFreesWorkers cancels a long run on the pool and checks
// the pool is immediately usable for the next run — the "canceled job
// frees pool capacity" property the server relies on.
func TestPoolCancelFreesWorkers(t *testing.T) {
	pool, err := NewPool(4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	cancel := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(cancel)
	}()
	res, err := pool.Run(Config{Topo: topo.NewMesh(2, 2), App: bigQueens(), Cancel: cancel})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled pool run: err = %v, want ErrCanceled", err)
	}
	if !res.Canceled {
		t.Error("Result.Canceled = false")
	}

	next, err := pool.Run(Config{Topo: topo.NewMesh(2, 2), App: queens8()})
	if err != nil {
		t.Fatalf("run after canceled run: %v", err)
	}
	checkQueens8(t, next, "run after cancel")
}

// TestNewPoolRejectsZeroWorkers covers the constructor's validation.
func TestNewPoolRejectsZeroWorkers(t *testing.T) {
	if _, err := NewPool(0); err == nil {
		t.Fatal("NewPool(0) succeeded")
	}
}

// TestSubPoolMatchesRun leases sub-pools out of one root and checks a
// sub-pool run returns the exact answer a fresh-goroutine run does —
// including on a lease whose worker indices don't start at zero.
func TestSubPoolMatchesRun(t *testing.T) {
	pool, err := NewPool(8)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	first, err := pool.Split(4) // takes workers 0-3
	if err != nil {
		t.Fatal(err)
	}
	second, err := pool.Split(4) // takes workers 4-7: offset ranks
	if err != nil {
		t.Fatal(err)
	}
	defer first.Release()
	defer second.Release()

	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"rips-2x2", Config{Topo: topo.NewMesh(2, 2), App: queens8()}},
		{"rips-1x2", Config{Topo: topo.NewMesh(1, 2), App: queens8()}},
		{"steal-2x2", Config{Topo: topo.NewMesh(2, 2), App: queens8(), Strategy: Steal}},
		{"rips-tree", Config{Topo: topo.NewTree(3), App: queens8()}},
	} {
		direct := mustRun(t, tc.cfg)
		for name, sub := range map[string]*Pool{"first": first, "second": second} {
			got, err := sub.Run(tc.cfg)
			if err != nil {
				t.Fatalf("%s on %s lease: %v", tc.name, name, err)
			}
			if got.AppResult != direct.AppResult || got.Generated != direct.Generated ||
				got.Executed != direct.Executed || got.VirtualWork != direct.VirtualWork {
				t.Errorf("%s on %s lease: AppResult/Generated/Executed/VirtualWork = %d/%d/%d/%v, direct %d/%d/%d/%v",
					tc.name, name, got.AppResult, got.Generated, got.Executed, got.VirtualWork,
					direct.AppResult, direct.Generated, direct.Executed, direct.VirtualWork)
			}
		}
	}
}

// TestSubPoolsDispatchConcurrently proves two leases really run at the
// same time: the two dispatched bodies rendezvous with each other, so
// the test completes only if neither lease waits for the other to
// finish.
func TestSubPoolsDispatchConcurrently(t *testing.T) {
	pool, err := NewPool(4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	a, err := pool.Split(2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.Split(2)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Release()
	defer b.Release()

	gateA, gateB := make(chan struct{}), make(chan struct{})
	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			a.dispatch(2, func(id int) {
				if id == 0 {
					close(gateA)
					<-gateB
				}
			})
		}()
		go func() {
			defer wg.Done()
			b.dispatch(2, func(id int) {
				if id == 0 {
					close(gateB)
					<-gateA
				}
			})
		}()
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cross-lease rendezvous never completed: sub-pool runs are serialized")
	}
}

// TestSubPoolConcurrentAnswers runs real workloads on two leases at
// once and checks both answers — the multi-tenant serving pattern.
func TestSubPoolConcurrentAnswers(t *testing.T) {
	pool, err := NewPool(4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	a, err := pool.Split(2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.Split(2)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Release()
	defer b.Release()

	var wg sync.WaitGroup
	for _, sub := range []*Pool{a, b} {
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func(sub *Pool) {
				defer wg.Done()
				res, err := sub.Run(Config{Topo: topo.NewMesh(1, 2), App: queens8()})
				if err != nil {
					t.Errorf("sub.Run: %v", err)
					return
				}
				if res.AppResult != 92 {
					t.Errorf("AppResult = %d, want 92", res.AppResult)
				}
			}(sub)
		}
	}
	wg.Wait()
}

// TestSplitCapacity covers the lease ledger: capacity errors, Free
// accounting, Release restoring capacity, and lease lifecycle errors.
func TestSplitCapacity(t *testing.T) {
	pool, err := NewPool(4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	if got := pool.Free(); got != 4 {
		t.Fatalf("fresh pool Free() = %d, want 4", got)
	}
	sub, err := pool.Split(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := pool.Free(); got != 1 {
		t.Errorf("Free() after Split(3) = %d, want 1", got)
	}
	if got := sub.Workers(); got != 3 {
		t.Errorf("sub.Workers() = %d, want 3", got)
	}
	if _, err := pool.Split(2); err == nil || !strings.Contains(err.Error(), "free") {
		t.Errorf("oversubscribed Split err = %v, want free-capacity error", err)
	}
	if _, err := sub.Split(1); err == nil || !strings.Contains(err.Error(), "sub-pool") {
		t.Errorf("Split on a sub-pool err = %v, want refusal", err)
	}

	// A run larger than the lease is refused even though the root could
	// hold it.
	if _, err := sub.Run(Config{Topo: topo.NewMesh(2, 2), App: queens8()}); err == nil ||
		!strings.Contains(err.Error(), "sub-pool has 3") {
		t.Errorf("oversized lease run err = %v, want sub-pool capacity error", err)
	}

	sub.Release()
	sub.Release() // idempotent
	if got := pool.Free(); got != 4 {
		t.Errorf("Free() after Release = %d, want 4", got)
	}
	if _, err := sub.Run(Config{Topo: topo.NewMesh(1, 2), App: queens8()}); err == nil ||
		!strings.Contains(err.Error(), "released") {
		t.Errorf("run on released lease err = %v, want released error", err)
	}
	if err := sub.Resize(2); err == nil || !strings.Contains(err.Error(), "released") {
		t.Errorf("Resize on released lease err = %v, want released error", err)
	}
}

// TestSubPoolResize grows and shrinks a lease against the free set.
func TestSubPoolResize(t *testing.T) {
	pool, err := NewPool(4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	sub, err := pool.Split(1)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Release()

	if err := pool.Resize(2); err == nil || !strings.Contains(err.Error(), "root") {
		t.Errorf("Resize on root err = %v, want refusal", err)
	}
	if err := sub.Resize(4); err != nil {
		t.Fatalf("grow to 4: %v", err)
	}
	if got := pool.Free(); got != 0 {
		t.Errorf("Free() after grow = %d, want 0", got)
	}
	res, err := sub.Run(Config{Topo: topo.NewMesh(2, 2), App: queens8()})
	if err != nil {
		t.Fatal(err)
	}
	checkQueens8(t, res, "grown lease")

	if err := sub.Resize(1); err != nil {
		t.Fatalf("shrink to 1: %v", err)
	}
	if got := pool.Free(); got != 3 {
		t.Errorf("Free() after shrink = %d, want 3", got)
	}
	if err := sub.Resize(5); err == nil || !strings.Contains(err.Error(), "free") {
		t.Errorf("grow beyond free err = %v, want capacity error", err)
	}
	if got := sub.Workers(); got != 1 {
		t.Errorf("failed grow changed the lease: Workers() = %d, want 1", got)
	}
	res, err = sub.Run(Config{Topo: topo.NewMesh(1, 1), App: queens8()})
	if err != nil {
		t.Fatal(err)
	}
	if res.AppResult != 92 {
		t.Errorf("1-worker lease AppResult = %d, want 92", res.AppResult)
	}
}

// TestRootRunWaitsForLeases checks a root Run needs the whole machine:
// it blocks while a lease is out and proceeds once released.
func TestRootRunWaitsForLeases(t *testing.T) {
	pool, err := NewPool(2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	sub, err := pool.Split(1)
	if err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{})
	finished := make(chan Result, 1)
	go func() {
		close(started)
		res, err := pool.Run(Config{Topo: topo.NewMesh(1, 2), App: queens8()})
		if err != nil {
			t.Errorf("root run after release: %v", err)
		}
		finished <- res
	}()
	<-started
	select {
	case <-finished:
		t.Fatal("root Run completed while a lease was outstanding")
	case <-time.After(50 * time.Millisecond):
	}
	sub.Release()
	select {
	case res := <-finished:
		checkQueens8(t, res, "root run after release")
	case <-time.After(30 * time.Second):
		t.Fatal("root Run never proceeded after the lease was released")
	}
}
