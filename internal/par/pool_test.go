package par

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"rips/internal/topo"
)

// TestPoolMatchesRun checks a pool run returns the exact answer and
// task accounting a fresh-goroutine run does, for both strategies and
// for topologies smaller than the pool (surplus workers idle).
func TestPoolMatchesRun(t *testing.T) {
	pool, err := NewPool(8)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"rips-2x2", Config{Topo: topo.NewMesh(2, 2), App: queens8()}},
		{"rips-2x4", Config{Topo: topo.NewMesh(2, 4), App: queens8()}},
		{"steal-2x2", Config{Topo: topo.NewMesh(2, 2), App: queens8(), Strategy: Steal}},
		{"rips-tree", Config{Topo: topo.NewTree(3), App: queens8()}},
	} {
		direct := mustRun(t, tc.cfg)
		pooled, err := pool.Run(tc.cfg)
		if err != nil {
			t.Fatalf("%s: pool.Run: %v", tc.name, err)
		}
		if pooled.AppResult != direct.AppResult {
			t.Errorf("%s: pool AppResult %d, direct %d", tc.name, pooled.AppResult, direct.AppResult)
		}
		if pooled.Generated != direct.Generated || pooled.Executed != direct.Executed {
			t.Errorf("%s: pool generated/executed %d/%d, direct %d/%d",
				tc.name, pooled.Generated, pooled.Executed, direct.Generated, direct.Executed)
		}
		if pooled.VirtualWork != direct.VirtualWork {
			t.Errorf("%s: pool VirtualWork %v, direct %v", tc.name, pooled.VirtualWork, direct.VirtualWork)
		}
		if pooled.Workers != tc.cfg.Topo.Size() {
			t.Errorf("%s: pool result Workers %d, want topology size %d",
				tc.name, pooled.Workers, tc.cfg.Topo.Size())
		}
	}
}

// TestPoolSequentialRuns reuses one pool for many back-to-back runs —
// the serving pattern — and checks every answer.
func TestPoolSequentialRuns(t *testing.T) {
	pool, err := NewPool(4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	for i := 0; i < 5; i++ {
		res, err := pool.Run(Config{Topo: topo.NewMesh(2, 2), App: queens8()})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		checkQueens8(t, res, "pool run")
	}
}

// TestPoolConcurrentCallers fires many goroutines at one pool at once;
// Run serializes them, and every caller still gets the right answer.
func TestPoolConcurrentCallers(t *testing.T) {
	pool, err := NewPool(4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := pool.Run(Config{Topo: topo.NewMesh(2, 2), App: queens8()})
			if err != nil {
				t.Errorf("pool.Run: %v", err)
				return
			}
			if res.AppResult != 92 {
				t.Errorf("AppResult = %d, want 92", res.AppResult)
			}
		}()
	}
	wg.Wait()
}

// TestPoolTooSmall checks the descriptive error when a topology does
// not fit the pool.
func TestPoolTooSmall(t *testing.T) {
	pool, err := NewPool(2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	_, err = pool.Run(Config{Topo: topo.NewMesh(2, 2), App: queens8()})
	if err == nil || !strings.Contains(err.Error(), "needs 4 workers but the pool has 2") {
		t.Fatalf("err = %v, want worker-count mismatch", err)
	}
}

// TestPoolClosed checks Run after Close fails cleanly and double Close
// is a no-op.
func TestPoolClosed(t *testing.T) {
	pool, err := NewPool(2)
	if err != nil {
		t.Fatal(err)
	}
	pool.Close()
	pool.Close()
	_, err = pool.Run(Config{Topo: topo.NewMesh(1, 2), App: queens8()})
	if err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("err = %v, want pool-closed error", err)
	}
}

// TestPoolCancelFreesWorkers cancels a long run on the pool and checks
// the pool is immediately usable for the next run — the "canceled job
// frees pool capacity" property the server relies on.
func TestPoolCancelFreesWorkers(t *testing.T) {
	pool, err := NewPool(4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	cancel := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(cancel)
	}()
	res, err := pool.Run(Config{Topo: topo.NewMesh(2, 2), App: bigQueens(), Cancel: cancel})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled pool run: err = %v, want ErrCanceled", err)
	}
	if !res.Canceled {
		t.Error("Result.Canceled = false")
	}

	next, err := pool.Run(Config{Topo: topo.NewMesh(2, 2), App: queens8()})
	if err != nil {
		t.Fatalf("run after canceled run: %v", err)
	}
	checkQueens8(t, next, "run after cancel")
}

// TestNewPoolRejectsZeroWorkers covers the constructor's validation.
func TestNewPoolRejectsZeroWorkers(t *testing.T) {
	if _, err := NewPool(0); err == nil {
		t.Fatal("NewPool(0) succeeded")
	}
}
