//go:build !ripsperturb

package par

// This file is the default (disabled) half of the schedule-perturbation
// hook; the enabled half lives in perturb_enabled.go behind the
// ripsperturb build tag. The hook exists for the differential tests:
// the phase protocol's correctness must not depend on the incidental
// goroutine interleaving of one machine, so race/stress runs compile
// with -tags ripsperturb to jitter every worker's arrival at the
// scheduling points (barrier entry, ANY initiation, steal attempts)
// and make the race detector visit interleavings a quiet machine never
// produces. Normal builds compile this no-op, which inlines to nothing.

// perturbEnabled reports at compile time whether the hook is active.
const perturbEnabled = false

// perturb is the schedule-perturbation point: worker id and a
// monotonic per-worker point counter select the (deterministic)
// perturbation. Disabled builds do nothing.
func perturb(worker int, point int64) {}
