// Package par is the real-parallel execution backend: it runs the
// unchanged app.App workloads over P worker goroutines on actual
// cores, where the virtual-time simulator (internal/sim + ripsrt)
// runs them one node at a time. The workers are pinned to the nodes
// of a virtual machine topology — worker k plays node k of the mesh,
// tree or hypercube — and execute the paper's phase protocol for
// real:
//
//   - User phases: every worker executes tasks from its own deque,
//     filing spawned children under the configured local policy (Lazy:
//     straight back into the executable deque; Eager: into a staging
//     queue that only a system phase can release).
//   - Transfer detection: the ANY policy is an atomic request word
//     carrying the user-phase index — the first drained worker
//     publishes it (compare-and-swap, so redundant initiators cancel
//     exactly like ripsrt's init broadcast with a phase index), and
//     every other worker honours it after finishing at most one more
//     task. The ALL policy needs no signalling at all: a drained
//     worker simply enters the phase barrier, which by construction
//     completes only when every worker has drained.
//   - System phases: a phase-indexed epoch barrier stops the world;
//     the last worker to arrive becomes the leader, snapshots the
//     per-worker loads, runs the pure planner of the machine topology
//     (mwa.Plan, treewalk.Plan or cubewalk.Plan — the same code the
//     simulator's message-passing phases are validated against) and
//     applies the plan as slice transfers between deques. Conservation
//     and the Theorem 1 balance are invariant-checked on every phase.
//
// The same backend houses a Chase-Lev-style work-stealing strategy
// (Steal) over the identical worker/deque layout, so RIPS versus
// work-stealing is an apples-to-apples wall-clock comparison — the
// benchmark cmd/ripsbench parscale reports both side by side.
//
// Because this backend measures real elapsed time, its files carry
// file-scope wallclock waivers (see the policy in internal/analysis):
// wall-clock reads are the whole point here, while everything the
// answer depends on — the task decomposition — stays deterministic.
// Cross-validation tests prove the solution counts match the
// simulator's and the sequential profile's at every worker count.
package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"rips/internal/app"
	"rips/internal/invariant"
	"rips/internal/metrics"
	"rips/internal/ripsrt"
	"rips/internal/sim"
	"rips/internal/topo"
)

// Strategy selects the scheduling engine run by the workers.
type Strategy int

const (
	// RIPS alternates user phases with stop-the-world system phases
	// running the topology's exact walking algorithm.
	RIPS Strategy = iota
	// Steal is the work-stealing comparator: no phases, idle workers
	// steal from the top of random victims' Chase-Lev deques.
	Steal
	// Hybrid is the hierarchical combination: workers are partitioned
	// into affinity domains (NUMA nodes by default, see Config.Domains);
	// within a domain idle workers steal from their domain-mates'
	// Chase-Lev deques, while the RIPS phase protocol — epoch barrier,
	// leader-run system phases, the unchanged walking-algorithm
	// planners — balances load across domains only.
	Hybrid
)

func (s Strategy) String() string {
	switch s {
	case Steal:
		return "steal"
	case Hybrid:
		return "hybrid"
	}
	return "rips"
}

// DefaultDetectInterval is the base (and floor) of the ANY-policy
// initiation delay: a drained worker waits at least this long for
// another worker to initiate (or for more tasks to be generated)
// before requesting the transfer itself. The real-time analogue of
// ripsrt.DefaultInitBackoff. When Config.DetectInterval is zero the
// wait adapts upward from this base as the per-phase migration yield
// falls (see the adaptive detector in rips.go).
const DefaultDetectInterval = 100 * time.Microsecond

// DefaultParallelApplyMin is the minimum plan cost (tasks moved by one
// system phase) at which the leader fans plan application out to every
// worker instead of applying it alone. Below it, the two extra barrier
// crossings per wave cost more than the saved copying; above it, the
// per-edge task copies run on all P cores concurrently.
const DefaultParallelApplyMin = 256

// Config describes one real-parallel run.
type Config struct {
	// Topo is the virtual machine the workers are pinned to; its Size
	// is the worker count. RIPS requires a mesh, tree or hypercube
	// (the topologies with exact walking algorithms); Steal accepts
	// any topology and uses only its size.
	Topo topo.Topology
	// App is the workload; its Execute runs for real on the workers.
	App app.App
	// Strategy selects RIPS (default), work stealing, or the
	// hierarchical hybrid.
	Strategy Strategy
	// Domains partitions the workers into contiguous affinity domains
	// for the Hybrid strategy: stealing stays within a domain, system
	// phases balance across domains. Zero auto-detects the machine's
	// NUMA domains (internal/affinity; one domain on machines without a
	// visible NUMA topology); an explicit count is clamped to the
	// worker count, and on hypercube machines rounded down to a power
	// of two (the domain-level planner is cubewalk). Under Steal a
	// positive count only classifies steals as intra- versus
	// cross-domain in the Result — victim selection is unchanged.
	// Rejected (when positive) under RIPS, which has no domains.
	Domains int
	// Local and Global select the RIPS transfer policy (ANY-Lazy, the
	// paper's best combination, is the zero value). Ignored by Steal.
	Local  ripsrt.LocalPolicy
	Global ripsrt.GlobalPolicy
	// DetectInterval throttles the ANY detector: a drained worker
	// waits this long before publishing the transfer request, giving
	// busy workers time to spawn more tasks (the wall-clock analogue
	// of ripsrt.Config.InitBackoff). A positive value is a constant
	// override; negative disables the wait. Zero (the default) makes
	// the wait adaptive: it starts at DefaultDetectInterval and scales
	// with an EWMA of tasks moved per system phase, so near-empty
	// phases back off automatically. Only the timing of phases depends
	// on this; the computed answer never does.
	DetectInterval time.Duration
	// ParallelApplyMin is the minimum plan cost (tasks migrated by one
	// system phase) at which the leader fans plan application out to
	// all workers in two-phase waves instead of applying the moves
	// alone. Zero means DefaultParallelApplyMin; negative fans out
	// every plan (stress/benchmark use). Ignored under SerialApply.
	ParallelApplyMin int
	// SerialApply forces the leader to apply every plan alone — the
	// pre-parallel-apply behavior, kept as the benchmark baseline and
	// ablation knob. The computed answer is identical either way.
	SerialApply bool
	// TracePhases records the full per-phase task-total trace in
	// Result.PhaseTotals. Off by default so long runs keep only the
	// bounded count/sum/max summary and stop growing memory per phase.
	TracePhases bool
	// Seed feeds the steal strategy's per-worker victim RNGs. The
	// answer never depends on it; only steal order does.
	Seed int64
	// Cancel, when non-nil, aborts the run once the channel is closed.
	// Workers observe it between task executions and at phase
	// boundaries — a canceled RIPS run stops at the next system phase
	// the epoch barrier opens (within about one DetectInterval, since a
	// drained worker's detector wait is also interrupted), with no
	// worker left parked. The partial Result has Canceled set and
	// conservation unchecked; Run returns it alongside ErrCanceled.
	Cancel <-chan struct{}
	// OnPhase, when non-nil, is called by the RIPS phase leader at the
	// end of every system phase with a snapshot of the phase's outcome.
	// It runs with the world stopped — every other worker is parked in
	// the epoch barrier — so it must not block; hand the value off and
	// return (see metrics.PhaseInfo). Ignored by Steal, which has no
	// phases.
	OnPhase func(metrics.PhaseInfo)
}

func (c *Config) parallelApplyMin() int {
	switch {
	case c.ParallelApplyMin < 0:
		return 0
	case c.ParallelApplyMin == 0:
		return DefaultParallelApplyMin
	default:
		return c.ParallelApplyMin
	}
}

func (c *Config) validate() error {
	if c.Topo == nil {
		return fmt.Errorf("par: Config.Topo is required")
	}
	if c.App == nil {
		return fmt.Errorf("par: Config.App is nil")
	}
	if c.Topo.Size() < 1 {
		return fmt.Errorf("par: empty topology %s", c.Topo.Name())
	}
	if c.Domains < 0 {
		return fmt.Errorf("par: negative Domains %d", c.Domains)
	}
	switch c.Strategy {
	case RIPS:
		if c.Domains > 0 {
			return fmt.Errorf("par: Domains applies to the Hybrid and Steal strategies, not RIPS")
		}
		switch c.Topo.(type) {
		case *topo.Mesh, *topo.Tree, *topo.Hypercube:
		default:
			return fmt.Errorf("par: no system-phase planner for %s", c.Topo.Name())
		}
	case Hybrid:
		switch c.Topo.(type) {
		case *topo.Mesh, *topo.Tree, *topo.Hypercube:
		default:
			return fmt.Errorf("par: no system-phase planner for %s", c.Topo.Name())
		}
	case Steal:
	default:
		return fmt.Errorf("par: unknown strategy %d", int(c.Strategy))
	}
	return nil
}

func (c *Config) detectInterval() time.Duration {
	switch {
	case c.DetectInterval < 0:
		return 0
	case c.DetectInterval == 0:
		return DefaultDetectInterval
	default:
		return c.DetectInterval
	}
}

// Result carries the wall-clock measures of one run — the real-time
// analogues of the paper's T, Th and Ti — plus the task accounting
// shared with the simulator backend.
type Result struct {
	// Workers is the worker count (the topology size).
	Workers int
	// Wall is the elapsed execution time T.
	Wall time.Duration
	// Busy is the total task-execution time summed over workers; the
	// effective parallelism is Busy/Wall.
	Busy time.Duration
	// Overhead is the per-worker scheduling overhead Th. Under RIPS
	// the system phases stop the world, so every worker pays the full
	// stop-the-world time; under Steal it is zero (steal overhead is
	// indistinguishable from idle spinning).
	Overhead time.Duration
	// Idle is the per-worker average idle time Ti, derived as
	// Wall - Overhead - Busy/Workers.
	Idle time.Duration
	// Task accounting, as in ripsrt.Result.
	Generated, Executed, Nonlocal int64
	// Migrated counts task transfers applied by RIPS system phases;
	// Steals counts successful steals of the Steal strategy.
	Migrated, Steals int64
	// Domains is the resolved affinity-domain count of a Hybrid run
	// (also set under Steal when Config.Domains was positive, where it
	// only classifies traffic). Zero when the run had no domain notion.
	Domains int
	// CrossSteals counts steals whose victim lived in another domain.
	// Always zero under Hybrid — stealing is confined to the thief's
	// own domain by construction — and meaningful under Steal with
	// Config.Domains set, where it isolates the cross-domain traffic
	// the hybrid strategy eliminates.
	CrossSteals int64
	// DomainSteals and DomainMigrated break Steals and Migrated down by
	// domain (the thief's domain; the source domain of a migration).
	// DomainSteals is nil when Domains is zero; DomainMigrated is
	// additionally nil under Steal, which has no migrations.
	DomainSteals   []int64
	DomainMigrated []int64
	// Phases is the number of RIPS system phases (0 under Steal), and
	// Waves the number of parallel-apply waves those phases fanned out
	// (0 when every plan was applied serially by the leader).
	Phases, Waves int64
	// PhaseSum and PhaseMax summarize the global task totals observed
	// by the system phases (sum over phases, and the largest single
	// snapshot) without retaining a per-phase trace.
	PhaseSum int64
	PhaseMax int
	// PhaseTotals is the full global task-total trace, one entry per
	// system phase in order. Recorded only under Config.TracePhases;
	// nil otherwise (and always nil under Steal).
	PhaseTotals []int
	// VirtualWork is the summed virtual time reported by Execute — it
	// must equal the sequential profile's Work for any worker count,
	// which cross-validation tests assert.
	VirtualWork sim.Time
	// AppResult is the aggregated app.Counted result (e.g. solutions
	// found); it must match the sequential profile's Result exactly.
	AppResult int64
	// Canceled reports that the run was aborted through Config.Cancel.
	// Every other field then describes only the work completed before
	// the abort: Executed may be less than Generated (the difference is
	// the abandoned tasks) and AppResult is a partial count.
	Canceled bool
}

// Metric names of Result.Metrics, in the order the accessor emits
// them. These are the stable vocabulary of the performance-regression
// harness (internal/perfreg) and its BENCH_lattice.json artifact:
// renaming one is a schema change, so the names live here as constants
// rather than ad-hoc strings at every consumer.
const (
	MetricWallNS     = "wall_ns"
	MetricBusyNS     = "busy_ns"
	MetricOverheadNS = "overhead_ns"
	MetricIdleNS     = "idle_ns"
	MetricGenerated  = "generated"
	MetricExecuted   = "executed"
	MetricNonlocal   = "nonlocal"
	MetricMigrated   = "migrated"
	MetricSteals     = "steals"
	MetricPhases     = "phases"
	MetricWaves      = "waves"
	MetricPhaseSum   = "phase_sum"
	MetricPhaseMax   = "phase_max"
	MetricDomains    = "domains"
	MetricXSteals    = "cross_steals"
)

// Metrics flattens the Result's measures into the stable name → value
// form consumed by the perf-regression harness and trend artifacts.
// Names are the Metric* constants; durations are integer nanoseconds.
// The accessor is the compatibility surface: Result fields may be
// reorganized, but a name emitted here keeps its meaning (and its
// presence) across versions of the rips-lattice artifact schema.
func (r *Result) Metrics() map[string]int64 {
	return map[string]int64{
		MetricWallNS:     int64(r.Wall),
		MetricBusyNS:     int64(r.Busy),
		MetricOverheadNS: int64(r.Overhead),
		MetricIdleNS:     int64(r.Idle),
		MetricGenerated:  r.Generated,
		MetricExecuted:   r.Executed,
		MetricNonlocal:   r.Nonlocal,
		MetricMigrated:   r.Migrated,
		MetricSteals:     r.Steals,
		MetricPhases:     r.Phases,
		MetricWaves:      r.Waves,
		MetricPhaseSum:   r.PhaseSum,
		MetricPhaseMax:   int64(r.PhaseMax),
		MetricDomains:    int64(r.Domains),
		MetricXSteals:    r.CrossSteals,
	}
}

// Run executes the workload on real cores and returns the wall-clock
// measures. The caller controls true hardware parallelism through
// GOMAXPROCS; Run itself never changes it. Each call spawns fresh
// worker goroutines; a long-lived caller multiplexing many runs should
// use a Pool instead.
func Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	return runOn(&cfg, goDriver{})
}

// runOn executes a validated config on the given driver — fresh
// goroutines or a pool's resident workers; the protocol is identical.
func runOn(cfg *Config, d driver) (Result, error) {
	var res Result
	var err error
	switch cfg.Strategy {
	case Steal:
		res, err = runSteal(cfg, d)
	case Hybrid:
		res, err = runHybrid(cfg, d)
	default:
		res, err = runRIPS(cfg, d)
	}
	if err != nil {
		return res, err
	}
	if res.Canceled {
		// The abort abandoned tasks by design: conservation cannot hold
		// and is not checked. The partial result still travels with the
		// error so callers can report progress made.
		return res, ErrCanceled
	}
	invariant.Conserved(int(res.Generated), int(res.Executed), "par: run")
	if res.Executed != res.Generated {
		return res, fmt.Errorf("par: executed %d of %d generated tasks", res.Executed, res.Generated)
	}
	return res, nil
}

// ErrCanceled reports that a run was aborted through Config.Cancel.
// The Result returned alongside it is partial but internally
// consistent: counters cover exactly the work done before the abort.
var ErrCanceled = errors.New("par: run canceled")

// watchCancel mirrors a cancellation channel into an atomic flag the
// workers can poll allocation-free on their hot paths (a channel select
// per task would be far more expensive than a load). The returned stop
// function releases the watcher goroutine; callers defer it so a
// completed run never leaks the watcher.
func watchCancel(ch <-chan struct{}, flag *atomic.Bool) (stop func()) {
	done := make(chan struct{})
	go func() {
		select {
		case <-ch:
			flag.Store(true)
		case <-done:
		}
	}()
	return func() { close(done) }
}

// workerID packs per-worker task IDs into the node-partitioned space
// used by the simulator runtime.
func packID(worker int, seq uint64) uint64 {
	return uint64(worker)<<40 | seq
}

// counters is the per-worker accounting every strategy shares. Each
// worker mutates only its own struct during execution; the barriers
// (RIPS epoch barrier, Steal round barrier) order the final reads.
type counters struct {
	seq       uint64
	generated int64
	executed  int64
	nonlocal  int64
	appResult int64
	vwork     sim.Time
	busy      time.Duration
}

// assemble is the result-assembly step every strategy shares: it sums
// the per-worker counters (shared selects the embedded counters of the
// strategy's worker type) into res and derives the Wall-based
// per-worker averages.
func assemble[W any](res *Result, wall time.Duration, ws []*W, shared func(*W) *counters) {
	for _, w := range ws {
		c := shared(w)
		res.Generated += c.generated
		res.Executed += c.executed
		res.Nonlocal += c.nonlocal
		res.AppResult += c.appResult
		res.VirtualWork += c.vwork
		res.Busy += c.busy
	}
	res.Wall = wall
	idle := wall - res.Overhead - res.Busy/time.Duration(res.Workers)
	if idle < 0 {
		idle = 0
	}
	res.Idle = idle
}
