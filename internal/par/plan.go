package par

import (
	"fmt"

	"rips/internal/sched"
	"rips/internal/sched/cubewalk"
	"rips/internal/sched/mwa"
	"rips/internal/sched/treewalk"
	"rips/internal/topo"
)

// planLoads runs the exact walking algorithm of the machine topology
// over a load snapshot, returning the feasible move list and the
// global task total. These are the same pure planners the simulator's
// message-passing system phases are cross-validated against, so the
// real-parallel backend and the simulator compute identical schedules
// from identical loads.
func planLoads(t topo.Topology, w []int) (sched.Plan, int, error) {
	switch tt := t.(type) {
	case *topo.Mesh:
		r, err := mwa.Plan(tt, w)
		return r.Plan, r.Total, err
	case *topo.Tree:
		r, err := treewalk.Plan(tt, w)
		return r.Plan, r.Total, err
	case *topo.Hypercube:
		r, err := cubewalk.Plan(tt, w)
		return r.Plan, r.Total, err
	default:
		return sched.Plan{}, 0, fmt.Errorf("par: no planner for %s", t.Name())
	}
}
