package par

import (
	"testing"

	"rips/internal/app"
	"rips/internal/apps/nqueens"
	"rips/internal/apps/puzzle"
	"rips/internal/ripsrt"
	"rips/internal/sim"
	"rips/internal/topo"
)

// Cross-validation: the sequential profiler, the virtual-time
// simulator and the real-parallel backend execute the same task
// decomposition, so the application answer (solution counts, optimal
// puzzle bounds), the task totals and the summed virtual work must be
// bit-identical across backends, worker counts and seeds. This is the
// repo's strongest correctness lever: a lost, duplicated or corrupted
// task anywhere in the parallel protocol shows up as a diverging
// count.

type seqTruth struct {
	tasks  int64
	work   sim.Time
	result int64
}

func measure(t *testing.T, a app.App) seqTruth {
	t.Helper()
	p := app.Measure(a)
	return seqTruth{tasks: int64(p.Tasks), work: p.Work, result: p.Result}
}

func checkPar(t *testing.T, label string, res Result, want seqTruth) {
	t.Helper()
	if res.AppResult != want.result {
		t.Errorf("%s: AppResult = %d, want %d", label, res.AppResult, want.result)
	}
	if res.Generated != want.tasks {
		t.Errorf("%s: Generated = %d, want %d tasks", label, res.Generated, want.tasks)
	}
	if res.Executed != want.tasks {
		t.Errorf("%s: Executed = %d, want %d tasks", label, res.Executed, want.tasks)
	}
	if res.VirtualWork != want.work {
		t.Errorf("%s: VirtualWork = %v, want %v", label, res.VirtualWork, want.work)
	}
}

func checkSim(t *testing.T, label string, res ripsrt.Result, want seqTruth) {
	t.Helper()
	if res.AppResult != want.result {
		t.Errorf("%s: AppResult = %d, want %d", label, res.AppResult, want.result)
	}
	if res.Generated != want.tasks {
		t.Errorf("%s: Generated = %d, want %d tasks", label, res.Generated, want.tasks)
	}
	if res.VirtualWork != want.work {
		t.Errorf("%s: VirtualWork = %v, want %v", label, res.VirtualWork, want.work)
	}
}

// crossValidate runs one app through every backend on a spread of
// worker counts and seeds and checks all of them against the
// sequential ground truth.
func crossValidate(t *testing.T, mk func() app.App) {
	want := measure(t, mk())

	for _, mesh := range []*topo.Mesh{topo.NewMesh(1, 2), topo.NewMesh(2, 2), topo.NewMesh(2, 4)} {
		res, err := Run(Config{Topo: mesh, App: mk()})
		if err != nil {
			t.Fatalf("par RIPS on %s: %v", mesh.Name(), err)
		}
		checkPar(t, "par RIPS on "+mesh.Name(), res, want)

		for _, seed := range []int64{1, 7} {
			res, err := Run(Config{Topo: mesh, App: mk(), Strategy: Steal, Seed: seed})
			if err != nil {
				t.Fatalf("par steal on %s: %v", mesh.Name(), err)
			}
			checkPar(t, "par steal on "+mesh.Name(), res, want)
		}
	}

	// The simulator backend, same meshes as the paper's small end.
	for _, mesh := range []*topo.Mesh{topo.NewMesh(2, 2), topo.NewMesh(2, 4)} {
		sres, err := ripsrt.Run(ripsrt.Config{Mesh: mesh, App: mk()})
		if err != nil {
			t.Fatalf("simulator on %s: %v", mesh.Name(), err)
		}
		checkSim(t, "simulator on "+mesh.Name(), sres, want)
	}
}

func TestCrossValidate12Queens(t *testing.T) {
	crossValidate(t, func() app.App { return nqueens.New(12, 4) })
}

func TestCrossValidate13Queens(t *testing.T) {
	if testing.Short() {
		t.Skip("13-Queens cross-validation skipped in -short mode")
	}
	crossValidate(t, func() app.App { return nqueens.New(13, 4) })
}

// TestCrossValidateIDAStar validates the multi-round protocol: IDA*
// runs one globally synchronized round per cost bound, and the number
// of optimal solution paths found in the final round must match
// everywhere. The optimal bound itself is a construction-time property
// (puzzle.New discovers it sequentially), so the assertion that every
// backend executes exactly Rounds() rounds IS the bound agreement.
func TestCrossValidateIDAStar(t *testing.T) {
	if testing.Short() {
		t.Skip("IDA* cross-validation skipped in -short mode")
	}
	cfg1 := puzzle.Configs()[0]
	want := measure(t, cfg1)
	if want.result == 0 {
		t.Fatal("sequential IDA* found no solution paths")
	}

	mesh := topo.NewMesh(2, 2)
	res, err := Run(Config{Topo: mesh, App: cfg1})
	if err != nil {
		t.Fatalf("par RIPS: %v", err)
	}
	checkPar(t, "par RIPS IDA*", res, want)
	// One zero-total phase per round boundary: at least Rounds() phases.
	if res.Phases < int64(cfg1.Rounds()) {
		t.Errorf("par RIPS IDA*: %d phases for %d rounds", res.Phases, cfg1.Rounds())
	}

	sres, err := Run(Config{Topo: topo.NewMesh(2, 4), App: cfg1, Strategy: Steal, Seed: 3})
	if err != nil {
		t.Fatalf("par steal: %v", err)
	}
	checkPar(t, "par steal IDA*", sres, want)

	simres, err := ripsrt.Run(ripsrt.Config{Mesh: mesh, App: cfg1})
	if err != nil {
		t.Fatalf("simulator: %v", err)
	}
	checkSim(t, "simulator IDA*", simres, want)
}
