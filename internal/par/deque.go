package par

import (
	"sync/atomic"

	"rips/internal/task"
)

// deque is a Chase-Lev-style lock-free work-stealing deque (Chase &
// Lev, "Dynamic Circular Work-Stealing Deque", SPAA'05). The owning
// worker pushes and pops at the bottom (LIFO, depth-first order, warm
// caches); thieves steal from the top (FIFO, the oldest — typically
// largest — subtrees), coordinating through a compare-and-swap on the
// top index only. The slots themselves are atomic pointers so the
// implementation is clean under the race detector: a thief may read a
// slot it then fails to claim, and the top CAS alone decides ownership.
//
// The zero value is not usable; construct with newDeque.
type deque struct {
	top    atomic.Int64 // next index to steal; only ever incremented
	bottom atomic.Int64 // next index to push; owner-written
	buf    atomic.Pointer[dequeRing]
}

// dequeRing is one power-of-two circular buffer generation.
type dequeRing struct {
	mask  int64
	slots []atomic.Pointer[task.Task]
}

const minDequeCap = 64

func newRing(capacity int64) *dequeRing {
	return &dequeRing{mask: capacity - 1, slots: make([]atomic.Pointer[task.Task], capacity)}
}

func newDeque() *deque {
	d := &deque{}
	d.buf.Store(newRing(minDequeCap))
	return d
}

// size returns a linearizable-enough estimate of the element count;
// exact when no operations are in flight.
func (d *deque) size() int64 {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return n
}

// push appends t at the bottom. Owner only.
func (d *deque) push(t *task.Task) {
	b := d.bottom.Load()
	tp := d.top.Load()
	r := d.buf.Load()
	if b-tp >= int64(len(r.slots)) {
		r = d.grow(r, tp, b)
	}
	r.slots[b&r.mask].Store(t)
	d.bottom.Store(b + 1)
}

// grow doubles the ring, copying the live window. Owner only; thieves
// concurrently reading the old ring see identical values at identical
// indices, and the top CAS still arbitrates every claim.
func (d *deque) grow(old *dequeRing, tp, b int64) *dequeRing {
	nr := newRing(int64(len(old.slots)) * 2)
	for i := tp; i < b; i++ {
		nr.slots[i&nr.mask].Store(old.slots[i&old.mask].Load())
	}
	d.buf.Store(nr)
	return nr
}

// pop removes and returns the bottom task, or nil when the deque is
// empty. Owner only.
func (d *deque) pop() *task.Task {
	b := d.bottom.Load() - 1
	r := d.buf.Load()
	d.bottom.Store(b)
	tp := d.top.Load()
	if tp > b {
		// Already empty: undo the reservation.
		d.bottom.Store(tp)
		return nil
	}
	t := r.slots[b&r.mask].Load()
	if b > tp {
		return t
	}
	// Exactly one element left: race the thieves for it.
	if !d.top.CompareAndSwap(tp, tp+1) {
		t = nil // a thief won
	}
	d.bottom.Store(tp + 1)
	return t
}

// takeTopInto removes up to len(dst) tasks from the top — the steal
// end, so the oldest and typically largest subtrees leave first — into
// dst, returning the count taken. Quiescent use only: the hybrid
// system phases call it with the world stopped at the epoch barrier,
// so no owner or thief is concurrently operating and the plain
// top-store needs no CAS.
func (d *deque) takeTopInto(dst []*task.Task) int {
	tp := d.top.Load()
	b := d.bottom.Load()
	n := b - tp
	if n <= 0 {
		return 0
	}
	if n > int64(len(dst)) {
		n = int64(len(dst))
	}
	r := d.buf.Load()
	for i := int64(0); i < n; i++ {
		dst[i] = r.slots[(tp+i)&r.mask].Load()
	}
	d.top.Store(tp + n)
	return int(n)
}

// steal removes and returns the top task. A nil task with retry=true
// means a concurrent operation claimed the slot first and the thief
// may try again; retry=false means the deque looked empty.
func (d *deque) steal() (t *task.Task, retry bool) {
	tp := d.top.Load()
	b := d.bottom.Load()
	if tp >= b {
		return nil, false
	}
	r := d.buf.Load()
	t = r.slots[tp&r.mask].Load()
	if !d.top.CompareAndSwap(tp, tp+1) {
		return nil, true
	}
	return t, false
}
