package par

import (
	"errors"
	"testing"

	"rips/internal/topo"
)

func wantIDs(t *testing.T, sub *Pool, want ...int) {
	t.Helper()
	if len(sub.ids) != len(want) {
		t.Fatalf("lease ids = %v, want %v", sub.ids, want)
	}
	for i, id := range want {
		if sub.ids[i] != id {
			t.Fatalf("lease ids = %v, want %v", sub.ids, want)
		}
	}
}

// TestPoolDomainLeasePlacement pins the domain-aware lease placement:
// a lease lands in the tightest single domain that fits it, so small
// jobs stay inside one affinity domain while the free set allows.
func TestPoolDomainLeasePlacement(t *testing.T) {
	pool, err := NewPoolDomains(8, 2) // domains [0,4) and [4,8)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.Domains() != 2 {
		t.Fatalf("Domains() = %d, want 2", pool.Domains())
	}

	// Equal free sets tie toward the lowest domain.
	s1, err := pool.Split(3)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs(t, s1, 0, 1, 2)
	if s1.Domains() != 2 {
		t.Fatalf("sub-pool Domains() = %d, want the root's 2", s1.Domains())
	}

	// Best fit: domain 0's single leftover worker is tighter than
	// domain 1's four, so a 1-worker lease takes it.
	s2, err := pool.Split(1)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs(t, s2, 3)

	// Only domain 1 can hold four workers now.
	s3, err := pool.Split(4)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs(t, s3, 4, 5, 6, 7)

	// Released workers rejoin their domain and placement stays
	// domain-local.
	s3.Release()
	s4, err := pool.Split(2)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs(t, s4, 4, 5)

	s1.Release()
	s2.Release()
	s4.Release()
}

// TestPoolDomainLeaseSpanning covers a lease too big for any single
// domain: whole domains are drained fullest-first and the final
// partial take is best-fit again — deterministic, and still as few
// domains as the free set allows.
func TestPoolDomainLeaseSpanning(t *testing.T) {
	pool, err := NewPoolDomains(8, 4) // domains of 2: {0,1} {2,3} {4,5} {6,7}
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	s1, err := pool.Split(5)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs(t, s1, 0, 1, 2, 3, 4)

	// The remainder of domain 2 is the tightest fit for one worker.
	s2, err := pool.Split(1)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs(t, s2, 5)

	// Capacity refusals are unchanged by the partition.
	if _, err := pool.Split(3); !errors.Is(err, ErrInsufficientWorkers) {
		t.Fatalf("Split(3) with 2 free = %v, want ErrInsufficientWorkers", err)
	}
	s1.Release()
	s2.Release()
}

// TestPoolDomainsResolve pins the constructor's domain resolution:
// plain NewPool is one domain (and so keeps the historical
// lowest-numbered lease order), counts clamp into [1, workers], and
// zero auto-detects the machine.
func TestPoolDomainsResolve(t *testing.T) {
	plain, err := NewPool(4)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if plain.Domains() != 1 {
		t.Fatalf("NewPool Domains() = %d, want 1", plain.Domains())
	}
	sub, err := plain.Split(2)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs(t, sub, 0, 1)
	sub.Release()

	clamped, err := NewPoolDomains(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	defer clamped.Close()
	if clamped.Domains() != 4 {
		t.Fatalf("NewPoolDomains(4, 9).Domains() = %d, want clamped 4", clamped.Domains())
	}

	auto, err := NewPoolDomains(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer auto.Close()
	if d := auto.Domains(); d < 1 || d > 4 {
		t.Fatalf("auto-detected Domains() = %d, want within [1, 4]", d)
	}
}

// TestPoolDomainLeaseRunsHybrid runs the Hybrid strategy on a
// domain-placed lease and checks the answer matches a fresh-goroutine
// run — the serving configuration the partition exists for.
func TestPoolDomainLeaseRunsHybrid(t *testing.T) {
	pool, err := NewPoolDomains(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	sub, err := pool.Split(4)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Release()

	cfg := Config{Topo: topo.NewMesh(2, 2), App: queens8(), Strategy: Hybrid, Domains: 2}
	direct := mustRun(t, cfg)
	pooled, err := sub.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pooled.AppResult != direct.AppResult || pooled.Generated != direct.Generated {
		t.Fatalf("leased hybrid run: result %d tasks %d, direct %d/%d",
			pooled.AppResult, pooled.Generated, direct.AppResult, direct.Generated)
	}
	if pooled.Domains != 2 {
		t.Fatalf("leased hybrid run resolved %d domains, want 2", pooled.Domains)
	}
}
