//ripslint:allow-file wallclock the real-parallel backend measures actual elapsed time by design; scheduling decisions depend only on task counts, never on the clock

package par

import (
	"sync/atomic"
	"time"

	"rips/internal/app"
	"rips/internal/invariant"
	"rips/internal/metrics"
	"rips/internal/ripsrt"
	"rips/internal/sched"
	"rips/internal/task"
)

// ripsWorker is one worker's private state under the RIPS strategy.
// Only its owner touches it during user phases; the epoch barrier
// hands it to the phase protocol during system phases.
type ripsWorker struct {
	counters
	id    int
	rte   task.Queue  // ready to execute
	stage []task.Task // ready to schedule (Eager local policy)

	// scratch collects the children of the task in hand; it is reused
	// across execute calls so the steady-state user phase allocates
	// nothing. emit is the spawn callback bound to scratch once at
	// construction — rebuilding the closure per task would allocate.
	scratch []task.Task
	emit    func(app.Spawn)

	// xbuf is this worker's migration exchange buffer: every system
	// phase stages the tasks this worker exports into disjoint regions
	// of xbuf, reusing the array across phases (ROADMAP "batched
	// migration"). Writers: the owner during the take half (or the
	// leader under serial apply). Readers: each move's destination
	// worker during the push half, ordered by the exchange sub-barrier.
	xbuf []task.Task
}

func (w *ripsWorker) newID() uint64 {
	w.seq++
	return packID(w.id, w.seq)
}

// applyMove is one plan move staged for application: Count tasks from
// worker from to worker to, parked in from's exchange buffer at
// [off, off+count). got is the number actually taken — written by the
// taker, read by the pusher across the exchange sub-barrier.
type applyMove struct {
	from, to, count int
	off             int
	got             int
}

// ripsRun is the shared state of one RIPS-strategy run.
type ripsRun struct {
	cfg     *Config
	n       int
	workers []*ripsWorker
	bar     *epochBarrier

	// req is the ANY detector: the highest user-phase index for which a
	// transfer has been requested (-1 initially). The first drained
	// worker of phase p publishes p with a compare-and-swap — exactly
	// the phase-indexed init broadcast of the simulator runtime, with
	// redundant initiators cancelled by the CAS instead of by message
	// filtering.
	req atomic.Int64

	// beginFn/endFn are the leader callbacks bound once: passing a
	// fresh method value to await on every phase would allocate on the
	// hot path.
	beginFn, endFn func()

	// cancel is the abort flag mirrored from Config.Cancel by a watcher
	// goroutine (see watchCancel); workers poll it between tasks and
	// the leader honours it at the next phase boundary, so the barrier
	// itself never wedges on a canceled run.
	cancel atomic.Bool
	// start anchors the Elapsed field of OnPhase snapshots.
	start time.Time

	// Phase state below is written only inside barrier callbacks (the
	// world is stopped) or read by workers between barriers; the
	// barrier's mutex hand-off orders every access.
	round      int
	done       bool
	stopped    bool // done because of cancellation, not completion
	err        error
	phases     int64
	migrated   int64
	waves      int64
	sysTime    time.Duration
	phaseStart time.Time
	phaseTotal int // global task total snapshotted by the phase in flight
	phaseMoved int // tasks the phase in flight migrates (plan cost)

	// Bounded phase-total summary; the full per-phase trace is recorded
	// only under Config.TracePhases so long runs stop growing memory
	// per phase.
	phaseSum    int64
	phaseMax    int
	phaseTotals []int

	// Reusable system-phase buffers (zero steady-state allocations):
	// loads is the snapshot, avail/pend are wave-partition scratch,
	// moves/waveEnds hold the staged plan.
	loads    []int
	avail    []int
	pend     []int
	moves    []applyMove
	waveEnds []int

	// det is the adaptive ANY detector (see detector.go): leader-written
	// inside the barrier, worker-read during user phases.
	det detector
}

// newRipsRun builds the run state and its workers without starting
// them; benchmarks and phase-level tests drive the returned run
// directly through phaseStep.
func newRipsRun(cfg *Config) *ripsRun {
	n := cfg.Topo.Size()
	r := &ripsRun{
		cfg:     cfg,
		n:       n,
		bar:     newEpochBarrier(n),
		loads:   make([]int, n),
		avail:   make([]int, n),
		pend:    make([]int, n),
		det:     newDetector(cfg),
		workers: make([]*ripsWorker, 0, n),
		start:   time.Now(),
	}
	r.req.Store(-1)
	r.beginFn = r.beginPhase
	r.endFn = r.finishPhase
	for i := 0; i < n; i++ {
		w := &ripsWorker{id: i}
		// The emit closure runs inside every task execution; the traversal
		// cannot follow the application's dynamic call back to it, so it
		// is rooted explicitly.
		//ripslint:hotpath
		w.emit = func(sp app.Spawn) {
			id := w.newID()
			w.scratch = append(w.scratch, task.Task{ID: id, Origin: w.id, Size: sp.Size, Data: sp.Data}) //ripslint:allow hotpath scratch retains its capacity across tasks; steady-state growth is zero and TestSteadyStateZeroAlloc pins it
		}
		r.workers = append(r.workers, w)
	}
	return r
}

func runRIPS(cfg *Config, d driver) (Result, error) {
	r := newRipsRun(cfg)
	r.loadRoots(0)
	if cfg.Cancel != nil {
		stop := watchCancel(cfg.Cancel, &r.cancel)
		defer stop()
	}

	start := time.Now()
	r.start = start
	d.dispatch(r.n, r.workerMain)
	wall := time.Since(start)

	res := Result{
		Workers:     r.n,
		Overhead:    r.sysTime,
		Migrated:    r.migrated,
		Phases:      r.phases,
		Waves:       r.waves,
		PhaseSum:    r.phaseSum,
		PhaseMax:    r.phaseMax,
		PhaseTotals: r.phaseTotals,
		Canceled:    r.stopped,
	}
	assemble(&res, wall, r.workers, func(w *ripsWorker) *counters { return &w.counters })
	return res, r.err
}

// loadRoots stages a round's root tasks: block-distributed apps start
// with each worker owning its slice, all others start at worker 0 and
// let the first system phase spread the work (the paper's SPMD start).
// Called single-threaded (before the workers start) or by the phase
// leader (inside the barrier).
func (r *ripsRun) loadRoots(round int) {
	roots := r.cfg.App.Roots(round)
	if app.RootsDistributed(r.cfg.App) {
		for i, w := range r.workers {
			lo, hi := app.RootBlock(len(roots), r.n, i)
			for _, sp := range roots[lo:hi] {
				w.rte.PushBack(task.Task{ID: w.newID(), Origin: i, Size: sp.Size, Data: sp.Data})
			}
			w.generated += int64(hi - lo)
		}
		return
	}
	w := r.workers[0]
	for _, sp := range roots {
		w.rte.PushBack(task.Task{ID: w.newID(), Origin: 0, Size: sp.Size, Data: sp.Data})
	}
	w.generated += int64(len(roots))
}

// workerMain is one worker's phase loop: a system phase at every
// barrier epoch, then a user phase until the transfer condition fires.
//
//ripslint:hotpath
func (r *ripsRun) workerMain(id int) {
	w := r.workers[id]
	var point int64
	for {
		if !r.phaseStep(w, &point) {
			return
		}
		r.userPhase(w, r.phases-1)
	}
}

// phaseStep runs one complete system phase from w's perspective and
// reports whether the run continues. The phase is a short barrier
// protocol rather than a single leader callback:
//
//  1. every worker collapses its own staged tasks into its RTE queue
//     (in parallel, before the world stops);
//  2. the last arrival becomes the leader and runs beginPhase with the
//     world stopped: snapshot, round detection, planning, and the
//     partition of the move list into two-phase waves;
//  3. for each wave, every worker concurrently takes its outgoing
//     moves into its exchange buffer, crosses the exchange
//     sub-barrier, then concurrently pushes its incoming moves —
//     so plan application runs on all P cores instead of one;
//  4. the final sub-barrier's leader runs finishPhase (invariants,
//     detector adaptation, timing).
//
// Small plans skip step 3 entirely: beginPhase applies them serially
// and the wave list comes back empty (see Config.ParallelApplyMin).
func (r *ripsRun) phaseStep(w *ripsWorker, point *int64) bool {
	// Schedule-perturbation point (no-op unless built with
	// -tags ripsperturb): jitter this worker's barrier arrival so
	// stress runs explore adversarial epoch interleavings.
	*point++
	perturb(w.id, *point)
	// Leftover RTE tasks are rescheduled together with the staged ones
	// (paper Section 2); each worker collapses its own queues.
	w.rte.PushAll(w.stage)
	w.stage = w.stage[:0]
	r.bar.await(r.beginFn)
	if r.done { // leader decision, ordered by the barrier
		return false
	}
	for wv := 0; wv < len(r.waveEnds); wv++ {
		r.applyTake(w, wv)
		*point++
		perturb(w.id, *point)
		r.bar.await(nil) // exchange sub-barrier: all takes land before any push
		r.applyPush(w, wv)
		*point++
		perturb(w.id, *point)
		if wv == len(r.waveEnds)-1 {
			r.bar.await(r.endFn)
		} else {
			r.bar.await(nil) // wave boundary: forwarded tasks are now takeable
		}
	}
	return true
}

// userPhase executes tasks until this phase's transfer condition is
// met. Under ANY a worker holding tasks honours a transfer request
// only after finishing the task in hand — and executes at least one
// task if it has any, which guarantees global progress (every system
// phase is separated by at least one real execution somewhere). A
// drained worker requests the transfer itself after the detector
// interval. Under ALL there is nothing to signal: draining IS the
// local condition, and the epoch barrier completes exactly when every
// worker has drained.
func (r *ripsRun) userPhase(w *ripsWorker, phase int64) {
	executed := false
	for {
		if r.cancel.Load() {
			return // abort: head straight for the phase barrier
		}
		if executed && r.cfg.Global == ripsrt.Any && r.req.Load() >= phase {
			return // someone requested the transfer; one task finished since
		}
		tk, ok := w.rte.PopFront()
		if !ok {
			break // drained: the local condition holds
		}
		r.execute(w, tk)
		executed = true
	}
	if r.cfg.Global == ripsrt.All || r.cancel.Load() {
		return
	}
	r.initiate(w, phase)
}

// initiate publishes the ANY transfer request for this phase, waiting
// the detector interval first so that a momentary drain during the
// initial fan-out does not trigger a storm of nearly-empty phases.
func (r *ripsRun) initiate(w *ripsWorker, phase int64) {
	if r.req.Load() >= phase {
		return
	}
	if d := r.detectWait(); d > 0 {
		// Sleep in slices of at most the base interval, re-checking the
		// abort flag between slices: a canceled run must not sit out the
		// full adaptive backoff (up to 32x base) before its drained
		// workers reach the barrier.
		for d > 0 && !r.cancel.Load() {
			s := d
			if s > DefaultDetectInterval {
				s = DefaultDetectInterval
			}
			//ripslint:allow hotpath a drained worker sleeping out the detector interval is the sanctioned idle wait of the ANY protocol
			time.Sleep(s) //ripslint:allow sleep the (possibly adaptive) detector interval delays the ANY request, mirroring the simulator's InitBackoff; it never changes what is computed
			d -= s
		}
	}
	if r.cancel.Load() {
		return // abort: no point requesting a transfer nobody will serve
	}
	// Perturbation point: delay the request CAS so redundant
	// initiators of the same phase really race each other.
	perturb(w.id, phase)
	for {
		cur := r.req.Load()
		if cur >= phase {
			return // a concurrent initiator won; redundant init cancelled
		}
		if r.req.CompareAndSwap(cur, phase) {
			return
		}
	}
}

// detectWait is the ANY detector wait: the constant Config override
// when set, otherwise the adaptive wait the leader derives from phase
// yield (leader-written inside the barrier, so the read here is
// ordered by the barrier release).
func (r *ripsRun) detectWait() time.Duration {
	return r.det.current()
}

// updateDetector folds the finished phase's migration volume into the
// shared adaptive detector (see detector.go).
func (r *ripsRun) updateDetector() {
	r.det.update(r.phaseMoved, r.n)
}

// execute runs one task for real and files its children per the local
// policy. The children land in the worker's reusable scratch buffer,
// so the steady-state user phase performs no allocations of its own
// (the queue and stage arrays retain their capacity across phases).
func (r *ripsRun) execute(w *ripsWorker, tk task.Task) {
	if tk.Origin != w.id {
		w.nonlocal++
	}
	w.executed++
	w.scratch = w.scratch[:0]
	start := time.Now()
	vw, res := app.ExecuteCount(r.cfg.App, tk.Data, w.emit)
	w.busy += time.Since(start)
	w.vwork += vw
	w.appResult += res
	if len(w.scratch) > 0 {
		w.generated += int64(len(w.scratch))
		if r.cfg.Local == ripsrt.Eager {
			w.stage = append(w.stage, w.scratch...) //ripslint:allow hotpath the stage array retains its capacity across phases; steady-state growth is zero (TestSteadyStateZeroAlloc pins it)
		} else {
			w.rte.PushAll(w.scratch)
		}
	}
}

// beginPhase runs with the world stopped (every worker parked in the
// epoch barrier, stages already collapsed): it snapshots the loads,
// detects round boundaries, runs the pure walking algorithm of the
// machine topology and stages the plan for application. Large plans
// are partitioned into waves for the workers to apply concurrently;
// small ones are applied by the leader on the spot.
//
// It is a hot-path root of its own: the barrier invokes it through a
// pre-bound function value (r.beginFn), which the traversal cannot
// follow past the waived leader() call site in barrier.go.
//
//ripslint:hotpath
func (r *ripsRun) beginPhase() {
	if r.cancel.Load() {
		// Abort, decided by the leader with the world stopped: every
		// worker is parked in this barrier, so setting done here is the
		// "barrier wakeup" — all of them observe it on release and exit
		// together. Nothing is planned or moved; the queues keep the
		// abandoned tasks.
		r.stopped = true
		r.done = true
		return
	}
	r.phaseStart = time.Now()
	r.moves = r.moves[:0]
	r.waveEnds = r.waveEnds[:0]
	r.phaseMoved = 0

	total := 0
	for i, w := range r.workers {
		r.loads[i] = w.rte.Len()
		total += r.loads[i]
	}
	r.phaseTotal = total
	r.phases++
	r.phaseSum += int64(total)
	if total > r.phaseMax {
		r.phaseMax = total
	}
	if r.cfg.TracePhases {
		r.phaseTotals = append(r.phaseTotals, total) //ripslint:allow hotpath opt-in tracing grows the trace by design; steady-state runs keep TracePhases off
	}

	if total == 0 {
		// Zero global total detects the round boundary, exactly like
		// the simulator runtime.
		r.round++
		//ripslint:allow hotpath round boundary (zero global total): one dispatch per round, outside the steady state
		if r.round >= r.cfg.App.Rounds() {
			r.done = true
			r.finishPhase()
			return
		}
		r.loadRoots(r.round) //ripslint:allow hotpath round boundary restaging allocates once per round, outside the steady state
		r.finishPhase()
		return
	}
	if balancedCanonical(r.loads, total) {
		// Theorem 1 already holds at the exact quota positions: there
		// is nothing to plan or move. Skipping the planner keeps
		// balanced steady-state phases allocation-free (the planners
		// build fresh trace vectors on every call).
		r.finishPhase()
		return
	}

	//ripslint:allow hotpath the planners build fresh trace vectors by design; balanced steady-state phases never reach them (balancedCanonical short-circuits above)
	plan, planTotal, err := planLoads(r.cfg.Topo, r.loads)
	if err != nil {
		r.err = err
		r.done = true
		return
	}
	if invariant.Enabled() && planTotal != total {
		invariant.Violated("par: planner saw %d tasks, snapshot had %d", planTotal, total)
	}
	r.phaseMoved = plan.Cost()
	r.migrated += int64(r.phaseMoved)
	r.stageMoves(plan.Moves)

	if r.cfg.SerialApply || r.n == 1 || r.phaseMoved < r.cfg.parallelApplyMin() {
		// Leader-only apply: per the phase-cost model (DESIGN.md §9) a
		// small plan cannot amortize the extra sub-barrier crossings,
		// so the leader applies it alone, move by move in plan order.
		for i := range r.moves {
			mv := &r.moves[i]
			r.takeMove(mv)
			r.pushMove(mv)
		}
		r.moves = r.moves[:0]
		r.finishPhase()
		return
	}
	r.partitionWaves()
	r.waves += int64(len(r.waveEnds))
}

// finishPhase closes the system phase: Theorem 1 and conservation are
// invariant-checked on every real phase, the adaptive detector folds
// in the phase's yield, and the stop-the-world time is charged. It
// runs as the leader callback of the last sub-barrier (or inline from
// beginPhase when no waves were fanned out).
//
//ripslint:hotpath
func (r *ripsRun) finishPhase() {
	if total := r.phaseTotal; total > 0 {
		after := 0
		for i, w := range r.workers {
			after += w.rte.Len()
			invariant.BalancedWithinOne(w.rte.Len(), total, r.n, i, "par: system phase")
		}
		invariant.Conserved(total, after, "par: system phase")
	}
	r.updateDetector()
	r.sysTime += time.Since(r.phaseStart)
	if h := r.cfg.OnPhase; h != nil {
		//ripslint:allow hotpath OnPhase observer contract: the hook runs inside the stopped world and is documented to be allocation-conscious
		h(metrics.PhaseInfo{
			Phase:   r.phases,
			Round:   r.round,
			Tasks:   r.phaseTotal,
			Moved:   r.phaseMoved,
			Elapsed: time.Since(r.start),
		})
	}
}

// balancedCanonical reports whether loads already sit at the exact
// Theorem 1 quota — floor(total/n) everywhere, plus one on the first
// total mod n nodes — the fixed point every walking algorithm drives
// toward.
func balancedCanonical(loads []int, total int) bool {
	n := len(loads)
	lo, rem := total/n, total%n
	for i, x := range loads {
		q := lo
		if i < rem {
			q++
		}
		if x != q {
			return false
		}
	}
	return true
}

// stageMoves turns the plan into applyMoves with disjoint exchange
// regions: each move parks its tasks in the source worker's xbuf at a
// unique offset, and the buffers are grown once and reused across
// phases. avail doubles as per-worker offset scratch here; it is
// re-derived from loads before the wave partition.
func (r *ripsRun) stageMoves(moves []sched.Move) {
	off := r.avail
	for i := range off {
		off[i] = 0
	}
	for _, m := range moves {
		r.moves = append(r.moves, applyMove{from: m.From, to: m.To, count: m.Count, off: off[m.From]}) //ripslint:allow hotpath r.moves retains its capacity across phases; growth amortizes to zero
		off[m.From] += m.Count
	}
	for i, w := range r.workers {
		if need := off[i]; cap(w.xbuf) < need {
			w.xbuf = make([]task.Task, need) //ripslint:allow hotpath exchange buffers grow to the high-water mark once, then are reused every phase
		} else {
			w.xbuf = w.xbuf[:need]
		}
	}
}

// partitionWaves splits the staged moves into two-phase waves: within
// a wave, every take is satisfiable from the wave-start loads, so all
// takes may run concurrently before any push (see partitionInWaves,
// shared with the domain-granular hybrid apply).
func (r *ripsRun) partitionWaves() {
	r.waveEnds = partitionInWaves(r.moves, r.loads, r.avail, r.pend, r.waveEnds)
}

// partitionInWaves partitions moves into contiguous-prefix waves over
// loads, reusing avail/pend as scratch and appending the wave end
// indices to waveEnds (whose backing array amortizes across phases).
// Because the plan is sequentially feasible, the first move after a
// wave boundary is always satisfiable, so every wave makes progress
// and the wave count is bounded by the plan's forwarding depth (at
// most the topology diameter). The node indices in moves address
// whatever entity loads is indexed by: workers under RIPS, domains
// under Hybrid.
func partitionInWaves(moves []applyMove, loads, avail, pend []int, waveEnds []int) []int {
	copy(avail, loads)
	for i := range pend {
		pend[i] = 0
	}
	for i := range moves {
		mv := &moves[i]
		if avail[mv.from] < mv.count {
			// mv forwards tasks still in flight: close the wave (its
			// pushes land at the boundary) and retry in the next one.
			waveEnds = append(waveEnds, i) //ripslint:allow hotpath waveEnds retains its capacity across phases; growth amortizes to zero
			for n := range pend {
				avail[n] += pend[n]
				pend[n] = 0
			}
			if avail[mv.from] < mv.count {
				invariant.Violated("par: move %d->%d x%d infeasible at a wave boundary: plan not sequentially feasible",
					mv.from, mv.to, mv.count)
			}
		}
		avail[mv.from] -= mv.count
		pend[mv.to] += mv.count
	}
	return append(waveEnds, len(moves)) //ripslint:allow hotpath waveEnds retains its capacity across phases; growth amortizes to zero
}

// waveRange returns the [lo, hi) index range of wave wv in r.moves.
func (r *ripsRun) waveRange(wv int) (int, int) {
	return waveBounds(r.waveEnds, wv)
}

// waveBounds returns the [lo, hi) move-index range of wave wv.
func waveBounds(waveEnds []int, wv int) (int, int) {
	lo := 0
	if wv > 0 {
		lo = waveEnds[wv-1]
	}
	return lo, waveEnds[wv]
}

// applyTake is the take half of one wave from w's perspective: w
// extracts every move it sources into its own exchange buffer. Only w
// touches w's queue and buffer here, so all takes run concurrently.
func (r *ripsRun) applyTake(w *ripsWorker, wv int) {
	lo, hi := r.waveRange(wv)
	for i := lo; i < hi; i++ {
		if mv := &r.moves[i]; mv.from == w.id {
			r.takeMove(mv)
		}
	}
}

// applyPush is the push half: w appends every move it receives onto
// its own queue. The exchange sub-barrier ordered every take before
// any push, so the source regions are stable; only w writes w's queue.
func (r *ripsRun) applyPush(w *ripsWorker, wv int) {
	lo, hi := r.waveRange(wv)
	for i := lo; i < hi; i++ {
		if mv := &r.moves[i]; mv.to == w.id {
			r.pushMove(mv)
		}
	}
}

// takeMove extracts one move's tasks into the source's exchange
// region. Taking from the back forwards tasks that just arrived in
// this same phase first, keeping resident tasks home (the locality
// preference of Theorem 2).
func (r *ripsRun) takeMove(mv *applyMove) {
	src := r.workers[mv.from]
	mv.got = src.rte.TakeBackInto(src.xbuf[mv.off : mv.off+mv.count])
	if mv.got != mv.count {
		invariant.Violated("par: worker %d short %d tasks for migration", mv.from, mv.count-mv.got)
	}
}

// pushMove lands one move's tasks on the destination queue and clears
// the exchange region so payload references are not retained across
// the next user phase.
func (r *ripsRun) pushMove(mv *applyMove) {
	seg := r.workers[mv.from].xbuf[mv.off : mv.off+mv.got]
	r.workers[mv.to].rte.PushAll(seg)
	for i := range seg {
		seg[i] = task.Task{}
	}
}
