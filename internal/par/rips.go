//ripslint:allow-file wallclock the real-parallel backend measures actual elapsed time by design; scheduling decisions depend only on task counts, never on the clock

package par

import (
	"sync"
	"sync/atomic"
	"time"

	"rips/internal/app"
	"rips/internal/invariant"
	"rips/internal/ripsrt"
	"rips/internal/task"
)

// ripsWorker is one worker's private state under the RIPS strategy.
// Only its owner touches it during user phases; the epoch barrier
// hands it to the phase leader during system phases.
type ripsWorker struct {
	counters
	id    int
	rte   task.Queue  // ready to execute
	stage []task.Task // ready to schedule (Eager local policy)
}

func (w *ripsWorker) newID() uint64 {
	w.seq++
	return packID(w.id, w.seq)
}

// ripsRun is the shared state of one RIPS-strategy run.
type ripsRun struct {
	cfg     *Config
	n       int
	workers []*ripsWorker
	bar     *epochBarrier

	// req is the ANY detector: the highest epoch index for which a
	// transfer has been requested (-1 initially). The first drained
	// worker of epoch e publishes e with a compare-and-swap — exactly
	// the phase-indexed init broadcast of the simulator runtime, with
	// redundant initiators cancelled by the CAS instead of by message
	// filtering.
	req atomic.Int64

	// Leader-only state, ordered by the epoch barrier.
	round       int
	done        bool
	err         error
	phases      int64
	migrated    int64
	phaseTotals []int
	sysTime     time.Duration
}

func runRIPS(cfg *Config) (Result, error) {
	r := &ripsRun{cfg: cfg, n: cfg.Topo.Size(), bar: newEpochBarrier(cfg.Topo.Size())}
	r.req.Store(-1)
	for i := 0; i < r.n; i++ {
		r.workers = append(r.workers, &ripsWorker{id: i})
	}
	r.loadRoots(0)

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < r.n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r.workerMain(id)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	res := Result{
		Workers:     r.n,
		Overhead:    r.sysTime,
		Migrated:    r.migrated,
		Phases:      r.phases,
		PhaseTotals: r.phaseTotals,
	}
	cs := make([]*counters, r.n)
	for i, w := range r.workers {
		cs[i] = &w.counters
	}
	sumInto(&res, cs)
	derive(&res, wall)
	return res, r.err
}

// loadRoots stages a round's root tasks: block-distributed apps start
// with each worker owning its slice, all others start at worker 0 and
// let the first system phase spread the work (the paper's SPMD start).
// Called single-threaded (before the workers start) or by the phase
// leader (inside the barrier).
func (r *ripsRun) loadRoots(round int) {
	roots := r.cfg.App.Roots(round)
	if app.RootsDistributed(r.cfg.App) {
		for i, w := range r.workers {
			lo, hi := app.RootBlock(len(roots), r.n, i)
			for _, sp := range roots[lo:hi] {
				w.rte.PushBack(task.Task{ID: w.newID(), Origin: i, Size: sp.Size, Data: sp.Data})
			}
			w.generated += int64(hi - lo)
		}
		return
	}
	w := r.workers[0]
	for _, sp := range roots {
		w.rte.PushBack(task.Task{ID: w.newID(), Origin: 0, Size: sp.Size, Data: sp.Data})
	}
	w.generated += int64(len(roots))
}

// workerMain is one worker's phase loop: a system phase at every
// barrier epoch, then a user phase until the transfer condition fires.
func (r *ripsRun) workerMain(id int) {
	w := r.workers[id]
	var point int64
	for {
		// Schedule-perturbation point (no-op unless built with
		// -tags ripsperturb): jitter this worker's barrier arrival so
		// stress runs explore adversarial epoch interleavings.
		point++
		perturb(id, point)
		epoch := r.bar.await(r.systemPhase)
		if r.done { // leader decision, ordered by the barrier
			return
		}
		r.userPhase(w, epoch)
	}
}

// userPhase executes tasks until this epoch's transfer condition is
// met. Under ANY a worker holding tasks honours a transfer request
// only after finishing the task in hand — and executes at least one
// task if it has any, which guarantees global progress (every system
// phase is separated by at least one real execution somewhere). A
// drained worker requests the transfer itself after the detector
// interval. Under ALL there is nothing to signal: draining IS the
// local condition, and the epoch barrier completes exactly when every
// worker has drained.
func (r *ripsRun) userPhase(w *ripsWorker, epoch int64) {
	executed := false
	for {
		if executed && r.cfg.Global == ripsrt.Any && r.req.Load() >= epoch {
			return // someone requested the transfer; one task finished since
		}
		tk, ok := w.rte.PopFront()
		if !ok {
			break // drained: the local condition holds
		}
		r.execute(w, tk)
		executed = true
	}
	if r.cfg.Global == ripsrt.All {
		return
	}
	r.initiate(w, epoch)
}

// initiate publishes the ANY transfer request for this epoch, waiting
// the detector interval first so that a momentary drain during the
// initial fan-out does not trigger a storm of nearly-empty phases.
func (r *ripsRun) initiate(w *ripsWorker, epoch int64) {
	if r.req.Load() >= epoch {
		return
	}
	if d := r.cfg.detectInterval(); d > 0 {
		time.Sleep(d) //ripslint:allow sleep the detector interval delays the ANY request, mirroring the simulator's InitBackoff; it never changes what is computed
	}
	// Perturbation point: delay the request CAS so redundant
	// initiators of the same epoch really race each other.
	perturb(w.id, epoch)
	for {
		cur := r.req.Load()
		if cur >= epoch {
			return // a concurrent initiator won; redundant init cancelled
		}
		if r.req.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// execute runs one task for real and files its children per the local
// policy.
func (r *ripsRun) execute(w *ripsWorker, tk task.Task) {
	if tk.Origin != w.id {
		w.nonlocal++
	}
	w.executed++
	var children []task.Task
	start := time.Now()
	vw, res := app.ExecuteCount(r.cfg.App, tk.Data, func(sp app.Spawn) {
		children = append(children, task.Task{ID: w.newID(), Origin: w.id, Size: sp.Size, Data: sp.Data})
	})
	w.busy += time.Since(start)
	w.vwork += vw
	w.appResult += res
	if len(children) > 0 {
		w.generated += int64(len(children))
		if r.cfg.Local == ripsrt.Eager {
			w.stage = append(w.stage, children...)
		} else {
			w.rte.PushAll(children)
		}
	}
}

// systemPhase runs with the world stopped (inside the epoch barrier):
// it makes every task schedulable, snapshots the loads, runs the pure
// walking algorithm of the machine topology and applies the plan as
// slice transfers between worker deques. A zero global total detects
// the round boundary, exactly like the simulator runtime.
func (r *ripsRun) systemPhase() {
	start := time.Now()
	defer func() { r.sysTime += time.Since(start) }()

	loads := make([]int, r.n)
	total := 0
	for i, w := range r.workers {
		// Leftover RTE tasks are rescheduled together with the staged
		// ones (paper Section 2).
		w.rte.PushAll(w.stage)
		w.stage = w.stage[:0]
		loads[i] = w.rte.Len()
		total += loads[i]
	}
	r.phases++
	r.phaseTotals = append(r.phaseTotals, total)

	if total == 0 {
		r.round++
		if r.round >= r.cfg.App.Rounds() {
			r.done = true
			return
		}
		r.loadRoots(r.round)
		return
	}

	plan, planTotal, err := planLoads(r.cfg.Topo, loads)
	if err != nil {
		r.err = err
		r.done = true
		return
	}
	invariant.Check(planTotal == total, "par: planner saw %d tasks, snapshot had %d", planTotal, total)
	for _, mv := range plan.Moves {
		// Taking from the back forwards tasks that just arrived in this
		// same phase first, keeping resident tasks home (the locality
		// preference of Theorem 2).
		ts := r.workers[mv.From].rte.TakeBack(mv.Count)
		if len(ts) != mv.Count {
			invariant.Violated("par: worker %d short %d tasks for migration", mv.From, mv.Count-len(ts))
		}
		r.workers[mv.To].rte.PushAll(ts)
		r.migrated += int64(mv.Count)
	}

	// Executed Theorem 1 and conservation on every real system phase.
	after := 0
	for i, w := range r.workers {
		after += w.rte.Len()
		invariant.BalancedWithinOne(w.rte.Len(), total, r.n, i, "par: system phase")
	}
	invariant.Conserved(total, after, "par: system phase")
}
