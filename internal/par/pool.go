package par

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Typed pool errors. Callers that branch on why a lease or run was
// refused — the admission arbiter deciding between queueing and
// preemption, tests pinning the contract — match with errors.Is; the
// wrapped messages keep the human-readable detail (sizes, counts).
var (
	// ErrPoolClosed reports an operation on a root pool after Close.
	ErrPoolClosed = errors.New("par: pool is closed")
	// ErrLeaseReleased reports an operation on a sub-pool after Release.
	ErrLeaseReleased = errors.New("par: sub-pool is released")
	// ErrInsufficientWorkers reports a Split or Resize asking for more
	// workers than the root's free set holds. The refusal is immediate —
	// leasing never blocks on capacity — and leaves every lease
	// unchanged.
	ErrInsufficientWorkers = errors.New("par: insufficient free workers")
	// ErrBadLeaseSize reports a Split or Resize asking for fewer than
	// one worker.
	ErrBadLeaseSize = errors.New("par: sub-pool needs at least one worker")
)

// driver abstracts how a run's worker bodies get onto goroutines: the
// default goDriver spawns fresh goroutines per run (the original
// behavior), while a Pool dispatches onto resident workers so a
// long-lived server pays goroutine startup once, not per submission.
// dispatch runs main(0..parties-1) concurrently and returns when every
// body has returned.
type driver interface {
	dispatch(parties int, main func(id int))
}

// goDriver runs each worker body on a fresh goroutine.
type goDriver struct{}

func (goDriver) dispatch(parties int, main func(id int)) {
	var wg sync.WaitGroup
	for i := 0; i < parties; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			main(id)
		}(i)
	}
	wg.Wait()
}

// poolJob is one run handed to a resident worker. rank is the worker's
// role in this particular run — workers whose rank is beyond the run's
// party count sit the run out but still join done, so the dispatcher's
// wait is uniform over every worker it signalled. Ranks are assigned
// per dispatch, which is what lets a sub-pool of arbitrary worker
// indices play nodes 0..parties-1 of a virtual machine.
type poolJob struct {
	rank    int
	parties int
	main    func(id int)
	done    *sync.WaitGroup
}

// Pool is a set of resident worker goroutines that successive runs are
// multiplexed onto — the serving backend's substrate. A root Pool
// (from NewPool) owns the worker goroutines; Split leases disjoint
// subsets of them out as sub-pools, and runs on distinct sub-pools
// execute concurrently — the multi-tenant serving configuration, where
// one machine's cores are carved up among simultaneous jobs. Resize
// grows or shrinks a lease against the root's free set, and Release
// returns the lease.
//
// Run on the root pool acquires every worker — waiting for outstanding
// leases and runs to finish — so the historical one-run-at-a-time
// semantics are unchanged for callers that never Split. Run on a
// sub-pool uses only its leased workers; concurrent runs on one
// sub-pool serialize.
//
// The zero Pool is not usable; construct with NewPool and shut down
// with Close.
type Pool struct {
	root *Pool // nil on a root pool
	ids  []int // worker indices this pool dispatches to (root: all)

	// Root-only: the resident worker goroutines.
	work []chan poolJob
	wg   sync.WaitGroup

	// Root-only: the affinity partition (NewPoolDomains). domOf maps a
	// worker index to its domain; nd is the domain count. A plain
	// NewPool pool is one domain, which makes the domain-aware lease
	// placement degenerate to the historical lowest-numbered order.
	domOf []int
	nd    int

	// Root: guards free and closed; cond signals workers returning to
	// the free set. Sub-pool: serializes Run, Resize and Release, so a
	// lease cannot change shape mid-run.
	mu     sync.Mutex
	cond   *sync.Cond
	free   []int // root only: worker indices not leased and not running
	closed bool  // root: Close called; sub: Release called
}

// NewPool starts workers resident goroutines and returns the root
// pool. The pool is a single affinity domain; use NewPoolDomains to
// make leases respect a domain partition.
func NewPool(workers int) (*Pool, error) {
	return NewPoolDomains(workers, 1)
}

// NewPoolDomains starts a root pool whose workers are partitioned into
// domains contiguous affinity domains (zero auto-detects the machine's,
// any count is clamped into [1, workers]), and whose leases respect the
// partition: Split places a lease inside the fewest domains the free
// set allows, preferring the tightest single domain that fits. A lease
// that fits one domain shares that domain's cache hierarchy, which is
// what makes a sub-pool a sensible substrate for a Hybrid run's
// intra-domain stealing.
func NewPoolDomains(workers, domains int) (*Pool, error) {
	if workers < 1 {
		return nil, fmt.Errorf("par: pool needs at least one worker, got %d", workers)
	}
	nd := resolveDomains(domains, workers, false)
	p := &Pool{
		ids:   make([]int, workers),
		work:  make([]chan poolJob, workers),
		free:  make([]int, workers),
		domOf: workerDomains(domainBlocks(workers, nd), workers),
		nd:    nd,
	}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers; i++ {
		p.ids[i] = i
		p.free[i] = i
		// Buffer one job so the dispatcher never blocks handing out a
		// run: every worker is between jobs whenever its owner
		// dispatches.
		ch := make(chan poolJob, 1)
		p.work[i] = ch
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for job := range ch {
				if job.rank < job.parties {
					job.main(job.rank)
				}
				job.done.Done()
			}
		}()
	}
	return p, nil
}

// Domains returns the root pool's affinity-domain count (1 for a
// NewPool pool). A sub-pool reports its root's partition.
func (p *Pool) Domains() int {
	if p.root != nil {
		return p.root.nd
	}
	return p.nd
}

// Workers returns the pool's worker count: the resident total on a
// root pool, the current lease size on a sub-pool.
func (p *Pool) Workers() int {
	if p.root == nil {
		return len(p.ids)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.ids)
}

// Free returns how many workers are currently leasable: neither leased
// to a sub-pool nor occupied by a root run. A sub-pool cannot lease
// and always reports 0.
func (p *Pool) Free() int {
	if p.root != nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// Split leases n workers out of the root pool's free set as a
// sub-pool. It never blocks: if fewer than n workers are free the
// lease is refused, which is what lets an admission scheduler decide
// to queue or preempt instead of deadlocking on capacity. Runs on
// disjoint sub-pools execute concurrently.
func (p *Pool) Split(n int) (*Pool, error) {
	if p.root != nil {
		return nil, fmt.Errorf("par: Split on a sub-pool; lease from the root pool")
	}
	if n < 1 {
		return nil, fmt.Errorf("%w, got %d", ErrBadLeaseSize, n)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	ids, err := p.takeLocked(n)
	if err != nil {
		return nil, err
	}
	return &Pool{root: p, ids: ids}, nil
}

// Resize grows or shrinks a sub-pool's lease to n workers, taking
// from (or returning to) the root's free set. Like Split it never
// blocks on capacity: growing beyond the free set is an error and the
// lease is unchanged. Resize waits for a run in flight on this
// sub-pool, so a lease never changes shape mid-run.
func (p *Pool) Resize(n int) error {
	if p.root == nil {
		return fmt.Errorf("par: Resize on the root pool; resize sub-pool leases instead")
	}
	if n < 1 {
		return fmt.Errorf("%w, got %d", ErrBadLeaseSize, n)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrLeaseReleased
	}
	switch {
	case n == len(p.ids):
		return nil
	case n < len(p.ids):
		p.root.putBack(p.ids[n:])
		p.ids = p.ids[:n:n]
		return nil
	default:
		p.root.mu.Lock()
		defer p.root.mu.Unlock()
		extra, err := p.root.takeLocked(n - len(p.ids))
		if err != nil {
			return err
		}
		p.ids = append(p.ids, extra...)
		return nil
	}
}

// Release returns a sub-pool's workers to the root's free set and
// marks the lease unusable. It waits for a run in flight on this
// sub-pool to finish; it is idempotent. On a root pool Release is
// Close.
func (p *Pool) Release() {
	if p.root == nil {
		p.Close()
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	p.root.putBack(p.ids)
	p.ids = nil
}

// takeLocked removes n worker indices from the free set; the caller
// holds the root's mu. Placement is domain-aware and deterministic
// given the lease history: the lease lands in the tightest single
// domain whose free workers fit it (fewest free, then lowest domain
// index), and only when no domain fits does it span several — whole
// domains drained fullest-first, the final partial take again
// best-fit. Within a domain the lowest-numbered free workers are
// taken, so a single-domain pool reproduces the historical
// lowest-numbered order exactly.
func (p *Pool) takeLocked(n int) ([]int, error) {
	if len(p.free) < n {
		return nil, fmt.Errorf("%w: want %d but only %d of %d are free", ErrInsufficientWorkers, n, len(p.free), len(p.ids))
	}
	// Free workers grouped by domain; p.free is sorted, so each group
	// is sorted too.
	byDom := make([][]int, p.nd)
	for _, id := range p.free {
		d := p.domOf[id]
		byDom[d] = append(byDom[d], id)
	}
	var ids []int
	takeFrom := func(d, k int) {
		ids = append(ids, byDom[d][:k]...)
		byDom[d] = byDom[d][k:]
	}
	for need := n; need > 0; need = n - len(ids) {
		// Tightest domain that covers the remaining need.
		best := -1
		for d, w := range byDom {
			if len(w) >= need && (best < 0 || len(w) < len(byDom[best])) {
				best = d
			}
		}
		if best >= 0 {
			takeFrom(best, need)
			break
		}
		// No single domain covers it: drain the fullest whole domain
		// (lowest index on ties) and go around again.
		for d, w := range byDom {
			if best < 0 || len(w) > len(byDom[best]) {
				best = d
			}
		}
		takeFrom(best, len(byDom[best]))
	}
	sort.Ints(ids)
	rest := p.free[:0]
	for _, w := range byDom {
		rest = append(rest, w...)
	}
	sort.Ints(rest)
	p.free = rest
	return ids, nil
}

// putBack returns worker indices to the root's free set and wakes
// anyone waiting on capacity (a root Run, or Close).
func (p *Pool) putBack(ids []int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = append(p.free, ids...)
	sort.Ints(p.free)
	p.cond.Broadcast()
}

// dispatch hands one run to every worker this pool owns and waits for
// all of them — including the idle surplus beyond the run's party
// count — to check back in. The caller (Run) has exclusive use of
// p.ids for the duration.
func (p *Pool) dispatch(parties int, main func(id int)) {
	root := p
	if p.root != nil {
		root = p.root
	}
	var done sync.WaitGroup
	done.Add(len(p.ids))
	for rank, id := range p.ids {
		root.work[id] <- poolJob{rank: rank, parties: parties, main: main, done: &done}
	}
	done.Wait()
}

// Run executes one workload on the pool's workers, exactly as Run(cfg)
// would on fresh goroutines — cross-validation tests assert the
// results are identical. On a root pool, Run first acquires every
// worker (concurrent root runs serialize, and a queued caller's Cancel
// is still honored the moment its run starts); on a sub-pool it uses
// the leased workers, so runs on disjoint leases proceed in parallel.
// The topology must fit the pool it runs on.
func (p *Pool) Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if p.root != nil {
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.closed {
			return Result{}, ErrLeaseReleased
		}
		if n := cfg.Topo.Size(); n > len(p.ids) {
			return Result{}, fmt.Errorf("par: config needs %d workers but the sub-pool has %d", n, len(p.ids))
		}
		return runOn(&cfg, p)
	}
	if n := cfg.Topo.Size(); n > len(p.ids) {
		return Result{}, fmt.Errorf("par: config needs %d workers but the pool has %d", n, len(p.ids))
	}
	p.mu.Lock()
	for !p.closed && len(p.free) != len(p.ids) {
		p.cond.Wait()
	}
	if p.closed {
		p.mu.Unlock()
		return Result{}, ErrPoolClosed
	}
	p.free = p.free[:0]
	p.mu.Unlock()
	defer p.putBack(p.ids)
	return runOn(&cfg, p)
}

// Close shuts the resident workers down and waits for them to exit.
// It blocks until every lease is released and any run in flight
// completes; after Close, Run and Split return errors. On a sub-pool
// Close is Release.
func (p *Pool) Close() {
	if p.root != nil {
		p.Release()
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for len(p.free) != len(p.ids) {
		p.cond.Wait()
	}
	for _, ch := range p.work {
		close(ch)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
