package par

import (
	"fmt"
	"sync"
)

// driver abstracts how a run's worker bodies get onto goroutines: the
// default goDriver spawns fresh goroutines per run (the original
// behavior), while a Pool dispatches onto resident workers so a
// long-lived server pays goroutine startup once, not per submission.
// dispatch runs main(0..parties-1) concurrently and returns when every
// body has returned.
type driver interface {
	dispatch(parties int, main func(id int))
}

// goDriver runs each worker body on a fresh goroutine.
type goDriver struct{}

func (goDriver) dispatch(parties int, main func(id int)) {
	var wg sync.WaitGroup
	for i := 0; i < parties; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			main(id)
		}(i)
	}
	wg.Wait()
}

// poolJob is one run handed to every resident worker. Workers whose id
// is beyond the run's party count sit the run out but still join done,
// so the dispatcher's wait is uniform.
type poolJob struct {
	parties int
	main    func(id int)
	done    *sync.WaitGroup
}

// Pool is a set of resident worker goroutines that successive runs are
// multiplexed onto — the serving backend's substrate. A Pool executes
// one run at a time (Run serializes callers); a run may use any
// topology whose size fits the pool, with surplus workers idling for
// its duration.
//
// The zero Pool is not usable; construct with NewPool and release with
// Close.
type Pool struct {
	workers int
	work    []chan poolJob
	wg      sync.WaitGroup

	mu     sync.Mutex // serializes Run; guards closed
	closed bool
}

// NewPool starts workers resident goroutines and returns the pool.
func NewPool(workers int) (*Pool, error) {
	if workers < 1 {
		return nil, fmt.Errorf("par: pool needs at least one worker, got %d", workers)
	}
	p := &Pool{
		workers: workers,
		work:    make([]chan poolJob, workers),
	}
	for i := 0; i < workers; i++ {
		// Buffer one job so the dispatcher never blocks handing out a
		// run: every worker is between jobs whenever dispatch runs.
		ch := make(chan poolJob, 1)
		p.work[i] = ch
		p.wg.Add(1)
		go func(id int) {
			defer p.wg.Done()
			for job := range ch {
				if id < job.parties {
					job.main(id)
				}
				job.done.Done()
			}
		}(i)
	}
	return p, nil
}

// Workers returns the pool's resident worker count.
func (p *Pool) Workers() int { return p.workers }

// dispatch hands one run to every resident worker and waits for all of
// them — including the idle surplus — to check back in. Callers hold
// p.mu (via Run), so at most one job is in flight per worker.
func (p *Pool) dispatch(parties int, main func(id int)) {
	var done sync.WaitGroup
	done.Add(p.workers)
	job := poolJob{parties: parties, main: main, done: &done}
	for _, ch := range p.work {
		ch <- job
	}
	done.Wait()
}

// Run executes one workload on the pool's resident workers, exactly as
// Run(cfg) would on fresh goroutines — cross-validation tests assert
// the results are identical. Concurrent calls serialize: the pool's
// cores run one workload at a time, and a queued caller's Cancel is
// still honored the moment its run starts. The topology must fit the
// pool.
func (p *Pool) Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if n := cfg.Topo.Size(); n > p.workers {
		return Result{}, fmt.Errorf("par: config needs %d workers but the pool has %d", n, p.workers)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return Result{}, fmt.Errorf("par: pool is closed")
	}
	return runOn(&cfg, p)
}

// Close shuts the resident workers down and waits for them to exit.
// It is an error to Close a pool with a run in flight only in the
// sense that Close blocks until that run completes; after Close, Run
// returns an error.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	for _, ch := range p.work {
		close(ch)
	}
	p.wg.Wait()
}
