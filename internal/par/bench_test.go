package par

import (
	"sync"
	"testing"

	"rips/internal/app"
	"rips/internal/sched"
	"rips/internal/sim"
	"rips/internal/task"
	"rips/internal/topo"
)

// benchNode is one task of the synthetic benchmark workload: a node of
// a tree preallocated at construction, walked by pointer. Executing a
// node allocates nothing — the payload interface holds a pointer, so
// no boxing happens on emit.
type benchNode struct {
	children []*benchNode
}

// benchApp is the allocation-free workload behind the par benchmarks
// and the steady-state zero-alloc proof: a uniform tree of depth d and
// fanout f whose Execute only walks preallocated nodes.
type benchApp struct {
	root *benchNode
}

func newBenchApp(depth, fanout int) *benchApp {
	var build func(d int) *benchNode
	build = func(d int) *benchNode {
		n := &benchNode{}
		if d > 0 {
			n.children = make([]*benchNode, fanout)
			for i := range n.children {
				n.children[i] = build(d - 1)
			}
		}
		return n
	}
	return &benchApp{root: build(depth)}
}

func (a *benchApp) Name() string          { return "benchtree" }
func (a *benchApp) Rounds() int           { return 1 }
func (a *benchApp) Roots(int) []app.Spawn { return []app.Spawn{{Data: a.root}} }
func (a *benchApp) Execute(data any, emit func(app.Spawn)) sim.Time {
	for _, c := range data.(*benchNode).children {
		emit(app.Spawn{Data: c})
	}
	return 1
}

// TestSteadyStateZeroAlloc is the zero-allocation contract of the RIPS
// hot path: once the reusable buffers are warm, executing tasks,
// running a balanced system phase, and applying a staged plan through
// the exchange buffers must not allocate at all. The planner itself is
// excluded from the contract (it builds fresh trace vectors per call;
// see DESIGN.md §9) — which is why the balanced fast path matters: it
// is the steady state, and it skips the planner entirely.
func TestSteadyStateZeroAlloc(t *testing.T) {
	t.Run("execute", func(t *testing.T) {
		cfg := Config{Topo: topo.NewMesh(1, 1), App: newBenchApp(1, 8)}
		r := newRipsRun(&cfg)
		w := r.workers[0]
		root := cfg.App.(*benchApp).root
		drain := func() {
			for {
				if _, ok := w.rte.PopFront(); !ok {
					return
				}
			}
		}
		body := func() {
			r.execute(w, task.Task{Origin: 0, Data: root})
			drain()
		}
		body() // warm scratch and queue capacity
		if avg := testing.AllocsPerRun(200, body); avg != 0 {
			t.Errorf("execute hot path allocates %.1f times per task", avg)
		}
	})

	t.Run("balanced-phase", func(t *testing.T) {
		cfg := Config{Topo: topo.NewMesh(2, 2), App: newBenchApp(1, 2)}
		r := newRipsRun(&cfg)
		for _, w := range r.workers {
			for k := 0; k < 8; k++ {
				w.rte.PushBack(task.Task{ID: w.newID(), Origin: w.id})
			}
		}
		body := func() { r.beginPhase() } // balanced: snapshot + invariants, no planner
		body()
		if avg := testing.AllocsPerRun(200, body); avg != 0 {
			t.Errorf("balanced system phase allocates %.1f times per phase", avg)
		}
	})

	t.Run("apply", func(t *testing.T) {
		cfg := Config{Topo: topo.NewMesh(1, 2), App: newBenchApp(1, 2)}
		r := newRipsRun(&cfg)
		const k = 64
		w0 := r.workers[0]
		for i := 0; i < 2*k; i++ {
			w0.rte.PushBack(task.Task{ID: w0.newID(), Origin: 0})
		}
		fwd := []sched.Move{{From: 0, To: 1, Count: k}}
		back := []sched.Move{{From: 1, To: 0, Count: k}}
		apply := func(ms []sched.Move, l0, l1 int) {
			r.loads[0], r.loads[1] = l0, l1
			r.moves = r.moves[:0]
			r.waveEnds = r.waveEnds[:0]
			r.stageMoves(ms)
			r.partitionWaves()
			for wv := 0; wv < len(r.waveEnds); wv++ {
				r.applyTake(r.workers[0], wv)
				r.applyTake(r.workers[1], wv)
				r.applyPush(r.workers[0], wv)
				r.applyPush(r.workers[1], wv)
			}
		}
		body := func() { // ping-pong k tasks so state returns to start
			apply(fwd, 2*k, 0)
			apply(back, k, k)
		}
		body() // warm move list, wave list, exchange buffers, queues
		if avg := testing.AllocsPerRun(100, body); avg != 0 {
			t.Errorf("staged plan application allocates %.1f times per phase", avg)
		}
	})
}

// BenchmarkExecute measures the per-task user-phase cost: run one
// 8-fanout task and pop its children back off the queue.
func BenchmarkExecute(b *testing.B) {
	cfg := Config{Topo: topo.NewMesh(1, 1), App: newBenchApp(1, 8)}
	r := newRipsRun(&cfg)
	w := r.workers[0]
	root := cfg.App.(*benchApp).root
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.execute(w, task.Task{Origin: 0, Data: root})
		for {
			if _, ok := w.rte.PopFront(); !ok {
				break
			}
		}
	}
}

// BenchmarkExchange measures the batched-migration primitive: a
// round trip of 1024 tasks between two queues through a persistent
// exchange buffer (TakeBackInto + PushAll each way).
func BenchmarkExchange(b *testing.B) {
	const k = 1024
	var q0, q1 task.Queue
	for i := 0; i < k; i++ {
		q0.PushBack(task.Task{ID: uint64(i)})
	}
	buf := make([]task.Task, k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := q0.TakeBackInto(buf)
		q1.PushAll(buf[:got])
		got = q1.TakeBackInto(buf)
		q0.PushAll(buf[:got])
	}
}

// BenchmarkSystemPhase measures one full stop-the-world system phase on
// a 16-worker mesh with a heavily skewed load (even workers hold 4096
// tasks, odd workers none), comparing the serial leader-only plan
// application against the waved parallel apply. This is the tentpole's
// headline number; ripsbench parscale -json records it in
// BENCH_par.json alongside the machine's core count.
func BenchmarkSystemPhase(b *testing.B) {
	b.Run("serial", func(b *testing.B) {
		benchmarkSystemPhase(b, Config{SerialApply: true})
	})
	b.Run("parallel", func(b *testing.B) {
		benchmarkSystemPhase(b, Config{ParallelApplyMin: -1})
	})
}

func benchmarkSystemPhase(b *testing.B, cfg Config) {
	cfg.Topo = topo.NewMesh(4, 4)
	cfg.App = newBenchApp(1, 2)
	r := newRipsRun(&cfg)
	const perWorker = 2048
	fill := func() {
		for _, w := range r.workers {
			w.rte.Clear()
			if w.id%2 == 0 {
				for k := 0; k < 2*perWorker; k++ {
					w.rte.PushBack(task.Task{Origin: w.id})
				}
			}
		}
	}
	fill() // pre-grow the queues
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fill()
		b.StartTimer()
		var wg sync.WaitGroup
		for _, w := range r.workers {
			wg.Add(1)
			go func(w *ripsWorker) {
				defer wg.Done()
				var point int64
				r.phaseStep(w, &point)
			}(w)
		}
		wg.Wait()
	}
}
