package mwa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rips/internal/sched"
	"rips/internal/topo"
)

// randomLoad draws a load vector with the given mean, mimicking the
// paper's Figure 4 test set ("the load at each processor is randomly
// generated, with the mean equal to the specified average").
func randomLoad(rng *rand.Rand, n, mean int) []int {
	w := make([]int, n)
	for i := range w {
		w[i] = rng.Intn(2*mean + 1) // uniform [0, 2*mean]
	}
	return w
}

func meshes() []*topo.Mesh {
	return []*topo.Mesh{
		topo.NewMesh(1, 1), topo.NewMesh(1, 8), topo.NewMesh(8, 1),
		topo.NewMesh(2, 2), topo.NewMesh(4, 4), topo.NewMesh(8, 4),
		topo.NewMesh(3, 5), topo.NewMesh(16, 16),
	}
}

// TestTheorem1Balance: after MWA the difference in the number of tasks
// in each processor is at most one, and the final loads are exactly
// the computed quotas.
func TestTheorem1Balance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range meshes() {
		for _, mean := range []int{0, 1, 2, 5, 20, 100} {
			for trial := 0; trial < 20; trial++ {
				w := randomLoad(rng, m.Size(), mean)
				r, err := Plan(m, w)
				if err != nil {
					t.Fatal(err)
				}
				final, err := r.Plan.Apply(m, w)
				if err != nil {
					t.Fatalf("%s mean=%d: infeasible plan: %v", m.Name(), mean, err)
				}
				for id, f := range final {
					if f != r.Quota[id] {
						t.Fatalf("%s mean=%d: node %d final %d, quota %d (w=%v)",
							m.Name(), mean, id, f, r.Quota[id], w)
					}
				}
				if err := sched.CheckBalanced(final); err != nil {
					t.Fatalf("%s mean=%d: %v", m.Name(), mean, err)
				}
			}
		}
	}
}

// nonlocalCount replays a plan with provenance: each forwarding node
// prefers to pass along tasks it received over exporting its own. The
// return value is the number of tasks that left their origin node.
func nonlocalCount(m *topo.Mesh, w []int, p sched.Plan) int {
	home := make([]int, len(w))
	cur := make([]int, len(w))
	copy(home, w)
	copy(cur, w)
	for _, mv := range p.Moves {
		foreign := cur[mv.From] - home[mv.From]
		fromOwn := mv.Count - foreign
		if fromOwn > 0 {
			home[mv.From] -= fromOwn
		}
		cur[mv.From] -= mv.Count
		cur[mv.To] += mv.Count
	}
	total := 0
	for i := range w {
		total += w[i] - home[i]
	}
	return total
}

// TestTheorem2Locality: the number of nonlocal tasks equals the
// Lemma 1 lower bound m when the total divides evenly by N.
func TestTheorem2Locality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, m := range meshes() {
		n := m.Size()
		for trial := 0; trial < 30; trial++ {
			w := randomLoad(rng, n, 10)
			// Adjust to an exactly divisible total.
			for sched.Sum(w)%n != 0 {
				w[rng.Intn(n)]++
			}
			r, err := Plan(m, w)
			if err != nil {
				t.Fatal(err)
			}
			got := nonlocalCount(m, w, r.Plan)
			want := sched.MinNonlocal(w)
			if got != want {
				t.Fatalf("%s: nonlocal = %d, want %d (w=%v)", m.Name(), got, want, w)
			}
		}
	}
}

// TestLocalityNearOptimalWithRemainder: with a remainder the paper
// claims near-optimality; allow at most R extra nonlocal tasks.
func TestLocalityNearOptimalWithRemainder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, m := range meshes() {
		for trial := 0; trial < 30; trial++ {
			w := randomLoad(rng, m.Size(), 7)
			r, err := Plan(m, w)
			if err != nil {
				t.Fatal(err)
			}
			got := nonlocalCount(m, w, r.Plan)
			bound := sched.MinNonlocal(w) + r.Rem
			if got > bound {
				t.Fatalf("%s: nonlocal = %d > bound %d (w=%v)", m.Name(), got, bound, w)
			}
		}
	}
}

func TestStepsBound(t *testing.T) {
	m := topo.NewMesh(8, 4)
	r, err := Plan(m, make([]int, 32))
	if err != nil {
		t.Fatal(err)
	}
	if r.Plan.Steps != 3*(8+4) {
		t.Errorf("Steps = %d, want %d", r.Plan.Steps, 3*12)
	}
}

func TestZeroAndUniformLoads(t *testing.T) {
	m := topo.NewMesh(4, 4)
	r, err := Plan(m, make([]int, 16))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Plan.Moves) != 0 {
		t.Errorf("zero load produced %d moves", len(r.Plan.Moves))
	}
	w := make([]int, 16)
	for i := range w {
		w[i] = 5
	}
	r, err = Plan(m, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Plan.Moves) != 0 {
		t.Errorf("uniform load produced %d moves", len(r.Plan.Moves))
	}
	if r.Avg != 5 || r.Rem != 0 || r.Total != 80 {
		t.Errorf("Avg/Rem/Total = %d/%d/%d", r.Avg, r.Rem, r.Total)
	}
}

func TestSingleNode(t *testing.T) {
	m := topo.NewMesh(1, 1)
	r, err := Plan(m, []int{7})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Plan.Moves) != 0 || r.Quota[0] != 7 {
		t.Errorf("1x1 mesh: %+v", r)
	}
}

func TestAllLoadAtOneCorner(t *testing.T) {
	m := topo.NewMesh(4, 4)
	w := make([]int, 16)
	w[0] = 160
	r, err := Plan(m, w)
	if err != nil {
		t.Fatal(err)
	}
	final, err := r.Plan.Apply(m, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range final {
		if f != 10 {
			t.Fatalf("final = %v", final)
		}
	}
	// Cost lower bound: every task must travel its Manhattan distance
	// from node 0 — 10 tasks to each node.
	wantCost := 0
	for id := 0; id < 16; id++ {
		wantCost += 10 * m.Dist(0, id)
	}
	if got := r.Plan.Cost(); got != wantCost {
		t.Errorf("corner-load cost = %d, want %d (optimal)", got, wantCost)
	}
}

func TestErrorCases(t *testing.T) {
	m := topo.NewMesh(2, 2)
	if _, err := Plan(m, []int{1, 2}); err == nil {
		t.Error("wrong length accepted")
	}
	if _, err := Plan(m, []int{1, -1, 0, 0}); err == nil {
		t.Error("negative load accepted")
	}
}

func TestRemainderQuotaPlacement(t *testing.T) {
	m := topo.NewMesh(2, 2)
	r, err := Plan(m, []int{0, 0, 0, 6})
	if err != nil {
		t.Fatal(err)
	}
	// T=6, N=4: avg=1, R=2 -> nodes 0,1 get 2; nodes 2,3 get 1.
	want := []int{2, 2, 1, 1}
	for i := range want {
		if r.Quota[i] != want[i] {
			t.Fatalf("Quota = %v, want %v", r.Quota, want)
		}
	}
	final, err := r.Plan.Apply(m, []int{0, 0, 0, 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if final[i] != want[i] {
			t.Fatalf("final = %v, want %v", final, want)
		}
	}
}

// TestQuickBalanceProperty fuzzes loads on a fixed mesh via
// testing/quick: any non-negative load must produce a feasible plan
// that lands every node exactly on quota.
func TestQuickBalanceProperty(t *testing.T) {
	m := topo.NewMesh(4, 8)
	f := func(raw [32]uint16) bool {
		w := make([]int, 32)
		for i, x := range raw {
			w[i] = int(x % 500)
		}
		r, err := Plan(m, w)
		if err != nil {
			return false
		}
		final, err := r.Plan.Apply(m, w)
		if err != nil {
			return false
		}
		for id, fv := range final {
			if fv != r.Quota[id] {
				return false
			}
		}
		return sched.CheckBalanced(final) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestVerticalFlowConservation checks the internal D/U vectors against
// the y row flows: each boundary carries exactly |y_i| tasks in the
// right direction.
func TestVerticalFlowConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := topo.NewMesh(6, 5)
	for trial := 0; trial < 50; trial++ {
		w := randomLoad(rng, m.Size(), 9)
		r, err := Plan(m, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < m.Rows()-1; i++ {
			down, up := 0, 0
			for j := 0; j < m.Cols(); j++ {
				down += r.D[i][j]
				up += r.U[i+1][j]
			}
			switch {
			case r.Y[i] > 0 && (down != r.Y[i] || up != 0):
				t.Fatalf("boundary %d: y=%d down=%d up=%d", i, r.Y[i], down, up)
			case r.Y[i] < 0 && (up != -r.Y[i] || down != 0):
				t.Fatalf("boundary %d: y=%d down=%d up=%d", i, r.Y[i], down, up)
			case r.Y[i] == 0 && (down != 0 || up != 0):
				t.Fatalf("boundary %d: y=0 but down=%d up=%d", i, down, up)
			}
		}
		if r.Y[m.Rows()-1] != 0 {
			t.Fatalf("last y = %d, want 0", r.Y[m.Rows()-1])
		}
	}
}
