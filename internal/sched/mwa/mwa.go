// Package mwa implements the paper's central contribution: the Mesh
// Walking Algorithm (Figure 3), a parallel scheduling algorithm for
// n1 x n2 meshes that balances an arbitrary load to within one task in
// 3(n1+n2) communication steps while maximizing locality (Theorems 1
// and 2).
//
// Plan is the pure, sequential emulation of the algorithm: it produces
// the exact per-link task movements every node would perform. The
// message-passing execution inside the RIPS system phase
// (internal/ripsrt) is cross-validated against this plan in tests.
package mwa

import (
	"fmt"

	"rips/internal/invariant"
	"rips/internal/sched"
	"rips/internal/topo"
)

// Result carries the complete outcome of one MWA planning round,
// including the intermediate vectors of Figure 3 for tracing and for
// validating the distributed implementation.
type Result struct {
	// Plan is the feasible ordered move list; applying it to the input
	// load yields Quota at every node.
	Plan sched.Plan
	// Quota is each node's post-balance task count q_ij (row-major).
	Quota []int
	// Avg and Rem are wavg = floor(T/N) and R = T mod N.
	Avg, Rem int
	// Total is T, the machine-wide task count.
	Total int
	// S[i] is row i's task sum; T1[i] the prefix sum t_i; Y[i] the
	// row-boundary flow y_i (positive: row i sends Y[i] tasks down to
	// row i+1; negative: row i receives from row i+1).
	S, T1, Y []int
	// D[i][j] is the number of tasks node (i,j) sends down to (i+1,j);
	// U[i][j] the number it sends up to (i-1,j).
	D, U [][]int
	// H[i][j] is the horizontal flow node (i,j) sends right to (i,j+1)
	// (negative: receives |H| from the right) after vertical moves.
	H [][]int
}

// Plan runs the Mesh Walking Algorithm on load vector w (row-major,
// len = mesh size) and returns the resulting transfer plan. Loads must
// be non-negative.
func Plan(m *topo.Mesh, w []int) (Result, error) {
	n1, n2 := m.Rows(), m.Cols()
	n := m.Size()
	if len(w) != n {
		return Result{}, fmt.Errorf("mwa: %d loads for %dx%d mesh", len(w), n1, n2)
	}
	for i, x := range w {
		if x < 0 {
			return Result{}, fmt.Errorf("mwa: negative load %d at node %d", x, i)
		}
	}

	r := Result{
		S:  make([]int, n1),
		T1: make([]int, n1),
		Y:  make([]int, n1),
	}
	cur := make([]int, n)
	copy(cur, w)

	// Steps 1-2: row sums s_i, prefix sums t_i, total T, wavg and R.
	for i := 0; i < n1; i++ {
		for j := 0; j < n2; j++ {
			r.S[i] += cur[m.ID(i, j)]
		}
		r.T1[i] = r.S[i]
		if i > 0 {
			r.T1[i] += r.T1[i-1]
		}
	}
	r.Total = r.T1[n1-1]
	r.Avg = r.Total / n
	r.Rem = r.Total % n

	// Step 3: per-node quotas q and row-accumulated quotas Q. The
	// first R nodes in row-major order take one extra task.
	r.Quota = make([]int, n)
	for id := 0; id < n; id++ {
		r.Quota[id] = r.Avg
		if id < r.Rem {
			r.Quota[id]++
		}
	}
	Q := make([]int, n1) // Q[i] = total quota of rows 0..i
	for i := 0; i < n1; i++ {
		ri := (i + 1) * n2
		if ri > r.Rem {
			ri = r.Rem
		}
		Q[i] = r.Avg*n2*(i+1) + ri
	}

	// Step 4: vertical balancing. Boundary i (between rows i and i+1)
	// carries y_i = t_i - Q_i tasks downward (upward when negative).
	for i := 0; i < n1; i++ {
		r.Y[i] = r.T1[i] - Q[i]
	}
	r.D = make([][]int, n1)
	r.U = make([][]int, n1)
	for i := 0; i < n1; i++ {
		r.D[i] = make([]int, n2)
		r.U[i] = make([]int, n2)
	}

	var moves []sched.Move
	// Downward pass: rows with y_i > 0 send to row i+1. Top-to-bottom
	// order guarantees a row has already received anything coming from
	// above before it computes its own send vector.
	for i := 0; i < n1-1; i++ {
		if r.Y[i] <= 0 {
			continue
		}
		d := sendVector(cur, r.Quota, m, i, r.Y[i])
		for j := 0; j < n2; j++ {
			if d[j] > 0 {
				r.D[i][j] = d[j]
				cur[m.ID(i, j)] -= d[j]
				cur[m.ID(i+1, j)] += d[j]
				moves = append(moves, sched.Move{From: m.ID(i, j), To: m.ID(i+1, j), Count: d[j]})
			}
		}
	}
	// Upward pass: boundaries with y_i < 0 carry |y_i| from row i+1 up
	// to row i. Bottom-to-top order mirrors the downward pass.
	for i := n1 - 2; i >= 0; i-- {
		if r.Y[i] >= 0 {
			continue
		}
		u := sendVector(cur, r.Quota, m, i+1, -r.Y[i])
		for j := 0; j < n2; j++ {
			if u[j] > 0 {
				r.U[i+1][j] = u[j]
				cur[m.ID(i+1, j)] -= u[j]
				cur[m.ID(i, j)] += u[j]
				moves = append(moves, sched.Move{From: m.ID(i+1, j), To: m.ID(i, j), Count: u[j]})
			}
		}
	}

	// Step 5: horizontal balancing within each row. The boundary
	// between columns j and j+1 carries v_ij = sum_{k<=j}(w_ik - q_ik)
	// rightward (leftward when negative).
	r.H = make([][]int, n1)
	for i := 0; i < n1; i++ {
		r.H[i] = make([]int, n2)
		v := 0
		for j := 0; j < n2-1; j++ {
			v += cur[m.ID(i, j)] - r.Quota[m.ID(i, j)]
			r.H[i][j] = v
		}
		// Rightward flows left-to-right...
		for j := 0; j < n2-1; j++ {
			if f := r.H[i][j]; f > 0 {
				cur[m.ID(i, j)] -= f
				cur[m.ID(i, j+1)] += f
				moves = append(moves, sched.Move{From: m.ID(i, j), To: m.ID(i, j+1), Count: f})
			}
		}
		// ...then leftward flows right-to-left, so every forwarding
		// node has already received what it must pass on.
		for j := n2 - 2; j >= 0; j-- {
			if f := r.H[i][j]; f < 0 {
				cur[m.ID(i, j+1)] += f // f < 0: remove from right node
				cur[m.ID(i, j)] -= f
				moves = append(moves, sched.Move{From: m.ID(i, j+1), To: m.ID(i, j), Count: -f})
			}
		}
	}

	// Executed Theorems 1 and 2: the walk must land every node exactly
	// on its quota while conserving the total.
	if invariant.Enabled() {
		invariant.Conserved(r.Total, sched.Sum(cur), "mwa: plan")
		for id := 0; id < n; id++ {
			invariant.BalancedWithinOne(cur[id], r.Total, n, id, "mwa: plan")
		}
	}

	r.Plan = sched.Plan{Moves: moves, Steps: 3 * (n1 + n2)}
	return r, nil
}

// sendVector computes the per-column export vector of row i (the d or
// u vector of Figure 3): how many of the Y tasks the row must export
// come from each column. The first overloaded columns export, but each
// column first reserves enough surplus to cover the deficits of the
// columns to its left (the gamma term), which is what preserves
// locality — in-row deficits are filled by in-row surplus, never by
// tasks that detour through another row.
func sendVector(cur, quota []int, m *topo.Mesh, i, y int) []int {
	n2 := m.Cols()
	d := make([]int, n2)
	eta, gamma := y, 0
	for k := 0; k < n2; k++ {
		delta := cur[m.ID(i, k)] - quota[m.ID(i, k)]
		switch {
		case delta > eta+gamma:
			d[k] = eta
		case delta > gamma: // and delta <= eta+gamma
			d[k] = delta - gamma
		default:
			d[k] = 0
		}
		gamma -= delta - d[k]
		eta -= d[k]
	}
	if eta != 0 {
		// The row's surplus cannot cover its boundary flow; this would
		// mean t/Q bookkeeping is inconsistent — a programming error.
		invariant.Violated("mwa: row %d export short by %d (y=%d)", i, eta, y)
	}
	return d
}
