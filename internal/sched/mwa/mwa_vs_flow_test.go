package mwa

import (
	"math/rand"
	"testing"

	"rips/internal/sched"
	"rips/internal/sched/flow"
	"rips/internal/topo"
)

// TestLemma2SmallSystemsOptimal: on systems with at most four
// processors MWA minimizes the communication cost (paper Lemma 2).
func TestLemma2SmallSystemsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, m := range []*topo.Mesh{
		topo.NewMesh(1, 2), topo.NewMesh(2, 1),
		topo.NewMesh(2, 2), topo.NewMesh(1, 4), topo.NewMesh(4, 1),
	} {
		for trial := 0; trial < 200; trial++ {
			w := randomLoad(rng, m.Size(), 8)
			// Keep totals divisible so MWA's fixed remainder placement
			// does not penalize it against the free-placement optimum.
			for sched.Sum(w)%m.Size() != 0 {
				w[rng.Intn(m.Size())]++
			}
			r, err := Plan(m, w)
			if err != nil {
				t.Fatal(err)
			}
			opt, err := flow.Cost(m, w)
			if err != nil {
				t.Fatal(err)
			}
			if got := r.Plan.Cost(); got != opt {
				t.Fatalf("%s: MWA cost %d != optimal %d (w=%v)", m.Name(), got, opt, w)
			}
		}
	}
}

// TestMWANeverBeatsOptimal: the flow solution is a true lower bound.
func TestMWANeverBeatsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, m := range []*topo.Mesh{
		topo.NewMesh(4, 4), topo.NewMesh(8, 4), topo.NewMesh(4, 2),
	} {
		for trial := 0; trial < 50; trial++ {
			w := randomLoad(rng, m.Size(), 10)
			r, err := Plan(m, w)
			if err != nil {
				t.Fatal(err)
			}
			opt, err := flow.Cost(m, w)
			if err != nil {
				t.Fatal(err)
			}
			if got := r.Plan.Cost(); got < opt {
				t.Fatalf("%s: MWA cost %d beats 'optimal' %d (w=%v)", m.Name(), got, opt, w)
			}
		}
	}
}

// TestNearOptimalOnSmallMeshes reproduces Figure 4's qualitative
// finding in miniature: on an 8-processor mesh the average normalized
// cost stays within a few percent of optimal.
func TestNearOptimalOnSmallMeshes(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := topo.NewMesh(4, 2)
	var mwaTotal, optTotal int
	for trial := 0; trial < 100; trial++ {
		w := randomLoad(rng, 8, 20)
		r, err := Plan(m, w)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := flow.Cost(m, w)
		if err != nil {
			t.Fatal(err)
		}
		mwaTotal += r.Plan.Cost()
		optTotal += opt
	}
	norm := float64(mwaTotal-optTotal) / float64(optTotal)
	if norm > 0.10 {
		t.Errorf("normalized cost on 8 procs = %.3f, want <= 0.10 (paper Fig 4a shows <9%%)", norm)
	}
}
