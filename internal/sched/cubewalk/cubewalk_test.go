package cubewalk

import (
	"math/rand"
	"testing"

	"rips/internal/sched"
	"rips/internal/sched/dem"
	"rips/internal/sched/flow"
	"rips/internal/topo"
)

func TestExactBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, dim := range []int{0, 1, 2, 3, 4, 5, 6} {
		h := topo.NewHypercube(dim)
		for trial := 0; trial < 20; trial++ {
			w := make([]int, h.Size())
			for i := range w {
				w[i] = rng.Intn(25)
			}
			r, err := Plan(h, w)
			if err != nil {
				t.Fatal(err)
			}
			final, err := r.Plan.Apply(h, w)
			if err != nil {
				t.Fatalf("dim %d: infeasible plan: %v (w=%v)", dim, err, w)
			}
			for id, f := range final {
				if f != r.Quota[id] {
					t.Fatalf("dim %d: node %d got %d, quota %d (w=%v)", dim, id, f, r.Quota[id], w)
				}
			}
			if err := sched.CheckBalanced(final); err != nil {
				t.Fatalf("dim %d: %v", dim, err)
			}
		}
	}
}

// TestBeatsDEMOnBalance: CWA lands exactly on quota where DEM leaves a
// spread up to the dimension — the upgrade over Section 5's prior art.
func TestBeatsDEMOnBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	h := topo.NewHypercube(5)
	demWorse := 0
	for trial := 0; trial < 40; trial++ {
		w := make([]int, 32)
		for i := range w {
			w[i] = rng.Intn(20)
		}
		cr, err := Plan(h, w)
		if err != nil {
			t.Fatal(err)
		}
		dr, err := dem.Plan(h, w)
		if err != nil {
			t.Fatal(err)
		}
		final, err := cr.Plan.Apply(h, w)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := final[0], final[0]
		for _, f := range final {
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
		if hi-lo > 1 {
			t.Fatalf("CWA spread %d", hi-lo)
		}
		if dr.MaxSpread > 1 {
			demWorse++
		}
	}
	if demWorse == 0 {
		t.Error("DEM was never worse than within-one — test instances too easy")
	}
}

// nonlocalCount replays a plan with provenance (forward-received
// tasks are re-exported before resident ones).
func nonlocalCount(w []int, p sched.Plan) int {
	home := append([]int(nil), w...)
	cur := append([]int(nil), w...)
	for _, mv := range p.Moves {
		foreign := cur[mv.From] - home[mv.From]
		if own := mv.Count - foreign; own > 0 {
			home[mv.From] -= own
		}
		cur[mv.From] -= mv.Count
		cur[mv.To] += mv.Count
	}
	total := 0
	for i := range w {
		total += w[i] - home[i]
	}
	return total
}

// TestMaximumLocality: like MWA's Theorem 2, the gamma reservation
// keeps resident tasks home whenever the load divides evenly.
func TestMaximumLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for _, dim := range []int{2, 3, 4, 5} {
		h := topo.NewHypercube(dim)
		n := h.Size()
		for trial := 0; trial < 25; trial++ {
			w := make([]int, n)
			for i := range w {
				w[i] = rng.Intn(12)
			}
			for sched.Sum(w)%n != 0 {
				w[rng.Intn(n)]++
			}
			r, err := Plan(h, w)
			if err != nil {
				t.Fatal(err)
			}
			got := nonlocalCount(w, r.Plan)
			want := sched.MinNonlocal(w)
			if got != want {
				t.Fatalf("dim %d: nonlocal %d, want %d (w=%v)", dim, got, want, w)
			}
		}
	}
}

// TestNearOptimalCost: CWA never beats the min-cost flow and stays
// within a modest factor of it on a 32-node cube.
func TestNearOptimalCost(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	h := topo.NewHypercube(5)
	cwaTotal, optTotal := 0, 0
	for trial := 0; trial < 30; trial++ {
		w := make([]int, 32)
		for i := range w {
			w[i] = rng.Intn(20)
		}
		r, err := Plan(h, w)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := flow.Cost(h, w)
		if err != nil {
			t.Fatal(err)
		}
		if r.Plan.Cost() < opt {
			t.Fatalf("CWA cost %d beats optimal %d (w=%v)", r.Plan.Cost(), opt, w)
		}
		cwaTotal += r.Plan.Cost()
		optTotal += opt
	}
	if float64(cwaTotal) > 1.6*float64(optTotal) {
		t.Errorf("CWA cost %d vs optimal %d — more than 60%% overhead", cwaTotal, optTotal)
	}
}

func TestStepsIsDimension(t *testing.T) {
	h := topo.NewHypercube(4)
	r, err := Plan(h, make([]int, 16))
	if err != nil {
		t.Fatal(err)
	}
	if r.Plan.Steps != 4 {
		t.Errorf("Steps = %d, want 4", r.Plan.Steps)
	}
	if len(r.Plan.Moves) != 0 {
		t.Errorf("empty load moved tasks")
	}
}

func TestErrors(t *testing.T) {
	h := topo.NewHypercube(2)
	if _, err := Plan(h, []int{1}); err == nil {
		t.Error("bad length accepted")
	}
	if _, err := Plan(h, []int{1, -1, 0, 0}); err == nil {
		t.Error("negative load accepted")
	}
}
