// Package cubewalk implements an exact parallel scheduling algorithm
// for hypercubes — the Cube Walking Algorithm — completing the set the
// paper's companion work [32] claims: optimal-quality balancing for
// tree, mesh AND hypercube. Unlike the Dimension Exchange Method
// (internal/sched/dem), which only converges to within the cube
// dimension, CWA lands every node exactly on its quota (balance within
// one task) in d pairwise-exchange steps.
//
// The algorithm is recursive bisection with MWA-style export vectors:
// processing dimensions from highest to lowest, each 2^(k+1)-node
// subcube must hand its bit-k=0 half exactly that half's quota; the
// required flow crosses the dimension-k links, apportioned to the
// individual pairs by the same delta/eta/gamma recurrence as the Mesh
// Walking Algorithm's row exports, which preserves locality: a node
// only exports tasks above its own quota after reserving enough to
// cover the deficits of the pairs ordered before it.
package cubewalk

import (
	"fmt"

	"rips/internal/invariant"
	"rips/internal/sched"
	"rips/internal/topo"
)

// Result reports one CWA planning round.
type Result struct {
	Plan  sched.Plan
	Quota []int
	Avg   int
	Rem   int
	Total int
}

// Plan balances load w on hypercube h exactly to the MWA-style quotas
// (the R = total mod N lowest-numbered nodes take one extra task).
func Plan(h *topo.Hypercube, w []int) (Result, error) {
	n := h.Size()
	if len(w) != n {
		return Result{}, fmt.Errorf("cubewalk: %d loads for %d nodes", len(w), n)
	}
	for i, x := range w {
		if x < 0 {
			return Result{}, fmt.Errorf("cubewalk: negative load %d at node %d", x, i)
		}
	}
	r := Result{Quota: make([]int, n)}
	for _, x := range w {
		r.Total += x
	}
	r.Avg, r.Rem = r.Total/n, r.Total%n
	for i := range r.Quota {
		r.Quota[i] = r.Avg
		if i < r.Rem {
			r.Quota[i]++
		}
	}

	cur := make([]int, n)
	copy(cur, w)
	var moves []sched.Move

	// Process dimensions from highest to lowest: after the dim-k step,
	// every subcube with fixed bits >= k holds exactly its quota sum,
	// so after dim 0 every node is exactly on quota.
	for k := h.Dim() - 1; k >= 0; k-- {
		bit := 1 << k
		group := bit << 1 // subcube size being split at this step
		for base := 0; base < n; base += group {
			// Half A: bit k clear; half B: bit k set. Pairs are
			// (base+p, base+p+bit) for p in [0, bit).
			flowDown := 0 // A's surplus over A's quota, sent A -> B
			for p := 0; p < bit; p++ {
				a := base + p
				flowDown += cur[a] - r.Quota[a]
			}
			// Adjust the flow direction and pick sender/receiver sides.
			from, to := 0, bit
			f := flowDown
			if f < 0 {
				from, to = bit, 0
				f = -f
			}
			if f == 0 {
				continue
			}
			// MWA's export recurrence over the pairs of the sending
			// side, ordered by pair index.
			eta, gamma := f, 0
			for p := 0; p < bit; p++ {
				src := base + p + from
				dst := base + p + to
				delta := cur[src] - r.Quota[src]
				x := 0
				switch {
				case delta > eta+gamma:
					x = eta
				case delta > gamma:
					x = delta - gamma
				}
				gamma -= delta - x
				eta -= x
				if x > 0 {
					moves = append(moves, sched.Move{From: src, To: dst, Count: x})
					cur[src] -= x
					cur[dst] += x
				}
			}
			if eta != 0 {
				// The half's surplus cannot cover its boundary flow:
				// a bookkeeping bug, not a runtime condition.
				invariant.Violated("cubewalk: group %d dim %d short by %d", base, k, eta)
			}
		}
	}

	// Executed Theorem 1: the walk lands every node exactly on quota
	// while conserving the total.
	if invariant.Enabled() {
		invariant.Conserved(r.Total, sched.Sum(cur), "cubewalk: plan")
		for id := 0; id < n; id++ {
			invariant.BalancedWithinOne(cur[id], r.Total, n, id, "cubewalk: plan")
		}
	}

	r.Plan = sched.Plan{Moves: moves, Steps: h.Dim()}
	return r, nil
}
