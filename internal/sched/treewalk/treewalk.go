// Package treewalk implements the Tree Walking Algorithm the paper
// cites as its optimal O(log n) parallel scheduler for tree topologies
// (reference [25], Shu & Wu, ICPP'95). On a tree the per-edge flows of
// a balanced redistribution are forced — each link must carry exactly
// the difference between its subtree's total and its subtree's quota —
// so once the quotas are fixed the algorithm is optimal: no schedule
// can cross tree links fewer times.
//
// The walk is two sweeps: an upward sweep accumulating subtree totals
// (leaves to root, depth communication steps) and a downward sweep
// distributing quotas and moving tasks, for O(depth) = O(log n) total
// steps on a balanced tree.
package treewalk

import (
	"fmt"

	"rips/internal/invariant"
	"rips/internal/sched"
	"rips/internal/topo"
)

// Result reports one TWA planning round.
type Result struct {
	Plan  sched.Plan
	Quota []int
	Avg   int
	Rem   int
	Total int
	// Flow[v] is the signed task flow on the link from v to its
	// parent: positive sends up, negative receives down. Flow[0] = 0.
	Flow []int
}

// Plan balances load w on tree t. Quotas follow the same rule as MWA:
// the R = total mod N lowest-numbered nodes take one extra task.
func Plan(t *topo.Tree, w []int) (Result, error) {
	n := t.Size()
	if len(w) != n {
		return Result{}, fmt.Errorf("treewalk: %d loads for %d nodes", len(w), n)
	}
	for i, x := range w {
		if x < 0 {
			return Result{}, fmt.Errorf("treewalk: negative load %d at node %d", x, i)
		}
	}
	r := Result{Quota: make([]int, n), Flow: make([]int, n)}
	for _, x := range w {
		r.Total += x
	}
	r.Avg, r.Rem = r.Total/n, r.Total%n
	for i := 0; i < n; i++ {
		r.Quota[i] = r.Avg
		if i < r.Rem {
			r.Quota[i]++
		}
	}

	// Upward sweep: subtree totals and quotas. Children have larger
	// ids than parents in heap order, so one reverse scan suffices.
	subTotal := make([]int, n)
	subQuota := make([]int, n)
	for v := n - 1; v >= 0; v-- {
		subTotal[v] += w[v]
		subQuota[v] += r.Quota[v]
		if v > 0 {
			p := t.Parent(v)
			subTotal[p] += subTotal[v]
			subQuota[p] += subQuota[v]
		}
	}

	// Link flows are forced: subtree v must export its surplus.
	for v := 1; v < n; v++ {
		r.Flow[v] = subTotal[v] - subQuota[v]
	}

	var moves []sched.Move
	// Upward moves, deepest first, so a forwarding node has already
	// received from below.
	for v := n - 1; v >= 1; v-- {
		if r.Flow[v] > 0 {
			moves = append(moves, sched.Move{From: v, To: t.Parent(v), Count: r.Flow[v]})
		}
	}
	// Downward moves, shallowest first.
	for v := 1; v < n; v++ {
		if r.Flow[v] < 0 {
			moves = append(moves, sched.Move{From: t.Parent(v), To: v, Count: -r.Flow[v]})
		}
	}

	// Executed Theorem 1 via per-node flow conservation: node v's final
	// load is w[v] minus its up-link flow plus its children's flows,
	// and must equal its quota exactly.
	if invariant.Enabled() {
		in := make([]int, n)
		for v := 1; v < n; v++ {
			in[t.Parent(v)] += r.Flow[v]
		}
		for v := 0; v < n; v++ {
			final := w[v] - r.Flow[v] + in[v]
			invariant.BalancedWithinOne(final, r.Total, n, v, "treewalk: plan")
		}
	}

	depth := 0
	for v := n - 1; v > 0; v = t.Parent(v) {
		depth++
	}
	r.Plan = sched.Plan{Moves: moves, Steps: 2 * depth}
	return r, nil
}
