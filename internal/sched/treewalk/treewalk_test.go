package treewalk

import (
	"math/rand"
	"testing"

	"rips/internal/sched"
	"rips/internal/sched/flow"
	"rips/internal/topo"
)

func TestBalancesToQuota(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{1, 2, 3, 7, 15, 20, 31, 64} {
		tr := topo.NewTree(n)
		for trial := 0; trial < 30; trial++ {
			w := make([]int, n)
			for i := range w {
				w[i] = rng.Intn(17)
			}
			r, err := Plan(tr, w)
			if err != nil {
				t.Fatal(err)
			}
			final, err := r.Plan.Apply(tr, w)
			if err != nil {
				t.Fatalf("tree %d: infeasible plan: %v (w=%v)", n, err, w)
			}
			for id, f := range final {
				if f != r.Quota[id] {
					t.Fatalf("tree %d: node %d final %d, quota %d", n, id, f, r.Quota[id])
				}
			}
			if err := sched.CheckBalanced(final); err != nil {
				t.Fatalf("tree %d: %v", n, err)
			}
		}
	}
}

// TestOptimalWhenDivisible: tree link flows are forced, so with R=0 the
// TWA cost must equal the min-cost-flow optimum.
func TestOptimalWhenDivisible(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, n := range []int{7, 15, 20} {
		tr := topo.NewTree(n)
		for trial := 0; trial < 30; trial++ {
			w := make([]int, n)
			for i := range w {
				w[i] = rng.Intn(11)
			}
			for sched.Sum(w)%n != 0 {
				w[rng.Intn(n)]++
			}
			r, err := Plan(tr, w)
			if err != nil {
				t.Fatal(err)
			}
			opt, err := flow.Cost(tr, w)
			if err != nil {
				t.Fatal(err)
			}
			if got := r.Plan.Cost(); got != opt {
				t.Fatalf("tree %d: TWA cost %d != optimal %d (w=%v)", n, got, opt, w)
			}
		}
	}
}

func TestFlowConservation(t *testing.T) {
	tr := topo.NewTree(7)
	w := []int{0, 14, 0, 0, 0, 0, 0}
	r, err := Plan(tr, w)
	if err != nil {
		t.Fatal(err)
	}
	// Node 1's subtree (1,3,4) holds 14, quota 6 -> sends 8 up.
	if r.Flow[1] != 8 {
		t.Errorf("Flow[1] = %d, want 8", r.Flow[1])
	}
	// Node 2's subtree (2,5,6) holds 0, quota 6 -> receives 6.
	if r.Flow[2] != -6 {
		t.Errorf("Flow[2] = %d, want -6", r.Flow[2])
	}
	if r.Flow[0] != 0 {
		t.Errorf("Flow[0] = %d, want 0", r.Flow[0])
	}
}

func TestErrors(t *testing.T) {
	tr := topo.NewTree(3)
	if _, err := Plan(tr, []int{1}); err == nil {
		t.Error("wrong length accepted")
	}
	if _, err := Plan(tr, []int{1, -1, 0}); err == nil {
		t.Error("negative load accepted")
	}
}

func TestStepsLogarithmic(t *testing.T) {
	tr := topo.NewTree(31) // complete depth-4 tree
	r, err := Plan(tr, make([]int, 31))
	if err != nil {
		t.Fatal(err)
	}
	if r.Plan.Steps != 8 {
		t.Errorf("Steps = %d, want 8 (2x depth)", r.Plan.Steps)
	}
}
