// Package sched defines the common vocabulary of the parallel
// scheduling algorithms: a Plan of bulk task movements along machine
// links, plus helpers to apply and verify plans. The algorithms
// themselves live in the subpackages mwa (the paper's Mesh Walking
// Algorithm), flow (the optimal min-cost max-flow reference), treewalk
// (tree topologies) and dem (hypercube dimension exchange).
package sched

import (
	"fmt"

	"rips/internal/topo"
)

// Move directs Count tasks from node From to node To. In all the
// algorithms here, From and To are adjacent in the machine topology; a
// task travelling far crosses several Moves, matching the paper's cost
// objective of minimizing the per-edge transfer sum ∑e_k.
type Move struct {
	From, To int
	Count    int
}

// Plan is an ordered sequence of Moves. Order matters: a node may only
// forward tasks it has already received, so plans must be applied (and
// are generated) in a feasible order.
type Plan struct {
	Moves []Move
	// Steps is the number of communication steps the generating
	// algorithm would take on the real machine (e.g. 3(n1+n2) for
	// MWA); informational.
	Steps int
}

// Cost returns the total per-edge transfer count ∑e_k — the objective
// function of the paper's Section 3.
func (p Plan) Cost() int {
	c := 0
	for _, m := range p.Moves {
		c += m.Count
	}
	return c
}

// Apply plays the plan against the load vector w, returning the final
// loads. It fails if a move has a nonpositive count, references an
// invalid node, moves between non-adjacent nodes, or would drive a
// node's load negative (i.e. the plan is infeasible in that order).
func (p Plan) Apply(t topo.Topology, w []int) ([]int, error) {
	if len(w) != t.Size() {
		return nil, fmt.Errorf("sched: %d loads for %d nodes", len(w), t.Size())
	}
	out := make([]int, len(w))
	copy(out, w)
	for i, m := range p.Moves {
		if m.Count <= 0 {
			return nil, fmt.Errorf("sched: move %d has count %d", i, m.Count)
		}
		if err := topo.Validate(t, m.From); err != nil {
			return nil, err
		}
		if err := topo.Validate(t, m.To); err != nil {
			return nil, err
		}
		if !topo.IsNeighbor(t, m.From, m.To) {
			return nil, fmt.Errorf("sched: move %d: %d and %d not adjacent in %s", i, m.From, m.To, t.Name())
		}
		out[m.From] -= m.Count
		if out[m.From] < 0 {
			return nil, fmt.Errorf("sched: move %d drives node %d to %d tasks", i, m.From, out[m.From])
		}
		out[m.To] += m.Count
	}
	return out, nil
}

// CheckBalanced verifies that loads differ by at most one and that
// exactly the R = total mod N largest quotas are assigned, i.e. every
// value is floor(avg) or ceil(avg). It returns an error naming the
// first offending node.
func CheckBalanced(w []int) error {
	n := len(w)
	if n == 0 {
		return nil
	}
	total := 0
	for _, x := range w {
		total += x
	}
	lo := total / n
	hi := lo
	if total%n != 0 {
		hi = lo + 1
	}
	for i, x := range w {
		if x != lo && x != hi {
			return fmt.Errorf("sched: node %d has %d tasks, want %d or %d", i, x, lo, hi)
		}
	}
	return nil
}

// MinNonlocal returns the minimum possible number of nonlocal tasks to
// reach a balanced load (the paper's Lemma 1): the sum of deficits of
// all under-average nodes. When total is not divisible by N it uses
// floor(avg) as every node's entitlement, the natural generalization.
func MinNonlocal(w []int) int {
	n := len(w)
	if n == 0 {
		return 0
	}
	total := 0
	for _, x := range w {
		total += x
	}
	avg := total / n
	m := 0
	for _, x := range w {
		if x < avg {
			m += avg - x
		}
	}
	return m
}

// Sum returns the total load.
func Sum(w []int) int {
	t := 0
	for _, x := range w {
		t += x
	}
	return t
}
