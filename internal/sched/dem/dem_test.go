package dem

import (
	"math/rand"
	"testing"

	"rips/internal/sched"
	"rips/internal/sched/flow"
	"rips/internal/sched/mwa"
	"rips/internal/topo"
)

func TestSpreadBoundedByDimension(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, dim := range []int{0, 1, 2, 3, 4, 5, 6} {
		h := topo.NewHypercube(dim)
		for trial := 0; trial < 30; trial++ {
			w := make([]int, h.Size())
			for i := range w {
				w[i] = rng.Intn(50)
			}
			r, err := Plan(h, w)
			if err != nil {
				t.Fatal(err)
			}
			if r.MaxSpread > dim && r.MaxSpread > 1 {
				t.Fatalf("dim %d: spread %d exceeds dimension bound", dim, r.MaxSpread)
			}
			final, err := r.Plan.Apply(h, w)
			if err != nil {
				t.Fatalf("dim %d: infeasible plan: %v", dim, err)
			}
			for i := range final {
				if final[i] != r.Final[i] {
					t.Fatalf("dim %d: Final mismatch at %d", dim, i)
				}
			}
			if got := sched.Sum(final); got != sched.Sum(w) {
				t.Fatalf("dim %d: tasks not conserved", dim)
			}
		}
	}
}

func TestExactOnUniform(t *testing.T) {
	h := topo.NewHypercube(4)
	w := make([]int, 16)
	for i := range w {
		w[i] = 9
	}
	r, err := Plan(h, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Plan.Moves) != 0 || r.MaxSpread != 0 {
		t.Errorf("uniform load moved tasks: %+v", r)
	}
}

func TestPowerOfTwoLoadPerfect(t *testing.T) {
	// All load at node 0, total divisible by N: DEM halves perfectly.
	h := topo.NewHypercube(3)
	w := make([]int, 8)
	w[0] = 64
	r, err := Plan(h, w)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxSpread != 0 {
		t.Errorf("spread = %d, want 0", r.MaxSpread)
	}
	for _, f := range r.Final {
		if f != 8 {
			t.Fatalf("final = %v", r.Final)
		}
	}
}

// TestRedundantCommunication reproduces the paper's Section 5 claim:
// DEM moves more tasks than the optimal schedule on average.
func TestRedundantCommunication(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := topo.NewHypercube(4)
	demTotal, optTotal := 0, 0
	for trial := 0; trial < 50; trial++ {
		w := make([]int, 16)
		for i := range w {
			w[i] = rng.Intn(30)
		}
		r, err := Plan(h, w)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := flow.Cost(h, w)
		if err != nil {
			t.Fatal(err)
		}
		demTotal += r.Plan.Cost()
		optTotal += opt
	}
	if demTotal <= optTotal {
		t.Errorf("DEM cost %d not above optimal %d — expected redundant communication", demTotal, optTotal)
	}
}

func TestErrors(t *testing.T) {
	h := topo.NewHypercube(2)
	if _, err := Plan(h, []int{1}); err == nil {
		t.Error("wrong length accepted")
	}
	if _, err := Plan(h, []int{1, -1, 0, 0}); err == nil {
		t.Error("negative load accepted")
	}
}

func TestSingleNodeCube(t *testing.T) {
	h := topo.NewHypercube(0)
	r, err := Plan(h, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Plan.Moves) != 0 || r.Final[0] != 5 {
		t.Errorf("0-cube: %+v", r)
	}
}

func TestMeshPlanConvergesAndConserves(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, m := range []*topo.Mesh{topo.NewMesh(4, 4), topo.NewMesh(8, 4), topo.NewMesh(1, 6)} {
		for trial := 0; trial < 15; trial++ {
			w := make([]int, m.Size())
			for i := range w {
				w[i] = rng.Intn(40)
			}
			r, err := MeshPlan(m, w, 200)
			if err != nil {
				t.Fatal(err)
			}
			final, err := r.Plan.Apply(m, w)
			if err != nil {
				t.Fatalf("%s: infeasible plan: %v", m.Name(), err)
			}
			for i := range final {
				if final[i] != r.Final[i] {
					t.Fatalf("%s: Final mismatch at %d", m.Name(), i)
				}
			}
			if got := sched.Sum(final); got != sched.Sum(w) {
				t.Fatalf("%s: tasks not conserved", m.Name())
			}
			// Odd-even diffusion stalls once every adjacent pair is
			// within one task — a "staircase" whose end-to-end spread
			// is bounded by the mesh diameter, never by one. (This is
			// exactly why the paper contrasts DEM with MWA.)
			if r.MaxSpread > topo.Diameter(m) {
				t.Errorf("%s: spread %d exceeds diameter (w=%v)", m.Name(), r.MaxSpread, w)
			}
		}
	}
}

// TestMeshDEMRedundantVsOptimal reproduces Section 5's claim on the
// mesh embedding: DEM moves more task-links than the optimal schedule
// needs — despite not even balancing exactly (its targets are looser
// than the optimum's, which makes the excess an underestimate).
func TestMeshDEMRedundantVsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	m := topo.NewMesh(8, 4)
	demCost, optCost := 0, 0
	for trial := 0; trial < 30; trial++ {
		w := make([]int, 32)
		for i := range w {
			w[i] = rng.Intn(30)
		}
		dr, err := MeshPlan(m, w, 200)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := flow.Cost(m, w)
		if err != nil {
			t.Fatal(err)
		}
		demCost += dr.Plan.Cost()
		optCost += opt
	}
	if demCost <= optCost {
		t.Errorf("mesh-DEM cost %d <= optimal %d — expected redundant communication", demCost, optCost)
	}

	// On a concentrated load, diffusion needs many sweeps where MWA's
	// step count is fixed at 3(n1+n2).
	w := make([]int, 32)
	w[0] = 320
	dr, err := MeshPlan(m, w, 200)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := mwa.Plan(m, w)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Plan.Steps <= mr.Plan.Steps {
		t.Errorf("corner load: mesh-DEM steps %d <= MWA's %d", dr.Plan.Steps, mr.Plan.Steps)
	}
	// Note DEM's cost can be lower here precisely because it does not
	// finish the job: it stops within-2 of balance while MWA delivers
	// the exact quota everywhere.
	if dr.MaxSpread < 1 {
		t.Errorf("corner load: mesh-DEM reached exact balance (spread %d) — unexpected", dr.MaxSpread)
	}
}

func TestMeshPlanErrors(t *testing.T) {
	m := topo.NewMesh(2, 2)
	if _, err := MeshPlan(m, []int{1}, 10); err == nil {
		t.Error("bad length accepted")
	}
	if _, err := MeshPlan(m, []int{1, -1, 0, 0}, 10); err == nil {
		t.Error("negative load accepted")
	}
	if _, err := MeshPlan(m, []int{1, 1, 1, 1}, 0); err == nil {
		t.Error("zero sweeps accepted")
	}
}
