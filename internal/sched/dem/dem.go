// Package dem implements the Dimension Exchange Method (Cybenko 1989),
// the prior-art parallel scheduling algorithm the paper contrasts MWA
// against in Section 5. On a d-dimensional hypercube, nodes pair up
// across each dimension in turn and split their combined load as
// evenly as integer arithmetic allows; after d rounds the load is
// balanced to within d tasks (not within one — and the method moves
// more tasks than necessary, the "redundant communications" the paper
// criticizes).
package dem

import (
	"fmt"

	"rips/internal/invariant"
	"rips/internal/sched"
	"rips/internal/topo"
)

// Result reports one DEM round over all dimensions.
type Result struct {
	Plan  sched.Plan
	Final []int
	// MaxSpread is the final max-min load difference (bounded by the
	// cube dimension, but not by one).
	MaxSpread int
}

// Plan runs one full sweep of dimension exchanges on hypercube h.
func Plan(h *topo.Hypercube, w []int) (Result, error) {
	n := h.Size()
	if len(w) != n {
		return Result{}, fmt.Errorf("dem: %d loads for %d nodes", len(w), n)
	}
	for i, x := range w {
		if x < 0 {
			return Result{}, fmt.Errorf("dem: negative load %d at node %d", x, i)
		}
	}
	cur := make([]int, n)
	copy(cur, w)
	var moves []sched.Move
	for k := 0; k < h.Dim(); k++ {
		bit := 1 << k
		for a := 0; a < n; a++ {
			b := a ^ bit
			if b < a {
				continue // each pair once
			}
			diff := cur[a] - cur[b]
			if diff > 1 {
				c := diff / 2
				moves = append(moves, sched.Move{From: a, To: b, Count: c})
				cur[a] -= c
				cur[b] += c
			} else if diff < -1 {
				c := -diff / 2
				moves = append(moves, sched.Move{From: b, To: a, Count: c})
				cur[b] -= c
				cur[a] += c
			}
		}
	}
	lo, hi := cur[0], cur[0]
	for _, x := range cur {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	// DEM guarantees conservation but only dimension-bounded balance —
	// the contrast the paper draws against MWA's within-one result.
	invariant.Conserved(sched.Sum(w), sched.Sum(cur), "dem: plan")
	return Result{
		Plan:      sched.Plan{Moves: moves, Steps: h.Dim()},
		Final:     cur,
		MaxSpread: hi - lo,
	}, nil
}

// MeshResult reports an odd-even diffusion run on a mesh.
type MeshResult struct {
	Plan      sched.Plan
	Final     []int
	MaxSpread int
	Sweeps    int // sweeps actually executed
}

// MeshPlan runs the Dimension Exchange Method embedded on a mesh — the
// configuration the paper's Section 5 calls "implemented much less
// efficiently on a simpler topology". With no hypercube pairing
// available, exchanges run odd-even over columns then rows; each sweep
// is 4 communication steps and the load only diffuses one hop per
// exchange, so many sweeps (and redundant transfers) are needed where
// MWA finishes in one fixed-length pass. Worse, the iteration has
// staircase fixed points: once every adjacent pair is within one task
// nothing moves, leaving a residual spread bounded only by the mesh
// diameter. The iteration stops after maxSweeps or when a sweep moves
// nothing.
func MeshPlan(m *topo.Mesh, w []int, maxSweeps int) (MeshResult, error) {
	n := m.Size()
	if len(w) != n {
		return MeshResult{}, fmt.Errorf("dem: %d loads for %d nodes", len(w), n)
	}
	for i, x := range w {
		if x < 0 {
			return MeshResult{}, fmt.Errorf("dem: negative load %d at node %d", x, i)
		}
	}
	if maxSweeps <= 0 {
		return MeshResult{}, fmt.Errorf("dem: maxSweeps must be positive")
	}
	cur := make([]int, n)
	copy(cur, w)
	var moves []sched.Move
	steps := 0

	exchange := func(a, b int) bool {
		diff := cur[a] - cur[b]
		if diff > 1 {
			c := diff / 2
			moves = append(moves, sched.Move{From: a, To: b, Count: c})
			cur[a] -= c
			cur[b] += c
			return true
		}
		if diff < -1 {
			c := -diff / 2
			moves = append(moves, sched.Move{From: b, To: a, Count: c})
			cur[b] -= c
			cur[a] += c
			return true
		}
		return false
	}

	sweeps := 0
	for ; sweeps < maxSweeps; sweeps++ {
		any := false
		// Horizontal odd-even pairs, two phases, then vertical.
		for phase := 0; phase < 2; phase++ {
			for i := 0; i < m.Rows(); i++ {
				for j := phase; j+1 < m.Cols(); j += 2 {
					any = exchange(m.ID(i, j), m.ID(i, j+1)) || any
				}
			}
			steps++
		}
		for phase := 0; phase < 2; phase++ {
			for j := 0; j < m.Cols(); j++ {
				for i := phase; i+1 < m.Rows(); i += 2 {
					any = exchange(m.ID(i, j), m.ID(i+1, j)) || any
				}
			}
			steps++
		}
		if !any {
			sweeps++
			break
		}
	}

	lo, hi := cur[0], cur[0]
	for _, x := range cur {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	invariant.Conserved(sched.Sum(w), sched.Sum(cur), "dem: mesh plan")
	return MeshResult{
		Plan:      sched.Plan{Moves: moves, Steps: steps},
		Final:     cur,
		MaxSpread: hi - lo,
		Sweeps:    sweeps,
	}, nil
}
