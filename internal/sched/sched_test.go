package sched

import (
	"testing"

	"rips/internal/topo"
)

func TestPlanCost(t *testing.T) {
	p := Plan{Moves: []Move{{0, 1, 3}, {1, 2, 2}}}
	if p.Cost() != 5 {
		t.Errorf("Cost = %d, want 5", p.Cost())
	}
	if (Plan{}).Cost() != 0 {
		t.Errorf("empty plan cost = %d", (Plan{}).Cost())
	}
}

func TestApply(t *testing.T) {
	r := topo.NewRing(3)
	p := Plan{Moves: []Move{{0, 1, 2}, {1, 2, 1}}}
	out, err := p.Apply(r, []int{3, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 1, 1}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Apply = %v, want %v", out, want)
		}
	}
}

func TestApplyRejectsInfeasibleOrder(t *testing.T) {
	r := topo.NewRing(3)
	// Node 1 forwards before it has received.
	p := Plan{Moves: []Move{{1, 2, 1}, {0, 1, 2}}}
	if _, err := p.Apply(r, []int{3, 0, 0}); err == nil {
		t.Fatal("infeasible order accepted")
	}
}

func TestApplyRejectsNonAdjacent(t *testing.T) {
	m := topo.NewMesh(2, 2)
	p := Plan{Moves: []Move{{0, 3, 1}}} // diagonal
	if _, err := p.Apply(m, []int{4, 0, 0, 0}); err == nil {
		t.Fatal("non-adjacent move accepted")
	}
}

func TestApplyRejectsBadCountAndIDs(t *testing.T) {
	r := topo.NewRing(2)
	if _, err := (Plan{Moves: []Move{{0, 1, 0}}}).Apply(r, []int{1, 1}); err == nil {
		t.Fatal("zero-count move accepted")
	}
	if _, err := (Plan{Moves: []Move{{0, 5, 1}}}).Apply(r, []int{1, 1}); err == nil {
		t.Fatal("bad destination accepted")
	}
	if _, err := (Plan{}).Apply(r, []int{1}); err == nil {
		t.Fatal("wrong load length accepted")
	}
}

func TestCheckBalanced(t *testing.T) {
	if err := CheckBalanced([]int{2, 2, 3, 2}); err != nil {
		t.Errorf("balanced load rejected: %v", err)
	}
	if err := CheckBalanced([]int{2, 2, 4, 2}); err == nil {
		t.Error("unbalanced load accepted")
	}
	if err := CheckBalanced([]int{5, 5, 5}); err != nil {
		t.Errorf("even load rejected: %v", err)
	}
	if err := CheckBalanced(nil); err != nil {
		t.Errorf("empty load rejected: %v", err)
	}
}

func TestMinNonlocal(t *testing.T) {
	// avg = 2; deficits: 2 (node with 0) + 1 (node with 1) = 3.
	if got := MinNonlocal([]int{5, 0, 1, 2}); got != 3 {
		t.Errorf("MinNonlocal = %d, want 3", got)
	}
	if got := MinNonlocal([]int{3, 3, 3}); got != 0 {
		t.Errorf("MinNonlocal(balanced) = %d, want 0", got)
	}
	if got := MinNonlocal(nil); got != 0 {
		t.Errorf("MinNonlocal(nil) = %d", got)
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]int{1, 2, 3}); got != 6 {
		t.Errorf("Sum = %d", got)
	}
}
