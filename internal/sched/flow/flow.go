// Package flow computes the optimal task redistribution the paper uses
// as the reference point for Figure 4: load balancing is cast as a
// minimum-cost maximum-flow problem (Section 3, after Lawler [18]).
// Every topology edge gets capacity ∞ and cost 1 per task; a source
// feeds every overloaded node its surplus and a sink drains every
// underloaded node's deficit. The min-cost integral flow is the
// smallest possible per-edge transfer sum ∑e_k.
//
// The solver is successive shortest augmenting paths with Dijkstra over
// Johnson potentials — O(F · E log V) — plenty for the paper's machine
// sizes (≤ 256 nodes); the paper itself notes the O(n²v) complexity is
// what makes the optimal algorithm unusable *at runtime*, which is the
// motivation for MWA.
package flow

import (
	"container/heap"
	"fmt"
	"math"

	"rips/internal/topo"
)

// edge is one directed arc of the residual network.
type edge struct {
	to   int
	cap  int
	cost int
	flow int
}

type graph struct {
	edges []edge
	adj   [][]int // node -> indices into edges; edges[i^1] is the reverse arc
}

func newGraph(n int) *graph {
	return &graph{adj: make([][]int, n)}
}

func (g *graph) addEdge(a, b, capacity, cost int) {
	g.adj[a] = append(g.adj[a], len(g.edges))
	g.edges = append(g.edges, edge{to: b, cap: capacity, cost: cost})
	g.adj[b] = append(g.adj[b], len(g.edges))
	g.edges = append(g.edges, edge{to: a, cap: 0, cost: -cost})
}

// Result reports the optimal redistribution.
type Result struct {
	// Cost is the minimal ∑e_k: total task·edge transfers.
	Cost int
	// Moved is the flow value: the total surplus over floor(avg) that
	// leaves its original node. When the load divides evenly this is
	// exactly the paper's Lemma 1 bound m; otherwise it is m + R.
	Moved int
	// EdgeFlow[a][b] is the net number of tasks sent from node a to
	// adjacent node b (only positive directions recorded).
	EdgeFlow map[[2]int]int
	// Final is the resulting per-node load.
	Final []int
}

// Balance computes the minimum-cost redistribution of load w on
// topology t to within one task of perfect balance: every node ends
// with floor(avg) or floor(avg)+1 tasks. Unlike MWA, which pins the
// R = total mod N surplus tasks to the lowest-numbered nodes, the
// optimal algorithm is free to leave each extra task wherever it is
// cheapest — so Balance is a true lower bound on any balancing scheme
// (when R = 0 the targets coincide exactly).
func Balance(t topo.Topology, w []int) (Result, error) {
	n := t.Size()
	if len(w) != n {
		return Result{}, fmt.Errorf("flow: %d loads for %d nodes", len(w), n)
	}
	total := 0
	for i, x := range w {
		if x < 0 {
			return Result{}, fmt.Errorf("flow: negative load %d at node %d", x, i)
		}
		total += x
	}
	avg := total / n

	// Node ids 0..n-1; source n, sink n+1, and a funnel node n+2 that
	// caps the remainder tasks held above floor(avg) at exactly R.
	src, snk, funnel := n, n+1, n+2
	g := newGraph(n + 3)
	for a := 0; a < n; a++ {
		for _, b := range t.Neighbors(a) {
			// Add each undirected link once, as two unit-cost arcs.
			if b > a {
				g.addEdge(a, b, math.MaxInt32, 1)
				g.addEdge(b, a, math.MaxInt32, 1)
			}
		}
	}
	// Every node's surplus over floor(avg) must flow out...
	want := 0
	extraEdge := make([]int, n)
	for i := 0; i < n; i++ {
		if d := w[i] - avg; d > 0 {
			g.addEdge(src, i, d, 0)
			want += d
		} else if d < 0 {
			g.addEdge(i, snk, -d, 0)
		}
		// ...but any node (including a surplus one, which then simply
		// keeps the task) may hold one of the R remainder tasks.
		extraEdge[i] = len(g.edges)
		g.addEdge(i, funnel, 1, 0)
	}
	g.addEdge(funnel, snk, total%n, 0)

	cost, flow := g.minCostFlow(src, snk)
	if flow != want {
		return Result{}, fmt.Errorf("flow: pushed %d of %d units (topology disconnected?)", flow, want)
	}

	res := Result{Cost: cost, Moved: flow, EdgeFlow: map[[2]int]int{}, Final: make([]int, n)}
	for i := 0; i < n; i++ {
		res.Final[i] = avg + g.edges[extraEdge[i]].flow
	}
	for a := 0; a < n; a++ {
		for _, ei := range g.adj[a] {
			e := g.edges[ei]
			if ei%2 == 0 && e.to < n && e.flow > 0 {
				res.EdgeFlow[[2]int{a, e.to}] += e.flow
			}
		}
	}
	return res, nil
}

// Cost returns just the optimal ∑e_k for load w on t.
func Cost(t topo.Topology, w []int) (int, error) {
	r, err := Balance(t, w)
	if err != nil {
		return 0, err
	}
	return r.Cost, nil
}

// CostTo returns the minimum ∑e_k to move load w into exactly the
// given target distribution. This is the reference the paper's
// Figure 4 measures MWA against: both schemes aim at the same quotas
// (the paper assumes the total divides evenly, where the two coincide;
// with a remainder, comparing against the free-placement Balance would
// charge MWA for its fixed remainder rule rather than for its routing).
func CostTo(t topo.Topology, w, target []int) (int, error) {
	n := t.Size()
	if len(w) != n || len(target) != n {
		return 0, fmt.Errorf("flow: %d loads / %d targets for %d nodes", len(w), len(target), n)
	}
	sumW, sumT := 0, 0
	for i := 0; i < n; i++ {
		if w[i] < 0 || target[i] < 0 {
			return 0, fmt.Errorf("flow: negative load or target at node %d", i)
		}
		sumW += w[i]
		sumT += target[i]
	}
	if sumW != sumT {
		return 0, fmt.Errorf("flow: targets total %d but load totals %d", sumT, sumW)
	}
	src, snk := n, n+1
	g := newGraph(n + 2)
	for a := 0; a < n; a++ {
		for _, b := range t.Neighbors(a) {
			if b > a {
				g.addEdge(a, b, math.MaxInt32, 1)
				g.addEdge(b, a, math.MaxInt32, 1)
			}
		}
	}
	want := 0
	for i := 0; i < n; i++ {
		if d := w[i] - target[i]; d > 0 {
			g.addEdge(src, i, d, 0)
			want += d
		} else if d < 0 {
			g.addEdge(i, snk, -d, 0)
		}
	}
	cost, f := g.minCostFlow(src, snk)
	if f != want {
		return 0, fmt.Errorf("flow: pushed %d of %d units (topology disconnected?)", f, want)
	}
	return cost, nil
}

// priority queue for Dijkstra.
type pqItem struct {
	node int
	dist int
}
type pq []pqItem

func (p pq) Len() int           { return len(p) }
func (p pq) Less(i, j int) bool { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() (out any) {
	old := *p
	n := len(old)
	out = old[n-1]
	*p = old[:n-1]
	return out
}

// minCostFlow pushes the maximum flow from s to t at minimum cost,
// using successive shortest paths with potentials (all original costs
// are non-negative, so plain Dijkstra seeds the potentials).
func (g *graph) minCostFlow(s, t int) (cost, flow int) {
	n := len(g.adj)
	pot := make([]int, n)
	dist := make([]int, n)
	prevEdge := make([]int, n)
	const inf = math.MaxInt64 / 4

	for {
		for i := range dist {
			dist[i] = inf
			prevEdge[i] = -1
		}
		dist[s] = 0
		q := pq{{s, 0}}
		for len(q) > 0 {
			it := heap.Pop(&q).(pqItem)
			if it.dist > dist[it.node] {
				continue
			}
			for _, ei := range g.adj[it.node] {
				e := g.edges[ei]
				if e.cap-e.flow <= 0 {
					continue
				}
				nd := it.dist + e.cost + pot[it.node] - pot[e.to]
				if nd < dist[e.to] {
					dist[e.to] = nd
					prevEdge[e.to] = ei
					heap.Push(&q, pqItem{e.to, nd})
				}
			}
		}
		if dist[t] >= inf {
			return cost, flow
		}
		for i := 0; i < n; i++ {
			if dist[i] < inf {
				pot[i] += dist[i]
			}
		}
		// Find bottleneck along the path and augment.
		push := math.MaxInt32
		for v := t; v != s; {
			e := g.edges[prevEdge[v]]
			if r := e.cap - e.flow; r < push {
				push = r
			}
			v = g.edges[prevEdge[v]^1].to
		}
		for v := t; v != s; {
			ei := prevEdge[v]
			g.edges[ei].flow += push
			g.edges[ei^1].flow -= push
			cost += push * g.edges[ei].cost
			v = g.edges[ei^1].to
		}
		flow += push
	}
}
