package flow

import (
	"math/rand"
	"testing"

	"rips/internal/sched"
	"rips/internal/topo"
)

func TestBalancedInputNoCost(t *testing.T) {
	m := topo.NewMesh(4, 4)
	w := make([]int, 16)
	for i := range w {
		w[i] = 3
	}
	r, err := Balance(m, w)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 0 || r.Moved != 0 {
		t.Errorf("cost=%d moved=%d, want 0,0", r.Cost, r.Moved)
	}
}

func TestTwoNodeExchange(t *testing.T) {
	r, err := Balance(topo.NewRing(2), []int{10, 0})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 5 || r.Final[0] != 5 || r.Final[1] != 5 {
		t.Errorf("Balance = %+v", r)
	}
}

func TestCornerLoadOptimal(t *testing.T) {
	m := topo.NewMesh(4, 4)
	w := make([]int, 16)
	w[0] = 160
	r, err := Balance(m, w)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for id := 0; id < 16; id++ {
		want += 10 * m.Dist(0, id)
	}
	if r.Cost != want {
		t.Errorf("Cost = %d, want %d", r.Cost, want)
	}
	if err := sched.CheckBalanced(r.Final); err != nil {
		t.Error(err)
	}
}

func TestRemainderFreedom(t *testing.T) {
	// Load [3,1,1,1] on a line: one remainder task; optimal keeps it at
	// node 0 for zero... no: avg=1, R=2. w-avg = [2,0,0,0]. Node 0 can
	// keep one extra; one task must still reach the farthest deficit.
	line := topo.NewMesh(1, 4)
	r, err := Balance(line, []int{6, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	// avg=1, R=2: targets are two nodes at 2, two at 1, chosen freely.
	// Cheapest: node0 keeps 2, node1 gets 2, node2 gets 1, node3 gets 1
	// -> cost = 2 (to node1) + 1*2 (to node2) + 1*3 (to node3)... or
	// node1 keeps 2: flows: 4 leave node0: costs 4 cross edge 0-1, 2
	// cross 1-2, 1 crosses 2-3 = 7.
	if r.Cost != 7 {
		t.Errorf("Cost = %d, want 7 (final %v)", r.Cost, r.Final)
	}
	if err := sched.CheckBalanced(r.Final); err != nil {
		t.Error(err)
	}
	total := 0
	for _, f := range r.Final {
		total += f
	}
	if total != 6 {
		t.Errorf("final total = %d", total)
	}
}

func TestFinalBalancedRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, tp := range []topo.Topology{
		topo.NewMesh(4, 4), topo.NewMesh(8, 4), topo.NewRing(7),
		topo.NewHypercube(4), topo.NewTree(15),
	} {
		for trial := 0; trial < 20; trial++ {
			w := make([]int, tp.Size())
			for i := range w {
				w[i] = rng.Intn(21)
			}
			r, err := Balance(tp, w)
			if err != nil {
				t.Fatal(err)
			}
			if err := sched.CheckBalanced(r.Final); err != nil {
				t.Fatalf("%s: %v (w=%v final=%v)", tp.Name(), err, w, r.Final)
			}
			tot := 0
			for _, f := range r.Final {
				tot += f
			}
			if tot != sched.Sum(w) {
				t.Fatalf("%s: tasks not conserved: %d vs %d", tp.Name(), tot, sched.Sum(w))
			}
		}
	}
}

// TestCostLowerBoundsEarthMover verifies the optimal cost against an
// exhaustive assignment search on tiny instances: on a 1xK line the
// min-cost flow equals the earth-mover distance, computable directly.
func TestLineEarthMover(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	line := topo.NewMesh(1, 5)
	for trial := 0; trial < 40; trial++ {
		w := make([]int, 5)
		total := 0
		for i := range w {
			w[i] = rng.Intn(10)
			total += w[i]
		}
		if total%5 != 0 {
			w[0] += 5 - total%5
		}
		// On a line with equal targets, optimal cost = sum over
		// boundaries of |prefix imbalance|.
		avg := sched.Sum(w) / 5
		want, pre := 0, 0
		for j := 0; j < 4; j++ {
			pre += w[j] - avg
			want += abs(pre)
		}
		r, err := Balance(line, w)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cost != want {
			t.Fatalf("line cost = %d, want %d (w=%v)", r.Cost, want, w)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestErrorCases(t *testing.T) {
	m := topo.NewMesh(2, 2)
	if _, err := Balance(m, []int{1}); err == nil {
		t.Error("wrong length accepted")
	}
	if _, err := Balance(m, []int{1, -2, 0, 0}); err == nil {
		t.Error("negative load accepted")
	}
	if _, err := Cost(m, []int{4, 0, 0, 0}); err != nil {
		t.Error(err)
	}
}

func TestEdgeFlowConsistentWithFinal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := topo.NewMesh(4, 4)
	for trial := 0; trial < 20; trial++ {
		w := make([]int, 16)
		for i := range w {
			w[i] = rng.Intn(15)
		}
		r, err := Balance(m, w)
		if err != nil {
			t.Fatal(err)
		}
		net := make([]int, 16)
		copy(net, w)
		for k, f := range r.EdgeFlow {
			if f < 0 {
				t.Fatalf("negative edge flow %d on %v", f, k)
			}
			net[k[0]] -= f
			net[k[1]] += f
		}
		for i := range net {
			if net[i] != r.Final[i] {
				t.Fatalf("edge flows inconsistent at node %d: %d vs %d", i, net[i], r.Final[i])
			}
		}
		cost := 0
		for _, f := range r.EdgeFlow {
			cost += f
		}
		if cost != r.Cost {
			t.Fatalf("edge-flow cost %d vs reported %d", cost, r.Cost)
		}
	}
}

func TestCostToMatchesBalanceOnDivisibleTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := topo.NewMesh(4, 4)
	for trial := 0; trial < 20; trial++ {
		w := make([]int, 16)
		for i := range w {
			w[i] = rng.Intn(12)
		}
		for sched.Sum(w)%16 != 0 {
			w[rng.Intn(16)]++
		}
		avg := sched.Sum(w) / 16
		target := make([]int, 16)
		for i := range target {
			target[i] = avg
		}
		got, err := CostTo(m, w, target)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Cost(m, w)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("CostTo=%d Cost=%d (w=%v)", got, want, w)
		}
	}
}

func TestCostToErrors(t *testing.T) {
	m := topo.NewMesh(2, 2)
	if _, err := CostTo(m, []int{1, 1, 1, 1}, []int{2, 2, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := CostTo(m, []int{1, 1, 1, 1}, []int{9, 0, 0, 0}); err == nil {
		t.Error("mismatched totals accepted")
	}
	if _, err := CostTo(m, []int{1, 1}, []int{1, 1, 0, 0}); err == nil {
		t.Error("bad length accepted")
	}
	if _, err := CostTo(m, []int{1, 1, 1, 1}, []int{-1, 2, 2, 1}); err == nil {
		t.Error("negative target accepted")
	}
}
