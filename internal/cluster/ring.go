package cluster

import (
	"hash/fnv"
	"sort"
)

// The membership structure is a consistent-hash ring: every node
// hashes its address onto a 64-bit circle, and a job hashes its
// encoded rips-job/v1 document onto the same circle. The job's
// coordinator is the ring successor of the job's point — the first
// node clockwise — so every node with the same membership view routes
// a submission to the same coordinator, with no external coordinator
// service and no election traffic: the hash IS the election.

// ringHash places an address or a job document on the ring.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	// hash.Hash's Write is documented to never return an error.
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// ringSort orders addresses by ring position (hash, then address to
// break the astronomically-unlikely collision deterministically). The
// sorted order doubles as the job's member indexing: member i of a
// K-wide job is the i-th node on the ring.
func ringSort(addrs []string) {
	sort.Slice(addrs, func(i, j int) bool {
		hi, hj := ringHash(addrs[i]), ringHash(addrs[j])
		if hi != hj {
			return hi < hj
		}
		return addrs[i] < addrs[j]
	})
}

// successor returns the first member at or clockwise of point h.
// members must be ring-sorted and non-empty.
func successor(members []string, h uint64) string {
	i := sort.Search(len(members), func(i int) bool {
		return ringHash(members[i]) >= h
	})
	if i == len(members) {
		i = 0 // wrap: the ring has no end
	}
	return members[i]
}
