package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"rips"
	"rips/internal/app"
	"rips/internal/sim"
)

// testOpts are aggressive timings so failure paths resolve in test
// time: heartbeats every 20ms, a silent peer is dead after 500ms.
func testOpts(tr Transport, addr string) Options {
	return Options{
		Addr:              addr,
		Transport:         tr,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  500 * time.Millisecond,
		StabilizeInterval: 40 * time.Millisecond,
		DialTimeout:       500 * time.Millisecond,
	}
}

// startCluster brings up k nodes on one in-memory network and joins
// them into a ring.
func startCluster(t *testing.T, tr Transport, k int, mod func(*Options)) []*Node {
	t.Helper()
	nodes := make([]*Node, k)
	for i := 0; i < k; i++ {
		opts := testOpts(tr, fmt.Sprintf("mem://node%d", i))
		if mod != nil {
			mod(&opts)
		}
		n, err := Start(opts)
		if err != nil {
			t.Fatalf("start node %d: %v", i, err)
		}
		t.Cleanup(func() { _ = n.Close() })
		nodes[i] = n
		if i > 0 {
			if err := n.Join(nodes[0].Addr()); err != nil {
				t.Fatalf("join node %d: %v", i, err)
			}
		}
	}
	for i, n := range nodes {
		if got := len(n.Members()); got != k {
			t.Fatalf("node %d sees %d members, want %d", i, got, k)
		}
	}
	return nodes
}

func clusterSpec(appName string, size int) rips.JobSpec {
	return rips.JobSpec{App: appName, Size: size, Config: rips.ConfigJSON{Backend: "cluster"}}
}

// TestClusterNQ12 is the heart of the PR's contract: a 3-process
// cluster must produce the bit-identical answer the sequential profile
// produces — same task count, same virtual work, same application
// result — however the phase protocol scattered the tasks.
func TestClusterNQ12(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node protocol run")
	}
	nodes := startCluster(t, NewMemTransport(), 3, nil)

	a, err := rips.LookupApp("nq", 12)
	if err != nil {
		t.Fatal(err)
	}
	prof := app.Measure(a)

	// Submit to a follower: the ring routes to the coordinator.
	res, err := nodes[2].Submit(context.Background(), clusterSpec("nq", 12))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if res.Canceled {
		t.Fatal("job reported canceled")
	}
	if res.Workers != 3 {
		t.Errorf("workers = %d, want 3", res.Workers)
	}
	if res.AppResult != prof.Result {
		t.Errorf("app result = %d, want %d (12-queens solutions)", res.AppResult, prof.Result)
	}
	if res.Generated != int64(prof.Tasks) || res.Executed != int64(prof.Tasks) {
		t.Errorf("generated/executed = %d/%d, want %d", res.Generated, res.Executed, prof.Tasks)
	}
	if res.VirtualWork != prof.Work {
		t.Errorf("virtual work = %d, want %d", res.VirtualWork, prof.Work)
	}
	if res.Nonlocal == 0 {
		t.Errorf("nonlocal = 0: no task ever crossed the wire in a 3-node run")
	}
	if res.Phases == 0 {
		t.Errorf("phases = 0: the phase protocol never ran")
	}
}

// TestClusterEveryNodeAnswersTheSame submits the same job through
// every node: the unified job API means the entry point must not
// matter.
func TestClusterEveryNodeAnswersTheSame(t *testing.T) {
	nodes := startCluster(t, NewMemTransport(), 3, nil)
	for i, n := range nodes {
		res, err := n.Submit(context.Background(), clusterSpec("nq", 8))
		if err != nil {
			t.Fatalf("submit via node %d: %v", i, err)
		}
		if res.AppResult != 92 {
			t.Errorf("via node %d: app result %d, want 92", i, res.AppResult)
		}
	}
}

// slowApp is a block-distributed workload whose tasks take real time,
// so a test can kill a node while the job is provably mid-run. It
// counts one result unit per task.
type slowApp struct {
	tasks int
	delay time.Duration
}

func (a *slowApp) Name() string           { return "slow" }
func (a *slowApp) Rounds() int            { return 1 }
func (a *slowApp) BlockDistributed() bool { return true }
func (a *slowApp) Roots(int) []app.Spawn {
	roots := make([]app.Spawn, a.tasks)
	for i := range roots {
		roots[i] = app.Spawn{Data: int32(i), Size: 4}
	}
	return roots
}
func (a *slowApp) Execute(data any, emit func(app.Spawn)) sim.Time {
	time.Sleep(a.delay)
	return 1
}
func (a *slowApp) ExecuteCount(data any, emit func(app.Spawn)) (sim.Time, int64) {
	return a.Execute(data, emit), 1
}
func (a *slowApp) AppendPayload(dst []byte, data any) ([]byte, error) {
	i, ok := data.(int32)
	if !ok {
		return nil, fmt.Errorf("slow: payload %T", data)
	}
	return append(dst, byte(i>>24), byte(i>>16), byte(i>>8), byte(i)), nil
}
func (a *slowApp) DecodePayload(p []byte) (any, error) {
	if len(p) != 4 {
		return nil, fmt.Errorf("slow: payload is %d bytes", len(p))
	}
	return int32(p[0])<<24 | int32(p[1])<<16 | int32(p[2])<<8 | int32(p[3]), nil
}

// TestClusterNodeDeathMidJob kills a node while a job is running and
// requires the typed failure semantics: a partial Result{Canceled}
// with a *NodeLostError, delivered promptly — never a hang.
func TestClusterNodeDeathMidJob(t *testing.T) {
	slow := &slowApp{tasks: 300, delay: 5 * time.Millisecond}
	resolver := func(name string, size int) (app.App, error) {
		if name == "slow" {
			return slow, nil
		}
		return rips.LookupApp(name, size)
	}
	nodes := startCluster(t, NewMemTransport(), 3, func(o *Options) { o.Resolver = resolver })

	type outcome struct {
		res Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := nodes[0].Submit(context.Background(), clusterSpec("slow", 0))
		done <- outcome{res, err}
	}()
	// Let the job get moving, then kill a node that holds a block of
	// the work. Node 0 is the submitter; killing node 1 covers both
	// the member-death and coordinator-death paths depending on where
	// the ring put the coordinator.
	time.Sleep(150 * time.Millisecond)
	_ = nodes[1].Close()

	select {
	case out := <-done:
		if !out.res.Canceled {
			t.Errorf("result not marked canceled: %+v", out.res)
		}
		var lost *NodeLostError
		if !errors.As(out.err, &lost) {
			t.Fatalf("want *NodeLostError, got %v", out.err)
		}
		if lost.Addr == "" {
			t.Errorf("NodeLostError names no node")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("node death hung the job instead of canceling it")
	}
}

// TestClusterTimeout proves Config.Timeout bounds a cluster job the
// same way it bounds an in-process run: Canceled result, deadline
// error.
func TestClusterTimeout(t *testing.T) {
	slow := &slowApp{tasks: 1000, delay: 5 * time.Millisecond}
	resolver := func(name string, size int) (app.App, error) { return slow, nil }
	nodes := startCluster(t, NewMemTransport(), 3, func(o *Options) { o.Resolver = resolver })

	spec := clusterSpec("slow", 0)
	spec.Config.TimeoutNS = int64(200 * time.Millisecond)
	res, err := nodes[0].Submit(context.Background(), spec)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if !res.Canceled {
		t.Error("timed-out result not marked canceled")
	}
}

// TestClusterKillAndRejoin is the membership churn story: a node dies
// between jobs, the ring notices and shrinks, answers stay right; the
// node comes back under the same address, the ring grows, answers stay
// right.
func TestClusterKillAndRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node protocol run with churn")
	}
	tr := NewMemTransport()
	nodes := startCluster(t, tr, 3, nil)

	res, err := nodes[1].Submit(context.Background(), clusterSpec("nq", 8))
	if err != nil || res.AppResult != 92 {
		t.Fatalf("3-node nq8: %v, result %+v", err, res)
	}

	// Kill node 2 and wait for the survivors to drop it.
	_ = nodes[2].Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if len(nodes[0].Members()) == 2 && len(nodes[1].Members()) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivors never dropped the dead node: %v / %v", nodes[0].Members(), nodes[1].Members())
		}
		time.Sleep(10 * time.Millisecond)
	}

	res, err = nodes[0].Submit(context.Background(), clusterSpec("nq", 8))
	if err != nil || res.AppResult != 92 {
		t.Fatalf("2-node nq8 after death: %v, result %+v", err, res)
	}
	if res.Workers != 2 {
		t.Errorf("post-death workers = %d, want 2", res.Workers)
	}

	// Rejoin under the same address; the direct announcements clear
	// the survivors' suspicion.
	reborn, err := Start(testOpts(tr, "mem://node2"))
	if err != nil {
		t.Fatalf("restart node 2: %v", err)
	}
	t.Cleanup(func() { _ = reborn.Close() })
	if err := reborn.Join(nodes[0].Addr()); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	for {
		if len(nodes[0].Members()) == 3 && len(nodes[1].Members()) == 3 && len(reborn.Members()) == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring never regrew: %v / %v / %v", nodes[0].Members(), nodes[1].Members(), reborn.Members())
		}
		time.Sleep(10 * time.Millisecond)
	}

	res, err = reborn.Submit(context.Background(), clusterSpec("nq", 12))
	if err != nil {
		t.Fatalf("post-rejoin nq12: %v", err)
	}
	if res.AppResult != 14200 || res.Workers != 3 {
		t.Fatalf("post-rejoin nq12: result %d on %d workers, want 14200 on 3", res.AppResult, res.Workers)
	}
}

// TestRegisteredAppsAreWireSerializable: every app family the public
// registry can build must be able to cross the wire, or a cluster
// submission for it would fail at attach time.
func TestRegisteredAppsAreWireSerializable(t *testing.T) {
	for _, name := range rips.Apps() {
		a, err := rips.LookupApp(name, 0)
		if err != nil {
			t.Fatalf("LookupApp(%q, 0): %v", name, err)
		}
		if !app.WireSerializable(a) {
			t.Errorf("app %q has no PayloadCodec", name)
		}
	}
}

// TestClusterStatus sanity-checks the /v1/cluster document's content.
func TestClusterStatus(t *testing.T) {
	nodes := startCluster(t, NewMemTransport(), 3, nil)
	st := nodes[0].Status()
	if st.Wire != WireSchema {
		t.Errorf("wire = %q, want %q", st.Wire, WireSchema)
	}
	if len(st.Members) != 3 {
		t.Fatalf("status lists %d members, want 3", len(st.Members))
	}
	selfs := 0
	for _, m := range st.Members {
		if m.Self {
			selfs++
		}
		if len(m.RingID) != 16 {
			t.Errorf("ring id %q is not 16 hex digits", m.RingID)
		}
	}
	if selfs != 1 {
		t.Errorf("status marks %d members as self, want 1", selfs)
	}
}

// TestEchoRTT exercises the latency probe the bench harness fits its
// alpha/beta model from.
func TestEchoRTT(t *testing.T) {
	nodes := startCluster(t, NewMemTransport(), 2, nil)
	rtts, err := nodes[0].EchoRTT(nodes[1].Addr(), make([]byte, 1024), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rtts) != 3 {
		t.Fatalf("got %d rtts, want 3", len(rtts))
	}
	for _, d := range rtts {
		if d <= 0 {
			t.Errorf("non-positive rtt %v", d)
		}
	}
}
