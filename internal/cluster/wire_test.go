package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

// TestFrameRoundTrip proves write→read is the identity for every
// frame type and payload shape, including empty and large payloads.
func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 70000)}
	types := []frameType{fJoin, fMembers, fPing, fEcho, fSubmit, fResult, fHeartbeat, fAttach, fBatch, fCancel}
	for _, ft := range types {
		for _, p := range payloads {
			var buf bytes.Buffer
			if err := writeFrame(&buf, ft, p); err != nil {
				t.Fatalf("writeFrame(%v, %d bytes): %v", ft, len(p), err)
			}
			gt, gp, err := readFrame(&buf)
			if err != nil {
				t.Fatalf("readFrame(%v, %d bytes): %v", ft, len(p), err)
			}
			if gt != ft || !bytes.Equal(gp, p) {
				t.Fatalf("round trip %v/%d bytes: got %v/%d bytes", ft, len(p), gt, len(gp))
			}
		}
	}
}

// TestFrameGolden pins the exact byte layout of a frame so the wire
// format cannot drift silently: magic, version, type, length, CRC,
// payload.
func TestFrameGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, fEcho, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	want := []byte{'R', 'I', 'P', 'W', 1, byte(fEcho), 0, 0, 0, 2}
	want = binary.BigEndian.AppendUint32(want, crc32.ChecksumIEEE([]byte("hi")))
	want = append(want, 'h', 'i')
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("golden frame mismatch:\n got %x\nwant %x", buf.Bytes(), want)
	}
}

// TestFrameCorruption proves every malformed input becomes a typed
// error — never a panic, never a silent misread.
func TestFrameCorruption(t *testing.T) {
	good := func() []byte {
		var buf bytes.Buffer
		if err := writeFrame(&buf, fEcho, []byte("payload")); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	t.Run("truncated header", func(t *testing.T) {
		_, _, err := readFrame(bytes.NewReader(good()[:headerSize-3]))
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("want ErrTruncated, got %v", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		f := good()
		_, _, err := readFrame(bytes.NewReader(f[:len(f)-2]))
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("want ErrTruncated, got %v", err)
		}
	})
	t.Run("clean EOF", func(t *testing.T) {
		_, _, err := readFrame(bytes.NewReader(nil))
		if err != io.EOF {
			t.Fatalf("want bare io.EOF at a frame boundary, got %v", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		f := good()
		f[0] = 'X'
		_, _, err := readFrame(bytes.NewReader(f))
		if !errors.Is(err, ErrBadMagic) {
			t.Fatalf("want ErrBadMagic, got %v", err)
		}
	})
	t.Run("version skew", func(t *testing.T) {
		f := good()
		f[4] = 9
		_, _, err := readFrame(bytes.NewReader(f))
		var ve *VersionError
		if !errors.As(err, &ve) || ve.Got != 9 {
			t.Fatalf("want VersionError{Got: 9}, got %v", err)
		}
	})
	t.Run("bad checksum", func(t *testing.T) {
		f := good()
		f[len(f)-1] ^= 0xFF // flip a payload byte, CRC now disagrees
		_, _, err := readFrame(bytes.NewReader(f))
		if !errors.Is(err, ErrChecksum) {
			t.Fatalf("want ErrChecksum, got %v", err)
		}
	})
	t.Run("absurd length", func(t *testing.T) {
		f := good()
		binary.BigEndian.PutUint32(f[6:10], maxPayload+1)
		_, _, err := readFrame(bytes.NewReader(f))
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("want ErrFrameTooLarge, got %v", err)
		}
	})
}

// TestMessageRoundTrips proves each payload codec is its own inverse.
func TestMessageRoundTrips(t *testing.T) {
	t.Run("addr", func(t *testing.T) {
		got, err := decodeAddr(encodeAddr("10.0.0.1:7777"))
		if err != nil || got != "10.0.0.1:7777" {
			t.Fatalf("got %q, %v", got, err)
		}
	})
	t.Run("members", func(t *testing.T) {
		in := []string{"a:1", "b:2", "c:3"}
		got, err := decodeMembers(encodeMembers(in))
		if err != nil || len(got) != 3 || got[0] != "a:1" || got[2] != "c:3" {
			t.Fatalf("got %v, %v", got, err)
		}
	})
	t.Run("attach", func(t *testing.T) {
		in := attachMsg{Job: 7, App: "nq", Size: 12, K: 3, Member: 2, Config: []byte(`{"backend":"cluster"}`)}
		got, err := decodeAttach(in.encode())
		if err != nil || got.Job != 7 || got.App != "nq" || got.Size != 12 || got.K != 3 || got.Member != 2 || string(got.Config) != string(in.Config) {
			t.Fatalf("got %+v, %v", got, err)
		}
	})
	t.Run("batch", func(t *testing.T) {
		in := batchMsg{Job: 9, To: 1, Tasks: []wireTask{
			{ID: 1<<40 | 5, Origin: 1, Size: 16, Payload: []byte{1, 2, 3}},
			{ID: 2, Origin: 0, Size: 4, Payload: nil},
		}}
		got, err := decodeBatch(in.encode())
		if err != nil || got.Job != 9 || got.To != 1 || len(got.Tasks) != 2 {
			t.Fatalf("got %+v, %v", got, err)
		}
		if got.Tasks[0].ID != in.Tasks[0].ID || !bytes.Equal(got.Tasks[0].Payload, in.Tasks[0].Payload) {
			t.Fatalf("task 0 mangled: %+v", got.Tasks[0])
		}
	})
	t.Run("counters", func(t *testing.T) {
		in := countersMsg{Job: 3, Generated: 100, Executed: 100, Nonlocal: 40, AppResult: -7, Work: 12345, BusyNS: 99}
		got, err := decodeCounters(in.encode())
		if err != nil || got != in {
			t.Fatalf("got %+v, %v", got, err)
		}
	})
	t.Run("result", func(t *testing.T) {
		in := resultMsg{Workers: 3, Generated: 10, Executed: 10, Nonlocal: 4, AppResult: 92,
			Work: 55, Phases: 6, WallNS: 1e9, BusyNS: 3e9, Canceled: true, ErrKind: errNodeLost, ErrDetail: "mem://b"}
		got, err := decodeResult(in.encode())
		if err != nil || got != in {
			t.Fatalf("got %+v, %v", got, err)
		}
	})
}

// TestMessageDecodeErrors proves malformed payloads are errors, not
// panics and not misreads.
func TestMessageDecodeErrors(t *testing.T) {
	if _, err := decodeAttach([]byte{1, 2}); err == nil {
		t.Fatal("short attach decoded")
	}
	if _, err := decodeAttach(append(attachMsg{Job: 1, App: "a", K: 1, Member: 0}.encode(), 0xFF)); err == nil {
		t.Fatal("trailing garbage decoded")
	}
	if _, err := decodeAttach(attachMsg{Job: 1, App: "a", K: 2, Member: 5}.encode()); err == nil {
		t.Fatal("member out of range decoded")
	}
	if _, err := decodeBatch([]byte{0}); err == nil {
		t.Fatal("short batch decoded")
	}
	if _, err := decodeResult([]byte{9, 9}); err == nil {
		t.Fatal("short result decoded")
	}
	// A bool byte that is neither 0 nor 1 must be rejected, or two
	// distinct wire documents would decode to the same message.
	rm := resultMsg{Workers: 1}.encode()
	rm[4+8*8] = 7 // the canceled byte
	if _, err := decodeResult(rm); err == nil {
		t.Fatal("non-canonical bool decoded")
	}
}

// TestRingRouting pins the consistent-hash routing rule: members sort
// by hash, a point routes to its successor, and the ring wraps.
func TestRingRouting(t *testing.T) {
	members := []string{"mem://a", "mem://b", "mem://c", "mem://d"}
	ringSort(members)
	for i := 1; i < len(members); i++ {
		if ringHash(members[i-1]) > ringHash(members[i]) {
			t.Fatalf("ring not sorted at %d", i)
		}
	}
	// A point exactly on a member routes to that member.
	for _, m := range members {
		if got := successor(members, ringHash(m)); got != m {
			t.Fatalf("successor(hash(%s)) = %s", m, got)
		}
	}
	// A point past the last member wraps to the first.
	last := ringHash(members[len(members)-1])
	if last != ^uint64(0) {
		if got := successor(members, last+1); got != members[0] {
			t.Fatalf("wrap: got %s, want %s", got, members[0])
		}
	}
}
