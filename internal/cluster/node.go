//ripslint:allow-file wallclock membership probing, dial timeouts and job wall-time measurement are real time by design; scheduling decisions inside a job depend only on reported task counts
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rips"
	"rips/internal/app"
)

// Options configures a cluster node. The zero value of every field is
// usable: TCP transport, the public rips app registry as the resolver,
// and production heartbeat/stabilization timings.
type Options struct {
	// Addr is the listen address. A TCP ":0" port is resolved after
	// binding and the resolved address becomes the node's identity on
	// the ring.
	Addr string
	// Transport carries the wire protocol; nil means TCP.
	Transport Transport
	// Resolver builds the app a job names; nil means rips.LookupApp.
	// The difftest cluster leg injects a resolver over its cached
	// apps.
	Resolver func(name string, size int) (app.App, error)
	// HeartbeatInterval is how often idle connections emit heartbeats;
	// HeartbeatTimeout is the per-frame read deadline, after which a
	// silent peer is declared dead. Defaults: 250ms and 2s.
	HeartbeatInterval, HeartbeatTimeout time.Duration
	// StabilizeInterval paces the membership probe loop; default 1s.
	StabilizeInterval time.Duration
	// DialTimeout bounds connection attempts; default 2s.
	DialTimeout time.Duration
	// FailureLimit is how many consecutive failed stabilization rounds
	// remove a member; default 2.
	FailureLimit int
}

func (o *Options) setDefaults() {
	if o.Transport == nil {
		o.Transport = TCP()
	}
	if o.Resolver == nil {
		o.Resolver = rips.LookupApp
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 250 * time.Millisecond
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 2 * time.Second
	}
	if o.StabilizeInterval <= 0 {
		o.StabilizeInterval = time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.FailureLimit <= 0 {
		o.FailureLimit = 2
	}
}

// Node is one cluster process: a listener speaking rips-wire/v1, a
// membership ring, and the ability to coordinate or serve any job the
// ring routes to it.
type Node struct {
	opts   Options
	addr   string
	ln     net.Listener
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	members map[string]bool
	suspect map[string]bool // removed members, barred from gossip re-entry
	fails   map[string]int  // consecutive probe failures
	conns   map[net.Conn]struct{}
	jobs    int
	closed  bool

	jobSeq atomic.Uint64
}

// Start binds the address and brings the node up as a single-member
// cluster. Call Join to merge it into an existing one.
func Start(opts Options) (*Node, error) {
	opts.setDefaults()
	ln, err := opts.Transport.Listen(opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", opts.Addr, err)
	}
	addr := opts.Addr
	if a := ln.Addr().String(); addr == "" || hasZeroPort(addr) {
		addr = a
	}
	ctx, cancel := context.WithCancel(context.Background()) //ripslint:allow ctxflow the node IS a lifecycle root: this context parents every session and is canceled by Close
	n := &Node{
		opts:    opts,
		addr:    addr,
		ln:      ln,
		ctx:     ctx,
		cancel:  cancel,
		members: map[string]bool{addr: true},
		suspect: map[string]bool{},
		fails:   map[string]int{},
		conns:   map[net.Conn]struct{}{},
	}
	n.wg.Add(2)
	go n.acceptLoop()
	go n.stabilizeLoop()
	return n, nil
}

func hasZeroPort(addr string) bool {
	_, port, err := net.SplitHostPort(addr)
	return err == nil && port == "0"
}

// Addr is the node's ring identity.
func (n *Node) Addr() string { return n.addr }

// Close tears the node down abruptly: the listener and every live
// connection close, in-flight jobs on other nodes observe the death
// through their heartbeats. It does not announce departure — the ring
// discovers it, exactly as it would a crash.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := make([]net.Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	n.cancel()
	err := n.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	n.wg.Wait()
	return err
}

// Members returns the ring-ordered membership snapshot (self
// included). The order doubles as job member indexing.
func (n *Node) Members() []string {
	n.mu.Lock()
	addrs := make([]string, 0, len(n.members))
	for a := range n.members {
		addrs = append(addrs, a)
	}
	n.mu.Unlock()
	ringSort(addrs)
	return addrs
}

// MemberStatus is one ring entry of a Status report.
type MemberStatus struct {
	Addr   string `json:"addr"`
	RingID string `json:"ring_id"`
	Self   bool   `json:"self,omitempty"`
}

// Status is the /v1/cluster document.
type Status struct {
	Addr    string         `json:"addr"`
	Wire    string         `json:"wire"`
	Members []MemberStatus `json:"members"`
	Jobs    int            `json:"jobs"`
}

// Status reports the node's view of the ring.
func (n *Node) Status() Status {
	members := n.Members()
	n.mu.Lock()
	jobs := n.jobs
	n.mu.Unlock()
	st := Status{Addr: n.addr, Wire: WireSchema, Jobs: jobs}
	for _, a := range members {
		st.Members = append(st.Members, MemberStatus{
			Addr:   a,
			RingID: fmt.Sprintf("%016x", ringHash(a)),
			Self:   a == n.addr,
		})
	}
	return st
}

// admit records direct contact with a live node: it (re-)enters the
// membership and sheds any suspicion. Only direct contact — a Join or
// Ping from the node itself — clears a suspect; gossip cannot, which
// is what stops a removed address from bouncing back through a stale
// member list.
func (n *Node) admit(addr string) {
	if addr == "" {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.members[addr] = true
	delete(n.suspect, addr)
	delete(n.fails, addr)
}

// merge folds a gossiped member list in, skipping suspects.
func (n *Node) merge(addrs []string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, a := range addrs {
		if a == "" || n.suspect[a] {
			continue
		}
		n.members[a] = true
	}
}

// dropDead removes a member that failed too many consecutive probes.
func (n *Node) dropDead(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.members, addr)
	delete(n.fails, addr)
	n.suspect[addr] = true
}

func (n *Node) addJob(d int) {
	n.mu.Lock()
	n.jobs += d
	n.mu.Unlock()
}

// Join merges this node into the cluster a seed node belongs to: it
// announces itself to the seed, learns the membership, then announces
// itself to every learned member so each clears any suspicion left
// over from a crash of a previous process at this address.
func (n *Node) Join(seed string) error {
	reply, err := n.exchange(seed, fJoin, encodeAddr(n.addr), fMembers)
	if err != nil {
		return fmt.Errorf("cluster: join via %s: %w", seed, err)
	}
	addrs, err := decodeMembers(reply)
	if err != nil {
		return fmt.Errorf("cluster: join via %s: %w", seed, err)
	}
	n.merge(addrs)
	for _, a := range addrs {
		if a == n.addr || a == seed {
			continue
		}
		if more, err := n.exchange(a, fJoin, encodeAddr(n.addr), fMembers); err == nil {
			if got, err := decodeMembers(more); err == nil {
				n.merge(got)
			}
		}
	}
	return nil
}

// exchange performs a one-shot request/reply conversation: dial, send,
// read frames (skipping heartbeats) until the wanted type or an error
// frame arrives.
func (n *Node) exchange(addr string, t frameType, payload []byte, want frameType) ([]byte, error) {
	conn, err := n.opts.Transport.Dial(addr, n.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	defer func() { _ = conn.Close() }()
	if err := conn.SetDeadline(time.Now().Add(n.opts.HeartbeatTimeout)); err != nil {
		return nil, err
	}
	if err := writeFrame(conn, t, payload); err != nil {
		return nil, err
	}
	for {
		rt, rp, err := readFrame(conn)
		if err != nil {
			return nil, err
		}
		switch rt {
		case fHeartbeat:
			continue
		case want:
			return rp, nil
		case fError:
			msg, derr := decodeError(rp)
			if derr != nil {
				return nil, derr
			}
			return nil, errors.New(msg)
		default:
			return nil, fmt.Errorf("cluster: %s replied %v to a %v request", addr, rt, t)
		}
	}
}

// acceptLoop serves inbound connections until the listener closes.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		if !n.track(conn) {
			_ = conn.Close()
			return
		}
		n.wg.Add(1)
		go n.serveConn(conn)
	}
}

func (n *Node) track(conn net.Conn) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return false
	}
	n.conns[conn] = struct{}{}
	return true
}

func (n *Node) untrack(conn net.Conn) {
	n.mu.Lock()
	delete(n.conns, conn)
	n.mu.Unlock()
}

// serveConn dispatches one inbound connection. Control frames (join,
// ping, echo) are handled in a loop; a submit or attach frame hands
// the connection over to a job session and ends the dispatch.
func (n *Node) serveConn(conn net.Conn) {
	defer n.wg.Done()
	defer n.untrack(conn)
	defer func() { _ = conn.Close() }()
	for {
		if err := conn.SetReadDeadline(time.Now().Add(n.opts.HeartbeatTimeout)); err != nil {
			return
		}
		t, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		switch t {
		case fHeartbeat:
			continue
		case fJoin, fPing:
			addr, err := decodeAddr(payload)
			if err != nil {
				_ = writeFrame(conn, fError, encodeError(err.Error()))
				return
			}
			n.admit(addr)
			if err := writeFrame(conn, fMembers, encodeMembers(n.Members())); err != nil {
				return
			}
		case fEcho:
			if err := writeFrame(conn, fEchoReply, payload); err != nil {
				return
			}
		case fSubmit:
			n.handleSubmit(conn, payload)
			return
		case fAttach:
			n.memberSession(conn, payload)
			return
		default:
			_ = writeFrame(conn, fError, encodeError(fmt.Sprintf("cluster: unexpected %v frame", t)))
			return
		}
	}
}

// stabilizeLoop is the membership maintenance loop: each round probes
// every known member, with one backed-off reconnect attempt per
// failure — the only place in the protocol that reconnects; job
// connections never do, they fail fast instead.
func (n *Node) stabilizeLoop() {
	defer n.wg.Done()
	tick := time.NewTicker(n.opts.StabilizeInterval) //ripslint:allow sleep membership probing is paced in real time by design; it never touches a running job's schedule
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			n.stabilize()
		case <-n.ctx.Done():
			return
		}
	}
}

func (n *Node) stabilize() {
	for _, m := range n.Members() {
		if m == n.addr {
			continue
		}
		reply, err := n.exchange(m, fPing, encodeAddr(n.addr), fMembers)
		if err != nil {
			// Reconnect with backoff before declaring the round failed.
			backoff := time.NewTimer(n.opts.StabilizeInterval / 4) //ripslint:allow sleep the stabilization retry backoff is membership plumbing, outside any job's schedule
			select {
			case <-backoff.C:
			case <-n.ctx.Done():
				backoff.Stop()
				return
			}
			reply, err = n.exchange(m, fPing, encodeAddr(n.addr), fMembers)
		}
		if err != nil {
			n.mu.Lock()
			n.fails[m]++
			dead := n.fails[m] >= n.opts.FailureLimit
			n.mu.Unlock()
			if dead {
				n.dropDead(m)
			}
			continue
		}
		n.mu.Lock()
		n.fails[m] = 0
		n.mu.Unlock()
		if addrs, err := decodeMembers(reply); err == nil {
			n.merge(addrs)
		}
	}
}

// Submit runs one job on the cluster: the job document's ring position
// picks the coordinator, and any node accepts the submission — the
// unified job API the HTTP surface forwards into. The call blocks
// until the job finishes, is canceled, or the coordinator is lost.
func (n *Node) Submit(ctx context.Context, spec rips.JobSpec) (Result, error) {
	doc, err := spec.Encode()
	if err != nil {
		return Result{}, err
	}
	coord := successor(n.Members(), ringHash(string(doc)))
	if coord == n.addr {
		return n.coordinate(ctx, spec)
	}
	conn, err := n.opts.Transport.Dial(coord, n.opts.DialTimeout)
	if err != nil {
		return Result{}, fmt.Errorf("cluster: reaching coordinator %s: %w", coord, err)
	}
	p := newPeer(conn, n.opts.HeartbeatInterval, n.opts.HeartbeatTimeout)
	defer p.close()
	if err := p.send(fSubmit, doc); err != nil {
		return Result{}, fmt.Errorf("cluster: reaching coordinator %s: %w", coord, err)
	}
	for {
		f, err := p.recv(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return Result{Canceled: true}, ctx.Err()
			}
			return Result{Canceled: true}, &NodeLostError{Addr: coord}
		}
		switch f.t {
		case fResult:
			m, err := decodeResult(f.payload)
			if err != nil {
				return Result{}, err
			}
			return decodeOutcome(m)
		case fError:
			msg, derr := decodeError(f.payload)
			if derr != nil {
				return Result{}, derr
			}
			return Result{}, errors.New(msg)
		default:
			return Result{}, fmt.Errorf("cluster: coordinator %s sent unexpected %v frame", coord, f.t)
		}
	}
}

// handleSubmit coordinates a job that arrived over the wire, relaying
// the outcome back on the same connection. The submitter's death (its
// conn failing) cancels the job — a forwarding node hanging up must
// not leave the cluster burning cycles on an unanswerable job.
func (n *Node) handleSubmit(conn net.Conn, payload []byte) {
	spec, err := rips.DecodeJobSpec(payload)
	if err != nil {
		_ = writeFrame(conn, fError, encodeError(err.Error()))
		return
	}
	p := newPeer(conn, n.opts.HeartbeatInterval, n.opts.HeartbeatTimeout)
	defer p.close()
	ctx, cancel := context.WithCancel(n.ctx)
	defer cancel()
	go func() {
		for {
			f, err := p.recv(ctx)
			if err != nil || f.t == fCancel {
				cancel()
				return
			}
		}
	}()
	res, rerr := n.coordinate(ctx, spec)
	_ = p.send(fResult, encodeOutcome(res, rerr).encode())
}

// EchoRTT measures round-trip times to a peer with the given payload,
// one persistent connection, reps round trips. The bench harness fits
// its alpha/beta latency model from these.
func (n *Node) EchoRTT(addr string, payload []byte, reps int) ([]time.Duration, error) {
	conn, err := n.opts.Transport.Dial(addr, n.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	defer func() { _ = conn.Close() }()
	rtts := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		if err := conn.SetDeadline(time.Now().Add(n.opts.HeartbeatTimeout)); err != nil {
			return nil, err
		}
		start := time.Now()
		if err := writeFrame(conn, fEcho, payload); err != nil {
			return nil, err
		}
		for {
			t, _, err := readFrame(conn)
			if err != nil {
				return nil, err
			}
			if t == fHeartbeat {
				continue
			}
			if t != fEchoReply {
				return nil, fmt.Errorf("cluster: %s replied %v to an echo", addr, t)
			}
			break
		}
		rtts = append(rtts, time.Since(start))
	}
	return rtts, nil
}
