//ripslint:allow-file wallclock a member measures its real busy time by design and backs off its drain announcements in real time; which tasks it runs is decided solely by the coordinator's planner
package cluster

import (
	"net"
	"runtime"
	"time"

	"rips/internal/app"
	"rips/internal/sim"
	"rips/internal/task"
)

// memberSession serves one job on this node: an executor for the
// node's slice of the task pool, obeying the coordinator's phase
// protocol on the connection that recruited it. It runs entirely on
// one goroutine — the queue needs no lock because only this loop
// touches it, and the peer's reader keeps frames (and the heartbeat
// deadline) flowing while a task executes.
func (n *Node) memberSession(conn net.Conn, payload []byte) {
	att, err := decodeAttach(payload)
	if err != nil {
		_ = writeFrame(conn, fError, encodeError(err.Error()))
		return
	}
	a, err := n.opts.Resolver(att.App, att.Size)
	if err != nil {
		_ = writeFrame(conn, fError, encodeError(err.Error()))
		return
	}
	codec, ok := a.(app.PayloadCodec)
	if !ok {
		_ = writeFrame(conn, fError, encodeError("cluster: app tasks are not wire-serializable"))
		return
	}
	p := newPeer(conn, n.opts.HeartbeatInterval, n.opts.HeartbeatTimeout)
	defer p.close()
	m := &memberRun{n: n, p: p, job: att.Job, app: a, codec: codec, k: att.K, idx: att.Member}
	m.run()
}

type memberRun struct {
	n     *Node
	p     *peer
	job   uint64
	app   app.App
	codec app.PayloadCodec
	k     int // job width
	idx   int // this member's index
	q     task.Queue
	seq   uint64

	generated, executed, nonlocal, appResult int64
	vwork                                    sim.Time
	busy                                     time.Duration
}

// newID mints a task ID unique across the job: member index in the
// high bits, a local sequence below — the same packing the in-process
// runtimes use per worker.
func (m *memberRun) newID() uint64 {
	m.seq++
	return uint64(m.idx)<<40 | m.seq
}

// stage loads this member's share of a round's roots:
// block-distributed apps get their block, everything else starts on
// member 0 and lets the first system phase spread it.
func (m *memberRun) stage(round int) {
	roots := m.app.Roots(round)
	lo, hi := 0, len(roots)
	if app.RootsDistributed(m.app) {
		lo, hi = app.RootBlock(len(roots), m.k, m.idx)
	} else if m.idx != 0 {
		lo, hi = 0, 0
	}
	for _, sp := range roots[lo:hi] {
		m.q.PushBack(task.Task{ID: m.newID(), Origin: m.idx, Size: sp.Size, Data: sp.Data})
	}
	m.generated += int64(hi - lo)
}

func (m *memberRun) run() {
	m.stage(0)
	if m.p.send(fAttachOK, loadsMsg{Job: m.job, Load: m.q.Len()}.encode()) != nil {
		return
	}
	// Members attach paused: the coordinator balances the initial root
	// distribution before the first resume.
	if !m.pausedLoop() {
		return
	}
	idle := 0 // consecutive resumes that brought no work
	for {
		// Control frames first, so a phase request never waits behind
		// the whole queue.
		if f, ok := m.p.tryRecv(); ok {
			if !m.handle(f) {
				return
			}
			continue
		}
		t, ok := m.q.PopFront()
		if !ok {
			// Empty queue: tell the coordinator, after a backoff that
			// grows while resumes keep bringing nothing — an idle
			// member must not phase-storm the busy ones.
			if idle > 0 {
				if f, got, alive := m.idleWait(backoff(idle)); got {
					if !m.handle(f) {
						return
					}
					continue
				} else if !alive {
					return
				}
			}
			if m.p.send(fDrained, encodeJob(m.job)) != nil {
				return
			}
			f, err := m.p.recv(m.n.ctx)
			if err != nil {
				return
			}
			if !m.handle(f) {
				return
			}
			if m.q.Empty() {
				idle++
			} else {
				idle = 0
			}
			continue
		}
		idle = 0
		m.execute(t)
		// Yield between tasks. The execute loop's only channel
		// operation is a nonblocking tryRecv, so on a single-P runtime
		// (GOMAXPROCS=1, or a node oversubscribed with sessions) it
		// would otherwise hold the processor for a full preemption
		// quantum (~10ms) — long enough to starve this member's own
		// peer reader and the coordinator, serializing the whole job
		// onto whichever member got work first.
		runtime.Gosched()
	}
}

// backoff is the idle member's wait before re-announcing an empty
// queue: 1ms doubling to a 50ms cap.
func backoff(idle int) time.Duration {
	d := time.Millisecond << (idle - 1)
	if d > 50*time.Millisecond || d <= 0 {
		d = 50 * time.Millisecond
	}
	return d
}

// idleWait blocks for one frame or the backoff duration, whichever
// comes first. Returns (frame, frameArrived, connAlive).
func (m *memberRun) idleWait(d time.Duration) (frame, bool, bool) {
	timer := time.NewTimer(d) //ripslint:allow sleep the drain-announcement backoff throttles phase frequency; task placement stays the planner's alone
	defer timer.Stop()
	select {
	case f := <-m.p.inbox:
		return f, true, true
	case <-m.p.done:
		return frame{}, false, false
	case <-m.n.ctx.Done():
		return frame{}, false, false
	case <-timer.C:
		return frame{}, false, true
	}
}

// handle processes one frame while running; false means the session is
// over.
func (m *memberRun) handle(f frame) bool {
	switch f.t {
	case fPhase:
		return m.paused()
	case fCancel:
		return false
	default:
		_ = m.p.send(fError, encodeError("cluster: unexpected frame while running"))
		return false
	}
}

// paused is the stop-the-world window: report the load, then obey the
// coordinator — hand over tasks, install shipped batches, restage a
// new round's roots — until resumed or finished.
func (m *memberRun) paused() bool {
	if m.p.send(fLoads, loadsMsg{Job: m.job, Load: m.q.Len()}.encode()) != nil {
		return false
	}
	return m.pausedLoop()
}

func (m *memberRun) pausedLoop() bool {
	for {
		f, err := m.p.recv(m.n.ctx)
		if err != nil {
			return false
		}
		switch f.t {
		case fTake:
			tk, err := decodeTake(f.payload)
			if err != nil {
				return false
			}
			ts := m.q.TakeBack(tk.Count)
			wts, err := encodeTasks(m.codec, ts)
			if err != nil {
				_ = m.p.send(fError, encodeError(err.Error()))
				return false
			}
			if m.p.send(fBatch, batchMsg{Job: m.job, To: tk.To, Tasks: wts}.encode()) != nil {
				return false
			}
		case fPut:
			bm, err := decodeBatch(f.payload)
			if err != nil {
				return false
			}
			ts, err := decodeTasks(m.codec, bm.Tasks)
			if err != nil {
				_ = m.p.send(fError, encodeError(err.Error()))
				return false
			}
			m.q.PushAll(ts)
			if m.p.send(fPutOK, loadsMsg{Job: m.job, Load: m.q.Len()}.encode()) != nil {
				return false
			}
		case fRound:
			rd, err := decodeRound(f.payload)
			if err != nil {
				return false
			}
			m.stage(rd.Round)
			if m.p.send(fLoads, loadsMsg{Job: m.job, Load: m.q.Len()}.encode()) != nil {
				return false
			}
		case fPhase:
			// A duplicate phase request: re-report the load.
			if m.p.send(fLoads, loadsMsg{Job: m.job, Load: m.q.Len()}.encode()) != nil {
				return false
			}
		case fResume:
			return true
		case fFinish:
			_ = m.p.send(fCounters, countersMsg{
				Job:       m.job,
				Generated: m.generated,
				Executed:  m.executed,
				Nonlocal:  m.nonlocal,
				AppResult: m.appResult,
				Work:      int64(m.vwork),
				BusyNS:    int64(m.busy),
			}.encode())
			return false
		case fCancel:
			return false
		default:
			_ = m.p.send(fError, encodeError("cluster: unexpected frame while paused"))
			return false
		}
	}
}

// execute runs one task, spawning children into the local queue.
func (m *memberRun) execute(t task.Task) {
	start := time.Now()
	w, res := app.ExecuteCount(m.app, t.Data, func(sp app.Spawn) {
		m.q.PushBack(task.Task{ID: m.newID(), Origin: m.idx, Size: sp.Size, Data: sp.Data})
		m.generated++
	})
	m.busy += time.Since(start)
	m.executed++
	m.vwork += w
	m.appResult += res
	if t.Origin != m.idx {
		m.nonlocal++
	}
}
