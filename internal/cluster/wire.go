// Package cluster runs the RIPS phase protocol across ripsd processes:
// one node per process, a coordinator elected by consistent-hash ring
// position per job, and the unchanged pure planners (MWA, the tree
// walk, the cube walk) planning over a mirror topology whose "nodes"
// are whole processes — the cluster-level analogue of the hybrid
// backend's affinity domains.
//
// Everything on the wire is a rips-wire/v1 frame: a fixed header
// (magic, version, type, payload length, CRC-32) followed by a
// canonical big-endian payload. Decoding is total — truncated input,
// checksum mismatches and version skew are typed errors, never panics,
// so a node survives any bytes a peer (or a port scanner) throws at
// it.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// WireSchema names the frame format; it appears in docs and status
// output, and the version byte below is its authoritative encoding.
const WireSchema = "rips-wire/v1"

const (
	wireVersion = 1
	headerSize  = 4 + 1 + 1 + 4 + 4
	// maxPayload bounds a frame so a corrupt length field cannot make
	// a reader allocate unbounded memory. Task batches dominate frame
	// sizes and stay far below this.
	maxPayload = 16 << 20
)

var wireMagic = [4]byte{'R', 'I', 'P', 'W'}

// frameType tags a frame's payload encoding.
type frameType byte

const (
	fInvalid   frameType = iota
	fJoin                // addr — announce membership
	fMembers             // []addr — full membership reply
	fPing                // addr — liveness probe, replied with fMembers
	fEcho                // opaque bytes — latency probe
	fEchoReply           // the echoed bytes
	fSubmit              // rips-job/v1 document
	fResult              // job outcome (resultMsg)
	fError               // string — request-level failure
	fHeartbeat           // empty — keeps per-frame read deadlines alive
	fAttach              // attachMsg — coordinator recruits a member
	fAttachOK            // loadsMsg — member attached, reports its load
	fDrained             // jobMsg — member's queue ran dry
	fPhase               // jobMsg — stop-the-world: pause and report load
	fLoads               // loadsMsg — member's queue length, paused
	fTake                // takeMsg — give count tasks to member `to`
	fBatch               // batchMsg — serialized tasks, member → coordinator
	fPut                 // batchMsg — serialized tasks, coordinator → member
	fPutOK               // loadsMsg — tasks installed, new load
	fRound               // roundMsg — advance to round r, restage roots
	fResume              // jobMsg — phase over, execute again
	fFinish              // jobMsg — job complete, report counters
	fCounters            // countersMsg — member's final tallies
	fCancel              // cancelMsg — abandon the job
)

var frameNames = map[frameType]string{
	fJoin: "join", fMembers: "members", fPing: "ping", fEcho: "echo",
	fEchoReply: "echo-reply", fSubmit: "submit", fResult: "result",
	fError: "error", fHeartbeat: "heartbeat", fAttach: "attach",
	fAttachOK: "attach-ok", fDrained: "drained", fPhase: "phase",
	fLoads: "loads", fTake: "take", fBatch: "batch", fPut: "put",
	fPutOK: "put-ok", fRound: "round", fResume: "resume",
	fFinish: "finish", fCounters: "counters", fCancel: "cancel",
}

func (t frameType) String() string {
	if s, ok := frameNames[t]; ok {
		return s
	}
	return fmt.Sprintf("frame(%d)", byte(t))
}

// Typed wire errors. Readers distinguish a peer speaking another
// protocol (bad magic), a peer from the future (version skew), line
// corruption (checksum) and a short read (truncation) because each
// demands a different reaction — and because the difference is what
// the corruption tests pin down.
var (
	// ErrBadMagic: the stream does not start with a rips-wire frame.
	ErrBadMagic = errors.New("cluster: bad frame magic (peer is not speaking rips-wire)")
	// ErrChecksum: the payload arrived but its CRC-32 disagrees.
	ErrChecksum = errors.New("cluster: frame checksum mismatch (payload corrupted in transit)")
	// ErrFrameTooLarge: the length field exceeds maxPayload.
	ErrFrameTooLarge = errors.New("cluster: frame exceeds the rips-wire payload bound")
	// ErrTruncated: the stream ended inside a frame.
	ErrTruncated = errors.New("cluster: truncated frame")
)

// VersionError reports a frame from an incompatible protocol version.
type VersionError struct {
	Got byte
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("cluster: peer speaks rips-wire version %d, this node speaks %d", e.Got, wireVersion)
}

// writeFrame writes one frame. The payload may be nil (length 0).
func writeFrame(w io.Writer, t frameType, payload []byte) error {
	if len(payload) > maxPayload {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	hdr := make([]byte, headerSize, headerSize+len(payload))
	copy(hdr[0:4], wireMagic[:])
	hdr[4] = wireVersion
	hdr[5] = byte(t)
	binary.BigEndian.PutUint32(hdr[6:10], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[10:14], crc32.ChecksumIEEE(payload))
	// One Write call per frame so frames interleave atomically under
	// the peer's write lock.
	_, err := w.Write(append(hdr, payload...))
	return err
}

// readFrame reads one frame, verifying magic, version and checksum.
// io.EOF is returned bare only at a clean frame boundary; inside a
// frame the error wraps ErrTruncated.
func readFrame(r io.Reader) (frameType, []byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return fInvalid, nil, io.EOF
		}
		return fInvalid, nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if [4]byte(hdr[0:4]) != wireMagic {
		return fInvalid, nil, ErrBadMagic
	}
	if hdr[4] != wireVersion {
		return fInvalid, nil, &VersionError{Got: hdr[4]}
	}
	t := frameType(hdr[5])
	n := binary.BigEndian.Uint32(hdr[6:10])
	sum := binary.BigEndian.Uint32(hdr[10:14])
	if n > maxPayload {
		return fInvalid, nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return fInvalid, nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return fInvalid, nil, ErrChecksum
	}
	return t, payload, nil
}
