package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Transport abstracts how nodes reach each other, so the whole
// protocol stack runs identically over real TCP sockets (production)
// and synchronous in-memory pipes (the -race cluster tests, which need
// multi-process topology without ports).
type Transport interface {
	// Listen binds the node's address and returns its listener.
	Listen(addr string) (net.Listener, error)
	// Dial connects to a peer's address within the timeout.
	Dial(addr string, timeout time.Duration) (net.Conn, error)
}

// tcpTransport is the production transport: plain TCP.
type tcpTransport struct{}

// TCP returns the production transport.
func TCP() Transport { return tcpTransport{} }

func (tcpTransport) Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

func (tcpTransport) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

// MemTransport is an in-memory transport: listeners register under
// arbitrary address strings, dials produce net.Pipe pairs. Pipes are
// synchronous and support deadlines, so heartbeat and failure paths
// exercise for real — closing a node's listener and conns looks
// exactly like a process dying.
type MemTransport struct {
	mu        sync.Mutex
	listeners map[string]*memListener
}

// NewMemTransport returns an empty in-memory network.
func NewMemTransport() *MemTransport {
	return &MemTransport{listeners: map[string]*memListener{}}
}

func (t *MemTransport) Listen(addr string) (net.Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.listeners[addr]; ok {
		return nil, fmt.Errorf("cluster: memory address %q already bound", addr)
	}
	l := &memListener{t: t, addr: addr, accept: make(chan net.Conn), closed: make(chan struct{})}
	t.listeners[addr] = l
	return l, nil
}

func (t *MemTransport) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	t.mu.Lock()
	l := t.listeners[addr]
	t.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("cluster: memory address %q: connection refused", addr)
	}
	client, server := net.Pipe()
	timer := time.NewTimer(timeout) //ripslint:allow sleep dial timeout on the in-memory transport mirrors net.DialTimeout; it bounds I/O, not scheduling
	defer timer.Stop()
	select {
	case l.accept <- server:
		return client, nil
	case <-l.closed:
		_ = client.Close()
		_ = server.Close()
		return nil, fmt.Errorf("cluster: memory address %q: connection refused", addr)
	case <-timer.C:
		_ = client.Close()
		_ = server.Close()
		return nil, fmt.Errorf("cluster: memory address %q: dial timed out", addr)
	}
}

type memListener struct {
	t      *MemTransport
	addr   string
	accept chan net.Conn
	once   sync.Once
	closed chan struct{}
}

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		l.t.mu.Lock()
		delete(l.t.listeners, l.addr)
		l.t.mu.Unlock()
	})
	return nil
}

func (l *memListener) Addr() net.Addr { return memAddr(l.addr) }

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }
