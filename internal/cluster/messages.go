package cluster

import (
	"encoding/binary"
	"fmt"
	"math"

	"rips/internal/task"
)

// Payload encodings. Every field is fixed-width big-endian or a
// u32-length-prefixed byte string; there is exactly one encoding per
// message (canonical), so identical messages are identical bytes.

// wbuf builds a payload append-style.
type wbuf struct{ b []byte }

func (w *wbuf) u8(v byte)      { w.b = append(w.b, v) }
func (w *wbuf) u32(v uint32)   { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *wbuf) u64(v uint64)   { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *wbuf) i64(v int64)    { w.u64(uint64(v)) }
func (w *wbuf) str(s string)   { w.u32(uint32(len(s))); w.b = append(w.b, s...) }
func (w *wbuf) bytes(p []byte) { w.u32(uint32(len(p))); w.b = append(w.b, p...) }
func (w *wbuf) boolean(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

// rbuf decodes a payload, latching the first error so callers check
// once at the end (fin).
type rbuf struct {
	b   []byte
	err error
}

func (r *rbuf) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("cluster: malformed payload: short read at %s", what)
	}
}

func (r *rbuf) take(n int, what string) []byte {
	if r.err != nil || len(r.b) < n {
		r.fail(what)
		return nil
	}
	p := r.b[:n]
	r.b = r.b[n:]
	return p
}

func (r *rbuf) u8(what string) byte {
	p := r.take(1, what)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *rbuf) u32(what string) uint32 {
	p := r.take(4, what)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint32(p)
}

func (r *rbuf) u64(what string) uint64 {
	p := r.take(8, what)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint64(p)
}

func (r *rbuf) i64(what string) int64 { return int64(r.u64(what)) }

func (r *rbuf) bytes(what string) []byte {
	n := r.u32(what)
	if n > math.MaxInt32 {
		r.fail(what)
		return nil
	}
	return r.take(int(n), what)
}

func (r *rbuf) str(what string) string { return string(r.bytes(what)) }

func (r *rbuf) boolean(what string) bool {
	switch r.u8(what) {
	case 0:
		return false
	case 1:
		return true
	default:
		if r.err == nil {
			r.err = fmt.Errorf("cluster: malformed payload: %s is not a bool", what)
		}
		return false
	}
}

func (r *rbuf) fin() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("cluster: malformed payload: %d trailing bytes", len(r.b))
	}
	return nil
}

// addrMsg carries one node address (fJoin, fPing).
func encodeAddr(addr string) []byte {
	var w wbuf
	w.str(addr)
	return w.b
}

func decodeAddr(p []byte) (string, error) {
	r := rbuf{b: p}
	addr := r.str("addr")
	return addr, r.fin()
}

// membersMsg carries the full membership list (fMembers).
func encodeMembers(addrs []string) []byte {
	var w wbuf
	w.u32(uint32(len(addrs)))
	for _, a := range addrs {
		w.str(a)
	}
	return w.b
}

func decodeMembers(p []byte) ([]string, error) {
	r := rbuf{b: p}
	n := r.u32("count")
	if n > maxPayload/4 {
		return nil, fmt.Errorf("cluster: malformed payload: absurd member count %d", n)
	}
	addrs := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		addrs = append(addrs, r.str("addr"))
	}
	return addrs, r.fin()
}

// errorMsg carries a request-level failure (fError).
func encodeError(msg string) []byte {
	var w wbuf
	w.str(msg)
	return w.b
}

func decodeError(p []byte) (string, error) {
	r := rbuf{b: p}
	msg := r.str("message")
	return msg, r.fin()
}

// attachMsg recruits a member into a job (fAttach).
type attachMsg struct {
	Job    uint64
	App    string
	Size   int
	K      int    // cluster width: how many members the job spans
	Member int    // this member's index in the ring-ordered member list
	Config []byte // the job's rips ConfigJSON document
}

func (m attachMsg) encode() []byte {
	var w wbuf
	w.u64(m.Job)
	w.str(m.App)
	w.u32(uint32(m.Size))
	w.u32(uint32(m.K))
	w.u32(uint32(m.Member))
	w.bytes(m.Config)
	return w.b
}

func decodeAttach(p []byte) (attachMsg, error) {
	r := rbuf{b: p}
	m := attachMsg{
		Job:    r.u64("job"),
		App:    r.str("app"),
		Size:   int(r.u32("size")),
		K:      int(r.u32("k")),
		Member: int(r.u32("member")),
		Config: r.bytes("config"),
	}
	if err := r.fin(); err != nil {
		return attachMsg{}, err
	}
	if m.K <= 0 || m.Member < 0 || m.Member >= m.K {
		return attachMsg{}, fmt.Errorf("cluster: malformed attach: member %d of %d", m.Member, m.K)
	}
	return m, nil
}

// jobMsg is the bare job-scoped signal (fDrained, fPhase, fResume,
// fFinish).
func encodeJob(job uint64) []byte {
	var w wbuf
	w.u64(job)
	return w.b
}

func decodeJob(p []byte) (uint64, error) {
	r := rbuf{b: p}
	job := r.u64("job")
	return job, r.fin()
}

// loadsMsg reports a member's queue length (fAttachOK, fLoads, fPutOK).
type loadsMsg struct {
	Job  uint64
	Load int
}

func (m loadsMsg) encode() []byte {
	var w wbuf
	w.u64(m.Job)
	w.u32(uint32(m.Load))
	return w.b
}

func decodeLoads(p []byte) (loadsMsg, error) {
	r := rbuf{b: p}
	m := loadsMsg{Job: r.u64("job"), Load: int(r.u32("load"))}
	return m, r.fin()
}

// takeMsg orders a member to hand over tasks (fTake).
type takeMsg struct {
	Job   uint64
	To    int // destination member index
	Count int
}

func (m takeMsg) encode() []byte {
	var w wbuf
	w.u64(m.Job)
	w.u32(uint32(m.To))
	w.u32(uint32(m.Count))
	return w.b
}

func decodeTake(p []byte) (takeMsg, error) {
	r := rbuf{b: p}
	m := takeMsg{Job: r.u64("job"), To: int(r.u32("to")), Count: int(r.u32("count"))}
	return m, r.fin()
}

// roundMsg advances a job to its next globally-synchronized round
// (fRound).
type roundMsg struct {
	Job   uint64
	Round int
}

func (m roundMsg) encode() []byte {
	var w wbuf
	w.u64(m.Job)
	w.u32(uint32(m.Round))
	return w.b
}

func decodeRound(p []byte) (roundMsg, error) {
	r := rbuf{b: p}
	m := roundMsg{Job: r.u64("job"), Round: int(r.u32("round"))}
	return m, r.fin()
}

// wireTask is one task in flight between members.
type wireTask struct {
	ID      uint64
	Origin  int
	Size    int
	Payload []byte
}

// batchMsg ships tasks (fBatch member→coordinator, fPut
// coordinator→member; the coordinator relays the payload unchanged,
// only the frame type flips).
type batchMsg struct {
	Job   uint64
	To    int // destination member index
	Tasks []wireTask
}

func (m batchMsg) encode() []byte {
	var w wbuf
	w.u64(m.Job)
	w.u32(uint32(m.To))
	w.u32(uint32(len(m.Tasks)))
	for _, t := range m.Tasks {
		w.u64(t.ID)
		w.u32(uint32(t.Origin))
		w.u32(uint32(t.Size))
		w.bytes(t.Payload)
	}
	return w.b
}

func decodeBatch(p []byte) (batchMsg, error) {
	r := rbuf{b: p}
	m := batchMsg{Job: r.u64("job"), To: int(r.u32("to"))}
	n := r.u32("count")
	if n > maxPayload/8 {
		return batchMsg{}, fmt.Errorf("cluster: malformed batch: absurd task count %d", n)
	}
	m.Tasks = make([]wireTask, 0, n)
	for i := uint32(0); i < n; i++ {
		m.Tasks = append(m.Tasks, wireTask{
			ID:      r.u64("task id"),
			Origin:  int(r.u32("task origin")),
			Size:    int(r.u32("task size")),
			Payload: r.bytes("task payload"),
		})
	}
	return m, r.fin()
}

// countersMsg is a member's final tally (fCounters).
type countersMsg struct {
	Job       uint64
	Generated int64
	Executed  int64
	Nonlocal  int64
	AppResult int64
	Work      int64 // virtual work (sim.Time units)
	BusyNS    int64
}

func (m countersMsg) encode() []byte {
	var w wbuf
	w.u64(m.Job)
	w.i64(m.Generated)
	w.i64(m.Executed)
	w.i64(m.Nonlocal)
	w.i64(m.AppResult)
	w.i64(m.Work)
	w.i64(m.BusyNS)
	return w.b
}

func decodeCounters(p []byte) (countersMsg, error) {
	r := rbuf{b: p}
	m := countersMsg{
		Job:       r.u64("job"),
		Generated: r.i64("generated"),
		Executed:  r.i64("executed"),
		Nonlocal:  r.i64("nonlocal"),
		AppResult: r.i64("app result"),
		Work:      r.i64("work"),
		BusyNS:    r.i64("busy"),
	}
	return m, r.fin()
}

// cancelMsg abandons a job (fCancel).
type cancelMsg struct {
	Job    uint64
	Reason string
}

func (m cancelMsg) encode() []byte {
	var w wbuf
	w.u64(m.Job)
	w.str(m.Reason)
	return w.b
}

func decodeCancel(p []byte) (cancelMsg, error) {
	r := rbuf{b: p}
	m := cancelMsg{Job: r.u64("job"), Reason: r.str("reason")}
	return m, r.fin()
}

// Error kinds a resultMsg can carry back to the submitter. The typed
// error survives the hop: the submitting node reconstructs the same
// Go error the coordinator returned locally.
const (
	errNone     = 0
	errNodeLost = 1
	errDeadline = 2
	errCanceled = 3
	errOther    = 4
)

// resultMsg is a finished (or canceled) job outcome (fResult).
type resultMsg struct {
	Workers   int
	Generated int64
	Executed  int64
	Nonlocal  int64
	AppResult int64
	Work      int64
	Phases    int64
	WallNS    int64
	BusyNS    int64
	Canceled  bool
	ErrKind   byte
	ErrDetail string
}

func (m resultMsg) encode() []byte {
	var w wbuf
	w.u32(uint32(m.Workers))
	w.i64(m.Generated)
	w.i64(m.Executed)
	w.i64(m.Nonlocal)
	w.i64(m.AppResult)
	w.i64(m.Work)
	w.i64(m.Phases)
	w.i64(m.WallNS)
	w.i64(m.BusyNS)
	w.boolean(m.Canceled)
	w.u8(m.ErrKind)
	w.str(m.ErrDetail)
	return w.b
}

func decodeResult(p []byte) (resultMsg, error) {
	r := rbuf{b: p}
	m := resultMsg{
		Workers:   int(r.u32("workers")),
		Generated: r.i64("generated"),
		Executed:  r.i64("executed"),
		Nonlocal:  r.i64("nonlocal"),
		AppResult: r.i64("app result"),
		Work:      r.i64("work"),
		Phases:    r.i64("phases"),
		WallNS:    r.i64("wall"),
		BusyNS:    r.i64("busy"),
		Canceled:  r.boolean("canceled"),
		ErrKind:   r.u8("error kind"),
		ErrDetail: r.str("error detail"),
	}
	return m, r.fin()
}

// encodeTasks serializes a queue slice through the app's codec.
func encodeTasks(codec interface {
	AppendPayload(dst []byte, data any) ([]byte, error)
}, ts []task.Task) ([]wireTask, error) {
	out := make([]wireTask, 0, len(ts))
	for _, t := range ts {
		p, err := codec.AppendPayload(nil, t.Data)
		if err != nil {
			return nil, fmt.Errorf("cluster: serializing task %d: %w", t.ID, err)
		}
		out = append(out, wireTask{ID: t.ID, Origin: t.Origin, Size: t.Size, Payload: p})
	}
	return out, nil
}

// decodeTasks deserializes a batch through the app's codec.
func decodeTasks(codec interface {
	DecodePayload(p []byte) (any, error)
}, ws []wireTask) ([]task.Task, error) {
	out := make([]task.Task, 0, len(ws))
	for _, wt := range ws {
		data, err := codec.DecodePayload(wt.Payload)
		if err != nil {
			return nil, fmt.Errorf("cluster: deserializing task %d: %w", wt.ID, err)
		}
		out = append(out, task.Task{ID: wt.ID, Origin: wt.Origin, Size: wt.Size, Data: data})
	}
	return out, nil
}
