//ripslint:allow-file wallclock the coordinator measures a job's elapsed real time by design; every scheduling decision inside the job is a pure function of reported task counts
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"rips"
	"rips/internal/app"
	"rips/internal/par"
	"rips/internal/sim"
	"rips/internal/topo"
)

// coordinate runs one job as its coordinator: recruit every ring
// member (itself included, dialed through the transport like anyone
// else), then drive the RIPS phase protocol — stop the world when a
// member drains, collect a load snapshot, hand it to the unchanged
// pure planner over the cluster's mirror topology, ship the planned
// moves as serialized batches, resume. A zero global total is a round
// boundary; after the last round the members' counters are summed into
// the Result.
func (n *Node) coordinate(ctx context.Context, spec rips.JobSpec) (Result, error) {
	if spec.Config.Backend != "" && spec.Config.Backend != "cluster" {
		return Result{}, fmt.Errorf("cluster: job asks for backend %q; a cluster node runs cluster-backend jobs only", spec.Config.Backend)
	}
	cfg, err := spec.Config.Decode()
	if err != nil {
		return Result{}, err
	}
	a, err := n.opts.Resolver(spec.App, spec.Size)
	if err != nil {
		return Result{}, err
	}
	if !app.WireSerializable(a) {
		return Result{}, fmt.Errorf("cluster: app %q tasks cannot cross a process boundary (no PayloadCodec)", spec.App)
	}
	members := n.Members()
	k := len(members)
	mirror := mirrorFor(cfg.Topology, k)
	cfgBytes, err := json.Marshal(spec.Config)
	if err != nil {
		return Result{}, err
	}
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	n.addJob(1)
	defer n.addJob(-1)

	c := &coordRun{
		n:       n,
		job:     n.jobSeq.Add(1),
		members: members,
		app:     a,
		mirror:  mirror,
		events:  make(chan coordEvent, 4*k),
		loads:   make([]int, k),
		start:   time.Now(),
	}
	defer c.closeAll()
	if lost := c.recruit(ctx, spec, cfgBytes); lost != -1 {
		return c.abandonOrTimeout(ctx, lost)
	}
	return c.drive(ctx)
}

// mirrorFor builds the k-node cluster mirror of the job's configured
// topology family — the same construction the hybrid backend uses for
// its affinity domains, with one "domain" per process. A hypercube
// family falls back to the mesh chain when the cluster width is not a
// power of two, because a planner topology must have exactly one node
// per member.
func mirrorFor(topology string, k int) topo.Topology {
	var machine topo.Topology
	switch topology {
	case "tree":
		machine = topo.NewTree(1)
	case "hypercube":
		if k&(k-1) == 0 {
			machine = topo.NewHypercube(0)
		} else {
			machine = topo.NewMesh(1, 1)
		}
	default:
		machine = topo.NewMesh(1, 1)
	}
	return par.MirrorTopology(machine, k)
}

// coordEvent is one member's frame (or death) in the merged stream the
// coordinator consumes.
type coordEvent struct {
	member int
	f      frame
	err    error
}

type coordRun struct {
	n       *Node
	job     uint64
	members []string
	app     app.App
	mirror  topo.Topology
	peers   []*peer
	events  chan coordEvent
	loads   []int
	start   time.Time

	res    Result
	phases int64
	round  int
}

// recruit dials every member and attaches it; returns the index of the
// first unreachable member, or -1. The coordinator reaches its own
// member session through the transport like any other — one code path,
// uniformly exercised.
func (c *coordRun) recruit(ctx context.Context, spec rips.JobSpec, cfgBytes []byte) int {
	c.peers = make([]*peer, len(c.members))
	for i, addr := range c.members {
		conn, err := c.n.opts.Transport.Dial(addr, c.n.opts.DialTimeout)
		if err != nil {
			return i
		}
		p := newPeer(conn, c.n.opts.HeartbeatInterval, c.n.opts.HeartbeatTimeout)
		c.peers[i] = p
		att := attachMsg{Job: c.job, App: spec.App, Size: spec.Size, K: len(c.members), Member: i, Config: cfgBytes}
		if err := p.send(fAttach, att.encode()); err != nil {
			return i
		}
	}
	// Pump every peer into one merged event stream.
	for i, p := range c.peers {
		go func(i int, p *peer) {
			for {
				f, err := p.recv(ctx)
				select {
				case c.events <- coordEvent{i, f, err}:
				case <-p.closed:
					return
				}
				if err != nil {
					return
				}
			}
		}(i, p)
	}
	// Collect every member's attach acknowledgement and initial load.
	pending := len(c.members)
	for pending > 0 {
		ev, lost := c.next(ctx)
		if lost != -1 {
			return lost
		}
		m, err := decodeLoads(ev.f.payload)
		if ev.f.t != fAttachOK || err != nil {
			return ev.member
		}
		c.loads[ev.member] = m.Load
		pending--
	}
	return -1
}

// next blocks for one event; a member error (or context expiry) is
// reported as a lost member index, context expiry as the pseudo-index
// of the coordinator itself (handled by drive).
func (c *coordRun) next(ctx context.Context) (coordEvent, int) {
	select {
	case ev := <-c.events:
		if ev.err != nil {
			return ev, ev.member
		}
		return ev, -1
	case <-ctx.Done():
		return coordEvent{err: ctx.Err()}, -2
	}
}

// drive is the coordinator's main loop.
func (c *coordRun) drive(ctx context.Context) (Result, error) {
	// The members attached paused: balance their initial root
	// distribution before the first resume.
	if lost := c.planAndMove(ctx); lost != -1 {
		return c.abandonOrTimeout(ctx, lost)
	}
	for {
		ev, lost := c.next(ctx)
		if lost != -1 {
			return c.abandonOrTimeout(ctx, lost)
		}
		switch ev.f.t {
		case fDrained:
			if lost := c.phase(ctx); lost != -1 {
				return c.abandonOrTimeout(ctx, lost)
			}
			done, lost := c.boundary(ctx)
			if lost != -1 {
				return c.abandonOrTimeout(ctx, lost)
			}
			if done {
				return c.finish(ctx)
			}
		default:
			return c.protocolError(ev)
		}
	}
}

// phase stops the world: broadcast fPhase, collect one fLoads from
// every member. Drained frames racing the phase broadcast are expected
// and ignored. Returns a lost index or -1.
func (c *coordRun) phase(ctx context.Context) int {
	c.phases++
	if lost := c.broadcast(fPhase, encodeJob(c.job)); lost != -1 {
		return lost
	}
	return c.collectLoads(ctx)
}

// collectLoads gathers one fLoads per member into c.loads.
func (c *coordRun) collectLoads(ctx context.Context) int {
	seen := make([]bool, len(c.members))
	pending := len(c.members)
	for pending > 0 {
		ev, lost := c.next(ctx)
		if lost != -1 {
			return lost
		}
		switch ev.f.t {
		case fDrained:
			continue
		case fLoads:
			m, err := decodeLoads(ev.f.payload)
			if err != nil || seen[ev.member] {
				return ev.member
			}
			seen[ev.member] = true
			c.loads[ev.member] = m.Load
			pending--
		default:
			return ev.member
		}
	}
	return -1
}

// boundary handles the all-queues-empty case: advance the round
// (restaging roots on the members) or report the job done.
func (c *coordRun) boundary(ctx context.Context) (done bool, lost int) {
	total := 0
	for _, l := range c.loads {
		total += l
	}
	if total > 0 {
		return false, c.planAndMove(ctx)
	}
	c.round++
	if c.round >= c.app.Rounds() {
		return true, -1
	}
	if lost := c.broadcast(fRound, roundMsg{Job: c.job, Round: c.round}.encode()); lost != -1 {
		return false, lost
	}
	if lost := c.collectLoads(ctx); lost != -1 {
		return false, lost
	}
	return false, c.planAndMove(ctx)
}

// planAndMove runs the pure planner over the current loads, ships each
// planned move as a relayed task batch, then resumes every member.
func (c *coordRun) planAndMove(ctx context.Context) int {
	total := 0
	for _, l := range c.loads {
		total += l
	}
	if total > 0 && !par.BalancedCanonical(c.loads, total) {
		plan, _, err := par.PlanLoads(c.mirror, c.loads)
		if err != nil {
			// A planner rejection means the coordinator built an
			// inconsistent mirror — abort the job, don't guess.
			c.res.Canceled = true
			return len(c.members) // out of range: reported as self-inflicted below
		}
		for _, mv := range plan.Moves {
			if lost := c.move(ctx, mv.From, mv.To, mv.Count); lost != -1 {
				return lost
			}
		}
	}
	return c.broadcast(fResume, encodeJob(c.job))
}

// move executes one planned transfer: fTake to the source, its fBatch
// relayed as fPut to the destination, the destination's fPutOK closing
// the loop. Tasks therefore move exactly once and never silently.
func (c *coordRun) move(ctx context.Context, from, to, count int) int {
	if err := c.peers[from].send(fTake, takeMsg{Job: c.job, To: to, Count: count}.encode()); err != nil {
		return from
	}
	batch, lost := c.await(ctx, from, fBatch)
	if lost != -1 {
		return lost
	}
	bm, err := decodeBatch(batch)
	if err != nil {
		return from
	}
	if err := c.peers[to].send(fPut, batch); err != nil {
		return to
	}
	ack, lost := c.await(ctx, to, fPutOK)
	if lost != -1 {
		return lost
	}
	am, err := decodeLoads(ack)
	if err != nil {
		return to
	}
	c.loads[from] -= len(bm.Tasks)
	c.loads[to] = am.Load
	return -1
}

// await blocks for one frame of the wanted type from one member,
// ignoring stale fDrained frames from anyone.
func (c *coordRun) await(ctx context.Context, member int, want frameType) ([]byte, int) {
	for {
		ev, lost := c.next(ctx)
		if lost != -1 {
			return nil, lost
		}
		if ev.f.t == fDrained {
			continue
		}
		if ev.member != member || ev.f.t != want {
			return nil, ev.member
		}
		return ev.f.payload, -1
	}
}

// finish collects every member's counters and assembles the Result.
func (c *coordRun) finish(ctx context.Context) (Result, error) {
	if lost := c.broadcast(fFinish, encodeJob(c.job)); lost != -1 {
		return c.abandonOrTimeout(ctx, lost)
	}
	seen := make([]bool, len(c.members))
	pending := len(c.members)
	for pending > 0 {
		ev, lost := c.next(ctx)
		if lost != -1 {
			// A member's session ends — and its conn closes — the
			// moment it sends its counters, so a death event from a
			// member already counted is the normal end of its session,
			// not a lost node.
			if lost >= 0 && lost < len(seen) && seen[lost] {
				continue
			}
			return c.abandonOrTimeout(ctx, lost)
		}
		if ev.f.t != fCounters {
			return c.protocolError(ev)
		}
		m, err := decodeCounters(ev.f.payload)
		if err != nil || seen[ev.member] {
			return c.abandonOrTimeout(ctx, ev.member)
		}
		seen[ev.member] = true
		c.res.Generated += m.Generated
		c.res.Executed += m.Executed
		c.res.Nonlocal += m.Nonlocal
		c.res.AppResult += m.AppResult
		c.res.VirtualWork += sim.Time(m.Work)
		c.res.Busy += time.Duration(m.BusyNS)
		pending--
	}
	c.res.Workers = len(c.members)
	c.res.Phases = c.phases
	c.res.Wall = time.Since(c.start)
	return c.res, nil
}

// broadcast sends one frame to every member; returns the first failed
// index or -1.
func (c *coordRun) broadcast(t frameType, payload []byte) int {
	for i, p := range c.peers {
		if err := p.send(t, payload); err != nil {
			return i
		}
	}
	return -1
}

// abandonOrTimeout folds the two failure exits: a context expiry
// (timeout or submitter cancellation) or a lost member.
func (c *coordRun) abandonOrTimeout(ctx context.Context, lost int) (Result, error) {
	if ctx.Err() != nil {
		res, _ := c.abandon(-1)
		return res, ctx.Err()
	}
	return c.abandon(lost)
}

// abandon cancels the job on every reachable member and returns the
// partial, canceled Result. lost < 0 means no specific member died
// (context expiry); an in-range lost names the dead node in the typed
// error.
func (c *coordRun) abandon(lost int) (Result, error) {
	reason := "coordinator abandoned the job"
	if lost >= 0 && lost < len(c.members) {
		reason = fmt.Sprintf("node %s lost", c.members[lost])
	}
	payload := cancelMsg{Job: c.job, Reason: reason}.encode()
	for i, p := range c.peers {
		if p == nil || i == lost {
			continue
		}
		_ = p.send(fCancel, payload)
	}
	c.res.Workers = len(c.members)
	c.res.Phases = c.phases
	c.res.Wall = time.Since(c.start)
	c.res.Canceled = true
	if lost >= 0 && lost < len(c.members) {
		return c.res, &NodeLostError{Addr: c.members[lost]}
	}
	return c.res, fmt.Errorf("cluster: job abandoned")
}

// protocolError reports a member that broke the phase protocol.
func (c *coordRun) protocolError(ev coordEvent) (Result, error) {
	res, _ := c.abandon(ev.member)
	return res, fmt.Errorf("cluster: member %s sent unexpected %v frame", c.members[ev.member], ev.f.t)
}

// closeAll tears down every job connection.
func (c *coordRun) closeAll() {
	for _, p := range c.peers {
		if p != nil {
			p.close()
		}
	}
}
