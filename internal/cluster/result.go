package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"rips/internal/sim"
)

// Result is a cluster job's outcome: the same counters the in-process
// backends report, summed over every member. The scheduling-invariance
// contract carries over unchanged — Generated, Executed, AppResult and
// VirtualWork must match the sequential profile bit for bit however
// tasks moved between processes, and the difftest cluster leg holds
// the protocol to exactly that.
type Result struct {
	// Workers is how many cluster nodes the job spanned.
	Workers int
	// Generated and Executed count tasks; they are equal iff the job
	// ran to completion.
	Generated, Executed int64
	// Nonlocal counts tasks executed on a node other than the one
	// that generated them — tasks that crossed the wire.
	Nonlocal int64
	// AppResult is the aggregated application result.
	AppResult int64
	// VirtualWork is the summed virtual compute time of executed
	// tasks.
	VirtualWork sim.Time
	// Phases counts the stop-the-world system phases the coordinator
	// drove.
	Phases int64
	// Wall is the job's elapsed real time at the coordinator; Busy is
	// the summed real time members spent executing tasks.
	Wall, Busy time.Duration
	// Canceled reports the job stopped early — a node died, the
	// submitter hung up, or the config's Timeout expired. The other
	// fields then cover only the work completed before the stop.
	Canceled bool
}

// NodeLostError reports that a cluster node died mid-job: its
// connection failed or its heartbeats stopped for a full timeout. The
// job's Result carries Canceled and partial counters.
type NodeLostError struct {
	Addr string
}

func (e *NodeLostError) Error() string {
	return fmt.Sprintf("cluster: node %s lost mid-job (connection failed or heartbeats stopped)", e.Addr)
}

// encodeOutcome folds a (Result, error) pair into the wire form, so
// the submitting node can reconstruct both.
func encodeOutcome(res Result, err error) resultMsg {
	m := resultMsg{
		Workers:   res.Workers,
		Generated: res.Generated,
		Executed:  res.Executed,
		Nonlocal:  res.Nonlocal,
		AppResult: res.AppResult,
		Work:      int64(res.VirtualWork),
		Phases:    res.Phases,
		WallNS:    int64(res.Wall),
		BusyNS:    int64(res.Busy),
		Canceled:  res.Canceled,
	}
	var lost *NodeLostError
	switch {
	case err == nil:
	case errors.As(err, &lost):
		m.ErrKind, m.ErrDetail = errNodeLost, lost.Addr
	case errors.Is(err, context.DeadlineExceeded):
		m.ErrKind = errDeadline
	case errors.Is(err, context.Canceled):
		m.ErrKind = errCanceled
	default:
		m.ErrKind, m.ErrDetail = errOther, err.Error()
	}
	return m
}

// decodeOutcome is encodeOutcome's inverse.
func decodeOutcome(m resultMsg) (Result, error) {
	res := Result{
		Workers:     m.Workers,
		Generated:   m.Generated,
		Executed:    m.Executed,
		Nonlocal:    m.Nonlocal,
		AppResult:   m.AppResult,
		VirtualWork: sim.Time(m.Work),
		Phases:      m.Phases,
		Wall:        time.Duration(m.WallNS),
		Busy:        time.Duration(m.BusyNS),
		Canceled:    m.Canceled,
	}
	switch m.ErrKind {
	case errNone:
		return res, nil
	case errNodeLost:
		return res, &NodeLostError{Addr: m.ErrDetail}
	case errDeadline:
		return res, context.DeadlineExceeded
	case errCanceled:
		return res, context.Canceled
	default:
		return res, errors.New(m.ErrDetail)
	}
}
