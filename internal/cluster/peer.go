//ripslint:allow-file wallclock per-frame I/O deadlines and heartbeat pacing are wall-clock by design; they detect dead peers and never influence which tasks run where
package cluster

import (
	"context"
	"net"
	"sync"
	"time"
)

// frame is one decoded wire frame.
type frame struct {
	t       frameType
	payload []byte
}

// peer wraps a connection in the failure discipline every long-lived
// cluster conversation uses: a reader goroutine that enforces a
// per-frame deadline, a heartbeat goroutine that keeps the other
// side's deadline fed, and a write lock so heartbeats interleave
// cleanly with protocol frames. When the conn dies — error, EOF, or a
// deadline expiring with no heartbeat — the reader records the reason
// and closes done, and every pending recv unblocks.
type peer struct {
	conn     net.Conn
	interval time.Duration // heartbeat send period
	timeout  time.Duration // per-frame read deadline

	wmu sync.Mutex

	inbox     chan frame
	done      chan struct{} // closed by the reader on conn death
	err       error         // why, set before done closes
	once      sync.Once
	closed    chan struct{} // closed by close()
	closeOnce sync.Once
}

func newPeer(conn net.Conn, interval, timeout time.Duration) *peer {
	p := &peer{
		conn:     conn,
		interval: interval,
		timeout:  timeout,
		inbox:    make(chan frame, 64),
		done:     make(chan struct{}),
		closed:   make(chan struct{}),
	}
	go p.read()
	go p.heartbeat()
	return p
}

// read pumps frames into the inbox, filtering heartbeats, until the
// conn dies. A read deadline of one heartbeat timeout is re-armed
// before every frame: a healthy peer's heartbeats always beat it, so
// its expiry means the peer is gone.
func (p *peer) read() {
	for {
		if err := p.conn.SetReadDeadline(time.Now().Add(p.timeout)); err != nil {
			p.fail(err)
			return
		}
		t, payload, err := readFrame(p.conn)
		if err != nil {
			p.fail(err)
			return
		}
		if t == fHeartbeat {
			continue
		}
		select {
		case p.inbox <- frame{t, payload}:
		case <-p.closed:
			return
		}
	}
}

// heartbeat keeps the other side's read deadline fed while this side
// has nothing to say.
func (p *peer) heartbeat() {
	tick := time.NewTicker(p.interval) //ripslint:allow sleep heartbeat pacing is the liveness protocol itself; it carries no work and shapes no schedule
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			// A send failure needs no handling here: the peer's reader
			// hits the same dead conn and records the reason.
			_ = p.send(fHeartbeat, nil)
		case <-p.closed:
			return
		case <-p.done:
			return
		}
	}
}

func (p *peer) fail(err error) {
	p.once.Do(func() {
		p.err = err
		close(p.done)
	})
}

// send writes one frame under the write lock with a write deadline.
func (p *peer) send(t frameType, payload []byte) error {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if err := p.conn.SetWriteDeadline(time.Now().Add(p.timeout)); err != nil {
		return err
	}
	return writeFrame(p.conn, t, payload)
}

// recv returns the next non-heartbeat frame. Frames already received
// before the conn died still drain in order; after that, recv reports
// why the conn died. Context cancellation wins over waiting.
func (p *peer) recv(ctx context.Context) (frame, error) {
	select {
	case f := <-p.inbox:
		return f, nil
	default:
	}
	select {
	case f := <-p.inbox:
		return f, nil
	case <-p.done:
		// Drain anything the reader enqueued before dying.
		select {
		case f := <-p.inbox:
			return f, nil
		default:
		}
		return frame{}, p.err
	case <-ctx.Done():
		return frame{}, ctx.Err()
	}
}

// tryRecv returns a pending frame without blocking.
func (p *peer) tryRecv() (frame, bool) {
	select {
	case f := <-p.inbox:
		return f, true
	default:
		return frame{}, false
	}
}

// close tears the peer down. Safe to call any number of times.
func (p *peer) close() {
	p.once.Do(func() {
		p.err = net.ErrClosed
		close(p.done)
	})
	p.closeOnce.Do(func() { close(p.closed) })
	_ = p.conn.Close()
}
