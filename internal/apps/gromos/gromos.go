// Package gromos is the synthetic stand-in for the paper's third test
// application: the GROMOS molecular dynamics program running the
// bovine superoxide dismutase (SOD) molecule — 6968 atoms with cutoff
// radii of 8, 12 and 16 Angstrom. GROMOS and the SOD coordinates are
// not redistributable, so this surrogate reproduces the load-balancing
// relevant structure instead (see DESIGN.md):
//
//   - a fixed, input-determined number of processes (the paper reports
//     4986 tasks for every cutoff) — the task set is static;
//   - nonuniform computation density: per-task work is the real count
//     of atom pairs within the cutoff radius, computed over a clustered
//     synthetic molecule, so tasks covering dense regions cost several
//     times the sparse ones;
//   - work that grows roughly with the cube of the cutoff radius,
//     matching the paper's 8 A : 12 A : 16 A execution-time ratios.
//
// All geometry is deterministic (seeded); the pair counting is real
// computation over cell lists, not a sampled distribution.
package gromos

import (
	"fmt"
	"math"
	"math/rand"

	"rips/internal/app"
	"rips/internal/invariant"
	"rips/internal/sim"
)

// Molecule geometry constants: 6968 atoms (the SOD atom count) grouped
// into 4986 charge groups (the paper's task count).
const (
	NumAtoms  = 6968
	NumGroups = 4986
)

// Cost model: CostPerPair folds the per-pair force evaluation over the
// simulated trajectory segment into one task execution; CostPerAtom
// covers integration and bonded terms. Calibrated so the 8 A cutoff
// lands near the paper's sequential workload (~55-60 s).
const (
	CostPerPair = 55 * sim.Microsecond
	CostPerAtom = 400 * sim.Microsecond
)

// vec3 is a position in Angstrom.
type vec3 struct{ x, y, z float64 }

// App is the molecular-dynamics surrogate for one cutoff radius.
type App struct {
	name    string
	cutoff  float64
	pos     []vec3
	groups  [][2]int32 // [start, end) atom ranges per task
	cells   map[[3]int32][]int32
	cellSz  float64
	boxSize float64
}

// New builds the surrogate molecule and neighbor structure for the
// given cutoff radius in Angstrom.
func New(cutoff float64) *App {
	if cutoff <= 0 {
		invariant.Violated("gromos: cutoff %v out of range", cutoff)
	}
	a := &App{
		name:    fmt.Sprintf("gromos %gA", cutoff),
		cutoff:  cutoff,
		boxSize: 64,
		cellSz:  cutoff,
	}
	a.generate(1995) // fixed seed: the "input file"
	a.buildCells()
	a.buildGroups()
	return a
}

// Configs returns the paper's three cutoff configurations.
func Configs() []*App { return []*App{New(8), New(12), New(16)} }

// generate places atoms in clustered blobs (protein domains) plus a
// sparse solvent background, producing the nonuniform density the
// paper's load imbalance comes from.
func (a *App) generate(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	const blobs = 24
	centers := make([]vec3, blobs)
	for i := range centers {
		centers[i] = vec3{
			x: 8 + rng.Float64()*(a.boxSize-16),
			y: 8 + rng.Float64()*(a.boxSize-16),
			z: 8 + rng.Float64()*(a.boxSize-16),
		}
	}
	a.pos = make([]vec3, NumAtoms)
	for i := range a.pos {
		if i%8 == 7 { // solvent background, uniform
			a.pos[i] = vec3{rng.Float64() * a.boxSize, rng.Float64() * a.boxSize, rng.Float64() * a.boxSize}
			continue
		}
		c := centers[(i/64)%blobs] // consecutive atoms share a blob
		sigma := 4.5
		a.pos[i] = vec3{
			x: clamp(c.x+rng.NormFloat64()*sigma, 0, a.boxSize),
			y: clamp(c.y+rng.NormFloat64()*sigma, 0, a.boxSize),
			z: clamp(c.z+rng.NormFloat64()*sigma, 0, a.boxSize),
		}
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// buildCells bins atoms into cutoff-sized cells for O(1) neighbor
// lookups.
func (a *App) buildCells() {
	a.cells = make(map[[3]int32][]int32)
	for i, p := range a.pos {
		k := a.cellOf(p)
		a.cells[k] = append(a.cells[k], int32(i))
	}
}

func (a *App) cellOf(p vec3) [3]int32 {
	return [3]int32{int32(p.x / a.cellSz), int32(p.y / a.cellSz), int32(p.z / a.cellSz)}
}

// buildGroups partitions atoms into NumGroups contiguous charge
// groups; contiguity keeps each group spatially coherent (atoms were
// generated blob by blob), which is what skews per-task cost.
func (a *App) buildGroups() {
	a.groups = make([][2]int32, NumGroups)
	base := NumAtoms / NumGroups
	rem := NumAtoms % NumGroups
	start := int32(0)
	for g := range a.groups {
		size := int32(base)
		if g < rem {
			size++
		}
		a.groups[g] = [2]int32{start, start + size}
		start += size
	}
	if start != NumAtoms {
		invariant.Violated("gromos: group partition does not cover all atoms")
	}
}

// neighbors counts atoms within the cutoff of atom i (excluding i).
func (a *App) neighbors(i int32) int {
	p := a.pos[i]
	k := a.cellOf(p)
	r2 := a.cutoff * a.cutoff
	count := 0
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			for dz := int32(-1); dz <= 1; dz++ {
				for _, j := range a.cells[[3]int32{k[0] + dx, k[1] + dy, k[2] + dz}] {
					if j == i {
						continue
					}
					q := a.pos[j]
					d := (p.x-q.x)*(p.x-q.x) + (p.y-q.y)*(p.y-q.y) + (p.z-q.z)*(p.z-q.z)
					if d <= r2 {
						count++
					}
				}
			}
		}
	}
	return count
}

// Name returns e.g. "gromos 16A".
func (a *App) Name() string { return a.name }

// Rounds is 1: the task set is static.
func (a *App) Rounds() int { return 1 }

// BlockDistributed reports true: like the real GROMOS, the charge
// groups start block-distributed across the processors (the static
// SPMD decomposition); the load balancer only has to correct the
// density imbalance, which is why the paper's Table I shows only ~10%
// of GROMOS tasks moving under RID and RIPS.
func (a *App) BlockDistributed() bool { return true }

// Roots returns all charge-group tasks.
func (a *App) Roots(round int) []app.Spawn {
	out := make([]app.Spawn, NumGroups)
	for g := range out {
		out[g] = app.Spawn{Data: int32(g), Size: 24}
	}
	return out
}

// Execute computes the nonbonded interaction load of one charge group:
// the real pair count of its atoms within the cutoff radius.
//
// Execute is real-execution safe: after New returns, pos, groups and
// cells are never written again, so the cell-list lookups below are
// concurrent reads of frozen data — any number of workers may execute
// charge groups of one shared instance in parallel.
func (a *App) Execute(data any, emit func(app.Spawn)) sim.Time {
	w, _ := a.ExecuteCount(data, emit)
	return w
}

// ExecuteCount is Execute reporting also the group's neighbor count
// (app.Counted): the number of in-cutoff pairs its atoms participate
// in, the real quantity the cost model is priced on. The aggregate
// over a run must equal TotalPairs however tasks were placed — a
// direct proof that every charge group was executed exactly once.
func (a *App) ExecuteCount(data any, emit func(app.Spawn)) (sim.Time, int64) {
	g := a.groups[data.(int32)]
	w := sim.Time(0)
	pairs := int64(0)
	for i := g[0]; i < g[1]; i++ {
		n := a.neighbors(i)
		pairs += int64(n)
		w += CostPerAtom + sim.Time(n)*CostPerPair
	}
	return w, pairs
}

// TotalPairs returns the summed per-atom neighbor count (pairs counted
// from both ends), used by tests and calibration reports.
func (a *App) TotalPairs() int {
	total := 0
	for i := int32(0); i < NumAtoms; i++ {
		total += a.neighbors(i)
	}
	return total
}

// DensitySkew returns max/mean per-group work, a measure of the load
// nonuniformity the scheduler must correct.
func (a *App) DensitySkew() float64 {
	var max, sum float64
	for g := range a.groups {
		w := float64(a.Execute(int32(g), nil))
		sum += w
		if w > max {
			max = w
		}
	}
	mean := sum / float64(len(a.groups))
	if mean == 0 {
		return math.Inf(1)
	}
	return max / mean
}
