package gromos

import (
	"encoding/binary"
	"fmt"
)

// AppendPayload implements app.PayloadCodec: a task is a charge-group
// index, serialized as one big-endian uint32. The group geometry
// itself never crosses the wire — every cluster node constructs the
// identical molecule from the fixed seed, so the index alone
// reproduces the task.
func (a *App) AppendPayload(dst []byte, data any) ([]byte, error) {
	g, ok := data.(int32)
	if !ok {
		return nil, fmt.Errorf("gromos: payload %T is not a charge-group index", data)
	}
	return binary.BigEndian.AppendUint32(dst, uint32(g)), nil
}

// DecodePayload implements app.PayloadCodec.
func (a *App) DecodePayload(p []byte) (any, error) {
	if len(p) != 4 {
		return nil, fmt.Errorf("gromos: payload is %d bytes, want 4", len(p))
	}
	g := int32(binary.BigEndian.Uint32(p))
	if g < 0 || g >= NumGroups {
		return nil, fmt.Errorf("gromos: charge-group index %d out of range [0, %d)", g, NumGroups)
	}
	return g, nil
}
