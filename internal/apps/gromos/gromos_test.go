package gromos

import (
	"testing"

	"rips/internal/app"
)

func TestTaskCountMatchesPaper(t *testing.T) {
	a := New(8)
	p := app.Measure(a)
	if p.Tasks != NumGroups || NumGroups != 4986 {
		t.Errorf("tasks = %d, want 4986", p.Tasks)
	}
	if a.Rounds() != 1 {
		t.Errorf("Rounds = %d", a.Rounds())
	}
}

func TestGroupsPartitionAtoms(t *testing.T) {
	a := New(8)
	covered := 0
	prevEnd := int32(0)
	for _, g := range a.groups {
		if g[0] != prevEnd {
			t.Fatalf("group gap: starts at %d after %d", g[0], prevEnd)
		}
		if g[1] <= g[0] {
			t.Fatalf("empty group %v", g)
		}
		covered += int(g[1] - g[0])
		prevEnd = g[1]
	}
	if covered != NumAtoms {
		t.Errorf("groups cover %d atoms, want %d", covered, NumAtoms)
	}
}

func TestWorkGrowsWithCutoff(t *testing.T) {
	w8 := app.Measure(New(8)).Work
	w12 := app.Measure(New(12)).Work
	w16 := app.Measure(New(16)).Work
	if !(w8 < w12 && w12 < w16) {
		t.Fatalf("work not increasing with cutoff: %v %v %v", w8, w12, w16)
	}
	// The paper's execution times scale roughly 1 : 3 : 6.3 across
	// cutoffs; require at least superlinear growth in the surrogate.
	if float64(w16) < 3.5*float64(w8) {
		t.Errorf("16A work (%v) should be several times 8A work (%v)", w16, w8)
	}
}

func TestDeterministic(t *testing.T) {
	a, b := New(12), New(12)
	for g := int32(0); g < 50; g++ {
		if a.Execute(g, nil) != b.Execute(g, nil) {
			t.Fatalf("group %d work differs between constructions", g)
		}
	}
}

func TestDensityNonuniform(t *testing.T) {
	// The whole reason the paper needs load balancing for GROMOS:
	// computation density varies across processes.
	if skew := New(8).DensitySkew(); skew < 1.5 {
		t.Errorf("density skew = %.2f, want >= 1.5 (nonuniform load)", skew)
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	// Pair counting must be symmetric: total over all atoms is even.
	if p := New(8).TotalPairs(); p%2 != 0 {
		t.Errorf("total pair-end count %d is odd", p)
	}
}

func TestNeighborsBruteForceSpotCheck(t *testing.T) {
	a := New(10)
	r2 := a.cutoff * a.cutoff
	for _, i := range []int32{0, 123, 4567, NumAtoms - 1} {
		want := 0
		p := a.pos[i]
		for j := int32(0); j < NumAtoms; j++ {
			if j == i {
				continue
			}
			q := a.pos[j]
			d := (p.x-q.x)*(p.x-q.x) + (p.y-q.y)*(p.y-q.y) + (p.z-q.z)*(p.z-q.z)
			if d <= r2 {
				want++
			}
		}
		if got := a.neighbors(i); got != want {
			t.Errorf("neighbors(%d) = %d, brute force = %d", i, got, want)
		}
	}
}

func TestNoChildrenEmitted(t *testing.T) {
	a := New(8)
	emitted := 0
	a.Execute(int32(0), func(app.Spawn) { emitted++ })
	if emitted != 0 {
		t.Errorf("static task emitted %d children", emitted)
	}
}

func TestConfigs(t *testing.T) {
	cfgs := Configs()
	if len(cfgs) != 3 {
		t.Fatalf("%d configs", len(cfgs))
	}
	names := []string{"gromos 8A", "gromos 12A", "gromos 16A"}
	for i, a := range cfgs {
		if a.Name() != names[i] {
			t.Errorf("config %d name = %q", i, a.Name())
		}
	}
}

func TestNewPanicsOnBadCutoff(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

// TestCounted checks the app.Counted contract: ExecuteCount must agree
// with Execute on virtual time, and the aggregate over all charge
// groups must be exactly TotalPairs — the groups partition the atoms,
// so each atom's neighbor count is summed exactly once.
func TestCounted(t *testing.T) {
	a := New(8)
	if _, ok := app.App(a).(app.Counted); !ok {
		t.Fatal("gromos does not implement app.Counted")
	}
	var total int64
	for g := int32(0); g < NumGroups; g++ {
		w, pairs := a.ExecuteCount(g, nil)
		if we := a.Execute(g, nil); we != w {
			t.Fatalf("group %d: Execute work %v != ExecuteCount work %v", g, we, w)
		}
		total += pairs
	}
	if want := int64(a.TotalPairs()); total != want {
		t.Errorf("summed pair count = %d, want TotalPairs = %d", total, want)
	}
	if p := app.Measure(a); p.Result != total {
		t.Errorf("Measure Result = %d, want %d", p.Result, total)
	}
}
