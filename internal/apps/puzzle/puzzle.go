// Package puzzle is the paper's second test application: iterative
// deepening A* (IDA*, Korf 1985) on the sliding-tile puzzle, with the
// 15-puzzle and three start configurations as in the paper. The search
// is real — boards, Manhattan-distance heuristic and the bounded DFS
// are all executed — and each IDA* iteration is one globally
// synchronized round, which is exactly the structure the paper blames
// for this workload's reduced effective parallelism.
//
// The final round completes the whole f <= bound search space rather
// than stopping at the first solution; this keeps runs deterministic
// across schedulers (a standard simplification in parallel IDA*
// studies — the paper's own runs likewise execute whole iterations
// between synchronizations).
package puzzle

import (
	"math/rand"

	"rips/internal/app"
	"rips/internal/invariant"
	"rips/internal/sim"
)

// CostPerNode is the virtual compute charged per search node; 3 us
// puts the paper's three configurations in Table I's time range.
const CostPerNode = 3 * sim.Microsecond

// spawnCost is the bookkeeping work to emit one child task.
const spawnCost = 5 * sim.Microsecond

// Board is a width x width sliding puzzle, tiles packed 4 bits per
// cell (so width <= 4); 0 is the blank.
type Board struct {
	cells uint64
	blank int8
	width int8
}

// tile returns the tile at position p.
func (b Board) tile(p int8) int8 { return int8(b.cells >> (uint(p) * 4) & 0xF) }

// setTile places tile t at position p.
func (b *Board) setTile(p, t int8) {
	shift := uint(p) * 4
	b.cells = b.cells&^(0xF<<shift) | uint64(t)<<shift
}

// Goal returns the solved board: tiles 1..w*w-1 in order, blank last.
func Goal(width int) Board {
	if width < 2 || width > 4 {
		invariant.Violated("puzzle: width %d out of range", width)
	}
	b := Board{width: int8(width)}
	n := int8(width * width)
	for p := int8(0); p < n-1; p++ {
		b.setTile(p, p+1)
	}
	b.blank = n - 1
	return b
}

// manhattan returns the sum of tile Manhattan distances to goal.
func (b Board) manhattan() int {
	w := int(b.width)
	h := 0
	for p := 0; p < w*w; p++ {
		t := int(b.tile(int8(p)))
		if t == 0 {
			continue
		}
		gp := t - 1
		dr := p/w - gp/w
		if dr < 0 {
			dr = -dr
		}
		dc := p%w - gp%w
		if dc < 0 {
			dc = -dc
		}
		h += dr + dc
	}
	return h
}

// moves lists the blank's destination cells.
func (b Board) moves() []int8 {
	w := b.width
	p := b.blank
	out := make([]int8, 0, 4)
	if p >= w {
		out = append(out, p-w)
	}
	if p < w*w-w {
		out = append(out, p+w)
	}
	if p%w != 0 {
		out = append(out, p-1)
	}
	if p%w != w-1 {
		out = append(out, p+1)
	}
	return out
}

// apply slides the tile at cell src into the blank, returning the new
// board and the heuristic delta.
func (b Board) apply(src int8) (Board, int) {
	t := b.tile(src)
	w := int(b.width)
	gp := int(t) - 1
	dist := func(p int) int {
		dr := p/w - gp/w
		if dr < 0 {
			dr = -dr
		}
		dc := p%w - gp%w
		if dc < 0 {
			dc = -dc
		}
		return dr + dc
	}
	nb := b
	nb.setTile(b.blank, t)
	nb.setTile(src, 0)
	nb.blank = src
	return nb, dist(int(b.blank)) - dist(int(src))
}

// Scramble returns the board reached by a walk of n random moves from
// the goal (never undoing the previous move), so it is always solvable
// with optimal depth of the same parity as the walk.
func Scramble(width, n int, seed int64) Board {
	rng := rand.New(rand.NewSource(seed))
	b := Goal(width)
	prev := int8(-1)
	for i := 0; i < n; i++ {
		ms := b.moves()
		// Filter the inverse of the previous move.
		k := 0
		for _, m := range ms {
			if m != prev {
				ms[k] = m
				k++
			}
		}
		ms = ms[:k]
		pick := ms[rng.Intn(len(ms))]
		prev = b.blank
		b, _ = b.apply(pick)
	}
	return b
}

// node is a task payload: a search-frontier state of one iteration.
type node struct {
	b     Board
	g     int16 // moves so far
	h     int16 // Manhattan heuristic
	prev  int8  // blank's previous cell (to avoid 2-cycles), -1 at root
	bound int16 // this iteration's f bound
}

// nodeSize is the serialized payload size in bytes.
const nodeSize = 16

// App runs IDA* from one start configuration.
type App struct {
	name   string
	start  Board
	budget int
	bounds []int16 // f bound of each iteration
	depth  int     // optimal solution length
}

// New builds the workload, running a sequential IDA* to discover the
// iteration bounds (and thereby the solution depth). budget caps the
// remaining search depth (bound - g) a single task may carry: states
// closer to the root than that are expanded into child tasks. A depth
// budget — rather than a fixed split depth — bounds every leaf task's
// subtree to roughly branching^budget nodes, keeping grain sizes in
// the paper's low-millisecond range across all iterations.
func New(name string, start Board, budget int) *App {
	if budget < 0 {
		invariant.Violated("puzzle: negative split budget")
	}
	a := &App{name: name, start: start, budget: budget}
	h := int16(start.manhattan())
	bound := h
	for {
		a.bounds = append(a.bounds, bound)
		found, next := probe(start, 0, h, bound, -1)
		if found {
			a.depth = int(bound)
			break
		}
		if next == maxF {
			invariant.Violated("puzzle: search space exhausted without a solution (unsolvable board?)")
		}
		bound = next
	}
	return a
}

const maxF = int16(1<<15 - 1)

// probe is the discovery-time IDA* iteration: reports whether a
// solution exists within bound and the next bound otherwise. Unlike
// Execute, it may stop at the first solution — only the bound sequence
// matters here.
func probe(b Board, g, h, bound int16, prev int8) (bool, int16) {
	f := g + h
	if f > bound {
		return false, f
	}
	if h == 0 {
		return true, f
	}
	next := maxF
	for _, m := range b.moves() {
		if m == prev {
			continue
		}
		nb, dh := b.apply(m)
		found, nf := probe(nb, g+1, h+int16(dh), bound, b.blank)
		if found {
			return true, nf
		}
		if nf < next {
			next = nf
		}
	}
	return false, next
}

// Name returns the configuration name, e.g. "15-puzzle #3".
func (a *App) Name() string { return a.name }

// Rounds is the number of IDA* iterations.
func (a *App) Rounds() int { return len(a.bounds) }

// SolutionDepth returns the optimal solution length.
func (a *App) SolutionDepth() int { return a.depth }

// Bounds returns the f bound of every iteration.
func (a *App) Bounds() []int16 { return append([]int16(nil), a.bounds...) }

// Roots seeds round r with the start state at that round's bound.
func (a *App) Roots(round int) []app.Spawn {
	return []app.Spawn{{
		Data: node{b: a.start, h: int16(a.start.manhattan()), prev: -1, bound: a.bounds[round]},
		Size: nodeSize,
	}}
}

// Execute expands a frontier state into child tasks until the split
// depth; beyond it, the task runs the bounded DFS to completion and is
// charged its real node count.
func (a *App) Execute(data any, emit func(app.Spawn)) sim.Time {
	w, _ := a.ExecuteCount(data, emit)
	return w
}

// ExecuteCount is Execute reporting also the number of goal states the
// task's bounded DFS reached (app.Counted). Iterations below the
// optimal bound contribute 0 everywhere; the final iteration's total
// is the number of distinct optimal solution paths — a quantity every
// scheduling backend must reproduce exactly.
func (a *App) ExecuteCount(data any, emit func(app.Spawn)) (sim.Time, int64) {
	nd := data.(node)
	if nd.g+nd.h > nd.bound {
		return CostPerNode, 0 // pruned on arrival
	}
	if int(nd.bound)-int(nd.g) > a.budget && nd.h != 0 {
		children := 0
		for _, m := range nd.b.moves() {
			if m == nd.prev {
				continue
			}
			nb, dh := nd.b.apply(m)
			child := node{b: nb, g: nd.g + 1, h: nd.h + int16(dh), prev: nd.b.blank, bound: nd.bound}
			if child.g+child.h <= nd.bound {
				emit(app.Spawn{Data: child, Size: nodeSize})
				children++
			}
		}
		return CostPerNode + sim.Time(children)*spawnCost, 0
	}
	nodes, goals := search(nd.b, nd.g, nd.h, nd.bound, nd.prev)
	return sim.Time(nodes) * CostPerNode, int64(goals)
}

// search is the full bounded DFS (no early exit), returning the number
// of nodes visited (including this one) and of goal states reached.
func search(b Board, g, h, bound int16, prev int8) (nodes, goals uint64) {
	if g+h > bound {
		return 1, 0
	}
	if h == 0 {
		return 1, 1
	}
	nodes = 1
	for _, m := range b.moves() {
		if m == prev {
			continue
		}
		nb, dh := b.apply(m)
		n, s := search(nb, g+1, h+int16(dh), bound, b.blank)
		nodes += n
		goals += s
	}
	return nodes, goals
}

// Configs returns the paper's three 15-puzzle configurations, realized
// as deterministic scrambles of increasing difficulty (the paper's
// start states are not published). They are calibrated to the paper's
// Table I/II workloads: sequential work of roughly 10 s, 30 s and
// 110 s, with configuration #3 dwarfing #1 and #2 and every
// configuration spending its first iterations nearly serial. The
// depth budget of 24 keeps leaf-task grains in the low milliseconds;
// our decomposition is therefore finer than the paper's (tens of
// thousands of tasks rather than thousands), which EXPERIMENTS.md
// discusses.
func Configs() []*App {
	return []*App{Config(1), Config(2), Config(3)}
}

// Config returns one of the paper's configurations (1-based) without
// constructing the others — construction runs the sequential
// bound-discovery IDA*, which is costly for the larger configs, so
// callers needing a single configuration should not pay for all three.
func Config(i int) *App {
	switch i {
	case 1:
		return New("15-puzzle #1", Scramble(4, 48, 401), 24)
	case 2:
		return New("15-puzzle #2", Scramble(4, 60, 404), 24)
	case 3:
		return New("15-puzzle #3", Scramble(4, 56, 402), 24)
	}
	invariant.Violated("puzzle: config %d out of range 1..3", i)
	return nil
}
