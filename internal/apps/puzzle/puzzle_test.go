package puzzle

import (
	"testing"

	"rips/internal/app"
	"rips/internal/sim"
)

func TestGoalProperties(t *testing.T) {
	for _, w := range []int{2, 3, 4} {
		g := Goal(w)
		if g.manhattan() != 0 {
			t.Errorf("width %d: goal heuristic = %d", w, g.manhattan())
		}
		if int(g.blank) != w*w-1 {
			t.Errorf("width %d: blank at %d", w, g.blank)
		}
		for p := 0; p < w*w-1; p++ {
			if got := g.tile(int8(p)); got != int8(p+1) {
				t.Errorf("width %d: tile(%d) = %d", w, p, got)
			}
		}
	}
}

func TestGoalPanicsOnBadWidth(t *testing.T) {
	for _, w := range []int{1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Goal(%d) did not panic", w)
				}
			}()
			Goal(w)
		}()
	}
}

func TestApplyIsReversibleAndTracksHeuristic(t *testing.T) {
	b := Scramble(4, 20, 7)
	h := b.manhattan()
	for _, m := range b.moves() {
		nb, dh := b.apply(m)
		if nb.manhattan() != h+dh {
			t.Errorf("incremental heuristic wrong: %d vs %d", nb.manhattan(), h+dh)
		}
		back, dh2 := nb.apply(b.blank)
		if back.cells != b.cells || back.blank != b.blank {
			t.Error("apply not reversible")
		}
		if dh+dh2 != 0 {
			t.Errorf("heuristic deltas do not cancel: %d + %d", dh, dh2)
		}
	}
}

func TestMovesCount(t *testing.T) {
	// Corner: 2 moves; edge: 3; interior: 4 (for the blank).
	g := Goal(4) // blank at 15, a corner
	if len(g.moves()) != 2 {
		t.Errorf("corner blank has %d moves", len(g.moves()))
	}
}

func TestScrambleSolvableAtWalkParity(t *testing.T) {
	for _, walk := range []int{0, 5, 12, 21} {
		b := Scramble(3, walk, 42)
		a := New("t", b, 4)
		if a.SolutionDepth() > walk {
			t.Errorf("walk %d: solution depth %d exceeds walk length", walk, a.SolutionDepth())
		}
		if (a.SolutionDepth()-walk)%2 != 0 {
			t.Errorf("walk %d: depth %d has wrong parity", walk, a.SolutionDepth())
		}
	}
}

func TestScrambleDeterministic(t *testing.T) {
	a := Scramble(4, 30, 9)
	b := Scramble(4, 30, 9)
	if a.cells != b.cells || a.blank != b.blank {
		t.Error("Scramble not deterministic")
	}
}

func TestBoundsStrictlyIncrease(t *testing.T) {
	a := New("t", Scramble(4, 30, 5), 6)
	bs := a.Bounds()
	if len(bs) == 0 {
		t.Fatal("no bounds")
	}
	start := a.start.manhattan()
	if int(bs[0]) != start {
		t.Errorf("first bound %d, want heuristic %d", bs[0], start)
	}
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			t.Errorf("bounds not increasing: %v", bs)
		}
		if (bs[i]-bs[i-1])%2 != 0 {
			t.Errorf("bound parity broken: %v", bs)
		}
	}
	if int(bs[len(bs)-1]) != a.SolutionDepth() {
		t.Errorf("last bound %d != depth %d", bs[len(bs)-1], a.SolutionDepth())
	}
}

// TestDecompositionMatchesPlainSearch: for each round, the total nodes
// visited by the task tree must equal a plain bounded DFS, independent
// of the split depth.
func TestDecompositionMatchesPlainSearch(t *testing.T) {
	b := Scramble(3, 16, 3)
	plain := New("plain", b, 0)
	for _, split := range []int{2, 4, 7} {
		a := New("t", b, split)
		p0 := app.Measure(plain)
		p1 := app.Measure(a)
		if p0.Rounds[len(p0.Rounds)-1].Work == 0 {
			t.Fatal("degenerate profile")
		}
		// Work differs only by spawn bookkeeping; compare leaf search
		// volume per round via a lower bound: every round's work must
		// be within spawn overhead of the plain one.
		for r := range p0.Rounds {
			w0, w1 := p0.Rounds[r].Work, p1.Rounds[r].Work
			spawnSlack := sim.Time(p1.Rounds[r].Tasks) * (spawnCost + CostPerNode)
			if w1 < w0-spawnSlack || w1 > w0+spawnSlack {
				t.Errorf("split %d round %d: work %v vs plain %v (slack %v)", split, r, w1, w0, spawnSlack)
			}
		}
	}
}

func TestRootsCarryRoundBounds(t *testing.T) {
	a := New("t", Scramble(4, 24, 8), 6)
	for r := 0; r < a.Rounds(); r++ {
		roots := a.Roots(r)
		if len(roots) != 1 {
			t.Fatalf("round %d: %d roots", r, len(roots))
		}
		nd := roots[0].Data.(node)
		if nd.bound != a.bounds[r] {
			t.Errorf("round %d: bound %d, want %d", r, nd.bound, a.bounds[r])
		}
	}
}

func TestExecutePrunesOverBound(t *testing.T) {
	a := New("t", Scramble(4, 24, 8), 6)
	nd := node{b: a.start, g: 100, h: int16(a.start.manhattan()), bound: a.bounds[0]}
	emitted := 0
	w := a.Execute(nd, func(app.Spawn) { emitted++ })
	if emitted != 0 {
		t.Errorf("pruned node emitted %d children", emitted)
	}
	if w != CostPerNode {
		t.Errorf("pruned node work = %v", w)
	}
}

func TestEarlyRoundsNearlySerial(t *testing.T) {
	// The paper's observation: early IDA* iterations have almost no
	// parallelism. The first round's task count must be tiny compared
	// to the last round's.
	a := New("t", Scramble(4, 40, 11), 8)
	p := app.Measure(a)
	first, last := p.Rounds[0].Tasks, p.Rounds[len(p.Rounds)-1].Tasks
	if first*4 > last {
		t.Errorf("first round %d tasks vs last %d — expected strong growth", first, last)
	}
}

func TestConfigsOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-size configurations take seconds to profile")
	}
	cfgs := Configs()
	if len(cfgs) != 3 {
		t.Fatalf("%d configs", len(cfgs))
	}
	var works [3]float64
	for i, a := range cfgs {
		p := app.Measure(a)
		works[i] = p.Work.Seconds()
	}
	if !(works[0] < works[1] && works[1] < works[2]) {
		t.Errorf("config works not increasing: %v", works)
	}
	if works[2] < 3*works[1] {
		t.Errorf("config #3 (%.1fs) should dwarf #2 (%.1fs)", works[2], works[1])
	}
}
