package puzzle

import (
	"encoding/binary"
	"fmt"
)

// payloadSize is the canonical wire encoding's length: the packed
// board (cells, blank, width) followed by g, h, prev and bound.
const payloadSize = 8 + 1 + 1 + 2 + 2 + 1 + 2

// AppendPayload implements app.PayloadCodec: a search-frontier node
// serializes as its packed board followed by the search bookkeeping,
// big-endian.
func (a *App) AppendPayload(dst []byte, data any) ([]byte, error) {
	nd, ok := data.(node)
	if !ok {
		return nil, fmt.Errorf("puzzle: payload %T is not a search node", data)
	}
	dst = binary.BigEndian.AppendUint64(dst, nd.b.cells)
	dst = append(dst, byte(nd.b.blank), byte(nd.b.width))
	dst = binary.BigEndian.AppendUint16(dst, uint16(nd.g))
	dst = binary.BigEndian.AppendUint16(dst, uint16(nd.h))
	dst = append(dst, byte(nd.prev))
	dst = binary.BigEndian.AppendUint16(dst, uint16(nd.bound))
	return dst, nil
}

// DecodePayload implements app.PayloadCodec.
func (a *App) DecodePayload(p []byte) (any, error) {
	if len(p) != payloadSize {
		return nil, fmt.Errorf("puzzle: payload is %d bytes, want %d", len(p), payloadSize)
	}
	nd := node{
		b: Board{
			cells: binary.BigEndian.Uint64(p[0:8]),
			blank: int8(p[8]),
			width: int8(p[9]),
		},
		g:     int16(binary.BigEndian.Uint16(p[10:12])),
		h:     int16(binary.BigEndian.Uint16(p[12:14])),
		prev:  int8(p[14]),
		bound: int16(binary.BigEndian.Uint16(p[15:17])),
	}
	if nd.b.width < 2 || nd.b.width > 4 {
		return nil, fmt.Errorf("puzzle: decoded board width %d out of range", nd.b.width)
	}
	return nd, nil
}
