// Package kernels provides the workload classes the paper's
// introduction organizes its argument around, beyond the three
// evaluation applications:
//
//   - Gaussian elimination and FFT — the paper's examples of *static*
//     problems ("problems with a predictable structure"), where a
//     compile-time distribution needs no runtime correction;
//   - a multigrid V-cycle — the paper's example of a *dynamic* problem
//     whose parallelism varies wildly between phases.
//
// They are work-model kernels: the round/task structure and per-task
// costs follow the real algorithms' operation counts (the property
// scheduling cares about), while the floating-point payload itself is
// not materialized. Together with N-Queens (irregular dynamic) and the
// GROMOS surrogate (static count, nonuniform cost) they span the
// paper's Section 1 taxonomy, which the exp.Taxonomy experiment turns
// into a table: static scheduling suffices exactly where the paper
// says it does.
//
// All three kernels are real-execution safe: Execute reads only fields
// frozen at construction, carries all per-task state in the task
// payload, and interacts with the runtime exclusively through emit, so
// any number of workers may execute tasks of one shared instance
// concurrently. Each kernel implements app.Counted with its inner-loop
// operation count (work / costPerOp), giving the differential tests a
// summable result that must survive any task placement bit for bit.
package kernels

import (
	"fmt"

	"rips/internal/app"
	"rips/internal/invariant"
	"rips/internal/sim"
)

// costPerOp is the virtual compute charged per inner-loop operation,
// on the same scale as the other workloads' calibration.
const costPerOp = 50 * sim.Nanosecond

// Gauss is Gaussian elimination on a dense n x n system: round k
// eliminates column k from rows k+1..n-1, so rounds shrink linearly
// and every task in a round costs the same — the paper's archetype of
// a predictable, static problem.
type Gauss struct {
	n     int
	block int // rows per task
}

// NewGauss returns the elimination workload for an n x n matrix with
// the given row-block size per task.
func NewGauss(n, block int) *Gauss {
	if n < 2 || block < 1 {
		invariant.Violated("kernels: bad gauss parameters n=%d block=%d", n, block)
	}
	return &Gauss{n: n, block: block}
}

func (g *Gauss) Name() string { return fmt.Sprintf("gauss %d", g.n) }

// Rounds is n-1: one per pivot, globally synchronized (row k+1 must be
// fully updated before it can pivot).
func (g *Gauss) Rounds() int { return g.n - 1 }

// BlockDistributed: the matrix rows start block-distributed, like any
// SPMD dense solver.
func (g *Gauss) BlockDistributed() bool { return true }

// gaussTask eliminates rows [lo,hi) against pivot k.
type gaussTask struct {
	k, lo, hi int32
}

func (g *Gauss) Roots(round int) []app.Spawn {
	k := round
	var out []app.Spawn
	for lo := k + 1; lo < g.n; lo += g.block {
		hi := lo + g.block
		if hi > g.n {
			hi = g.n
		}
		out = append(out, app.Spawn{Data: gaussTask{k: int32(k), lo: int32(lo), hi: int32(hi)}, Size: 12})
	}
	return out
}

func (g *Gauss) Execute(data any, emit func(app.Spawn)) sim.Time {
	w, _ := g.ExecuteCount(data, emit)
	return w
}

// ExecuteCount is Execute reporting also the task's row-update
// operation count (app.Counted): rows eliminated times the remaining
// matrix width. Summed over a run it must equal the elimination's
// total operation count however tasks were placed.
func (g *Gauss) ExecuteCount(data any, emit func(app.Spawn)) (sim.Time, int64) {
	t := data.(gaussTask)
	rows := int(t.hi - t.lo)
	width := g.n - int(t.k) // remaining columns incl. the pivot column
	ops := rows * width
	return sim.Time(ops) * costPerOp, int64(ops)
}

// FFT is an n-point radix-2 FFT: log2(n) rounds of n/2 butterflies,
// grouped into blocks — perfectly uniform tasks, the other static
// archetype.
type FFT struct {
	logN  int
	block int // butterflies per task
}

// NewFFT returns the transform workload for 2^logN points.
func NewFFT(logN, block int) *FFT {
	if logN < 1 || logN > 30 || block < 1 {
		invariant.Violated("kernels: bad fft parameters logN=%d block=%d", logN, block)
	}
	return &FFT{logN: logN, block: block}
}

func (f *FFT) Name() string           { return fmt.Sprintf("fft 2^%d", f.logN) }
func (f *FFT) Rounds() int            { return f.logN }
func (f *FFT) BlockDistributed() bool { return true }

type fftTask struct {
	count int32 // butterflies in this task
}

func (f *FFT) Roots(round int) []app.Spawn {
	half := 1 << (f.logN - 1)
	var out []app.Spawn
	for lo := 0; lo < half; lo += f.block {
		c := f.block
		if lo+c > half {
			c = half - lo
		}
		out = append(out, app.Spawn{Data: fftTask{count: int32(c)}, Size: 8})
	}
	return out
}

func (f *FFT) Execute(data any, emit func(app.Spawn)) sim.Time {
	w, _ := f.ExecuteCount(data, emit)
	return w
}

// ExecuteCount is Execute reporting also the task's flop count
// (app.Counted): 10 flops per butterfly.
func (f *FFT) ExecuteCount(data any, emit func(app.Spawn)) (sim.Time, int64) {
	ops := 10 * int64(data.(fftTask).count) // a butterfly is ~10 flops
	return sim.Time(ops) * costPerOp, ops
}

// Multigrid is one V-cycle of an adaptive 2D multigrid solver on an
// n x n grid: smoothing sweeps descend through coarser and coarser
// grids and climb back, so the available parallelism collapses by 4x
// per level and recovers; and the solver adaptively over-smooths a
// refined patch (rows [n/4, n/4+n/8), where the error is assumed
// concentrated), so per-row cost is nonuniform in a way no fixed
// distribution matches — the paper's example of a dynamic "multi-grid
// matrix operation".
type Multigrid struct {
	n      int // finest grid side, must be a power of two
	levels int
	block  int // grid rows per task
}

// refineFactor is how many extra smoothing passes the refined patch
// receives; each pass is spawned as a child task at runtime, which is
// what makes the workload dynamic — the extra tasks appear wherever
// the patch rows currently live.
const refineFactor = 8

// NewMultigrid returns a V-cycle on an n x n finest grid with the
// given number of levels.
func NewMultigrid(n, levels, block int) *Multigrid {
	if n < 2 || n&(n-1) != 0 || levels < 1 || block < 1 || n>>(levels-1) < 2 {
		invariant.Violated("kernels: bad multigrid parameters n=%d levels=%d block=%d", n, levels, block)
	}
	return &Multigrid{n: n, levels: levels, block: block}
}

func (m *Multigrid) Name() string { return fmt.Sprintf("multigrid %d/%d", m.n, m.levels) }

// BlockDistributed: the finest grid starts block-distributed like any
// SPMD stencil code; what makes the problem dynamic is that the
// coarser levels concentrate the remaining work on ever fewer blocks.
func (m *Multigrid) BlockDistributed() bool { return true }

// Rounds: down the V (levels) and back up (levels-1).
func (m *Multigrid) Rounds() int { return 2*m.levels - 1 }

// level returns the grid side length at round r of the V-cycle.
func (m *Multigrid) level(r int) int {
	if r < m.levels {
		return m.n >> r
	}
	return m.n >> (2*m.levels - 2 - r)
}

type mgTask struct {
	side  int32 // grid side at this level
	lo    int32 // first row of this task
	rows  int32 // rows smoothed by this task
	child bool  // a spawned refinement pass (does not re-spawn)
}

func (m *Multigrid) Roots(round int) []app.Spawn {
	side := m.level(round)
	var out []app.Spawn
	for lo := 0; lo < side; lo += m.block {
		c := m.block
		if lo+c > side {
			c = side - lo
		}
		out = append(out, app.Spawn{Data: mgTask{side: int32(side), lo: int32(lo), rows: int32(c)}, Size: 12})
	}
	return out
}

func (m *Multigrid) Execute(data any, emit func(app.Spawn)) sim.Time {
	w, _ := m.ExecuteCount(data, emit)
	return w
}

// ExecuteCount is Execute reporting also the task's smoothing flop
// count (app.Counted). Refinement children contribute their own flops
// when they execute, so the aggregate counts every smoothing pass the
// adaptive solver really performed — including the dynamically spawned
// ones, which is exactly where a dropped child task would surface.
func (m *Multigrid) ExecuteCount(data any, emit func(app.Spawn)) (sim.Time, int64) {
	t := data.(mgTask)
	side := int(t.side)
	// A 5-point smoothing sweep is ~6 flops per point.
	work := 6 * int(t.rows) * side
	if !t.child {
		// Adaptive refinement: rows overlapping the patch spawn
		// refineFactor-1 extra smoothing passes as child tasks.
		patchLo, patchHi := side/4, side/4+side/8
		lo, hi := int(t.lo), int(t.lo)+int(t.rows)
		if lo < patchHi && hi > patchLo {
			oLo, oHi := max(lo, patchLo), min(hi, patchHi)
			for pass := 1; pass < refineFactor; pass++ {
				emit(app.Spawn{
					Data: mgTask{side: t.side, lo: int32(oLo), rows: int32(oHi - oLo), child: true},
					Size: 12,
				})
			}
		}
	}
	return sim.Time(work) * costPerOp, int64(work)
}
