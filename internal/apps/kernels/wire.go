// Wire codecs (app.PayloadCodec) for the three kernels: each task type
// serializes as fixed-width big-endian fields, so identically-built
// kernel instances on different cluster nodes exchange tasks
// losslessly.
package kernels

import (
	"encoding/binary"
	"fmt"
)

// AppendPayload implements app.PayloadCodec for Gauss.
func (g *Gauss) AppendPayload(dst []byte, data any) ([]byte, error) {
	t, ok := data.(gaussTask)
	if !ok {
		return nil, fmt.Errorf("kernels: payload %T is not a gauss task", data)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(t.k))
	dst = binary.BigEndian.AppendUint32(dst, uint32(t.lo))
	dst = binary.BigEndian.AppendUint32(dst, uint32(t.hi))
	return dst, nil
}

// DecodePayload implements app.PayloadCodec for Gauss.
func (g *Gauss) DecodePayload(p []byte) (any, error) {
	if len(p) != 12 {
		return nil, fmt.Errorf("kernels: gauss payload is %d bytes, want 12", len(p))
	}
	return gaussTask{
		k:  int32(binary.BigEndian.Uint32(p[0:4])),
		lo: int32(binary.BigEndian.Uint32(p[4:8])),
		hi: int32(binary.BigEndian.Uint32(p[8:12])),
	}, nil
}

// AppendPayload implements app.PayloadCodec for FFT.
func (f *FFT) AppendPayload(dst []byte, data any) ([]byte, error) {
	t, ok := data.(fftTask)
	if !ok {
		return nil, fmt.Errorf("kernels: payload %T is not an fft task", data)
	}
	return binary.BigEndian.AppendUint32(dst, uint32(t.count)), nil
}

// DecodePayload implements app.PayloadCodec for FFT.
func (f *FFT) DecodePayload(p []byte) (any, error) {
	if len(p) != 4 {
		return nil, fmt.Errorf("kernels: fft payload is %d bytes, want 4", len(p))
	}
	return fftTask{count: int32(binary.BigEndian.Uint32(p))}, nil
}

// AppendPayload implements app.PayloadCodec for Multigrid.
func (m *Multigrid) AppendPayload(dst []byte, data any) ([]byte, error) {
	t, ok := data.(mgTask)
	if !ok {
		return nil, fmt.Errorf("kernels: payload %T is not a multigrid task", data)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(t.side))
	dst = binary.BigEndian.AppendUint32(dst, uint32(t.lo))
	dst = binary.BigEndian.AppendUint32(dst, uint32(t.rows))
	if t.child {
		return append(dst, 1), nil
	}
	return append(dst, 0), nil
}

// DecodePayload implements app.PayloadCodec for Multigrid.
func (m *Multigrid) DecodePayload(p []byte) (any, error) {
	if len(p) != 13 {
		return nil, fmt.Errorf("kernels: multigrid payload is %d bytes, want 13", len(p))
	}
	if p[12] > 1 {
		return nil, fmt.Errorf("kernels: multigrid child flag %d is not a bool", p[12])
	}
	return mgTask{
		side:  int32(binary.BigEndian.Uint32(p[0:4])),
		lo:    int32(binary.BigEndian.Uint32(p[4:8])),
		rows:  int32(binary.BigEndian.Uint32(p[8:12])),
		child: p[12] == 1,
	}, nil
}
