package kernels

import (
	"testing"

	"rips/internal/app"
	"rips/internal/sim"
)

func TestGaussStructure(t *testing.T) {
	g := NewGauss(64, 4)
	if g.Rounds() != 63 {
		t.Fatalf("rounds = %d", g.Rounds())
	}
	if !g.BlockDistributed() {
		t.Error("gauss should start block-distributed")
	}
	p := app.Measure(g)
	// Total ops: sum over k of (n-1-k) rows x (n-k) cols.
	want := 0
	for k := 0; k < 63; k++ {
		want += (64 - 1 - k) * (64 - k)
	}
	if p.Work != sim.Time(want)*costPerOp {
		t.Errorf("work = %v, want %v", p.Work, sim.Time(want)*costPerOp)
	}
	// Rounds shrink: the last round has a single task.
	if p.Rounds[0].Tasks <= p.Rounds[62].Tasks {
		t.Errorf("round sizes do not shrink: %d vs %d", p.Rounds[0].Tasks, p.Rounds[62].Tasks)
	}
	if p.Rounds[62].Tasks != 1 {
		t.Errorf("last round has %d tasks", p.Rounds[62].Tasks)
	}
}

func TestGaussUniformWithinRound(t *testing.T) {
	g := NewGauss(32, 2)
	p := app.Measure(g)
	for r, rp := range p.Rounds {
		if rp.Tasks > 1 {
			// All full blocks in a round cost the same; only the tail
			// block may be smaller. MaxTask*tasks >= work always, and
			// for a static problem the ratio stays near 1.
			if float64(rp.MaxTask)*float64(rp.Tasks) > 2*float64(rp.Work) {
				t.Errorf("round %d: grain too skewed for a static problem", r)
			}
		}
	}
}

func TestFFTStructure(t *testing.T) {
	f := NewFFT(10, 16)
	if f.Rounds() != 10 {
		t.Fatalf("rounds = %d", f.Rounds())
	}
	p := app.Measure(f)
	// Every round: 512 butterflies in blocks of 16 = 32 identical tasks.
	for r, rp := range p.Rounds {
		if rp.Tasks != 32 {
			t.Errorf("round %d: %d tasks, want 32", r, rp.Tasks)
		}
		if rp.MaxTask != sim.Time(10*16)*costPerOp {
			t.Errorf("round %d: max task %v", r, rp.MaxTask)
		}
	}
	if p.Work != sim.Time(10*512*10)*costPerOp {
		t.Errorf("total work = %v", p.Work)
	}
}

func TestMultigridVCycle(t *testing.T) {
	m := NewMultigrid(64, 4, 8)
	if m.Rounds() != 7 {
		t.Fatalf("rounds = %d", m.Rounds())
	}
	// Grid sides down the V and back: 64 32 16 8 16 32 64.
	want := []int{64, 32, 16, 8, 16, 32, 64}
	for r, w := range want {
		if got := m.level(r); got != w {
			t.Errorf("level(%d) = %d, want %d", r, got, w)
		}
	}
	p := app.Measure(m)
	// Parallelism collapses at the bottom of the V.
	if p.Rounds[3].Tasks >= p.Rounds[0].Tasks {
		t.Errorf("coarsest round has %d tasks vs finest %d", p.Rounds[3].Tasks, p.Rounds[0].Tasks)
	}
	if p.Rounds[0].Work <= p.Rounds[3].Work {
		t.Error("finest round should dominate the work")
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewGauss(1, 1) },
		func() { NewGauss(8, 0) },
		func() { NewFFT(0, 1) },
		func() { NewFFT(31, 1) },
		func() { NewMultigrid(63, 2, 1) }, // not a power of two
		func() { NewMultigrid(8, 4, 1) },  // too many levels
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestNoChildren(t *testing.T) {
	for _, a := range []app.App{NewGauss(16, 2), NewFFT(6, 4), NewMultigrid(16, 3, 2)} {
		emitted := 0
		a.Execute(a.Roots(0)[0].Data, func(app.Spawn) { emitted++ })
		if emitted != 0 {
			t.Errorf("%s emitted %d children", a.Name(), emitted)
		}
	}
}

// TestCounted checks the app.Counted contract for all three kernels:
// ExecuteCount must be behaviourally identical to Execute (same
// children, same virtual time), and the aggregated count must be the
// run's inner-loop operation total — work / costPerOp — which is what
// the differential tests compare across backends.
func TestCounted(t *testing.T) {
	for _, a := range []app.App{NewGauss(32, 4), NewFFT(8, 8), NewMultigrid(32, 3, 4)} {
		c, ok := a.(app.Counted)
		if !ok {
			t.Fatalf("%s does not implement app.Counted", a.Name())
		}
		for r := 0; r < a.Rounds(); r++ {
			for _, root := range a.Roots(r) {
				var kidsE, kidsC []app.Spawn
				w := a.Execute(root.Data, func(s app.Spawn) { kidsE = append(kidsE, s) })
				wc, n := c.ExecuteCount(root.Data, func(s app.Spawn) { kidsC = append(kidsC, s) })
				if w != wc {
					t.Fatalf("%s: Execute work %v != ExecuteCount work %v", a.Name(), w, wc)
				}
				if len(kidsE) != len(kidsC) {
					t.Fatalf("%s: Execute emitted %d children, ExecuteCount %d", a.Name(), len(kidsE), len(kidsC))
				}
				if n < 0 {
					t.Fatalf("%s: negative op count %d", a.Name(), n)
				}
			}
		}
		p := app.Measure(a)
		if want := int64(p.Work / costPerOp); p.Result != want {
			t.Errorf("%s: Result = %d ops, want work/costPerOp = %d", a.Name(), p.Result, want)
		}
		if p.Result == 0 {
			t.Errorf("%s: zero aggregate op count", a.Name())
		}
	}
}
