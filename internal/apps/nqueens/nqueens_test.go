package nqueens

import (
	"testing"

	"rips/internal/app"
	"rips/internal/sim"
)

// Known solution counts (OEIS A000170).
var known = map[int]uint64{
	1: 1, 2: 0, 3: 0, 4: 2, 5: 10, 6: 4, 7: 40, 8: 92,
	9: 352, 10: 724, 11: 2680, 12: 14200,
}

func TestCountMatchesKnownValues(t *testing.T) {
	for n, want := range known {
		if got, _ := Count(n); got != want {
			t.Errorf("Count(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestDecompositionPreservesWork: the task tree (split at any depth)
// must visit exactly the same number of search nodes as the plain DFS,
// and emit leaf payloads covering the whole space.
func TestDecompositionPreservesWork(t *testing.T) {
	for _, n := range []int{6, 8, 10} {
		_, directNodes := Count(n)
		for _, split := range []int{0, 1, 2, 3, 4} {
			a := New(n, split)
			p := app.Measure(a)
			// Separate expansion bookkeeping from real search work:
			// leaf work is CostPerNode * (nodes+1) each; expansion
			// tasks charge CostPerNode + children*spawnCost. Recompute
			// the exact expected total by walking the same tree.
			wantWork := expectedWork(n, split)
			if p.Work != wantWork {
				t.Errorf("n=%d split=%d: profile work %v, want %v", n, split, p.Work, wantWork)
			}
			// And the real search result must be intact.
			sols := countViaTasks(a)
			if sols != known[n] {
				t.Errorf("n=%d split=%d: task-based count = %d, want %d", n, split, sols, known[n])
			}
			_ = directNodes
		}
	}
}

// countViaTasks executes the app's tasks and sums leaf solutions.
func countViaTasks(a *App) uint64 {
	full := uint32(1<<a.n) - 1
	var total uint64
	stack := a.Roots(0)
	for len(stack) > 0 {
		s := stack[len(stack)-1].Data.(state)
		stack = stack[:len(stack)-1]
		if int(s.Row) < a.split && int(s.Row) < a.n {
			a.Execute(s, func(sp app.Spawn) { stack = append(stack, sp) })
			continue
		}
		sols, _ := count(full, s.Cols, s.LD, s.RD)
		total += sols
	}
	return total
}

// expectedWork recomputes the total profile work independently.
func expectedWork(n, split int) sim.Time {
	full := uint32(1<<n) - 1
	var walk func(s state) sim.Time
	walk = func(s state) sim.Time {
		if int(s.Row) < split && int(s.Row) < n {
			w := CostPerNode
			for free := full &^ (s.Cols | s.LD | s.RD); free != 0; {
				bit := free & (-free)
				free ^= bit
				w += spawnCost
				w += walk(state{Row: s.Row + 1, Cols: s.Cols | bit, LD: (s.LD | bit) << 1, RD: (s.RD | bit) >> 1})
			}
			return w
		}
		_, nodes := count(full, s.Cols, s.LD, s.RD)
		return CostPerNode + sim.Time(nodes)*CostPerNode
	}
	return walk(state{})
}

func TestTaskCountsGrowWithDepth(t *testing.T) {
	prev := 0
	for _, split := range []int{1, 2, 3} {
		p := app.Measure(New(10, split))
		if p.Tasks <= prev {
			t.Errorf("split %d: %d tasks, not more than %d", split, p.Tasks, prev)
		}
		prev = p.Tasks
	}
}

func TestRoundsAndRoots(t *testing.T) {
	a := New(8, 2)
	if a.Rounds() != 1 {
		t.Errorf("Rounds = %d", a.Rounds())
	}
	roots := a.Roots(0)
	if len(roots) != 1 || roots[0].Size != stateSize {
		t.Errorf("Roots = %+v", roots)
	}
	if a.Name() != "8-queens" {
		t.Errorf("Name = %q", a.Name())
	}
}

func TestGrainSizesIrregular(t *testing.T) {
	// The paper chose N-Queens because grain sizes are unpredictable;
	// verify the leaf work actually varies by an order of magnitude.
	a := New(10, 4)
	var min, max sim.Time
	stack := a.Roots(0)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st := s.Data.(state)
		w := a.Execute(st, func(sp app.Spawn) { stack = append(stack, sp) })
		if int(st.Row) >= a.split { // leaf
			if min == 0 || w < min {
				min = w
			}
			if w > max {
				max = w
			}
		}
	}
	if max < 10*min {
		t.Errorf("leaf grains too uniform: min=%v max=%v", min, max)
	}
}

func TestNewPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 0) },
		func() { New(21, 0) },
		func() { New(8, -1) },
		func() { New(8, 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("New did not panic")
				}
			}()
			f()
		}()
	}
}
