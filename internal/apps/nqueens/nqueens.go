// Package nqueens is the paper's first test application: exhaustive
// search counting all solutions of the N-Queens problem. The search is
// real — tasks carry partial board states and the leaves run an actual
// bitmask depth-first search — and the virtual work charged to the
// simulator is proportional to the number of search-tree nodes the
// task really visited, so grain sizes are exactly as irregular and
// unpredictable as the paper describes.
package nqueens

import (
	"fmt"

	"rips/internal/app"
	"rips/internal/invariant"
	"rips/internal/sim"
)

// CostPerNode is the virtual compute charged per search-tree node.
// 2 us/node calibrated against the paper's Paragon numbers: it puts
// sequential 15-Queens near 330 s, reproducing Table I's 10.9 s
// 32-processor execution time at 95% efficiency.
const CostPerNode = 2 * sim.Microsecond

// spawnCost is the bookkeeping work to generate one child task.
const spawnCost = 5 * sim.Microsecond

// state is a partial placement: queens fixed on rows [0, Row).
type state struct {
	Row  int8
	Cols uint32 // columns occupied
	LD   uint32 // "left" diagonals occupied, shifted per row
	RD   uint32 // "right" diagonals occupied
}

// stateSize is the serialized size of a task payload in bytes.
const stateSize = 16

// App enumerates all N-Queens solutions.
type App struct {
	n     int
	split int
}

// New returns the N-Queens workload. splitDepth is the row depth at
// which subtrees stop being split into tasks and run to completion
// inside one task; depth 4 yields task counts in the paper's range
// (thousands for N = 13..15). New panics on unusable parameters.
func New(n, splitDepth int) *App {
	if n < 1 || n > 20 {
		invariant.Violated("nqueens: board size %d out of range", n)
	}
	if splitDepth < 0 || splitDepth > n {
		invariant.Violated("nqueens: split depth %d out of range for n=%d", splitDepth, n)
	}
	return &App{n: n, split: splitDepth}
}

// Name returns e.g. "13-queens".
func (a *App) Name() string { return fmt.Sprintf("%d-queens", a.n) }

// Rounds is 1: a single task pool with no global synchronization.
func (a *App) Rounds() int { return 1 }

// Roots returns the single root task (empty board).
func (a *App) Roots(round int) []app.Spawn {
	return []app.Spawn{{Data: state{}, Size: stateSize}}
}

// Execute expands a partial placement one row (emitting the children
// as tasks) until the split depth, after which it runs the remaining
// subtree to completion.
func (a *App) Execute(data any, emit func(app.Spawn)) sim.Time {
	w, _ := a.ExecuteCount(data, emit)
	return w
}

// ExecuteCount is Execute reporting also the number of solutions found
// below the task's state (app.Counted); expansion tasks contribute 0,
// leaf tasks the solution count of their whole subtree.
func (a *App) ExecuteCount(data any, emit func(app.Spawn)) (sim.Time, int64) {
	s := data.(state)
	full := uint32(1<<a.n) - 1
	if int(s.Row) < a.split && int(s.Row) < a.n {
		children := 0
		for free := full &^ (s.Cols | s.LD | s.RD); free != 0; {
			bit := free & (-free)
			free ^= bit
			emit(app.Spawn{
				Data: state{
					Row:  s.Row + 1,
					Cols: s.Cols | bit,
					LD:   (s.LD | bit) << 1,
					RD:   (s.RD | bit) >> 1,
				},
				Size: stateSize,
			})
			children++
		}
		// Expansion itself costs one node visit plus spawn work.
		return CostPerNode + sim.Time(children)*spawnCost, 0
	}
	solutions, nodes := count(full, s.Cols, s.LD, s.RD)
	return CostPerNode + sim.Time(nodes)*CostPerNode, int64(solutions)
}

// count runs the classic bitmask DFS, returning the number of
// solutions and of tree nodes visited below this state.
func count(full, cols, ld, rd uint32) (solutions, nodes uint64) {
	if cols == full {
		return 1, 0
	}
	for free := full &^ (cols | ld | rd); free != 0; {
		bit := free & (-free)
		free ^= bit
		s, n := count(full, cols|bit, (ld|bit)<<1, (rd|bit)>>1)
		solutions += s
		nodes += n + 1
	}
	return solutions, nodes
}

// Count returns the number of solutions and search-tree nodes for the
// n-queens problem; it is the ground truth the tests validate against.
func Count(n int) (solutions, nodes uint64) {
	if n < 1 || n > 20 {
		invariant.Violated("nqueens: board size %d out of range", n)
	}
	return count(uint32(1<<n)-1, 0, 0, 0)
}

// Solutions re-runs the search reachable from the app's task tree and
// returns the total number of solutions — used by tests to prove the
// task decomposition loses no part of the search space.
func (a *App) Solutions() uint64 {
	s, _ := Count(a.n)
	return s
}
