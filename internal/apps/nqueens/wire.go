package nqueens

import (
	"encoding/binary"
	"fmt"
)

// payloadSize is the canonical wire encoding's length: the row byte
// followed by the three occupancy masks.
const payloadSize = 1 + 4 + 4 + 4

// AppendPayload implements app.PayloadCodec: a partial placement
// serializes as its row followed by Cols, LD and RD, big-endian.
func (a *App) AppendPayload(dst []byte, data any) ([]byte, error) {
	s, ok := data.(state)
	if !ok {
		return nil, fmt.Errorf("nqueens: payload %T is not a board state", data)
	}
	dst = append(dst, byte(s.Row))
	dst = binary.BigEndian.AppendUint32(dst, s.Cols)
	dst = binary.BigEndian.AppendUint32(dst, s.LD)
	dst = binary.BigEndian.AppendUint32(dst, s.RD)
	return dst, nil
}

// DecodePayload implements app.PayloadCodec.
func (a *App) DecodePayload(p []byte) (any, error) {
	if len(p) != payloadSize {
		return nil, fmt.Errorf("nqueens: payload is %d bytes, want %d", len(p), payloadSize)
	}
	return state{
		Row:  int8(p[0]),
		Cols: binary.BigEndian.Uint32(p[1:5]),
		LD:   binary.BigEndian.Uint32(p[5:9]),
		RD:   binary.BigEndian.Uint32(p[9:13]),
	}, nil
}
