package dynsched

import (
	"rips/internal/invariant"
	"rips/internal/sim"
	"rips/internal/task"
)

// ---------------------------------------------------------------- random

// randomStrategy is the paper's baseline: every task is allocated to a
// uniformly random node at generation time. Load balance is
// statistically good, locality is the worst possible (a fraction
// 1-1/N of tasks run away from home), and there is no other traffic.
type randomStrategy struct{}

// NewRandom returns the randomized-allocation strategy factory.
func NewRandom() func() Strategy {
	return func() Strategy { return randomStrategy{} }
}

func (randomStrategy) Name() string { return "random" }
func (randomStrategy) Init(*Ctx)    {}
func (randomStrategy) Place(c *Ctx, t task.Task) {
	dest := c.N.Rand().Intn(c.N.N())
	if dest == c.N.ID() {
		c.Enqueue(t)
		return
	}
	c.SendTasks(dest, []task.Task{t})
}
func (randomStrategy) OnMessage(*Ctx, sim.Message) {}
func (randomStrategy) Poll(*Ctx)                   {}

// --------------------------------------------------------------- gradient

// gradientStrategy implements the gradient model: every node maintains
// a proximity value — 0 when it is underloaded, otherwise one more
// than the smallest neighbour proximity — whose gradient surface
// points toward the nearest demand. Overloaded nodes push one task at
// a time down the gradient. The paper's critique ("the load is spread
// slowly... information and tasks are frequently exchanged") falls out
// of exactly this structure.
type gradientStrategy struct {
	wmax      int
	prox      int
	neighbors []int // in topology order, for deterministic iteration
	neighProx []int // parallel to neighbors
	lowWater  int   // queue length at/below which the node is a demand
	highWater int   // queue length above which the node pushes tasks
}

// NewGradient returns the gradient-model strategy factory.
func NewGradient() func() Strategy {
	return func() Strategy { return &gradientStrategy{lowWater: 0, highWater: 1} }
}

func (g *gradientStrategy) Name() string { return "gradient" }

func (g *gradientStrategy) Init(c *Ctx) {
	// wmax caps proximities: anything at wmax means "no demand known".
	g.wmax = c.N.N() // a safe overestimate of the diameter
	g.neighbors = c.Topo().Neighbors(c.N.ID())
	g.neighProx = make([]int, len(g.neighbors))
	for i := range g.neighProx {
		g.neighProx[i] = g.wmax
	}
	g.prox = g.wmax
	g.update(c)
}

// Place: tasks enter the local queue; the gradient moves them later.
func (g *gradientStrategy) Place(c *Ctx, t task.Task) {
	c.Enqueue(t)
	g.update(c)
}

// update recomputes this node's proximity and tells the neighbours
// when it changed.
func (g *gradientStrategy) update(c *Ctx) {
	p := g.wmax
	if c.Q.Len() <= g.lowWater {
		p = 0
	} else {
		for _, v := range g.neighProx {
			if v+1 < p {
				p = v + 1
			}
		}
	}
	if p != g.prox {
		g.prox = p
		c.N.Overhead(2 * sim.Microsecond)
		for _, nb := range g.neighbors {
			c.N.SendTag(nb, TagLoad, p, 8)
		}
	}
}

func (g *gradientStrategy) OnMessage(c *Ctx, m sim.Message) {
	switch m.Tag {
	case TagLoad:
		g.neighProx[g.indexOf(m.From)] = m.Data.(int)
		g.update(c)
	case TagTask:
		g.update(c)
	}
}

// Poll pushes surplus toward the nearest demand: half the excess goes
// one hop down the gradient per call, so load still diffuses
// neighbour-by-neighbour (the model's characteristic slow spread) but
// without degenerating into one-task messages.
func (g *gradientStrategy) Poll(c *Ctx) {
	if c.Q.Len() <= g.highWater {
		g.update(c)
		return
	}
	best, bestProx := -1, g.wmax
	for i, v := range g.neighProx {
		if v < bestProx {
			best, bestProx = g.neighbors[i], v
		}
	}
	if best < 0 {
		return // no demand anywhere in sight
	}
	give := (c.Q.Len() - g.highWater + 1) / 2
	c.SendTasks(best, c.Q.TakeBack(give))
	g.update(c)
}

// indexOf maps a neighbor id to its slot; neighbor sets are tiny.
func (g *gradientStrategy) indexOf(id int) int {
	for i, nb := range g.neighbors {
		if nb == id {
			return i
		}
	}
	invariant.Violated("dynsched: message from non-neighbor")
	return -1
}

// ------------------------------------------------------------------- rid

// RIDParams are the receiver-initiated-diffusion tuning knobs; the
// paper sets LLow=2, LThreshold=1 and the load-update factor u=0.4
// (0.7 for IDA* on large machines — u=0.9, the value suggested by
// Willebeek-LeMair & Reeves, exchanged information too often).
type RIDParams struct {
	LLow       int
	LThreshold int
	U          float64
}

// DefaultRIDParams returns the paper's tuned values.
func DefaultRIDParams() RIDParams { return RIDParams{LLow: 2, LThreshold: 1, U: 0.4} }

// ridStrategy implements receiver-initiated diffusion: nodes advertise
// their load to neighbours when it changes by a fraction U, and a node
// whose queue falls below LLow requests work from its most-loaded
// neighbour, which transfers half the difference.
type ridStrategy struct {
	p         RIDParams
	neighbors []int // in topology order, for deterministic iteration
	neighLoad []int // parallel to neighbors
	lastSent  int
	pending   bool // a request is outstanding
}

// NewRID returns the RID strategy factory with the given parameters.
func NewRID(p RIDParams) func() Strategy {
	return func() Strategy { return &ridStrategy{p: p} }
}

func (r *ridStrategy) Name() string { return "rid" }

func (r *ridStrategy) Init(c *Ctx) {
	r.neighbors = c.Topo().Neighbors(c.N.ID())
	r.neighLoad = make([]int, len(r.neighbors))
}

func (r *ridStrategy) Place(c *Ctx, t task.Task) {
	c.Enqueue(t)
	r.maybeAdvertise(c)
}

// maybeAdvertise sends a load update to the neighbours when the local
// load moved by more than a fraction U since the last update.
func (r *ridStrategy) maybeAdvertise(c *Ctx) {
	l := c.Q.Len()
	d := l - r.lastSent
	if d < 0 {
		d = -d
	}
	bar := int(r.p.U * float64(r.lastSent))
	if bar < 1 {
		bar = 1
	}
	if d < bar {
		return
	}
	r.lastSent = l
	c.N.Overhead(2 * sim.Microsecond)
	for _, nb := range r.neighbors {
		c.N.SendTag(nb, TagLoad, l, 8)
	}
}

func (r *ridStrategy) OnMessage(c *Ctx, m sim.Message) {
	switch m.Tag {
	case TagLoad:
		r.neighLoad[r.indexOf(m.From)] = m.Data.(int)
	case TagTask:
		// A bundle doubles as the provider's reply: clear the pending
		// flag and absorb the piggybacked load so we do not re-request
		// from a drained neighbour.
		r.neighLoad[r.indexOf(m.From)] = m.Data.(taskMsg).load
		r.pending = false
		r.maybeAdvertise(c)
	case TagRequest:
		reqLoad := m.Data.(int)
		give := (c.Q.Len() - reqLoad) / 2
		if max := c.Q.Len() - 1; give > max {
			give = max
		}
		if give < 0 {
			give = 0
		}
		c.SendTasks(m.From, c.Q.TakeBack(give))
		r.maybeAdvertise(c)
	}
}

// Poll issues a work request when underloaded and a more-loaded
// neighbour is known.
func (r *ridStrategy) Poll(c *Ctx) {
	r.maybeAdvertise(c)
	if r.pending || c.Q.Len() >= r.p.LLow {
		return
	}
	best, bestLoad := -1, 0
	for i, l := range r.neighLoad {
		if l > bestLoad {
			best, bestLoad = r.neighbors[i], l
		}
	}
	if best < 0 || bestLoad <= r.p.LThreshold || bestLoad <= c.Q.Len() {
		return
	}
	r.pending = true
	// Assume the neighbour grants half the difference until its reply
	// corrects the estimate; this throttles repeat requests.
	r.neighLoad[r.indexOf(best)] = (bestLoad + c.Q.Len()) / 2
	c.N.Overhead(2 * sim.Microsecond)
	c.N.SendTag(best, TagRequest, c.Q.Len(), 8)
}

// indexOf maps a neighbor id to its slot; neighbor sets are tiny.
func (r *ridStrategy) indexOf(id int) int {
	for i, nb := range r.neighbors {
		if nb == id {
			return i
		}
	}
	invariant.Violated("dynsched: message from non-neighbor")
	return -1
}

// ---------------------------------------------------------------- static

// staticStrategy performs no load balancing at all: tasks run where
// they are generated. For block-distributed apps this is exactly the
// paper's "static scheduling" strawman — a compile-time distribution
// with no runtime correction — and it shows why nonuniform workloads
// (GROMOS's density skew, any dynamic tree) need a balancer.
type staticStrategy struct{}

// NewStatic returns the no-balancing strategy factory.
func NewStatic() func() Strategy {
	return func() Strategy { return staticStrategy{} }
}

func (staticStrategy) Name() string                { return "static" }
func (staticStrategy) Init(*Ctx)                   {}
func (staticStrategy) Place(c *Ctx, t task.Task)   { c.Enqueue(t) }
func (staticStrategy) OnMessage(*Ctx, sim.Message) {}
func (staticStrategy) Poll(*Ctx)                   {}
