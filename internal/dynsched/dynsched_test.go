package dynsched

import (
	"testing"
	"testing/quick"

	"rips/internal/app"
	"rips/internal/apps/nqueens"
	"rips/internal/sim"
	"rips/internal/topo"
)

func cfgFor(strat func() Strategy) Config {
	return Config{
		Topo:     topo.NewMesh(4, 4),
		App:      nqueens.New(10, 3),
		Strategy: strat,
		Seed:     7,
	}
}

func strategies() map[string]func() Strategy {
	return map[string]func() Strategy{
		"random":   NewRandom(),
		"gradient": NewGradient(),
		"rid":      NewRID(DefaultRIDParams()),
	}
}

// TestAllStrategiesComplete: every baseline runs the workload to
// completion, executing each generated task exactly once, with total
// busy time equal to the sequential profile (work conservation).
func TestAllStrategiesComplete(t *testing.T) {
	profile := app.Measure(nqueens.New(10, 3))
	for name, strat := range strategies() {
		res, err := Run(cfgFor(strat))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Executed != int64(profile.Tasks) {
			t.Errorf("%s: executed %d tasks, want %d", name, res.Executed, profile.Tasks)
		}
		var busy sim.Time
		for _, st := range res.Sim.Nodes {
			busy += st.Busy
		}
		if busy != profile.Work {
			t.Errorf("%s: busy %v, want %v", name, busy, profile.Work)
		}
		if res.Time <= 0 {
			t.Errorf("%s: time %v", name, res.Time)
		}
	}
}

func TestRandomNonlocalFraction(t *testing.T) {
	// Random allocation sends a fraction ~ (N-1)/N of tasks away from
	// their origin (Table I: e.g. 15459/15941 on 32 nodes).
	res, err := Run(cfgFor(NewRandom()))
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.Nonlocal) / float64(res.Executed)
	if frac < 0.85 || frac > 1.0 {
		t.Errorf("random nonlocal fraction = %.3f, want ~ 15/16", frac)
	}
}

func TestGradientMoreLocalThanRandom(t *testing.T) {
	rnd, err := Run(cfgFor(NewRandom()))
	if err != nil {
		t.Fatal(err)
	}
	grad, err := Run(cfgFor(NewGradient()))
	if err != nil {
		t.Fatal(err)
	}
	if grad.Nonlocal >= rnd.Nonlocal {
		t.Errorf("gradient nonlocal %d >= random %d — Table I shows gradient is more local", grad.Nonlocal, rnd.Nonlocal)
	}
}

func TestRIDMoreLocalThanRandom(t *testing.T) {
	rid, err := Run(cfgFor(NewRID(DefaultRIDParams())))
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := Run(cfgFor(NewRandom()))
	if err != nil {
		t.Fatal(err)
	}
	if rid.Nonlocal >= rnd.Nonlocal*3/4 {
		t.Errorf("rid nonlocal %d vs random %d — RID should be clearly more local", rid.Nonlocal, rnd.Nonlocal)
	}
}

func TestDeterministic(t *testing.T) {
	for name, strat := range strategies() {
		a, err := Run(cfgFor(strat))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(cfgFor(strat))
		if err != nil {
			t.Fatal(err)
		}
		if a.Time != b.Time || a.Nonlocal != b.Nonlocal || a.Sim.Messages != b.Sim.Messages {
			t.Errorf("%s: runs differ", name)
		}
	}
}

// multiRound exercises the termination + round-barrier machinery.
type multiRound struct{ rounds int }

func (m multiRound) Name() string { return "multi" }
func (m multiRound) Rounds() int  { return m.rounds }
func (m multiRound) Roots(r int) []app.Spawn {
	out := make([]app.Spawn, 3+r)
	for i := range out {
		out[i] = app.Spawn{Data: 0, Size: 8}
	}
	return out
}
func (m multiRound) Execute(data any, emit func(app.Spawn)) sim.Time {
	if d := data.(int); d < 2 {
		emit(app.Spawn{Data: d + 1, Size: 8})
	}
	return 100 * sim.Microsecond
}

func TestMultiRoundTermination(t *testing.T) {
	for name, strat := range strategies() {
		cfg := Config{Topo: topo.NewMesh(2, 2), App: multiRound{rounds: 3}, Strategy: strat, Seed: 3}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Roots: 3+4+5 = 12, each chains 2 children: 36 total.
		if res.Executed != 36 {
			t.Errorf("%s: executed %d, want 36", name, res.Executed)
		}
	}
}

func TestSingleNodeMachine(t *testing.T) {
	cfg := Config{Topo: topo.NewMesh(1, 1), App: multiRound{rounds: 2}, Strategy: NewRandom(), Seed: 1}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 21 || res.Nonlocal != 0 {
		t.Errorf("executed=%d nonlocal=%d", res.Executed, res.Nonlocal)
	}
}

func TestEmptyRoundApp(t *testing.T) {
	cfg := Config{Topo: topo.NewMesh(2, 2), App: multiRound{rounds: 0}, Strategy: NewRandom(), Seed: 1}
	// Zero rounds: node 0 injects nothing; first token probe succeeds
	// and the final term broadcast shuts everything down.
	cfg.App = zeroApp{}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 0 {
		t.Errorf("executed %d", res.Executed)
	}
}

type zeroApp struct{}

func (zeroApp) Name() string                          { return "zero" }
func (zeroApp) Rounds() int                           { return 1 }
func (zeroApp) Roots(int) []app.Spawn                 { return nil }
func (zeroApp) Execute(any, func(app.Spawn)) sim.Time { return 0 }

func TestValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestRIDParamsDefault(t *testing.T) {
	p := DefaultRIDParams()
	if p.LLow != 2 || p.LThreshold != 1 || p.U != 0.4 {
		t.Errorf("defaults = %+v, want the paper's 2/1/0.4", p)
	}
}

// hash is splitmix64 for the chaos workload below.
func hash(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

type chaosTask struct {
	depth int
	key   uint64
}

// chaosApp mirrors the RIPS chaos workload: hash-derived irregular
// task trees, deterministic per seed.
type chaosApp struct {
	seed     uint64
	maxDepth int
}

func (c chaosApp) Name() string { return "chaos" }
func (c chaosApp) Rounds() int  { return 1 }
func (c chaosApp) Roots(int) []app.Spawn {
	return []app.Spawn{{Data: chaosTask{key: hash(c.seed)}, Size: 16}}
}
func (c chaosApp) Execute(data any, emit func(app.Spawn)) sim.Time {
	t := data.(chaosTask)
	h := hash(t.key)
	if t.depth < c.maxDepth {
		for i := uint64(0); i < h%4; i++ {
			emit(app.Spawn{Data: chaosTask{depth: t.depth + 1, key: hash(t.key + i + 1)}, Size: 16})
		}
	}
	return sim.Time(10+h%2500) * sim.Microsecond
}

// TestChaosTreesAllStrategies: random irregular trees complete under
// every strategy with exact task accounting.
func TestChaosTreesAllStrategies(t *testing.T) {
	f := func(seed uint64, stratBits uint8) bool {
		a := chaosApp{seed: seed, maxDepth: 4 + int(seed%4)}
		want := app.Measure(a).Tasks
		strats := []func() Strategy{
			NewRandom(), NewGradient(), NewRID(DefaultRIDParams()), NewStatic(),
		}
		cfg := Config{
			Topo:     topo.NewMesh(3, 3),
			App:      a,
			Strategy: strats[int(stratBits)%len(strats)],
			Seed:     int64(seed),
		}
		res, err := Run(cfg)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if res.Executed != int64(want) {
			t.Logf("seed %d: executed %d, want %d", seed, res.Executed, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
