package dynsched

import (
	"testing"

	"rips/internal/apps/puzzle"
	"rips/internal/topo"
)

// TestMultiRoundSparseRootsRegression: rounds whose tasks never send a
// message to node 0 must still terminate — node 0 has to relaunch a
// termination probe right after starting a round, not wait for
// incoming traffic (this deadlocked once).
func TestMultiRoundSparseRootsRegression(t *testing.T) {
	cfg := Config{
		Topo:     topo.NewMesh(4, 4),
		App:      puzzle.New("15-puzzle mini", puzzle.Scramble(4, 30, 5), 6),
		Strategy: NewRandom(),
		Seed:     1,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed == 0 {
		t.Fatal("nothing executed")
	}
}
