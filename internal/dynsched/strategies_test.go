package dynsched

import (
	"testing"

	"rips/internal/app"
	"rips/internal/sim"
	"rips/internal/topo"
)

// lineApp puts `count` unit tasks at node 0 of a 1xN line and nothing
// anywhere else — the sharpest possible initial imbalance.
type lineApp struct{ count int }

func (l lineApp) Name() string { return "line" }
func (l lineApp) Rounds() int  { return 1 }
func (l lineApp) Roots(int) []app.Spawn {
	out := make([]app.Spawn, l.count)
	for i := range out {
		out[i] = app.Spawn{Data: i, Size: 8}
	}
	return out
}
func (l lineApp) Execute(any, func(app.Spawn)) sim.Time { return 2 * sim.Millisecond }

// TestGradientDiffusesAlongLine: with all load at one end of a line,
// the gradient model must move work hop by hop so that even the far
// end executes some tasks.
func TestGradientDiffusesAlongLine(t *testing.T) {
	res, err := Run(Config{
		Topo:     topo.NewMesh(1, 4),
		App:      lineApp{count: 200},
		Strategy: NewGradient(),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every node must have been busy: check per-node busy time.
	for id, st := range res.Sim.Nodes {
		if st.Busy == 0 {
			t.Errorf("node %d executed nothing — gradient did not diffuse", id)
		}
	}
	if res.Nonlocal == 0 {
		t.Error("no tasks moved at all")
	}
}

// TestRIDPullsWork: same scenario under RID — the idle right end must
// request and receive work from its neighbour chain.
func TestRIDPullsWork(t *testing.T) {
	res, err := Run(Config{
		Topo:     topo.NewMesh(1, 4),
		App:      lineApp{count: 200},
		Strategy: NewRID(DefaultRIDParams()),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, st := range res.Sim.Nodes {
		if st.Busy == 0 {
			t.Errorf("node %d executed nothing — RID did not pull work", id)
		}
	}
}

// TestRIDNoRequestStorm: on a machine that is idle because there is
// simply no work anywhere, RID must quiesce (terminate) rather than
// ping-pong requests forever. Termination itself is the assertion —
// the run would deadlock or hit the event limit otherwise.
func TestRIDNoRequestStorm(t *testing.T) {
	res, err := Run(Config{
		Topo:      topo.NewMesh(2, 2),
		App:       lineApp{count: 2}, // far fewer tasks than nodes
		Strategy:  NewRID(DefaultRIDParams()),
		Seed:      1,
		MaxEvents: 200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 2 {
		t.Errorf("executed %d", res.Executed)
	}
}

// TestRandomUsesAllNodes: randomized allocation spreads 200 tasks from
// node 0 across a 16-node machine; every node should get some.
func TestRandomUsesAllNodes(t *testing.T) {
	res, err := Run(Config{
		Topo:     topo.NewMesh(4, 4),
		App:      lineApp{count: 320},
		Strategy: NewRandom(),
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, st := range res.Sim.Nodes {
		if st.Busy == 0 {
			t.Errorf("node %d executed nothing under random allocation", id)
		}
	}
	// Expect close to (N-1)/N nonlocal.
	frac := float64(res.Nonlocal) / float64(res.Executed)
	if frac < 0.8 {
		t.Errorf("nonlocal fraction %f too low for random", frac)
	}
}

// TestGradientQuiescesWithLoadBelowThreshold: nodes holding just one
// task (at or below the high-water mark) must not push it around.
func TestGradientNoThrashingAtLowLoad(t *testing.T) {
	res, err := Run(Config{
		Topo:     topo.NewMesh(2, 2),
		App:      lineApp{count: 1},
		Strategy: NewGradient(),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrated > 2 {
		t.Errorf("single task migrated %d times", res.Migrated)
	}
}

// TestStaticNeverMoves: the static strategy executes everything where
// it was generated.
func TestStaticNeverMoves(t *testing.T) {
	res, err := Run(Config{
		Topo:     topo.NewMesh(2, 2),
		App:      lineApp{count: 40},
		Strategy: NewStatic(),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nonlocal != 0 || res.Migrated != 0 {
		t.Errorf("static moved tasks: nonlocal=%d migrated=%d", res.Nonlocal, res.Migrated)
	}
	// All 40 tasks ran on node 0: its busy time is the whole workload.
	if res.Sim.Nodes[0].Busy != 40*2*sim.Millisecond {
		t.Errorf("node 0 busy %v", res.Sim.Nodes[0].Busy)
	}
}
