// Package dynsched implements the three dynamic load-balancing
// baselines the paper compares RIPS against in Tables I and III:
// randomized allocation, the gradient model, and receiver-initiated
// diffusion (RID). All three share one asynchronous runtime — a
// task-execution loop in which scheduling decisions are individual,
// made from partial information, and interleaved with computation —
// which is precisely the structural contrast to RIPS's synchronous,
// global system phases.
//
// Global termination of each round is detected with Safra's
// token-ring algorithm (task messages counted, nodes coloured black on
// receipt); its messages are charged to system overhead like any other
// runtime traffic.
package dynsched

import (
	"errors"
	"fmt"
	"os"

	"rips/internal/app"
	"rips/internal/invariant"
	"rips/internal/sim"
	"rips/internal/task"
	"rips/internal/topo"
)

// Message tags.
const (
	TagTask    = iota // task bundle (counted by termination detection)
	TagToken          // Safra termination token
	TagTerm           // round-end broadcast from node 0
	TagAck            // round-end acknowledgement to node 0
	TagGo             // round-start broadcast (all counters are reset)
	TagLoad           // strategy load/proximity information
	TagRequest        // RID task request
)

// Counter names in Result.Sim.Counters.
const (
	CounterGenerated = "dyn.generated"
	CounterExecuted  = "dyn.executed"
	CounterNonlocal  = "dyn.nonlocal"
	CounterMigrated  = "dyn.migrated" // tasks sent between nodes (per hop)
)

// Strategy is one dynamic load-balancing policy. A fresh instance is
// created per node (via Config.Strategy), so implementations keep
// per-node state in their receiver.
type Strategy interface {
	// Name identifies the policy, e.g. "random".
	Name() string
	// Init is called once before the run starts.
	Init(c *Ctx)
	// Place decides where a newly generated task runs: enqueue it
	// locally or send it away via c.SendTasks.
	Place(c *Ctx, t task.Task)
	// OnMessage handles strategy-specific tags (TagLoad, TagRequest);
	// other tags are never passed in.
	OnMessage(c *Ctx, m sim.Message)
	// Poll runs after every task execution and on idle: the hook for
	// threshold checks, pushing surplus or requesting work.
	Poll(c *Ctx)
}

// Config describes a baseline run.
type Config struct {
	Topo      topo.Topology
	App       app.App
	Strategy  func() Strategy
	Latency   *sim.LatencyModel
	Seed      int64
	MaxEvents uint64
	// PerTask is the packing cost per migrated task (default 2us).
	PerTask sim.Time
	// PerEnqueue is the bookkeeping cost per generated task (1us).
	PerEnqueue sim.Time
	// Cancel, when non-nil, aborts the run once the channel is closed;
	// the partial Result has Canceled set and conservation unchecked.
	Cancel <-chan struct{}
}

func (c *Config) latency() sim.LatencyModel {
	if c.Latency != nil {
		return *c.Latency
	}
	return sim.DefaultLatency()
}

// Result of a baseline run; mirrors ripsrt.Result.
type Result struct {
	Sim                                     sim.Result
	Time                                    sim.Time
	Overhead, Idle                          sim.Time
	Generated, Executed, Nonlocal, Migrated int64
	// Canceled reports an abort via Config.Cancel; counters then cover
	// only the work done before the abort.
	Canceled bool
}

// Run executes the workload under the configured strategy.
func Run(cfg Config) (Result, error) {
	if cfg.Topo == nil || cfg.App == nil || cfg.Strategy == nil {
		return Result{}, fmt.Errorf("dynsched: Topo, App and Strategy are required")
	}
	if cfg.PerTask == 0 {
		cfg.PerTask = 2 * sim.Microsecond
	}
	if cfg.PerEnqueue == 0 {
		cfg.PerEnqueue = sim.Microsecond
	}
	sr, err := sim.Run(sim.Config{
		Topo:      cfg.Topo,
		Latency:   cfg.latency(),
		Seed:      cfg.Seed,
		MaxEvents: cfg.MaxEvents,
		Cancel:    cfg.Cancel,
	}, func(n *sim.Node) {
		c := &Ctx{N: n, cfg: &cfg, strat: cfg.Strategy()}
		c.run()
	})
	if err != nil && !errors.Is(err, sim.ErrCanceled) {
		return Result{}, err
	}
	res := Result{
		Sim:       sr,
		Time:      sr.End,
		Generated: sr.Counters[CounterGenerated],
		Executed:  sr.Counters[CounterExecuted],
		Nonlocal:  sr.Counters[CounterNonlocal],
		Migrated:  sr.Counters[CounterMigrated],
	}
	var oh, idle sim.Time
	for _, st := range sr.Nodes {
		oh += st.Overhead
		idle += st.Idle + (sr.End - st.Finish)
	}
	res.Overhead = oh / sim.Time(len(sr.Nodes))
	res.Idle = idle / sim.Time(len(sr.Nodes))
	if err != nil {
		// Canceled mid-run: tasks were abandoned by design, so the
		// executed==generated conservation check does not apply.
		res.Canceled = true
		return res, err
	}
	if res.Executed != res.Generated {
		return res, fmt.Errorf("dynsched: executed %d of %d generated tasks", res.Executed, res.Generated)
	}
	return res, nil
}

// Debug enables stderr tracing of the termination protocol.
var Debug bool

// token is Safra's termination token.
type token struct {
	count int64
	black bool
}

// Ctx is the per-node runtime context handed to strategies.
type Ctx struct {
	N     *sim.Node
	cfg   *Config
	strat Strategy
	Q     task.Queue
	seq   uint64

	// Safra termination state.
	counter       int64 // task messages sent - received
	black         bool
	tokenIn       bool  // we hold the token
	tokenVal      token // its value when held
	tokenOut      bool  // node 0: token is circulating
	round         int
	exitRequested bool
}

// Topo returns the machine interconnect.
func (c *Ctx) Topo() topo.Topology { return c.cfg.Topo }

// newID mints a node-unique task id.
func (c *Ctx) newID() uint64 {
	c.seq++
	return uint64(c.N.ID())<<40 | c.seq
}

// NewTask wraps an application spawn into a task originating here.
func (c *Ctx) NewTask(sp app.Spawn) task.Task {
	c.N.Count(CounterGenerated, 1)
	return task.Task{ID: c.newID(), Origin: c.N.ID(), Size: sp.Size, Data: sp.Data}
}

// Enqueue files a task for local execution.
func (c *Ctx) Enqueue(t task.Task) {
	c.N.Overhead(c.cfg.PerEnqueue)
	c.Q.PushBack(t)
}

// SendTasks ships a bundle to another node (a task message in the
// termination-detection sense, even when empty — RID uses empty
// bundles as negative replies).
func (c *Ctx) SendTasks(to int, ts []task.Task) {
	if to == c.N.ID() {
		invariant.Violated("dynsched: SendTasks to self")
	}
	c.N.Overhead(c.cfg.PerTask * sim.Time(len(ts)))
	c.N.Count(CounterMigrated, int64(len(ts)))
	c.counter++
	c.N.SendTag(to, TagTask, taskMsg{tasks: ts, load: c.Q.Len()}, sizeOfTasks(ts))
}

// taskMsg carries tasks plus the sender's queue length — free
// piggybacked load information every policy may use.
type taskMsg struct {
	tasks []task.Task
	load  int
}

func sizeOfTasks(ts []task.Task) int {
	s := 16
	for _, t := range ts {
		s += t.Size + 16
	}
	return s
}

// run is the node main loop.
func (c *Ctx) run() {
	n := c.N
	c.strat.Init(c)
	c.injectRoots(0)
	if n.ID() == 0 {
		c.tokenIn, c.tokenVal = true, token{}
	}
	for {
		// Drain everything pending.
		for {
			m, ok := n.TryRecv()
			if !ok {
				break
			}
			if c.handle(m) {
				return
			}
		}
		if tk, ok := c.Q.PopFront(); ok {
			c.execute(tk)
			c.strat.Poll(c)
			continue
		}
		// Passive: give the strategy a chance to pull work, move the
		// termination token along, then block.
		c.strat.Poll(c)
		c.passToken()
		if c.exitRequested {
			return
		}
		// The strategy or a new round may have produced work; only
		// block when the queue is still empty.
		if !c.Q.Empty() {
			continue
		}
		if c.handle(n.Recv()) {
			return
		}
	}
}

// injectRoots files this node's share of a round's root tasks through
// the strategy. Block-distributed apps start with each node owning a
// slice (the SPMD decomposition); others start entirely at node 0.
func (c *Ctx) injectRoots(round int) {
	roots := c.cfg.App.Roots(round)
	lo, hi := 0, len(roots)
	if app.RootsDistributed(c.cfg.App) {
		lo, hi = app.RootBlock(len(roots), c.N.N(), c.N.ID())
	} else if c.N.ID() != 0 {
		return
	}
	for _, sp := range roots[lo:hi] {
		c.strat.Place(c, c.NewTask(sp))
	}
}

// execute runs one task; children are placed by the strategy.
func (c *Ctx) execute(tk task.Task) {
	n := c.N
	if tk.Origin != n.ID() {
		n.Count(CounterNonlocal, 1)
	}
	n.Count(CounterExecuted, 1)
	var children []task.Task
	work := c.cfg.App.Execute(tk.Data, func(sp app.Spawn) {
		children = append(children, c.NewTask(sp))
	})
	n.Compute(work)
	for _, ch := range children {
		c.strat.Place(c, ch)
	}
}

// handle processes one message; true means the program should exit.
func (c *Ctx) handle(m sim.Message) bool {
	switch m.Tag {
	case TagTask:
		tm := m.Data.(taskMsg)
		c.counter--
		c.black = true
		for _, t := range tm.tasks {
			c.Enqueue(t)
		}
		c.strat.OnMessage(c, m) // lets policies read the piggybacked load
	case TagToken:
		c.tokenIn = true
		c.tokenVal = m.Data.(token)
		if Debug {
			fmt.Fprintf(os.Stderr, "[%v] node %d got token %+v (counter=%d black=%v round=%d)\n", c.N.Now(), c.N.ID(), c.tokenVal, c.counter, c.black, c.round)
		}
	case TagTerm:
		return c.onTerm(m.Data.(termMsg))
	case TagGo:
		c.injectRoots(c.round)
	case TagLoad, TagRequest:
		c.strat.OnMessage(c, m)
	default:
		invariant.Violated("dynsched: unexpected tag %d", m.Tag)
	}
	return false
}

// passToken advances Safra's algorithm when this (passive) node holds
// the token. Node 0 initiates rounds and evaluates returns.
func (c *Ctx) passToken() {
	n := c.N
	if !c.tokenIn {
		// Node 0 launches a fresh probe whenever none is in flight.
		if n.ID() == 0 && !c.tokenOut {
			c.tokenOut = true
			c.black = false
			n.SendTag(c.ringNext(), TagToken, token{}, 16)
		}
		return
	}
	if n.ID() == 0 {
		c.tokenIn = false
		c.tokenOut = false
		t := c.tokenVal
		if !t.black && !c.black && t.count+c.counter == 0 {
			c.finishRound()
			if c.exitRequested {
				return
			}
			// A new round just started. Launch the next probe right
			// away: if none of the round's tasks ever message node 0,
			// this is the only way its termination can be detected.
		}
		// Start the next probe (after a failed one, immediately).
		c.tokenOut = true
		c.black = false
		n.SendTag(c.ringNext(), TagToken, token{}, 16)
		return
	}
	c.tokenIn = false
	t := c.tokenVal
	t.count += c.counter
	t.black = t.black || c.black
	c.black = false
	n.SendTag(c.ringNext(), TagToken, t, 16)
}

func (c *Ctx) ringNext() int { return (c.N.ID() + 1) % c.N.N() }

// termMsg ends a round; final means the whole computation is done.
type termMsg struct {
	round int
	final bool
}

// finishRound runs at node 0 once global termination of the current
// round is proven: broadcast the round end, collect acknowledgements
// (so every node has reset its counters before new tasks fly), then
// start the next round or shut down.
func (c *Ctx) finishRound() {
	n := c.N
	final := c.round+1 >= c.cfg.App.Rounds()
	if Debug {
		fmt.Fprintf(os.Stderr, "[%v] node 0 finishing round %d (final=%v)\n", c.N.Now(), c.round, final)
	}
	for id := 1; id < n.N(); id++ {
		n.SendTag(id, TagTerm, termMsg{round: c.round, final: final}, 16)
	}
	for id := 1; id < n.N(); id++ {
		n.RecvTag(TagAck)
	}
	if final {
		c.exitRequested = true
		return
	}
	c.round++
	c.counter, c.black = 0, false
	// Every node has acknowledged (and reset its counters); release
	// them into the new round before injecting our own share.
	for id := 1; id < n.N(); id++ {
		n.SendTag(id, TagGo, nil, 8)
	}
	c.injectRoots(c.round)
}

// onTerm handles a round-end broadcast at a non-root node.
func (c *Ctx) onTerm(t termMsg) bool {
	c.counter, c.black = 0, false
	c.round = t.round + 1
	c.N.SendTag(0, TagAck, nil, 8)
	return t.final
}
