package app

import (
	"testing"

	"rips/internal/sim"
)

// fakeApp: round r has (r+1) root tasks; each root spawns `fan`
// children of unit work; roots cost rootWork.
type fakeApp struct {
	rounds, fan int
	rootWork    sim.Time
}

func (f fakeApp) Name() string { return "fake" }
func (f fakeApp) Rounds() int  { return f.rounds }
func (f fakeApp) Roots(r int) []Spawn {
	out := make([]Spawn, r+1)
	for i := range out {
		out[i] = Spawn{Data: "root", Size: 8}
	}
	return out
}
func (f fakeApp) Execute(data any, emit func(Spawn)) sim.Time {
	if data == "root" {
		for i := 0; i < f.fan; i++ {
			emit(Spawn{Data: "leaf", Size: 8})
		}
		return f.rootWork
	}
	return sim.Millisecond
}

func TestMeasureCountsTasksAndWork(t *testing.T) {
	a := fakeApp{rounds: 3, fan: 4, rootWork: 10 * sim.Millisecond}
	p := Measure(a)
	// Roots per round: 1,2,3 = 6 roots; leaves = 6*4 = 24.
	if p.Tasks != 30 {
		t.Errorf("Tasks = %d, want 30", p.Tasks)
	}
	want := 6*10*sim.Millisecond + 24*sim.Millisecond
	if p.Work != want {
		t.Errorf("Work = %v, want %v", p.Work, want)
	}
	if len(p.Rounds) != 3 {
		t.Fatalf("Rounds = %d", len(p.Rounds))
	}
	if p.Rounds[1].Tasks != 2+8 {
		t.Errorf("round 1 tasks = %d", p.Rounds[1].Tasks)
	}
	if p.Rounds[0].MaxTask != 10*sim.Millisecond {
		t.Errorf("round 0 max task = %v", p.Rounds[0].MaxTask)
	}
}

func TestOptimalTimeWorkBound(t *testing.T) {
	// One round, 100 unit tasks: on 10 procs optimal is 10 units.
	p := Profile{Rounds: []RoundProfile{{Tasks: 100, Work: 100 * sim.Millisecond, MaxTask: sim.Millisecond}}}
	p.Work = 100 * sim.Millisecond
	if got := p.OptimalTime(10); got != 10*sim.Millisecond {
		t.Errorf("OptimalTime = %v, want 10ms", got)
	}
	if e := p.OptimalEfficiency(10); e != 1.0 {
		t.Errorf("OptimalEfficiency = %v, want 1", e)
	}
}

func TestOptimalTimeCriticalTaskBound(t *testing.T) {
	// A single huge task dominates regardless of processor count.
	p := Profile{
		Work: 20 * sim.Millisecond,
		Rounds: []RoundProfile{
			{Tasks: 11, Work: 20 * sim.Millisecond, MaxTask: 10 * sim.Millisecond},
		},
	}
	if got := p.OptimalTime(32); got != 10*sim.Millisecond {
		t.Errorf("OptimalTime = %v, want 10ms (longest task)", got)
	}
	e := p.OptimalEfficiency(32)
	if e < 0.06 || e > 0.07 {
		t.Errorf("OptimalEfficiency = %v, want 20/320", e)
	}
}

func TestOptimalTimeRoundsSerialize(t *testing.T) {
	// Two rounds with barriers cost more than their merged pool would.
	p := Profile{
		Work: 20 * sim.Millisecond,
		Rounds: []RoundProfile{
			{Work: 10 * sim.Millisecond, MaxTask: 8 * sim.Millisecond},
			{Work: 10 * sim.Millisecond, MaxTask: 8 * sim.Millisecond},
		},
	}
	if got := p.OptimalTime(4); got != 16*sim.Millisecond {
		t.Errorf("OptimalTime = %v, want 16ms", got)
	}
}

func TestOptimalTimeRoundsUpDivision(t *testing.T) {
	p := Profile{
		Work:   sim.Time(10),
		Rounds: []RoundProfile{{Work: sim.Time(10), MaxTask: 1}},
	}
	if got := p.OptimalTime(3); got != 4 {
		t.Errorf("OptimalTime = %v, want ceil(10/3)=4", got)
	}
}

func TestOptimalTimePanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for n=0")
		}
	}()
	Profile{}.OptimalTime(0)
}

func TestEmptyProfileEfficiency(t *testing.T) {
	if e := (Profile{}).OptimalEfficiency(8); e != 1 {
		t.Errorf("empty profile efficiency = %v", e)
	}
}
