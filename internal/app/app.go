// Package app defines the workload abstraction shared by the RIPS
// runtime and the dynamic-scheduling baselines, plus a sequential
// profiler used to compute the paper's sequential time Ts and optimal
// efficiencies (Table II).
//
// An App is a deterministic task-parallel computation organised in
// globally-synchronized rounds: N-Queens and the GROMOS surrogate are
// single-round task pools; IDA* runs one round per cost-bound
// iteration (the synchronization the paper blames for IDA*'s lower
// efficiency). Within a round, executing a task may spawn child tasks;
// the runtime decides where children run — that placement policy is
// exactly what the paper compares.
package app

import (
	"rips/internal/invariant"
	"rips/internal/sim"
)

// Spawn is a task payload emitted by an App: the data the runtime
// ships between nodes and its serialized size in bytes.
type Spawn struct {
	Data any
	Size int
}

// App is a deterministic task-parallel computation. Execute must be a
// pure function of its payload (shared state set up at construction
// must be treated as immutable), so that a sequential profile and any
// simulated parallel execution perform identical work.
type App interface {
	// Name identifies the workload in reports, e.g. "15-queens".
	Name() string
	// Rounds is the number of globally-synchronized rounds.
	Rounds() int
	// Roots returns the tasks that seed the given round. They enter
	// the system at node 0 (the paper's SPMD programs start the root
	// computation on one processor and let the scheduler spread it).
	Roots(round int) []Spawn
	// Execute runs one task, emitting any children via emit and
	// returning the virtual compute time the task consumed.
	Execute(data any, emit func(Spawn)) sim.Time
}

// Counted is an optional App extension for workloads whose tasks
// produce a summable application-level result — N-Queens solutions
// found below a task's state, goal states reached within an IDA*
// bound. The runtimes aggregate the contributions, which gives tests a
// direct way to prove that a scheduling backend executed exactly the
// sequential computation: the aggregate must match the sequential
// profile's Result bit for bit, however tasks were placed.
type Counted interface {
	App
	// ExecuteCount is Execute returning additionally the task's
	// contribution to the application result. Implementations must
	// keep Execute and ExecuteCount behaviourally identical (same
	// children, same virtual time).
	ExecuteCount(data any, emit func(Spawn)) (sim.Time, int64)
}

// ExecuteCount runs one task, using the app's result counting when it
// implements Counted and reporting a zero contribution otherwise.
func ExecuteCount(a App, data any, emit func(Spawn)) (sim.Time, int64) {
	if c, ok := a.(Counted); ok {
		return c.ExecuteCount(data, emit) //ripslint:allow hotpath application payload execution is outside the scheduler's steady-state contract
	}
	return a.Execute(data, emit), 0 //ripslint:allow hotpath application payload execution is outside the scheduler's steady-state contract
}

// PayloadCodec is an optional App extension for workloads whose task
// payloads can cross a process boundary: the distributed cluster
// backend (internal/cluster) ships task batches between nodes as
// rips-wire/v1 frames, serializing each payload through this codec.
// The encoding must be canonical and self-contained — DecodePayload on
// another process running the identically-constructed App must yield a
// payload Execute treats exactly like the original, so a task executes
// the same work wherever it lands. Apps without the extension run on
// the single-process backends only.
type PayloadCodec interface {
	App
	// AppendPayload appends data's canonical encoding to dst and
	// returns the extended slice (append-style, so batch encoders reuse
	// one buffer). Unknown payload types are errors, never panics.
	AppendPayload(dst []byte, data any) ([]byte, error)
	// DecodePayload decodes one payload produced by AppendPayload.
	// Truncated or malformed input is an error, never a panic.
	DecodePayload(p []byte) (any, error)
}

// WireSerializable reports whether a's task payloads can cross a
// process boundary.
func WireSerializable(a App) bool {
	_, ok := a.(PayloadCodec)
	return ok
}

// BlockDistributed marks apps whose root tasks start block-distributed
// across the machine — the static SPMD decomposition a real code like
// GROMOS performs at startup (each processor owns its atom block).
// Roots of such apps enter the system at node floor(k*N/len(roots))
// for root index k; apps without this marker start at node 0.
type BlockDistributed interface {
	BlockDistributed() bool
}

// RootsDistributed reports whether a's roots start block-distributed.
func RootsDistributed(a App) bool {
	b, ok := a.(BlockDistributed)
	return ok && b.BlockDistributed()
}

// RootBlock returns the half-open index range of a round's roots that
// start on the given node, under the block distribution.
func RootBlock(numRoots, n, node int) (lo, hi int) {
	return numRoots * node / n, numRoots * (node + 1) / n
}

// RoundProfile is the sequential execution profile of one round.
type RoundProfile struct {
	Tasks   int
	Work    sim.Time // total work in the round
	MaxTask sim.Time // largest single task
}

// Profile is the sequential execution profile of a whole App.
type Profile struct {
	Name   string
	Tasks  int
	Work   sim.Time // Ts: the sequential execution time
	Rounds []RoundProfile
	// Result is the aggregated application result of Counted apps
	// (e.g. the solution count); 0 for apps without result counting.
	Result int64
}

// Measure executes the App sequentially (children run depth-first on
// the spot) and profiles it. Because Execute is deterministic, the
// totals equal what any simulated parallel run performs.
func Measure(a App) Profile {
	p := Profile{Name: a.Name(), Rounds: make([]RoundProfile, a.Rounds())}
	for r := 0; r < a.Rounds(); r++ {
		rp := &p.Rounds[r]
		stack := a.Roots(r)
		for len(stack) > 0 {
			t := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			w, res := ExecuteCount(a, t.Data, func(s Spawn) { stack = append(stack, s) })
			p.Result += res
			rp.Tasks++
			rp.Work += w
			if w > rp.MaxTask {
				rp.MaxTask = w
			}
		}
		p.Tasks += rp.Tasks
		p.Work += rp.Work
	}
	return p
}

// OptimalTime is the best possible parallel execution time of the
// profiled computation on n processors under the paper's Table II
// assumptions — optimal scheduling, zero overhead: each round takes
// max(round work / n, longest task), and rounds are serialized by the
// global synchronization.
func (p Profile) OptimalTime(n int) sim.Time {
	if n <= 0 {
		invariant.Violated("app: OptimalTime on %d processors", n)
	}
	var t sim.Time
	for _, r := range p.Rounds {
		per := r.Work / sim.Time(n)
		if r.Work%sim.Time(n) != 0 {
			per++
		}
		if per < r.MaxTask {
			per = r.MaxTask
		}
		t += per
	}
	return t
}

// OptimalEfficiency is Ts / (N * OptimalTime): the paper's Table II.
func (p Profile) OptimalEfficiency(n int) float64 {
	ot := p.OptimalTime(n)
	if ot == 0 {
		return 1
	}
	return float64(p.Work) / (float64(n) * float64(ot))
}
