package invariant

import (
	"strings"
	"testing"
)

// catch runs f and returns the *Violation it panicked with, or nil if
// it returned normally. Any other panic value fails the test.
func catch(t *testing.T, f func()) (v *Violation) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		var ok bool
		v, ok = r.(*Violation)
		if !ok {
			t.Fatalf("panic value %T (%v), want *Violation", r, r)
		}
	}()
	f()
	return nil
}

func TestViolatedAlwaysPanicsTyped(t *testing.T) {
	defer SetEnabled(false)() // even with gated checks off
	v := catch(t, func() { Violated("node %d broke", 3) })
	if v == nil {
		t.Fatal("Violated did not panic")
	}
	if !strings.Contains(v.Error(), "node 3 broke") {
		t.Errorf("message %q lacks operands", v.Error())
	}
}

// skipIfCompiledOut skips tests of gated checks under -tags
// noinvariants, where SetEnabled(true) cannot re-enable them.
func skipIfCompiledOut(t *testing.T) {
	t.Helper()
	if !compiled {
		t.Skip("gated checks compiled out with -tags noinvariants")
	}
}

func TestCheckGating(t *testing.T) {
	skipIfCompiledOut(t)
	restore := SetEnabled(true)
	defer restore()
	if catch(t, func() { Check(true, "fine") }) != nil {
		t.Error("Check(true) violated")
	}
	if catch(t, func() { Check(false, "broken %s", "thing") }) == nil {
		t.Error("Check(false) did not violate while enabled")
	}
	SetEnabled(false)
	if catch(t, func() { Check(false, "broken") }) != nil {
		t.Error("Check(false) violated while disabled")
	}
}

func TestConserved(t *testing.T) {
	skipIfCompiledOut(t)
	defer SetEnabled(true)()
	if catch(t, func() { Conserved(7, 7, "phase") }) != nil {
		t.Error("equal counts violated")
	}
	v := catch(t, func() { Conserved(7, 6, "mesh phase") })
	if v == nil {
		t.Fatal("lost task not caught")
	}
	if !strings.Contains(v.Msg, "mesh phase") || !strings.Contains(v.Msg, "7") {
		t.Errorf("unhelpful message %q", v.Msg)
	}
}

// TestBalancedWithinOneCatchesViolation is the required demonstration
// that a deliberately unbalanced outcome is caught: 10 tasks over 4
// nodes give quotas (3,3,2,2); a node 0 holding 4 violates Theorem 1.
func TestBalancedWithinOneCatchesViolation(t *testing.T) {
	skipIfCompiledOut(t)
	defer SetEnabled(true)()
	// The exact quota assignment: total=10, n=4, rem=2.
	for id, quota := range []int{3, 3, 2, 2} {
		if catch(t, func() { BalancedWithinOne(quota, 10, 4, id, "test") }) != nil {
			t.Errorf("node %d with quota %d flagged", id, quota)
		}
	}
	v := catch(t, func() { BalancedWithinOne(4, 10, 4, 0, "test") })
	if v == nil {
		t.Fatal("node holding quota+1 not caught")
	}
	// "Within one of the average" is not enough: node 2's quota is 2,
	// so holding 3 (still within one of avg 2.5) must be caught too —
	// the remainder assignment is part of the theorem.
	if catch(t, func() { BalancedWithinOne(3, 10, 4, 2, "test") }) == nil {
		t.Fatal("misassigned remainder not caught")
	}
}

func TestLocality(t *testing.T) {
	skipIfCompiledOut(t)
	defer SetEnabled(true)()
	if catch(t, func() { Locality(3, 3, "phase") }) != nil {
		t.Error("export == surplus flagged")
	}
	if catch(t, func() { Locality(0, -5, "phase") }) != nil {
		t.Error("deficit node exporting nothing flagged")
	}
	if catch(t, func() { Locality(1, 0, "phase") }) == nil {
		t.Error("on-quota node exporting a resident task not caught")
	}
	if catch(t, func() { Locality(4, 3, "phase") }) == nil {
		t.Error("export beyond surplus not caught")
	}
}

func TestBalancedWithinOneBadNodeCount(t *testing.T) {
	skipIfCompiledOut(t)
	defer SetEnabled(true)()
	if catch(t, func() { BalancedWithinOne(0, 0, 0, 0, "test") }) == nil {
		t.Error("n=0 not caught")
	}
}
