//go:build !noinvariants

package invariant

// compiled reports whether gated checks were compiled in. The default
// build keeps them; -tags noinvariants flips this file out for
// enabled_off.go and the guard becomes a constant the compiler can
// eliminate along with every gated call.
const compiled = true
