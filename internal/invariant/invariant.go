// Package invariant turns the paper's correctness theorems into
// executed runtime checks. The RIPS runtime and the pure scheduling
// planners call these assertions at their phase boundaries:
//
//   - Conserved — task conservation across a system phase (no task is
//     created or destroyed by scheduling).
//   - BalancedWithinOne — Theorem 1: after a balancing phase every node
//     holds floor(T/N) tasks, plus one if its id is below T mod N.
//   - Locality — Theorem 2: a node never exports more of its own
//     resident tasks than its surplus over quota; in-transit tasks are
//     forwarded first, so locality is maximal.
//
// Checks are cheap (O(1) comparisons at call sites that already hold
// the operands) and doubly gated:
//
//   - Build tag: compiling with -tags noinvariants removes every gated
//     check; the guard collapses to a constant false and the calls are
//     dead-code eliminated.
//   - Environment: RIPS_INVARIANTS=0 (or "off"/"false") disables gated
//     checks at startup without recompiling. Any other value — or an
//     unset variable — leaves them on, so every `go test` run executes
//     them.
//
// Violated is NOT gated: it is the project's sanctioned replacement for
// bare panic(...) in library code (see the ripslint panicpolicy
// analyzer) and reports a bug unconditionally, with a typed *Violation
// value that tests and callers can distinguish from incidental panics.
package invariant

import (
	"fmt"
	"os"
	"sync/atomic"
)

// Violation is the panic value raised by every assertion in this
// package. Recovering code can type-switch on *Violation to tell a
// checked invariant failure from an unrelated panic.
type Violation struct {
	// Msg describes the violated invariant, with operands.
	Msg string
}

func (v *Violation) Error() string { return "invariant violated: " + v.Msg }

func (v *Violation) String() string { return v.Error() }

// enabled caches the runtime toggle: 0 unresolved, 1 on, 2 off.
var enabled atomic.Int32

// Enabled reports whether gated checks run. It is false when the
// binary was built with -tags noinvariants, or when RIPS_INVARIANTS is
// set to "0", "off" or "false" in the environment.
func Enabled() bool {
	if !compiled {
		return false
	}
	switch enabled.Load() {
	case 1:
		return true
	case 2:
		return false
	}
	on := true
	//ripslint:allow hotpath the environment is read once on first call and cached in enabled; steady-state calls take the atomic fast path above
	switch os.Getenv("RIPS_INVARIANTS") {
	case "0", "off", "false":
		on = false
	}
	if on {
		enabled.Store(1)
	} else {
		enabled.Store(2)
	}
	return on
}

// SetEnabled overrides the environment toggle (tests use it to
// exercise both sides of the gate) and returns a restore function. It
// cannot re-enable checks compiled out with -tags noinvariants.
func SetEnabled(on bool) (restore func()) {
	prev := enabled.Load()
	if on {
		enabled.Store(1)
	} else {
		enabled.Store(2)
	}
	return func() { enabled.Store(prev) }
}

// Violated reports an invariant violation unconditionally: it panics
// with a *Violation. It is the sanctioned replacement for bare
// panic(...) in library packages — reaching it means a bug has already
// been detected, so it is never gated.
func Violated(format string, args ...any) {
	panic(&Violation{Msg: fmt.Sprintf(format, args...)})
}

// Check panics with a *Violation when cond is false. It is gated: a
// disabled build or environment skips the check entirely, so callers
// may use it on hot paths.
func Check(cond bool, format string, args ...any) {
	if !Enabled() || cond {
		return
	}
	Violated(format, args...)
}

// Conserved asserts task conservation: the task count after a
// scheduling step must equal the count before it. what names the step
// for the failure message.
func Conserved(before, after int, what string) {
	if !Enabled() || before == after {
		return
	}
	Violated("%s: task conservation broken: %d before, %d after", what, before, after)
}

// BalancedWithinOne asserts Theorem 1 for one node: after a balancing
// phase over n nodes holding total tasks globally, node id must hold
// exactly floor(total/n) tasks, plus one if id < total mod n. This is
// strictly stronger than "within one of the average": it pins the
// remainder distribution the Mesh Walking Algorithm guarantees.
func BalancedWithinOne(got, total, n, id int, what string) {
	if !Enabled() {
		return
	}
	if n <= 0 {
		Violated("%s: balance check over %d nodes", what, n)
	}
	quota := total / n
	if id < total%n {
		quota++
	}
	if got != quota {
		Violated("%s: node %d holds %d tasks after balancing, quota %d (total %d over %d nodes)",
			what, id, got, quota, total, n)
	}
}

// Locality asserts Theorem 2 for one node and one system phase: the
// number of the node's own resident tasks it exported must not exceed
// its surplus over quota (max(0, surplus)). Exporting more would mean
// a resident task was displaced by a forwarded one — exactly the
// locality loss the walking algorithms' export recurrence rules out.
func Locality(ownExported, surplus int, what string) {
	if !Enabled() {
		return
	}
	limit := surplus
	if limit < 0 {
		limit = 0
	}
	if ownExported > limit {
		Violated("%s: exported %d resident tasks with surplus %d — locality (Theorem 2) broken",
			what, ownExported, surplus)
	}
}
