//go:build noinvariants

package invariant

// compiled is false under -tags noinvariants: every gated check in
// this package short-circuits on a constant and is dead-code
// eliminated. Violated remains active — it reports bugs already
// detected, not speculative checks.
const compiled = false
