package exp

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rips/internal/apps/nqueens"
	"rips/internal/par"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestParScaleCounts(t *testing.T) {
	cases := []struct {
		max  int
		want []int
	}{
		{1, []int{1}},
		{4, []int{1, 2, 4}},
		{6, []int{1, 2, 4, 6}},
		{0, []int{1}},
	}
	for _, c := range cases {
		got := ParScaleCounts(c.max)
		if len(got) != len(c.want) {
			t.Errorf("ParScaleCounts(%d) = %v, want %v", c.max, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ParScaleCounts(%d) = %v, want %v", c.max, got, c.want)
				break
			}
		}
	}
}

func TestParScale(t *testing.T) {
	a := nqueens.New(9, 3)
	pts, err := ParScale(a, []int{1, 2}, 1, -1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	for _, p := range pts {
		if p.RIPS.AppResult != 352 || p.Steal.AppResult != 352 || p.Hybrid.AppResult != 352 {
			t.Errorf("%d workers: app results %d/%d/%d, want 352 solutions",
				p.Workers, p.RIPS.AppResult, p.Steal.AppResult, p.Hybrid.AppResult)
		}
		if p.RIPSSpeedup <= 0 || p.StealSpeedup <= 0 || p.HybridSpeedup <= 0 {
			t.Errorf("%d workers: non-positive speedups %v/%v/%v",
				p.Workers, p.RIPSSpeedup, p.StealSpeedup, p.HybridSpeedup)
		}
		if p.RIPSEff <= 0 || p.RIPSEff > 1 || p.StealEff <= 0 || p.StealEff > 1 ||
			p.HybridEff <= 0 || p.HybridEff > 1 {
			t.Errorf("%d workers: efficiencies out of range %v/%v/%v",
				p.Workers, p.RIPSEff, p.StealEff, p.HybridEff)
		}
		// The requested partition is clamped to the worker count, so the
		// 1-worker point resolves to one domain and the 2-worker point
		// to the requested two.
		want := 2
		if p.Workers < want {
			want = p.Workers
		}
		if p.Hybrid.Domains != want {
			t.Errorf("%d workers: hybrid resolved %d domains, want %d", p.Workers, p.Hybrid.Domains, want)
		}
	}
	if pts[0].RIPSSpeedup != 1 || pts[0].StealSpeedup != 1 || pts[0].HybridSpeedup != 1 {
		t.Errorf("1-worker speedups = %v/%v/%v, want 1",
			pts[0].RIPSSpeedup, pts[0].StealSpeedup, pts[0].HybridSpeedup)
	}

	var buf strings.Builder
	PrintParScale(&buf, a, pts)
	out := buf.String()
	for _, want := range []string{"9-queens", "rips wall", "steal wall", "hyb wall", "352"} {
		if !strings.Contains(out, want) {
			t.Errorf("PrintParScale output missing %q:\n%s", want, out)
		}
	}
}

// TestParScaleApp pins the family names and size validation of the
// Table I workload contrast.
func TestParScaleApp(t *testing.T) {
	for _, c := range []struct {
		family string
		size   int
		name   string
	}{
		{"nq", 0, "13-queens"},
		{"nq", 9, "9-queens"},
		{"ida", 0, "15-puzzle #1"},
		{"ida", 2, "15-puzzle #2"},
		{"gromos", 0, "gromos 8A"},
		{"gromos", 12, "gromos 12A"},
	} {
		a, err := ParScaleApp(c.family, c.size)
		if err != nil {
			t.Errorf("ParScaleApp(%q, %d): %v", c.family, c.size, err)
			continue
		}
		if a.Name() != c.name {
			t.Errorf("ParScaleApp(%q, %d).Name() = %q, want %q", c.family, c.size, a.Name(), c.name)
		}
	}
	for _, c := range []struct {
		family string
		size   int
	}{
		{"nq", 3}, {"ida", 4}, {"ida", -1}, {"gromos", -8}, {"chess", 0},
	} {
		if _, err := ParScaleApp(c.family, c.size); err == nil {
			t.Errorf("ParScaleApp(%q, %d) succeeded, want error", c.family, c.size)
		}
	}
}

// TestWriteParScaleJSON round-trips the BENCH_par.json document: the
// schema tag, the environment fields, and the flattened point values
// must survive encoding.
func TestWriteParScaleJSON(t *testing.T) {
	pts := []ParScalePoint{
		{
			Workers: 2,
			RIPS:    par.Result{Wall: 3 * time.Millisecond, Overhead: 400 * time.Microsecond, Phases: 7, Waves: 5, Migrated: 120, AppResult: 352},
			Steal:   par.Result{Wall: 2 * time.Millisecond, Steals: 17, CrossSteals: 6, AppResult: 352},
			Hybrid: par.Result{
				Wall: 1800 * time.Microsecond, Overhead: 300 * time.Microsecond,
				Phases: 4, Waves: 3, Migrated: 30, Steals: 11, Domains: 2,
				DomainSteals: []int64{7, 4}, DomainMigrated: []int64{18, 12}, AppResult: 352,
			},
			RIPSSpeedup: 1.8, StealSpeedup: 1.9, HybridSpeedup: 2.1,
			RIPSEff: 0.9, StealEff: 0.95, HybridEff: 0.97,
		},
	}
	sp := &SystemPhaseJSON{Workers: 16, TasksPerWorker: 64, Phases: 8, SerialNsPerPhase: 900, ParallelNsPerPhase: 400, ParallelWaves: 9}
	var buf strings.Builder
	if err := WriteParScaleJSON(&buf, nqueens.New(9, 3), 3, pts, sp); err != nil {
		t.Fatal(err)
	}
	var doc ParScaleJSON
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("BENCH_par.json does not parse: %v\n%s", err, buf.String())
	}
	if doc.Schema != ParScaleJSONSchema || doc.App != "9-queens" || doc.Reps != 3 || doc.Cores < 1 {
		t.Errorf("header = %+v", doc)
	}
	if len(doc.Points) != 1 {
		t.Fatalf("%d points, want 1", len(doc.Points))
	}
	p := doc.Points[0]
	if p.Workers != 2 || p.RIPSWallNs != 3e6 || p.RIPSOverheadNs != 4e5 ||
		p.RIPSPhases != 7 || p.RIPSWaves != 5 || p.RIPSMigrated != 120 ||
		p.StealWallNs != 2e6 || p.StealSteals != 17 || p.StealCrossSteals != 6 {
		t.Errorf("point = %+v", p)
	}
	if p.HybridWallNs != 18e5 || p.HybridOverheadNs != 3e5 || p.HybridPhases != 4 ||
		p.HybridWaves != 3 || p.HybridMigrated != 30 || p.HybridSteals != 11 ||
		p.HybridDomains != 2 || p.HybridSpeedup != 2.1 || p.HybridEff != 0.97 {
		t.Errorf("hybrid point = %+v", p)
	}
	if len(p.HybridDomainSteals) != 2 || p.HybridDomainSteals[0] != 7 || p.HybridDomainSteals[1] != 4 ||
		len(p.HybridDomainMigrate) != 2 || p.HybridDomainMigrate[0] != 18 || p.HybridDomainMigrate[1] != 12 {
		t.Errorf("hybrid per-domain counters = %v / %v", p.HybridDomainSteals, p.HybridDomainMigrate)
	}
	if doc.SystemPhase == nil || *doc.SystemPhase != *sp {
		t.Errorf("system phase = %+v, want %+v", doc.SystemPhase, sp)
	}
}

// TestSystemPhaseCompare checks the serial-vs-parallel comparison runs
// end to end: positive per-phase costs on both sides, waves fanned out
// only by the parallel apply.
func TestSystemPhaseCompare(t *testing.T) {
	sp := SystemPhaseCompare(4, 64, 3, 1)
	if sp.Workers != 4 || sp.TasksPerWorker != 64 || sp.Phases != 3 {
		t.Errorf("comparison = %+v", sp)
	}
	if sp.SerialNsPerPhase <= 0 || sp.ParallelNsPerPhase <= 0 {
		t.Errorf("non-positive per-phase costs: %+v", sp)
	}
	if sp.ParallelWaves == 0 {
		t.Errorf("parallel apply fanned out no waves: %+v", sp)
	}
}

// TestPrintParScaleGolden locks the exact rendering of the scaling
// table against testdata/parscale.golden (refresh with -update). The
// points are synthetic so the output is byte-stable: the golden file
// is about format — column alignment, units, the answer-check line —
// not about measured times.
func TestPrintParScaleGolden(t *testing.T) {
	pts := []ParScalePoint{
		{
			Workers:     1,
			RIPS:        par.Result{Wall: 8 * time.Millisecond, Phases: 9, AppResult: 352, Generated: 2352},
			Steal:       par.Result{Wall: 7500 * time.Microsecond, AppResult: 352, Generated: 2352},
			Hybrid:      par.Result{Wall: 7800 * time.Microsecond, Phases: 2, Domains: 1, AppResult: 352, Generated: 2352},
			RIPSSpeedup: 1, StealSpeedup: 1, HybridSpeedup: 1,
			RIPSEff: 0.97, StealEff: 0.99, HybridEff: 0.98,
		},
		{
			Workers:     4,
			RIPS:        par.Result{Wall: 2200*time.Microsecond + 500*time.Nanosecond, Phases: 11, Migrated: 96, AppResult: 352, Generated: 2352},
			Steal:       par.Result{Wall: 2 * time.Millisecond, Steals: 41, CrossSteals: 19, AppResult: 352, Generated: 2352},
			Hybrid:      par.Result{Wall: 1900 * time.Microsecond, Phases: 6, Migrated: 24, Steals: 28, Domains: 2, AppResult: 352, Generated: 2352},
			RIPSSpeedup: 3.64, StealSpeedup: 3.75, HybridSpeedup: 4.11,
			RIPSEff: 0.88, StealEff: 0.93, HybridEff: 0.95,
		},
	}
	var buf strings.Builder
	PrintParScale(&buf, nqueens.New(9, 3), pts)

	golden := filepath.Join("testdata", "parscale.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(buf.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if buf.String() != string(want) {
		t.Errorf("PrintParScale output drifted from %s (refresh with -update):\ngot:\n%s\nwant:\n%s",
			golden, buf.String(), want)
	}
}
