package exp

import (
	"strings"
	"testing"

	"rips/internal/apps/nqueens"
)

func TestParScaleCounts(t *testing.T) {
	cases := []struct {
		max  int
		want []int
	}{
		{1, []int{1}},
		{4, []int{1, 2, 4}},
		{6, []int{1, 2, 4, 6}},
		{0, []int{1}},
	}
	for _, c := range cases {
		got := ParScaleCounts(c.max)
		if len(got) != len(c.want) {
			t.Errorf("ParScaleCounts(%d) = %v, want %v", c.max, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ParScaleCounts(%d) = %v, want %v", c.max, got, c.want)
				break
			}
		}
	}
}

func TestParScale(t *testing.T) {
	a := nqueens.New(9, 3)
	pts, err := ParScale(a, []int{1, 2}, 1, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	for _, p := range pts {
		if p.RIPS.AppResult != 352 || p.Steal.AppResult != 352 {
			t.Errorf("%d workers: app results %d/%d, want 352 solutions",
				p.Workers, p.RIPS.AppResult, p.Steal.AppResult)
		}
		if p.RIPSSpeedup <= 0 || p.StealSpeedup <= 0 {
			t.Errorf("%d workers: non-positive speedups %v/%v", p.Workers, p.RIPSSpeedup, p.StealSpeedup)
		}
		if p.RIPSEff <= 0 || p.RIPSEff > 1 || p.StealEff <= 0 || p.StealEff > 1 {
			t.Errorf("%d workers: efficiencies out of range %v/%v", p.Workers, p.RIPSEff, p.StealEff)
		}
	}
	if pts[0].RIPSSpeedup != 1 || pts[0].StealSpeedup != 1 {
		t.Errorf("1-worker speedups = %v/%v, want 1", pts[0].RIPSSpeedup, pts[0].StealSpeedup)
	}

	var buf strings.Builder
	PrintParScale(&buf, a, pts)
	out := buf.String()
	for _, want := range []string{"9-queens", "rips wall", "steal wall", "352"} {
		if !strings.Contains(out, want) {
			t.Errorf("PrintParScale output missing %q:\n%s", want, out)
		}
	}
}
