package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"rips"
	"rips/internal/app"
	"rips/internal/metrics"
	"rips/internal/par"
	"rips/internal/topo"
)

// ParScale is the real-parallel scaling experiment: the same workload
// runs on the internal/par backend at increasing worker counts, RIPS
// (ANY-Lazy over the walking-algorithm system phases) side by side
// with Chase-Lev work stealing and the hierarchical hybrid (RIPS
// phases across affinity domains, stealing within), and the curve
// reports wall-clock speedup against each strategy's own one-worker
// run. This is the zero-simulation counterpart of Table III: the
// paper's claim that global incremental scheduling stays within a
// small factor of the best dynamic scheduler is re-tested on actual
// cores, and the hybrid column shows where the hierarchy beats both
// pure strategies.

// ParScaleApp resolves a workload for the scaling experiment by family
// name: "nq" is highly parallel uniform search (size = board, 0 means
// 13), "ida" is irregular iterative deepening with wildly varying
// round sizes (size = paper configuration 1..3, 0 means 1), and
// "gromos" is the static near-uniform pair-list computation (size =
// cutoff radius in angstroms, 0 means 8). The three families stress
// the scheduler in the three ways the paper's taxonomy distinguishes,
// so their curves are directly comparable.
//
// The registry this name vocabulary introduced is public now —
// rips.RegisterApp/rips.LookupApp/rips.Apps — and ParScaleApp is a
// thin forwarding shim kept for its internal callers.
func ParScaleApp(family string, size int) (app.App, error) {
	return rips.LookupApp(family, size)
}

// ParScalePoint is one worker count of the scaling curve.
type ParScalePoint struct {
	Workers             int
	RIPS, Steal, Hybrid par.Result
	// Speedups are against the strategy's own 1-worker wall time;
	// efficiencies are busy/(workers*wall).
	RIPSSpeedup, StealSpeedup, HybridSpeedup float64
	RIPSEff, StealEff, HybridEff             float64
}

// ParScaleCounts returns the worker counts of the scaling curve:
// powers of two from 1 up to maxWorkers, plus maxWorkers itself.
func ParScaleCounts(maxWorkers int) []int {
	if maxWorkers < 1 {
		maxWorkers = 1
	}
	var counts []int
	for n := 1; n <= maxWorkers; n *= 2 {
		counts = append(counts, n)
	}
	if last := counts[len(counts)-1]; last != maxWorkers {
		counts = append(counts, maxWorkers)
	}
	return counts
}

// ParScale measures the scaling curve. Each point pins GOMAXPROCS to
// its worker count (restored afterwards) so a w-worker run really uses
// w cores, and keeps the fastest of reps runs to shed scheduling
// noise. domains shapes the hybrid strategy's partition (zero
// auto-detects; see par.Config.Domains) and classifies the pure-steal
// runs' steals as intra- versus cross-domain — measuring exactly the
// traffic the hybrid eliminates. The workload's answer (solution
// count, task totals) is verified identical across every strategy and
// point — a wrong answer fails the experiment rather than quietly
// shading a speedup.
func ParScale(a app.App, counts []int, reps int, detect time.Duration, domains int, seed int64) ([]ParScalePoint, error) {
	if reps < 1 {
		reps = 1
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	best := func(workers int, strat par.Strategy) (par.Result, error) {
		cfg := par.Config{
			Topo:           topo.SquarishMesh(workers),
			App:            a,
			Strategy:       strat,
			DetectInterval: detect,
			Seed:           seed,
		}
		if strat != par.RIPS {
			// Hybrid: the partition knob. Steal: advisory steal
			// classification. Pure RIPS rejects the field.
			cfg.Domains = domains
		}
		var out par.Result
		for i := 0; i < reps; i++ {
			res, err := par.Run(cfg)
			if err != nil {
				return par.Result{}, err
			}
			if i == 0 || res.Wall < out.Wall {
				out = res
			}
		}
		return out, nil
	}

	var pts []ParScalePoint
	var ripsBase, stealBase, hybridBase time.Duration
	var refResult, refTasks int64
	for i, w := range counts {
		runtime.GOMAXPROCS(w)
		rres, err := best(w, par.RIPS)
		if err != nil {
			return nil, fmt.Errorf("parscale: rips at %d workers: %w", w, err)
		}
		sres, err := best(w, par.Steal)
		if err != nil {
			return nil, fmt.Errorf("parscale: steal at %d workers: %w", w, err)
		}
		hres, err := best(w, par.Hybrid)
		if err != nil {
			return nil, fmt.Errorf("parscale: hybrid at %d workers: %w", w, err)
		}
		if i == 0 {
			ripsBase, stealBase, hybridBase = rres.Wall, sres.Wall, hres.Wall
			refResult, refTasks = rres.AppResult, rres.Generated
		}
		for _, chk := range []struct {
			strat string
			res   par.Result
		}{{"rips", rres}, {"steal", sres}, {"hybrid", hres}} {
			if chk.res.AppResult != refResult || chk.res.Generated != refTasks {
				return nil, fmt.Errorf("parscale: %s answer diverged at %d workers: result %d (want %d), tasks %d (want %d)",
					chk.strat, w, chk.res.AppResult, refResult, chk.res.Generated, refTasks)
			}
		}
		pts = append(pts, ParScalePoint{
			Workers:       w,
			RIPS:          rres,
			Steal:         sres,
			Hybrid:        hres,
			RIPSSpeedup:   metrics.WallSpeedup(ripsBase, rres.Wall),
			StealSpeedup:  metrics.WallSpeedup(stealBase, sres.Wall),
			HybridSpeedup: metrics.WallSpeedup(hybridBase, hres.Wall),
			RIPSEff:       metrics.WallEfficiency(rres.Busy, w, rres.Wall),
			StealEff:      metrics.WallEfficiency(sres.Busy, w, sres.Wall),
			HybridEff:     metrics.WallEfficiency(hres.Busy, w, hres.Wall),
		})
	}
	return pts, nil
}

// SystemPhaseJSON compares the stop-the-world system-phase cost of the
// serial leader-only plan application against the waved parallel apply
// (see DESIGN.md §9) at the same worker count, measured under the
// controlled skewed load of par.MeasureSystemPhase: each phase plans
// and applies a migration of Workers/2 * TasksPerWorker tasks. Each
// side is the minimum over reps measurements of the mean phase time.
type SystemPhaseJSON struct {
	Workers            int   `json:"workers"`
	TasksPerWorker     int   `json:"tasks_per_worker"`
	Phases             int   `json:"phases"`
	SerialNsPerPhase   int64 `json:"serial_ns_per_phase"`
	ParallelNsPerPhase int64 `json:"parallel_ns_per_phase"`
	ParallelWaves      int64 `json:"parallel_waves"`
}

// SystemPhaseCompare measures SystemPhaseJSON, keeping the fastest of
// reps measurements of phases phases per side.
func SystemPhaseCompare(workers, tasksPerWorker, phases, reps int) *SystemPhaseJSON {
	if reps < 1 {
		reps = 1
	}
	measure := func(serial bool) (time.Duration, int64) {
		var best time.Duration
		var waves int64
		for i := 0; i < reps; i++ {
			per, wv := par.MeasureSystemPhase(workers, tasksPerWorker, phases, serial)
			if i == 0 || per < best {
				best, waves = per, wv
			}
		}
		return best, waves
	}
	out := &SystemPhaseJSON{Workers: workers, TasksPerWorker: tasksPerWorker, Phases: phases}
	sPer, _ := measure(true)
	pPer, pWv := measure(false)
	out.SerialNsPerPhase = int64(sPer)
	out.ParallelNsPerPhase, out.ParallelWaves = int64(pPer), pWv
	return out
}

// ParScaleJSON is the machine-readable scaling trajectory written by
// `ripsbench parscale -json` (the BENCH_par.json artifact CI uploads):
// the whole curve plus the environment needed to read it honestly —
// Cores records the host's real parallelism, so a 16-worker point on a
// 1-core box is understood as oversubscribed goroutines, not hardware
// scaling.
type ParScaleJSON struct {
	Schema      string              `json:"schema"`
	App         string              `json:"app"`
	Cores       int                 `json:"cores"`
	GOOS        string              `json:"goos"`
	GOARCH      string              `json:"goarch"`
	Reps        int                 `json:"reps"`
	Points      []ParScalePointJSON `json:"points"`
	SystemPhase *SystemPhaseJSON    `json:"system_phase,omitempty"`
}

// ParScalePointJSON flattens one ParScalePoint to stable field names.
// The steal_cross_steals counter is the pure-steal run's steals that
// crossed a domain boundary (zero when the run saw a single domain) —
// the traffic the hybrid strategy confines. The hybrid_domain_* arrays
// are indexed by domain and expose where intra-domain work moved.
type ParScalePointJSON struct {
	Workers             int     `json:"workers"`
	RIPSWallNs          int64   `json:"rips_wall_ns"`
	RIPSOverheadNs      int64   `json:"rips_overhead_ns"`
	RIPSPhases          int64   `json:"rips_phases"`
	RIPSWaves           int64   `json:"rips_waves"`
	RIPSMigrated        int64   `json:"rips_migrated"`
	RIPSSpeedup         float64 `json:"rips_speedup"`
	RIPSEff             float64 `json:"rips_eff"`
	StealWallNs         int64   `json:"steal_wall_ns"`
	StealSteals         int64   `json:"steal_steals"`
	StealCrossSteals    int64   `json:"steal_cross_steals"`
	StealSpeedup        float64 `json:"steal_speedup"`
	StealEff            float64 `json:"steal_eff"`
	HybridWallNs        int64   `json:"hybrid_wall_ns"`
	HybridOverheadNs    int64   `json:"hybrid_overhead_ns"`
	HybridPhases        int64   `json:"hybrid_phases"`
	HybridWaves         int64   `json:"hybrid_waves"`
	HybridMigrated      int64   `json:"hybrid_migrated"`
	HybridSteals        int64   `json:"hybrid_steals"`
	HybridDomains       int     `json:"hybrid_domains"`
	HybridDomainSteals  []int64 `json:"hybrid_domain_steals,omitempty"`
	HybridDomainMigrate []int64 `json:"hybrid_domain_migrated,omitempty"`
	HybridSpeedup       float64 `json:"hybrid_speedup"`
	HybridEff           float64 `json:"hybrid_eff"`
}

// ParScaleJSONSchema names the current BENCH_par.json schema. v2 added
// the hybrid strategy columns and the domain-resolved steal counters.
const ParScaleJSONSchema = "rips-parscale/v2"

// WriteParScaleJSON emits the scaling curve (and the optional
// system-phase comparison) as indented JSON.
func WriteParScaleJSON(w io.Writer, a app.App, reps int, pts []ParScalePoint, sp *SystemPhaseJSON) error {
	doc := ParScaleJSON{
		Schema:      ParScaleJSONSchema,
		App:         a.Name(),
		Cores:       runtime.NumCPU(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Reps:        reps,
		SystemPhase: sp,
	}
	for _, p := range pts {
		doc.Points = append(doc.Points, ParScalePointJSON{
			Workers:             p.Workers,
			RIPSWallNs:          p.RIPS.Wall.Nanoseconds(),
			RIPSOverheadNs:      p.RIPS.Overhead.Nanoseconds(),
			RIPSPhases:          p.RIPS.Phases,
			RIPSWaves:           p.RIPS.Waves,
			RIPSMigrated:        p.RIPS.Migrated,
			RIPSSpeedup:         p.RIPSSpeedup,
			RIPSEff:             p.RIPSEff,
			StealWallNs:         p.Steal.Wall.Nanoseconds(),
			StealSteals:         p.Steal.Steals,
			StealCrossSteals:    p.Steal.CrossSteals,
			StealSpeedup:        p.StealSpeedup,
			StealEff:            p.StealEff,
			HybridWallNs:        p.Hybrid.Wall.Nanoseconds(),
			HybridOverheadNs:    p.Hybrid.Overhead.Nanoseconds(),
			HybridPhases:        p.Hybrid.Phases,
			HybridWaves:         p.Hybrid.Waves,
			HybridMigrated:      p.Hybrid.Migrated,
			HybridSteals:        p.Hybrid.Steals,
			HybridDomains:       p.Hybrid.Domains,
			HybridDomainSteals:  p.Hybrid.DomainSteals,
			HybridDomainMigrate: p.Hybrid.DomainMigrated,
			HybridSpeedup:       p.HybridSpeedup,
			HybridEff:           p.HybridEff,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&doc)
}

// PrintParScale renders the scaling curve, RIPS, work stealing and the
// hierarchical hybrid side by side. The hybrid dom column is the
// resolved domain count; its steals are intra-domain by construction.
func PrintParScale(w io.Writer, a app.App, pts []ParScalePoint) {
	fmt.Fprintf(w, "Real-parallel scaling: %s (wall-clock, min of reps; speedup vs each strategy's 1-worker run)\n", a.Name())
	fmt.Fprintf(w, "%3s | %10s %7s %5s %7s %8s | %10s %7s %5s %7s %6s | %10s %7s %5s %4s %7s %8s\n",
		"P", "rips wall", "speedup", "eff", "phases", "migrated",
		"steal wall", "speedup", "eff", "steals", "cross",
		"hyb wall", "speedup", "eff", "dom", "phases", "steals")
	for _, p := range pts {
		fmt.Fprintf(w, "%3d | %10v %6.2fx %4.0f%% %7d %8d | %10v %6.2fx %4.0f%% %7d %6d | %10v %6.2fx %4.0f%% %4d %7d %8d\n",
			p.Workers,
			p.RIPS.Wall.Round(time.Microsecond), p.RIPSSpeedup, 100*p.RIPSEff, p.RIPS.Phases, p.RIPS.Migrated,
			p.Steal.Wall.Round(time.Microsecond), p.StealSpeedup, 100*p.StealEff, p.Steal.Steals, p.Steal.CrossSteals,
			p.Hybrid.Wall.Round(time.Microsecond), p.HybridSpeedup, 100*p.HybridEff, p.Hybrid.Domains, p.Hybrid.Phases, p.Hybrid.Steals)
	}
	if n := len(pts); n > 0 {
		fmt.Fprintf(w, "answer check: app result %d, %d tasks, identical at every point and strategy\n",
			pts[n-1].RIPS.AppResult, pts[n-1].RIPS.Generated)
	}
}
