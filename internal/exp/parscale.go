package exp

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"rips/internal/app"
	"rips/internal/apps/gromos"
	"rips/internal/apps/nqueens"
	"rips/internal/apps/puzzle"
	"rips/internal/metrics"
	"rips/internal/par"
	"rips/internal/topo"
)

// ParScale is the real-parallel scaling experiment: the same workload
// runs on the internal/par backend at increasing worker counts, RIPS
// (ANY-Lazy over the walking-algorithm system phases) side by side
// with Chase-Lev work stealing, and the curve reports wall-clock
// speedup against each strategy's own one-worker run. This is the
// zero-simulation counterpart of Table III: the paper's claim that
// global incremental scheduling stays within a small factor of the
// best dynamic scheduler is re-tested on actual cores.

// ParScaleApp constructs a workload for the scaling experiment by
// family name, reproducing the Table I workload contrast on real
// cores: "nq" is highly parallel uniform search (size = board, 0 means
// 13), "ida" is irregular iterative deepening with wildly varying
// round sizes (size = paper configuration 1..3, 0 means 1), and
// "gromos" is the static near-uniform pair-list computation (size =
// cutoff radius in angstroms, 0 means 8). The three families stress
// the scheduler in the three ways the paper's taxonomy distinguishes,
// so their curves are directly comparable.
func ParScaleApp(family string, size int) (app.App, error) {
	switch family {
	case "nq":
		if size == 0 {
			size = 13
		}
		if size < 4 {
			return nil, fmt.Errorf("parscale: nq size %d (want a board of at least 4)", size)
		}
		return nqueens.New(size, 4), nil
	case "ida":
		if size == 0 {
			size = 1
		}
		if size < 1 || size > 3 {
			return nil, fmt.Errorf("parscale: ida size %d (want a paper configuration 1..3)", size)
		}
		return puzzle.Config(size), nil
	case "gromos":
		if size == 0 {
			size = 8
		}
		if size < 1 {
			return nil, fmt.Errorf("parscale: gromos size %d (want a positive cutoff in angstroms)", size)
		}
		return gromos.New(float64(size)), nil
	}
	return nil, fmt.Errorf("parscale: unknown app family %q (want nq, ida or gromos)", family)
}

// ParScalePoint is one worker count of the scaling curve.
type ParScalePoint struct {
	Workers     int
	RIPS, Steal par.Result
	// Speedups are against the strategy's own 1-worker wall time;
	// efficiencies are busy/(workers*wall).
	RIPSSpeedup, StealSpeedup float64
	RIPSEff, StealEff         float64
}

// ParScaleCounts returns the worker counts of the scaling curve:
// powers of two from 1 up to maxWorkers, plus maxWorkers itself.
func ParScaleCounts(maxWorkers int) []int {
	if maxWorkers < 1 {
		maxWorkers = 1
	}
	var counts []int
	for n := 1; n <= maxWorkers; n *= 2 {
		counts = append(counts, n)
	}
	if last := counts[len(counts)-1]; last != maxWorkers {
		counts = append(counts, maxWorkers)
	}
	return counts
}

// ParScale measures the scaling curve. Each point pins GOMAXPROCS to
// its worker count (restored afterwards) so a w-worker run really uses
// w cores, and keeps the fastest of reps runs to shed scheduling
// noise. The workload's answer (solution count, task totals) is
// verified identical across every point — a wrong answer fails the
// experiment rather than quietly shading a speedup.
func ParScale(a app.App, counts []int, reps int, detect time.Duration, seed int64) ([]ParScalePoint, error) {
	if reps < 1 {
		reps = 1
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	best := func(workers int, strat par.Strategy) (par.Result, error) {
		cfg := par.Config{
			Topo:           topo.SquarishMesh(workers),
			App:            a,
			Strategy:       strat,
			DetectInterval: detect,
			Seed:           seed,
		}
		var out par.Result
		for i := 0; i < reps; i++ {
			res, err := par.Run(cfg)
			if err != nil {
				return par.Result{}, err
			}
			if i == 0 || res.Wall < out.Wall {
				out = res
			}
		}
		return out, nil
	}

	var pts []ParScalePoint
	var ripsBase, stealBase time.Duration
	var refResult, refTasks int64
	for i, w := range counts {
		runtime.GOMAXPROCS(w)
		rres, err := best(w, par.RIPS)
		if err != nil {
			return nil, fmt.Errorf("parscale: rips at %d workers: %w", w, err)
		}
		sres, err := best(w, par.Steal)
		if err != nil {
			return nil, fmt.Errorf("parscale: steal at %d workers: %w", w, err)
		}
		if i == 0 {
			ripsBase, stealBase = rres.Wall, sres.Wall
			refResult, refTasks = rres.AppResult, rres.Generated
		}
		for _, chk := range []struct {
			strat string
			res   par.Result
		}{{"rips", rres}, {"steal", sres}} {
			if chk.res.AppResult != refResult || chk.res.Generated != refTasks {
				return nil, fmt.Errorf("parscale: %s answer diverged at %d workers: result %d (want %d), tasks %d (want %d)",
					chk.strat, w, chk.res.AppResult, refResult, chk.res.Generated, refTasks)
			}
		}
		pts = append(pts, ParScalePoint{
			Workers:      w,
			RIPS:         rres,
			Steal:        sres,
			RIPSSpeedup:  metrics.WallSpeedup(ripsBase, rres.Wall),
			StealSpeedup: metrics.WallSpeedup(stealBase, sres.Wall),
			RIPSEff:      metrics.WallEfficiency(rres.Busy, w, rres.Wall),
			StealEff:     metrics.WallEfficiency(sres.Busy, w, sres.Wall),
		})
	}
	return pts, nil
}

// PrintParScale renders the scaling curve, RIPS and work stealing side
// by side.
func PrintParScale(w io.Writer, a app.App, pts []ParScalePoint) {
	fmt.Fprintf(w, "Real-parallel scaling: %s (wall-clock, min of reps; speedup vs each strategy's 1-worker run)\n", a.Name())
	fmt.Fprintf(w, "%3s | %10s %7s %5s %7s %8s | %10s %7s %5s %7s\n",
		"P", "rips wall", "speedup", "eff", "phases", "migrated", "steal wall", "speedup", "eff", "steals")
	for _, p := range pts {
		fmt.Fprintf(w, "%3d | %10v %6.2fx %4.0f%% %7d %8d | %10v %6.2fx %4.0f%% %7d\n",
			p.Workers,
			p.RIPS.Wall.Round(time.Microsecond), p.RIPSSpeedup, 100*p.RIPSEff, p.RIPS.Phases, p.RIPS.Migrated,
			p.Steal.Wall.Round(time.Microsecond), p.StealSpeedup, 100*p.StealEff, p.Steal.Steals)
	}
	if n := len(pts); n > 0 {
		fmt.Fprintf(w, "answer check: app result %d, %d tasks, identical at every point\n",
			pts[n-1].RIPS.AppResult, pts[n-1].RIPS.Generated)
	}
}
