package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"
)

// The serve benchmark measures ripsd as a multi-tenant service: a load
// generator (ripsbench serve) submits a job mix across tenants and
// priority lanes at a target rate, polls every job to its terminal
// state, and this file turns the observed samples into the committed
// BENCH_serve.json artifact — per-lane throughput and latency
// percentiles, plus the server's own preemption and cache counters.
// The assembly lives here (not in internal/serve) so the report schema
// has no dependency on the server implementation: the generator feeds
// it plain observations.

// ServeBenchSchema names the current BENCH_serve.json schema.
const ServeBenchSchema = "rips-serve/v1"

// ServeSample is one observed job: which lane it ran in, how long from
// submission to terminal state, and how it ended.
type ServeSample struct {
	Tenant   string
	Lane     string // "low", "normal", "high"
	State    string // "done", "failed", "canceled"
	CacheHit bool
	Latency  time.Duration
}

// ServeLaneJSON is one priority lane's aggregate in BENCH_serve.json.
// Percentiles use the nearest-rank method over completed jobs;
// throughput is that lane's completions over the whole run window.
type ServeLaneJSON struct {
	Lane       string  `json:"lane"`
	Jobs       int     `json:"jobs"`
	Done       int     `json:"done"`
	CacheHits  int     `json:"cache_hits"`
	Throughput float64 `json:"throughput_jobs_per_sec"`
	P50Ns      int64   `json:"p50_ns"`
	P95Ns      int64   `json:"p95_ns"`
	P99Ns      int64   `json:"p99_ns"`
}

// ServeBenchJSON is the BENCH_serve.json document: the load shape, the
// environment, per-lane results, and the server counters that prove
// the multi-tenant machinery engaged (preemptions, requeues, cache
// traffic).
type ServeBenchJSON struct {
	Schema      string          `json:"schema"`
	Cores       int             `json:"cores"`
	GOOS        string          `json:"goos"`
	GOARCH      string          `json:"goarch"`
	Workers     int             `json:"workers"`
	Clients     int             `json:"clients"`
	Tenants     int             `json:"tenants"`
	QPS         float64         `json:"qps"` // 0 means closed-loop (as fast as the clients drain)
	Mix         string          `json:"mix"`
	Jobs        int             `json:"jobs"`
	Done        int             `json:"done"`
	Failed      int             `json:"failed"`
	ElapsedNs   int64           `json:"elapsed_ns"`
	Throughput  float64         `json:"throughput_jobs_per_sec"`
	Lanes       []ServeLaneJSON `json:"lanes"`
	Preemptions int64           `json:"preemptions"`
	Requeues    int64           `json:"requeues"`
	Rejects     int64           `json:"rejects"`
	CacheHits   int64           `json:"cache_hits"`
	CacheMisses int64           `json:"cache_misses"`
	CacheRate   float64         `json:"cache_hit_rate"`
}

// ServeCounters carries the server-side /v1/stats totals into the
// report; the generator reads them once after the run.
type ServeCounters struct {
	Preemptions, Requeues, Rejects int64
	CacheHits, CacheMisses         int64
}

// percentileNs returns the nearest-rank p-th percentile of sorted
// latencies (p in (0,100]).
func percentileNs(sorted []time.Duration, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(float64(len(sorted))*p/100+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank].Nanoseconds()
}

// ServeBenchReport assembles the samples into the BENCH_serve.json
// document. Lane order is low, normal, high; lanes with no samples are
// omitted. elapsed is the whole run window (first submission to last
// terminal observation) and is the denominator of every throughput.
func ServeBenchReport(samples []ServeSample, elapsed time.Duration, c ServeCounters) ServeBenchJSON {
	doc := ServeBenchJSON{
		Schema:      ServeBenchSchema,
		Cores:       runtime.NumCPU(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Jobs:        len(samples),
		ElapsedNs:   elapsed.Nanoseconds(),
		Preemptions: c.Preemptions,
		Requeues:    c.Requeues,
		Rejects:     c.Rejects,
		CacheHits:   c.CacheHits,
		CacheMisses: c.CacheMisses,
	}
	if lookups := c.CacheHits + c.CacheMisses; lookups > 0 {
		doc.CacheRate = float64(c.CacheHits) / float64(lookups)
	}
	secs := elapsed.Seconds()
	byLane := map[string][]ServeSample{}
	for _, s := range samples {
		byLane[s.Lane] = append(byLane[s.Lane], s)
		if s.State == "done" {
			doc.Done++
		} else {
			doc.Failed++
		}
	}
	if secs > 0 {
		doc.Throughput = float64(doc.Done) / secs
	}
	for _, lane := range []string{"low", "normal", "high"} {
		ss := byLane[lane]
		if len(ss) == 0 {
			continue
		}
		lj := ServeLaneJSON{Lane: lane, Jobs: len(ss)}
		var lat []time.Duration
		for _, s := range ss {
			if s.State != "done" {
				continue
			}
			lj.Done++
			if s.CacheHit {
				lj.CacheHits++
			}
			lat = append(lat, s.Latency)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		lj.P50Ns = percentileNs(lat, 50)
		lj.P95Ns = percentileNs(lat, 95)
		lj.P99Ns = percentileNs(lat, 99)
		if secs > 0 {
			lj.Throughput = float64(lj.Done) / secs
		}
		doc.Lanes = append(doc.Lanes, lj)
	}
	return doc
}

// WriteServeBench emits the document as indented JSON.
func WriteServeBench(w io.Writer, doc ServeBenchJSON) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&doc)
}

// PrintServeBench renders the human-readable summary.
func PrintServeBench(w io.Writer, doc ServeBenchJSON) {
	fmt.Fprintf(w, "Multi-tenant serve benchmark: %d jobs over %d tenants, %d clients, %d workers (mix %s)\n",
		doc.Jobs, doc.Tenants, doc.Clients, doc.Workers, doc.Mix)
	fmt.Fprintf(w, "%6s | %5s %5s %6s %9s | %10s %10s %10s\n",
		"lane", "jobs", "done", "cache", "jobs/s", "p50", "p95", "p99")
	for _, l := range doc.Lanes {
		fmt.Fprintf(w, "%6s | %5d %5d %6d %9.2f | %10v %10v %10v\n",
			l.Lane, l.Jobs, l.Done, l.CacheHits, l.Throughput,
			time.Duration(l.P50Ns).Round(time.Microsecond),
			time.Duration(l.P95Ns).Round(time.Microsecond),
			time.Duration(l.P99Ns).Round(time.Microsecond))
	}
	fmt.Fprintf(w, "total: %.2f jobs/s over %v; preemptions=%d requeues=%d rejects=%d cache=%.0f%% (%d/%d)\n",
		doc.Throughput, time.Duration(doc.ElapsedNs).Round(time.Millisecond),
		doc.Preemptions, doc.Requeues, doc.Rejects,
		100*doc.CacheRate, doc.CacheHits, doc.CacheHits+doc.CacheMisses)
}
