// Package exp is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (Section 4) — Figure 4's
// MWA-vs-optimal communication costs, Table I's scheduler comparison,
// Table II's optimal efficiencies, Figure 5's normalized quality
// factors, and Table III's speedups — plus the ANY/ALL x eager/lazy
// policy ablation the paper cites from its companion work [24].
package exp

import (
	"fmt"

	"rips/internal/app"
	"rips/internal/apps/gromos"
	"rips/internal/apps/nqueens"
	"rips/internal/apps/puzzle"
	"rips/internal/dynsched"
	"rips/internal/metrics"
	"rips/internal/ripsrt"
	"rips/internal/topo"
)

// Scheduler identifies a Table I scheduling algorithm.
type Scheduler int

const (
	SchedRandom Scheduler = iota
	SchedGradient
	SchedRID
	SchedRIPS
)

// Schedulers lists the Table I comparison set in paper order.
func Schedulers() []Scheduler {
	return []Scheduler{SchedRandom, SchedGradient, SchedRID, SchedRIPS}
}

func (s Scheduler) String() string {
	switch s {
	case SchedRandom:
		return "random"
	case SchedGradient:
		return "gradient"
	case SchedRID:
		return "rid"
	case SchedRIPS:
		return "rips"
	}
	return fmt.Sprintf("scheduler(%d)", int(s))
}

// Workload bundles an application with its sequential profile and the
// workload-specific RID tuning the paper reports.
type Workload struct {
	App     app.App
	Profile app.Profile
	// RIDU is the RID load-update factor (paper: 0.4; 0.7 for IDA* on
	// large machines).
	RIDU float64
}

// NewWorkload profiles an app once (the profile is reused by Table I,
// Table II and Figure 5).
func NewWorkload(a app.App, ridU float64) Workload {
	return Workload{App: a, Profile: app.Measure(a), RIDU: ridU}
}

// PaperWorkloads returns the nine Table I workloads at paper scale:
// 13/14/15-Queens, the three IDA* configurations, and GROMOS at 8, 12
// and 16 Angstrom. Expect a few seconds of profiling.
func PaperWorkloads() []Workload {
	var ws []Workload
	for _, n := range []int{13, 14, 15} {
		ws = append(ws, NewWorkload(nqueens.New(n, 4), 0.4))
	}
	for _, a := range puzzle.Configs() {
		ws = append(ws, NewWorkload(a, 0.4))
	}
	for _, a := range gromos.Configs() {
		ws = append(ws, NewWorkload(a, 0.4))
	}
	return ws
}

// QuickWorkloads returns a reduced set with the same mix of shapes
// (irregular search, iterative search, static nonuniform) for tests
// and benchmarks.
func QuickWorkloads() []Workload {
	return []Workload{
		NewWorkload(nqueens.New(11, 3), 0.4),
		NewWorkload(puzzle.New("15-puzzle mini", puzzle.Scramble(4, 30, 5), 6), 0.4),
		NewWorkload(gromos.New(8), 0.4),
	}
}

// RunOne executes one workload under one scheduler on the given mesh
// and fills a Table I row.
func RunOne(w Workload, mesh *topo.Mesh, s Scheduler, seed int64) (metrics.Row, error) {
	row := metrics.Row{
		App:     w.App.Name(),
		Sched:   s.String(),
		SeqTime: w.Profile.Work,
	}
	switch s {
	case SchedRIPS:
		res, err := ripsrt.Run(ripsrt.Config{
			Mesh:   mesh,
			App:    w.App,
			Local:  ripsrt.Lazy,
			Global: ripsrt.Any,
			Seed:   seed,
		})
		if err != nil {
			return row, err
		}
		row.Tasks = res.Generated
		row.Nonlocal = res.Nonlocal
		row.Overhead = res.Overhead
		row.Idle = res.Idle
		row.Time = res.Time
		row.Phases = res.Phases
		row.Migrated = res.Migrated
	default:
		var strat func() dynsched.Strategy
		switch s {
		case SchedRandom:
			strat = dynsched.NewRandom()
		case SchedGradient:
			strat = dynsched.NewGradient()
		case SchedRID:
			p := dynsched.DefaultRIDParams()
			if w.RIDU > 0 {
				p.U = w.RIDU
			}
			strat = dynsched.NewRID(p)
		default:
			return row, fmt.Errorf("exp: unknown scheduler %v", s)
		}
		res, err := dynsched.Run(dynsched.Config{
			Topo:     mesh,
			App:      w.App,
			Strategy: strat,
			Seed:     seed,
		})
		if err != nil {
			return row, err
		}
		row.Tasks = res.Generated
		row.Nonlocal = res.Nonlocal
		row.Overhead = res.Overhead
		row.Idle = res.Idle
		row.Time = res.Time
		row.Migrated = res.Migrated
	}
	row.Eff = metrics.Efficiency(w.Profile.Work, mesh.Size(), row.Time)
	return row, nil
}
