package exp

import (
	"fmt"
	"math"
	"testing"

	"rips/internal/cluster"
)

// TestClusterBenchMem runs the calibration end to end on the in-memory
// transport: real frames, real peer echo handling, no sockets.
func TestClusterBenchMem(t *testing.T) {
	doc, err := ClusterBench(ClusterBenchOptions{
		Nodes:         2,
		Reps:          4,
		Sizes:         []int{0, 1 << 10, 16 << 10},
		Transport:     cluster.NewMemTransport(),
		TransportName: "mem",
		Addr:          func(i int) string { return fmt.Sprintf("mem://cb%d", i) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != ClusterBenchSchema {
		t.Errorf("schema = %q, want %q", doc.Schema, ClusterBenchSchema)
	}
	if doc.Transport != "mem" || doc.Nodes != 2 || doc.Reps != 4 {
		t.Errorf("provenance wrong: %+v", doc)
	}
	if len(doc.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(doc.Points))
	}
	for _, p := range doc.Points {
		if p.BestRTTNs <= 0 {
			t.Errorf("%d bytes: best RTT %d not positive", p.Bytes, p.BestRTTNs)
		}
	}
	if doc.AlphaNs <= 0 {
		t.Errorf("fitted alpha %v not positive", doc.AlphaNs)
	}
	if doc.ModelAlphaNs != 110_000 || doc.ModelBetaNsPerByte != 100 {
		t.Errorf("model constants = (%v, %v), want (110000, 100)", doc.ModelAlphaNs, doc.ModelBetaNsPerByte)
	}
}

// TestFitLine pins the least-squares fit on exact lines and the
// degenerate single-point case.
func TestFitLine(t *testing.T) {
	pts := []ClusterPointJSON{}
	for _, x := range []int{0, 100, 1000, 5000} {
		pts = append(pts, ClusterPointJSON{Bytes: x, BestRTTNs: 700 + 3*int64(x)})
	}
	a, b := fitLine(pts)
	if math.Abs(a-700) > 1e-6 || math.Abs(b-3) > 1e-9 {
		t.Errorf("fitLine = (%v, %v), want (700, 3)", a, b)
	}
	a, b = fitLine([]ClusterPointJSON{{Bytes: 64, BestRTTNs: 42}})
	if a != 42 || b != 0 {
		t.Errorf("single-point fit = (%v, %v), want (42, 0)", a, b)
	}
}
