package exp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestPercentileNearestRank(t *testing.T) {
	lat := make([]time.Duration, 100)
	for i := range lat {
		lat[i] = time.Duration(i+1) * time.Millisecond
	}
	for _, tc := range []struct {
		p    float64
		want time.Duration
	}{
		{50, 50 * time.Millisecond},
		{95, 95 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{100, 100 * time.Millisecond},
	} {
		if got := percentileNs(lat, tc.p); got != tc.want.Nanoseconds() {
			t.Errorf("p%.0f = %dns, want %v", tc.p, got, tc.want)
		}
	}
	if got := percentileNs(nil, 50); got != 0 {
		t.Errorf("p50 of empty = %d, want 0", got)
	}
	one := []time.Duration{7 * time.Millisecond}
	if got := percentileNs(one, 99); got != one[0].Nanoseconds() {
		t.Errorf("p99 of singleton = %d, want %d", got, one[0].Nanoseconds())
	}
}

func TestServeBenchReport(t *testing.T) {
	samples := []ServeSample{
		{Tenant: "a", Lane: "normal", State: "done", Latency: 10 * time.Millisecond},
		{Tenant: "a", Lane: "normal", State: "done", CacheHit: true, Latency: time.Millisecond},
		{Tenant: "b", Lane: "high", State: "done", Latency: 5 * time.Millisecond},
		{Tenant: "b", Lane: "low", State: "failed", Latency: 20 * time.Millisecond},
		{Tenant: "c", Lane: "low", State: "done", Latency: 40 * time.Millisecond},
	}
	doc := ServeBenchReport(samples, 2*time.Second, ServeCounters{
		Preemptions: 1, Requeues: 1, CacheHits: 1, CacheMisses: 4,
	})

	if doc.Schema != ServeBenchSchema {
		t.Errorf("schema %q", doc.Schema)
	}
	if doc.Jobs != 5 || doc.Done != 4 || doc.Failed != 1 {
		t.Errorf("jobs=%d done=%d failed=%d", doc.Jobs, doc.Done, doc.Failed)
	}
	if doc.Throughput != 2.0 {
		t.Errorf("throughput %v, want 2.0 (4 done over 2s)", doc.Throughput)
	}
	if doc.CacheRate != 0.2 {
		t.Errorf("cache rate %v, want 0.2", doc.CacheRate)
	}

	// Lane order low, normal, high; failed jobs count toward Jobs but
	// not Done or the percentiles.
	if len(doc.Lanes) != 3 {
		t.Fatalf("lanes %+v", doc.Lanes)
	}
	if doc.Lanes[0].Lane != "low" || doc.Lanes[1].Lane != "normal" || doc.Lanes[2].Lane != "high" {
		t.Errorf("lane order %q %q %q", doc.Lanes[0].Lane, doc.Lanes[1].Lane, doc.Lanes[2].Lane)
	}
	low := doc.Lanes[0]
	if low.Jobs != 2 || low.Done != 1 || low.P99Ns != (40*time.Millisecond).Nanoseconds() {
		t.Errorf("low lane %+v", low)
	}
	normal := doc.Lanes[1]
	if normal.CacheHits != 1 || normal.Done != 2 {
		t.Errorf("normal lane %+v", normal)
	}
	if normal.P50Ns != time.Millisecond.Nanoseconds() {
		t.Errorf("normal p50 %d, want 1ms (cached job is the fast half)", normal.P50Ns)
	}

	// The document round-trips and carries the lane blocks.
	var buf bytes.Buffer
	if err := WriteServeBench(&buf, doc); err != nil {
		t.Fatal(err)
	}
	var back ServeBenchJSON
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != ServeBenchSchema || len(back.Lanes) != 3 || back.Preemptions != 1 {
		t.Errorf("round-trip %+v", back)
	}

	var out strings.Builder
	PrintServeBench(&out, doc)
	for _, want := range []string{"low", "normal", "high", "preemptions=1"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("printed summary missing %q:\n%s", want, out.String())
		}
	}
}

func TestServeBenchReportEmpty(t *testing.T) {
	doc := ServeBenchReport(nil, 0, ServeCounters{})
	if doc.Jobs != 0 || doc.Throughput != 0 || len(doc.Lanes) != 0 || doc.CacheRate != 0 {
		t.Errorf("empty report %+v", doc)
	}
}
