package exp

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

// The committed BENCH artifacts are API: downstream trend tooling (and
// the nightly CI jobs) decode them through these Go types, so a field
// rename or schema drift must fail a test in this repo, not a dashboard
// somewhere. These golden tests decode the artifacts committed at the
// repo root with DisallowUnknownFields off in one direction only: every
// field the Go types declare must be decodable from the committed
// bytes, and the bytes must not carry fields the types have dropped.

// decodeStrict decodes JSON refusing unknown fields, so committed
// artifacts and the Go schema types cannot drift apart silently.
func decodeStrict(t *testing.T, path string, v any) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading committed artifact: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		t.Fatalf("%s does not decode through the Go schema types: %v", path, err)
	}
}

func TestBenchParArtifactSchema(t *testing.T) {
	var doc ParScaleJSON
	decodeStrict(t, "../../BENCH_par.json", &doc)
	if doc.Schema != ParScaleJSONSchema {
		t.Fatalf("schema = %q, want %q", doc.Schema, ParScaleJSONSchema)
	}
	if doc.App == "" || doc.Cores < 1 || doc.Reps < 1 {
		t.Errorf("missing run provenance: app=%q cores=%d reps=%d", doc.App, doc.Cores, doc.Reps)
	}
	if len(doc.Points) == 0 {
		t.Fatal("artifact has no scaling points")
	}
	for _, p := range doc.Points {
		if p.Workers < 1 {
			t.Errorf("point with %d workers", p.Workers)
		}
		if p.RIPSWallNs <= 0 || p.StealWallNs <= 0 || p.HybridWallNs <= 0 {
			t.Errorf("workers=%d: non-positive wall times rips=%d steal=%d hybrid=%d",
				p.Workers, p.RIPSWallNs, p.StealWallNs, p.HybridWallNs)
		}
		if p.RIPSSpeedup <= 0 || p.StealSpeedup <= 0 || p.HybridSpeedup <= 0 {
			t.Errorf("workers=%d: non-positive speedups", p.Workers)
		}
		if p.HybridDomains < 1 || p.HybridDomains > p.Workers {
			t.Errorf("workers=%d: hybrid resolved %d domains", p.Workers, p.HybridDomains)
		}
		if n := len(p.HybridDomainSteals); n != 0 && n != p.HybridDomains {
			t.Errorf("workers=%d: %d per-domain steal counters for %d domains", p.Workers, n, p.HybridDomains)
		}
		if n := len(p.HybridDomainMigrate); n != 0 && n != p.HybridDomains {
			t.Errorf("workers=%d: %d per-domain migration counters for %d domains", p.Workers, n, p.HybridDomains)
		}
		if p.StealCrossSteals > p.StealSteals {
			t.Errorf("workers=%d: cross-domain steals %d exceed total steals %d",
				p.Workers, p.StealCrossSteals, p.StealSteals)
		}
	}
	// The headline claim of the hierarchical backend: at the top of the
	// sweep the hybrid is no slower than the better pure strategy.
	last := doc.Points[len(doc.Points)-1]
	if best := min(last.RIPSWallNs, last.StealWallNs); last.HybridWallNs > best {
		t.Errorf("at %d workers hybrid wall %d exceeds best pure wall %d",
			last.Workers, last.HybridWallNs, best)
	}
	if sp := doc.SystemPhase; sp != nil {
		if sp.SerialNsPerPhase <= 0 || sp.ParallelNsPerPhase <= 0 {
			t.Errorf("system-phase comparison has non-positive per-phase times: %+v", sp)
		}
	}
}

func TestBenchServeArtifactSchema(t *testing.T) {
	var doc ServeBenchJSON
	decodeStrict(t, "../../BENCH_serve.json", &doc)
	if doc.Schema != ServeBenchSchema {
		t.Fatalf("schema = %q, want %q", doc.Schema, ServeBenchSchema)
	}
	if doc.Workers < 1 || doc.Tenants < 1 || doc.Jobs < 1 {
		t.Errorf("missing run shape: workers=%d tenants=%d jobs=%d", doc.Workers, doc.Tenants, doc.Jobs)
	}
	if doc.Done+doc.Failed > doc.Jobs {
		t.Errorf("done %d + failed %d exceeds submitted %d", doc.Done, doc.Failed, doc.Jobs)
	}
	if len(doc.Lanes) == 0 {
		t.Fatal("artifact has no per-lane rows")
	}
	var laneDone int
	for _, l := range doc.Lanes {
		if l.Lane == "" {
			t.Error("lane row without a lane name")
		}
		// Latency percentiles must be ordered; equality is fine (few
		// samples collapse the tail onto the median).
		if !(l.P50Ns <= l.P95Ns && l.P95Ns <= l.P99Ns) {
			t.Errorf("lane %s: percentiles out of order p50=%d p95=%d p99=%d", l.Lane, l.P50Ns, l.P95Ns, l.P99Ns)
		}
		if l.Done > l.Jobs {
			t.Errorf("lane %s: done %d > jobs %d", l.Lane, l.Done, l.Jobs)
		}
		laneDone += l.Done
	}
	if laneDone != doc.Done {
		t.Errorf("lane done totals %d, document says %d", laneDone, doc.Done)
	}
	if doc.CacheHits+doc.CacheMisses > 0 && (doc.CacheRate < 0 || doc.CacheRate > 1) {
		t.Errorf("cache hit rate %v outside [0,1]", doc.CacheRate)
	}
}

func TestBenchClusterArtifactSchema(t *testing.T) {
	var doc ClusterBenchJSON
	decodeStrict(t, "../../BENCH_cluster.json", &doc)
	if doc.Schema != ClusterBenchSchema {
		t.Fatalf("schema = %q, want %q", doc.Schema, ClusterBenchSchema)
	}
	if doc.Nodes < 2 || doc.Reps < 1 || doc.Transport == "" {
		t.Errorf("missing run provenance: nodes=%d reps=%d transport=%q", doc.Nodes, doc.Reps, doc.Transport)
	}
	if len(doc.Points) < 2 {
		t.Fatalf("artifact has %d calibration points, want >= 2 for a line fit", len(doc.Points))
	}
	prev := -1
	for _, p := range doc.Points {
		if p.Bytes <= prev {
			t.Errorf("payload ladder not strictly increasing at %d bytes", p.Bytes)
		}
		prev = p.Bytes
		if p.BestRTTNs <= 0 {
			t.Errorf("%d bytes: non-positive best RTT %d", p.Bytes, p.BestRTTNs)
		}
	}
	if doc.AlphaNs <= 0 {
		t.Errorf("fitted alpha %v ns is not positive", doc.AlphaNs)
	}
	if doc.BetaNsPerByte < 0 {
		t.Errorf("fitted beta %v ns/byte is negative", doc.BetaNsPerByte)
	}
	// The modelled constants are pinned by sim.DefaultLatency; the
	// artifact must carry the model it was compared against.
	if doc.ModelAlphaNs <= 0 || doc.ModelBetaNsPerByte <= 0 {
		t.Errorf("model constants missing: alpha=%v beta=%v", doc.ModelAlphaNs, doc.ModelBetaNsPerByte)
	}
}
