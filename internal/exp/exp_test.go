package exp

import (
	"bytes"
	"strings"
	"testing"

	"rips/internal/app"
	"rips/internal/apps/kernels"
	"rips/internal/apps/nqueens"
	"rips/internal/sim"
	"rips/internal/topo"
)

func TestFig4ShapeAndMonotonicity(t *testing.T) {
	pts := Fig4([]int{8, 64}, []int{5, 50}, 15, 1)
	if len(pts) != 4 {
		t.Fatalf("%d points", len(pts))
	}
	byKey := map[[2]int]float64{}
	for _, p := range pts {
		if p.Normalized < 0 {
			t.Errorf("procs=%d w=%d: negative normalized cost %f (MWA beat 'optimal')", p.Procs, p.Weight, p.Normalized)
		}
		byKey[[2]int{p.Procs, p.Weight}] = p.Normalized
	}
	// Paper Figure 4: small meshes are near-optimal; cost grows with
	// machine size.
	if byKey[[2]int{8, 50}] > 0.10 {
		t.Errorf("8 procs, w=50: %f, want <= 0.10", byKey[[2]int{8, 50}])
	}
	if byKey[[2]int{64, 5}] <= byKey[[2]int{8, 5}] {
		t.Errorf("normalized cost did not grow with machine size: 64p %f vs 8p %f",
			byKey[[2]int{64, 5}], byKey[[2]int{8, 5}])
	}
}

func TestPrintFig4(t *testing.T) {
	var buf bytes.Buffer
	PrintFig4(&buf, Fig4([]int{8}, []int{2, 10}, 3, 1))
	out := buf.String()
	if !strings.Contains(out, "Figure 4") || !strings.Contains(out, "w=10") {
		t.Errorf("output:\n%s", out)
	}
}

func TestTable1QuickShape(t *testing.T) {
	ws := []Workload{NewWorkload(nqueens.New(11, 3), 0.4)}
	mesh := topo.NewMesh(4, 4)
	rows, err := Table1(ws, mesh, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	var ripsRow, randRow *rowRef
	for i := range rows {
		switch rows[i].Sched {
		case "rips":
			ripsRow = &rowRef{i}
		case "random":
			randRow = &rowRef{i}
		}
		if rows[i].Eff <= 0 || rows[i].Eff > 1 {
			t.Errorf("row %d: efficiency %f", i, rows[i].Eff)
		}
		if rows[i].Tasks != rows[0].Tasks {
			t.Errorf("task counts differ across schedulers: %d vs %d", rows[i].Tasks, rows[0].Tasks)
		}
	}
	if ripsRow == nil || randRow == nil {
		t.Fatal("missing schedulers")
	}
	if rows[ripsRow.i].Nonlocal >= rows[randRow.i].Nonlocal {
		t.Errorf("rips nonlocal %d >= random %d", rows[ripsRow.i].Nonlocal, rows[randRow.i].Nonlocal)
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "11-queens") {
		t.Error("render missing workload name")
	}
}

type rowRef struct{ i int }

func TestTable2AndFig5(t *testing.T) {
	ws := []Workload{NewWorkload(nqueens.New(10, 3), 0.4)}
	opt := Table2(ws, 16)
	if v := opt["10-queens"]; v <= 0 || v > 1 {
		t.Fatalf("optimal efficiency %f", v)
	}
	rows, err := Table1(ws, topo.NewMesh(4, 4), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	pts := Fig5(rows, opt)
	for _, p := range pts {
		if p.Sched == "random" && (p.Quality < 0.999 || p.Quality > 1.001) {
			t.Errorf("random quality = %f, want 1.0", p.Quality)
		}
	}
	var buf bytes.Buffer
	PrintFig5(&buf, pts)
	PrintTable2(&buf, ws, 16)
	if !strings.Contains(buf.String(), "Table II") {
		t.Error("render missing Table II")
	}
}

func TestTable3SpeedupGrowsWithProcs(t *testing.T) {
	ws := []Workload{NewWorkload(nqueens.New(11, 3), 0.4)}
	rows, err := Table3(ws, []int{8, 32}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sp := map[[2]string]map[int]float64{}
	for _, r := range rows {
		k := [2]string{r.App, r.Sched}
		if sp[k] == nil {
			sp[k] = map[int]float64{}
		}
		sp[k][r.Procs] = r.Speedup
	}
	// RIPS and random must scale up (paper Table III's headline).
	for _, s := range []string{"rips", "random"} {
		k := [2]string{"11-queens", s}
		if sp[k][32] <= sp[k][8] {
			t.Errorf("%s: speedup 32p %.1f <= 8p %.1f", s, sp[k][32], sp[k][8])
		}
	}
	var buf bytes.Buffer
	PrintTable3(&buf, rows)
	if !strings.Contains(buf.String(), "Table III") {
		t.Error("render missing")
	}
}

func TestAblationRunsAllPolicies(t *testing.T) {
	w := NewWorkload(nqueens.New(10, 3), 0.4)
	rows, err := Ablation(w, topo.NewMesh(4, 2), 2*sim.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d ablation rows", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Policy] = true
		if r.Eff <= 0 {
			t.Errorf("%s: efficiency %f", r.Policy, r.Eff)
		}
	}
	for _, want := range []string{"any-lazy", "any-eager", "all-lazy", "all-eager", "any-lazy periodic", "any-lazy eureka"} {
		if !names[want] {
			t.Errorf("missing policy %q", want)
		}
	}
	var buf bytes.Buffer
	PrintAblation(&buf, rows)
	if !strings.Contains(buf.String(), "any-lazy") {
		t.Error("render missing")
	}
}

func TestQuickWorkloads(t *testing.T) {
	ws := QuickWorkloads()
	if len(ws) != 3 {
		t.Fatalf("%d quick workloads", len(ws))
	}
	for _, w := range ws {
		if w.Profile.Tasks == 0 || w.Profile.Work <= 0 {
			t.Errorf("%s: empty profile", w.App.Name())
		}
	}
}

func TestSchedulerStrings(t *testing.T) {
	if len(Schedulers()) != 4 {
		t.Error("scheduler set changed")
	}
	if SchedRIPS.String() != "rips" || Scheduler(9).String() == "" {
		t.Error("bad scheduler names")
	}
}

func TestTopologiesComparison(t *testing.T) {
	w := NewWorkload(nqueens.New(10, 3), 0.4)
	rows, err := Topologies(w, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Eff <= 0 || r.Eff > 1 {
			t.Errorf("%s: efficiency %f", r.Topology, r.Eff)
		}
		if r.Phases < 1 {
			t.Errorf("%s: phases %d", r.Topology, r.Phases)
		}
	}
	var buf bytes.Buffer
	PrintTopologies(&buf, rows)
	if !strings.Contains(buf.String(), "hypercube-cwa") {
		t.Error("render missing")
	}
	if _, err := Topologies(w, 12, 1); err == nil {
		t.Error("non-power-of-two size accepted")
	}
}

func TestTaxonomy(t *testing.T) {
	// A compact taxonomy set: one static kernel, one dynamic search.
	gauss := kernels.NewGauss(64, 2)
	queens := nqueens.New(10, 3)
	ws := []TaxonomyWorkload{
		{App: gauss, Profile: app.Measure(gauss), Class: "static"},
		{App: queens, Profile: app.Measure(queens), Class: "dynamic"},
	}
	rows, err := Taxonomy(ws, topo.NewMesh(4, 4), 1)
	if err != nil {
		t.Fatal(err)
	}
	eff := map[[2]string]float64{}
	for _, r := range rows {
		eff[[2]string{r.App, r.Sched}] = r.Eff
	}
	// The paper's Section 1 claim, in relative terms: on a static
	// problem the compile-time distribution already matches the
	// runtime scheduler...
	if eff[[2]string{gauss.Name(), "static"}] < 0.7*eff[[2]string{gauss.Name(), "rips"}] {
		t.Errorf("static scheduling on gauss = %.2f vs rips %.2f — should be comparable",
			eff[[2]string{gauss.Name(), "static"}], eff[[2]string{gauss.Name(), "rips"}])
	}
	// ...while on a dynamic problem it collapses (everything sits on
	// node 0) and RIPS recovers the difference.
	if eff[[2]string{queens.Name(), "rips"}] < 3*eff[[2]string{queens.Name(), "static"}] {
		t.Errorf("rips %.2f vs static %.2f on queens — expected a collapse for static",
			eff[[2]string{queens.Name(), "rips"}], eff[[2]string{queens.Name(), "static"}])
	}
	var buf bytes.Buffer
	PrintTaxonomy(&buf, rows)
	if !strings.Contains(buf.String(), "taxonomy") {
		t.Error("render missing")
	}
}
