package exp

import (
	"fmt"
	"runtime"

	"rips/internal/cluster"
	"rips/internal/sim"
)

// The cluster benchmark calibrates the distributed transport against
// the simulator's cost model. The paper prices a message as
// alpha + beta*size (startup plus per-byte transmission); the
// simulator's sim.DefaultLatency encodes the mid-90s Paragon numbers.
// This experiment measures the same two constants for the rips-wire/v1
// transport ripsd clusters actually run on — echo round-trips at a
// ladder of payload sizes, best-of-reps to shed scheduler noise, and a
// least-squares line through the points — and commits both the
// measured and the modelled constants side by side in
// BENCH_cluster.json, so the artifact records how far a localhost (or
// in-memory) deployment sits from the machine the paper assumed.

// ClusterBenchSchema names the current BENCH_cluster.json schema.
const ClusterBenchSchema = "rips-cluster/v1"

// ClusterPointJSON is one calibration point: an echo payload size and
// the best (minimum) round-trip time observed at it.
type ClusterPointJSON struct {
	Bytes     int   `json:"bytes"`
	BestRTTNs int64 `json:"best_rtt_ns"`
}

// ClusterBenchJSON is the BENCH_cluster.json document: the
// environment, the calibration points, and the fitted one-way message
// cost alpha + beta*size next to the simulator's modelled constants.
type ClusterBenchJSON struct {
	Schema    string             `json:"schema"`
	GOOS      string             `json:"goos"`
	GOARCH    string             `json:"goarch"`
	Cores     int                `json:"cores"`
	Transport string             `json:"transport"`
	Nodes     int                `json:"nodes"`
	Reps      int                `json:"reps"`
	Points    []ClusterPointJSON `json:"points"`
	// AlphaNs and BetaNsPerByte are the least-squares fit of one-way
	// message cost over the points (half the round-trip line: an echo
	// crosses the wire twice).
	AlphaNs       float64 `json:"alpha_ns"`
	BetaNsPerByte float64 `json:"beta_ns_per_byte"`
	// ModelAlphaNs and ModelBetaNsPerByte are the simulator's
	// constants for the same quantities: per-message startup
	// (Base + SendOverhead + RecvOverhead) and per-byte transmission.
	ModelAlphaNs       float64 `json:"model_alpha_ns"`
	ModelBetaNsPerByte float64 `json:"model_beta_ns_per_byte"`
}

// ClusterBenchOptions configures the calibration run. The zero value
// measures a 3-node localhost TCP cluster with 32 echoes per point
// over the default payload ladder.
type ClusterBenchOptions struct {
	// Nodes is the cluster width; default 3.
	Nodes int
	// Reps is how many echoes each point sends; the minimum RTT is
	// kept. Default 32.
	Reps int
	// Sizes is the payload ladder in bytes; default
	// 0, 256, 1Ki, 4Ki, 16Ki, 64Ki.
	Sizes []int
	// Transport carries the frames; nil means localhost TCP.
	Transport cluster.Transport
	// TransportName labels the transport in the document; default
	// "tcp" ("mem" when injecting the in-memory transport).
	TransportName string
	// Addr names node i's listen address; default "127.0.0.1:0".
	Addr func(i int) string
}

func (o *ClusterBenchOptions) setDefaults() {
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Reps <= 0 {
		o.Reps = 32
	}
	if len(o.Sizes) == 0 {
		o.Sizes = []int{0, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10}
	}
	if o.Transport == nil {
		o.Transport = cluster.TCP()
	}
	if o.TransportName == "" {
		o.TransportName = "tcp"
	}
	if o.Addr == nil {
		o.Addr = func(int) string { return "127.0.0.1:0" }
	}
}

// ClusterBench stands up a cluster on the configured transport, pings
// a peer through the rips-wire/v1 echo frames at each payload size,
// and returns the calibration document.
func ClusterBench(opts ClusterBenchOptions) (ClusterBenchJSON, error) {
	opts.setDefaults()
	if opts.Nodes < 2 {
		return ClusterBenchJSON{}, fmt.Errorf("exp: cluster bench needs at least 2 nodes, got %d", opts.Nodes)
	}
	nodes := make([]*cluster.Node, 0, opts.Nodes)
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()
	for i := 0; i < opts.Nodes; i++ {
		n, err := cluster.Start(cluster.Options{Addr: opts.Addr(i), Transport: opts.Transport})
		if err != nil {
			return ClusterBenchJSON{}, fmt.Errorf("exp: start cluster node %d: %w", i, err)
		}
		nodes = append(nodes, n)
		if i > 0 {
			if err := n.Join(nodes[0].Addr()); err != nil {
				return ClusterBenchJSON{}, fmt.Errorf("exp: join cluster node %d: %w", i, err)
			}
		}
	}

	doc := ClusterBenchJSON{
		Schema:    ClusterBenchSchema,
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Cores:     runtime.NumCPU(),
		Transport: opts.TransportName,
		Nodes:     opts.Nodes,
		Reps:      opts.Reps,
	}
	for _, size := range opts.Sizes {
		rtts, err := nodes[0].EchoRTT(nodes[1].Addr(), make([]byte, size), opts.Reps)
		if err != nil {
			return ClusterBenchJSON{}, fmt.Errorf("exp: echo %d bytes: %w", size, err)
		}
		best := rtts[0]
		for _, r := range rtts[1:] {
			if r < best {
				best = r
			}
		}
		doc.Points = append(doc.Points, ClusterPointJSON{Bytes: size, BestRTTNs: best.Nanoseconds()})
	}

	// Fit RTT = a + b*size by least squares, then halve: an echo is
	// two wire crossings, so the one-way line is (a/2, b/2).
	a, b := fitLine(doc.Points)
	doc.AlphaNs, doc.BetaNsPerByte = a/2, b/2

	model := sim.DefaultLatency()
	doc.ModelAlphaNs = float64(model.Base + model.SendOverhead + model.RecvOverhead)
	doc.ModelBetaNsPerByte = float64(model.PerByte)
	return doc, nil
}

// fitLine is the ordinary least-squares line y = a + b*x through the
// calibration points. A single point degenerates to a horizontal line
// through it.
func fitLine(points []ClusterPointJSON) (a, b float64) {
	n := float64(len(points))
	if n == 0 {
		return 0, 0
	}
	var meanX, meanY float64
	for _, p := range points {
		meanX += float64(p.Bytes)
		meanY += float64(p.BestRTTNs)
	}
	meanX /= n
	meanY /= n
	var cov, varX float64
	for _, p := range points {
		dx := float64(p.Bytes) - meanX
		cov += dx * (float64(p.BestRTTNs) - meanY)
		varX += dx * dx
	}
	if varX == 0 {
		return meanY, 0
	}
	b = cov / varX
	return meanY - b*meanX, b
}
