package exp

import (
	"fmt"
	"io"
	"math/rand"

	"rips/internal/app"
	"rips/internal/apps/kernels"
	"rips/internal/apps/nqueens"
	"rips/internal/dynsched"
	"rips/internal/invariant"
	"rips/internal/metrics"
	"rips/internal/ripsrt"
	"rips/internal/sched/flow"
	"rips/internal/sched/mwa"
	"rips/internal/sim"
	"rips/internal/topo"
)

// Fig4Point is one data point of Figure 4: the average normalized
// communication cost (C_MWA - C_OPT)/C_OPT over Cases random loads.
type Fig4Point struct {
	Procs, Weight int
	Normalized    float64
	MWACost, Opt  int // summed over the cases
}

// Fig4 reproduces Figure 4: the normalized communication cost of MWA
// against the min-cost-flow optimum, for random loads with the given
// mean weights on MxM / MxM/2 meshes. cases is the number of random
// load vectors per point (the paper uses 100).
func Fig4(procs, weights []int, cases int, seed int64) []Fig4Point {
	rng := rand.New(rand.NewSource(seed))
	var out []Fig4Point
	for _, p := range procs {
		mesh := topo.SquarishMesh(p)
		for _, wt := range weights {
			pt := Fig4Point{Procs: p, Weight: wt}
			for c := 0; c < cases; c++ {
				load := make([]int, p)
				for i := range load {
					load[i] = rng.Intn(2*wt + 1)
				}
				r, err := mwa.Plan(mesh, load)
				if err != nil {
					invariant.Violated("%v", err) // impossible for non-negative loads
				}
				// Optimal routing to the same quotas MWA targets (see
				// flow.CostTo for why not the free-placement optimum).
				opt, err := flow.CostTo(mesh, load, r.Quota)
				if err != nil {
					invariant.Violated("%v", err)
				}
				pt.MWACost += r.Plan.Cost()
				pt.Opt += opt
			}
			if pt.Opt > 0 {
				pt.Normalized = float64(pt.MWACost-pt.Opt) / float64(pt.Opt)
			}
			out = append(out, pt)
		}
	}
	return out
}

// PrintFig4 renders Figure 4 as a text table, one row per machine
// size, one column per mean weight.
func PrintFig4(w io.Writer, pts []Fig4Point) {
	// Collect the axes in encounter order.
	var procs, weights []int
	seenP, seenW := map[int]bool{}, map[int]bool{}
	val := map[[2]int]float64{}
	for _, p := range pts {
		if !seenP[p.Procs] {
			seenP[p.Procs] = true
			procs = append(procs, p.Procs)
		}
		if !seenW[p.Weight] {
			seenW[p.Weight] = true
			weights = append(weights, p.Weight)
		}
		val[[2]int{p.Procs, p.Weight}] = p.Normalized
	}
	fmt.Fprintln(w, "Figure 4: normalized communication cost of MWA vs optimal")
	fmt.Fprintf(w, "%-8s", "procs")
	for _, wt := range weights {
		fmt.Fprintf(w, " w=%-6d", wt)
	}
	fmt.Fprintln(w)
	for _, p := range procs {
		fmt.Fprintf(w, "%-8d", p)
		for _, wt := range weights {
			fmt.Fprintf(w, " %6.1f%%", 100*val[[2]int{p, wt}])
		}
		fmt.Fprintln(w)
	}
}

// Table1 runs every workload under every scheduler on the mesh
// (paper: 8x4 = 32 processors) and returns the rows in paper order.
// When progress is non-nil, each row is streamed to it as it lands.
func Table1(ws []Workload, mesh *topo.Mesh, seed int64, progress io.Writer) ([]metrics.Row, error) {
	var rows []metrics.Row
	for _, w := range ws {
		for _, s := range Schedulers() {
			row, err := RunOne(w, mesh, s, seed)
			if err != nil {
				return rows, fmt.Errorf("%s under %s: %w", w.App.Name(), s, err)
			}
			if progress != nil {
				fmt.Fprintln(progress, row.String())
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// PrintTable1 renders the Table I comparison.
func PrintTable1(w io.Writer, rows []metrics.Row) {
	fmt.Fprintln(w, "Table I: comparison of scheduling algorithms")
	fmt.Fprintf(w, "%-14s %-9s %7s %9s %8s %8s %8s %6s\n",
		"workload", "sched", "tasks", "nonlocal", "Th(s)", "Ti(s)", "T(s)", "eff")
	for _, r := range rows {
		fmt.Fprintln(w, r.String())
	}
}

// Table2 computes the optimal efficiencies (paper Table II) from the
// sequential profiles.
func Table2(ws []Workload, procs int) map[string]float64 {
	out := map[string]float64{}
	for _, w := range ws {
		out[w.App.Name()] = w.Profile.OptimalEfficiency(procs)
	}
	return out
}

// PrintTable2 renders Table II.
func PrintTable2(w io.Writer, ws []Workload, procs int) {
	opt := Table2(ws, procs)
	fmt.Fprintf(w, "Table II: optimal efficiencies on %d processors\n", procs)
	for _, wl := range ws {
		fmt.Fprintf(w, "%-16s %5.1f%%\n", wl.App.Name(), 100*opt[wl.App.Name()])
	}
}

// Fig5Point is one bar of Figure 5: the normalized quality factor of
// one scheduler on one workload.
type Fig5Point struct {
	App     string
	Sched   string
	Quality float64
}

// Fig5 derives the normalized quality factors (muOpt - muRand) /
// (muOpt - muG) from Table I rows and Table II optima.
func Fig5(rows []metrics.Row, opt map[string]float64) []Fig5Point {
	muRand := map[string]float64{}
	for _, r := range rows {
		if r.Sched == SchedRandom.String() {
			muRand[r.App] = r.Eff
		}
	}
	var out []Fig5Point
	for _, r := range rows {
		q := metrics.QualityFactor(opt[r.App], muRand[r.App], r.Eff)
		out = append(out, Fig5Point{App: r.App, Sched: r.Sched, Quality: q})
	}
	return out
}

// PrintFig5 renders Figure 5 as a table plus ASCII bars.
func PrintFig5(w io.Writer, pts []Fig5Point) {
	fmt.Fprintln(w, "Figure 5: normalized quality factors (random = 1.0)")
	for _, p := range pts {
		q := p.Quality
		bar := int(q * 10)
		if bar < 0 {
			bar = 0
		}
		if bar > 60 {
			bar = 60
		}
		fmt.Fprintf(w, "%-16s %-9s %6.2f |%s\n", p.App, p.Sched, q, bars(bar))
	}
}

func bars(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}

// Table3Row is one Table III entry: a workload's speedup under one
// scheduler at one machine size.
type Table3Row struct {
	App     string
	Sched   string
	Procs   int
	Speedup float64
}

// Table3 reproduces the speedup comparison on larger machines (the
// paper uses 64 and 128 processors with 15-Queens, IDA* configuration
// #3 and GROMOS 16A). IDA* uses the paper's large-machine RID tuning.
func Table3(ws []Workload, sizes []int, seed int64) ([]Table3Row, error) {
	var out []Table3Row
	for _, w := range ws {
		for _, n := range sizes {
			mesh := topo.SquarishMesh(n)
			for _, s := range Schedulers() {
				row, err := RunOne(w, mesh, s, seed)
				if err != nil {
					return out, fmt.Errorf("%s under %s on %d: %w", w.App.Name(), s, n, err)
				}
				out = append(out, Table3Row{
					App:     w.App.Name(),
					Sched:   s.String(),
					Procs:   n,
					Speedup: metrics.Speedup(w.Profile.Work, row.Time),
				})
			}
		}
	}
	return out, nil
}

// PrintTable3 renders Table III.
func PrintTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table III: speedup comparison")
	fmt.Fprintf(w, "%-16s %-9s %6s %8s\n", "workload", "sched", "procs", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %-9s %6d %8.1f\n", r.App, r.Sched, r.Procs, r.Speedup)
	}
}

// AblationRow is one transfer-policy variant's outcome.
type AblationRow struct {
	Policy string
	Time   sim.Time
	Eff    float64
	Phases int64
}

// Ablation compares the four ANY/ALL x eager/lazy transfer policies
// plus the periodic detector on one workload — the design-space sweep
// behind the paper's statement that ANY-Lazy is the best combination.
func Ablation(w Workload, mesh *topo.Mesh, period sim.Time, seed int64) ([]AblationRow, error) {
	type variant struct {
		name     string
		local    ripsrt.LocalPolicy
		global   ripsrt.GlobalPolicy
		detector ripsrt.Detector
		eureka   bool
	}
	variants := []variant{
		{"any-lazy", ripsrt.Lazy, ripsrt.Any, ripsrt.Signal, false},
		{"any-eager", ripsrt.Eager, ripsrt.Any, ripsrt.Signal, false},
		{"all-lazy", ripsrt.Lazy, ripsrt.All, ripsrt.Signal, false},
		{"all-eager", ripsrt.Eager, ripsrt.All, ripsrt.Signal, false},
		{"any-lazy periodic", ripsrt.Lazy, ripsrt.Any, ripsrt.Periodic, false},
		{"any-lazy eureka", ripsrt.Lazy, ripsrt.Any, ripsrt.Signal, true},
	}
	var out []AblationRow
	for _, v := range variants {
		cfg := ripsrt.Config{
			Mesh:     mesh,
			App:      w.App,
			Local:    v.local,
			Global:   v.global,
			Detector: v.detector,
			Eureka:   v.eureka,
			Seed:     seed,
		}
		if v.detector == ripsrt.Periodic {
			cfg.Period = period
		}
		res, err := ripsrt.Run(cfg)
		if err != nil {
			return out, fmt.Errorf("policy %s: %w", v.name, err)
		}
		out = append(out, AblationRow{
			Policy: v.name,
			Time:   res.Time,
			Eff:    metrics.Efficiency(w.Profile.Work, mesh.Size(), res.Time),
			Phases: res.Phases,
		})
	}
	return out, nil
}

// PrintAblation renders the policy ablation.
func PrintAblation(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "Transfer-policy ablation (paper Section 2 / ref [24])")
	fmt.Fprintf(w, "%-18s %8s %6s %7s\n", "policy", "T(s)", "eff", "phases")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %8.2f %5.0f%% %7d\n", r.Policy, r.Time.Seconds(), 100*r.Eff, r.Phases)
	}
}

// TopologyRow is one machine-topology variant's outcome under RIPS.
type TopologyRow struct {
	Topology string
	Time     sim.Time
	Eff      float64
	Nonlocal int64
	Migrated int64
	Phases   int64
}

// Topologies runs the same workload under RIPS on a mesh, a binary
// tree and a hypercube of n processors (n must be a power of two) —
// the generality claim of the paper's Section 5 / ref [32]. The mesh
// uses the Mesh Walking Algorithm, the tree the Tree Walking
// Algorithm, and the hypercube incremental Dimension Exchange, so the
// comparison also exposes DEM's redundant communication.
func Topologies(w Workload, n int, seed int64) ([]TopologyRow, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("exp: topology comparison needs a power-of-two size, got %d", n)
	}
	d := 0
	for 1<<d < n {
		d++
	}
	machines := []struct {
		name  string
		t     topo.Topology
		exact bool
	}{
		{"mesh", topo.SquarishMesh(n), false},
		{"tree", topo.NewTree(n), false},
		{"hypercube-dem", topo.NewHypercube(d), false},
		{"hypercube-cwa", topo.NewHypercube(d), true},
	}
	var out []TopologyRow
	for _, m := range machines {
		res, err := ripsrt.Run(ripsrt.Config{Topo: m.t, App: w.App, ExactCube: m.exact, Seed: seed})
		if err != nil {
			return out, fmt.Errorf("rips on %s: %w", m.t.Name(), err)
		}
		out = append(out, TopologyRow{
			Topology: m.name,
			Time:     res.Time,
			Eff:      metrics.Efficiency(w.Profile.Work, n, res.Time),
			Nonlocal: res.Nonlocal,
			Migrated: res.Migrated,
			Phases:   res.Phases,
		})
	}
	return out, nil
}

// PrintTopologies renders the topology comparison.
func PrintTopologies(w io.Writer, rows []TopologyRow) {
	fmt.Fprintln(w, "RIPS across machine topologies (Section 5 / ref [32])")
	fmt.Fprintf(w, "%-14s %8s %6s %9s %10s %7s\n", "topology", "T(s)", "eff", "nonlocal", "task-links", "phases")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %8.2f %5.0f%% %9d %10d %7d\n",
			r.Topology, r.Time.Seconds(), 100*r.Eff, r.Nonlocal, r.Migrated, r.Phases)
	}
}

// TaxonomyRow is one cell of the problem-taxonomy experiment.
type TaxonomyRow struct {
	App   string
	Class string // "static" or "dynamic", per the paper's Section 1
	Sched string
	Time  sim.Time
	Eff   float64
}

// Taxonomy turns the paper's Section 1 argument into a measurement:
// static problems (Gaussian elimination, FFT — predictable structure)
// are served perfectly well by a compile-time block distribution with
// no runtime balancing, while dynamic problems (multigrid's collapsing
// parallelism, N-Queens' irregular tree, GROMOS's nonuniform density)
// need a runtime scheduler — and RIPS recovers what static scheduling
// loses on them.
func Taxonomy(ws []TaxonomyWorkload, mesh *topo.Mesh, seed int64) ([]TaxonomyRow, error) {
	var out []TaxonomyRow
	for _, w := range ws {
		for _, s := range []struct {
			name  string
			strat func() dynsched.Strategy
		}{
			{"static", dynsched.NewStatic()},
			{"random", dynsched.NewRandom()},
		} {
			res, err := dynsched.Run(dynsched.Config{Topo: mesh, App: w.App, Strategy: s.strat, Seed: seed})
			if err != nil {
				return out, fmt.Errorf("%s under %s: %w", w.App.Name(), s.name, err)
			}
			out = append(out, TaxonomyRow{
				App: w.App.Name(), Class: w.Class, Sched: s.name,
				Time: res.Time, Eff: metrics.Efficiency(w.Profile.Work, mesh.Size(), res.Time),
			})
		}
		res, err := ripsrt.Run(ripsrt.Config{Mesh: mesh, App: w.App, Seed: seed})
		if err != nil {
			return out, fmt.Errorf("%s under rips: %w", w.App.Name(), err)
		}
		out = append(out, TaxonomyRow{
			App: w.App.Name(), Class: w.Class, Sched: "rips",
			Time: res.Time, Eff: metrics.Efficiency(w.Profile.Work, mesh.Size(), res.Time),
		})
	}
	return out, nil
}

// TaxonomyWorkload tags a workload with the paper's problem class.
type TaxonomyWorkload struct {
	App     app.App
	Profile app.Profile
	Class   string
}

// TaxonomyWorkloads returns the default taxonomy set: two static
// kernels, the multigrid V-cycle, and an irregular search. Kernel
// sizes are chosen so per-round work dominates the per-round global
// synchronization, as any practitioner would choose them.
func TaxonomyWorkloads() []TaxonomyWorkload {
	gauss := kernels.NewGauss(2048, 64)
	fft := kernels.NewFFT(20, 8192)
	mg := kernels.NewMultigrid(2048, 6, 64)
	queens := nqueens.New(12, 4)
	return []TaxonomyWorkload{
		{App: gauss, Profile: app.Measure(gauss), Class: "static"},
		{App: fft, Profile: app.Measure(fft), Class: "static"},
		{App: mg, Profile: app.Measure(mg), Class: "dynamic"},
		{App: queens, Profile: app.Measure(queens), Class: "dynamic"},
	}
}

// PrintTaxonomy renders the taxonomy table.
func PrintTaxonomy(w io.Writer, rows []TaxonomyRow) {
	fmt.Fprintln(w, "Problem taxonomy (paper Section 1): static vs dynamic problems")
	fmt.Fprintf(w, "%-16s %-8s %-8s %8s %6s\n", "workload", "class", "sched", "T(s)", "eff")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %-8s %-8s %8.3f %5.0f%%\n", r.App, r.Class, r.Sched, r.Time.Seconds(), 100*r.Eff)
	}
}
