package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"rips"
)

// scrapeMetrics fetches /metrics and parses the text exposition into
// series → value, keyed by the full series name including its label
// set (`ripsd_queue_depth{lane="high"}`).
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want Prometheus text format", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		series, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable exposition line %q", line)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("series %s has non-numeric value %q", series, val)
		}
		if _, dup := out[series]; dup {
			t.Errorf("series %s exposed twice", series)
		}
		out[series] = f
	}
	return out
}

// TestMetricsMatchesStats is the /metrics acceptance test: drive a
// loaded server (multiple tenants, lanes, a cache hit, Parallel and
// Simulate backends) to quiescence, then assert the Prometheus
// exposition agrees with GET /v1/stats on every shared total and that
// the event-fed histograms are internally consistent. Run under -race
// this also exercises scraping concurrently with running jobs.
func TestMetricsMatchesStats(t *testing.T) {
	s := newTestServer(t, Options{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	specs := []JobSpec{
		{App: "nq", Size: 8, Tenant: "alice", Config: rips.ConfigJSON{Procs: 2, Backend: "parallel"}},
		{App: "nq", Size: 9, Tenant: "bob", Priority: "high", Config: rips.ConfigJSON{Procs: 2, Backend: "parallel"}},
		{App: "nq", Size: 8, Tenant: "alice", Priority: "low", Config: rips.ConfigJSON{Procs: 8, Backend: "simulate", Seed: 1}},
		// Byte-identical to the first submission: settles from the cache
		// once the first one is done (submitted after it below).
		{App: "nq", Size: 8, Tenant: "carol", Config: rips.ConfigJSON{Procs: 2, Backend: "parallel"}},
	}

	// Scrape concurrently with the load so -race checks the registry's
	// lock protocol against live observation, not just quiescence.
	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	scrapes.Add(1)
	go func() {
		defer scrapes.Done()
		for {
			select {
			case <-stop:
				return
			default:
				scrapeMetrics(t, ts.URL)
			}
		}
	}()

	first, err := s.Submit(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, first)
	var jobs []*Job
	for _, spec := range specs[1:] {
		job, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	done := 0
	cacheHits := 0
	for _, job := range append(jobs, first) {
		snap := waitTerminal(t, job)
		if snap.State != StateDone {
			t.Fatalf("job %s settled %q (%s)", job.ID, snap.State, snap.Err)
		}
		done++
		if snap.CacheHit {
			cacheHits++
		}
	}
	if cacheHits != 1 {
		t.Fatalf("cache hits = %d, want exactly the duplicate submission", cacheHits)
	}
	close(stop)
	scrapes.Wait()

	// Quiescent: every job terminal, nothing queued. The exposition and
	// the stats snapshot must now agree exactly.
	m := scrapeMetrics(t, ts.URL)
	arb, cache, poolFree := s.Stats()

	want := map[string]float64{
		"ripsd_workers":                  float64(s.Workers()),
		"ripsd_pool_free_workers":        float64(poolFree),
		"ripsd_capacity_workers":         float64(arb.Capacity),
		"ripsd_free_workers":             float64(arb.Free),
		"ripsd_dispatches_total":         float64(arb.Dispatches),
		"ripsd_preemptions_total":        float64(arb.Preemptions),
		"ripsd_requeues_total":           float64(arb.Requeues),
		"ripsd_rejects_total":            float64(arb.Rejects),
		"ripsd_cache_hits_total":         float64(cache.Hits),
		"ripsd_cache_misses_total":       float64(cache.Misses),
		"ripsd_cache_entries":            float64(cache.Entries),
		"ripsd_cache_max_entries":        float64(cache.Max),
		`ripsd_jobs_total{state="done"}`: float64(done),
		"ripsd_cache_served_jobs_total":  float64(cacheHits),
	}
	for series, v := range want {
		got, ok := m[series]
		if !ok {
			t.Errorf("exposition is missing %s", series)
			continue
		}
		if got != v {
			t.Errorf("%s = %v, /v1/stats says %v", series, got, v)
		}
	}
	for _, p := range rips.Priorities() {
		lane := p.String()
		if got := m[`ripsd_queue_depth{lane="`+lane+`"}`]; got != float64(arb.Lanes[p].Queued) {
			t.Errorf("queue_depth{%s} = %v, stats say %d", lane, got, arb.Lanes[p].Queued)
		}
		if got := m[`ripsd_running_jobs{lane="`+lane+`"}`]; got != float64(arb.Lanes[p].Running) {
			t.Errorf("running_jobs{%s} = %v, stats say %d", lane, got, arb.Lanes[p].Running)
		}
	}

	// Histogram consistency: the normal lane saw Parallel phases, so
	// phase latencies were observed; job durations count every settled
	// job across lanes; +Inf buckets equal counts.
	var jobCount, phaseCount float64
	for _, p := range rips.Priorities() {
		lane := p.String()
		jc := m[`ripsd_job_duration_seconds_count{lane="`+lane+`"}`]
		jobCount += jc
		phaseCount += m[`ripsd_phase_latency_seconds_count{lane="`+lane+`"}`]
		if inf := m[`ripsd_job_duration_seconds_bucket{lane="`+lane+`",le="+Inf"}`]; inf != jc {
			t.Errorf("lane %s: job_duration +Inf bucket %v != count %v", lane, inf, jc)
		}
	}
	if jobCount != float64(done) {
		t.Errorf("job_duration histograms observed %v jobs, want %d", jobCount, done)
	}
	if phaseCount == 0 {
		t.Error("no phase latencies observed despite Parallel runs")
	}
}
