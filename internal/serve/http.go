package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"rips"
	"rips/internal/tenant"
)

// JobJSON is the wire form of a job for GET /v1/jobs and
// GET /v1/jobs/{id}: the submission, the lifecycle state with
// timestamps, and — once terminal — the rips-result/v1 document or the
// error text.
type JobJSON struct {
	ID            string           `json:"id"`
	Spec          JobSpec          `json:"spec"`
	Tenant        string           `json:"tenant"`
	Priority      string           `json:"priority"`
	State         string           `json:"state"`
	Phases        int              `json:"phases"`
	DroppedPhases int              `json:"dropped_phases,omitempty"`
	Preemptions   int              `json:"preemptions,omitempty"`
	CacheHit      bool             `json:"cache_hit,omitempty"`
	Result        *rips.ResultJSON `json:"result,omitempty"`
	Error         string           `json:"error,omitempty"`
	SubmittedAt   time.Time        `json:"submitted_at"`
	StartedAt     *time.Time       `json:"started_at,omitempty"`
	FinishedAt    *time.Time       `json:"finished_at,omitempty"`
}

// PhaseEvent is the wire form of one system phase on the SSE stream
// (event: phase). Times are integer nanoseconds, matching
// rips-result/v1 conventions; virtual_ns is zero on the Parallel
// backend (no virtual clock) and elapsed_ns zero on Simulate.
type PhaseEvent struct {
	Phase     int64 `json:"phase"`
	Round     int   `json:"round"`
	Tasks     int   `json:"tasks"`
	Moved     int   `json:"moved,omitempty"`
	VirtualNS int64 `json:"virtual_ns,omitempty"`
	ElapsedNS int64 `json:"elapsed_ns,omitempty"`
}

func encodeJob(snap Snapshot) JobJSON {
	out := JobJSON{
		ID:            snap.ID,
		Spec:          snap.Spec,
		Tenant:        snap.Tenant,
		Priority:      snap.Priority.String(),
		State:         snap.State,
		Phases:        len(snap.Phases) + snap.Dropped,
		DroppedPhases: snap.Dropped,
		Preemptions:   snap.Preemptions,
		CacheHit:      snap.CacheHit,
		Result:        snap.Result,
		Error:         snap.Err,
		SubmittedAt:   snap.Submitted,
	}
	if !snap.Started.IsZero() {
		out.StartedAt = &snap.Started
	}
	if !snap.Finished.IsZero() {
		out.FinishedAt = &snap.Finished
	}
	return out
}

func encodePhase(pi rips.PhaseInfo) PhaseEvent {
	return PhaseEvent{
		Phase:     pi.Phase,
		Round:     pi.Round,
		Tasks:     pi.Tasks,
		Moved:     pi.Moved,
		VirtualNS: int64(pi.VirtualTime),
		ElapsedNS: int64(pi.Elapsed),
	}
}

// Handler returns the ripsd API:
//
//	GET  /healthz                  liveness
//	GET  /metrics                  Prometheus text exposition
//	GET  /v1/stats                 tenant queues, lanes, pool, cache
//	GET  /v1/cluster               ring membership (404 when not clustered)
//	GET  /v1/jobs                  list jobs in submission order
//	POST /v1/jobs                  submit a JobSpec (202, 400, 503)
//	GET  /v1/jobs/{id}             one job
//	POST /v1/jobs/{id}/cancel      request cancellation
//	GET  /v1/jobs/{id}/events      SSE phase/result/error stream
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	return mux
}

// StatsJSON is the body of GET /v1/stats: the arbiter's admission
// ledger (lanes keyed by priority name, per-tenant queue depths and
// wait ages), the pool's lease utilization, and the result cache
// counters.
type StatsJSON struct {
	Workers     int                           `json:"workers"`
	PoolFree    int                           `json:"pool_free"`
	Lanes       map[string]tenant.LaneStats   `json:"lanes"`
	Tenants     map[string]tenant.TenantStats `json:"tenants"`
	Dispatches  int64                         `json:"dispatches"`
	Preemptions int64                         `json:"preemptions"`
	Requeues    int64                         `json:"requeues"`
	Rejects     int64                         `json:"rejects"`
	Cache       tenant.CacheStats             `json:"cache"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	arb, cache, poolFree := s.Stats()
	out := StatsJSON{
		Workers:     s.Workers(),
		PoolFree:    poolFree,
		Lanes:       make(map[string]tenant.LaneStats, len(arb.Lanes)),
		Tenants:     arb.Tenants,
		Dispatches:  arb.Dispatches,
		Preemptions: arb.Preemptions,
		Requeues:    arb.Requeues,
		Rejects:     arb.Rejects,
		Cache:       cache,
	}
	for _, p := range rips.Priorities() {
		out.Lanes[p.String()] = arb.Lanes[p]
	}
	writeJSON(w, http.StatusOK, out)
}

// handleCluster reports the node's view of the ring — address, wire
// schema, ring-ordered members with their hash positions, running
// cluster jobs. A server started without -cluster has no ring to
// report: 404.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if s.opts.Cluster == nil {
		writeError(w, http.StatusNotFound, errors.New("serve: this server is not part of a cluster"))
		return
	}
	writeJSON(w, http.StatusOK, s.opts.Cluster.Status())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encode errors here mean the client is gone; nothing to do.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// handleMetrics serves the Prometheus text exposition (version 0.0.4,
// the format every scraper accepts). Stdlib-only by design: the
// format is a few Fprintf lines, not a dependency.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.WriteMetrics(w)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "workers": s.Workers()})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]JobJSON, 0, len(jobs))
	for _, j := range jobs {
		snap, _ := j.Snapshot()
		out = append(out, encodeJob(snap))
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad submission body: %w", err))
		return
	}
	// The strict rips-job/v1 decoder: unknown fields, schema skew and
	// trailing bytes are 400s, identically here and on a cluster peer
	// receiving the forwarded document.
	spec, err := rips.DecodeJobSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.Submit(spec)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrDraining) || errors.Is(err, ErrQueueFull) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	snap, _ := job.Snapshot()
	writeJSON(w, http.StatusAccepted, encodeJob(snap))
}

func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	job, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no job %q", id))
	}
	return job, ok
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	snap, _ := job.Snapshot()
	writeJSON(w, http.StatusOK, encodeJob(snap))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	job.Cancel()
	snap, _ := job.Snapshot()
	writeJSON(w, http.StatusAccepted, encodeJob(snap))
}

// handleEvents streams a job over SSE: every recorded phase as
// `event: phase` (history first, then live), ending with exactly one
// terminal `event: result` (done or canceled-with-partial-result) or
// `event: error` — a subscriber attaching after completion still
// receives the terminal event exactly once. The stream closes after
// the terminal event, or when the client disconnects.
//
// When a job is preempted its phase buffer resets and Snapshot.Attempt
// bumps; the stream resets its replay offset with it, so the next
// attempt's phases replay from its own phase 1 instead of indexing the
// fresh buffer with a stale offset.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("serve: response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	sent := 0
	attempt := -1
	for {
		snap, changed := job.Snapshot()
		if snap.Attempt != attempt {
			attempt = snap.Attempt
			sent = 0
		}
		if sent > len(snap.Phases) {
			// Defensive: never index past a buffer that shrank.
			sent = len(snap.Phases)
		}
		for _, pi := range snap.Phases[sent:] {
			writeEvent(w, "phase", encodePhase(pi))
			sent++
		}
		if Terminal(snap.State) {
			switch {
			case snap.Result != nil:
				writeEvent(w, "result", snap.Result)
			default:
				msg := snap.Err
				if msg == "" {
					msg = "job " + snap.State
				}
				writeEvent(w, "error", map[string]string{"state": snap.State, "error": msg})
			}
			fl.Flush()
			return
		}
		fl.Flush()
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// writeEvent emits one SSE frame. json.Marshal of our own wire structs
// cannot fail, and a write error just means the client went away — the
// stream loop exits via the request context shortly after.
func writeEvent(w http.ResponseWriter, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(`{"error":"encode failure"}`)
	}
	_, _ = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}
