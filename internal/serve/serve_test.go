package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rips"
	"rips/internal/exp"
)

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s
}

// waitState blocks until pred holds for the job's snapshot, using the
// notify channel so no update can slip between observation and wait.
func waitState(t *testing.T, job *Job, timeout time.Duration, pred func(Snapshot) bool) Snapshot {
	t.Helper()
	deadline := time.After(timeout)
	for {
		snap, changed := job.Snapshot()
		if pred(snap) {
			return snap
		}
		select {
		case <-changed:
		case <-deadline:
			t.Fatalf("job %s stuck in state %q after %v", job.ID, snap.State, timeout)
		}
	}
}

func waitTerminal(t *testing.T, job *Job) Snapshot {
	t.Helper()
	return waitState(t, job, 60*time.Second, func(s Snapshot) bool { return Terminal(s.State) })
}

// TestServeMatchesDirectRun is the tentpole acceptance test: many
// concurrent submissions multiplexed onto one shared pool must produce
// the same answers as direct library calls. Simulate jobs are compared
// bit-for-bit (the simulator is deterministic up to wall time);
// Parallel jobs compare the deterministic fields (answer, task count,
// config echo) since phase counts and steal totals vary run to run.
func TestServeMatchesDirectRun(t *testing.T) {
	s := newTestServer(t, Options{Workers: 4})

	specs := []JobSpec{
		{App: "nq", Size: 8, Config: rips.ConfigJSON{Procs: 2, Backend: "parallel"}},
		{App: "nq", Size: 9, Config: rips.ConfigJSON{Procs: 4, Backend: "parallel"}},
		{App: "nq", Size: 9, Config: rips.ConfigJSON{Procs: 4, Algorithm: "steal", Backend: "parallel"}},
		{App: "nq", Size: 10, Config: rips.ConfigJSON{Procs: 2, Backend: "parallel", Eager: true}},
		{App: "nq", Size: 8, Config: rips.ConfigJSON{Procs: 8, Backend: "simulate", Seed: 3}},
		{App: "nq", Size: 8, Config: rips.ConfigJSON{Procs: 8, Backend: "simulate", Algorithm: "gradient", Seed: 3}},
		{App: "nq", Size: 9, Config: rips.ConfigJSON{Procs: 16, Backend: "simulate", Topology: "tree"}},
		{App: "ida", Size: 1, Config: rips.ConfigJSON{Procs: 4, Backend: "simulate"}},
		{App: "nq", Size: 8, Config: rips.ConfigJSON{Backend: "parallel"}}, // defaults: whole pool
		{App: "nq", Size: 9, Config: rips.ConfigJSON{Procs: 2, Backend: "parallel", All: true}},
	}

	// Submit all specs concurrently — the acceptance bar is at least 8
	// in-flight submissions against one pool.
	jobs := make([]*Job, len(specs))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var submitErr error
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec JobSpec) {
			defer wg.Done()
			job, err := s.Submit(spec)
			if err != nil {
				mu.Lock()
				submitErr = fmt.Errorf("submit %d: %w", i, err)
				mu.Unlock()
				return
			}
			jobs[i] = job
		}(i, spec)
	}
	wg.Wait()
	if submitErr != nil {
		t.Fatal(submitErr)
	}

	for i, job := range jobs {
		snap := waitTerminal(t, job)
		if snap.State != StateDone {
			t.Fatalf("job %d (%+v): state %q, err %q", i, specs[i], snap.State, snap.Err)
		}
		if snap.Result == nil {
			t.Fatalf("job %d: done without result", i)
		}

		// Re-run the same workload directly through the public API.
		a, err := exp.ParScaleApp(specs[i].App, specs[i].Size)
		if err != nil {
			t.Fatal(err)
		}
		cfg := job.cfg
		cfg.Pool = nil // direct run on fresh goroutines
		direct, err := rips.RunContext(context.Background(), a, cfg)
		if err != nil {
			t.Fatalf("direct run %d: %v", i, err)
		}
		directDoc := rips.EncodeResult(job.cfg, direct)
		got := *snap.Result

		if cfg.Backend == rips.Simulate {
			got.WallNS, directDoc.WallNS = 0, 0
			if got != directDoc {
				t.Errorf("job %d: served simulate result differs from direct run:\n got %+v\nwant %+v", i, got, directDoc)
			}
		} else {
			if got.AppResult != directDoc.AppResult || got.Tasks != directDoc.Tasks {
				t.Errorf("job %d: served AppResult=%d Tasks=%d, direct AppResult=%d Tasks=%d",
					i, got.AppResult, got.Tasks, directDoc.AppResult, directDoc.Tasks)
			}
			if got.Config != directDoc.Config {
				t.Errorf("job %d: config echo differs:\n got %+v\nwant %+v", i, got.Config, directDoc.Config)
			}
		}
	}
}

// TestServeCancelFreesPool cancels a long job mid-run and checks the
// shared pool immediately serves the next submission — the "canceled
// job must not wedge the barrier" acceptance criterion.
func TestServeCancelFreesPool(t *testing.T) {
	s := newTestServer(t, Options{Workers: 4})

	long, err := s.Submit(JobSpec{App: "nq", Size: 13, Config: rips.ConfigJSON{Procs: 4, Backend: "parallel"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, long, 30*time.Second, func(s Snapshot) bool { return s.State == StateRunning })
	long.Cancel()
	snap := waitTerminal(t, long)
	if snap.State != StateCanceled {
		t.Fatalf("canceled job settled as %q (err %q)", snap.State, snap.Err)
	}
	if snap.Result == nil || !snap.Result.Canceled {
		t.Errorf("canceled job result = %+v, want partial document with canceled=true", snap.Result)
	}

	quick, err := s.Submit(JobSpec{App: "nq", Size: 8, Config: rips.ConfigJSON{Procs: 4, Backend: "parallel"}})
	if err != nil {
		t.Fatal(err)
	}
	snap = waitTerminal(t, quick)
	if snap.State != StateDone || snap.Result == nil || snap.Result.AppResult != 92 {
		t.Fatalf("post-cancel job: state %q result %+v, want done with 92 solutions", snap.State, snap.Result)
	}
}

// TestServeCancelQueued cancels a job before the executor reaches it.
func TestServeCancelQueued(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})

	long, err := s.Submit(JobSpec{App: "nq", Size: 13, Config: rips.ConfigJSON{Procs: 2, Backend: "parallel"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, long, 30*time.Second, func(s Snapshot) bool { return s.State == StateRunning })
	queued, err := s.Submit(JobSpec{App: "nq", Size: 8, Config: rips.ConfigJSON{Procs: 2, Backend: "parallel"}})
	if err != nil {
		t.Fatal(err)
	}
	queued.Cancel()
	long.Cancel()
	snap := waitTerminal(t, queued)
	if snap.State != StateCanceled {
		t.Errorf("queued-then-canceled job settled as %q", snap.State)
	}
	if snap.Result != nil {
		t.Errorf("never-ran job has a result: %+v", snap.Result)
	}
	waitTerminal(t, long)
}

// TestServeDrain checks graceful shutdown: draining rejects new
// submissions with ErrDraining but completes everything already
// admitted.
func TestServeDrain(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})

	running, err := s.Submit(JobSpec{App: "nq", Size: 10, Config: rips.ConfigJSON{Procs: 2, Backend: "parallel"}})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(JobSpec{App: "nq", Size: 8, Config: rips.ConfigJSON{Procs: 2, Backend: "parallel"}})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	if _, err := s.Submit(JobSpec{App: "nq", Size: 8}); !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain Submit err = %v, want ErrDraining", err)
	}
	for _, job := range []*Job{running, queued} {
		snap, _ := job.Snapshot()
		if snap.State != StateDone {
			t.Errorf("job %s after drain: state %q, want done", job.ID, snap.State)
		}
	}
	// Drain is idempotent.
	if err := s.Drain(ctx); err != nil {
		t.Errorf("second Drain: %v", err)
	}
}

// TestServeQueueFull checks the bounded admission queue rejects the
// overflow submission instead of blocking.
func TestServeQueueFull(t *testing.T) {
	s := newTestServer(t, Options{Workers: 4, QueueLimit: 1})

	long, err := s.Submit(JobSpec{App: "nq", Size: 13, Config: rips.ConfigJSON{Procs: 4, Backend: "parallel"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, long, 30*time.Second, func(s Snapshot) bool { return s.State == StateRunning })

	queued, err := s.Submit(JobSpec{App: "nq", Size: 8, Config: rips.ConfigJSON{Procs: 2, Backend: "parallel"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(JobSpec{App: "nq", Size: 8}); !errors.Is(err, ErrQueueFull) {
		t.Errorf("overflow Submit err = %v, want ErrQueueFull", err)
	}

	long.Cancel()
	waitTerminal(t, long)
	snap := waitTerminal(t, queued)
	if snap.State != StateDone {
		t.Errorf("queued job after overflow: state %q", snap.State)
	}
}

// TestServeRejectsBadSpecs checks submission validation happens before
// admission.
func TestServeRejectsBadSpecs(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	for _, tc := range []struct {
		name string
		spec JobSpec
		want string
	}{
		{"unknown app", JobSpec{App: "fft"}, "unknown app family"},
		{"bad size", JobSpec{App: "nq", Size: 3}, "size"},
		{"bad algorithm", JobSpec{App: "nq", Config: rips.ConfigJSON{Algorithm: "magic"}}, "unknown algorithm"},
		{"too many workers", JobSpec{App: "nq", Size: 8, Config: rips.ConfigJSON{Procs: 64, Backend: "parallel"}}, "pool"},
		{"simulate-only alg", JobSpec{App: "nq", Size: 8, Config: rips.ConfigJSON{Algorithm: "gradient", Backend: "parallel"}}, "Simulate backend"},
	} {
		if _, err := s.Submit(tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if len(s.Jobs()) != 0 {
		t.Errorf("rejected submissions left %d jobs in the table", len(s.Jobs()))
	}
}

// TestServeHTTP drives the full HTTP surface end to end: health,
// submit, SSE stream with phase and result events, job detail, list,
// and the error statuses.
func TestServeHTTP(t *testing.T) {
	s := newTestServer(t, Options{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	_ = resp.Body.Close()

	body := `{"app": "nq", "size": 10, "config": {"procs": 4, "algorithm": "rips", "backend": "parallel"}}`
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var submitted JobJSON
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if submitted.ID == "" || submitted.Spec.App != "nq" {
		t.Fatalf("submit echoed %+v", submitted)
	}

	// Stream events until the terminal frame.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + submitted.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}
	var phases int
	var result rips.ResultJSON
	sawResult := false
	scanner := bufio.NewScanner(resp.Body)
	event := ""
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "phase":
				var pe PhaseEvent
				if err := json.Unmarshal([]byte(data), &pe); err != nil {
					t.Fatalf("phase event %q: %v", data, err)
				}
				phases++
				if pe.Phase != int64(phases) {
					t.Errorf("phase event %d has index %d", phases, pe.Phase)
				}
			case "result":
				if err := json.Unmarshal([]byte(data), &result); err != nil {
					t.Fatalf("result event %q: %v", data, err)
				}
				sawResult = true
			case "error":
				t.Fatalf("unexpected error event: %s", data)
			}
		}
		if sawResult {
			break
		}
	}
	if !sawResult {
		t.Fatalf("stream ended without a result event (scanner err %v)", scanner.Err())
	}
	if phases == 0 {
		t.Error("stream carried no phase events")
	}
	if result.Schema != rips.ResultJSONSchema || result.AppResult != 724 {
		t.Errorf("streamed result schema=%q app_result=%d, want %q/724 (10-queens)", result.Schema, result.AppResult, rips.ResultJSONSchema)
	}

	// Job detail and listing reflect the finished run.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + submitted.ID)
	if err != nil {
		t.Fatal(err)
	}
	var detail JobJSON
	if err := json.NewDecoder(resp.Body).Decode(&detail); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if detail.State != StateDone || detail.Result == nil || detail.Result.AppResult != 724 {
		t.Errorf("job detail %+v", detail)
	}
	if detail.Phases != phases {
		t.Errorf("detail reports %d phases, stream carried %d", detail.Phases, phases)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []JobJSON `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != submitted.ID {
		t.Errorf("job list %+v", list.Jobs)
	}

	// Error statuses.
	for _, tc := range []struct {
		method, path, body string
		want               int
	}{
		{"GET", "/v1/jobs/job-999", "", http.StatusNotFound},
		{"POST", "/v1/jobs", "{not json", http.StatusBadRequest},
		{"POST", "/v1/jobs", `{"app": "fft"}`, http.StatusBadRequest},
		{"POST", "/v1/jobs/job-999/cancel", "", http.StatusNotFound},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
		_ = resp.Body.Close()
	}
}

// TestServeHTTPCancel cancels over HTTP and checks the SSE stream of a
// canceled job terminates with its partial result.
func TestServeHTTPCancel(t *testing.T) {
	s := newTestServer(t, Options{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"app": "nq", "size": 13, "config": {"procs": 4, "backend": "parallel"}}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted JobJSON
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()

	job, ok := s.Job(submitted.ID)
	if !ok {
		t.Fatal("submitted job not in table")
	}
	waitState(t, job, 30*time.Second, func(s Snapshot) bool { return s.State == StateRunning })

	resp, err = http.Post(ts.URL+"/v1/jobs/"+submitted.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	_ = resp.Body.Close()

	snap := waitTerminal(t, job)
	if snap.State != StateCanceled {
		t.Fatalf("state after HTTP cancel: %q", snap.State)
	}

	// The event stream of a settled canceled job replays and ends with
	// the partial result document.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + submitted.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	scanner := bufio.NewScanner(resp.Body)
	sawCanceledResult := false
	for scanner.Scan() {
		line := scanner.Text()
		if strings.HasPrefix(line, "data: ") && strings.Contains(line, `"canceled":true`) {
			sawCanceledResult = true
			break
		}
	}
	if !sawCanceledResult {
		t.Error("canceled job's stream never delivered the partial result")
	}
}
