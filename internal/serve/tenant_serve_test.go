package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rips"
	"rips/internal/tenant"
)

// TestServeTwoTenantsConcurrent is the partitioning acceptance test:
// two tenants' jobs must run at the same time on disjoint sub-pools of
// one server, not serialize through the whole pool.
func TestServeTwoTenantsConcurrent(t *testing.T) {
	s := newTestServer(t, Options{Workers: 4})

	alice, err := s.Submit(JobSpec{App: "nq", Size: 12, Tenant: "alice",
		Config: rips.ConfigJSON{Procs: 2, Backend: "parallel"}})
	if err != nil {
		t.Fatal(err)
	}
	bob, err := s.Submit(JobSpec{App: "nq", Size: 12, Tenant: "bob",
		Config: rips.ConfigJSON{Procs: 2, Backend: "parallel"}})
	if err != nil {
		t.Fatal(err)
	}

	// Observe one instant where both jobs are running at once.
	deadline := time.After(30 * time.Second)
	for {
		sa, changed := alice.Snapshot()
		sb, _ := bob.Snapshot()
		if sa.State == StateRunning && sb.State == StateRunning {
			break
		}
		if Terminal(sa.State) || Terminal(sb.State) {
			t.Fatalf("a job finished before both ran together: alice=%q bob=%q", sa.State, sb.State)
		}
		select {
		case <-changed:
		case <-deadline:
			t.Fatalf("tenants never ran concurrently: alice=%q bob=%q", sa.State, sb.State)
		}
	}

	for _, job := range []*Job{alice, bob} {
		snap := waitTerminal(t, job)
		if snap.State != StateDone || snap.Result == nil || snap.Result.AppResult != 14200 {
			t.Errorf("%s: state=%q result=%+v", job.ID, snap.State, snap.Result)
		}
	}
}

// TestServePreemptionConservation is the preemption acceptance test: a
// high-priority submission that cannot fit preempts a low-priority run;
// the victim requeues, reruns, and its final document matches an
// uncontended direct run of the same workload.
func TestServePreemptionConservation(t *testing.T) {
	s := newTestServer(t, Options{Workers: 4})

	low, err := s.Submit(JobSpec{App: "nq", Size: 13, Tenant: "batch", Priority: "low",
		Config: rips.ConfigJSON{Procs: 4, Backend: "parallel"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, low, 30*time.Second, func(s Snapshot) bool { return s.State == StateRunning })

	high, err := s.Submit(JobSpec{App: "nq", Size: 8, Tenant: "urgent", Priority: "high",
		Config: rips.ConfigJSON{Procs: 4, Backend: "parallel"}})
	if err != nil {
		t.Fatal(err)
	}

	// The high job owns the whole pool, so it can only start once the
	// low job has yielded.
	hs := waitTerminal(t, high)
	if hs.State != StateDone || hs.Result == nil || hs.Result.AppResult != 92 {
		t.Fatalf("high job: state=%q err=%q result=%+v", hs.State, hs.Err, hs.Result)
	}

	ls := waitTerminal(t, low)
	if ls.State != StateDone || ls.Result == nil {
		t.Fatalf("low job: state=%q err=%q", ls.State, ls.Err)
	}
	if ls.Preemptions == 0 {
		t.Error("low job finished without recording a preemption")
	}

	// Conservation: the preempted-then-rerun answer is identical to an
	// uncontended run of the same resolved config.
	cfg := low.cfg
	cfg.Pool = nil
	direct, err := rips.RunContext(context.Background(), low.app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	directDoc := rips.EncodeResult(low.cfg, direct)
	if ls.Result.AppResult != directDoc.AppResult || ls.Result.Tasks != directDoc.Tasks {
		t.Errorf("preempted run AppResult=%d Tasks=%d, direct AppResult=%d Tasks=%d",
			ls.Result.AppResult, ls.Result.Tasks, directDoc.AppResult, directDoc.Tasks)
	}

	arb, _, _ := s.Stats()
	if arb.Preemptions == 0 || arb.Requeues == 0 {
		t.Errorf("arbiter stats: preemptions=%d requeues=%d, want both > 0", arb.Preemptions, arb.Requeues)
	}
}

// TestServePerTenantQueueLimit checks admission is per tenant: one
// tenant filling its queue gets 503s while another tenant still
// admits.
func TestServePerTenantQueueLimit(t *testing.T) {
	s := newTestServer(t, Options{Workers: 4, QueueLimit: 1})

	long, err := s.Submit(JobSpec{App: "nq", Size: 13, Tenant: "a",
		Config: rips.ConfigJSON{Procs: 4, Backend: "parallel"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, long, 30*time.Second, func(s Snapshot) bool { return s.State == StateRunning })

	queued, err := s.Submit(JobSpec{App: "nq", Size: 8, Tenant: "a",
		Config: rips.ConfigJSON{Procs: 2, Backend: "parallel"}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Submit(JobSpec{App: "nq", Size: 8, Tenant: "a"})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("tenant a overflow err = %v, want ErrQueueFull", err)
	}
	if !strings.Contains(err.Error(), `"a"`) {
		t.Errorf("overflow error %q does not name the tenant", err)
	}

	// Tenant b is unaffected by a's saturation.
	other, err := s.Submit(JobSpec{App: "nq", Size: 8, Tenant: "b",
		Config: rips.ConfigJSON{Procs: 2, Backend: "parallel"}})
	if err != nil {
		t.Fatalf("tenant b rejected while only tenant a is saturated: %v", err)
	}

	long.Cancel()
	waitTerminal(t, long)
	for _, job := range []*Job{queued, other} {
		if snap := waitTerminal(t, job); snap.State != StateDone {
			t.Errorf("%s: state %q", job.ID, snap.State)
		}
	}
}

// TestServeResultCache checks an identical resubmission settles from
// the cache without running: instant done, CacheHit set, no phases,
// and the same answer. The key is the resolved config, so a spec that
// spells the defaults differently still hits.
func TestServeResultCache(t *testing.T) {
	s := newTestServer(t, Options{Workers: 4})

	first, err := s.Submit(JobSpec{App: "nq", Size: 9,
		Config: rips.ConfigJSON{Procs: 2, Backend: "parallel"}})
	if err != nil {
		t.Fatal(err)
	}
	fs := waitTerminal(t, first)
	if fs.State != StateDone || fs.Result == nil || fs.Result.AppResult != 352 {
		t.Fatalf("first run: state=%q result=%+v", fs.State, fs.Result)
	}
	if fs.CacheHit {
		t.Error("first run marked as cache hit")
	}

	// Same workload, defaults spelled implicitly: backend omitted
	// resolves to parallel, so the canonical key matches.
	second, err := s.Submit(JobSpec{App: "nq", Size: 9,
		Config: rips.ConfigJSON{Procs: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ss := waitTerminal(t, second)
	if ss.State != StateDone || !ss.CacheHit {
		t.Fatalf("resubmission: state=%q cacheHit=%v", ss.State, ss.CacheHit)
	}
	if len(ss.Phases) != 0 {
		t.Errorf("cached settle recorded %d phases", len(ss.Phases))
	}
	if ss.Result == nil || ss.Result.AppResult != 352 {
		t.Errorf("cached result %+v", ss.Result)
	}

	// A different size must miss.
	third, err := s.Submit(JobSpec{App: "nq", Size: 8,
		Config: rips.ConfigJSON{Procs: 2, Backend: "parallel"}})
	if err != nil {
		t.Fatal(err)
	}
	if ts := waitTerminal(t, third); ts.CacheHit {
		t.Error("different size hit the cache")
	}

	_, cache, _ := s.Stats()
	if cache.Hits == 0 || cache.Entries == 0 {
		t.Errorf("cache stats %+v, want hits and entries > 0", cache)
	}
}

// TestServeSSELateSubscriber is the regression test for the
// exactly-once terminal delivery bug: a subscriber attaching after the
// job completed must receive the terminal result event exactly once
// and then see the stream close.
func TestServeSSELateSubscriber(t *testing.T) {
	s := newTestServer(t, Options{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	job, err := s.Submit(JobSpec{App: "nq", Size: 9,
		Config: rips.ConfigJSON{Procs: 2, Backend: "parallel"}})
	if err != nil {
		t.Fatal(err)
	}
	if snap := waitTerminal(t, job); snap.State != StateDone {
		t.Fatalf("job state %q", snap.State)
	}

	// Attach strictly after completion; the stream must replay history
	// and deliver one terminal frame.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()

	results := 0
	var result rips.ResultJSON
	scanner := bufio.NewScanner(resp.Body)
	event := ""
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if event == "result" {
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &result); err != nil {
					t.Fatal(err)
				}
				results++
			}
			if event == "error" {
				t.Fatalf("error event on a done job: %s", line)
			}
		}
	}
	// The server closes the stream after the terminal event, so the
	// scan loop ending is the exactly-once check's other half.
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if results != 1 {
		t.Fatalf("late subscriber saw %d result events, want exactly 1", results)
	}
	if result.AppResult != 352 {
		t.Errorf("late subscriber result %d, want 352", result.AppResult)
	}
}

// TestServeSSEAcrossPreemption streams a job that gets preempted
// mid-run: the phase buffer resets under the subscriber, the stream
// must follow the new attempt (no stale-offset panic, no duplicate
// terminal) and still end with the correct answer.
func TestServeSSEAcrossPreemption(t *testing.T) {
	s := newTestServer(t, Options{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	low, err := s.Submit(JobSpec{App: "nq", Size: 13, Tenant: "batch", Priority: "low",
		Config: rips.ConfigJSON{Procs: 4, Backend: "parallel"}})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + low.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()

	waitState(t, low, 30*time.Second, func(s Snapshot) bool { return s.State == StateRunning })
	high, err := s.Submit(JobSpec{App: "nq", Size: 8, Tenant: "urgent", Priority: "high",
		Config: rips.ConfigJSON{Procs: 4, Backend: "parallel"}})
	if err != nil {
		t.Fatal(err)
	}

	results := 0
	var result rips.ResultJSON
	scanner := bufio.NewScanner(resp.Body)
	event := ""
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if event == "result" {
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &result); err != nil {
					t.Fatal(err)
				}
				results++
			}
			if event == "error" {
				t.Fatalf("error event on preempted job: %s", line)
			}
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if results != 1 {
		t.Fatalf("stream across preemption carried %d result events, want 1", results)
	}
	if result.AppResult != 73712 {
		t.Errorf("preempted job streamed result %d, want 73712", result.AppResult)
	}

	if hs := waitTerminal(t, high); hs.State != StateDone || hs.Result == nil || hs.Result.AppResult != 92 {
		t.Errorf("high job: %+v", hs)
	}
	ls := waitTerminal(t, low)
	if ls.Preemptions == 0 {
		t.Skip("high job fit without preempting (scheduler raced); preemption covered elsewhere")
	}
}

// TestServeStatsHTTP checks GET /v1/stats reports the pool, every
// priority lane by name, tenants, and cache counters, and that job
// documents carry tenant and priority attribution.
func TestServeStatsHTTP(t *testing.T) {
	s := newTestServer(t, Options{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"app": "nq", "size": 9, "tenant": "acme", "priority": "high", "config": {"procs": 2, "backend": "parallel"}}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted JobJSON
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if submitted.Tenant != "acme" || submitted.Priority != "high" {
		t.Errorf("submission echo tenant=%q priority=%q", submitted.Tenant, submitted.Priority)
	}

	job, ok := s.Job(submitted.ID)
	if !ok {
		t.Fatal("submitted job not in table")
	}
	waitTerminal(t, job)

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var stats StatsJSON
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()

	if stats.Workers != 4 || stats.PoolFree != 4 {
		t.Errorf("stats workers=%d pool_free=%d, want 4/4 after drain-down", stats.Workers, stats.PoolFree)
	}
	for _, p := range rips.Priorities() {
		if _, ok := stats.Lanes[p.String()]; !ok {
			t.Errorf("stats missing lane %q", p)
		}
	}
	if stats.Dispatches == 0 {
		t.Error("stats dispatches = 0 after a completed job")
	}
	if stats.Cache.Max != tenant.DefaultCacheEntries {
		t.Errorf("cache max %d, want default %d", stats.Cache.Max, tenant.DefaultCacheEntries)
	}
}
