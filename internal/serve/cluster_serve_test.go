package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rips"
	"rips/internal/app"
	"rips/internal/cluster"
)

// startServeCluster brings up a k-node in-memory cluster for serve
// tests, joined into a ring, and returns the nodes.
func startServeCluster(t *testing.T, k int) []*cluster.Node {
	t.Helper()
	tr := cluster.NewMemTransport()
	nodes := make([]*cluster.Node, 0, k)
	for i := 0; i < k; i++ {
		n, err := cluster.Start(cluster.Options{
			Addr:              fmt.Sprintf("mem://serve%d", i),
			Transport:         tr,
			HeartbeatInterval: 20 * time.Millisecond,
			HeartbeatTimeout:  500 * time.Millisecond,
			StabilizeInterval: 40 * time.Millisecond,
			DialTimeout:       500 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("start cluster node %d: %v", i, err)
		}
		t.Cleanup(func() { _ = n.Close() })
		nodes = append(nodes, n)
		if i > 0 {
			if err := n.Join(nodes[0].Addr()); err != nil {
				t.Fatalf("join node %d: %v", i, err)
			}
		}
	}
	return nodes
}

// TestServeClusterJob is the unified-API acceptance test at the serve
// layer: a submission with "backend": "cluster" runs through the
// server's cluster node across three processes and settles done with
// the exact sequential answer in its rips-result/v1 document.
func TestServeClusterJob(t *testing.T) {
	nodes := startServeCluster(t, 3)
	s := newTestServer(t, Options{Workers: 2, Cluster: nodes[0]})

	a, err := rips.LookupApp("nq", 8)
	if err != nil {
		t.Fatal(err)
	}
	prof := app.Measure(a)

	job, err := s.Submit(JobSpec{App: "nq", Size: 8, Config: rips.ConfigJSON{Backend: "cluster"}})
	if err != nil {
		t.Fatal(err)
	}
	snap := waitTerminal(t, job)
	if snap.State != StateDone {
		t.Fatalf("cluster job ended %q (err %q)", snap.State, snap.Err)
	}
	if snap.Result == nil {
		t.Fatal("done cluster job has no result document")
	}
	if snap.Result.AppResult != prof.Result {
		t.Errorf("app result %d, want %d", snap.Result.AppResult, prof.Result)
	}
	if snap.Result.Tasks != int64(prof.Tasks) {
		t.Errorf("tasks %d, want %d", snap.Result.Tasks, prof.Tasks)
	}
	if snap.Result.Config.Backend != "cluster" {
		t.Errorf("result config echoes backend %q", snap.Result.Config.Backend)
	}

	// An identical resubmission must come straight from the result
	// cache: cluster results are cached like local ones.
	again, err := s.Submit(JobSpec{App: "nq", Size: 8, Config: rips.ConfigJSON{Backend: "cluster"}})
	if err != nil {
		t.Fatal(err)
	}
	snap = waitTerminal(t, again)
	if snap.State != StateDone || !snap.CacheHit {
		t.Errorf("resubmission state %q cacheHit %v, want done from cache", snap.State, snap.CacheHit)
	}
}

// TestServeClusterNotConfigured pins the failure mode of a cluster
// submission to a stand-alone ripsd: a descriptive rejection at
// submit, and 404 from GET /v1/cluster.
func TestServeClusterNotConfigured(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	_, err := s.Submit(JobSpec{App: "nq", Size: 8, Config: rips.ConfigJSON{Backend: "cluster"}})
	if err == nil || !strings.Contains(err.Error(), "not part of a cluster") {
		t.Errorf("submit to a non-cluster server: %v", err)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /v1/cluster = %d, want 404", resp.StatusCode)
	}
}

// TestServeClusterEndpoint pins GET /v1/cluster on a clustered server:
// the ring membership document with this node marked self.
func TestServeClusterEndpoint(t *testing.T) {
	nodes := startServeCluster(t, 3)
	s := newTestServer(t, Options{Workers: 2, Cluster: nodes[1]})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/cluster = %d, want 200", resp.StatusCode)
	}
	var st cluster.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Addr != nodes[1].Addr() || st.Wire == "" {
		t.Errorf("status header wrong: %+v", st)
	}
	if len(st.Members) != 3 {
		t.Fatalf("status lists %d members, want 3", len(st.Members))
	}
	selfs := 0
	for _, m := range st.Members {
		if m.Self {
			selfs++
			if m.Addr != nodes[1].Addr() {
				t.Errorf("self marker on %q, want %q", m.Addr, nodes[1].Addr())
			}
		}
		if m.RingID == "" {
			t.Errorf("member %q has no ring position", m.Addr)
		}
	}
	if selfs != 1 {
		t.Errorf("%d members marked self, want exactly 1", selfs)
	}
}

// TestServeSubmitStrictDecode pins that POST /v1/jobs uses the strict
// rips-job/v1 decoder: unknown fields, schema skew and trailing bytes
// are 400s, not silently-defaulted runs.
func TestServeSubmitStrictDecode(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for name, body := range map[string]string{
		"unknown field":  `{"app": "nq", "procs": 4}`,
		"schema skew":    `{"schema": "rips-job/v9", "app": "nq"}`,
		"trailing bytes": `{"app": "nq"}{}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}
