//ripslint:allow-file wallclock the serving frontend timestamps job lifecycles with real time by design; scheduling decisions inside runs remain deterministic

// Package serve is the scheduler-as-a-service frontend: a long-running
// server that owns one shared Parallel worker pool, accepts workload
// submissions, multiplexes them onto the pool one run at a time (the
// pool's cores are the scarce resource; the admission queue is the
// paper's "incremental scheduling" arrival stream), and streams each
// job's per-phase progress and final rips-result/v1 document to
// clients over SSE.
//
// The server is deliberately a thin shell over the public rips API:
// submissions decode to rips.Config, run through rips.RunProfiledContext
// with the job's context, progress arrives through rips.Config.OnPhase,
// and cancellation — client disconnect, explicit cancel, or drain —
// travels the same context path every library caller uses. Server-level
// tests assert a served answer is bit-identical to a direct RunContext.
package serve

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"rips"
	"rips/internal/exp"
)

// Options configures a Server.
type Options struct {
	// Workers sizes the shared Parallel worker pool (required, >= 1).
	// A submission's machine must fit the pool.
	Workers int
	// QueueLimit bounds the admission queue: submissions beyond the
	// limit are rejected immediately (HTTP 503) instead of queueing
	// without bound. Zero means DefaultQueueLimit.
	QueueLimit int
	// MaxBodyBytes bounds a submission's JSON body. Zero means
	// DefaultMaxBodyBytes.
	MaxBodyBytes int64
}

// Defaults for Options zero values.
const (
	DefaultQueueLimit   = 64
	DefaultMaxBodyBytes = 1 << 20
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrDraining rejects submissions while the server drains.
	ErrDraining = errors.New("serve: server is draining")
	// ErrQueueFull rejects submissions when the admission queue is at
	// its limit.
	ErrQueueFull = errors.New("serve: admission queue is full")
)

// Server owns the pool, the job table and the admission queue. Create
// with NewServer, expose with Handler, stop with Drain/Close.
type Server struct {
	opts Options
	pool *rips.Pool

	// baseCtx parents every job context, so Close cancels all jobs.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// queue is the bounded admission queue; the executor goroutine
	// drains it one job at a time onto the pool. execDone closes when
	// the executor exits (after the queue closes on drain).
	queue    chan *Job
	execDone chan struct{}

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for deterministic listing
	nextID   int
	draining bool

	// profiles caches sequential app profiles by app/size key: Measure
	// runs the whole workload on one goroutine, far too expensive to
	// repeat for every submission of the same workload.
	profMu   sync.Mutex
	profiles map[string]rips.Profile
}

// NewServer starts the worker pool and the executor.
func NewServer(opts Options) (*Server, error) {
	if opts.QueueLimit == 0 {
		opts.QueueLimit = DefaultQueueLimit
	}
	if opts.MaxBodyBytes == 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	pool, err := rips.NewPool(opts.Workers)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background()) //ripslint:allow ctxflow the server IS a lifecycle root: this context parents every job and is canceled by Close
	s := &Server{
		opts:       opts,
		pool:       pool,
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *Job, opts.QueueLimit),
		execDone:   make(chan struct{}),
		jobs:       make(map[string]*Job),
		profiles:   make(map[string]rips.Profile),
	}
	go s.executor()
	return s, nil
}

// Workers returns the shared pool's size.
func (s *Server) Workers() int { return s.pool.Workers() }

// Submit validates a submission, admits it to the queue and returns
// the queued job. Validation failures are plain errors (HTTP 400);
// ErrDraining and ErrQueueFull are admission failures (HTTP 503).
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	cfg, a, err := s.resolve(&spec)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	s.nextID++
	id := "job-" + strconv.Itoa(s.nextID)
	ctx, cancel := context.WithCancel(s.baseCtx)
	job := &Job{
		ID:        id,
		Spec:      spec,
		cfg:       cfg,
		app:       a,
		ctx:       ctx,
		cancel:    cancel,
		state:     StateQueued,
		notify:    make(chan struct{}),
		submitted: time.Now(),
	}
	select {
	case s.queue <- job:
	default:
		cancel()
		return nil, ErrQueueFull
	}
	s.jobs[id] = job
	s.order = append(s.order, id)
	return job, nil
}

// resolve decodes and validates a submission against the server's
// defaults: the workload must exist, the backend defaults to Parallel
// on the shared pool, and a zero machine size defaults to the whole
// pool. The returned Config carries no hooks yet — runJob wires those.
func (s *Server) resolve(spec *JobSpec) (rips.Config, rips.App, error) {
	a, err := exp.ParScaleApp(spec.App, spec.Size)
	if err != nil {
		return rips.Config{}, nil, fmt.Errorf("serve: %w", err)
	}
	cfg, err := spec.Config.Decode()
	if err != nil {
		return rips.Config{}, nil, fmt.Errorf("serve: %w", err)
	}
	if spec.Config.Backend == "" {
		// The server's raison d'être is the shared pool; simulation is
		// opt-in ("backend": "simulate").
		cfg.Backend = rips.Parallel
	}
	if cfg.Procs == 0 && cfg.Rows == 0 && cfg.Cols == 0 {
		cfg.Procs = s.pool.Workers()
	}
	if cfg.Backend == rips.Parallel {
		cfg.Pool = s.pool
	}
	if err := cfg.Validate(); err != nil {
		return rips.Config{}, nil, err
	}
	return cfg, a, nil
}

// Job returns a job by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// executor is the single goroutine multiplexing the queue onto the
// pool. One job runs at a time: the pool's cores are one machine, and
// a run occupies all of it (rips.Pool serializes anyway; doing it here
// keeps queue order and makes the running job observable).
func (s *Server) executor() {
	defer close(s.execDone)
	for job := range s.queue {
		s.runJob(job)
	}
}

// profile returns the cached sequential profile for a workload,
// measuring it on first use.
func (s *Server) profile(spec JobSpec, a rips.App) rips.Profile {
	key := spec.App + "/" + strconv.Itoa(spec.Size)
	s.profMu.Lock()
	p, ok := s.profiles[key]
	s.profMu.Unlock()
	if ok {
		return p
	}
	// Measured outside the lock: profiles of large workloads take real
	// time, and concurrent misses for the same key are just redundant,
	// not wrong (Measure is deterministic).
	p = rips.Measure(a)
	s.profMu.Lock()
	s.profiles[key] = p
	s.profMu.Unlock()
	return p
}

// runJob executes one admitted job on the pool and settles its state.
func (s *Server) runJob(job *Job) {
	if job.ctx.Err() != nil {
		// Canceled while still queued: never ran.
		job.settle(StateCanceled, nil, job.ctx.Err())
		return
	}
	job.markRunning()
	cfg := job.cfg
	cfg.OnPhase = job.appendPhase
	p := s.profile(job.Spec, job.app)
	res, err := rips.RunProfiledContext(job.ctx, job.app, p, cfg)
	doc := rips.EncodeResult(job.cfg, res)
	switch {
	case res.Canceled:
		job.settle(StateCanceled, &doc, err)
	case err != nil:
		job.settle(StateFailed, nil, err)
	default:
		job.settle(StateDone, &doc, nil)
	}
}

// Drain stops admission (new submissions get ErrDraining), lets the
// queued and running jobs finish, and returns when the executor is
// idle or the context expires — the SIGTERM path. Safe to call more
// than once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		// Submit holds the same mutex, so no send can race this close.
		close(s.queue)
	}
	s.mu.Unlock()
	select {
	case <-s.execDone:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close drains with the given context, then cancels whatever is still
// running and releases the pool. The forceful companion to Drain: a
// expired drain context turns into cancellation of the running job.
func (s *Server) Close(ctx context.Context) error {
	err := s.Drain(ctx)
	s.baseCancel()
	<-s.execDone
	s.pool.Close()
	return err
}
