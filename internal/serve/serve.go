//ripslint:allow-file wallclock the serving frontend timestamps job lifecycles with real time by design; scheduling decisions inside runs remain deterministic

// Package serve is the scheduler-as-a-service frontend: a long-running
// server that owns one shared Parallel worker pool, accepts workload
// submissions from many tenants, and multiplexes them onto the pool
// (the pool's cores are the scarce resource; the admission stream is
// the paper's "incremental scheduling" arrival stream). Each job's
// per-phase progress and final rips-result/v1 document stream to
// clients over SSE.
//
// Admission is delegated to the internal/tenant arbiter: jobs carry a
// tenant and a priority lane, tenants share the pool by weighted
// deficit round-robin with a bounded per-tenant queue, sub-pool leases
// (rips.Pool.Split) run several small jobs concurrently, and a
// higher-lane job that cannot fit preempts running lower-lane jobs —
// the run is canceled through its context, requeued, and re-run, so
// its final answer is bit-identical to an uncontended run. Terminal
// results are memoized in a cache keyed on the canonical resolved
// config encoding; a byte-identical resubmission settles on arrival
// without occupying a worker.
//
// The server is deliberately a thin shell over the public rips API:
// submissions decode to rips.Config, run through rips.RunProfiledContext
// with the job's context, progress arrives through rips.Config.OnPhase,
// and cancellation — client disconnect, explicit cancel, preemption, or
// drain — travels the same context path every library caller uses.
// Server-level tests assert a served answer is bit-identical to a
// direct RunContext.
package serve

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"rips"
	"rips/internal/cluster"
	"rips/internal/metrics"
	"rips/internal/tenant"
)

// Options configures a Server.
type Options struct {
	// Workers sizes the shared Parallel worker pool (required, >= 1).
	// A submission's machine must fit the pool.
	Workers int
	// Domains partitions the pool's workers into affinity domains
	// (rips.NewPoolDomains): sub-pool leases for small jobs then land
	// inside one domain's cache hierarchy whenever the free set allows.
	// Zero auto-detects the machine's domains; negative is rejected.
	Domains int
	// QueueLimit bounds each tenant's queued (not yet running) jobs:
	// submissions beyond the limit are rejected immediately (HTTP 503)
	// instead of queueing without bound. The bound is per tenant — one
	// tenant's backlog never locks others out. Zero means
	// DefaultQueueLimit.
	QueueLimit int
	// Weights maps tenant names to fairness weights (default 1): a
	// weight-2 tenant receives twice the dispatch budget of a weight-1
	// tenant under saturation.
	Weights map[string]int
	// CacheEntries bounds the result cache. Zero means the tenant
	// package's default.
	CacheEntries int
	// MaxBodyBytes bounds a submission's JSON body. Zero means
	// DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// Cluster, when set, is this process's cluster node: submissions
	// with "backend": "cluster" run through it (Node.Submit routes to
	// the job's ring coordinator), and GET /v1/cluster reports its
	// membership. Nil means cluster submissions are rejected.
	Cluster *cluster.Node
}

// Defaults for Options zero values.
const (
	DefaultQueueLimit   = 64
	DefaultMaxBodyBytes = 1 << 20
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrDraining rejects submissions while the server drains.
	ErrDraining = errors.New("serve: server is draining")
	// ErrQueueFull rejects submissions when the submitting tenant's
	// admission queue is at its limit.
	ErrQueueFull = errors.New("serve: admission queue is full")
)

// Server owns the pool, the job table, the tenant arbiter and the
// result cache. Create with NewServer, expose with Handler, stop with
// Drain/Close.
type Server struct {
	opts    Options
	pool    *rips.Pool
	arb     *tenant.Arbiter
	cache   *tenant.Cache
	metrics *metricsRegistry

	// baseCtx parents every job context, so Close cancels all jobs.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// jobsWG counts arbiter-admitted jobs that have not settled; Drain
	// waits on it. idle closes when the post-drain wait finishes.
	jobsWG sync.WaitGroup
	idle   chan struct{}

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for deterministic listing
	nextID   int
	draining bool

	// profiles caches sequential app profiles by app/size key: Measure
	// runs the whole workload on one goroutine, far too expensive to
	// repeat for every submission of the same workload.
	profMu   sync.Mutex
	profiles map[string]rips.Profile
}

// NewServer starts the worker pool and the tenant arbiter.
func NewServer(opts Options) (*Server, error) {
	if opts.QueueLimit == 0 {
		opts.QueueLimit = DefaultQueueLimit
	}
	if opts.MaxBodyBytes == 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	pool, err := rips.NewPoolDomains(opts.Workers, opts.Domains)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background()) //ripslint:allow ctxflow the server IS a lifecycle root: this context parents every job and is canceled by Close
	s := &Server{
		opts:       opts,
		pool:       pool,
		cache:      tenant.NewCache(opts.CacheEntries),
		metrics:    newMetricsRegistry(),
		baseCtx:    ctx,
		baseCancel: cancel,
		idle:       make(chan struct{}),
		jobs:       make(map[string]*Job),
		profiles:   make(map[string]rips.Profile),
	}
	arb, err := tenant.New(tenant.Options{
		Capacity:   opts.Workers,
		DepthLimit: opts.QueueLimit,
		Weights:    opts.Weights,
		Start:      s.startTicket,
		Preempt:    s.preemptTicket,
	})
	if err != nil {
		cancel()
		pool.Close()
		return nil, err
	}
	s.arb = arb
	return s, nil
}

// Workers returns the shared pool's size.
func (s *Server) Workers() int { return s.pool.Workers() }

// poolBacked reports whether a backend runs on real pool workers (and
// so must be charged per node, wired to the shared pool, and leased a
// sub-pool per attempt) rather than on the virtual-time simulator.
func poolBacked(b rips.Backend) bool {
	return b == rips.Parallel || b == rips.Hybrid
}

// Stats snapshots the serving state for GET /v1/stats.
func (s *Server) Stats() (tenant.Stats, tenant.CacheStats, int) {
	return s.arb.Stats(), s.cache.Stats(), s.pool.Free()
}

// Submit validates a submission, admits it to its tenant's queue and
// returns the job. Validation failures are plain errors (HTTP 400);
// ErrDraining and ErrQueueFull are admission failures (HTTP 503). A
// submission whose resolved config matches a cached result settles as
// done immediately without occupying the pool.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	cfg, a, err := s.resolve(&spec)
	if err != nil {
		return nil, err
	}
	ten := spec.Tenant
	if ten == "" {
		ten = DefaultTenant
	}
	prio, err := rips.ParsePriority(spec.Priority)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	// A pool-backed run (Parallel or Hybrid) occupies one pool worker
	// per machine node; a Simulate run's nodes are goroutines of the
	// virtual-time engine, so it is charged a single admission slot.
	cost := 1
	if poolBacked(cfg.Backend) {
		if cost, err = cfg.Nodes(); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	s.nextID++
	id := "job-" + strconv.Itoa(s.nextID)
	ctx, cancel := context.WithCancel(s.baseCtx)
	job := &Job{
		ID:        id,
		Spec:      spec,
		cfg:       cfg,
		app:       a,
		tenant:    ten,
		prio:      prio,
		cacheKey:  tenant.Key(spec.App, spec.Size, rips.EncodeConfig(cfg)),
		metrics:   s.metrics,
		ctx:       ctx,
		cancel:    cancel,
		state:     StateQueued,
		notify:    make(chan struct{}),
		submitted: time.Now(),
	}

	if doc, ok := s.cache.Get(job.cacheKey); ok {
		s.jobs[id] = job
		s.order = append(s.order, id)
		job.settleCached(&doc)
		return job, nil
	}

	tk := &tenant.Ticket{ID: id, Tenant: ten, Lane: prio, Workers: cost, Ref: job}
	// Admitted before arb.Submit: the Start callback can fire (and the
	// job can even settle) inside the Submit call.
	s.jobsWG.Add(1)
	if err := s.arb.Submit(tk); err != nil {
		s.jobsWG.Done()
		cancel()
		var sat *tenant.SaturatedError
		switch {
		case errors.As(err, &sat):
			return nil, fmt.Errorf("%w: tenant %q has %d jobs queued", ErrQueueFull, sat.Tenant, sat.Depth)
		case errors.Is(err, tenant.ErrDraining):
			return nil, ErrDraining
		default:
			return nil, fmt.Errorf("serve: %w", err)
		}
	}
	s.jobs[id] = job
	s.order = append(s.order, id)
	return job, nil
}

// resolve decodes and validates a submission against the server's
// defaults: the workload must exist, the backend defaults to Parallel
// on the shared pool, and a zero machine size defaults to the whole
// pool. The returned Config carries no hooks yet — runTicket wires
// those, and swaps the root pool for the job's sub-pool lease.
func (s *Server) resolve(spec *JobSpec) (rips.Config, rips.App, error) {
	a, err := rips.LookupApp(spec.App, spec.Size)
	if err != nil {
		return rips.Config{}, nil, fmt.Errorf("serve: %w", err)
	}
	cfg, err := spec.Config.Decode()
	if err != nil {
		return rips.Config{}, nil, fmt.Errorf("serve: %w", err)
	}
	if spec.Config.Backend == "" {
		// The server's raison d'être is the shared pool; simulation is
		// opt-in ("backend": "simulate").
		cfg.Backend = rips.Parallel
	}
	if cfg.Backend == rips.Cluster && s.opts.Cluster == nil {
		return rips.Config{}, nil, fmt.Errorf("serve: this server is not part of a cluster (start ripsd with -cluster)")
	}
	if cfg.Procs == 0 && cfg.Rows == 0 && cfg.Cols == 0 {
		cfg.Procs = s.pool.Workers()
	}
	if poolBacked(cfg.Backend) {
		cfg.Pool = s.pool
	}
	if err := cfg.Validate(); err != nil {
		return rips.Config{}, nil, err
	}
	return cfg, a, nil
}

// Job returns a job by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// startTicket is the arbiter's Start callback: spawn the run and
// return (the arbiter requires Start not to block).
func (s *Server) startTicket(t *tenant.Ticket) {
	go s.runTicket(t)
}

// preemptTicket is the arbiter's Preempt callback: cancel the job's
// current attempt; runTicket requeues it when the run unwinds.
func (s *Server) preemptTicket(t *tenant.Ticket) {
	t.Ref.(*Job).requestPreempt()
}

// profile returns the cached sequential profile for a workload,
// measuring it on first use.
func (s *Server) profile(spec JobSpec, a rips.App) rips.Profile {
	key := spec.App + "/" + strconv.Itoa(spec.Size)
	s.profMu.Lock()
	p, ok := s.profiles[key]
	s.profMu.Unlock()
	if ok {
		return p
	}
	// Measured outside the lock: profiles of large workloads take real
	// time, and concurrent misses for the same key are just redundant,
	// not wrong (Measure is deterministic).
	p = rips.Measure(a)
	s.profMu.Lock()
	s.profiles[key] = p
	s.profMu.Unlock()
	return p
}

// runTicket executes one dispatched attempt of a job on a sub-pool
// lease sized to its machine, then settles, fails, requeues (preempt)
// or retires it with the arbiter. It runs on its own goroutine, once
// per dispatch — a preempted job passes through here again.
func (s *Server) runTicket(t *tenant.Ticket) {
	job := t.Ref.(*Job)
	if job.ctx.Err() != nil {
		// Canceled while still queued: never ran.
		s.finish(t, job, StateCanceled, nil, job.ctx.Err())
		return
	}
	runCtx := job.beginAttempt()
	cfg := job.cfg
	if cfg.Backend == rips.Cluster {
		s.runClusterAttempt(t, job, runCtx)
		return
	}
	cfg.OnPhase = job.appendPhase
	var sub *rips.Pool
	if poolBacked(cfg.Backend) {
		var err error
		if sub, err = s.pool.Split(t.Workers); err != nil {
			// The arbiter's ledger guarantees the lease, so this is a
			// closing pool (or a bug): fail the job rather than wedge.
			job.endAttempt()
			s.finish(t, job, StateFailed, nil, err)
			return
		}
		cfg.Pool = sub
	}
	p := s.profile(job.Spec, job.app)
	res, err := rips.RunProfiledContext(runCtx, job.app, p, cfg)
	if sub != nil {
		// Before Done/Yielded: the workers must be back in the root's
		// free set before the arbiter can re-lease them.
		sub.Release()
	}
	doc := rips.EncodeResult(job.cfg, res)
	preempted := job.endAttempt()
	switch {
	case res.Canceled && preempted && job.ctx.Err() == nil:
		// Preempted, not canceled by the owner: back to the queue. The
		// partial document is discarded — the next attempt recomputes
		// the full answer, bit-identical to an uncontended run.
		job.markRequeued()
		s.arb.Yielded(t)
	case res.Canceled:
		s.finish(t, job, StateCanceled, &doc, err)
	case err != nil:
		s.finish(t, job, StateFailed, nil, err)
	default:
		s.cache.Put(job.cacheKey, doc)
		s.finish(t, job, StateDone, &doc, nil)
	}
}

// runClusterAttempt executes one attempt of a cluster-backend job:
// the node's Submit routes the rips-job/v1 document to its ring
// coordinator and blocks until the cluster answers. The job occupies
// one admission slot, not a pool lease — the work runs on the cluster
// processes, not the local pool — and streams no phase events: the
// phase protocol runs between processes, out of OnPhase's reach.
// Cancellation still travels the same context path, surfacing as a
// Canceled partial result.
func (s *Server) runClusterAttempt(t *tenant.Ticket, job *Job, runCtx context.Context) {
	p := s.profile(job.Spec, job.app)
	cres, err := s.opts.Cluster.Submit(runCtx, job.Spec)
	res := clusterResult(cres, p)
	doc := rips.EncodeResult(job.cfg, res)
	preempted := job.endAttempt()
	switch {
	case res.Canceled && preempted && job.ctx.Err() == nil:
		job.markRequeued()
		s.arb.Yielded(t)
	case res.Canceled:
		s.finish(t, job, StateCanceled, &doc, err)
	case err != nil:
		s.finish(t, job, StateFailed, nil, err)
	default:
		s.cache.Put(job.cacheKey, doc)
		s.finish(t, job, StateDone, &doc, nil)
	}
}

// clusterResult folds a cluster outcome into the rips-result/v1 shape:
// counters come from the members' sums, the sequential baseline from
// the cached profile, and the wall-clock efficiency uses the same
// busy/(N*wall) definition as the Parallel backend.
func clusterResult(c cluster.Result, p rips.Profile) rips.Result {
	res := rips.Result{
		Tasks:     c.Generated,
		Nonlocal:  c.Nonlocal,
		Phases:    c.Phases,
		SeqTime:   p.Work,
		Wall:      c.Wall,
		AppResult: c.AppResult,
		Canceled:  c.Canceled,
	}
	if !c.Canceled {
		res.Efficiency = metrics.WallEfficiency(c.Busy, c.Workers, c.Wall)
		res.Speedup = res.Efficiency * float64(c.Workers)
	}
	return res
}

// finish settles a job terminally and retires its ticket.
func (s *Server) finish(t *tenant.Ticket, job *Job, state string, doc *rips.ResultJSON, err error) {
	job.settle(state, doc, err)
	s.arb.Done(t)
	s.jobsWG.Done()
}

// Drain stops admission (new submissions get ErrDraining), lets the
// queued and running jobs finish, and returns when the server is idle
// or the context expires — the SIGTERM path. Safe to call more than
// once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.arb.Drain()
		go func() {
			s.jobsWG.Wait()
			close(s.idle)
		}()
	}
	s.mu.Unlock()
	select {
	case <-s.idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close drains with the given context, then cancels whatever is still
// running and releases the pool. The forceful companion to Drain: an
// expired drain context turns into cancellation of the running jobs.
func (s *Server) Close(ctx context.Context) error {
	err := s.Drain(ctx)
	s.baseCancel()
	<-s.idle
	s.pool.Close()
	return err
}
