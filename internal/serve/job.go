//ripslint:allow-file wallclock job lifecycle timestamps are wall-clock by design; they never influence scheduling

package serve

import (
	"context"
	"sync"
	"time"

	"rips"
)

// Job states, in lifecycle order. queued → running → one of the
// terminal three.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// maxPhaseHistory caps the per-job phase buffer so a long run cannot
// grow server memory without bound; once full, older history stays and
// newer phases are counted in Dropped. SSE clients connected before
// the cap still receive every phase live.
const maxPhaseHistory = 4096

// JobSpec is the submission body for POST /v1/jobs: a named workload
// from the parscale registry (nq, ida, gromos) at a size, plus a
// rips-result/v1 config object. Zero-value fields take server
// defaults: the family's default size, the Parallel backend, a
// machine the size of the whole pool.
type JobSpec struct {
	App    string          `json:"app"`
	Size   int             `json:"size,omitempty"`
	Config rips.ConfigJSON `json:"config"`
}

// Job is one submitted run. The exported fields are immutable after
// Submit; everything mutable lives behind mu and is read via Snapshot.
type Job struct {
	ID   string
	Spec JobSpec

	cfg    rips.Config
	app    rips.App
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     string
	phases    []rips.PhaseInfo
	dropped   int
	result    *rips.ResultJSON
	errMsg    string
	notify    chan struct{} // closed and replaced on every state/phase change
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// Snapshot is a consistent copy of a job's mutable state, safe to
// read and serialize after the lock is released. Phases aliases the
// job's append-only history buffer — read-only by contract.
type Snapshot struct {
	ID        string
	Spec      JobSpec
	State     string
	Phases    []rips.PhaseInfo
	Dropped   int
	Result    *rips.ResultJSON
	Err       string
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
}

// Snapshot returns the job's current state plus the channel that will
// close on its next change — the pair an SSE stream needs to replay
// history and then wait without missing an update in between.
func (j *Job) Snapshot() (Snapshot, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Snapshot{
		ID:        j.ID,
		Spec:      j.Spec,
		State:     j.state,
		Phases:    j.phases[:len(j.phases):len(j.phases)],
		Dropped:   j.dropped,
		Result:    j.result,
		Err:       j.errMsg,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
	}, j.notify
}

// Terminal reports whether a state is final.
func Terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// Cancel requests cancellation: the job's context is canceled, which
// the backends observe at the next phase boundary (or the queue
// observes before the job starts). Idempotent; a no-op once terminal.
func (j *Job) Cancel() { j.cancel() }

// wake closes the current notify channel and installs a fresh one.
// Callers hold j.mu.
func (j *Job) wake() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// appendPhase is the rips.Config.OnPhase hook. It runs on the phase
// leader with the world stopped, so it only copies one struct into the
// buffer and flips the notify channel — never blocks.
func (j *Job) appendPhase(pi rips.PhaseInfo) {
	j.mu.Lock()
	if len(j.phases) < maxPhaseHistory {
		j.phases = append(j.phases, pi)
	} else {
		j.dropped++
	}
	j.wake()
	j.mu.Unlock()
}

// markRunning transitions queued → running.
func (j *Job) markRunning() {
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.wake()
	j.mu.Unlock()
}

// settle records the terminal state, the result document (when the run
// produced one — done always, canceled when a partial result exists)
// and the error text, then releases the job's context resources.
func (j *Job) settle(state string, doc *rips.ResultJSON, err error) {
	j.mu.Lock()
	j.state = state
	j.result = doc
	if err != nil {
		j.errMsg = err.Error()
	}
	j.finished = time.Now()
	j.wake()
	j.mu.Unlock()
	j.cancel()
}
