//ripslint:allow-file wallclock job lifecycle timestamps are wall-clock by design; they never influence scheduling

package serve

import (
	"context"
	"sync"
	"time"

	"rips"
)

// Job states, in lifecycle order. queued → running → one of the
// terminal three. A preempted job moves running → queued and runs
// again; preemption never produces a terminal state by itself.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// DefaultTenant is the fairness principal for submissions that name no
// tenant.
const DefaultTenant = "default"

// maxPhaseHistory caps the per-job phase buffer so a long run cannot
// grow server memory without bound; once full, older history stays and
// newer phases are counted in Dropped. SSE clients connected before
// the cap still receive every phase live.
const maxPhaseHistory = 4096

// JobSpec is the submission body for POST /v1/jobs: the rips-job/v1
// document — a workload family from the rips app registry at a size,
// plus a rips-result/v1 config object, attributed to a tenant in a
// priority lane. Zero-value fields take server defaults: the family's
// default size, the Parallel backend, a machine the size of the whole
// pool, the "default" tenant, the normal lane. The alias makes the
// sharing literal: the HTTP surface and cluster peer-forwarding
// (internal/cluster) decode the identical document, so a ripsd can
// forward a submission verbatim to a cluster coordinator.
type JobSpec = rips.JobSpec

// Job is one submitted run. The exported fields are immutable after
// Submit; everything mutable lives behind mu and is read via Snapshot.
type Job struct {
	ID   string
	Spec JobSpec

	cfg      rips.Config
	app      rips.App
	tenant   string
	prio     rips.Priority
	cacheKey string
	ctx      context.Context
	cancel   context.CancelFunc
	metrics  *metricsRegistry // set by Submit; nil in unit tests that build Jobs by hand

	mu           sync.Mutex
	state        string
	phases       []rips.PhaseInfo
	dropped      int
	attempt      int // bumps whenever the phase buffer resets (preempt requeue)
	preemptions  int
	preemptAsked bool               // a Preempt arrived for the current attempt
	runCancel    context.CancelFunc // cancels the current attempt only
	cacheHit     bool
	result       *rips.ResultJSON
	errMsg       string
	notify       chan struct{} // closed and replaced on every state/phase change
	submitted    time.Time
	started      time.Time
	finished     time.Time
	// lastElapsed is the previous phase's cumulative Elapsed within the
	// current attempt; the difference to the next phase's Elapsed is
	// the per-phase latency the metrics registry observes.
	lastElapsed time.Duration
}

// Snapshot is a consistent copy of a job's mutable state, safe to
// read and serialize after the lock is released. Phases aliases the
// job's append-only history buffer — read-only by contract. Attempt
// identifies which run attempt the buffer belongs to: it bumps exactly
// when the buffer resets, so a streaming reader that tracks it never
// indexes a stale offset into a fresh buffer.
type Snapshot struct {
	ID          string
	Spec        JobSpec
	Tenant      string
	Priority    rips.Priority
	State       string
	Phases      []rips.PhaseInfo
	Dropped     int
	Attempt     int
	Preemptions int
	CacheHit    bool
	Result      *rips.ResultJSON
	Err         string
	Submitted   time.Time
	Started     time.Time
	Finished    time.Time
}

// Snapshot returns the job's current state plus the channel that will
// close on its next change — the pair an SSE stream needs to replay
// history and then wait without missing an update in between.
func (j *Job) Snapshot() (Snapshot, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Snapshot{
		ID:          j.ID,
		Spec:        j.Spec,
		Tenant:      j.tenant,
		Priority:    j.prio,
		State:       j.state,
		Phases:      j.phases[:len(j.phases):len(j.phases)],
		Dropped:     j.dropped,
		Attempt:     j.attempt,
		Preemptions: j.preemptions,
		CacheHit:    j.cacheHit,
		Result:      j.result,
		Err:         j.errMsg,
		Submitted:   j.submitted,
		Started:     j.started,
		Finished:    j.finished,
	}, j.notify
}

// Terminal reports whether a state is final.
func Terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// Cancel requests cancellation: the job's context is canceled, which
// the backends observe at the next phase boundary (or the arbiter
// observes before the job starts). Idempotent; a no-op once terminal.
func (j *Job) Cancel() { j.cancel() }

// wake closes the current notify channel and installs a fresh one.
// Callers hold j.mu.
func (j *Job) wake() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// appendPhase is the rips.Config.OnPhase hook. It runs on the phase
// leader with the world stopped, so it only copies one struct into the
// buffer and flips the notify channel — never blocks.
func (j *Job) appendPhase(pi rips.PhaseInfo) {
	j.mu.Lock()
	if len(j.phases) < maxPhaseHistory {
		j.phases = append(j.phases, pi)
	} else {
		j.dropped++
	}
	// Elapsed is cumulative wall time per attempt on the Parallel
	// backend (zero on Simulate, which has no wall clock to observe):
	// the delta between consecutive phases is one phase latency.
	var phaseLat time.Duration
	if pi.Elapsed > 0 {
		phaseLat = pi.Elapsed - j.lastElapsed
		j.lastElapsed = pi.Elapsed
	}
	j.wake()
	j.mu.Unlock()
	if j.metrics != nil && phaseLat > 0 {
		j.metrics.observePhase(j.prio, phaseLat)
	}
}

// beginAttempt transitions to running and installs the attempt's
// cancel function, returning the context the run must use. A preempt
// request that raced ahead of the installation fires immediately, so
// the attempt is canceled at its first phase boundary instead of being
// lost.
func (j *Job) beginAttempt() context.Context {
	runCtx, cancel := context.WithCancel(j.ctx)
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.lastElapsed = 0 // Elapsed restarts from zero on every attempt
	j.runCancel = cancel
	if j.preemptAsked {
		cancel()
	}
	j.wake()
	j.mu.Unlock()
	return runCtx
}

// endAttempt retires the attempt's cancel function and consumes the
// preempt flag, reporting whether this attempt was asked to yield.
func (j *Job) endAttempt() bool {
	j.mu.Lock()
	preempted := j.preemptAsked
	j.preemptAsked = false
	if j.runCancel != nil {
		j.runCancel()
		j.runCancel = nil
	}
	j.mu.Unlock()
	return preempted
}

// requestPreempt is the arbiter's Preempt callback path: flag the
// current attempt and cancel its context. The run unwinds at its next
// phase boundary with a partial result, which runTicket turns into a
// requeue rather than a terminal state.
func (j *Job) requestPreempt() {
	j.mu.Lock()
	j.preemptAsked = true
	if j.runCancel != nil {
		j.runCancel()
	}
	j.mu.Unlock()
}

// markRequeued returns a preempted job to the queued state: the phase
// buffer resets (the next attempt replays from its own phase 1) and
// Attempt bumps in the same critical section so snapshot readers see
// the reset and the new attempt id atomically.
func (j *Job) markRequeued() {
	j.mu.Lock()
	j.state = StateQueued
	j.phases = nil
	j.dropped = 0
	j.attempt++
	j.preemptions++
	j.wake()
	j.mu.Unlock()
}

// settle records the terminal state, the result document (when the run
// produced one — done always, canceled when a partial result exists)
// and the error text, then releases the job's context resources.
func (j *Job) settle(state string, doc *rips.ResultJSON, err error) {
	j.mu.Lock()
	j.state = state
	j.result = doc
	if err != nil {
		j.errMsg = err.Error()
	}
	j.finished = time.Now()
	latency := j.finished.Sub(j.submitted)
	j.wake()
	j.mu.Unlock()
	if j.metrics != nil {
		j.metrics.observeJob(j.prio, state, latency, false)
	}
	j.cancel()
}

// settleCached settles a submission straight from the result cache: no
// run, no phases, done on arrival with the recorded document.
func (j *Job) settleCached(doc *rips.ResultJSON) {
	j.mu.Lock()
	j.state = StateDone
	j.result = doc
	j.cacheHit = true
	j.finished = time.Now()
	latency := j.finished.Sub(j.submitted)
	j.wake()
	j.mu.Unlock()
	if j.metrics != nil {
		j.metrics.observeJob(j.prio, StateDone, latency, true)
	}
	j.cancel()
}
