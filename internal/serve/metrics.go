package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"rips"
	"rips/internal/tenant"
)

// metricsPrefix namespaces every exposed metric; the underlying names
// come from the tenant adapter (tenant.Sample) or this file.
const metricsPrefix = "ripsd_"

// latencyBuckets are the shared histogram bounds in seconds,
// exponential ×4 from 100 µs. System phases on small machines land in
// the first few buckets, whole jobs in the later ones; one bucket
// vocabulary keeps the exposition simple and the two histograms
// comparable.
var latencyBuckets = []float64{
	0.0001, 0.0004, 0.0016, 0.0064, 0.0256,
	0.1024, 0.4096, 1.6384, 6.5536, 26.2144,
}

// histogram is a fixed-bucket cumulative histogram over
// latencyBuckets. The zero value is ready; the registry's lock
// serializes access.
type histogram struct {
	counts []uint64 // per-bucket (non-cumulative) counts, one per latencyBuckets entry
	sum    float64
	count  uint64
}

func (h *histogram) observe(sec float64) {
	if h.counts == nil {
		h.counts = make([]uint64, len(latencyBuckets))
	}
	h.sum += sec
	h.count++
	for i, b := range latencyBuckets {
		if sec <= b {
			h.counts[i]++
			return
		}
	}
}

// metricsRegistry accumulates the event-driven half of /metrics: the
// quantities that exist only at the moment they happen (a system phase
// completing, a job settling) and so cannot be recovered from a
// snapshot at scrape time. Everything snapshot-derivable (queue
// depths, pool state, admission counters) is deliberately NOT stored
// here — it is read fresh from Server.Stats at scrape, so /metrics and
// /v1/stats can never disagree.
type metricsRegistry struct {
	mu sync.Mutex
	// phaseLatency observes the wall-clock gap between consecutive
	// system phases of one attempt (Parallel backend; the Simulate
	// backend has no wall clock and is not observed), by priority lane.
	phaseLatency [tenant.NumLanes]histogram
	// jobDuration observes submit-to-settle latency by lane — the
	// end-to-end number a tenant experiences, queueing and preemption
	// re-runs included.
	jobDuration [tenant.NumLanes]histogram
	// jobsTotal counts settled jobs by terminal state.
	jobsTotal map[string]int64
	// cacheServedTotal counts the done jobs settled straight from the
	// result cache (a subset of jobsTotal["done"]).
	cacheServedTotal int64
}

func newMetricsRegistry() *metricsRegistry {
	return &metricsRegistry{jobsTotal: map[string]int64{}}
}

// observePhase records one phase-to-phase latency.
func (m *metricsRegistry) observePhase(lane rips.Priority, d time.Duration) {
	m.mu.Lock()
	m.phaseLatency[lane].observe(d.Seconds())
	m.mu.Unlock()
}

// observeJob records a settled job: terminal state, end-to-end
// latency, and whether the cache served it.
func (m *metricsRegistry) observeJob(lane rips.Priority, state string, d time.Duration, cached bool) {
	m.mu.Lock()
	m.jobsTotal[state]++
	if cached {
		m.cacheServedTotal++
	}
	m.jobDuration[lane].observe(d.Seconds())
	m.mu.Unlock()
}

// fnum renders a float the Prometheus way: integral values without an
// exponent, everything else shortest-round-trip.
func fnum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeSamples renders a run of tenant.Samples sharing names under the
// ripsd_ prefix, emitting each metric's HELP/TYPE header once.
func writeSamples(w io.Writer, samples []tenant.Sample) {
	seen := map[string]bool{}
	for _, s := range samples {
		if !seen[s.Name] {
			seen[s.Name] = true
			fmt.Fprintf(w, "# HELP %s%s %s\n", metricsPrefix, s.Name, s.Help)
			fmt.Fprintf(w, "# TYPE %s%s %s\n", metricsPrefix, s.Name, s.Kind)
		}
		if s.Labels == "" {
			fmt.Fprintf(w, "%s%s %s\n", metricsPrefix, s.Name, fnum(s.Value))
		} else {
			fmt.Fprintf(w, "%s%s{%s} %s\n", metricsPrefix, s.Name, s.Labels, fnum(s.Value))
		}
	}
}

// writeHistogram renders one lane-labeled histogram family.
func writeHistogram(w io.Writer, name, help string, hists *[tenant.NumLanes]histogram) {
	fmt.Fprintf(w, "# HELP %s%s %s\n", metricsPrefix, name, help)
	fmt.Fprintf(w, "# TYPE %s%s histogram\n", metricsPrefix, name)
	for lane := 0; lane < tenant.NumLanes; lane++ {
		h := &hists[lane]
		label := fmt.Sprintf("lane=%q", rips.Priority(lane).String())
		var cum uint64
		for i, b := range latencyBuckets {
			if h.counts != nil {
				cum += h.counts[i]
			}
			fmt.Fprintf(w, "%s%s_bucket{%s,le=%q} %d\n", metricsPrefix, name, label, fnum(b), cum)
		}
		fmt.Fprintf(w, "%s%s_bucket{%s,le=\"+Inf\"} %d\n", metricsPrefix, name, label, h.count)
		fmt.Fprintf(w, "%s%s_sum{%s} %s\n", metricsPrefix, name, label, fnum(h.sum))
		fmt.Fprintf(w, "%s%s_count{%s} %d\n", metricsPrefix, name, label, h.count)
	}
}

// WriteMetrics renders the full Prometheus text exposition: live
// snapshot gauges and counters from the admission arbiter, the result
// cache and the pool (the same sources as GET /v1/stats, so the two
// endpoints always agree), plus the event-accumulated job-state
// counters and latency histograms.
func (s *Server) WriteMetrics(w io.Writer) {
	arb, cache, poolFree := s.Stats()

	fmt.Fprintf(w, "# HELP %sworkers Shared worker-pool size.\n", metricsPrefix)
	fmt.Fprintf(w, "# TYPE %sworkers gauge\n", metricsPrefix)
	fmt.Fprintf(w, "%sworkers %d\n", metricsPrefix, s.Workers())
	fmt.Fprintf(w, "# HELP %spool_free_workers Pool workers neither leased nor running.\n", metricsPrefix)
	fmt.Fprintf(w, "# TYPE %spool_free_workers gauge\n", metricsPrefix)
	fmt.Fprintf(w, "%spool_free_workers %d\n", metricsPrefix, poolFree)

	writeSamples(w, arb.Samples())
	writeSamples(w, cache.Samples())

	s.metrics.mu.Lock()
	defer s.metrics.mu.Unlock()
	fmt.Fprintf(w, "# HELP %sjobs_total Jobs settled, by terminal state.\n", metricsPrefix)
	fmt.Fprintf(w, "# TYPE %sjobs_total counter\n", metricsPrefix)
	states := make([]string, 0, len(s.metrics.jobsTotal))
	for st := range s.metrics.jobsTotal {
		states = append(states, st)
	}
	sort.Strings(states)
	for _, st := range states {
		fmt.Fprintf(w, "%sjobs_total{state=%q} %d\n", metricsPrefix, st, s.metrics.jobsTotal[st])
	}
	fmt.Fprintf(w, "# HELP %scache_served_jobs_total Done jobs settled straight from the result cache.\n", metricsPrefix)
	fmt.Fprintf(w, "# TYPE %scache_served_jobs_total counter\n", metricsPrefix)
	fmt.Fprintf(w, "%scache_served_jobs_total %d\n", metricsPrefix, s.metrics.cacheServedTotal)

	writeHistogram(w, "phase_latency_seconds",
		"Wall-clock latency between consecutive system phases of one attempt (Parallel backend), by priority lane.",
		&s.metrics.phaseLatency)
	writeHistogram(w, "job_duration_seconds",
		"Submit-to-settle latency, queueing and preemption re-runs included, by priority lane.",
		&s.metrics.jobDuration)
}
