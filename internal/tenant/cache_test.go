package tenant

import (
	"fmt"
	"testing"

	"rips"
)

// TestNumLanesMatchesPriorities pins NumLanes to the public Priority
// vocabulary so adding a lane without resizing the arbiter fails here.
func TestNumLanesMatchesPriorities(t *testing.T) {
	if got := len(rips.Priorities()); got != NumLanes {
		t.Fatalf("len(rips.Priorities()) = %d, NumLanes = %d", got, NumLanes)
	}
	for _, p := range rips.Priorities() {
		if int(p) < 0 || int(p) >= NumLanes {
			t.Fatalf("priority %v indexes outside [0,%d)", p, NumLanes)
		}
	}
}

func doc(app int64) rips.ResultJSON {
	return rips.ResultJSON{Schema: rips.ResultJSONSchema, AppResult: app}
}

// TestCacheHitMiss covers the counter contract: first Get misses, Put
// then Get hits and returns the stored document.
func TestCacheHitMiss(t *testing.T) {
	c := NewCache(8)
	key := Key("nqueens", 8, rips.ConfigJSON{Procs: 4, Backend: "parallel"})
	if _, ok := c.Get(key); ok {
		t.Fatalf("hit on empty cache")
	}
	c.Put(key, doc(92))
	got, ok := c.Get(key)
	if !ok || got.AppResult != 92 {
		t.Fatalf("Get = (%+v, %v), want app_result 92", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want hits=1 misses=1 entries=1", st)
	}
}

// TestCacheKeyDistinguishesConfigs: app, size and any config field
// change the key; spelling the same resolved config twice does not.
func TestCacheKeyDistinguishesConfigs(t *testing.T) {
	base := rips.ConfigJSON{Procs: 4, Backend: "parallel"}
	k := Key("nqueens", 8, base)
	if k != Key("nqueens", 8, rips.ConfigJSON{Procs: 4, Backend: "parallel"}) {
		t.Fatalf("identical configs produced different keys")
	}
	variants := []string{
		Key("tsp", 8, base),
		Key("nqueens", 9, base),
		Key("nqueens", 8, rips.ConfigJSON{Procs: 2, Backend: "parallel"}),
		Key("nqueens", 8, rips.ConfigJSON{Procs: 4, Backend: "parallel", Eager: true}),
	}
	seen := map[string]bool{k: true}
	for _, v := range variants {
		if seen[v] {
			t.Fatalf("key collision: %q", v)
		}
		seen[v] = true
	}
}

// TestCacheEviction: the bound holds, eviction is least-recently-used,
// and re-putting refreshes recency.
func TestCacheEviction(t *testing.T) {
	c := NewCache(3)
	keys := make([]string, 4)
	for i := range keys {
		keys[i] = Key("nqueens", i, rips.ConfigJSON{Procs: 1})
	}
	c.Put(keys[0], doc(0))
	c.Put(keys[1], doc(1))
	c.Put(keys[2], doc(2))
	// Touch 0 so 1 is now least recently used.
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatalf("key 0 missing before eviction")
	}
	c.Put(keys[3], doc(3))
	if _, ok := c.Get(keys[1]); ok {
		t.Fatalf("LRU key 1 survived eviction")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := c.Get(keys[i]); !ok {
			t.Fatalf("key %d evicted, want key 1", i)
		}
	}
	if st := c.Stats(); st.Entries != 3 || st.Max != 3 {
		t.Fatalf("stats = %+v, want entries=3 max=3", st)
	}
}

// TestCacheConcurrent hammers one key set from several goroutines; the
// -race run is the assertion.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(16)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				k := Key("nqueens", i%20, rips.ConfigJSON{Procs: g + 1})
				if i%3 == 0 {
					c.Put(k, doc(int64(i)))
				} else {
					c.Get(k)
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	st := c.Stats()
	if st.Entries > 16 {
		t.Fatalf("entries %d exceed bound 16", st.Entries)
	}
	if st.Hits+st.Misses == 0 {
		t.Fatalf("no counter traffic recorded")
	}
	_ = fmt.Sprintf("%+v", st)
}
