//ripslint:allow-file wallclock admission-layer timing: wait ages in the stats
// snapshot are operator-facing and never influence in-run scheduling.

package tenant

import (
	"sort"
	"time"
)

// Stats is a point-in-time snapshot of the arbiter's ledger, the body
// behind ripsd's GET /v1/stats (merged there with pool and cache
// counters).
type Stats struct {
	Capacity int `json:"capacity"`
	Free     int `json:"free"`

	// Lanes is indexed by rips.Priority; entries render under their
	// lane name in the HTTP body.
	Lanes [NumLanes]LaneStats `json:"-"`

	Tenants map[string]TenantStats `json:"tenants"`

	Dispatches  int64 `json:"dispatches"`
	Preemptions int64 `json:"preemptions"`
	Requeues    int64 `json:"requeues"`
	Rejects     int64 `json:"rejects"`
}

// LaneStats aggregates one priority lane.
type LaneStats struct {
	Queued  int `json:"queued"`
	Running int `json:"running"`
}

// TenantStats aggregates one tenant across lanes.
type TenantStats struct {
	Queued  [NumLanes]int `json:"queued_by_lane"`
	Running int           `json:"running"`
	Weight  int           `json:"weight"`
	// OldestWaitNS is how long the tenant's longest-queued ticket has
	// been waiting, in nanoseconds; 0 when nothing is queued.
	OldestWaitNS int64 `json:"oldest_wait_ns,omitempty"`
}

// Stats snapshots the ledger under the lock.
func (a *Arbiter) Stats() Stats {
	now := time.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	s := Stats{
		Capacity:    a.opts.Capacity,
		Free:        a.free,
		Tenants:     make(map[string]TenantStats, len(a.tenants)),
		Dispatches:  a.dispatches,
		Preemptions: a.preemptions,
		Requeues:    a.requeues,
		Rejects:     a.rejects,
	}
	for t := range a.running {
		s.Lanes[t.Lane].Running++
	}
	names := make([]string, 0, len(a.tenants))
	for name := range a.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ts := a.tenants[name]
		if ts.queued == 0 && ts.running == 0 {
			continue
		}
		var out TenantStats
		out.Running = ts.running
		out.Weight = a.weight(name)
		for lane := 0; lane < NumLanes; lane++ {
			out.Queued[lane] = len(ts.queues[lane])
			s.Lanes[lane].Queued += len(ts.queues[lane])
		}
		var oldest time.Duration
		for _, at := range ts.enq {
			if w := now.Sub(at); w > oldest {
				oldest = w
			}
		}
		out.OldestWaitNS = int64(oldest)
		s.Tenants[name] = out
	}
	return s
}
