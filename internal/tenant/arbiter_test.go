package tenant

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rips"
)

// harness drives an Arbiter deterministically: Start callbacks append
// to a pending run list, and the test retires runs one at a time, so
// dispatch order is a pure function of submission order.
type harness struct {
	arb       *Arbiter
	mu        sync.Mutex
	pending   []*Ticket // started, not yet retired, in start order
	order     []*Ticket // every dispatch, in order
	preempted []*Ticket // every preemption request, in order
}

func newHarness(t *testing.T, opts Options) *harness {
	t.Helper()
	h := &harness{}
	opts.Start = func(tk *Ticket) {
		h.mu.Lock()
		h.pending = append(h.pending, tk)
		h.order = append(h.order, tk)
		h.mu.Unlock()
	}
	opts.Preempt = func(tk *Ticket) {
		h.mu.Lock()
		h.preempted = append(h.preempted, tk)
		h.mu.Unlock()
	}
	arb, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h.arb = arb
	return h
}

// retire completes the oldest pending run.
func (h *harness) retire(t *testing.T) *Ticket {
	t.Helper()
	h.mu.Lock()
	if len(h.pending) == 0 {
		h.mu.Unlock()
		t.Fatalf("retire: nothing pending")
	}
	tk := h.pending[0]
	h.pending = h.pending[1:]
	h.mu.Unlock()
	h.arb.Done(tk)
	return tk
}

func (h *harness) pendingLen() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.pending)
}

func tick(id, tenant string, lane rips.Priority, workers int) *Ticket {
	return &Ticket{ID: id, Tenant: tenant, Lane: lane, Workers: workers}
}

// TestFairnessUnderSaturation saturates one worker with three equal
// tenants and checks the DRR property: in every prefix of the dispatch
// order, no tenant is more than a constant behind an even share — no
// tenant starves, regardless of submission interleaving.
func TestFairnessUnderSaturation(t *testing.T) {
	h := newHarness(t, Options{Capacity: 1, DepthLimit: 100})
	tenants := []string{"a", "b", "c"}
	const per = 30
	// Adversarial submission order: all of a, then all of b, then c.
	for _, name := range tenants {
		for i := 0; i < per; i++ {
			if err := h.arb.Submit(tick(fmt.Sprintf("%s-%d", name, i), name, rips.PriorityNormal, 1)); err != nil {
				t.Fatalf("Submit: %v", err)
			}
		}
	}
	var done int
	counts := map[string]int{}
	for done < len(tenants)*per {
		tk := h.retire(t)
		counts[tk.Tenant]++
		done++
		// All tenants queued up-front, so every prefix of the dispatch
		// order must track the even share within constant slack.
		for _, name := range tenants {
			min := done/len(tenants) - 2
			if counts[name] < min && counts[name] < per {
				t.Fatalf("after %d dispatches tenant %s has %d (< %d): starvation", done, name, counts[name], min)
			}
		}
	}
	for _, name := range tenants {
		if counts[name] != per {
			t.Fatalf("tenant %s completed %d, want %d", name, counts[name], per)
		}
	}
}

// TestWeightedShares checks that a weight-2 tenant receives about twice
// the dispatches of a weight-1 tenant under saturation.
func TestWeightedShares(t *testing.T) {
	h := newHarness(t, Options{
		Capacity:   1,
		DepthLimit: 200,
		Weights:    map[string]int{"heavy": 2},
	})
	const per = 60
	for i := 0; i < per; i++ {
		for _, name := range []string{"heavy", "light"} {
			if err := h.arb.Submit(tick(fmt.Sprintf("%s-%d", name, i), name, rips.PriorityNormal, 1)); err != nil {
				t.Fatalf("Submit: %v", err)
			}
		}
	}
	// Look at the first window where both tenants still have queued
	// work; heavy should get ~2/3 of it.
	const window = 60
	counts := map[string]int{}
	for i := 0; i < window; i++ {
		counts[h.retire(t).Tenant]++
	}
	if counts["heavy"] < 35 || counts["heavy"] > 45 {
		t.Fatalf("heavy got %d of %d dispatches, want ~40 (2:1 weights)", counts["heavy"], window)
	}
}

// TestPriorityPreemption exercises the full preempt cycle: a high-lane
// ticket that cannot fit forces a running low-lane ticket out, the
// yielded ticket requeues at the front, and capacity conservation holds
// throughout.
func TestPriorityPreemption(t *testing.T) {
	h := newHarness(t, Options{Capacity: 4, DepthLimit: 10})
	low := tick("low", "t1", rips.PriorityLow, 4)
	if err := h.arb.Submit(low); err != nil {
		t.Fatalf("Submit low: %v", err)
	}
	if h.pendingLen() != 1 {
		t.Fatalf("low did not start")
	}
	high := tick("high", "t2", rips.PriorityHigh, 4)
	if err := h.arb.Submit(high); err != nil {
		t.Fatalf("Submit high: %v", err)
	}
	h.mu.Lock()
	npre := len(h.preempted)
	h.mu.Unlock()
	if npre != 1 || h.preempted[0] != low {
		t.Fatalf("expected exactly one preemption of low, got %d", npre)
	}
	// The embedder unwinds the low run and yields; high must start.
	h.mu.Lock()
	h.pending = nil // low's run is gone
	h.mu.Unlock()
	h.arb.Yielded(low)
	h.mu.Lock()
	started := append([]*Ticket(nil), h.pending...)
	h.mu.Unlock()
	if len(started) != 1 || started[0] != high {
		t.Fatalf("high did not start after yield: %v", started)
	}
	if got := h.arb.Preempts(low); got != 1 {
		t.Fatalf("low preempt count = %d, want 1", got)
	}
	// Retiring high must restart low (requeued at front).
	h.arb.Done(high)
	h.mu.Lock()
	restarted := h.pending[len(h.pending)-1]
	h.mu.Unlock()
	if restarted != low {
		t.Fatalf("low was not restarted after high finished")
	}
	h.arb.Done(low)
	st := h.arb.Stats()
	if st.Free != 4 {
		t.Fatalf("free = %d after all done, want 4", st.Free)
	}
	if st.Preemptions != 1 || st.Requeues != 1 {
		t.Fatalf("preemptions=%d requeues=%d, want 1/1", st.Preemptions, st.Requeues)
	}
}

// TestNoPointlessPreemption: when reclaiming every lower-lane run still
// cannot seat the high ticket, nothing is preempted.
func TestNoPointlessPreemption(t *testing.T) {
	h := newHarness(t, Options{Capacity: 4, DepthLimit: 10})
	if err := h.arb.Submit(tick("low", "t1", rips.PriorityLow, 2)); err != nil {
		t.Fatal(err)
	}
	// A same-lane runner holds the other 2 workers; preempting the
	// low-lane 2 frees only 2 + 0, and the high ticket needs 4 with a
	// high-lane job holding 2 — but high-lane runners are not victims.
	if err := h.arb.Submit(tick("peer", "t2", rips.PriorityHigh, 2)); err != nil {
		t.Fatal(err)
	}
	if err := h.arb.Submit(tick("big", "t3", rips.PriorityHigh, 4)); err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	npre := len(h.preempted)
	h.mu.Unlock()
	if npre != 0 {
		t.Fatalf("preempted %d tickets although the head can never be seated by preemption", npre)
	}
}

// TestStallReservesCapacity: a queued big ticket must not be starved by
// a stream of small same-lane tickets — the no-bypass rule.
func TestStallReservesCapacity(t *testing.T) {
	h := newHarness(t, Options{Capacity: 4, DepthLimit: 100})
	// Two small runs occupy half the pool.
	for i := 0; i < 2; i++ {
		if err := h.arb.Submit(tick(fmt.Sprintf("s%d", i), "small", rips.PriorityNormal, 2)); err != nil {
			t.Fatal(err)
		}
	}
	// Big arrives, then more smalls behind it.
	big := tick("big", "big", rips.PriorityNormal, 4)
	if err := h.arb.Submit(big); err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 6; i++ {
		if err := h.arb.Submit(tick(fmt.Sprintf("s%d", i), "small", rips.PriorityNormal, 2)); err != nil {
			t.Fatal(err)
		}
	}
	// Retire the two runners; big must be the next dispatch even though
	// smalls could have filled the freed halves.
	h.retire(t)
	if h.pendingLen() != 1 { // just s1 — nothing new dispatched into the freed half
		t.Fatalf("a small bypassed the stalled big ticket")
	}
	h.retire(t)
	h.mu.Lock()
	next := h.pending[0]
	h.mu.Unlock()
	if next != big {
		t.Fatalf("next dispatch is %s, want big", next.ID)
	}
}

// TestPerTenantDepth: one tenant filling its queue must get
// SaturatedError while another tenant still submits fine.
func TestPerTenantDepth(t *testing.T) {
	h := newHarness(t, Options{Capacity: 1, DepthLimit: 3})
	// Occupy the worker so everything else queues.
	if err := h.arb.Submit(tick("r", "a", rips.PriorityNormal, 1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := h.arb.Submit(tick(fmt.Sprintf("a%d", i), "a", rips.PriorityNormal, 1)); err != nil {
			t.Fatalf("a%d: %v", i, err)
		}
	}
	err := h.arb.Submit(tick("a3", "a", rips.PriorityNormal, 1))
	var sat *SaturatedError
	if !errors.As(err, &sat) || sat.Tenant != "a" {
		t.Fatalf("want SaturatedError for a, got %v", err)
	}
	if err := h.arb.Submit(tick("b0", "b", rips.PriorityNormal, 1)); err != nil {
		t.Fatalf("tenant b rejected although only a is saturated: %v", err)
	}
	st := h.arb.Stats()
	if st.Rejects != 1 {
		t.Fatalf("rejects = %d, want 1", st.Rejects)
	}
}

// TestRemoveQueued: removing a queued ticket frees its depth slot and
// never starts it; removing a running ticket reports false.
func TestRemoveQueued(t *testing.T) {
	h := newHarness(t, Options{Capacity: 1, DepthLimit: 2})
	run := tick("run", "a", rips.PriorityNormal, 1)
	if err := h.arb.Submit(run); err != nil {
		t.Fatal(err)
	}
	q := tick("q", "a", rips.PriorityNormal, 1)
	if err := h.arb.Submit(q); err != nil {
		t.Fatal(err)
	}
	if !h.arb.Remove(q) {
		t.Fatalf("Remove(queued) = false")
	}
	if h.arb.Remove(run) {
		t.Fatalf("Remove(running) = true")
	}
	h.retire(t)
	if h.pendingLen() != 0 {
		t.Fatalf("removed ticket was dispatched")
	}
}

// TestSubmitValidation covers malformed tickets and draining.
func TestSubmitValidation(t *testing.T) {
	h := newHarness(t, Options{Capacity: 2})
	if err := h.arb.Submit(tick("w0", "a", rips.PriorityNormal, 0)); err == nil {
		t.Fatalf("accepted 0-worker ticket")
	}
	if err := h.arb.Submit(tick("w9", "a", rips.PriorityNormal, 9)); err == nil {
		t.Fatalf("accepted over-capacity ticket")
	}
	if err := h.arb.Submit(&Ticket{ID: "l", Tenant: "a", Lane: rips.Priority(7), Workers: 1}); err == nil {
		t.Fatalf("accepted unknown lane")
	}
	h.arb.Drain()
	if err := h.arb.Submit(tick("d", "a", rips.PriorityNormal, 1)); !errors.Is(err, ErrDraining) {
		t.Fatalf("want ErrDraining, got %v", err)
	}
}

// TestArbiterChaos hammers the arbiter from many goroutines with mixed
// lanes, sizes and preemptions, and checks conservation: every accepted
// ticket eventually retires exactly once, concurrent worker usage never
// exceeds capacity, and the ledger drains to fully free. Run under
// -race this is the locking property test.
func TestArbiterChaos(t *testing.T) {
	const capacity = 4
	var inUse atomic.Int64
	var started atomic.Int64
	var finished atomic.Int64
	var wg sync.WaitGroup

	// preemptWanted mirrors what serve learns from its run context: a
	// Preempt callback marks the ticket, and the run consumes the mark
	// when it unwinds. A mark that lands after the run already finished
	// is the benign race — the ticket retires via Done.
	var preemptWanted sync.Map // *Ticket -> bool

	var arb *Arbiter
	var err error
	arb, err = New(Options{
		Capacity:   capacity,
		DepthLimit: 1000,
		Weights:    map[string]int{"t0": 2},
		Start: func(tk *Ticket) {
			if u := inUse.Add(int64(tk.Workers)); u > capacity {
				t.Errorf("in-use workers %d exceeds capacity %d", u, capacity)
			}
			started.Add(1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				time.Sleep(time.Duration(100+tk.Workers*50) * time.Microsecond)
				inUse.Add(-int64(tk.Workers))
				if _, yielding := preemptWanted.LoadAndDelete(tk); yielding {
					arb.Yielded(tk)
				} else {
					finished.Add(1)
					arb.Done(tk)
				}
			}()
		},
		Preempt: func(tk *Ticket) {
			preemptWanted.Store(tk, true)
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	const (
		nTenants  = 4
		perTenant = 40
	)
	var subWG sync.WaitGroup
	accepted := int64(0)
	var acceptedMu sync.Mutex
	for ti := 0; ti < nTenants; ti++ {
		subWG.Add(1)
		go func(ti int) {
			defer subWG.Done()
			rng := rand.New(rand.NewSource(int64(ti)))
			for i := 0; i < perTenant; i++ {
				lane := rips.Priorities()[rng.Intn(3)]
				w := 1 + rng.Intn(capacity)
				tk := tick(fmt.Sprintf("t%d-%d", ti, i), fmt.Sprintf("t%d", ti), lane, w)
				if err := arb.Submit(tk); err == nil {
					acceptedMu.Lock()
					accepted++
					acceptedMu.Unlock()
				}
				if i%8 == 0 {
					time.Sleep(200 * time.Microsecond)
				}
			}
		}(ti)
	}
	subWG.Wait()

	deadline := time.After(30 * time.Second)
	for {
		acceptedMu.Lock()
		want := accepted
		acceptedMu.Unlock()
		if finished.Load() == want {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("timeout: finished %d of %d accepted (started %d)", finished.Load(), want, started.Load())
		case <-time.After(2 * time.Millisecond):
		}
	}
	wg.Wait()
	st := arb.Stats()
	if st.Free != capacity {
		t.Fatalf("free = %d after drain, want %d", st.Free, capacity)
	}
	if in := inUse.Load(); in != 0 {
		t.Fatalf("in-use = %d after drain, want 0", in)
	}
	// A victim that completed before noticing the preempt retires via
	// Done, so requeues can lag preemptions but never exceed them.
	if st.Requeues > st.Preemptions {
		t.Fatalf("requeues %d > preemptions %d", st.Requeues, st.Preemptions)
	}
}
