//ripslint:allow-file wallclock admission-layer timing: enqueue timestamps feed
// operator-facing wait-age stats only and never influence in-run scheduling.

package tenant

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"rips"
	"rips/internal/invariant"
)

// Arbiter is the multi-tenant admission scheduler: a shared-state
// ledger of queued and running tickets plus the worker budget, driving
// the embedder through Start/Preempt callbacks. One mutex guards the
// whole state — admission decisions are rare (per job, not per task),
// so the global view buys correct preemption and fairness for
// negligible contention; callbacks always fire with the lock released.
type Arbiter struct {
	opts       Options
	quantum    int
	depthLimit int

	mu       sync.Mutex
	free     int
	draining bool
	seq      int64
	lanes    [NumLanes]laneState
	tenants  map[string]*tenantState
	running  map[*Ticket]struct{}

	preemptions int64
	requeues    int64
	dispatches  int64
	rejects     int64
}

// laneState is one priority lane's deficit-round-robin ring: the
// tenants with queued work in this lane, visited in order. round
// counts completed ring cycles so each tenant is credited exactly once
// per cycle no matter how many dispatch events the cycle spans.
type laneState struct {
	ring   []string
	cursor int
	round  int64
}

// tenantState is everything the arbiter tracks per fairness principal.
type tenantState struct {
	name     string
	queues   [NumLanes][]*Ticket
	inRing   [NumLanes]bool
	deficit  [NumLanes]int
	credited [NumLanes]int64 // lane round the tenant was last credited in
	queued   int             // across lanes; bounded by depthLimit
	running  int
	enq      map[*Ticket]time.Time
}

// New builds an Arbiter over a worker budget. Both callbacks are
// required: an arbiter that cannot start work is useless, and one that
// cannot preempt would strand its priority lanes.
func New(opts Options) (*Arbiter, error) {
	if opts.Capacity < 1 {
		return nil, fmt.Errorf("tenant: capacity %d, need at least 1", opts.Capacity)
	}
	if opts.Start == nil || opts.Preempt == nil {
		return nil, fmt.Errorf("tenant: Start and Preempt callbacks are required")
	}
	a := &Arbiter{
		opts:       opts,
		quantum:    opts.Quantum,
		depthLimit: opts.DepthLimit,
		free:       opts.Capacity,
		tenants:    make(map[string]*tenantState),
		running:    make(map[*Ticket]struct{}),
	}
	if a.quantum < 1 {
		// Classic DRR wants quantum >= the largest cost so one round's
		// credit affords any job that fits the machine.
		a.quantum = opts.Capacity
	}
	if a.depthLimit < 1 {
		a.depthLimit = DefaultDepthLimit
	}
	return a, nil
}

func (a *Arbiter) weight(tenant string) int {
	if w := a.opts.Weights[tenant]; w > 1 {
		return w
	}
	return 1
}

// deficitCap bounds accumulated DRR credit so an idle-then-bursty
// tenant cannot bank unbounded priority: enough to afford any job that
// fits the machine plus one visit's credit, no more.
func (a *Arbiter) deficitCap(tenant string) int {
	return a.opts.Capacity + a.quantum*a.weight(tenant)
}

func (a *Arbiter) tenantLocked(name string) *tenantState {
	ts := a.tenants[name]
	if ts == nil {
		ts = &tenantState{name: name, enq: make(map[*Ticket]time.Time)}
		for lane := range ts.credited {
			ts.credited[lane] = -1 // not yet credited in any round
		}
		a.tenants[name] = ts
	}
	return ts
}

// Submit queues a ticket and dispatches whatever the new state allows.
// It returns ErrDraining after Drain, a *SaturatedError when the
// tenant's queue is at depth, and a plain error for malformed tickets.
func (a *Arbiter) Submit(t *Ticket) error {
	if t.Workers < 1 || t.Workers > a.opts.Capacity {
		return fmt.Errorf("tenant: ticket %s wants %d workers, pool has %d", t.ID, t.Workers, a.opts.Capacity)
	}
	if int(t.Lane) < 0 || int(t.Lane) >= NumLanes {
		return fmt.Errorf("tenant: ticket %s has unknown lane %d", t.ID, int(t.Lane))
	}
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return ErrDraining
	}
	ts := a.tenantLocked(t.Tenant)
	if ts.queued >= a.depthLimit {
		a.rejects++
		depth := ts.queued
		a.mu.Unlock()
		return &SaturatedError{Tenant: t.Tenant, Depth: depth}
	}
	if t.state != ticketIdle {
		a.mu.Unlock()
		invariant.Violated("tenant: ticket %s submitted twice", t.ID)
	}
	t.state = ticketQueued
	ts.queues[t.Lane] = append(ts.queues[t.Lane], t)
	ts.queued++
	ts.enq[t] = time.Now()
	a.joinRingLocked(t.Lane, ts)
	starts, victims := a.dispatchLocked()
	a.mu.Unlock()
	a.fire(starts, victims)
	return nil
}

// Done returns a finished ticket's workers to the budget. Call it when
// the run reached a terminal outcome — completed, failed, or canceled
// by its owner — including a run that completed while a preemption
// request was in flight (the benign race: the workers come back either
// way, and the ticket is not requeued).
func (a *Arbiter) Done(t *Ticket) {
	a.mu.Lock()
	if t.state != ticketRunning && t.state != ticketPreempting {
		a.mu.Unlock()
		invariant.Violated("tenant: Done(%s) in state %d", t.ID, int(t.state))
	}
	a.retireLocked(t)
	starts, victims := a.dispatchLocked()
	a.mu.Unlock()
	a.fire(starts, victims)
}

// Yielded reports that a preempted run has unwound: its workers return
// to the budget and the ticket is requeued at the front of its tenant's
// lane queue, so it is the first thing the tenant runs next. The
// deficit it was charged at dispatch is refunded.
func (a *Arbiter) Yielded(t *Ticket) {
	a.mu.Lock()
	if t.state != ticketPreempting {
		a.mu.Unlock()
		invariant.Violated("tenant: Yielded(%s) in state %d", t.ID, int(t.state))
	}
	ts := a.tenantLocked(t.Tenant)
	a.free += t.Workers
	delete(a.running, t)
	ts.running--
	t.state = ticketQueued
	t.preempts++
	ts.queues[t.Lane] = append([]*Ticket{t}, ts.queues[t.Lane]...)
	ts.queued++
	ts.enq[t] = time.Now()
	ts.deficit[t.Lane] += t.Workers
	if c := a.deficitCap(t.Tenant); ts.deficit[t.Lane] > c {
		ts.deficit[t.Lane] = c
	}
	a.joinRingLocked(t.Lane, ts)
	a.requeues++
	starts, victims := a.dispatchLocked()
	a.mu.Unlock()
	a.fire(starts, victims)
}

// Remove cancels a ticket that is still queued. It reports whether the
// ticket was removed — false means the ticket already started (or was
// never submitted), and the embedder should cancel the run and call
// Done instead.
func (a *Arbiter) Remove(t *Ticket) bool {
	a.mu.Lock()
	if t.state != ticketQueued {
		a.mu.Unlock()
		return false
	}
	ts := a.tenantLocked(t.Tenant)
	q := ts.queues[t.Lane]
	for i, qt := range q {
		if qt == t {
			ts.queues[t.Lane] = append(q[:i], q[i+1:]...)
			break
		}
	}
	ts.queued--
	delete(ts.enq, t)
	t.state = ticketDone
	starts, victims := a.dispatchLocked()
	a.mu.Unlock()
	a.fire(starts, victims)
	return true
}

// Drain stops admission: subsequent Submits fail with ErrDraining.
// Tickets already queued or running are unaffected; the embedder waits
// for them on its own ledger (serve tracks its jobs).
func (a *Arbiter) Drain() {
	a.mu.Lock()
	a.draining = true
	a.mu.Unlock()
}

// Preempts returns how many times the ticket has been preempted and
// requeued so far.
func (a *Arbiter) Preempts(t *Ticket) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return t.preempts
}

func (a *Arbiter) retireLocked(t *Ticket) {
	ts := a.tenantLocked(t.Tenant)
	a.free += t.Workers
	delete(a.running, t)
	ts.running--
	t.state = ticketDone
}

func (a *Arbiter) joinRingLocked(lane rips.Priority, ts *tenantState) {
	if !ts.inRing[lane] {
		ts.inRing[lane] = true
		a.lanes[lane].ring = append(a.lanes[lane].ring, ts.name)
	}
}

// fire invokes the collected callbacks outside the lock, preemptions
// first so yielded capacity is already on its way before new runs pile
// in behind it.
func (a *Arbiter) fire(starts, victims []*Ticket) {
	for _, v := range victims {
		a.opts.Preempt(v)
	}
	for _, s := range starts {
		a.opts.Start(s)
	}
}

// dispatchLocked is the one placement routine: scan lanes high to low,
// dispatch by DRR within each, and stop at the first capacity stall.
// A stalled higher lane reserves the remaining capacity — lower lanes
// must not leapfrog it — and triggers preemption of lower-lane runs if
// reclaiming them would fit the stalled head.
func (a *Arbiter) dispatchLocked() (starts, victims []*Ticket) {
	for lane := NumLanes - 1; lane >= 0; lane-- {
		var stalled *Ticket
		starts, stalled = a.dispatchLaneLocked(lane, starts)
		if stalled != nil {
			victims = a.preemptForLocked(stalled)
			break
		}
	}
	return starts, victims
}

// dispatchLaneLocked runs deficit round-robin over one lane's ring.
// Each tenant is credited quantum x weight once per ring cycle (the
// lane's round counter persists across dispatch events, so a cycle
// paused by a full pool resumes rather than re-crediting); a visit
// drains the tenant's heads while its deficit allows. A head that fits
// its deficit but not the free capacity pauses the lane with the
// cursor in place — it is the next thing the lane runs — and is
// returned as the stall so the caller can reserve capacity and weigh
// preemption. A visit ends (cursor advances) only when the tenant's
// queue or deficit is spent.
func (a *Arbiter) dispatchLaneLocked(lane int, starts []*Ticket) ([]*Ticket, *Ticket) {
	ls := &a.lanes[lane]
	for {
		if len(ls.ring) == 0 {
			return starts, nil
		}
		placed := false
		queued := false
		for visited := 0; visited < len(ls.ring); {
			if ls.cursor >= len(ls.ring) {
				ls.cursor = 0
				ls.round++
			}
			ts := a.tenants[ls.ring[ls.cursor]]
			if len(ts.queues[lane]) == 0 {
				ts.deficit[lane] = 0
				ts.inRing[lane] = false
				ls.ring = append(ls.ring[:ls.cursor], ls.ring[ls.cursor+1:]...)
				if ls.cursor >= len(ls.ring) && len(ls.ring) > 0 {
					ls.cursor = 0
					ls.round++
				}
				continue
			}
			queued = true
			for len(ts.queues[lane]) > 0 {
				head := ts.queues[lane][0]
				if head.Workers > ts.deficit[lane] {
					if ts.credited[lane] == ls.round {
						break // visit over: this cycle's credit is spent
					}
					ts.credited[lane] = ls.round
					ts.deficit[lane] += a.quantum * a.weight(ts.name)
					if c := a.deficitCap(ts.name); ts.deficit[lane] > c {
						ts.deficit[lane] = c
					}
					if head.Workers > ts.deficit[lane] {
						break
					}
				}
				if head.Workers > a.free {
					// Deficit-entitled but capacity-blocked: pause with
					// the cursor in place and reserve what remains.
					return starts, head
				}
				ts.queues[lane] = ts.queues[lane][1:]
				ts.queued--
				delete(ts.enq, head)
				ts.deficit[lane] -= head.Workers
				ts.running++
				a.free -= head.Workers
				a.seq++
				head.seq = a.seq
				head.state = ticketRunning
				a.running[head] = struct{}{}
				a.dispatches++
				starts = append(starts, head)
				placed = true
			}
			ls.cursor++
			visited++
		}
		// With capacity left and work still queued, spin another cycle
		// so small quantums accumulate toward big heads; otherwise the
		// lane is drained as far as this event can take it.
		if !placed && !(queued && a.free > 0) {
			return starts, nil
		}
	}
}

// preemptForLocked selects victims for a stalled head: running tickets
// in strictly lower lanes, taken lowest lane first and latest dispatch
// first within a lane, but only if reclaiming them (plus capacity
// already yielding back) actually covers the head — a preemption that
// cannot seat the head would waste the victims' work for nothing.
func (a *Arbiter) preemptForLocked(head *Ticket) []*Ticket {
	pending := 0 // capacity already on its way back from earlier preemptions
	var candidates []*Ticket
	for t := range a.running {
		if t.state == ticketPreempting {
			pending += t.Workers
			continue
		}
		if int(t.Lane) < int(head.Lane) {
			candidates = append(candidates, t)
		}
	}
	need := head.Workers - a.free - pending
	if need <= 0 {
		return nil // already covered once in-flight yields land
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Lane != candidates[j].Lane {
			return candidates[i].Lane < candidates[j].Lane
		}
		return candidates[i].seq > candidates[j].seq
	})
	avail := 0
	for _, c := range candidates {
		avail += c.Workers
	}
	if avail < need {
		return nil
	}
	var victims []*Ticket
	for _, c := range candidates {
		if need <= 0 {
			break
		}
		c.state = ticketPreempting
		a.preemptions++
		victims = append(victims, c)
		need -= c.Workers
	}
	return victims
}
