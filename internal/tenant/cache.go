package tenant

import (
	"container/list"
	"sync"

	"rips"
)

// Cache memoizes terminal job results so a byte-identical resubmission
// is answered without occupying a worker. Keys are
// app + "/" + size + "/" + rips.ConfigJSON.Canonical() over the
// *resolved* configuration — the serving frontend fills semantic
// defaults (backend, machine size) before encoding, so two submissions
// that mean the same run hit the same entry no matter which defaults
// each spelled out. Only successful terminal results are stored:
// failures and cancellations re-run.
//
// Eviction is LRU over a fixed entry bound; every run's document is a
// few hundred bytes, so the default bound costs well under a megabyte.
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	hits    int64
	misses  int64
}

type cacheEntry struct {
	key string
	doc rips.ResultJSON
}

// DefaultCacheEntries is the entry bound NewCache applies to max <= 0.
const DefaultCacheEntries = 1024

// NewCache builds a result cache bounded to max entries.
func NewCache(max int) *Cache {
	if max <= 0 {
		max = DefaultCacheEntries
	}
	return &Cache{
		max:     max,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// Key renders the canonical cache key for an app run. cfg must already
// be resolved (defaults filled) by the caller's admission path.
func Key(app string, size int, cfg rips.ConfigJSON) string {
	return app + "/" + itoa(size) + "/" + cfg.Canonical()
}

// itoa avoids strconv for the one small positive int in the key.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [24]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Get looks a key up, counting a hit or miss, and returns a copy of
// the stored document.
func (c *Cache) Get(key string) (rips.ResultJSON, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return rips.ResultJSON{}, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).doc, true
}

// Put stores a terminal document under key, evicting the least
// recently used entry past the bound. Re-putting an existing key
// refreshes its document and recency.
func (c *Cache) Put(key string, doc rips.ResultJSON) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).doc = doc
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, doc: doc})
	for c.order.Len() > c.max {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
	}
}

// CacheStats is the cache's counter snapshot for GET /v1/stats.
type CacheStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
	Max     int   `json:"max"`
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.order.Len(), Max: c.max}
}
