package tenant

import (
	"fmt"
	"sort"

	"rips"
)

// Sample is one flat gauge or counter measurement derived from an
// admission or cache snapshot — the bridge between the arbiter's
// structured Stats and a metrics exposition format. The tenant package
// decides what is observable and how it is labeled; the serving layer
// decides the namespace prefix and the wire format, so neither knows
// the other's business.
type Sample struct {
	// Name is the metric name without any namespace prefix, following
	// Prometheus conventions (_total for counters, unit suffixes).
	Name string
	// Labels is the pre-rendered label body (`tenant="a",lane="high"`);
	// empty for unlabeled metrics.
	Labels string
	// Kind is "gauge" or "counter".
	Kind string
	// Help is the one-line metric description.
	Help  string
	Value float64
}

// Metric kinds.
const (
	KindGauge   = "gauge"
	KindCounter = "counter"
)

// laneName renders a lane index under its public priority name.
func laneName(lane int) string { return rips.Priority(lane).String() }

// Samples flattens the admission snapshot into metric samples. Lanes
// are labeled by priority name and tenants by tenant name; map order
// is sorted so successive scrapes render identically.
func (s Stats) Samples() []Sample {
	out := []Sample{
		{Name: "capacity_workers", Kind: KindGauge, Help: "Admission capacity in workers (the shared pool size).", Value: float64(s.Capacity)},
		{Name: "free_workers", Kind: KindGauge, Help: "Workers the admission ledger considers unleased.", Value: float64(s.Free)},
		{Name: "dispatches_total", Kind: KindCounter, Help: "Job attempts dispatched to the pool.", Value: float64(s.Dispatches)},
		{Name: "preemptions_total", Kind: KindCounter, Help: "Running jobs preempted for a higher lane.", Value: float64(s.Preemptions)},
		{Name: "requeues_total", Kind: KindCounter, Help: "Preempted jobs returned to their queue.", Value: float64(s.Requeues)},
		{Name: "rejects_total", Kind: KindCounter, Help: "Submissions rejected at admission (queue depth limit).", Value: float64(s.Rejects)},
	}
	for lane := 0; lane < NumLanes; lane++ {
		out = append(out,
			Sample{Name: "queue_depth", Labels: fmt.Sprintf("lane=%q", laneName(lane)),
				Kind: KindGauge, Help: "Jobs queued for dispatch, by priority lane.", Value: float64(s.Lanes[lane].Queued)},
			Sample{Name: "running_jobs", Labels: fmt.Sprintf("lane=%q", laneName(lane)),
				Kind: KindGauge, Help: "Jobs currently running, by priority lane.", Value: float64(s.Lanes[lane].Running)})
	}
	names := make([]string, 0, len(s.Tenants))
	for name := range s.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ts := s.Tenants[name]
		for lane := 0; lane < NumLanes; lane++ {
			out = append(out, Sample{Name: "tenant_queue_depth",
				Labels: fmt.Sprintf("tenant=%q,lane=%q", name, laneName(lane)),
				Kind:   KindGauge, Help: "Jobs a tenant has queued, by priority lane.", Value: float64(ts.Queued[lane])})
		}
		out = append(out,
			Sample{Name: "tenant_running_jobs", Labels: fmt.Sprintf("tenant=%q", name),
				Kind: KindGauge, Help: "Jobs a tenant has running.", Value: float64(ts.Running)},
			Sample{Name: "tenant_oldest_wait_seconds", Labels: fmt.Sprintf("tenant=%q", name),
				Kind: KindGauge, Help: "Age of the tenant's longest-queued job.", Value: float64(ts.OldestWaitNS) / 1e9})
	}
	return out
}

// Samples flattens the result-cache snapshot into metric samples.
func (c CacheStats) Samples() []Sample {
	return []Sample{
		{Name: "cache_hits_total", Kind: KindCounter, Help: "Result-cache hits (jobs settled without running).", Value: float64(c.Hits)},
		{Name: "cache_misses_total", Kind: KindCounter, Help: "Result-cache misses.", Value: float64(c.Misses)},
		{Name: "cache_entries", Kind: KindGauge, Help: "Result documents currently cached.", Value: float64(c.Entries)},
		{Name: "cache_max_entries", Kind: KindGauge, Help: "Result-cache capacity bound.", Value: float64(c.Max)},
	}
}
