// Package tenant is the multi-tenant admission core of the ripsd
// serving frontend: it decides which submitted jobs run when, on how
// many of the shared pool's workers, on behalf of which tenant.
//
// The subsystem sits between internal/serve (the HTTP job surface) and
// rips.Pool (the resident workers): serve turns each admitted
// submission into a Ticket and hands it to the Arbiter; the Arbiter
// orders tickets by priority lane and weighted fairness and calls the
// embedder back to start, and sometimes to preempt, actual runs on
// pool leases (rips.Pool.Split). The design follows the arktos
// global-scheduler line — shared-state placement with priority plus
// fair scheduling — while the relaxed-scheduler results (Alistarh et
// al.) justify the underlying bargain: admission order may be relaxed
// for throughput because every answer stays exact regardless of when
// and where a job runs.
//
// Three mechanisms compose:
//
//   - Priority lanes. Tickets carry a rips.Priority; a higher lane is
//     always placed first, and when the pool cannot hold a higher-lane
//     ticket the Arbiter preempts running lower-lane tickets (the
//     embedder cancels their runs — cheap, since rips.RunContext
//     returns promptly with a partial result) and requeues them at the
//     front of their queues. A preempted-then-rerun job's answer is
//     bit-identical to an uncontended run; only its latency changes.
//
//   - Weighted fair admission. Within a lane, tenants share capacity
//     by deficit round-robin: each visit credits a tenant's deficit
//     with quantum x weight, and a ticket dispatches when its worker
//     cost fits both the deficit and the free capacity. Cost is
//     measured in workers — the scarce resource — so a tenant
//     submitting large machines drains its deficit proportionally
//     faster than one submitting small ones. Queues are bounded per
//     tenant (SaturatedError, the per-tenant 503), never globally: one
//     tenant's backlog cannot lock others out.
//
//   - No-bypass placement. When the next ticket in DRR order fits its
//     tenant's deficit but not the free capacity, the lane stalls:
//     lower lanes and later tenants do not leapfrog it. This trades a
//     little utilization for a hard no-starvation property — capacity
//     accumulates for the stalled head instead of being re-stolen by
//     smaller jobs — mirroring the conflict-avoidance argument of the
//     arktos design.
//
// The package also houses the result Cache: terminal rips-result/v1
// documents keyed by the canonical config encoding
// (rips.ConfigJSON.Canonical), so byte-identical submissions are
// served without occupying any worker at all.
package tenant

import (
	"errors"
	"fmt"

	"rips"
)

// NumLanes is the number of priority lanes, one per rips.Priority.
const NumLanes = 3

// ErrDraining rejects submissions once Drain has been called.
var ErrDraining = errors.New("tenant: arbiter is draining")

// SaturatedError rejects a submission whose tenant already has
// DepthLimit tickets queued — the per-tenant 503. Other tenants are
// unaffected; there is no global admission bound.
type SaturatedError struct {
	Tenant string
	Depth  int
}

func (e *SaturatedError) Error() string {
	return fmt.Sprintf("tenant: queue for %q is full (%d queued)", e.Tenant, e.Depth)
}

// Ticket is the arbiter's view of one schedulable job. The exported
// fields are set by the embedder before Submit and immutable after;
// everything mutable lives behind the arbiter's lock.
type Ticket struct {
	// ID names the ticket in errors and stats (the serve job id).
	ID string
	// Tenant is the fairness principal the ticket is charged to.
	Tenant string
	// Lane is the priority lane.
	Lane rips.Priority
	// Workers is the ticket's cost: how many pool workers its machine
	// needs. Must be at least 1 and at most the arbiter's capacity.
	Workers int
	// Ref is an opaque embedder pointer (the serve job), carried so
	// Start and Preempt callbacks need no side table.
	Ref any

	state    ticketState
	deficits int // unused; reserved
	seq      int64
	preempts int
}

type ticketState int

const (
	ticketIdle ticketState = iota
	ticketQueued
	ticketRunning
	ticketPreempting
	ticketDone
)

// Options configures an Arbiter.
type Options struct {
	// Capacity is the total worker budget the arbiter may hand out —
	// the root pool's size.
	Capacity int
	// DepthLimit bounds each tenant's queued (not running) tickets
	// across all lanes; a submission beyond it gets SaturatedError.
	// Zero means DefaultDepthLimit.
	DepthLimit int
	// Quantum is the DRR credit per ring cycle in workers, scaled by
	// the tenant's weight. Zero means Capacity — the classic DRR
	// choice of quantum >= max cost, so one cycle's credit affords any
	// job that fits the machine. Smaller quantums are legal and make
	// fairness finer-grained at the price of big jobs waiting several
	// cycles to accumulate their cost.
	Quantum int
	// Weights maps tenant names to fairness weights (default 1; values
	// below 1 are treated as 1). A weight-2 tenant receives twice the
	// dispatch budget of a weight-1 tenant under saturation.
	Weights map[string]int
	// Start launches a ticket's run. It is called with the arbiter's
	// lock released, once per dispatch — a requeued ticket is started
	// again. It must not block: spawn the run and return.
	Start func(*Ticket)
	// Preempt asks a running ticket to yield. Called with the lock
	// released. The embedder cancels the ticket's run and, once the
	// run has unwound, calls Yielded (or Done, if the run actually
	// completed first — the race is benign).
	Preempt func(*Ticket)
}

// DefaultDepthLimit is the per-tenant queue bound applied when
// Options.DepthLimit is zero.
const DefaultDepthLimit = 64
