package tenant

import (
	"fmt"
	"math/rand"
	"testing"

	"rips"
)

// refModel is the executable specification the Cache is checked
// against: a plain map plus an explicit recency list (front = most
// recently used), updated by the same rules Cache documents. It makes
// no attempt at efficiency — its whole value is being obviously
// correct.
type refModel struct {
	max     int
	docs    map[string]rips.ResultJSON
	recency []string // recency[0] is most recently used
}

func newRefModel(max int) *refModel {
	return &refModel{max: max, docs: map[string]rips.ResultJSON{}}
}

func (m *refModel) touch(key string) {
	for i, k := range m.recency {
		if k == key {
			m.recency = append(m.recency[:i], m.recency[i+1:]...)
			break
		}
	}
	m.recency = append([]string{key}, m.recency...)
}

func (m *refModel) get(key string) (rips.ResultJSON, bool) {
	doc, ok := m.docs[key]
	if ok {
		m.touch(key)
	}
	return doc, ok
}

func (m *refModel) put(key string, doc rips.ResultJSON) {
	m.docs[key] = doc
	m.touch(key)
	for len(m.recency) > m.max {
		last := m.recency[len(m.recency)-1]
		m.recency = m.recency[:len(m.recency)-1]
		delete(m.docs, last)
	}
}

// TestCacheMatchesReferenceModel drives the Cache and the reference
// model through the same random insert/get/re-put sequence over a key
// space larger than the bound (so eviction is constantly engaged) and
// asserts after every step that hits, misses and returned documents
// agree, and that the cache's entry count never exceeds the bound.
// Documents are distinguishable by AppResult, so a hit returning the
// wrong document (e.g. a stale value surviving a re-put) is caught,
// not just a wrong hit/miss verdict — and because the model's eviction
// order is explicit, any divergence in LRU bookkeeping (touch on get,
// touch on re-put, evict-from-back) surfaces as a hit/miss mismatch
// within at most max operations.
func TestCacheMatchesReferenceModel(t *testing.T) {
	const (
		maxEntries = 8
		keySpace   = 24 // 3x the bound: most of the space is always evicted
		steps      = 5000
	)
	rng := rand.New(rand.NewSource(1))
	c := NewCache(maxEntries)
	m := newRefModel(maxEntries)

	var puts int64
	for step := 0; step < steps; step++ {
		key := fmt.Sprintf("k%d", rng.Intn(keySpace))
		if rng.Intn(2) == 0 {
			puts++
			doc := rips.ResultJSON{Schema: rips.ResultJSONSchema, AppResult: puts}
			c.Put(key, doc)
			m.put(key, doc)
		} else {
			got, ok := c.Get(key)
			want, wantOK := m.get(key)
			if ok != wantOK {
				t.Fatalf("step %d: Get(%q) present=%v, model says %v", step, key, ok, wantOK)
			}
			if ok && got.AppResult != want.AppResult {
				t.Fatalf("step %d: Get(%q) = doc %d, model has doc %d", step, key, got.AppResult, want.AppResult)
			}
		}
		stats := c.Stats()
		if stats.Entries != len(m.docs) {
			t.Fatalf("step %d: cache holds %d entries, model holds %d", step, stats.Entries, len(m.docs))
		}
		if stats.Entries > maxEntries {
			t.Fatalf("step %d: cache holds %d entries, bound is %d", step, stats.Entries, maxEntries)
		}
	}

	// Endgame: every key the model kept must hit, every key it evicted
	// must miss — the full eviction-order check in one sweep. Counted
	// against the model's own bookkeeping before the sweep mutates it.
	kept := make(map[string]rips.ResultJSON, len(m.docs))
	for k, v := range m.docs {
		kept[k] = v
	}
	for i := 0; i < keySpace; i++ {
		key := fmt.Sprintf("k%d", i)
		want, wantOK := kept[key]
		got, ok := c.Get(key)
		if ok != wantOK {
			t.Errorf("endgame: Get(%q) present=%v, model says %v", key, ok, wantOK)
			continue
		}
		if ok && got.AppResult != want.AppResult {
			t.Errorf("endgame: Get(%q) = doc %d, model has doc %d", key, got.AppResult, want.AppResult)
		}
	}
}

// TestCanonicalKeyCollisionIffEqual is the cache-key half of the LRU
// property: over a set of randomly resolved configurations,
// Key(app, size, EncodeConfig(cfg)) collides exactly when the resolved
// configs (and app identity) are equal — equal configs must share an
// entry (that is the cache's purpose), unequal ones must never alias
// (that would serve one tenant another workload's answer).
func TestCanonicalKeyCollisionIffEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type submission struct {
		app  string
		size int
		cfg  rips.Config
	}
	randomSub := func() submission {
		cfg := rips.Config{
			Procs:   1 + rng.Intn(4),
			Backend: rips.Parallel,
			Seed:    int64(rng.Intn(3)),
		}
		if rng.Intn(2) == 0 {
			cfg.Eager = true
		}
		if rng.Intn(2) == 0 {
			cfg.All = true
		}
		if rng.Intn(3) == 0 {
			cfg.Backend = rips.Simulate
		}
		apps := []string{"nq", "ida"}
		return submission{app: apps[rng.Intn(len(apps))], size: 8 + rng.Intn(3), cfg: cfg}
	}
	subs := make([]submission, 60)
	for i := range subs {
		subs[i] = randomSub()
	}
	for i, a := range subs {
		for j, b := range subs {
			if j < i {
				continue
			}
			// Equality over the wire form: ConfigJSON carries exactly the
			// fields that define a run (hooks and pools are process-local
			// wiring and excluded by design), and it is a comparable
			// struct, so == is field-for-field resolved-config equality.
			ja, jb := rips.EncodeConfig(a.cfg), rips.EncodeConfig(b.cfg)
			equal := a.app == b.app && a.size == b.size && ja == jb
			ka := Key(a.app, a.size, ja)
			kb := Key(b.app, b.size, jb)
			if equal && ka != kb {
				t.Errorf("equal submissions produced distinct keys:\n  %q\n  %q", ka, kb)
			}
			if !equal && ka == kb {
				t.Errorf("distinct submissions collided on key %q:\n  %+v\n  %+v", ka, a, b)
			}
		}
	}
}
