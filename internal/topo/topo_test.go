package topo

import (
	"testing"
	"testing/quick"
)

// all topologies used across the generic tests below.
func sampleTopologies() []Topology {
	return []Topology{
		NewMesh(1, 1), NewMesh(1, 8), NewMesh(8, 1), NewMesh(4, 4),
		NewMesh(8, 4), NewMesh(16, 16), NewMesh(3, 5),
		NewTorus(4, 4), NewTorus(2, 2), NewTorus(5, 3), NewTorus(1, 4),
		NewTree(1), NewTree(2), NewTree(7), NewTree(31), NewTree(20),
		NewHypercube(0), NewHypercube(1), NewHypercube(3), NewHypercube(5),
		NewRing(1), NewRing(2), NewRing(3), NewRing(9),
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	for _, tp := range sampleTopologies() {
		for a := 0; a < tp.Size(); a++ {
			for _, b := range tp.Neighbors(a) {
				if b < 0 || b >= tp.Size() {
					t.Fatalf("%s: neighbor %d of %d out of range", tp.Name(), b, a)
				}
				if b == a {
					t.Fatalf("%s: node %d is its own neighbor", tp.Name(), a)
				}
				if !IsNeighbor(tp, b, a) {
					t.Fatalf("%s: %d->%d not symmetric", tp.Name(), a, b)
				}
			}
		}
	}
}

func TestNeighborsDistinct(t *testing.T) {
	for _, tp := range sampleTopologies() {
		for a := 0; a < tp.Size(); a++ {
			seen := map[int]bool{}
			for _, b := range tp.Neighbors(a) {
				if seen[b] {
					t.Fatalf("%s: duplicate neighbor %d of %d", tp.Name(), b, a)
				}
				seen[b] = true
			}
		}
	}
}

func TestDistMetricProperties(t *testing.T) {
	for _, tp := range sampleTopologies() {
		n := tp.Size()
		if n > 64 {
			continue // keep the O(n^3) triangle check cheap
		}
		for a := 0; a < n; a++ {
			if d := tp.Dist(a, a); d != 0 {
				t.Fatalf("%s: Dist(%d,%d)=%d, want 0", tp.Name(), a, a, d)
			}
			for b := 0; b < n; b++ {
				dab := tp.Dist(a, b)
				if dab != tp.Dist(b, a) {
					t.Fatalf("%s: Dist not symmetric for %d,%d", tp.Name(), a, b)
				}
				if a != b && dab <= 0 {
					t.Fatalf("%s: Dist(%d,%d)=%d, want >0", tp.Name(), a, b, dab)
				}
				for c := 0; c < n; c++ {
					if dab > tp.Dist(a, c)+tp.Dist(c, b) {
						t.Fatalf("%s: triangle inequality violated at %d,%d,%d", tp.Name(), a, b, c)
					}
				}
			}
		}
	}
}

// TestDistMatchesBFS verifies Dist against a breadth-first search over
// Neighbors, which ties the two halves of the interface together.
func TestDistMatchesBFS(t *testing.T) {
	for _, tp := range sampleTopologies() {
		n := tp.Size()
		for src := 0; src < n; src++ {
			dist := make([]int, n)
			for i := range dist {
				dist[i] = -1
			}
			dist[src] = 0
			queue := []int{src}
			for len(queue) > 0 {
				a := queue[0]
				queue = queue[1:]
				for _, b := range tp.Neighbors(a) {
					if dist[b] < 0 {
						dist[b] = dist[a] + 1
						queue = append(queue, b)
					}
				}
			}
			for b := 0; b < n; b++ {
				if dist[b] < 0 {
					t.Fatalf("%s: node %d unreachable from %d", tp.Name(), b, src)
				}
				if got := tp.Dist(src, b); got != dist[b] {
					t.Fatalf("%s: Dist(%d,%d)=%d, BFS says %d", tp.Name(), src, b, got, dist[b])
				}
			}
		}
	}
}

func TestMeshCoordRoundTrip(t *testing.T) {
	m := NewMesh(8, 4)
	for id := 0; id < m.Size(); id++ {
		i, j := m.Coord(id)
		if i < 0 || i >= m.Rows() || j < 0 || j >= m.Cols() {
			t.Fatalf("Coord(%d) = (%d,%d) out of range", id, i, j)
		}
		if back := m.ID(i, j); back != id {
			t.Fatalf("ID(Coord(%d)) = %d", id, back)
		}
	}
}

func TestMeshNeighborCounts(t *testing.T) {
	m := NewMesh(4, 5)
	counts := map[int]int{}
	for id := 0; id < m.Size(); id++ {
		counts[len(m.Neighbors(id))]++
	}
	// 4 corners with 2 neighbors, edges with 3, interior with 4.
	if counts[2] != 4 {
		t.Errorf("corner count = %d, want 4", counts[2])
	}
	if counts[3] != 2*(4-2)+2*(5-2) {
		t.Errorf("edge count = %d, want %d", counts[3], 2*(4-2)+2*(5-2))
	}
	if counts[4] != (4-2)*(5-2) {
		t.Errorf("interior count = %d, want %d", counts[4], (4-2)*(5-2))
	}
}

func TestSquarishMesh(t *testing.T) {
	cases := []struct{ n, rows, cols int }{
		{8, 4, 2}, {16, 4, 4}, {32, 8, 4}, {64, 8, 8},
		{128, 16, 8}, {256, 16, 16}, {4, 2, 2}, {2, 2, 1}, {1, 1, 1},
	}
	for _, c := range cases {
		m := SquarishMesh(c.n)
		if m.Rows() != c.rows || m.Cols() != c.cols {
			t.Errorf("SquarishMesh(%d) = %dx%d, want %dx%d", c.n, m.Rows(), m.Cols(), c.rows, c.cols)
		}
		if m.Size() != c.n {
			t.Errorf("SquarishMesh(%d).Size() = %d", c.n, m.Size())
		}
	}
}

func TestSquarishMeshRejectsOddSizes(t *testing.T) {
	for _, n := range []int{3, 6, 24, 48} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SquarishMesh(%d) did not panic", n)
				}
			}()
			SquarishMesh(n)
		}()
	}
}

func TestTorusDistWraps(t *testing.T) {
	tr := NewTorus(4, 4)
	if d := tr.Dist(tr.ID(0, 0), tr.ID(3, 3)); d != 2 {
		t.Errorf("torus corner distance = %d, want 2", d)
	}
	if d := tr.Dist(tr.ID(0, 0), tr.ID(2, 2)); d != 4 {
		t.Errorf("torus center distance = %d, want 4", d)
	}
}

func TestTreeStructure(t *testing.T) {
	tr := NewTree(7)
	if p := tr.Parent(0); p != -1 {
		t.Errorf("root parent = %d, want -1", p)
	}
	for id := 1; id < 7; id++ {
		p := tr.Parent(id)
		found := false
		for _, c := range tr.Children(p) {
			if c == id {
				found = true
			}
		}
		if !found {
			t.Errorf("node %d not among children of its parent %d", id, p)
		}
	}
	if d := tr.Dist(3, 5); d != 4 {
		t.Errorf("tree Dist(3,5) = %d, want 4", d)
	}
	if d := tr.Dist(3, 4); d != 2 {
		t.Errorf("tree Dist(3,4) = %d, want 2", d)
	}
}

func TestHypercubeProperties(t *testing.T) {
	h := NewHypercube(4)
	if h.Size() != 16 {
		t.Fatalf("size = %d", h.Size())
	}
	for id := 0; id < 16; id++ {
		nb := h.Neighbors(id)
		if len(nb) != 4 {
			t.Fatalf("node %d has %d neighbors", id, len(nb))
		}
		for _, b := range nb {
			if h.Dist(id, b) != 1 {
				t.Fatalf("neighbor %d of %d at distance %d", b, id, h.Dist(id, b))
			}
		}
	}
	// Hamming distance property under XOR translation, via testing/quick.
	f := func(a, b, m uint8) bool {
		x, y := int(a&15), int(b&15)
		s := int(m & 15)
		return h.Dist(x, y) == h.Dist(x^s, y^s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRingDegenerate(t *testing.T) {
	if n := NewRing(1).Neighbors(0); len(n) != 0 {
		t.Errorf("ring 1 neighbors = %v", n)
	}
	if n := NewRing(2).Neighbors(0); len(n) != 1 || n[0] != 1 {
		t.Errorf("ring 2 neighbors = %v", n)
	}
	if n := NewTorus(1, 4).Neighbors(0); len(n) != 2 {
		t.Errorf("torus 1x4 neighbors = %v", n)
	}
}

func TestDiameter(t *testing.T) {
	cases := []struct {
		t    Topology
		want int
	}{
		{NewMesh(8, 4), 10},
		{NewMesh(1, 1), 0},
		{NewTorus(4, 4), 4},
		{NewHypercube(5), 5},
		{NewRing(9), 4},
		{NewTree(15), 6},
	}
	for _, c := range cases {
		if got := Diameter(c.t); got != c.want {
			t.Errorf("Diameter(%s) = %d, want %d", c.t.Name(), got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	m := NewMesh(2, 2)
	if err := Validate(m, 0); err != nil {
		t.Errorf("Validate(0) = %v", err)
	}
	if err := Validate(m, 3); err != nil {
		t.Errorf("Validate(3) = %v", err)
	}
	if err := Validate(m, 4); err == nil {
		t.Error("Validate(4) = nil, want error")
	}
	if err := Validate(m, -1); err == nil {
		t.Error("Validate(-1) = nil, want error")
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewMesh(0, 4) },
		func() { NewMesh(4, -1) },
		func() { NewTorus(0, 1) },
		func() { NewTree(0) },
		func() { NewHypercube(-1) },
		func() { NewRing(0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
