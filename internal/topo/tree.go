package topo

import (
	"fmt"

	"rips/internal/invariant"
)

// Tree is a complete binary tree laid out in heap order: node 0 is the
// root; the children of node i are 2i+1 and 2i+2. The Tree Walking
// Algorithm (internal/sched/treewalk) schedules on this topology.
type Tree struct {
	n int
}

// NewTree returns a binary tree with n nodes.
func NewTree(n int) *Tree {
	if n <= 0 {
		invariant.Violated("topo: invalid tree size %d", n)
	}
	return &Tree{n: n}
}

// Size returns the number of nodes.
func (t *Tree) Size() int { return t.n }

// Parent returns the parent id of a node, or -1 for the root.
func (t *Tree) Parent(id int) int {
	if id == 0 {
		return -1
	}
	return (id - 1) / 2
}

// Children returns the ids of the existing children of a node.
func (t *Tree) Children(id int) []int {
	out := make([]int, 0, 2)
	if l := 2*id + 1; l < t.n {
		out = append(out, l)
	}
	if r := 2*id + 2; r < t.n {
		out = append(out, r)
	}
	return out
}

// Neighbors returns parent then children.
func (t *Tree) Neighbors(id int) []int {
	out := make([]int, 0, 3)
	if p := t.Parent(id); p >= 0 {
		out = append(out, p)
	}
	return append(out, t.Children(id)...)
}

// depth returns the depth of a node (root = 0).
func (t *Tree) depth(id int) int {
	d := 0
	for id > 0 {
		id = (id - 1) / 2
		d++
	}
	return d
}

// Dist returns the hop distance via the lowest common ancestor.
func (t *Tree) Dist(a, b int) int {
	da, db := t.depth(a), t.depth(b)
	d := 0
	for da > db {
		a = (a - 1) / 2
		da--
		d++
	}
	for db > da {
		b = (b - 1) / 2
		db--
		d++
	}
	for a != b {
		a = (a - 1) / 2
		b = (b - 1) / 2
		d += 2
	}
	return d
}

// Name returns "tree N".
func (t *Tree) Name() string { return fmt.Sprintf("tree %d", t.n) }

// Hypercube is a d-dimensional hypercube with 2^d nodes; node ids are
// the corner bit patterns and two nodes are adjacent iff their ids
// differ in exactly one bit. The Dimension Exchange Method
// (internal/sched/dem) schedules on this topology.
type Hypercube struct {
	dim int
}

// NewHypercube returns a hypercube with 2^dim nodes.
func NewHypercube(dim int) *Hypercube {
	if dim < 0 || dim > 30 {
		invariant.Violated("topo: invalid hypercube dimension %d", dim)
	}
	return &Hypercube{dim: dim}
}

// Dim returns the dimension d.
func (h *Hypercube) Dim() int { return h.dim }

// Size returns 2^d.
func (h *Hypercube) Size() int { return 1 << h.dim }

// Neighbors returns the d nodes differing from id in one bit, in
// increasing dimension order.
func (h *Hypercube) Neighbors(id int) []int {
	out := make([]int, h.dim)
	for k := 0; k < h.dim; k++ {
		out[k] = id ^ (1 << k)
	}
	return out
}

// Dist returns the Hamming distance between the two ids.
func (h *Hypercube) Dist(a, b int) int {
	x := a ^ b
	d := 0
	for x != 0 {
		x &= x - 1
		d++
	}
	return d
}

// Name returns "hypercube d".
func (h *Hypercube) Name() string { return fmt.Sprintf("hypercube %d", h.dim) }

// Ring is a cycle of n nodes; node i links to (i±1) mod n. The async
// baselines' token-based termination detection circulates on the ring
// order regardless of topology, but Ring is also useful as a worst-case
// interconnect in tests.
type Ring struct {
	n int
}

// NewRing returns a ring of n nodes.
func NewRing(n int) *Ring {
	if n <= 0 {
		invariant.Violated("topo: invalid ring size %d", n)
	}
	return &Ring{n: n}
}

// Size returns the number of nodes.
func (r *Ring) Size() int { return r.n }

// Neighbors returns the predecessor and successor on the cycle.
func (r *Ring) Neighbors(id int) []int {
	if r.n == 1 {
		return nil
	}
	if r.n == 2 {
		return []int{1 - id}
	}
	return []int{(id + r.n - 1) % r.n, (id + 1) % r.n}
}

// Dist returns the shorter way around the cycle.
func (r *Ring) Dist(a, b int) int {
	d := abs(a - b)
	if w := r.n - d; w < d {
		d = w
	}
	return d
}

// Name returns "ring N".
func (r *Ring) Name() string { return fmt.Sprintf("ring %d", r.n) }
