package topo

import (
	"fmt"

	"rips/internal/invariant"
)

// Mesh is an n1 x n2 two-dimensional mesh (no wraparound links).
// Node (i,j) has id i*n2+j; i indexes rows, j indexes columns. This is
// the topology of the paper's Intel Paragon and the one the Mesh
// Walking Algorithm targets.
type Mesh struct {
	n1, n2 int // rows, columns
}

// NewMesh returns an n1 x n2 mesh. It panics if either dimension is
// not positive; machine shapes are construction-time constants, so a
// bad shape is a programming error, not a runtime condition.
func NewMesh(n1, n2 int) *Mesh {
	if n1 <= 0 || n2 <= 0 {
		invariant.Violated("topo: invalid mesh %dx%d", n1, n2)
	}
	return &Mesh{n1: n1, n2: n2}
}

// SquarishMesh returns a mesh of exactly n nodes shaped M x M when n is
// a perfect square and M x M/2 otherwise, matching the mesh shapes used
// in the paper's Figure 4 ("either M x M or M x M/2"). n must be a
// power of four or twice a power of four (8, 16, 32, 64, 128, 256...).
func SquarishMesh(n int) *Mesh {
	if n <= 0 {
		invariant.Violated("topo: invalid mesh size %d", n)
	}
	m := 1
	for m*m < n {
		m++
	}
	if m*m == n {
		return NewMesh(m, m)
	}
	// Try rows x cols with rows = cols*2 (e.g. 32 = 8x4).
	c := 1
	for 2*c*c < n {
		c++
	}
	if 2*c*c == n {
		return NewMesh(2*c, c)
	}
	invariant.Violated("topo: %d nodes do not form an MxM or MxM/2 mesh", n)
	return nil
}

// Rows returns the number of rows n1.
func (m *Mesh) Rows() int { return m.n1 }

// Cols returns the number of columns n2.
func (m *Mesh) Cols() int { return m.n2 }

// Size returns n1*n2.
func (m *Mesh) Size() int { return m.n1 * m.n2 }

// Coord returns the (row, col) coordinate of a node id.
func (m *Mesh) Coord(id int) (i, j int) { return id / m.n2, id % m.n2 }

// ID returns the node id of coordinate (i, j).
func (m *Mesh) ID(i, j int) int { return i*m.n2 + j }

// Neighbors returns the up/down/left/right neighbours that exist.
func (m *Mesh) Neighbors(id int) []int {
	i, j := m.Coord(id)
	out := make([]int, 0, 4)
	if i > 0 {
		out = append(out, m.ID(i-1, j))
	}
	if i < m.n1-1 {
		out = append(out, m.ID(i+1, j))
	}
	if j > 0 {
		out = append(out, m.ID(i, j-1))
	}
	if j < m.n2-1 {
		out = append(out, m.ID(i, j+1))
	}
	return out
}

// Dist returns the Manhattan distance between two nodes.
func (m *Mesh) Dist(a, b int) int {
	ai, aj := m.Coord(a)
	bi, bj := m.Coord(b)
	return abs(ai-bi) + abs(aj-bj)
}

// Name returns "mesh n1xn2".
func (m *Mesh) Name() string { return fmt.Sprintf("mesh %dx%d", m.n1, m.n2) }

// Torus is an n1 x n2 mesh with wraparound links in both dimensions.
type Torus struct {
	n1, n2 int
}

// NewTorus returns an n1 x n2 torus.
func NewTorus(n1, n2 int) *Torus {
	if n1 <= 0 || n2 <= 0 {
		invariant.Violated("topo: invalid torus %dx%d", n1, n2)
	}
	return &Torus{n1: n1, n2: n2}
}

// Rows returns the number of rows n1.
func (t *Torus) Rows() int { return t.n1 }

// Cols returns the number of columns n2.
func (t *Torus) Cols() int { return t.n2 }

// Size returns n1*n2.
func (t *Torus) Size() int { return t.n1 * t.n2 }

// Coord returns the (row, col) coordinate of a node id.
func (t *Torus) Coord(id int) (i, j int) { return id / t.n2, id % t.n2 }

// ID returns the node id of coordinate (i, j).
func (t *Torus) ID(i, j int) int { return i*t.n2 + j }

// Neighbors returns the four wraparound neighbours, deduplicated for
// degenerate dimensions of size 1 or 2.
func (t *Torus) Neighbors(id int) []int {
	i, j := t.Coord(id)
	cand := []int{
		t.ID((i+t.n1-1)%t.n1, j),
		t.ID((i+1)%t.n1, j),
		t.ID(i, (j+t.n2-1)%t.n2),
		t.ID(i, (j+1)%t.n2),
	}
	out := cand[:0]
	for _, c := range cand {
		if c == id {
			continue
		}
		dup := false
		for _, o := range out {
			if o == c {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}

// Dist returns the wraparound Manhattan distance.
func (t *Torus) Dist(a, b int) int {
	ai, aj := t.Coord(a)
	bi, bj := t.Coord(b)
	di := abs(ai - bi)
	if w := t.n1 - di; w < di {
		di = w
	}
	dj := abs(aj - bj)
	if w := t.n2 - dj; w < dj {
		dj = w
	}
	return di + dj
}

// Name returns "torus n1xn2".
func (t *Torus) Name() string { return fmt.Sprintf("torus %dx%d", t.n1, t.n2) }
