// Package topo defines the interconnect topologies of the simulated
// distributed-memory machine: mesh, torus, binary tree, hypercube, and
// ring. A Topology knows node adjacency and hop distances; the
// simulator uses it to price messages, and the parallel scheduling
// algorithms use it to plan task movement along physical links.
//
// Nodes are identified by a dense integer id in [0, N).
package topo

import "fmt"

// Topology describes the interconnect of an N-node machine.
type Topology interface {
	// Size returns the number of nodes N.
	Size() int
	// Neighbors returns the ids of the nodes directly linked to id,
	// in a deterministic order.
	Neighbors(id int) []int
	// Dist returns the minimum number of hops between two nodes.
	Dist(a, b int) int
	// Name returns a short human-readable description, e.g. "mesh 8x4".
	Name() string
}

// Validate checks that id is a legal node id for t.
func Validate(t Topology, id int) error {
	if id < 0 || id >= t.Size() {
		return fmt.Errorf("topo: node id %d out of range [0,%d)", id, t.Size())
	}
	return nil
}

// Diameter returns the maximum hop distance between any pair of nodes.
// It is O(N^2) calls to Dist and intended for setup/reporting, not for
// inner loops.
func Diameter(t Topology) int {
	d := 0
	n := t.Size()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if h := t.Dist(a, b); h > d {
				d = h
			}
		}
	}
	return d
}

// IsNeighbor reports whether b is adjacent to a in t.
func IsNeighbor(t Topology, a, b int) bool {
	for _, n := range t.Neighbors(a) {
		if n == b {
			return true
		}
	}
	return false
}

// abs returns the absolute value of x.
func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
