package metrics

import "time"

// Wall-clock variants of the paper's measures, used by the
// real-parallel backend (internal/par): there the relevant times are
// measured in elapsed nanoseconds rather than simulated virtual time,
// and the sequential baseline is a one-worker run of the same binary.

// WallEfficiency is mu for a real run: the summed task-execution time
// over the machine-time product, busy / (n * wall). It is 1.0 when
// every core computes the whole time and degrades with idling and
// scheduling overhead exactly like the simulated mu.
func WallEfficiency(busy time.Duration, n int, wall time.Duration) float64 {
	if wall <= 0 || n <= 0 {
		return 0
	}
	return float64(busy) / (float64(wall) * float64(n))
}

// WallSpeedup is T(base)/T(p): the scaling speedup of a run against a
// baseline wall time (typically the one-worker run of the same
// strategy).
func WallSpeedup(base, wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(base) / float64(wall)
}

// Parallelism is the effective parallelism busy/wall — how many cores'
// worth of computation the run sustained. Bounded by the worker count;
// the gap to it is overhead plus idling.
func Parallelism(busy, wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(busy) / float64(wall)
}
