// Package metrics computes the paper's evaluation measures: parallel
// efficiency, speedup, optimal efficiency (Table II) and the
// normalized quality factor of Figure 5.
package metrics

import (
	"fmt"

	"rips/internal/sim"
)

// Efficiency is the paper's mu = Ts / (Tp * N).
func Efficiency(ts sim.Time, n int, tp sim.Time) float64 {
	if tp <= 0 || n <= 0 {
		return 0
	}
	return float64(ts) / (float64(tp) * float64(n))
}

// Speedup is Ts / Tp.
func Speedup(ts, tp sim.Time) float64 {
	if tp <= 0 {
		return 0
	}
	return float64(ts) / float64(tp)
}

// QualityFactor is the paper's normalized quality factor
// (muOpt - muRand) / (muOpt - muG): 1 for the randomized baseline,
// above 1 for algorithms that beat it, below 1 for those that don't.
// A scheduler at (or above) the optimal efficiency yields +Inf, which
// callers should clamp for display.
func QualityFactor(muOpt, muRand, muG float64) float64 {
	den := muOpt - muG
	if den <= 0 {
		return inf
	}
	return (muOpt - muRand) / den
}

const inf = 1e9

// Row is one Table I line: a workload under one scheduling algorithm.
type Row struct {
	App      string
	Sched    string
	Tasks    int64    // total tasks generated
	Nonlocal int64    // tasks executed away from their origin node
	Overhead sim.Time // Th: average per-node system overhead
	Idle     sim.Time // Ti: average per-node idle time
	Time     sim.Time // T: parallel execution time
	Eff      float64  // mu
	SeqTime  sim.Time // Ts (same for every scheduler of an app)
	Phases   int64    // RIPS only: number of system phases
	Migrated int64    // task·link transfers (RIPS system phases / baseline sends)
}

// String formats the row roughly like the paper's Table I.
func (r Row) String() string {
	return fmt.Sprintf("%-14s %-9s %7d %9d %8.2f %8.2f %8.2f %5.0f%%",
		r.App, r.Sched, r.Tasks, r.Nonlocal,
		r.Overhead.Seconds(), r.Idle.Seconds(), r.Time.Seconds(), 100*r.Eff)
}
