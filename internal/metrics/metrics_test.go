package metrics

import (
	"math"
	"strings"
	"testing"

	"rips/internal/sim"
)

func TestEfficiency(t *testing.T) {
	// 32 s of work on 4 processors finishing in 10 s: 80%.
	if got := Efficiency(32*sim.Second, 4, 10*sim.Second); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("Efficiency = %v, want 0.8", got)
	}
	if got := Efficiency(sim.Second, 4, 0); got != 0 {
		t.Errorf("Efficiency with zero time = %v", got)
	}
	if got := Efficiency(sim.Second, 0, sim.Second); got != 0 {
		t.Errorf("Efficiency with zero procs = %v", got)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(30*sim.Second, 3*sim.Second); math.Abs(got-10) > 1e-9 {
		t.Errorf("Speedup = %v", got)
	}
	if got := Speedup(sim.Second, 0); got != 0 {
		t.Errorf("Speedup with zero time = %v", got)
	}
}

func TestQualityFactor(t *testing.T) {
	// Random itself is always exactly 1.
	if got := QualityFactor(0.99, 0.65, 0.65); math.Abs(got-1) > 1e-9 {
		t.Errorf("random quality = %v", got)
	}
	// Better than random: > 1 (e.g. the paper's 15-queens RIPS).
	if got := QualityFactor(0.994, 0.87, 0.95); got <= 1 {
		t.Errorf("better-than-random quality = %v", got)
	}
	// Worse than random: < 1.
	if got := QualityFactor(0.994, 0.87, 0.53); got >= 1 {
		t.Errorf("worse-than-random quality = %v", got)
	}
	// At or above the optimum: clamped +huge, not a divide-by-zero.
	if got := QualityFactor(0.9, 0.8, 0.95); got < 1e6 {
		t.Errorf("above-optimal quality = %v", got)
	}
}

func TestRowString(t *testing.T) {
	r := Row{
		App: "15-queens", Sched: "rips", Tasks: 15941, Nonlocal: 922,
		Overhead: 510 * sim.Millisecond, Idle: 30 * sim.Millisecond,
		Time: sim.Time(10.9 * float64(sim.Second)), Eff: 0.95,
	}
	s := r.String()
	for _, want := range []string{"15-queens", "rips", "15941", "922", "95%"} {
		if !strings.Contains(s, want) {
			t.Errorf("Row.String() = %q, missing %q", s, want)
		}
	}
}
