package metrics

import (
	"testing"
	"time"
)

func TestWallEfficiency(t *testing.T) {
	// 4 workers busy 1s each over a 1s wall: perfect efficiency.
	if got := WallEfficiency(4*time.Second, 4, time.Second); got != 1.0 {
		t.Errorf("WallEfficiency(4s, 4, 1s) = %v, want 1.0", got)
	}
	if got := WallEfficiency(2*time.Second, 4, time.Second); got != 0.5 {
		t.Errorf("WallEfficiency(2s, 4, 1s) = %v, want 0.5", got)
	}
	if got := WallEfficiency(time.Second, 4, 0); got != 0 {
		t.Errorf("WallEfficiency with zero wall = %v, want 0", got)
	}
	if got := WallEfficiency(time.Second, 0, time.Second); got != 0 {
		t.Errorf("WallEfficiency with zero workers = %v, want 0", got)
	}
}

func TestWallSpeedup(t *testing.T) {
	if got := WallSpeedup(8*time.Second, 2*time.Second); got != 4.0 {
		t.Errorf("WallSpeedup(8s, 2s) = %v, want 4.0", got)
	}
	if got := WallSpeedup(time.Second, 0); got != 0 {
		t.Errorf("WallSpeedup with zero wall = %v, want 0", got)
	}
}

func TestParallelism(t *testing.T) {
	if got := Parallelism(3*time.Second, time.Second); got != 3.0 {
		t.Errorf("Parallelism(3s, 1s) = %v, want 3.0", got)
	}
	if got := Parallelism(time.Second, 0); got != 0 {
		t.Errorf("Parallelism with zero wall = %v, want 0", got)
	}
}
