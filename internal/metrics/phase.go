package metrics

import (
	"time"

	"rips/internal/sim"
)

// PhaseInfo describes one completed RIPS system phase — the unit of
// progress the incremental scheduler exposes to observers. Both
// execution backends report it through their Config.OnPhase hooks (and
// the public rips.Config.OnPhase forwards to whichever backend runs),
// so a serving frontend can stream scheduling progress without caring
// which substrate executes the workload.
//
// The hook that delivers a PhaseInfo runs on the scheduler's critical
// path: the phase leader calls it with the world stopped (Parallel
// backend) or from node 0's simulated program (Simulate backend).
// Consumers must not block in it; hand the value off and return.
type PhaseInfo struct {
	// Phase is the 1-based index of the system phase.
	Phase int64
	// Round is the workload round the phase belongs to.
	Round int
	// Tasks is the global task total the phase snapshotted — the
	// expansion/collapse curve of the workload.
	Tasks int
	// Moved is the number of tasks the phase's plan migrated. The
	// Simulate backend reports 0 here: per-phase migration volume is
	// not globally observable at any single node of the message-passing
	// protocol (only the run total is, via Result counters).
	Moved int
	// VirtualTime is the simulator clock when the phase completed
	// (Simulate backend; zero on the Parallel backend).
	VirtualTime sim.Time
	// Elapsed is the wall-clock time since the run started when the
	// phase completed (Parallel backend; zero on the Simulate backend).
	Elapsed time.Duration
}
