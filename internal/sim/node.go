package sim

import (
	"math/rand"

	"rips/internal/invariant"
	"rips/internal/topo"
)

// Message is what nodes exchange. Tag discriminates protocol traffic
// (each runtime defines its own tag space); Data carries the payload by
// reference — the simulator never copies or inspects it; Size is the
// payload size in bytes used for latency pricing.
type Message struct {
	From, To int
	Tag      int
	Data     any
	Size     int
}

// Node is the handle a Program uses to interact with the machine. All
// methods must be called only from the node's own program goroutine.
type Node struct {
	eng      *Engine
	id       int
	state    nodeState
	resume   chan struct{}
	mailbox  []Message
	timerGen uint64
	timedOut bool
	aborted  bool
	panicErr error
	stats    Stats
	counters map[string]int64
	rng      *rand.Rand
}

func newNode(e *Engine, id int) *Node {
	return &Node{
		eng:      e,
		id:       id,
		state:    stateWaitTimer, // parked until the t=0 kick-off wake
		resume:   make(chan struct{}),
		counters: map[string]int64{},
		rng:      rand.New(rand.NewSource(e.cfg.Seed*1000003 + int64(id))),
	}
}

// ID returns this node's id in [0, N).
func (n *Node) ID() int { return n.id }

// N returns the machine size.
func (n *Node) N() int { return n.eng.cfg.Topo.Size() }

// Topo returns the machine interconnect.
func (n *Node) Topo() topo.Topology { return n.eng.cfg.Topo }

// Now returns the current virtual time.
func (n *Node) Now() Time { return n.eng.now }

// Rand returns this node's deterministic RNG, seeded from Config.Seed
// and the node id.
func (n *Node) Rand() *rand.Rand { return n.rng }

// Count adds delta to a named application counter; counters are summed
// across nodes into Result.Counters.
func (n *Node) Count(name string, delta int64) { n.counters[name] += delta }

// Counter returns this node's local value of a named counter.
func (n *Node) Counter(name string) int64 { return n.counters[name] }

// yield parks the goroutine in the given state and returns when the
// engine resumes it.
func (n *Node) yield(s nodeState) {
	n.eng.back <- s
	<-n.resume
	if n.aborted {
		panic(abortedError{}) //ripslint:allow panic control-flow: unwinds the node goroutine on engine abort
	}
}

// advance moves this node's clock forward by d, charging the span to
// busy (user) or overhead (system) time.
func (n *Node) advance(d Time, system bool) {
	if d < 0 {
		invariant.Violated("sim: node %d advancing by negative time %v", n.id, d)
	}
	if system {
		n.stats.Overhead += d
	} else {
		n.stats.Busy += d
	}
	if d == 0 {
		return
	}
	n.timerGen++
	n.eng.push(event{t: n.eng.now + d, kind: evWake, node: n.id, gen: n.timerGen})
	n.yield(stateWaitTimer)
}

// Compute spends d of user computation time.
func (n *Node) Compute(d Time) { n.advance(d, false) }

// Overhead spends d of system (scheduling) time. Runtimes call this to
// model the CPU cost of their own bookkeeping.
func (n *Node) Overhead(d Time) { n.advance(d, true) }

// Sleep blocks for d, accounted as idle time.
func (n *Node) Sleep(d Time) {
	if d < 0 {
		invariant.Violated("sim: node %d sleeping negative time %v", n.id, d)
	}
	n.stats.Idle += d
	if d == 0 {
		return
	}
	n.timerGen++
	n.eng.push(event{t: n.eng.now + d, kind: evWake, node: n.id, gen: n.timerGen})
	n.yield(stateWaitTimer)
}

// Send transmits a message. It charges the sender the per-message
// SendOverhead CPU cost, then puts the message on the wire; delivery
// occurs after the latency model's transit delay. Send never blocks on
// the receiver (buffered, asynchronous semantics — the NX/MPI eager
// protocol the paper's runtime would have used).
func (n *Node) Send(to int, m Message) {
	if err := topo.Validate(n.eng.cfg.Topo, to); err != nil {
		invariant.Violated("sim: %v", err)
	}
	m.From = n.id
	m.To = to
	lat := n.eng.cfg.Latency
	if lat.SendOverhead > 0 {
		n.advance(lat.SendOverhead, true)
	}
	hops := 1
	if to != n.id {
		hops = n.eng.cfg.Topo.Dist(n.id, to)
	}
	d := lat.Delay(m.Size, hops)
	n.stats.Sent++
	n.eng.push(event{t: n.eng.now + d, kind: evDeliver, node: to, msg: m})
}

// SendTag is shorthand for Send with a tag and data payload.
func (n *Node) SendTag(to, tag int, data any, size int) {
	n.Send(to, Message{Tag: tag, Data: data, Size: size})
}

// Broadcast delivers a message to every other node after the given
// delay, charging the sender a single SendOverhead regardless of the
// machine size. It models hardware global-signal support — the Cray
// T3D eureka or-barrier the paper suggests for the ANY transfer
// policy — and deliberately bypasses the per-hop latency model.
func (n *Node) Broadcast(tag int, data any, size int, delay Time) {
	if delay < 0 {
		invariant.Violated("sim: node %d broadcasting with negative delay", n.id)
	}
	lat := n.eng.cfg.Latency
	if lat.SendOverhead > 0 {
		n.advance(lat.SendOverhead, true)
	}
	for to := 0; to < n.N(); to++ {
		if to == n.id {
			continue
		}
		m := Message{From: n.id, To: to, Tag: tag, Data: data, Size: size}
		n.stats.Sent++
		n.eng.push(event{t: n.eng.now + delay, kind: evDeliver, node: to, msg: m})
	}
}

// Recv blocks until any message is available and returns the oldest.
// Waiting time is charged as idle; popping charges RecvOverhead.
func (n *Node) Recv() Message {
	m, _ := n.recv(func(Message) bool { return true }, -1)
	return m
}

// RecvTag blocks until a message with the given tag is available,
// leaving other traffic queued in arrival order.
func (n *Node) RecvTag(tag int) Message {
	m, _ := n.recv(func(m Message) bool { return m.Tag == tag }, -1)
	return m
}

// RecvFrom blocks until a message from a specific source with the
// given tag is available.
func (n *Node) RecvFrom(from, tag int) Message {
	m, _ := n.recv(func(m Message) bool { return m.From == from && m.Tag == tag }, -1)
	return m
}

// RecvTags blocks until a message carrying any of the given tags is
// available, leaving other traffic queued in arrival order.
func (n *Node) RecvTags(tags ...int) Message {
	m, _ := n.recv(func(m Message) bool {
		for _, t := range tags {
			if m.Tag == t {
				return true
			}
		}
		return false
	}, -1)
	return m
}

// RecvTimeout waits up to d for any message; ok reports whether a
// message arrived before the deadline.
func (n *Node) RecvTimeout(d Time) (m Message, ok bool) {
	return n.recv(func(Message) bool { return true }, d)
}

// RecvTagTimeout waits up to d for a message with the given tag.
func (n *Node) RecvTagTimeout(tag int, d Time) (m Message, ok bool) {
	return n.recv(func(m Message) bool { return m.Tag == tag }, d)
}

// TryRecv returns the oldest queued message without blocking.
func (n *Node) TryRecv() (m Message, ok bool) {
	return n.tryMatch(func(Message) bool { return true })
}

// TryRecvTag returns the oldest queued message with the given tag
// without blocking.
func (n *Node) TryRecvTag(tag int) (m Message, ok bool) {
	return n.tryMatch(func(m Message) bool { return m.Tag == tag })
}

// Pending returns the number of queued messages.
func (n *Node) Pending() int { return len(n.mailbox) }

// tryMatch pops the oldest matching message, if any, charging
// RecvOverhead on success.
func (n *Node) tryMatch(match func(Message) bool) (Message, bool) {
	for i, m := range n.mailbox {
		if match(m) {
			n.mailbox = append(n.mailbox[:i], n.mailbox[i+1:]...)
			if ro := n.eng.cfg.Latency.RecvOverhead; ro > 0 {
				n.advance(ro, true)
			}
			return m, true
		}
	}
	return Message{}, false
}

// recv blocks until a matching message arrives or the timeout (if
// non-negative) expires. Blocked time is charged as idle.
func (n *Node) recv(match func(Message) bool, timeout Time) (Message, bool) {
	if m, ok := n.tryMatch(match); ok {
		return m, true
	}
	start := n.eng.now
	waitState := stateWaitRecv
	if timeout >= 0 {
		n.timerGen++
		n.eng.push(event{t: n.eng.now + timeout, kind: evWake, node: n.id, gen: n.timerGen})
		waitState = stateWaitBoth
	}
	for {
		n.yield(waitState)
		if n.timedOut {
			n.timedOut = false
			n.stats.Idle += n.eng.now - start
			return Message{}, false
		}
		// Scan only the newly delivered tail? Deliveries resume us one
		// at a time, so checking the whole mailbox stays correct and
		// the box is short in practice.
		for i, m := range n.mailbox {
			if match(m) {
				n.mailbox = append(n.mailbox[:i], n.mailbox[i+1:]...)
				n.stats.Idle += n.eng.now - start
				if waitState == stateWaitBoth {
					n.timerGen++ // cancel the pending timeout
				}
				if ro := n.eng.cfg.Latency.RecvOverhead; ro > 0 {
					n.advance(ro, true)
				}
				return m, true
			}
		}
	}
}
