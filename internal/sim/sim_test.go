package sim

import (
	"strings"
	"testing"

	"rips/internal/topo"
)

func twoNodeCfg(lat LatencyModel) Config {
	return Config{Topo: topo.NewRing(2), Latency: lat, Seed: 1}
}

func TestComputeAdvancesClock(t *testing.T) {
	res, err := Run(Config{Topo: topo.NewRing(1), Seed: 1}, func(n *Node) {
		n.Compute(3 * Millisecond)
		n.Overhead(1 * Millisecond)
		if got := n.Now(); got != 4*Millisecond {
			t.Errorf("Now() = %v, want 4ms", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.End != 4*Millisecond {
		t.Errorf("End = %v, want 4ms", res.End)
	}
	st := res.Nodes[0]
	if st.Busy != 3*Millisecond || st.Overhead != 1*Millisecond || st.Idle != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSendRecvDelay(t *testing.T) {
	lat := LatencyModel{Base: 100 * Microsecond, PerByte: 10 * Nanosecond}
	var recvAt Time
	_, err := Run(twoNodeCfg(lat), func(n *Node) {
		if n.ID() == 0 {
			n.SendTag(1, 7, "hello", 1000)
			return
		}
		m := n.RecvTag(7)
		recvAt = n.Now()
		if m.Data.(string) != "hello" || m.From != 0 || m.To != 1 {
			t.Errorf("message = %+v", m)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := lat.Delay(1000, 1) // 100us + 10us
	if recvAt != want {
		t.Errorf("received at %v, want %v", recvAt, want)
	}
}

func TestPerHopLatency(t *testing.T) {
	m := topo.NewMesh(4, 4)
	lat := LatencyModel{Base: 10 * Microsecond, PerHop: 5 * Microsecond}
	var recvAt Time
	last := m.Size() - 1 // opposite corner: 6 hops from node 0
	_, err := Run(Config{Topo: m, Latency: lat, Seed: 1}, func(n *Node) {
		switch n.ID() {
		case 0:
			n.SendTag(last, 1, nil, 0)
		case last:
			n.RecvTag(1)
			recvAt = n.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 10*Microsecond + 5*5*Microsecond
	if recvAt != want {
		t.Errorf("received at %v, want %v", recvAt, want)
	}
}

func TestIdleAccounting(t *testing.T) {
	res, err := Run(twoNodeCfg(ZeroLatency()), func(n *Node) {
		if n.ID() == 0 {
			n.Compute(10 * Millisecond)
			n.SendTag(1, 1, nil, 0)
		} else {
			n.Recv()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Nodes[1].Idle; got != 10*Millisecond {
		t.Errorf("idle = %v, want 10ms", got)
	}
}

func TestSendRecvOverheadCharged(t *testing.T) {
	lat := LatencyModel{SendOverhead: 5 * Microsecond, RecvOverhead: 7 * Microsecond}
	res, err := Run(twoNodeCfg(lat), func(n *Node) {
		if n.ID() == 0 {
			n.SendTag(1, 1, nil, 0)
		} else {
			n.Recv()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Nodes[0].Overhead; got != 5*Microsecond {
		t.Errorf("sender overhead = %v, want 5us", got)
	}
	if got := res.Nodes[1].Overhead; got != 7*Microsecond {
		t.Errorf("receiver overhead = %v, want 7us", got)
	}
}

func TestFIFOAmongSimultaneous(t *testing.T) {
	var order []int
	_, err := Run(twoNodeCfg(ZeroLatency()), func(n *Node) {
		if n.ID() == 0 {
			for i := 0; i < 5; i++ {
				n.SendTag(1, i, nil, 0)
			}
		} else {
			for i := 0; i < 5; i++ {
				order = append(order, n.Recv().Tag)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, tag := range order {
		if tag != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestRecvTagSkipsOtherTraffic(t *testing.T) {
	var got []int
	_, err := Run(twoNodeCfg(ZeroLatency()), func(n *Node) {
		if n.ID() == 0 {
			n.SendTag(1, 1, nil, 0)
			n.SendTag(1, 2, nil, 0)
			n.SendTag(1, 1, nil, 0)
		} else {
			got = append(got, n.RecvTag(2).Tag)
			got = append(got, n.Recv().Tag)
			got = append(got, n.Recv().Tag)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRecvFrom(t *testing.T) {
	_, err := Run(Config{Topo: topo.NewRing(3), Seed: 1}, func(n *Node) {
		switch n.ID() {
		case 0:
			n.Compute(Millisecond)
			n.SendTag(2, 9, "from0", 0)
		case 1:
			n.SendTag(2, 9, "from1", 0)
		case 2:
			m := n.RecvFrom(0, 9)
			if m.Data.(string) != "from0" {
				t.Errorf("RecvFrom(0) = %+v", m)
			}
			m = n.Recv()
			if m.From != 1 {
				t.Errorf("second message from %d", m.From)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTimeoutExpires(t *testing.T) {
	res, err := Run(Config{Topo: topo.NewRing(1), Seed: 1}, func(n *Node) {
		if _, ok := n.RecvTimeout(2 * Millisecond); ok {
			t.Error("RecvTimeout returned a message on an empty machine")
		}
		if n.Now() != 2*Millisecond {
			t.Errorf("timeout returned at %v", n.Now())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes[0].Idle != 2*Millisecond {
		t.Errorf("idle = %v", res.Nodes[0].Idle)
	}
}

func TestRecvTimeoutSatisfiedEarly(t *testing.T) {
	_, err := Run(twoNodeCfg(ZeroLatency()), func(n *Node) {
		if n.ID() == 0 {
			n.Compute(Millisecond)
			n.SendTag(1, 1, nil, 0)
			return
		}
		m, ok := n.RecvTimeout(10 * Millisecond)
		if !ok || m.Tag != 1 {
			t.Errorf("RecvTimeout = %+v, %v", m, ok)
		}
		if n.Now() != Millisecond {
			t.Errorf("received at %v, want 1ms", n.Now())
		}
		// The cancelled timer must not wake or corrupt a later wait.
		if _, ok := n.RecvTimeout(20 * Millisecond); ok {
			t.Error("second RecvTimeout got a phantom message")
		}
		if n.Now() != 21*Millisecond {
			t.Errorf("second timeout at %v, want 21ms", n.Now())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTagTimeoutLeavesOthersQueued(t *testing.T) {
	_, err := Run(twoNodeCfg(ZeroLatency()), func(n *Node) {
		if n.ID() == 0 {
			n.SendTag(1, 5, nil, 0)
			return
		}
		if _, ok := n.RecvTagTimeout(6, Millisecond); ok {
			t.Error("got tag-6 message that was never sent")
		}
		if m, ok := n.TryRecvTag(5); !ok || m.Tag != 5 {
			t.Errorf("tag-5 message lost: %+v %v", m, ok)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTryRecv(t *testing.T) {
	_, err := Run(twoNodeCfg(ZeroLatency()), func(n *Node) {
		if n.ID() == 0 {
			n.SendTag(1, 1, nil, 0)
			return
		}
		if _, ok := n.TryRecv(); ok {
			t.Error("TryRecv found a message before any arrived")
		}
		n.Sleep(Millisecond)
		if m, ok := n.TryRecv(); !ok || m.Tag != 1 {
			t.Errorf("TryRecv after sleep = %+v, %v", m, ok)
		}
		if n.Pending() != 0 {
			t.Errorf("Pending = %d", n.Pending())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	_, err := Run(twoNodeCfg(ZeroLatency()), func(n *Node) {
		n.Recv() // both nodes wait forever
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestEventLimit(t *testing.T) {
	cfg := Config{Topo: topo.NewRing(2), Seed: 1, MaxEvents: 100}
	_, err := Run(cfg, func(n *Node) {
		// ping-pong forever
		if n.ID() == 0 {
			n.SendTag(1, 0, nil, 0)
		}
		for {
			m := n.Recv()
			n.Send(m.From, Message{Tag: 0})
		}
	})
	if err == nil || !strings.Contains(err.Error(), "event limit") {
		t.Fatalf("err = %v, want event limit", err)
	}
}

func TestTimeLimit(t *testing.T) {
	cfg := Config{Topo: topo.NewRing(1), Seed: 1, Limit: Millisecond}
	_, err := Run(cfg, func(n *Node) {
		for {
			n.Compute(Millisecond)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "time limit") {
		t.Fatalf("err = %v, want time limit", err)
	}
}

func TestNodePanicReported(t *testing.T) {
	_, err := Run(twoNodeCfg(ZeroLatency()), func(n *Node) {
		if n.ID() == 1 {
			panic("boom")
		}
		n.Compute(Millisecond)
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want node panic", err)
	}
}

func TestCountersAggregated(t *testing.T) {
	res, err := Run(Config{Topo: topo.NewRing(4), Seed: 1}, func(n *Node) {
		n.Count("tasks", int64(n.ID()))
		n.Count("tasks", 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Counters["tasks"]; got != 0+1+2+3+4 {
		t.Errorf("tasks counter = %d, want 10", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (Result, []int) {
		var order []int
		res, err := Run(Config{Topo: topo.NewMesh(4, 4), Seed: 42}, func(n *Node) {
			r := n.Rand()
			for i := 0; i < 10; i++ {
				n.Compute(Time(r.Intn(1000)) * Microsecond)
				to := r.Intn(n.N())
				if to != n.ID() {
					n.SendTag(to, 1, nil, 8)
				}
			}
			for {
				if _, ok := n.RecvTimeout(5 * Millisecond); !ok {
					break
				}
				order = append(order, n.ID())
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, order
	}
	r1, o1 := run()
	r2, o2 := run()
	if r1.End != r2.End || r1.Events != r2.Events || r1.Messages != r2.Messages {
		t.Fatalf("non-deterministic results: %+v vs %+v", r1, r2)
	}
	if len(o1) != len(o2) {
		t.Fatalf("non-deterministic receive orders: %d vs %d", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("receive order differs at %d", i)
		}
	}
}

func TestStatsDecomposition(t *testing.T) {
	// busy + overhead + idle must equal each node's finish time.
	res, err := Run(Config{Topo: topo.NewMesh(2, 2), Latency: DefaultLatency(), Seed: 7}, func(n *Node) {
		r := n.Rand()
		for i := 0; i < 20; i++ {
			n.Compute(Time(r.Intn(500)) * Microsecond)
			n.SendTag((n.ID()+1)%n.N(), 1, nil, 64)
			n.RecvTag(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range res.Nodes {
		total := st.Busy + st.Overhead + st.Idle
		if total != st.Finish {
			t.Errorf("node %d: busy+overhead+idle = %v, finish = %v", i, total, st.Finish)
		}
	}
}

func TestMessageToDeadNodeDropped(t *testing.T) {
	res, err := Run(twoNodeCfg(ZeroLatency()), func(n *Node) {
		if n.ID() == 0 {
			return // exits immediately
		}
		n.Compute(Millisecond)
		n.SendTag(0, 1, nil, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes[0].Received != 0 {
		t.Errorf("dead node received %d messages", res.Nodes[0].Received)
	}
}

func TestZeroComputeNoYield(t *testing.T) {
	_, err := Run(Config{Topo: topo.NewRing(1), Seed: 1}, func(n *Node) {
		n.Compute(0)
		n.Overhead(0)
		n.Sleep(0)
		if n.Now() != 0 {
			t.Errorf("time advanced to %v", n.Now())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNegativeComputePanics(t *testing.T) {
	_, err := Run(Config{Topo: topo.NewRing(1), Seed: 1}, func(n *Node) {
		n.Compute(-1)
	})
	if err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("err = %v, want negative-time panic", err)
	}
}

func TestSendToInvalidNodePanics(t *testing.T) {
	_, err := Run(Config{Topo: topo.NewRing(2), Seed: 1}, func(n *Node) {
		n.SendTag(5, 1, nil, 0)
	})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v, want out-of-range panic", err)
	}
}

func TestLatencyValidate(t *testing.T) {
	bad := LatencyModel{Base: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative latency validated")
	}
	if err := DefaultLatency().Validate(); err != nil {
		t.Error(err)
	}
}

func TestDelayClamping(t *testing.T) {
	l := LatencyModel{Base: 10, PerByte: 1, PerHop: 5}
	if d := l.Delay(-5, 0); d != 10 {
		t.Errorf("Delay(-5,0) = %v, want 10 (clamped)", d)
	}
	if d := l.Delay(3, 4); d != 10+3+15 {
		t.Errorf("Delay(3,4) = %v, want 28", d)
	}
}

func TestManyNodesBarrierStyle(t *testing.T) {
	// A hand-rolled all-to-root reduction and broadcast over the mesh;
	// exercises heavier event traffic across 64 nodes.
	m := topo.NewMesh(8, 8)
	res, err := Run(Config{Topo: m, Latency: DefaultLatency(), Seed: 3}, func(n *Node) {
		if n.ID() == 0 {
			for i := 1; i < n.N(); i++ {
				n.RecvTag(1)
			}
			for i := 1; i < n.N(); i++ {
				n.SendTag(i, 2, nil, 4)
			}
		} else {
			n.Compute(Time(n.ID()) * Microsecond)
			n.SendTag(0, 1, nil, 4)
			n.RecvTag(2)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != uint64(2*(m.Size()-1)) {
		t.Errorf("messages = %d, want %d", res.Messages, 2*(m.Size()-1))
	}
}

func TestTrace(t *testing.T) {
	var buf strings.Builder
	cfg := Config{Topo: topo.NewRing(2), Seed: 1, Trace: &buf}
	_, err := Run(cfg, func(n *Node) {
		if n.ID() == 0 {
			n.Compute(Millisecond)
			n.SendTag(1, 7, nil, 4)
		} else {
			n.RecvTag(7)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "wake") || !strings.Contains(out, "deliver node=1 tag=7 from=0") {
		t.Errorf("trace output:\n%s", out)
	}
}

func TestRecvTags(t *testing.T) {
	_, err := Run(twoNodeCfg(ZeroLatency()), func(n *Node) {
		if n.ID() == 0 {
			n.SendTag(1, 3, nil, 0)
			n.Compute(Millisecond)
			n.SendTag(1, 8, nil, 0)
			return
		}
		// Wait for either tag 7 or 8; tag 3 must stay queued.
		m := n.RecvTags(7, 8)
		if m.Tag != 8 {
			t.Errorf("RecvTags = tag %d, want 8", m.Tag)
		}
		if m, ok := n.TryRecvTag(3); !ok || m.Tag != 3 {
			t.Error("tag-3 message lost")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcast(t *testing.T) {
	lat := LatencyModel{Base: 500 * Microsecond, PerHop: 100 * Microsecond, SendOverhead: 10 * Microsecond}
	res, err := Run(Config{Topo: topo.NewMesh(4, 4), Latency: lat, Seed: 1}, func(n *Node) {
		if n.ID() == 5 {
			n.Broadcast(9, "sig", 8, 20*Microsecond)
			return
		}
		m := n.RecvTag(9)
		// Hardware broadcast: everyone hears it at overhead+delay,
		// regardless of hop distance.
		if got := n.Now(); got != 30*Microsecond {
			t.Errorf("node %d heard broadcast at %v, want 30us", n.ID(), got)
		}
		if m.Data.(string) != "sig" {
			t.Errorf("payload %v", m.Data)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sender charged one overhead, not N-1.
	if got := res.Nodes[5].Overhead; got != 10*Microsecond {
		t.Errorf("sender overhead = %v, want one SendOverhead", got)
	}
	if res.Messages != 15 {
		t.Errorf("messages = %d, want 15", res.Messages)
	}
}

func TestBroadcastNegativeDelayPanics(t *testing.T) {
	_, err := Run(Config{Topo: topo.NewRing(2), Seed: 1}, func(n *Node) {
		if n.ID() == 0 {
			n.Broadcast(1, nil, 0, -1)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "negative delay") {
		t.Fatalf("err = %v", err)
	}
}
