package sim

import (
	"sync"
	"testing"

	"rips/internal/topo"
)

// The engine hands control between the scheduler goroutine and one
// goroutine per node over the back/resume channels; every Node field
// is supposed to be touched only by whichever side currently holds the
// baton. These tests exist to give the race detector something to
// bite on: many nodes, many handoffs, messages, broadcasts, timeouts
// and counters, plus several engines running concurrently. They pass
// trivially without -race; CI runs this package with it.

// ringTraffic is the shared workload: rounds of neighbor exchange on a
// ring overlaid on whatever topology the engine simulates, with
// random-length compute bursts from the node's own seeded source.
func ringTraffic(rounds int) Program {
	return func(n *Node) {
		right := (n.ID() + 1) % n.N()
		for r := 0; r < rounds; r++ {
			n.SendTag(right, r, n.ID(), 64)
			m := n.RecvTag(r)
			if m.Data.(int) != (n.ID()+n.N()-1)%n.N() {
				panic("wrong neighbor")
			}
			n.Compute(Time(n.Rand().Intn(50)+1) * Microsecond)
			n.Count("rounds", 1)
			if r%8 == 3 {
				// Exercise the timeout path; nothing with this tag exists.
				if _, ok := n.RecvTagTimeout(9999, 5*Microsecond); ok {
					panic("phantom message")
				}
			}
		}
	}
}

func TestRaceManyNodesHeavyTraffic(t *testing.T) {
	const rounds = 40
	mesh := topo.NewMesh(8, 8)
	res, err := Run(Config{Topo: mesh, Latency: DefaultLatency(), Seed: 42}, ringTraffic(rounds))
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(mesh.Size() * rounds); res.Counters["rounds"] != want {
		t.Errorf("rounds counter = %d, want %d", res.Counters["rounds"], want)
	}
	if res.Messages < uint64(mesh.Size()*rounds) {
		t.Errorf("messages = %d, want at least %d", res.Messages, mesh.Size()*rounds)
	}
}

func TestRaceBroadcastStorm(t *testing.T) {
	cube := topo.NewHypercube(5) // 32 nodes
	_, err := Run(Config{Topo: cube, Latency: DefaultLatency(), Seed: 7}, func(n *Node) {
		const rounds = 10
		for r := 0; r < rounds; r++ {
			if n.ID() == r%n.N() {
				n.Broadcast(100+r, r, 32, 10*Microsecond)
			} else {
				m := n.RecvTag(100 + r)
				if m.Data.(int) != r {
					panic("wrong round payload")
				}
			}
			n.Compute(Time(n.Rand().Intn(20)+1) * Microsecond)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRaceConcurrentEngines runs several independent engines at once.
// Engines share no state by design; the race detector verifies it,
// and identical seeds must still produce identical virtual end times.
func TestRaceConcurrentEngines(t *testing.T) {
	const engines = 6
	ends := make([]Time, engines)
	errs := make([]error, engines)
	var wg sync.WaitGroup
	for i := 0; i < engines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := Run(Config{Topo: topo.NewMesh(4, 4), Latency: DefaultLatency(), Seed: 99}, ringTraffic(25))
			ends[i], errs[i] = res.End, err
		}(i)
	}
	wg.Wait()
	for i := 0; i < engines; i++ {
		if errs[i] != nil {
			t.Fatalf("engine %d: %v", i, errs[i])
		}
		if ends[i] != ends[0] {
			t.Errorf("engine %d ended at %v, engine 0 at %v; same seed must give same schedule", i, ends[i], ends[0])
		}
	}
}
