package sim

import (
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"sort"

	"rips/internal/invariant"
	"rips/internal/topo"
)

// Config describes a simulated machine run.
type Config struct {
	// Topo is the machine interconnect; its Size fixes the node count.
	Topo topo.Topology
	// Latency prices messages. The zero value means free communication.
	Latency LatencyModel
	// Seed feeds each node's deterministic RNG (see Node.Rand).
	Seed int64
	// Limit aborts the run when virtual time exceeds it (0 = none).
	Limit Time
	// MaxEvents aborts the run after this many events (0 = a large
	// default guard of 2^40), catching livelocked node programs.
	MaxEvents uint64
	// Cancel, when non-nil, aborts the run once the channel is closed
	// (or sent to). The engine polls it between events, so a canceled
	// run stops at the next event boundary with ErrCanceled and a
	// partial Result. This is how context cancellation reaches the
	// virtual-time world: the simulation itself has no host clock, but
	// the host may stop caring about its answer.
	Cancel <-chan struct{}
	// Trace, when non-nil, receives one line per simulator event —
	// timer wakes and message deliveries with their timestamps — for
	// debugging node programs. Tracing large runs is voluminous.
	Trace io.Writer
}

// Program is the SPMD code body executed by every node, mirroring the
// paper's "uniform code image accessible at each processor".
type Program func(n *Node)

// Result aggregates a finished run.
type Result struct {
	// End is the virtual time at which the last node terminated.
	End Time
	// Nodes holds per-node clock accounting, indexed by node id.
	Nodes []Stats
	// Messages and Bytes count all delivered messages and payload bytes.
	Messages uint64
	Bytes    uint64
	// Events is the number of simulator events processed.
	Events uint64
	// Counters holds application-defined counters (Node.Count),
	// summed across nodes.
	Counters map[string]int64
}

// Stats is one node's decomposition of virtual time, in the paper's
// terms: Busy is user computation, Overhead is system activity
// (scheduling, message handling), Idle is time blocked waiting.
type Stats struct {
	Busy     Time
	Overhead Time
	Idle     Time
	Finish   Time // when the node's program returned
	Sent     uint64
	Received uint64
}

// nodeState tracks what a parked node goroutine is waiting for.
type nodeState uint8

const (
	stateRunning   nodeState = iota
	stateWaitTimer           // woken only by its current-generation timer
	stateWaitRecv            // woken by any delivery
	stateWaitBoth            // RecvTimeout: delivery or timer
	stateDone
)

// Engine drives one simulation. It is not safe for concurrent use; a
// fresh Engine is cheap, so build one per run via Run or New.
type Engine struct {
	cfg    Config
	nodes  []*Node
	heap   eventHeap
	now    Time
	seq    uint64
	events uint64
	back   chan nodeState // the running node reports its new state
	msgs   uint64
	bytes  uint64
	err    error
}

// Run executes the same program on every node of the machine and
// returns the aggregated result. It is the common entry point; use New
// plus RunPrograms for per-node programs.
func Run(cfg Config, p Program) (Result, error) {
	progs := make([]Program, cfg.Topo.Size())
	for i := range progs {
		progs[i] = p
	}
	return New(cfg).RunPrograms(progs)
}

// New returns an engine for the configured machine.
func New(cfg Config) *Engine {
	if cfg.Topo == nil {
		invariant.Violated("sim: Config.Topo is nil")
	}
	if err := cfg.Latency.Validate(); err != nil {
		invariant.Violated("sim: %v", err)
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 1 << 40
	}
	return &Engine{cfg: cfg, back: make(chan nodeState)}
}

// RunPrograms starts one goroutine per node, each running its program,
// and processes events until every node terminates, a deadlock is
// detected, or a configured limit trips.
func (e *Engine) RunPrograms(progs []Program) (Result, error) {
	n := e.cfg.Topo.Size()
	if len(progs) != n {
		return Result{}, fmt.Errorf("sim: %d programs for %d nodes", len(progs), n)
	}
	e.nodes = make([]*Node, n)
	for i := 0; i < n; i++ {
		e.nodes[i] = newNode(e, i)
	}
	for i := 0; i < n; i++ {
		// Kick every node off at t=0 in id order.
		e.push(event{t: 0, kind: evWake, node: i, gen: e.nodes[i].timerGen})
	}
	for i := 0; i < n; i++ {
		nd, prog := e.nodes[i], progs[i]
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(abortedError); !ok {
						nd.panicErr = fmt.Errorf("sim: node %d panicked: %v\n%s", nd.id, r, debug.Stack())
					}
				}
				nd.stats.Finish = e.now
				e.back <- stateDone
			}()
			<-nd.resume
			if nd.aborted {
				panic(abortedError{}) //ripslint:allow panic control-flow: unwinds the node goroutine on engine abort
			}
			prog(nd)
		}()
	}

	done := 0
	stepNode := func(nd *Node) {
		if e.step(nd) == stateDone {
			done++
			if nd.panicErr != nil && e.err == nil {
				e.err = nd.panicErr
			}
		}
	}
	for done < n {
		if e.cfg.Cancel != nil && e.events&(cancelCheckInterval-1) == 0 {
			select {
			case <-e.cfg.Cancel:
				e.err = ErrCanceled
			default:
			}
			if e.err != nil {
				break
			}
		}
		if e.heap.len() == 0 {
			e.err = e.deadlockError()
			break
		}
		ev := e.heap.pop()
		e.events++
		if e.events > e.cfg.MaxEvents {
			e.err = fmt.Errorf("sim: event limit %d exceeded at t=%v", e.cfg.MaxEvents, e.now)
			break
		}
		e.now = ev.t
		e.trace(ev)
		if e.cfg.Limit > 0 && e.now > e.cfg.Limit {
			e.err = fmt.Errorf("sim: virtual time limit %v exceeded", e.cfg.Limit)
			break
		}
		nd := e.nodes[ev.node]
		switch ev.kind {
		case evWake:
			if nd.state == stateDone || ev.gen != nd.timerGen {
				continue // stale timer
			}
			switch nd.state {
			case stateWaitTimer, stateWaitBoth:
				if nd.state == stateWaitBoth {
					nd.timedOut = true
				}
				stepNode(nd)
			default:
				// A wake for a node that is not waiting on a timer can
				// only be the stale remnant of a cancelled timeout; the
				// generation check above should have caught it.
				invariant.Violated("sim: wake for node %d in state %d", ev.node, nd.state)
			}
		case evDeliver:
			if nd.state == stateDone {
				continue // message to a terminated node is dropped
			}
			nd.mailbox = append(nd.mailbox, ev.msg)
			e.msgs++
			e.bytes += uint64(max(ev.msg.Size, 0))
			nd.stats.Received++
			if nd.state == stateWaitRecv || nd.state == stateWaitBoth {
				stepNode(nd)
			}
		}
		if e.err != nil {
			break
		}
	}

	res := Result{
		End:      e.now,
		Nodes:    make([]Stats, n),
		Messages: e.msgs,
		Bytes:    e.bytes,
		Events:   e.events,
		Counters: map[string]int64{},
	}
	for i, nd := range e.nodes {
		res.Nodes[i] = nd.stats
		// Commutative sum: iteration order cannot affect the result.
		for k, v := range nd.counters { //ripslint:allow maporder commutative reduction
			res.Counters[k] += v
		}
	}
	if e.err != nil {
		// Unblock any parked goroutines so they are not leaked: mark
		// the engine failed; nodes resumed now will panic-exit their
		// goroutine via the aborted flag.
		for _, nd := range e.nodes {
			if nd.state != stateDone && nd.state != stateRunning {
				nd.aborted = true
				nd.resume <- struct{}{}
				<-e.back
			}
		}
		return res, e.err
	}
	return res, nil
}

// step hands control to a parked node and waits for it to park again
// (or finish). It returns the node's new state.
func (e *Engine) step(nd *Node) nodeState {
	nd.state = stateRunning
	nd.resume <- struct{}{}
	st := <-e.back
	nd.state = st
	return st
}

// trace logs one processed event to the configured writer.
func (e *Engine) trace(ev event) {
	if e.cfg.Trace == nil {
		return
	}
	switch ev.kind {
	case evWake:
		fmt.Fprintf(e.cfg.Trace, "[%12v] wake    node=%d gen=%d\n", e.now, ev.node, ev.gen)
	case evDeliver:
		fmt.Fprintf(e.cfg.Trace, "[%12v] deliver node=%d tag=%d from=%d size=%d\n",
			e.now, ev.node, ev.msg.Tag, ev.msg.From, ev.msg.Size)
	}
}

// push adds an event with the next sequence number.
func (e *Engine) push(ev event) {
	ev.seq = e.seq
	e.seq++
	e.heap.push(ev)
}

// deadlockError describes which nodes are blocked and on what.
func (e *Engine) deadlockError() error {
	var blocked []int
	for _, nd := range e.nodes {
		if nd.state != stateDone {
			blocked = append(blocked, nd.id)
		}
	}
	sort.Ints(blocked)
	return fmt.Errorf("sim: deadlock at t=%v: nodes %v blocked in Recv with no events pending", e.now, blocked)
}

// ErrCanceled reports that a run was aborted through Config.Cancel.
// The Result returned alongside it is partial: counters and clocks
// reflect only the work done before the abort, and task conservation
// does not hold.
var ErrCanceled = errors.New("sim: run canceled")

// cancelCheckInterval is how many events may elapse between polls of
// Config.Cancel; a power of two so the check is a mask. 256 events is
// microseconds of host time, far below any cancellation deadline.
const cancelCheckInterval = 256

// abortedError is the panic value used to unwind node goroutines when
// the engine aborts a run; it is recovered in the node wrapper.
type abortedError struct{}

func (abortedError) Error() string { return "sim: run aborted" }
