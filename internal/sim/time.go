// Package sim is a process-oriented discrete-event simulator of a
// distributed-memory message-passing machine — the substrate standing
// in for the paper's Intel Paragon.
//
// Each simulated processor ("node") runs a user-supplied Go function on
// its own goroutine, written in the blocking style of message-passing
// code: Send, Recv, Compute. Exactly one node goroutine executes at a
// time; control passes back to the engine whenever a node blocks, so
// the simulation is deterministic and race-free by construction while
// still letting node programs read as ordinary sequential MPI-like
// code. Virtual time advances only through the event heap.
//
// Message transit time is priced by a configurable LatencyModel
// (per-message, per-byte, and per-hop terms over the machine's
// topology), and each node's virtual clock is split three ways —
// user computation, system overhead, and idle time — which is exactly
// the accounting the paper's Table I reports (T, Th, Ti).
package sim

import (
	"fmt"
	"time"
)

// Time is a point in (or span of) virtual time, in nanoseconds. It is
// deliberately a distinct type from time.Duration so that wall-clock
// values do not silently flow into the simulation, but the convenience
// constants mirror the time package.
type Time int64

// Convenient virtual-time spans.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts a virtual span to a time.Duration for printing.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the time like time.Duration does.
func (t Time) String() string { return time.Duration(t).String() }

// FromSeconds converts seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// LatencyModel prices message transmission and per-message CPU costs.
// A message of size bytes travelling h hops occupies the wire for
// Base + PerByte*size + PerHop*h; on top of that the sender spends
// SendOverhead and the receiver RecvOverhead of CPU time, charged as
// system overhead on their respective clocks.
type LatencyModel struct {
	Base         Time // per-message wire latency (software + first hop setup)
	PerByte      Time // transmission time per payload byte
	PerHop       Time // additional latency per hop beyond the first
	SendOverhead Time // CPU time charged to the sender per message
	RecvOverhead Time // CPU time charged to the receiver per message
}

// Delay returns the wire transit time for a message of the given
// payload size travelling hops hops. Negative inputs are clamped to 0.
func (l LatencyModel) Delay(size, hops int) Time {
	if size < 0 {
		size = 0
	}
	if hops < 1 {
		hops = 1
	}
	return l.Base + Time(size)*l.PerByte + Time(hops-1)*l.PerHop
}

// DefaultLatency is calibrated to mid-1990s MPP interconnects (the
// paper reports roughly 1 ms per task-migration communication step on
// the Paragon): ~60 us message startup, ~100 ns/byte (~10 MB/s), and a
// small per-hop wormhole-routing term.
func DefaultLatency() LatencyModel {
	return LatencyModel{
		Base:         60 * Microsecond,
		PerByte:      100 * Nanosecond,
		PerHop:       5 * Microsecond,
		SendOverhead: 25 * Microsecond,
		RecvOverhead: 25 * Microsecond,
	}
}

// ZeroLatency makes communication free; useful for isolating algorithm
// behaviour from the cost model in tests.
func ZeroLatency() LatencyModel { return LatencyModel{} }

// Validate reports an error if any latency component is negative.
func (l LatencyModel) Validate() error {
	if l.Base < 0 || l.PerByte < 0 || l.PerHop < 0 || l.SendOverhead < 0 || l.RecvOverhead < 0 {
		return fmt.Errorf("sim: latency model has negative component: %+v", l)
	}
	return nil
}
