package sim

// eventKind discriminates the two things that can happen at a point in
// virtual time: a node's timer fires, or a message arrives.
type eventKind uint8

const (
	evWake    eventKind = iota // timer expiry (Compute/Sleep/timeout)
	evDeliver                  // message arrival at its destination
)

// event is a heap entry. Wake events carry the generation of the timer
// that scheduled them so that cancelled timers (e.g. a RecvTimeout that
// was satisfied by an earlier delivery) are recognised as stale and
// ignored when they surface.
type event struct {
	t    Time
	seq  uint64 // tie-breaker: FIFO among simultaneous events
	kind eventKind
	node int    // destination node
	gen  uint64 // timer generation, evWake only
	msg  Message
}

// eventHeap is a binary min-heap ordered by (t, seq). It is hand-rolled
// rather than built on container/heap to avoid the interface
// boxing on every push/pop in the simulator's hottest loop.
type eventHeap struct {
	a []event
}

func (h *eventHeap) len() int { return len(h.a) }

func (h *eventHeap) less(i, j int) bool {
	if h.a[i].t != h.a[j].t {
		return h.a[i].t < h.a[j].t
	}
	return h.a[i].seq < h.a[j].seq
}

func (h *eventHeap) push(e event) {
	h.a = append(h.a, e)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

func (h *eventHeap) pop() event {
	top := h.a[0]
	n := len(h.a) - 1
	h.a[0] = h.a[n]
	h.a = h.a[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.less(l, m) {
			m = l
		}
		if r < n && h.less(r, m) {
			m = r
		}
		if m == i {
			break
		}
		h.a[i], h.a[m] = h.a[m], h.a[i]
		i = m
	}
	return top
}
