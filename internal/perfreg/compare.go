package perfreg

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"rips/internal/difftest"
	"rips/internal/ripsrt"
)

// Options tune the advisory (real-time) drift thresholds. Exact
// metrics take no options: they are compared bit-for-bit.
type Options struct {
	// Ratio is the multiplicative slack for advisory regressions: a
	// value is drifting only if got > want*Ratio. 0 means the default.
	Ratio float64
	// MinWallDeltaNS additionally gates *_ns advisory metrics: small
	// absolute wall differences are scheduler noise even at large
	// ratios (a 2 µs phase doubling to 4 µs means nothing).
	MinWallDeltaNS int64
	// MinCounterDelta gates non-duration advisory counters (waves,
	// steals) the same way.
	MinCounterDelta int64
}

// Default advisory thresholds: double-or-worse, and at least 25 ms of
// real regression (or 16 counted events) before a warning is worth a
// human's attention.
const (
	DefaultRatio           = 2.0
	DefaultMinWallDeltaNS  = 25_000_000
	DefaultMinCounterDelta = 16
)

func (o Options) withDefaults() Options {
	if o.Ratio == 0 {
		o.Ratio = DefaultRatio
	}
	if o.MinWallDeltaNS == 0 {
		o.MinWallDeltaNS = DefaultMinWallDeltaNS
	}
	if o.MinCounterDelta == 0 {
		o.MinCounterDelta = DefaultMinCounterDelta
	}
	return o
}

// Drift is one metric disagreeing between baseline and current.
type Drift struct {
	Config string
	Metric string
	Want   int64 // baseline value
	Got    int64 // current value
	Exact  bool  // exact drifts fail the comparison, advisory ones warn
}

func (d Drift) String() string {
	kind := "advisory"
	if d.Exact {
		kind = "EXACT"
	}
	return fmt.Sprintf("%s drift [%s] %s: got %d, baseline %d", kind, d.Config, d.Metric, d.Got, d.Want)
}

// Report is the outcome of one baseline comparison.
type Report struct {
	// Entries is the number of baseline entries compared.
	Entries int
	// Exact holds deterministic-metric drifts; any entry here fails
	// the comparison.
	Exact []Drift
	// Advisory holds real-time drifts beyond the noise thresholds;
	// informational.
	Advisory []Drift
	// Missing lists baseline configurations absent from the current
	// measurement — also fatal: a probe point that can no longer run
	// is itself a regression.
	Missing []string
}

// Failed reports whether the comparison gates: any exact drift or
// missing probe point.
func (r *Report) Failed() bool { return len(r.Exact)+len(r.Missing) > 0 }

// Print streams the report in log form: exact drifts, then missing
// points, then advisory warnings.
func (r *Report) Print(w io.Writer) {
	for _, d := range r.Exact {
		fmt.Fprintln(w, d)
	}
	for _, c := range r.Missing {
		fmt.Fprintf(w, "MISSING [%s]: baseline probe point was not measured\n", c)
	}
	for _, d := range r.Advisory {
		fmt.Fprintln(w, d)
	}
	fmt.Fprintf(w, "compared %d lattice points: %d exact drifts, %d missing, %d advisory warnings\n",
		r.Entries, len(r.Exact), len(r.Missing), len(r.Advisory))
}

// sortedKeys iterates maps deterministically so reports (and tests
// over them) are stable.
func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Compare checks a fresh measurement against the committed baseline.
// Exact metrics must match bit-for-bit — they are pure functions of
// configuration and seed, so any difference is a behavioral change in
// the scheduling protocol, intended (then regenerate the baseline with
// -update) or not (a regression). Advisory metrics warn on regressions
// beyond the Options thresholds and never gate. Entries present only
// in current are ignored: the baseline defines the probe grid.
func Compare(baseline, current *Document, opts Options) *Report {
	opts = opts.withDefaults()
	rep := &Report{}
	cur := make(map[string]Entry, len(current.Entries))
	for _, e := range current.Entries {
		cur[e.Config] = e
	}
	for _, be := range baseline.Entries {
		rep.Entries++
		ce, ok := cur[be.Config]
		if !ok {
			rep.Missing = append(rep.Missing, be.Config)
			continue
		}
		for _, k := range sortedKeys(be.Exact) {
			want := be.Exact[k]
			got, ok := ce.Exact[k]
			if ok && got == want {
				continue
			}
			rep.Exact = append(rep.Exact, Drift{Config: be.Config, Metric: k, Want: want, Got: got, Exact: true})
		}
		for _, k := range sortedKeys(be.Advisory) {
			want := be.Advisory[k]
			got, ok := ce.Advisory[k]
			if !ok {
				continue // vocabulary change; advisory metrics don't gate
			}
			delta := got - want
			if float64(got) <= float64(want)*opts.Ratio {
				continue
			}
			minDelta := opts.MinCounterDelta
			if strings.HasSuffix(k, "_ns") {
				minDelta = opts.MinWallDeltaNS
			}
			if delta <= minDelta {
				continue
			}
			rep.Advisory = append(rep.Advisory, Drift{Config: be.Config, Metric: k, Want: want, Got: got})
		}
	}
	return rep
}

// configCost ranks a lattice configuration for reproducer selection:
// cheapest app first (the difftest.Apps order is cheapest-first by
// construction), then fewest workers, then simplest topology, laziest
// policy, smallest seed. The baseline is defined only at its recorded
// probe points, so unlike difftest.Shrink the reproducer cannot wander
// off-lattice — MinimalRepro picks the cheapest *failing* point.
func configCost(c difftest.Config) [6]int {
	appRank := 0
	for i, s := range difftest.Apps() {
		if s.Name == c.App {
			appRank = i
			break
		}
	}
	topoRank := map[string]int{"mesh": 0, "tree": 1, "hypercube": 2}[c.Topology]
	policyRank := 0
	if c.Global == ripsrt.All {
		policyRank += 2
	}
	if c.Local == ripsrt.Eager {
		policyRank++
	}
	return [6]int{appRank, c.Workers, topoRank, policyRank, int(c.Seed), 0}
}

func costLess(a, b [6]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// MinimalRepro returns the cheapest failing configuration of a failed
// comparison — the one to hand a human, in the canonical form
// `ripsbench lattice -config "..."` re-runs verbatim. ok is false when
// the report did not fail or no failing config parses.
func MinimalRepro(rep *Report) (cfg difftest.Config, ok bool) {
	seen := map[string]bool{}
	var failing []string
	for _, d := range rep.Exact {
		if !seen[d.Config] {
			seen[d.Config] = true
			failing = append(failing, d.Config)
		}
	}
	for _, c := range rep.Missing {
		if !seen[c] {
			seen[c] = true
			failing = append(failing, c)
		}
	}
	for _, s := range failing {
		c, err := difftest.Parse(s)
		if err != nil {
			continue
		}
		if !ok || costLess(configCost(c), configCost(cfg)) {
			cfg, ok = c, true
		}
	}
	return cfg, ok
}
