package perfreg

import (
	"testing"

	"rips/internal/difftest"
	"rips/internal/par"
)

// TestBenchLatticeArtifactSchema golden-checks the committed
// BENCH_lattice.json: it must load through ReadFile (schema tag,
// non-empty), every probe point must parse back into a lattice
// configuration, the smoke flag must be honest about the app pool, and
// every entry must carry the full exact vocabulary with sane values —
// the compare gate is only as strong as the committed baseline.
func TestBenchLatticeArtifactSchema(t *testing.T) {
	doc, err := ReadFile("../../BENCH_lattice.json")
	if err != nil {
		t.Fatalf("committed baseline does not load: %v", err)
	}
	heavy := map[string]bool{}
	for _, s := range difftest.Apps() {
		heavy[s.Name] = s.Heavy
	}
	requiredExact := []string{
		ExactTasks, ExactAppResult, ExactPhases, ExactMigrated,
		ExactNonlocal, ExactVirtualTimeNS, ExactVirtualOverheadNS, ExactVirtualIdleNS,
	}
	requiredAdvisory := []string{
		AdvisoryRIPSPrefix + par.MetricWallNS,
		AdvisoryRIPSPrefix + par.MetricWaves,
		AdvisoryStealPrefix + par.MetricWallNS,
		AdvisoryStealPrefix + par.MetricSteals,
		AdvisoryHybridPrefix + par.MetricWallNS,
		AdvisoryHybridPrefix + par.MetricSteals,
		AdvisoryHybridPrefix + par.MetricDomains,
	}
	seen := map[string]bool{}
	for _, e := range doc.Entries {
		cfg, err := difftest.Parse(e.Config)
		if err != nil {
			t.Errorf("entry %q is not a lattice configuration: %v", e.Config, err)
			continue
		}
		if seen[e.Config] {
			t.Errorf("duplicate probe point %q", e.Config)
		}
		seen[e.Config] = true
		if doc.Smoke && heavy[cfg.App] {
			t.Errorf("smoke baseline carries heavy app %q", cfg.App)
		}
		for _, k := range requiredExact {
			v, ok := e.Exact[k]
			if !ok {
				t.Errorf("[%s] missing exact metric %q", e.Config, k)
			}
			if v < 0 {
				t.Errorf("[%s] exact %s = %d, want non-negative", e.Config, k, v)
			}
		}
		if e.Exact[ExactTasks] <= 0 || e.Exact[ExactVirtualTimeNS] <= 0 {
			t.Errorf("[%s] degenerate run: tasks=%d virtual_time=%d",
				e.Config, e.Exact[ExactTasks], e.Exact[ExactVirtualTimeNS])
		}
		for _, k := range requiredAdvisory {
			if _, ok := e.Advisory[k]; !ok {
				t.Errorf("[%s] missing advisory metric %q", e.Config, k)
			}
		}
	}
}
