package perfreg

import (
	"reflect"
	"strings"
	"testing"

	"rips/internal/difftest"
)

// tinyGrid is a cheap probe grid for harness tests: the two cheapest
// kernels on the smallest interesting machines.
func tinyGrid(t *testing.T) []difftest.Config {
	t.Helper()
	var cfgs []difftest.Config
	for _, s := range []string{
		"app=mg topo=mesh:1x2 policy=any-lazy seed=1",
		"app=fft topo=tree:3 policy=all-eager seed=2",
	} {
		c, err := difftest.Parse(s)
		if err != nil {
			t.Fatalf("parsing grid config %q: %v", s, err)
		}
		cfgs = append(cfgs, c)
	}
	return cfgs
}

func measureGrid(t *testing.T) *Document {
	t.Helper()
	doc, err := Measure(difftest.NewHarness(), tinyGrid(t), 1, true, nil)
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	return doc
}

// copyDoc deep-copies a document so tests can perturb one side.
func copyDoc(d *Document) *Document {
	out := *d
	out.Entries = make([]Entry, len(d.Entries))
	for i, e := range d.Entries {
		out.Entries[i] = Entry{Config: e.Config,
			Exact: map[string]int64{}, Advisory: map[string]int64{}}
		for k, v := range e.Exact {
			out.Entries[i].Exact[k] = v
		}
		for k, v := range e.Advisory {
			out.Entries[i].Advisory[k] = v
		}
	}
	return &out
}

// TestExactMetricsDeterministic is the property the whole design rests
// on: the exact metric block is a pure function of the configuration,
// so two independent measurements (fresh harnesses, fresh app
// instances) must agree bit-for-bit. If this fails, a committed
// baseline could never gate anything.
func TestExactMetricsDeterministic(t *testing.T) {
	a, b := measureGrid(t), measureGrid(t)
	for i := range a.Entries {
		if !reflect.DeepEqual(a.Entries[i].Exact, b.Entries[i].Exact) {
			t.Errorf("[%s] exact metrics differ across identical runs:\n  %v\n  %v",
				a.Entries[i].Config, a.Entries[i].Exact, b.Entries[i].Exact)
		}
	}
}

// TestCompareCleanBaseline: a measurement compared against itself (and
// against an independent re-measurement) has no exact drift.
func TestCompareCleanBaseline(t *testing.T) {
	base := measureGrid(t)
	rep := Compare(base, measureGrid(t), Options{})
	if rep.Failed() {
		rep.Print(testWriter{t})
		t.Fatal("clean re-measurement failed the baseline comparison")
	}
	if rep.Entries != len(base.Entries) {
		t.Errorf("compared %d entries, want %d", rep.Entries, len(base.Entries))
	}
}

// TestCompareDetectsInjectedDrift perturbs exact counters in a copy of
// the baseline and asserts the comparison fails and the minimal
// reproducer is the cheapest failing configuration — the acceptance
// property of the harness: a behavioral change in the scheduler cannot
// slip past the committed baseline.
func TestCompareDetectsInjectedDrift(t *testing.T) {
	cur := measureGrid(t)
	base := copyDoc(cur)

	// Drift both points; the reproducer must pick the cheaper app (mg
	// precedes fft in difftest.Apps' cheapest-first order).
	base.Entries[0].Exact[ExactMigrated]++
	base.Entries[1].Exact[ExactPhases] += 3

	rep := Compare(base, cur, Options{})
	if !rep.Failed() {
		t.Fatal("injected exact drift did not fail the comparison")
	}
	if len(rep.Exact) != 2 {
		t.Errorf("got %d exact drifts, want 2: %v", len(rep.Exact), rep.Exact)
	}
	min, ok := MinimalRepro(rep)
	if !ok {
		t.Fatal("failed report produced no reproducer")
	}
	if min.App != "mg" {
		t.Errorf("reproducer picked %q, want the cheapest failing app mg", min.String())
	}
	// The reproducer round-trips through the form the CLI prints.
	back, err := difftest.Parse(min.String())
	if err != nil || back != min {
		t.Errorf("reproducer %q does not round-trip: %v", min.String(), err)
	}
}

// TestCompareMissingEntryFails: a baseline probe point absent from the
// current measurement is fatal, not silently skipped.
func TestCompareMissingEntryFails(t *testing.T) {
	base := measureGrid(t)
	cur := copyDoc(base)
	cur.Entries = cur.Entries[:1]
	rep := Compare(base, cur, Options{})
	if !rep.Failed() || len(rep.Missing) != 1 {
		t.Fatalf("dropped probe point not reported: failed=%v missing=%v", rep.Failed(), rep.Missing)
	}
	if min, ok := MinimalRepro(rep); !ok || min.String() != base.Entries[1].Config {
		t.Errorf("reproducer = %v, %v; want the missing config %q", min, ok, base.Entries[1].Config)
	}
}

// TestAdvisoryThresholds: wall-clock regressions warn only beyond both
// the ratio and the absolute floor, and never fail the comparison.
func TestAdvisoryThresholds(t *testing.T) {
	base := measureGrid(t)
	cur := copyDoc(base)

	// Huge regression: far over 2x and over the 25 ms floor.
	cur.Entries[0].Advisory["rips_wall_ns"] = base.Entries[0].Advisory["rips_wall_ns"]*3 + 100_000_000
	// Large ratio but tiny absolute delta: noise, no warning.
	cur.Entries[1].Advisory["steal_wall_ns"] = base.Entries[1].Advisory["steal_wall_ns"]*5 + 1000

	rep := Compare(base, cur, Options{})
	if rep.Failed() {
		t.Fatal("advisory drift failed the comparison; only exact metrics gate")
	}
	if len(rep.Advisory) != 1 {
		t.Fatalf("got %d advisory warnings, want exactly the large regression: %v", len(rep.Advisory), rep.Advisory)
	}
	if d := rep.Advisory[0]; d.Metric != "rips_wall_ns" || d.Config != base.Entries[0].Config {
		t.Errorf("warned on %v, want rips_wall_ns of %q", d, base.Entries[0].Config)
	}
	if !strings.Contains(rep.Advisory[0].String(), "advisory") {
		t.Errorf("advisory drift renders as %q, want it labeled advisory", rep.Advisory[0].String())
	}
}

// TestEncodeDecodeRoundTrip also pins schema rejection: a document
// from a future schema or with no entries refuses to load rather than
// silently comparing nothing.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	doc := measureGrid(t)
	b, err := Encode(doc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(doc, got) {
		t.Error("document changed across Encode/Decode")
	}
	// Determinism of the byte form for fixed values.
	b2, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Error("Encode is not deterministic for identical documents")
	}

	if _, err := Decode([]byte(`{"schema":"rips-lattice/v999","entries":[{"config":"x"}]}`)); err == nil {
		t.Error("foreign schema accepted")
	}
	if _, err := Decode([]byte(`{"schema":"` + Schema + `","entries":[]}`)); err == nil {
		t.Error("empty baseline accepted")
	}
}

// testWriter adapts t.Log for Report.Print.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Log(string(p))
	return len(p), nil
}
