// Package perfreg is the lattice-guided performance-regression
// harness: it reuses the differential-testing lattice (app × topology
// × policy × seed, see internal/difftest) as a performance probe grid,
// records per-configuration scheduling metrics into a versioned
// artifact (BENCH_lattice.json, schema rips-lattice/v1), and compares
// fresh measurements against a committed baseline.
//
// The central design problem is that a committed baseline must compare
// exactly on any machine, while real-parallel numbers never do. The
// harness splits the metrics accordingly:
//
//   - Exact metrics come from the virtual-time simulator (ripsrt),
//     whose results — virtual execution time T, per-node overhead Th,
//     task/migration/phase counters, the paper's Table I quantities —
//     are pure functions of the configuration and seed. Any drift in
//     an exact metric means the scheduling protocol itself changed
//     behavior, and the comparison fails.
//
//   - Advisory metrics come from the real-parallel backends (RIPS and
//     work-stealing, internal/par): wall clock, busy/idle split, wave
//     and steal counts. They depend on the machine and the OS
//     scheduler, so drift is reported with noise-aware thresholds but
//     never fails the comparison.
//
// A failing comparison is accompanied by a minimal reproducer
// configuration (see MinimalRepro) printed in the canonical form
// `ripsbench lattice -config "..."` re-runs verbatim.
package perfreg

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"rips/internal/difftest"
	"rips/internal/ripsrt"
)

// Schema identifies the BENCH_lattice.json wire format. Bump on any
// incompatible change to Document or the metric vocabulary.
const Schema = "rips-lattice/v1"

// Names of the exact (simulator-derived, machine-independent) metrics.
// Like par.Metric*, these are schema vocabulary: renaming one is an
// artifact-format change.
const (
	ExactTasks             = "tasks"
	ExactAppResult         = "app_result"
	ExactPhases            = "phases"
	ExactMigrated          = "migrated"
	ExactNonlocal          = "nonlocal"
	ExactVirtualTimeNS     = "virtual_time_ns"
	ExactVirtualOverheadNS = "virtual_overhead_ns"
	ExactVirtualIdleNS     = "virtual_idle_ns"
)

// Advisory metric names are the par.Metric* vocabulary prefixed with
// the backend that produced them.
const (
	AdvisoryRIPSPrefix   = "rips_"
	AdvisoryStealPrefix  = "steal_"
	AdvisoryHybridPrefix = "hybrid_"
)

// Entry is one measured lattice point. Config is the canonical
// difftest string form (`app=nq12 topo=mesh:2x4 policy=any-lazy
// seed=3`), so an entry is replayable verbatim and the baseline
// carries its own probe grid — compare mode re-measures exactly the
// configurations recorded here, never a fresh sample.
type Entry struct {
	Config   string           `json:"config"`
	Exact    map[string]int64 `json:"exact"`
	Advisory map[string]int64 `json:"advisory"`
}

// Document is the artifact root.
type Document struct {
	Schema string `json:"schema"`
	// Seed and Smoke record how the probe grid was sampled (see
	// difftest.Sample); informational once the entries exist.
	Seed  int64 `json:"seed"`
	Smoke bool  `json:"smoke"`
	// Cores, GoOS and GoArch describe the machine that produced the
	// advisory numbers; exact numbers are machine-independent.
	Cores   int     `json:"cores"`
	GoOS    string  `json:"goos"`
	GoArch  string  `json:"goarch"`
	Entries []Entry `json:"entries"`
}

// Configs parses every entry's configuration back out of the
// document — the probe grid a comparison run must re-measure.
func (d *Document) Configs() ([]difftest.Config, error) {
	out := make([]difftest.Config, 0, len(d.Entries))
	for _, e := range d.Entries {
		c, err := difftest.Parse(e.Config)
		if err != nil {
			return nil, fmt.Errorf("perfreg: entry %q: %w", e.Config, err)
		}
		out = append(out, c)
	}
	return out, nil
}

// exactMetrics flattens the simulator result into the exact metric
// map. sim.Time is virtual nanoseconds, so the casts are unit-true.
func exactMetrics(r ripsrt.Result) map[string]int64 {
	return map[string]int64{
		ExactTasks:             r.Generated,
		ExactAppResult:         r.AppResult,
		ExactPhases:            r.Phases,
		ExactMigrated:          r.Migrated,
		ExactNonlocal:          r.Nonlocal,
		ExactVirtualTimeNS:     int64(r.Time),
		ExactVirtualOverheadNS: int64(r.Overhead),
		ExactVirtualIdleNS:     int64(r.Idle),
	}
}

// advisoryMetrics merges the real-parallel backends' stable metric
// maps (par.Result.Metrics) under backend prefixes.
func advisoryMetrics(m difftest.Measurement) map[string]int64 {
	out := make(map[string]int64, 3*14)
	for name, v := range m.RIPS.Metrics() {
		out[AdvisoryRIPSPrefix+name] = v
	}
	for name, v := range m.Steal.Metrics() {
		out[AdvisoryStealPrefix+name] = v
	}
	for name, v := range m.Hybrid.Metrics() {
		out[AdvisoryHybridPrefix+name] = v
	}
	return out
}

// MeasureEntry measures one lattice point into artifact form.
func MeasureEntry(h *difftest.Harness, cfg difftest.Config) (Entry, error) {
	m, err := h.Measure(cfg)
	if err != nil {
		return Entry{}, err
	}
	return Entry{
		Config:   cfg.String(),
		Exact:    exactMetrics(m.Sim),
		Advisory: advisoryMetrics(m),
	}, nil
}

// Measure runs every configuration through the three backends and
// builds the artifact document. A measurement error (including an
// answer diverging from the sequential truth) aborts: a baseline or a
// comparison computed from a wrong run would be worse than none. When
// progress is non-nil one line per configuration is streamed to it.
func Measure(h *difftest.Harness, cfgs []difftest.Config, seed int64, smoke bool, progress io.Writer) (*Document, error) {
	doc := &Document{
		Schema: Schema,
		Seed:   seed,
		Smoke:  smoke,
		Cores:  runtime.NumCPU(),
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
	}
	for i, cfg := range cfgs {
		e, err := MeasureEntry(h, cfg)
		if err != nil {
			return nil, err
		}
		doc.Entries = append(doc.Entries, e)
		if progress != nil {
			fmt.Fprintf(progress, "[%3d/%d] %-60s tasks=%d virtual_time=%dns\n",
				i+1, len(cfgs), cfg.String(), e.Exact[ExactTasks], e.Exact[ExactVirtualTimeNS])
		}
	}
	return doc, nil
}

// Encode renders the document as indented JSON with a trailing
// newline. encoding/json emits map keys sorted, so the byte form is
// deterministic for fixed metric values — regenerating a baseline on
// the same code produces an identical exact section.
func Encode(d *Document) ([]byte, error) {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the document to path.
func WriteFile(path string, d *Document) error {
	b, err := Encode(d)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// ReadFile loads and schema-checks a baseline document.
func ReadFile(path string) (*Document, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(b)
}

// Decode parses and schema-checks a document.
func Decode(b []byte) (*Document, error) {
	var d Document
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("perfreg: decoding baseline: %w", err)
	}
	if d.Schema != Schema {
		return nil, fmt.Errorf("perfreg: baseline schema %q, this build reads %q", d.Schema, Schema)
	}
	if len(d.Entries) == 0 {
		return nil, fmt.Errorf("perfreg: baseline has no entries")
	}
	return &d, nil
}
