package ripsrt

import (
	"rips/internal/invariant"
	"rips/internal/topo"
)

// cubeSched is the incremental Dimension Exchange Method on a
// hypercube — the prior-art parallel scheduler the paper's Section 5
// discusses (Cybenko's DEM, run incrementally per Willebeek-LeMair &
// Reeves). One sweep pairs the nodes across each dimension in turn and
// splits their loads; the result is balanced to within the cube
// dimension rather than within one task, and the next system phase
// corrects what this one leaves — the contrast RIPS-on-mesh's MWA is
// measured against.
type cubeSched struct {
	cube *topo.Hypercube
	id   int
}

func newCubeSched(h *topo.Hypercube, id int) *cubeSched {
	return &cubeSched{cube: h, id: id}
}

// phase runs one total-count butterfly plus one full DEM sweep.
func (cs *cubeSched) phase(st *nodeState) int {
	n := st.n
	st.overhead(st.costs.PerPhase)
	st.rts.PushAll(st.rte.Drain())
	w := st.rts.Len()
	st.ownTaken = 0

	// Butterfly all-reduce of the task total: after d exchanges every
	// node knows T.
	total := w
	for k := 0; k < cs.cube.Dim(); k++ {
		p := cs.id ^ (1 << k)
		n.SendTag(p, tagColT, total, 8)
		total += n.RecvFrom(p, tagColT).Data.(int)
	}
	st.phase++
	if total == 0 {
		return 0
	}

	// DEM sweep: exchange counts with the partner across each
	// dimension; the heavier side ships half the difference.
	cur := w
	for k := 0; k < cs.cube.Dim(); k++ {
		p := cs.id ^ (1 << k)
		n.SendTag(p, tagScanW, cur, 8)
		pw := n.RecvFrom(p, tagScanW).Data.(int)
		switch {
		case cur > pw+1:
			give := (cur - pw) / 2
			bundle := st.takeTasks(give)
			n.SendTag(p, tagDown, horzMsg{tasks: bundle}, sizeOfTasks(bundle))
			cur -= give
		case pw > cur+1:
			take := (pw - cur) / 2
			st.acceptTasks(n.RecvFrom(p, tagDown).Data.(horzMsg).tasks)
			cur += take
		}
	}

	// DEM only converges to within the cube dimension, so no Theorem 1
	// check applies; conservation of the per-node bookkeeping does.
	invariant.Conserved(st.rts.Len()+len(st.inbox), cur, "ripsrt: cube DEM system phase")
	st.rte.PushAll(st.rts.Drain())
	st.rte.PushAll(st.inbox)
	st.inbox = nil
	return total
}
